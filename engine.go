package addict

import (
	"context"
	"fmt"
	"io"

	"addict/internal/bench"
	"addict/internal/exp"
	"addict/internal/pool"
	"addict/internal/sim"
	"addict/internal/store"
	"addict/internal/sweep"
	"addict/internal/workload"
	"addict/internal/workload/synth"
)

// Engine is a long-lived ADDICT session: one artifact cache (trace
// windows, migration-point profiles, per-mechanism replay results) serving
// many requests — the paper's own split of a static "a priori" Step 1
// feeding a serving phase (Section 3.1.3), lifted to the API. Construct it
// once with functional options, then call its methods from any number of
// goroutines: every artifact is computed once (single-flight) and shared,
// so repeated Traces/Profile/Schedule/Sweep/Bench calls reuse work instead
// of regenerating it.
//
// Every method takes a context.Context and honors cancellation between
// work items (trace-generation shards, sweep units, bench cells,
// experiment sections). A cancelled computation is evicted from the cache,
// not stored, so one aborted request never poisons the session.
//
// The zero-argument session (NewEngine()) uses the quick evaluation sizes
// — seed 42, scale 0.5, 250-trace profiling and evaluation windows, the
// Table 1 machine, all CPUs — matching the sweep and bench defaults, so an
// Engine, a sweep grid, and the bench harness share one cache out of the
// box.
type Engine struct {
	seed            int64
	scale           float64
	profileTraces   int
	evalTraces      int
	stabilityTraces int
	workers         int
	machine         MachineConfig
	progress        io.Writer
	cacheBudget     int64
	storeDir        string
	storeBudget     int64

	wb       *sweep.Workbench
	storeErr error
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithWorkers bounds the session's generation and replay parallelism
// (values below 1 select runtime.GOMAXPROCS(0), the package-wide
// convention). The worker count never affects content — only wall-clock.
func WithWorkers(n int) EngineOption { return func(e *Engine) { e.workers = n } }

// WithMachine selects the simulated hardware the session profiles and
// replays on (default: the Table 1 machine, ShallowMachine).
func WithMachine(m MachineConfig) EngineOption { return func(e *Engine) { e.machine = m } }

// WithSeed sets the seed driving all workload randomness (default 42).
func WithSeed(seed int64) EngineOption { return func(e *Engine) { e.seed = seed } }

// WithScale sets the database scale factor (default 0.5, the quick size).
func WithScale(scale float64) EngineOption { return func(e *Engine) { e.scale = scale } }

// WithTraceWindows sizes the session's profiling and evaluation trace
// windows (defaults 250 each, the quick sizes; the paper uses 1000 each)
// and the stability window of the Figure 4 experiment (values <= 0 select
// 4x the evaluation window).
func WithTraceWindows(profile, eval, stability int) EngineOption {
	return func(e *Engine) {
		e.profileTraces = profile
		e.evalTraces = eval
		e.stabilityTraces = stability
	}
}

// WithProgress directs per-cell progress lines of long pipelines (the
// bench harness) to w (default: discarded).
func WithProgress(w io.Writer) EngineOption { return func(e *Engine) { e.progress = w } }

// WithCacheBudget bounds the session artifact cache's resident weight in
// approximate bytes (default 0 = unbounded). Trace windows, migration-point
// profiles, and replay results share one weight-accounted LRU; once the
// budget is exceeded, least-recently-used artifacts are evicted and
// regenerate — deterministically, to identical content — on next use. Set
// this on long-lived multi-tenant sessions (cmd/addict-serve) so one
// session cannot grow without bound.
func WithCacheBudget(bytes int64) EngineOption { return func(e *Engine) { e.cacheBudget = bytes } }

// WithStore attaches a content-addressed, on-disk artifact store at dir
// (created if missing) as the read-through L2 under the session's
// in-memory cache, with a size budget in bytes (<= 0 = unbounded; a GC
// prunes least-recently-used entries past it). Trace windows, Algorithm 1
// profiles, and replay results spill to the store keyed by a stable hash
// of their fully-resolved spec — so server restarts, repeated CI runs, and
// independent processes sharing the directory warm-start instead of
// regenerating the world. Corrupt entries are quarantined and recomputed,
// never decoded into a wrong answer; artifacts regenerate
// deterministically, so the store can be wiped at any time at the cost of
// a cold start. If the directory cannot be opened the session degrades to
// memory-only and StoreErr reports why.
func WithStore(dir string, budget int64) EngineOption {
	return func(e *Engine) {
		e.storeDir = dir
		e.storeBudget = budget
	}
}

// NewEngine constructs a session. The zero-argument form selects the quick
// evaluation sizes; see the Engine documentation.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		seed:          42,
		scale:         0.5,
		profileTraces: 250,
		evalTraces:    250,
		machine:       sim.Shallow(),
	}
	for _, opt := range opts {
		opt(e)
	}
	e.workers = pool.NormWorkers(e.workers)
	if e.stabilityTraces <= 0 {
		e.stabilityTraces = 4 * e.evalTraces
	}
	arts := sweep.NewArtifacts(e.seed, e.scale, e.profileTraces, e.evalTraces, e.workers)
	e.wb = sweep.NewWorkbench(arts, e.machine)
	if e.cacheBudget > 0 {
		e.wb.Bound(e.cacheBudget)
	}
	if e.storeDir != "" {
		st, err := store.Open(e.storeDir, e.storeBudget)
		if err != nil {
			e.storeErr = err
		} else {
			arts.SetStore(st)
		}
	}
	return e
}

// CacheStats reports the session artifact cache's counters: resident bytes
// (weight estimates), entries, hits, misses, and evictions, plus — when an
// on-disk store is attached — the store's hit/miss/verify-failure/GC
// counters. The serving daemon exposes these via expvar.
func (e *Engine) CacheStats() CacheStats {
	cs := CacheStats{CacheStats: e.wb.CacheStats()}
	if st, ok := e.wb.StoreStats(); ok {
		cs.Store = &st
	}
	return cs
}

// StoreErr reports why WithStore's directory could not be opened (nil when
// no store was requested or the store is attached and serving). A session
// with a store error is fully functional, just memory-only; commands that
// treat a requested store as mandatory should fail fast on this.
func (e *Engine) StoreErr() error { return e.storeErr }

// Seed returns the session seed.
func (e *Engine) Seed() int64 { return e.seed }

// Scale returns the session database scale factor.
func (e *Engine) Scale() float64 { return e.scale }

// Workers returns the session's resolved worker bound.
func (e *Engine) Workers() int { return e.workers }

// Machine returns the session's simulated hardware.
func (e *Engine) Machine() MachineConfig { return e.machine }

// ExperimentParams returns the session parameters as an evaluation-harness
// setup — what Experiments runs with.
func (e *Engine) ExperimentParams() ExperimentParams {
	return exp.Params{
		Seed:            e.seed,
		Scale:           e.scale,
		ProfileTraces:   e.profileTraces,
		EvalTraces:      e.evalTraces,
		StabilityTraces: e.stabilityTraces,
		Machine:         e.machine,
	}
}

// Traces returns the session's evaluation trace window for a workload (the
// paper's "next 1000") — cached: every call after the first returns the
// same set. The name resolves through the workload registry: TPC names
// ("TPC-B", "TPC-C", "TPC-E") and encoded synthetic names ("synth:...").
func (e *Engine) Traces(ctx context.Context, workloadName string) (*TraceSet, error) {
	return e.wb.EvalSet(ctx, workloadName)
}

// ProfilingTraces returns the session's profiling trace window (the
// paper's "first 1000") — the disjoint window Profile learns from, cached.
func (e *Engine) ProfilingTraces(ctx context.Context, workloadName string) (*TraceSet, error) {
	return e.wb.ProfileSet(ctx, workloadName)
}

// Profile returns Algorithm 1's migration points for a workload over the
// session's profiling window and machine — cached per (workload, L1-I
// geometry).
func (e *Engine) Profile(ctx context.Context, workloadName string) (*Profile, error) {
	return e.wb.Profile(ctx, workloadName)
}

// Schedule replays the workload's evaluation window under a mechanism on
// the session machine and returns the simulation result — cached per
// (workload, mechanism), so the figures and repeated calls share one
// replay. ADDICT's migration-point profile is computed (and cached)
// automatically.
func (e *Engine) Schedule(ctx context.Context, mech Mechanism, workloadName string) (Result, error) {
	return e.wb.Result(ctx, workloadName, mech)
}

// ScheduleAll replays the workload's evaluation window under every
// mechanism concurrently (bounded by the session workers) and returns the
// per-mechanism results, all cached.
func (e *Engine) ScheduleAll(ctx context.Context, workloadName string) (map[Mechanism]Result, error) {
	return e.eachMechanism(ctx, func(mech Mechanism) (Result, error) {
		return e.Schedule(ctx, mech, workloadName)
	})
}

// ScheduleSet replays a caller-supplied trace set under every mechanism
// concurrently (bounded by the session workers) — the uncached counterpart
// of ScheduleAll for sets that did not come from this session.
// Options.Profile is required (ADDICT needs its migration points).
func (e *Engine) ScheduleSet(ctx context.Context, s *TraceSet, opts Options) (map[Mechanism]Result, error) {
	return e.eachMechanism(ctx, func(mech Mechanism) (Result, error) {
		return Schedule(mech, s, opts)
	})
}

// eachMechanism runs one replay per mechanism on the session pool and
// assembles the per-mechanism result map.
func (e *Engine) eachMechanism(ctx context.Context, run func(mech Mechanism) (Result, error)) (map[Mechanism]Result, error) {
	results := make([]Result, len(Mechanisms))
	errs := make([]error, len(Mechanisms))
	if err := pool.RunCtx(ctx, e.workers, len(Mechanisms), func(i int) {
		results[i], errs[i] = run(Mechanisms[i])
	}); err != nil {
		return nil, err
	}
	out := make(map[Mechanism]Result, len(Mechanisms))
	for i, mech := range Mechanisms {
		if errs[i] != nil {
			return nil, fmt.Errorf("addict: %s: %w", mech, errs[i])
		}
		out[mech] = results[i]
	}
	return out, nil
}

// GenerateTraces generates n traces of a registry workload name under the
// deterministic shard recipe: byte-identical for every session worker
// count, uncached (each call generates afresh — use Traces for the
// session's reusable evaluation window).
func (e *Engine) GenerateTraces(ctx context.Context, workloadName string, n int) (*TraceSet, error) {
	r, err := workload.Resolve(workloadName)
	if err != nil {
		return nil, err
	}
	return r.GenerateSharded(ctx, e.seed, e.scale, 0, n, workload.DefaultShardSize, e.workers)
}

// SynthTraces generates n traces of a synthetic-workload spec under the
// same shard recipe as GenerateTraces (phase schedules follow the absolute
// trace index, so multi-phase specs shard deterministically too).
func (e *Engine) SynthTraces(ctx context.Context, spec SynthSpec, n int) (*TraceSet, error) {
	return synth.GenerateSetShardedCtx(ctx, spec, e.seed, e.scale, 0, n, workload.DefaultShardSize, e.workers)
}

// Sweep expands a declarative grid and executes it on the session workers,
// streaming results to out in the given format ("table", "csv", "jsonl").
// Base parameters the spec leaves zero (seed, scale, trace windows)
// inherit the session's, and when the resolved parameters match the
// session's the sweep reuses the session artifact cache — repeated sweeps
// on one Engine regenerate nothing. Cancellation stops the sweep between
// units; the rows already emitted form a clean prefix.
func (e *Engine) Sweep(ctx context.Context, out io.Writer, spec SweepSpec, format string) error {
	em, err := sweep.NewEmitter(format, out)
	if err != nil {
		return err
	}
	e.inheritBase(&spec.Seed, &spec.Scale, &spec.ProfileTraces, &spec.EvalTraces)
	arts := e.artifactsFor(spec.Seed, spec.Scale, spec.ProfileTraces, spec.EvalTraces)
	return sweep.RunWith(ctx, spec, em, e.workers, arts)
}

// artifactsFor picks the artifact cache for a run with the given resolved
// base parameters: the session cache when they match the session's (so
// repeated runs regenerate nothing), otherwise a fresh per-run cache —
// with the session's on-disk store attached, so even mismatched-parameter
// runs warm-start from disk. nil (the "let the runner make its own"
// convention) only when there is neither a session match nor a store.
func (e *Engine) artifactsFor(seed int64, scale float64, profileTraces, evalTraces int) *sweep.Artifacts {
	if e.wb.Artifacts().Matches(seed, scale, profileTraces, evalTraces) {
		return e.wb.Artifacts()
	}
	st := e.wb.Artifacts().Store()
	if st == nil {
		return nil
	}
	arts := sweep.NewArtifacts(seed, scale, profileTraces, evalTraces, e.workers)
	arts.SetStore(st)
	return arts
}

// inheritBase fills zero-valued base parameters — the "zero means inherit
// the session" convention Sweep and Bench share.
func (e *Engine) inheritBase(seed *int64, scale *float64, profileTraces, evalTraces *int) {
	if *seed == 0 {
		*seed = e.seed
	}
	if *scale == 0 {
		*scale = e.scale
	}
	if *profileTraces == 0 {
		*profileTraces = e.profileTraces
	}
	if *evalTraces == 0 {
		*evalTraces = e.evalTraces
	}
}

// Bench runs the replay-core benchmark harness (cells stay strictly serial
// so they are comparable across runs; generation uses the session workers
// and, when the config's base parameters match the session's, the session
// artifact cache). Zero-valued config fields — seed, scale, trace windows,
// machine, workers — inherit the session's. Progress lines go to the
// session's WithProgress writer.
func (e *Engine) Bench(ctx context.Context, cfg BenchConfig) (*BenchReport, error) {
	return e.BenchProgress(ctx, cfg, e.progress)
}

// BenchProgress is Bench with a per-call progress writer (nil discards):
// the hook for servers that stream one session's bench progress to the
// requesting client — the session-wide WithProgress writer cannot
// distinguish callers.
func (e *Engine) BenchProgress(ctx context.Context, cfg BenchConfig, progress io.Writer) (*BenchReport, error) {
	resolved := cfg
	e.inheritBase(&resolved.Seed, &resolved.Scale, &resolved.ProfileTraces, &resolved.EvalTraces)
	if cfg.SeedSet {
		// An explicit zero seed is a value, not "inherit": undo the
		// zero-means-inherit resolution and keep it explicit downstream so
		// the harness does not re-default it either.
		resolved.Seed = cfg.Seed
	}
	resolved.SeedSet = true
	if resolved.Machine.Cores == 0 {
		resolved.Machine = e.machine
	}
	if resolved.Workers == 0 {
		resolved.Workers = e.workers
	}
	arts := e.artifactsFor(resolved.Seed, resolved.Scale, resolved.ProfileTraces, resolved.EvalTraces)
	return bench.RunWith(ctx, resolved, progress, arts)
}

// GateBench runs the benchmark harness on the session (see Bench) and
// gates the fresh report against a recorded baseline: per-cell speedups
// are computed, each cell's events/sec is normalized by the same run's
// Baseline-mechanism cell on the same workload so machine speed cancels
// out of the gated ratio, and the gate fails on the worst cell rather
// than the aggregate. The returned file carries the verdict (for the
// BENCH_*.json artifact); the error covers runs and pairs that cannot be
// judged — an incomparable baseline (different config, measurement
// bounds, or cell set) is refused, not compared. A judged regression is
// not an error: inspect Verdict.Pass.
func (e *Engine) GateBench(ctx context.Context, cfg BenchConfig, baseline *BenchReport, gate BenchGateConfig) (*BenchFile, *BenchVerdict, error) {
	if baseline == nil {
		return nil, nil, fmt.Errorf("addict: GateBench requires a baseline report")
	}
	rep, err := e.Bench(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	file, err := bench.Compare(baseline, rep)
	if err != nil {
		return nil, nil, err
	}
	verdict, err := file.ApplyGate(gate)
	if err != nil {
		return nil, nil, err
	}
	return file, verdict, nil
}

// Experiments regenerates the paper's evaluation on the session's
// parameters and worker pool, writing the report to out. With no ids it
// renders the full report (every table and figure, byte-identical for
// every worker count); with ids it runs those experiments in the given
// order ("table1", "fig1" ... "fig9", "ablations", "synthchar" — see
// ExperimentIDs). Cancellation stops the run between experiment units and
// leaves a clean partial report.
func (e *Engine) Experiments(ctx context.Context, out io.Writer, ids ...string) error {
	p := e.ExperimentParams()
	if len(ids) == 0 {
		return exp.RunAllParallelWith(ctx, out, p, e.workers, e.wb)
	}
	for _, id := range ids {
		if err := exp.RunExperimentWith(ctx, id, out, p, e.wb); err != nil {
			return err
		}
	}
	return nil
}
