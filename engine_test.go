package addict

// Internal test file (package addict, not addict_test): the differential
// tests below deliberately exercise the deprecated v1 wrappers, which
// in-package use keeps out of SA1019's scope.

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"addict/internal/sweep"
)

// tinyEngine returns a session at micro sizes shared by the tests here.
func tinyEngine(workers int) *Engine {
	return NewEngine(WithSeed(5), WithScale(0.05), WithTraceWindows(60, 60, 80), WithWorkers(workers))
}

// TestExperimentIDsSorted is the regression test for the map-iteration-
// order bug: the ids must come back sorted, every call.
func TestExperimentIDsSorted(t *testing.T) {
	for i := 0; i < 10; i++ {
		ids := ExperimentIDs()
		if !sort.StringsAreSorted(ids) {
			t.Fatalf("ExperimentIDs() not sorted: %v", ids)
		}
		if len(ids) < 12 {
			t.Fatalf("only %d ids", len(ids))
		}
	}
}

// TestEngineMatchesDeprecatedSweep: the deprecated RunSweep wrapper, the
// pre-session execution path (sweep.Run), and Engine.Sweep must emit
// byte-identical tables for the same grid.
func TestEngineMatchesDeprecatedSweep(t *testing.T) {
	spec := SweepSpec{
		Seed: 7, Scale: 0.05, ProfileTraces: 40, EvalTraces: 40,
		Workloads:  []string{"TPC-B"},
		Mechanisms: []string{"Baseline", "ADDICT"},
		Threads:    []int{2, 4},
	}
	for _, format := range []string{"table", "csv", "jsonl"} {
		var v1, v1direct, v2 bytes.Buffer
		if err := RunSweep(&v1, spec, format, 2); err != nil {
			t.Fatal(err)
		}
		em, err := sweep.NewEmitter(format, &v1direct)
		if err != nil {
			t.Fatal(err)
		}
		if err := sweep.Run(spec, em, 2); err != nil {
			t.Fatal(err)
		}
		if err := NewEngine(WithWorkers(2)).Sweep(context.Background(), &v2, spec, format); err != nil {
			t.Fatal(err)
		}
		if v1.Len() == 0 {
			t.Fatalf("%s: empty sweep output", format)
		}
		if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
			t.Errorf("%s: deprecated RunSweep and Engine.Sweep diverge", format)
		}
		if !bytes.Equal(v1direct.Bytes(), v2.Bytes()) {
			t.Errorf("%s: pre-session sweep.Run and Engine.Sweep diverge", format)
		}
	}
}

// TestEngineMatchesDeprecatedExperiments: the deprecated experiment
// wrappers and Engine.Experiments must render byte-identical reports —
// single experiments and the full report alike.
func TestEngineMatchesDeprecatedExperiments(t *testing.T) {
	e := tinyEngine(2)
	p := e.ExperimentParams()
	ctx := context.Background()

	var v1 bytes.Buffer
	if err := RunExperimentParallel("fig1", &v1, p, 2); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := e.Experiments(ctx, &v2, "fig1"); err != nil {
		t.Fatal(err)
	}
	if v1.Len() == 0 || !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Error("deprecated RunExperimentParallel and Engine.Experiments diverge on fig1")
	}

	var full1, full2 bytes.Buffer
	RunAllExperiments(&full1, p)
	if err := tinyEngine(4).Experiments(ctx, &full2); err != nil {
		t.Fatal(err)
	}
	if full1.Len() == 0 {
		t.Fatal("deprecated full report is empty")
	}
	if !bytes.Equal(full1.Bytes(), full2.Bytes()) {
		t.Error("deprecated RunAllExperiments and Engine.Experiments diverge on the full report")
	}
}

// TestEngineSessionReuse: repeated calls on one session must return the
// identical cached artifacts (pointer equality), and mixed entry points
// must agree.
func TestEngineSessionReuse(t *testing.T) {
	e := tinyEngine(2)
	ctx := context.Background()

	t1, err := e.Traces(ctx, "TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Traces(ctx, "TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("Traces not cached across calls")
	}
	p1, err := e.Profile(ctx, "TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Profile(ctx, "TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Profile not cached across calls")
	}
	r, err := e.Schedule(ctx, ADDICT, "TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	all, err := e.ScheduleAll(ctx, "TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	if all[ADDICT].Makespan != r.Makespan {
		t.Error("ScheduleAll does not reuse the cached Schedule result")
	}

	// The profiling and evaluation windows must stay disjoint.
	ps, err := e.ProfilingTraces(ctx, "TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	if ps == t1 || ps.Digest() == t1.Digest() {
		t.Error("profiling window aliases the evaluation window")
	}
}

// TestEngineConcurrentUse hammers one session from many goroutines across
// entry points — the -race stress of the session cache. Every goroutine
// must observe the same artifact pointers and identical results.
func TestEngineConcurrentUse(t *testing.T) {
	e := tinyEngine(4)
	ctx := context.Background()
	names := []string{"TPC-B", "TPC-C"}

	const goroutines = 12
	type view struct {
		set      *TraceSet
		makespan uint64
		sweepOut []byte
	}
	views := make([]view, goroutines)
	errs := make([]error, goroutines)
	spec := SweepSpec{
		Seed: 5, Scale: 0.05, ProfileTraces: 60, EvalTraces: 60,
		Workloads: []string{"TPC-B"}, Mechanisms: []string{"Baseline"},
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := names[g%len(names)]
			set, err := e.Traces(ctx, name)
			if err != nil {
				errs[g] = err
				return
			}
			res, err := e.Schedule(ctx, Mechanisms[g%len(Mechanisms)], name)
			if err != nil {
				errs[g] = err
				return
			}
			var buf bytes.Buffer
			if err := e.Sweep(ctx, &buf, spec, "csv"); err != nil {
				errs[g] = err
				return
			}
			views[g] = view{set: set, makespan: res.Makespan, sweepOut: buf.Bytes()}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := range views {
		// Goroutine g%len(names) requested the same workload: one cached
		// instance must serve both.
		if views[g].set != views[g%len(names)].set {
			t.Errorf("goroutine %d saw a different trace-set instance", g)
		}
		if !bytes.Equal(views[g].sweepOut, views[0].sweepOut) {
			t.Errorf("goroutine %d saw different sweep bytes", g)
		}
		// Goroutine g+8 hit the same (workload, mechanism) cell.
		if h := g + len(names)*len(Mechanisms); h < goroutines && views[g].makespan != views[h].makespan {
			t.Errorf("goroutines %d/%d disagree on makespan: %d vs %d", g, h, views[g].makespan, views[h].makespan)
		}
	}
}

// TestEngineCancellation: a cancelled context aborts Engine pipelines with
// its error, and — because failed computations are evicted, never cached —
// the same session then serves a live context normally.
func TestEngineCancellation(t *testing.T) {
	e := tinyEngine(2)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := e.Traces(cancelled, "TPC-B"); err == nil {
		t.Fatal("Traces with a cancelled context returned nil error")
	}
	var buf bytes.Buffer
	if err := e.Sweep(cancelled, &buf, SweepSpec{Workloads: []string{"TPC-B"}}, "csv"); err == nil {
		t.Fatal("Sweep with a cancelled context returned nil error")
	}
	if err := e.Experiments(cancelled, &buf, "fig1"); err == nil {
		t.Fatal("Experiments with a cancelled context returned nil error")
	}

	// The cancelled attempts must not have poisoned the session cache.
	ctx := context.Background()
	set, err := e.Traces(ctx, "TPC-B")
	if err != nil {
		t.Fatalf("session poisoned by cancelled call: %v", err)
	}
	if len(set.Traces) != 60 {
		t.Fatalf("got %d traces, want 60", len(set.Traces))
	}
	if _, err := e.Schedule(ctx, Baseline, "TPC-B"); err != nil {
		t.Fatalf("Schedule after cancelled calls: %v", err)
	}
}

// TestEngineCancellationIsPrompt: cancelling mid-run must abort a long
// pipeline well before it would complete.
func TestEngineCancellationIsPrompt(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	e := NewEngine(WithSeed(9), WithScale(0.5), WithTraceWindows(2000, 2000, 0), WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.Traces(ctx, "TPC-C") // far more work than 150ms allows
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled generation returned nil error")
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
}

// TestEngineUnknownNames: every by-name entry point funnels through the
// one registry, so unknown names fail uniformly.
func TestEngineUnknownNames(t *testing.T) {
	e := tinyEngine(1)
	ctx := context.Background()
	if _, err := e.Traces(ctx, "nope"); err == nil {
		t.Error("Traces accepted an unknown name")
	}
	if _, err := e.Schedule(ctx, Baseline, "nope"); err == nil {
		t.Error("Schedule accepted an unknown name")
	}
	if _, err := NewWorkload("nope", 1, 1); err == nil {
		t.Error("NewWorkload accepted an unknown name")
	}
	// The synth name space resolves everywhere too.
	if _, err := NewWorkload("synth:uniform-ro", 1, 0.02); err != nil {
		t.Errorf("NewWorkload rejected a synth name: %v", err)
	}
	if _, err := e.Traces(ctx, "synth:uniform-ro"); err != nil {
		t.Errorf("Traces rejected a synth name: %v", err)
	}
}

// TestEngineBenchSharesSession: a session-compatible bench config reuses
// the session cache (the report stays structurally sound either way).
func TestEngineBenchSharesSession(t *testing.T) {
	if testing.Short() {
		t.Skip("bench cells take ~300ms each")
	}
	e := tinyEngine(2)
	ctx := context.Background()
	cfg := BenchConfig{
		Workloads:   []string{"TPC-B"},
		Mechanisms:  Mechanisms[:1],
		MinRuns:     1,
		MinDuration: time.Millisecond,
	}
	rep, err := e.Bench(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Workload != "TPC-B" {
		t.Fatalf("unexpected report cells: %+v", rep.Cells)
	}
	if rep.Seed != 5 || rep.Scale != 0.05 {
		t.Errorf("bench did not inherit session parameters: seed=%d scale=%v", rep.Seed, rep.Scale)
	}
}

// TestEngineGateBench: the session gate runs the harness and judges the
// fresh report per cell against the baseline, recording the verdict in
// the returned file; nil and incomparable baselines are refused.
func TestEngineGateBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the bench harness")
	}
	e := tinyEngine(2)
	ctx := context.Background()
	cfg := BenchConfig{
		Workloads:   []string{"TPC-B"},
		MinRuns:     1,
		MinDuration: time.Millisecond,
	}
	base, err := e.Bench(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	file, verdict, err := e.GateBench(ctx, cfg, base, BenchGateConfig{MaxCellRegress: 0.9, MaxRegress: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Pass {
		t.Errorf("self-comparison failed a 90%% budget: %s", verdict.Summary())
	}
	if file.Gate != verdict || len(verdict.Cells) != len(Mechanisms) {
		t.Errorf("verdict not recorded in the file or wrong cell count: %d", len(verdict.Cells))
	}
	if _, _, err := e.GateBench(ctx, cfg, nil, BenchGateConfig{MaxCellRegress: 0.9}); err == nil {
		t.Error("nil baseline accepted")
	}

	// An explicit zero seed is a value, not "inherit the session".
	zero := cfg
	zero.Seed, zero.SeedSet = 0, true
	rep0, err := e.Bench(ctx, zero)
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Seed != 0 {
		t.Errorf("explicit zero seed resolved to %d, want 0", rep0.Seed)
	}
	// ... and the resulting report is not comparable to the seed-5 one.
	if _, _, err := e.GateBench(ctx, cfg, rep0, BenchGateConfig{MaxCellRegress: 0.9}); err == nil {
		t.Error("mismatched-seed baseline accepted")
	}
}

// TestDeprecatedWrappersStillServe keeps the v1 surface alive end to end:
// each wrapper must produce the same artifacts as its Engine counterpart.
func TestDeprecatedWrappersStillServe(t *testing.T) {
	ctx := context.Background()
	v1, err := GenerateTracesSharded("TPC-B", 5, 0.05, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewEngine(WithSeed(5), WithScale(0.05), WithWorkers(2)).GenerateTraces(ctx, "TPC-B", 30)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Digest() != v2.Digest() {
		t.Error("GenerateTracesSharded diverges from Engine.GenerateTraces")
	}

	spec, err := ParseSynthWorkload("synth:uniform-ro")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := GenerateSynthTracesSharded(spec, 5, 0.02, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewEngine(WithSeed(5), WithScale(0.02), WithWorkers(2)).SynthTraces(ctx, spec, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Digest() != s2.Digest() {
		t.Error("GenerateSynthTracesSharded diverges from Engine.SynthTraces")
	}

	var sb strings.Builder
	if err := RunExperiment("table1", &sb, QuickExperimentParams()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("RunExperiment(table1) output missing header")
	}
}
