package addict

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// storedTinyEngine is tinyEngine with an on-disk artifact store attached.
func storedTinyEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e := NewEngine(WithSeed(5), WithScale(0.05), WithTraceWindows(60, 60, 80),
		WithWorkers(2), WithStore(dir, 0))
	if err := e.StoreErr(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestWarmStartSweepByteIdentical is the store's acceptance differential:
// a cold session fills the store, a second session (fresh process state,
// same directory) reruns the same sweep — the JSONL output must be
// byte-identical, the warm run must hit the store, and it must compute
// strictly less (nothing new to persist).
func TestWarmStartSweepByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := SweepSpec{
		Workloads:  []string{"synth:uniform-ro", "synth:hotset-write"},
		Mechanisms: []string{"Baseline", "ADDICT"},
		Threads:    []int{2},
	}

	cold := storedTinyEngine(t, dir)
	var coldOut bytes.Buffer
	if err := cold.Sweep(ctx, &coldOut, spec, "jsonl"); err != nil {
		t.Fatal(err)
	}
	coldStore := cold.CacheStats().Store
	if coldStore == nil {
		t.Fatal("no store counters on a stored session")
	}
	if coldStore.Writes == 0 {
		t.Fatalf("cold sweep persisted nothing: %+v", coldStore)
	}

	warm := storedTinyEngine(t, dir)
	var warmOut bytes.Buffer
	if err := warm.Sweep(ctx, &warmOut, spec, "jsonl"); err != nil {
		t.Fatal(err)
	}
	if coldOut.Len() == 0 {
		t.Fatal("empty sweep output")
	}
	if !bytes.Equal(coldOut.Bytes(), warmOut.Bytes()) {
		t.Errorf("warm sweep output differs from cold:\ncold:\n%s\nwarm:\n%s", coldOut.String(), warmOut.String())
	}
	warmStore := warm.CacheStats().Store
	if warmStore == nil || warmStore.Hits == 0 {
		t.Fatalf("warm sweep never hit the store: %+v", warmStore)
	}
	// Every artifact came from disk: the warm run had nothing new to
	// persist — the "measurably fewer computations" check.
	if warmStore.Writes != 0 {
		t.Errorf("warm sweep recomputed %d artifacts it should have loaded", warmStore.Writes)
	}
	if warmStore.VerifyFailures != 0 {
		t.Errorf("warm sweep hit corruption: %+v", warmStore)
	}
}

// TestWarmStartSweepMismatchedParams: a sweep whose base parameters differ
// from the session's still warm-starts — the session store rides along into
// the per-run artifact cache.
func TestWarmStartSweepMismatchedParams(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	// Base parameters deliberately differ from the session's (seed 5,
	// scale 0.05, 60-trace windows).
	spec := SweepSpec{
		Seed: 7, Scale: 0.05, ProfileTraces: 40, EvalTraces: 40,
		Workloads:  []string{"synth:uniform-ro"},
		Mechanisms: []string{"Baseline"},
	}

	cold := storedTinyEngine(t, dir)
	var coldOut bytes.Buffer
	if err := cold.Sweep(ctx, &coldOut, spec, "jsonl"); err != nil {
		t.Fatal(err)
	}
	warm := storedTinyEngine(t, dir)
	var warmOut bytes.Buffer
	if err := warm.Sweep(ctx, &warmOut, spec, "jsonl"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldOut.Bytes(), warmOut.Bytes()) {
		t.Error("mismatched-parameter warm sweep diverged from cold")
	}
	warmStore := warm.CacheStats().Store
	if warmStore == nil || warmStore.Hits == 0 {
		t.Fatalf("mismatched-parameter sweep never hit the store: %+v", warmStore)
	}
}

// TestWarmStartBenchReport: the bench harness warm-starts generation and
// profiling from the store, and the report's deterministic content (cell
// set, events per replay) is identical — timing is a measurement and is
// compared nowhere.
func TestWarmStartBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the bench harness")
	}
	dir := t.TempDir()
	ctx := context.Background()
	cfg := BenchConfig{
		Workloads:   []string{"synth:uniform-ro"},
		Mechanisms:  Mechanisms[:2],
		MinRuns:     1,
		MinDuration: time.Millisecond,
	}

	cold := storedTinyEngine(t, dir)
	repCold, err := cold.Bench(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := storedTinyEngine(t, dir)
	repWarm, err := warm.Bench(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(repWarm.Cells) != len(repCold.Cells) {
		t.Fatalf("cell count differs: %d vs %d", len(repWarm.Cells), len(repCold.Cells))
	}
	for i := range repCold.Cells {
		c, w := repCold.Cells[i], repWarm.Cells[i]
		if c.Workload != w.Workload || c.Mechanism != w.Mechanism || c.Events != w.Events {
			t.Errorf("cell %d deterministic content differs: %+v vs %+v", i, c, w)
		}
	}
	warmStore := warm.CacheStats().Store
	if warmStore == nil || warmStore.Hits == 0 {
		t.Errorf("warm bench never hit the store: %+v", warmStore)
	}
	if warmStore != nil && warmStore.Writes != 0 {
		t.Errorf("warm bench recomputed %d artifacts it should have loaded", warmStore.Writes)
	}
}
