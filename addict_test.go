package addict_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"addict"
)

// TestPublicPipeline exercises the documented end-to-end flow: build a
// workload, profile it, and compare ADDICT against Baseline.
func TestPublicPipeline(t *testing.T) {
	w := addict.NewTPCB(1, 0.05)
	profSet := addict.GenerateTraces(w, 80)
	prof := addict.FindMigrationPoints(profSet)
	evalSet := addict.GenerateTraces(w, 80)

	base, err := addict.Schedule(addict.Baseline, evalSet, addict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := addict.Schedule(addict.ADDICT, evalSet, addict.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.MPKI(res.Machine.L1IMisses) >= base.Machine.MPKI(base.Machine.L1IMisses) {
		t.Error("ADDICT did not reduce L1-I MPKI through the public API")
	}
	pw := addict.AnalyzePower(res)
	if pw.AvgCorePower <= 0 {
		t.Error("power report empty")
	}
}

func TestNewWorkloadByName(t *testing.T) {
	for _, name := range []string{"TPC-B", "TPC-C", "TPC-E"} {
		w, err := addict.NewWorkload(name, 1, 0.02)
		if err != nil || w.Name() != name {
			t.Errorf("NewWorkload(%q) = %v, %v", name, w, err)
		}
	}
	if _, err := addict.NewWorkload("TPC-X", 1, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCustomWorkload(t *testing.T) {
	m := addict.NewStorageManager()
	tbl := m.CreateTable("kv")
	tbl.CreateIndex("kv_pk")
	pop := m.Begin()
	for i := 0; i < 500; i++ {
		if _, err := m.InsertTuple(pop, tbl, []uint64{uint64(i)}, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	m.Commit(pop)

	i := 0
	w, err := addict.NewCustomWorkload("KV", m, 1, []addict.TxnSpec{
		{Name: "Get", Weight: 0.8, Run: func(txn *addict.Txn) {
			m.IndexProbe(txn, tbl, tbl.Index(0), uint64(i%500))
			i++
		}},
		{Name: "Put", Weight: 0.2, Run: func(txn *addict.Txn) {
			rid, _, ok := m.IndexProbe(txn, tbl, tbl.Index(0), uint64(i%500))
			if ok {
				m.UpdateTuple(txn, tbl, rid, uint64(i%500), make([]byte, 64))
			}
			i++
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := addict.GenerateTraces(w, 50)
	if len(set.Traces) != 50 {
		t.Fatalf("traces = %d", len(set.Traces))
	}
	prof := addict.FindMigrationPoints(set)
	eval := addict.GenerateTraces(w, 50)
	res, err := addict.Schedule(addict.ADDICT, eval, addict.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 50 {
		t.Errorf("threads = %d", res.Threads)
	}
}

// TestSynthFacade exercises the synthetic-workload surface: presets,
// name parsing, compilation, and worker-count-independent sharded
// generation.
func TestSynthFacade(t *testing.T) {
	presets := addict.SynthPresets()
	if len(presets) < 4 {
		t.Fatalf("%d presets, want >= 4", len(presets))
	}
	spec, err := addict.ParseSynthWorkload("synth:zipf-hot-rw+w0.2")
	if err != nil {
		t.Fatal(err)
	}
	if spec.WriteFrac != 0.2 {
		t.Errorf("override not applied: %+v", spec)
	}
	if _, err := addict.ParseSynthWorkload("synth:nope"); err == nil {
		t.Error("unknown preset accepted")
	}

	w, err := addict.SynthBenchmark(spec, 7, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	set := addict.GenerateTraces(w, 10)
	if len(set.Traces) != 10 || set.Workload != "synth:zipf-hot-rw+w0.2" {
		t.Fatalf("got %q with %d traces", set.Workload, len(set.Traces))
	}

	ctx := context.Background()
	serial, err := addict.NewEngine(addict.WithSeed(7), addict.WithScale(0.02),
		addict.WithWorkers(1)).SynthTraces(ctx, spec, 30)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := addict.NewEngine(addict.WithSeed(7), addict.WithScale(0.02),
		addict.WithWorkers(4)).SynthTraces(ctx, spec, 30)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Digest() != parallel.Digest() {
		t.Error("sharded synth generation depends on worker count")
	}

	if _, err := addict.SynthBenchmark(addict.SynthSpec{Rows: 1}, 1, 1); err == nil {
		t.Error("invalid synth spec accepted")
	}
}

// TestNewCustomWorkloadValidation covers the facade's spec validation.
func TestNewCustomWorkloadValidation(t *testing.T) {
	m := addict.NewStorageManager()
	if _, err := addict.NewCustomWorkload("Empty", m, 1, nil); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := addict.NewCustomWorkload("ZeroW", m, 1, []addict.TxnSpec{
		{Name: "A", Weight: 0, Run: func(*addict.Txn) {}},
	}); err == nil {
		t.Error("all-zero weights accepted")
	}
}

func TestTraceCodecRoundtripPublic(t *testing.T) {
	w := addict.NewTPCB(1, 0.02)
	set := addict.GenerateTraces(w, 5)
	var buf bytes.Buffer
	if err := addict.WriteTraces(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := addict.ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 5 || got.Workload != "TPC-B" {
		t.Errorf("roundtrip: %d traces, workload %q", len(got.Traces), got.Workload)
	}
}

func TestRunExperimentByID(t *testing.T) {
	var sb strings.Builder
	ctx := context.Background()
	eng := addict.NewEngine(addict.WithScale(0.05), addict.WithTraceWindows(50, 250, 0))
	if err := eng.Experiments(ctx, &sb, "table1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("table1 output missing header")
	}
	if err := eng.Experiments(ctx, &sb, "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(addict.ExperimentIDs()) < 12 {
		t.Errorf("only %d experiment ids", len(addict.ExperimentIDs()))
	}
}

func TestProfilePersistence(t *testing.T) {
	w := addict.NewTPCB(1, 0.05)
	set := addict.GenerateTraces(w, 60)
	prof := addict.FindMigrationPoints(set)
	var buf bytes.Buffer
	if err := addict.WriteProfile(&buf, prof); err != nil {
		t.Fatal(err)
	}
	got, err := addict.ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A reloaded (static, a-priori) profile must schedule identically.
	eval := addict.GenerateTraces(w, 60)
	r1, err := addict.Schedule(addict.ADDICT, eval, addict.Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := addict.Schedule(addict.ADDICT, eval, addict.Options{Profile: got})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Migrations != r2.Migrations {
		t.Errorf("reloaded profile schedules differently: %d/%d vs %d/%d",
			r1.Makespan, r1.Migrations, r2.Makespan, r2.Migrations)
	}
}

func TestScheduleOnline(t *testing.T) {
	w := addict.NewTPCB(1, 0.05)
	set := addict.GenerateTraces(w, 120)
	res, prof, err := addict.ScheduleOnline(set, 40, addict.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || res.Migrations == 0 {
		t.Error("online scheduling learned nothing or never migrated")
	}
	if _, _, err := addict.ScheduleOnline(set, 0, addict.Options{}); err == nil {
		t.Error("invalid ramp-up accepted")
	}
}

func TestMachinePresets(t *testing.T) {
	if addict.ShallowMachine().PrivateL2 != nil {
		t.Error("shallow machine has a private L2")
	}
	if addict.DeepMachine().PrivateL2 == nil {
		t.Error("deep machine lacks a private L2")
	}
}
