module addict

go 1.22
