#!/bin/sh
# Docs hygiene: every internal/ package must carry a package-level doc
# comment ("// Package <name> ...") in at least one non-test file —
# preferably its doc.go — stating what it implements and which paper
# section/figure it reproduces.
set -eu
cd "$(dirname "$0")/.."
status=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    found=0
    for f in "$dir"*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q "^// Package $pkg " "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "missing package comment: $dir (want '// Package $pkg ...' in a non-test file)" >&2
        status=1
    fi
done
exit $status
