#!/bin/sh
# cancel-smoke.sh <binary> [args...] — the cancellation smoke check: start
# the command, let it get into its pipeline, SIGINT it, and assert it exits
# non-zero within 2 seconds (the context-cancellation acceptance bound for
# every addict command).
set -u

"$@" >/dev/null 2>&1 &
pid=$!
sleep 1
if ! kill -INT "$pid" 2>/dev/null; then
    echo "cancel-smoke: $1 exited before SIGINT (expected a long-running pipeline)" >&2
    exit 1
fi
# Millisecond timing (GNU date): whole-second arithmetic would admit up
# to ~3s through a 2-second bound.
start=$(date +%s%3N)
wait "$pid"
status=$?
elapsed=$(($(date +%s%3N) - start))
if [ "$status" -eq 0 ]; then
    echo "cancel-smoke: $1 exited 0 after SIGINT, want non-zero" >&2
    exit 1
fi
if [ "$elapsed" -gt 2000 ]; then
    echo "cancel-smoke: $1 took ${elapsed}ms to exit after SIGINT, want <= 2s" >&2
    exit 1
fi
echo "cancel-smoke: $1 exited $status after ${elapsed}ms"
