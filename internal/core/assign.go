package core

import (
	"fmt"

	"addict/internal/trace"
)

// This file implements Step 2's core assignment (Algorithm 2 lines 1-14)
// and the Section 3.2.3 load balancing: dropping internal migration points
// of infrequent operations when points outnumber cores, and replicating
// cores for frequent operations when cores outnumber points.

// PointAssignment maps one migration point to its core set.
type PointAssignment struct {
	// Addr is the migration-point instruction address (0 for entries).
	Addr uint64
	// Prev is the previous migration address in the sequence; a thread
	// migrates at Addr only after passing Prev (Algorithm 2 line 25). Zero
	// means "operation entry".
	Prev uint64
	// Cores lists the cores serving this point (≥1; >1 after surplus
	// replication).
	Cores []int
}

// OpAssignment is the per-operation slice of a transaction's core map.
type OpAssignment struct {
	Op trace.OpType
	// Entry is the operation-entry point (Addr=0).
	Entry PointAssignment
	// Points are the internal migration points in sequence order (possibly
	// truncated by load balancing).
	Points []PointAssignment
	// Dropped counts internal points removed by load balancing.
	Dropped int
	// Frequency is the op's instance count from profiling (the
	// load-balancing priority).
	Frequency int
}

// TxnAssignment is the full core map of one transaction type.
type TxnAssignment struct {
	Type trace.TxnType
	Name string
	// Entry is the transaction-entry point ("each transaction takes core0
	// as their entry core").
	Entry PointAssignment
	// Ops holds per-operation assignments keyed by operation.
	Ops map[trace.OpType]*OpAssignment
	// OpOrder preserves assignment order.
	OpOrder []trace.OpType
	// Fallback is set when even the operation entries do not fit the
	// machine ("ADDICT can either fallback to traditional scheduling or
	// switch to a single-core technique", Section 3.2.3).
	Fallback bool
	// CoresUsed is the number of distinct cores in the map.
	CoresUsed int
}

// Assignment is Algorithm 2's output: a core map per transaction type.
type Assignment struct {
	Workload string
	Cores    int
	PerTxn   map[trace.TxnType]*TxnAssignment
}

// Assign builds core assignments for every transaction type in the profile
// on a machine with `cores` cores. Core ids are logical per type, exactly
// as in Algorithm 2 ("each transaction takes core0 as their entry core");
// the scheduler may remap them physically (see Rotate) to run batches of
// different types on disjoint cores.
func (p *Profile) Assign(cores int) *Assignment {
	if cores < 1 {
		panic(fmt.Sprintf("core: assign to %d cores", cores))
	}
	a := &Assignment{Workload: p.Workload, Cores: cores, PerTxn: make(map[trace.TxnType]*TxnAssignment)}
	for _, tt := range p.SortedTypes() {
		a.PerTxn[tt] = assignTxn(p.Txns[tt], cores)
	}
	return a
}

// Rotate shifts every core id of a transaction's map by offset (mod cores).
// The scheduler uses per-type offsets to realize Section 3.2.3's "run
// multiple batches of transactions in parallel": different types land on
// different physical cores where possible, so consecutive batches of
// different types do not fight over the same entry cores.
func (ta *TxnAssignment) Rotate(offset, cores int) {
	if offset == 0 {
		return
	}
	rot := func(pt *PointAssignment) {
		for i, c := range pt.Cores {
			pt.Cores[i] = (c + offset) % cores
		}
	}
	rot(&ta.Entry)
	for _, oa := range ta.Ops {
		rot(&oa.Entry)
		for i := range oa.Points {
			rot(&oa.Points[i])
		}
	}
}

// assignTxn performs Algorithm 2 lines 1-14 for one transaction type, with
// load balancing.
func assignTxn(tp *TxnProfile, cores int) *TxnAssignment {
	ta := &TxnAssignment{
		Type:    tp.Type,
		Name:    tp.Name,
		Ops:     make(map[trace.OpType]*OpAssignment),
		OpOrder: append([]trace.OpType(nil), tp.OpOrder...),
	}

	// Working copy of the per-op point sequences, to be truncated if the
	// machine is small.
	type opWork struct {
		op   trace.OpType
		seq  []uint64
		freq int
		drop int
	}
	var work []*opWork
	for _, op := range tp.OpOrder {
		prof := tp.Ops[op]
		work = append(work, &opWork{op: op, seq: append([]uint64(nil), prof.Seq...), freq: prof.Instances})
	}

	needed := func() int {
		n := 1 // transaction entry
		for _, w := range work {
			n += 1 + len(w.seq)
		}
		return n
	}

	// More migration points than cores: "start ignoring the internal
	// migration points in less frequent database operations starting from
	// the last migration point" (Section 3.2.3).
	for needed() > cores {
		var victim *opWork
		for _, w := range work {
			if len(w.seq) == 0 {
				continue
			}
			if victim == nil || w.freq < victim.freq {
				victim = w
			}
		}
		if victim == nil {
			// Even entries alone exceed the machine.
			ta.Fallback = true
			break
		}
		victim.seq = victim.seq[:len(victim.seq)-1]
		victim.drop++
	}

	// Sequential core numbering (Algorithm 2 lines 3-14).
	core := 0
	ta.Entry = PointAssignment{Cores: []int{core}}
	for _, w := range work {
		core++
		oa := &OpAssignment{Op: w.op, Frequency: w.freq, Dropped: w.drop}
		oa.Entry = PointAssignment{Cores: []int{core % cores}}
		prev := uint64(0)
		for _, addr := range w.seq {
			core++
			oa.Points = append(oa.Points, PointAssignment{Addr: addr, Prev: prev, Cores: []int{core % cores}})
			prev = addr
		}
		ta.Ops[w.op] = oa
	}
	used := core + 1
	if used > cores {
		used = cores
	}
	ta.CoresUsed = used

	// Fewer migration points than cores: "ADDICT distributes the remaining
	// cores based on the frequency of operations" — surplus cores become
	// replicas, apportioned proportionally to each point's load (its
	// operation's instance count) by highest-averages assignment, so a
	// probe invoked 13× per transaction ends up with ~13× the core share
	// of a once-per-transaction insert.
	surplus := cores - (core + 1)
	if surplus > 0 && !ta.Fallback {
		type target struct {
			pt   *PointAssignment
			load float64
			ord  int // assignment order for deterministic tie-breaking
		}
		var targets []*target
		ord := 0
		for _, w := range work {
			oa := ta.Ops[w.op]
			targets = append(targets, &target{pt: &oa.Entry, load: float64(w.freq), ord: ord})
			ord++
			for i := range oa.Points {
				targets = append(targets, &target{pt: &oa.Points[i], load: float64(w.freq), ord: ord})
				ord++
			}
		}
		next := core + 1
		for g := 0; g < surplus && len(targets) > 0; g++ {
			best := targets[0]
			bestAvg := best.load / float64(len(best.pt.Cores))
			for _, tg := range targets[1:] {
				avg := tg.load / float64(len(tg.pt.Cores))
				// Ties go to the point with fewer cores (the paper's ten-core
				// example gives the leftover core to update's entry), then to
				// assignment order.
				better := avg > bestAvg ||
					(avg == bestAvg && len(tg.pt.Cores) < len(best.pt.Cores)) ||
					(avg == bestAvg && len(tg.pt.Cores) == len(best.pt.Cores) && tg.ord < best.ord)
				if better {
					best, bestAvg = tg, avg
				}
			}
			best.pt.Cores = append(best.pt.Cores, next%cores)
			next++
		}
		if len(targets) > 0 {
			ta.CoresUsed = cores
		}
	}
	return ta
}

// TotalPoints returns the number of migration points (entries + internal)
// in the map — the space the paper budgets at 152 bits per point
// (Section 3.2.4).
func (ta *TxnAssignment) TotalPoints() int {
	n := 1
	for _, oa := range ta.Ops {
		n += 1 + len(oa.Points)
	}
	return n
}

// HardwareBits estimates the per-core state cost in bits using the paper's
// accounting: 152 bits per migration point plus 92 bits of current-state
// registers (Section 3.2.4).
func (ta *TxnAssignment) HardwareBits() int {
	return ta.TotalPoints()*152 + 92
}
