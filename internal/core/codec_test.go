package core

import (
	"bytes"
	"strings"
	"testing"

	"addict/internal/trace"
)

func sampleProfile() *Profile {
	return &Profile{
		Workload: "TPC-X",
		Config:   DefaultProfileConfig(),
		Txns: map[trace.TxnType]*TxnProfile{
			0: {
				Type: 0, Name: "Alpha", Instances: 900,
				Ops: map[trace.OpType]*OpProfile{
					trace.OpIndexProbe: {Op: trace.OpIndexProbe, Seq: []uint64{0x1000, 0x2040}, SeqCount: 890, Instances: 900, Alternatives: 3},
					trace.OpCommit:     {Op: trace.OpCommit, SeqCount: 900, Instances: 900, Alternatives: 1},
				},
				OpOrder: []trace.OpType{trace.OpIndexProbe, trace.OpCommit},
			},
			3: {
				Type: 3, Name: "Beta", Instances: 100,
				Ops: map[trace.OpType]*OpProfile{
					trace.OpInsertTuple: {Op: trace.OpInsertTuple, Seq: []uint64{0x8000}, SeqCount: 51, Instances: 100, Alternatives: 12},
				},
				OpOrder: []trace.OpType{trace.OpInsertTuple},
			},
		},
	}
}

func TestProfileCodecRoundtrip(t *testing.T) {
	p := sampleProfile()
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Errorf("roundtrip mismatch:\n p=%+v\n q=%+v", p, q)
	}
	if q.Config.L1I.SizeBytes != 32<<10 || q.Config.L1I.Ways != 8 {
		t.Errorf("L1-I geometry lost: %+v", q.Config.L1I)
	}
	// The reloaded profile must drive assignment identically.
	a1, a2 := p.Assign(16), q.Assign(16)
	for tt := range a1.PerTxn {
		if a1.PerTxn[tt].TotalPoints() != a2.PerTxn[tt].TotalPoints() {
			t.Errorf("assignment differs after reload for type %d", tt)
		}
	}
}

func TestProfileCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte("NOPE...."))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadProfile(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
		t.Error("truncated profile accepted")
	}
}

func TestProfileEqualAndDiff(t *testing.T) {
	p, q := sampleProfile(), sampleProfile()
	if !p.Equal(q) {
		t.Fatal("identical profiles unequal")
	}
	if d := p.Diff(q); len(d) != 0 {
		t.Fatalf("diff of identical profiles: %v", d)
	}
	q.Txns[0].Ops[trace.OpIndexProbe].Seq = []uint64{0x9999}
	if p.Equal(q) {
		t.Error("modified profile equal")
	}
	d := p.Diff(q)
	if len(d) != 1 || !strings.Contains(d[0], "Alpha/probe") {
		t.Errorf("diff = %v", d)
	}
	// Missing type.
	delete(q.Txns, 3)
	if len(p.Diff(q)) != 2 {
		t.Errorf("diff with missing type = %v", p.Diff(q))
	}
}

// TestProfileCodecOnRealProfile round-trips a profile built from actual
// traces (integration of profiler + codec).
func TestProfileCodecOnRealProfile(t *testing.T) {
	tr := mkOpTrace(0, map[trace.OpType][]uint64{
		trace.OpIndexProbe: blocks(0, 1, 2, 3, 4),
	}, []trace.OpType{trace.OpIndexProbe})
	s := &trace.Set{Workload: "w", TypeNames: []string{"x"}, Traces: []*trace.Trace{tr, tr}}
	p := FindMigrationPoints(s, tinyCfg())
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Error("real profile roundtrip mismatch")
	}
}
