package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"addict/internal/trace"
)

// Profile serialization — the "static" deployment of Step 1: "Step 1 of
// ADDICT can be static and performed a priori as well. In this case, ADDICT
// would migrate transactions over the dedicated cores as soon as the real
// workload run starts" (Section 3.1.3). A profile saved from a profiling
// run is reloaded at serving time with no ramp-up.
//
// Format (little-endian):
//
//	magic "ADPF" | version u16 | workload string | l1iSize u32 | l1iWays u16
//	txn count u16, then per txn:
//	  type u16 | name string | instances u32 | op count u16, per op:
//	    op u8 | seqCount u32 | instances u32 | alternatives u32
//	    seq len u16 | seq addrs u64...
//
// Strings are u16 length + bytes. Op order is preserved.

const (
	profileMagic   = "ADPF"
	profileVersion = 1
)

// WriteProfile serializes a profile to w.
func WriteProfile(w io.Writer, p *Profile) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(profileMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	write := func(v interface{}) error { return binary.Write(bw, le, v) }
	if err := write(uint16(profileVersion)); err != nil {
		return err
	}
	if err := writeStr(bw, p.Workload); err != nil {
		return err
	}
	if err := write(uint32(p.Config.L1I.SizeBytes)); err != nil {
		return err
	}
	if err := write(uint16(p.Config.L1I.Ways)); err != nil {
		return err
	}
	types := p.SortedTypes()
	if err := write(uint16(len(types))); err != nil {
		return err
	}
	for _, tt := range types {
		tp := p.Txns[tt]
		if err := write(uint16(tt)); err != nil {
			return err
		}
		if err := writeStr(bw, tp.Name); err != nil {
			return err
		}
		if err := write(uint32(tp.Instances)); err != nil {
			return err
		}
		if err := write(uint16(len(tp.OpOrder))); err != nil {
			return err
		}
		for _, op := range tp.OpOrder {
			o := tp.Ops[op]
			if err := write(uint8(op)); err != nil {
				return err
			}
			if err := write(uint32(o.SeqCount)); err != nil {
				return err
			}
			if err := write(uint32(o.Instances)); err != nil {
				return err
			}
			if err := write(uint32(o.Alternatives)); err != nil {
				return err
			}
			if err := write(uint16(len(o.Seq))); err != nil {
				return err
			}
			for _, a := range o.Seq {
				if err := write(a); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadProfile deserializes a profile written by WriteProfile. The NoMigrate
// filter is not persisted (it only affects profiling, which already
// happened).
func ReadProfile(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading profile magic: %w", err)
	}
	if string(magic) != profileMagic {
		return nil, fmt.Errorf("core: bad profile magic %q", magic)
	}
	le := binary.LittleEndian
	read := func(v interface{}) error { return binary.Read(br, le, v) }
	var version uint16
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != profileVersion {
		return nil, fmt.Errorf("core: unsupported profile version %d", version)
	}
	p := &Profile{Txns: make(map[trace.TxnType]*TxnProfile)}
	var err error
	if p.Workload, err = readStr(br); err != nil {
		return nil, err
	}
	var l1iSize uint32
	var l1iWays uint16
	if err := read(&l1iSize); err != nil {
		return nil, err
	}
	if err := read(&l1iWays); err != nil {
		return nil, err
	}
	p.Config.L1I.SizeBytes = int(l1iSize)
	p.Config.L1I.Ways = int(l1iWays)
	p.Config.L1I.Name = "L1-I"
	var nTypes uint16
	if err := read(&nTypes); err != nil {
		return nil, err
	}
	for i := 0; i < int(nTypes); i++ {
		var tt uint16
		if err := read(&tt); err != nil {
			return nil, err
		}
		tp := &TxnProfile{Type: trace.TxnType(tt), Ops: make(map[trace.OpType]*OpProfile)}
		if tp.Name, err = readStr(br); err != nil {
			return nil, err
		}
		var inst uint32
		if err := read(&inst); err != nil {
			return nil, err
		}
		tp.Instances = int(inst)
		var nOps uint16
		if err := read(&nOps); err != nil {
			return nil, err
		}
		for j := 0; j < int(nOps); j++ {
			var op uint8
			if err := read(&op); err != nil {
				return nil, err
			}
			o := &OpProfile{Op: trace.OpType(op)}
			var sc, in, alt uint32
			if err := read(&sc); err != nil {
				return nil, err
			}
			if err := read(&in); err != nil {
				return nil, err
			}
			if err := read(&alt); err != nil {
				return nil, err
			}
			o.SeqCount, o.Instances, o.Alternatives = int(sc), int(in), int(alt)
			var nSeq uint16
			if err := read(&nSeq); err != nil {
				return nil, err
			}
			o.Seq = make([]uint64, nSeq)
			for k := range o.Seq {
				if err := read(&o.Seq[k]); err != nil {
					return nil, err
				}
			}
			tp.Ops[o.Op] = o
			tp.OpOrder = append(tp.OpOrder, o.Op)
		}
		p.Txns[tp.Type] = tp
	}
	return p, nil
}

// Equal compares two profiles structurally (for round-trip tests and
// profile-drift detection between profiling runs).
func (p *Profile) Equal(q *Profile) bool {
	if p.Workload != q.Workload || len(p.Txns) != len(q.Txns) {
		return false
	}
	for tt, tp := range p.Txns {
		tq, ok := q.Txns[tt]
		if !ok || tp.Name != tq.Name || tp.Instances != tq.Instances {
			return false
		}
		if len(tp.OpOrder) != len(tq.OpOrder) {
			return false
		}
		for i := range tp.OpOrder {
			if tp.OpOrder[i] != tq.OpOrder[i] {
				return false
			}
		}
		for op, o := range tp.Ops {
			oq, ok := tq.Ops[op]
			if !ok || o.SeqCount != oq.SeqCount || o.Instances != oq.Instances ||
				o.Alternatives != oq.Alternatives || !SeqEqual(o.Seq, oq.Seq) {
				return false
			}
		}
	}
	return true
}

// Diff reports (txn, op) pairs whose chosen sequences differ between two
// profiles — profile drift across profiling runs or software versions.
func (p *Profile) Diff(q *Profile) []string {
	var out []string
	for tt, tp := range p.Txns {
		tq, ok := q.Txns[tt]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing in other profile", tp.Name))
			continue
		}
		for op, o := range tp.Ops {
			oq, ok := tq.Ops[op]
			if !ok {
				out = append(out, fmt.Sprintf("%s/%s: missing in other profile", tp.Name, op))
				continue
			}
			if !SeqEqual(o.Seq, oq.Seq) {
				out = append(out, fmt.Sprintf("%s/%s: %d vs %d points", tp.Name, op, len(o.Seq), len(oq.Seq)))
			}
		}
	}
	sort.Strings(out)
	return out
}

func writeStr(w io.Writer, s string) error {
	if len(s) > 0xffff {
		return fmt.Errorf("core: string too long")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readStr(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
