package core

import (
	"sort"

	"addict/internal/trace"
)

// Stability measurement (Section 4.2 / Figure 4): an operation instance is
// stable if running Algorithm 1 on it alone reproduces exactly the
// migration points chosen during the 1000-trace profiling phase.

// StabilityRow is one bar of Figure 4: a (transaction, operation) pair with
// its exact-match percentage.
type StabilityRow struct {
	TxnName   string
	Op        trace.OpType
	Instances int
	Matches   int
}

// MatchRate returns the fraction of instances whose points match exactly.
func (r StabilityRow) MatchRate() float64 {
	if r.Instances == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.Instances)
}

// StabilityCounter streams evaluation traces against a profile — built for
// the 10,000-trace runs, which never hold more than one trace in memory.
type StabilityCounter struct {
	prof *Profile
	rows map[stKey]*StabilityRow
}

type stKey struct {
	tt trace.TxnType
	op trace.OpType
}

// NewStabilityCounter prepares a streaming stability measurement against
// prof.
func NewStabilityCounter(prof *Profile) *StabilityCounter {
	return &StabilityCounter{prof: prof, rows: make(map[stKey]*StabilityRow)}
}

// AddTrace folds one evaluation trace in.
func (s *StabilityCounter) AddTrace(t *trace.Trace) {
	tp, ok := s.prof.Txns[t.Type]
	if !ok {
		return // type unseen during profiling
	}
	for _, inst := range OpSequences(t, s.prof.Config) {
		op, ok := tp.Ops[inst.Op]
		if !ok {
			continue
		}
		k := stKey{tt: t.Type, op: inst.Op}
		row, ok := s.rows[k]
		if !ok {
			row = &StabilityRow{TxnName: tp.Name, Op: inst.Op}
			s.rows[k] = row
		}
		row.Instances++
		if SeqEqual(inst.Seq, op.Seq) {
			row.Matches++
		}
	}
}

// Rows returns the accumulated results, sorted by transaction name then
// operation for stable reports.
func (s *StabilityCounter) Rows() []StabilityRow {
	out := make([]StabilityRow, 0, len(s.rows))
	for _, r := range s.rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TxnName != out[j].TxnName {
			return out[i].TxnName < out[j].TxnName
		}
		return out[i].Op < out[j].Op
	})
	return out
}
