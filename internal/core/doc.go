// Package core implements ADDICT — the paper's contribution: a transaction
// scheduling mechanism that chases L1 instruction-cache locality by
// splitting database operations into cache-sized actions and migrating
// transactions across cores at the action boundaries (Section 3).
//
// Step 1 (Algorithm 1, profile.go) profiles traces to find per-
// (transaction type, operation) migration points: the instruction addresses
// whose fetch would overflow an empty L1-I, collected as sequences and
// voted by frequency. Step 2 (assign.go) maps the points to cores with the
// Section 3.2.3 load-balancing rules; tracker.go is the per-thread runtime
// automaton the scheduler consults (Algorithm 2's migration loop);
// stability.go measures how stable the discovered points stay over large
// trace streams (Figure 4).
package core
