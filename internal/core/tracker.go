package core

import "addict/internal/trace"

// Tracker is the per-thread runtime automaton of Algorithm 2 (lines 16-31):
// it watches a transaction's event stream and reports when the thread
// crosses a migration point, enforcing the previous-point order check
// ("it migrates a transaction upon encountering a migration point only if
// that transaction has already executed the previous migration point in
// the sequence", Section 3.2.1).
type Tracker struct {
	asg   *TxnAssignment
	curOp *OpAssignment
	prev  uint64
	inOp  bool
}

// NewTracker starts tracking one transaction under its type's core map.
func NewTracker(asg *TxnAssignment) *Tracker {
	return &Tracker{asg: asg}
}

// MakeTracker is NewTracker by value, for callers that keep trackers in a
// preallocated slice (the zero-alloc replay path).
func MakeTracker(asg *TxnAssignment) Tracker {
	return Tracker{asg: asg}
}

// Next consumes one event and returns the migration point crossed, if any.
// The returned pointer aliases the assignment (treat as read-only).
func (tk *Tracker) Next(ev trace.Event) (*PointAssignment, bool) {
	if tk.asg == nil || tk.asg.Fallback {
		return nil, false
	}
	switch ev.Kind {
	case trace.KindTxnBegin:
		return &tk.asg.Entry, true
	case trace.KindOpBegin:
		oa, ok := tk.asg.Ops[ev.Op]
		if !ok {
			// An operation unseen during profiling: no scheduling hints;
			// the thread stays where it is (profiling with 1000 traces
			// makes this rare — Figure 4).
			tk.curOp = nil
			tk.inOp = true
			return nil, false
		}
		tk.curOp = oa
		tk.prev = 0
		tk.inOp = true
		return &oa.Entry, true
	case trace.KindOpEnd:
		tk.curOp = nil
		tk.inOp = false
		return nil, false
	case trace.KindInstr:
		if tk.curOp == nil {
			return nil, false
		}
		for i := range tk.curOp.Points {
			pt := &tk.curOp.Points[i]
			if pt.Addr == ev.Addr && pt.Prev == tk.prev {
				tk.prev = ev.Addr
				return pt, true
			}
		}
		return nil, false
	default:
		return nil, false
	}
}

// Reset prepares the tracker for a new transaction of the same type.
func (tk *Tracker) Reset() {
	tk.curOp = nil
	tk.prev = 0
	tk.inOp = false
}
