package core

import (
	"testing"

	"addict/internal/cache"
	"addict/internal/trace"
)

// tinyL1I: 4 blocks, direct-mapped-ish (2 ways, 2 sets) so tests trigger
// evictions with few addresses.
func tinyCfg() ProfileConfig {
	return ProfileConfig{L1I: cache.Config{SizeBytes: 4 * trace.BlockSize, Ways: 2, Name: "L1-I"}}
}

// mkOpTrace builds a single-txn trace with one op of the given instruction
// addresses.
func mkOpTrace(tt trace.TxnType, ops map[trace.OpType][]uint64, order []trace.OpType) *trace.Trace {
	b := trace.NewBuffer(true)
	b.TxnBegin(tt, "x")
	for _, op := range order {
		b.OpBegin(op)
		for _, a := range ops[op] {
			b.Instr(a)
		}
		b.OpEnd(op)
	}
	b.TxnEnd()
	return b.Take()[0]
}

func blocks(idx ...int) []uint64 {
	out := make([]uint64, len(idx))
	for i, v := range idx {
		out[i] = uint64(v) * trace.BlockSize
	}
	return out
}

func TestProfileNoEvictionsNoPoints(t *testing.T) {
	// 3 distinct blocks fit a 4-block cache: no evictions → empty sequence.
	tr := mkOpTrace(0, map[trace.OpType][]uint64{
		trace.OpIndexProbe: blocks(0, 1, 2),
	}, []trace.OpType{trace.OpIndexProbe})
	s := &trace.Set{Workload: "w", TypeNames: []string{"x"}, Traces: []*trace.Trace{tr}}
	prof := FindMigrationPoints(s, tinyCfg())
	op := prof.Txns[0].Ops[trace.OpIndexProbe]
	if len(op.Seq) != 0 {
		t.Errorf("Seq = %v, want empty", op.Seq)
	}
	if op.Instances != 1 || op.SeqCount != 1 {
		t.Errorf("instances=%d count=%d", op.Instances, op.SeqCount)
	}
}

func TestProfileEvictionCreatesPoint(t *testing.T) {
	// Blocks 0..4 with a 4-block (2set×2way) cache: blocks 0,2,4 map to set
	// 0; fetching 4 evicts 0 → migration point at block 4.
	tr := mkOpTrace(0, map[trace.OpType][]uint64{
		trace.OpIndexProbe: blocks(0, 1, 2, 3, 4),
	}, []trace.OpType{trace.OpIndexProbe})
	s := &trace.Set{Workload: "w", TypeNames: []string{"x"}, Traces: []*trace.Trace{tr}}
	prof := FindMigrationPoints(s, tinyCfg())
	op := prof.Txns[0].Ops[trace.OpIndexProbe]
	if len(op.Seq) != 1 || op.Seq[0] != 4*trace.BlockSize {
		t.Errorf("Seq = %#v, want [block 4]", op.Seq)
	}
}

func TestProfileMostFrequentWins(t *testing.T) {
	// 9 instances evict at block 4; 1 instance (different path) evicts at
	// block 6 — mirroring the paper's example where sequence (1) with
	// count 9 beats sequence (2) with count 1 (Section 3.1.2).
	var traces []*trace.Trace
	for i := 0; i < 9; i++ {
		traces = append(traces, mkOpTrace(0, map[trace.OpType][]uint64{
			trace.OpInsertTuple: blocks(0, 1, 2, 3, 4),
		}, []trace.OpType{trace.OpInsertTuple}))
	}
	traces = append(traces, mkOpTrace(0, map[trace.OpType][]uint64{
		trace.OpInsertTuple: blocks(0, 1, 2, 3, 6),
	}, []trace.OpType{trace.OpInsertTuple}))
	s := &trace.Set{Workload: "w", TypeNames: []string{"x"}, Traces: traces}
	prof := FindMigrationPoints(s, tinyCfg())
	op := prof.Txns[0].Ops[trace.OpInsertTuple]
	if len(op.Seq) != 1 || op.Seq[0] != 4*trace.BlockSize {
		t.Errorf("Seq = %#v, want the 9-instance sequence", op.Seq)
	}
	if op.SeqCount != 9 || op.Instances != 10 || op.Alternatives != 2 {
		t.Errorf("count=%d instances=%d alts=%d", op.SeqCount, op.Instances, op.Alternatives)
	}
	if got := op.Support(); got != 0.9 {
		t.Errorf("Support = %v", got)
	}
}

func TestProfileNoMigrateZoneDefersPoint(t *testing.T) {
	cfg := tinyCfg()
	// Block 4 is inside a critical section: the eviction there must not
	// become a migration point; block 6's later eviction becomes one.
	cfg.NoMigrate = func(addr uint64) bool { return addr == 4*trace.BlockSize }
	tr := mkOpTrace(0, map[trace.OpType][]uint64{
		trace.OpIndexProbe: blocks(0, 1, 2, 3, 4, 6, 0, 2),
	}, []trace.OpType{trace.OpIndexProbe})
	s := &trace.Set{Workload: "w", TypeNames: []string{"x"}, Traces: []*trace.Trace{tr}}
	prof := FindMigrationPoints(s, cfg)
	op := prof.Txns[0].Ops[trace.OpIndexProbe]
	for _, a := range op.Seq {
		if a == 4*trace.BlockSize {
			t.Errorf("migration point inside no-migrate zone: %v", op.Seq)
		}
	}
	if len(op.Seq) == 0 {
		t.Error("deferred point never placed")
	}
}

func TestProfileSeparatesTxnTypes(t *testing.T) {
	t1 := mkOpTrace(0, map[trace.OpType][]uint64{trace.OpIndexProbe: blocks(0, 1, 2, 3, 4)},
		[]trace.OpType{trace.OpIndexProbe})
	t2 := mkOpTrace(1, map[trace.OpType][]uint64{trace.OpIndexProbe: blocks(8, 9, 10, 11, 12)},
		[]trace.OpType{trace.OpIndexProbe})
	s := &trace.Set{Workload: "w", TypeNames: []string{"a", "b"}, Traces: []*trace.Trace{t1, t2}}
	prof := FindMigrationPoints(s, tinyCfg())
	if len(prof.Txns) != 2 {
		t.Fatalf("profiled %d types", len(prof.Txns))
	}
	a := prof.Txns[0].Ops[trace.OpIndexProbe].Seq
	b := prof.Txns[1].Ops[trace.OpIndexProbe].Seq
	if SeqEqual(a, b) {
		t.Error("per-type sequences should differ (ADDICT picks points per transaction type)")
	}
}

// TestPaperWorkedExample reproduces Sections 3.1.2 + 3.2.2: two transaction
// types with given migration sequences; checks the core assignment and the
// prev-ordering migration behavior.
func TestPaperWorkedExample(t *testing.T) {
	// Profile equivalent to the example's map m:
	//   xct1 → insert → 0x8b5f5f 0x899397 → 9
	//   xct2 → probe  → 0x98560e 0x8d97bc → 10
	//   xct2 → update → 0x9557f0 → 5
	// (Addresses block-aligned here; the paper's raw PCs identify blocks.)
	a1, a2 := uint64(0x8b5f40), uint64(0x899380) // xct1 insert points
	b1, b2 := uint64(0x985600), uint64(0x8d9780) // xct2 probe points
	c1 := uint64(0x9557c0)                       // xct2 update point
	prof := &Profile{
		Workload: "example",
		Txns: map[trace.TxnType]*TxnProfile{
			1: {
				Type: 1, Name: "xct1", Instances: 10,
				Ops: map[trace.OpType]*OpProfile{
					trace.OpInsertTuple: {Op: trace.OpInsertTuple, Seq: []uint64{a1, a2}, SeqCount: 9, Instances: 10},
				},
				OpOrder: []trace.OpType{trace.OpInsertTuple},
			},
			2: {
				Type: 2, Name: "xct2", Instances: 15,
				Ops: map[trace.OpType]*OpProfile{
					trace.OpIndexProbe:  {Op: trace.OpIndexProbe, Seq: []uint64{b1, b2}, SeqCount: 10, Instances: 10},
					trace.OpUpdateTuple: {Op: trace.OpUpdateTuple, Seq: []uint64{c1}, SeqCount: 5, Instances: 5},
				},
				OpOrder: []trace.OpType{trace.OpIndexProbe, trace.OpUpdateTuple},
			},
		},
		Config: DefaultProfileConfig(),
	}

	asg := prof.Assign(16)
	x1 := asg.PerTxn[1]
	// Expected (Section 3.2.2): xct1 entry→core0, insert entry→core1,
	// 0x8b5f5f→core2 (prev 0), 0x899397→core3 (prev 0x8b5f5f).
	if x1.Entry.Cores[0] != 0 {
		t.Errorf("xct1 entry core = %v", x1.Entry.Cores)
	}
	ins := x1.Ops[trace.OpInsertTuple]
	if ins.Entry.Cores[0] != 1 {
		t.Errorf("insert entry core = %v", ins.Entry.Cores)
	}
	if ins.Points[0].Cores[0] != 2 || ins.Points[0].Prev != 0 {
		t.Errorf("point0 = %+v", ins.Points[0])
	}
	if ins.Points[1].Cores[0] != 3 || ins.Points[1].Prev != a1 {
		t.Errorf("point1 = %+v", ins.Points[1])
	}
	x2 := asg.PerTxn[2]
	upd := x2.Ops[trace.OpUpdateTuple]
	// probe: entry core1, points core2,core3 → update entry core4, point core5.
	if upd.Entry.Cores[0] != 4 || upd.Points[0].Cores[0] != 5 {
		t.Errorf("xct2 update assignment: entry=%v point=%v", upd.Entry.Cores, upd.Points[0].Cores)
	}

	// Migration behavior (Section 3.2.2's instruction sequence): 0x899397
	// first seen BEFORE 0x8b5f5f must not migrate; after it, it must.
	tk := NewTracker(x1)
	step := func(ev trace.Event) (int, bool) {
		pt, ok := tk.Next(ev)
		if !ok {
			return -1, false
		}
		return pt.Cores[0], true
	}
	if c, ok := step(trace.Event{Kind: trace.KindTxnBegin, Aux: 1}); !ok || c != 0 {
		t.Fatalf("txn entry → %d,%v", c, ok)
	}
	if c, ok := step(trace.Event{Kind: trace.KindOpBegin, Op: trace.OpInsertTuple}); !ok || c != 1 {
		t.Fatalf("insert entry → %d,%v", c, ok)
	}
	if _, ok := step(trace.Event{Kind: trace.KindInstr, Addr: a2}); ok {
		t.Fatal("0x899397 migrated before its previous point (order check broken)")
	}
	if c, ok := step(trace.Event{Kind: trace.KindInstr, Addr: a1}); !ok || c != 2 {
		t.Fatalf("0x8b5f5f → %d,%v, want core2", c, ok)
	}
	if c, ok := step(trace.Event{Kind: trace.KindInstr, Addr: a2}); !ok || c != 3 {
		t.Fatalf("0x899397 (after prev) → %d,%v, want core3", c, ok)
	}
	// Re-encountering a consumed point must not re-migrate.
	if _, ok := step(trace.Event{Kind: trace.KindInstr, Addr: a1}); ok {
		t.Fatal("re-encountered point migrated again")
	}
}

// TestLoadBalancingDropsLeastFrequentFirst reproduces the Section 3.2.3
// four-core example: with xct2's probe (freq 10, 2 points) and update
// (freq 5, 1 point), a 4-core machine drops update's 0x9557f0 first, then
// probe's 0x8d97bc.
func TestLoadBalancingDropsLeastFrequentFirst(t *testing.T) {
	prof := &Profile{
		Workload: "example",
		Txns: map[trace.TxnType]*TxnProfile{
			2: {
				Type: 2, Name: "xct2", Instances: 15,
				Ops: map[trace.OpType]*OpProfile{
					trace.OpIndexProbe:  {Op: trace.OpIndexProbe, Seq: []uint64{0x1000, 0x2000}, Instances: 10},
					trace.OpUpdateTuple: {Op: trace.OpUpdateTuple, Seq: []uint64{0x3000}, Instances: 5},
				},
				OpOrder: []trace.OpType{trace.OpIndexProbe, trace.OpUpdateTuple},
			},
		},
		Config: DefaultProfileConfig(),
	}
	asg := prof.Assign(4)
	ta := asg.PerTxn[2]
	if ta.Fallback {
		t.Fatal("unexpected fallback")
	}
	upd := ta.Ops[trace.OpUpdateTuple]
	if len(upd.Points) != 0 || upd.Dropped != 1 {
		t.Errorf("update points = %d (dropped %d), want all dropped", len(upd.Points), upd.Dropped)
	}
	probe := ta.Ops[trace.OpIndexProbe]
	if len(probe.Points) != 1 || probe.Dropped != 1 {
		t.Errorf("probe points = %d (dropped %d), want 1 kept", len(probe.Points), probe.Dropped)
	}
	// 4 cores: txn entry 0, probe entry 1, probe point 2, update entry 3.
	if probe.Points[0].Cores[0] != 2 || ta.Ops[trace.OpUpdateTuple].Entry.Cores[0] != 3 {
		t.Errorf("assignment after dropping: probe pt %v, update entry %v",
			probe.Points[0].Cores, upd.Entry.Cores)
	}
}

// TestLoadBalancingReplicatesFrequentOps reproduces the ten-core case:
// probe's points get two cores each, update's entry gets the leftover.
func TestLoadBalancingReplicatesFrequentOps(t *testing.T) {
	prof := &Profile{
		Workload: "example",
		Txns: map[trace.TxnType]*TxnProfile{
			2: {
				Type: 2, Name: "xct2", Instances: 15,
				Ops: map[trace.OpType]*OpProfile{
					trace.OpIndexProbe:  {Op: trace.OpIndexProbe, Seq: []uint64{0x1000, 0x2000}, Instances: 10},
					trace.OpUpdateTuple: {Op: trace.OpUpdateTuple, Seq: []uint64{0x3000}, Instances: 5},
				},
				OpOrder: []trace.OpType{trace.OpIndexProbe, trace.OpUpdateTuple},
			},
		},
		Config: DefaultProfileConfig(),
	}
	asg := prof.Assign(10)
	ta := asg.PerTxn[2]
	probe := ta.Ops[trace.OpIndexProbe]
	// Base map uses 6 cores; surplus 4 goes to probe (freq 10) first:
	// probe entry, point0, point1 get replicas, then update entry.
	if len(probe.Entry.Cores) != 2 || len(probe.Points[0].Cores) != 2 || len(probe.Points[1].Cores) != 2 {
		t.Errorf("probe replicas: entry=%v p0=%v p1=%v",
			probe.Entry.Cores, probe.Points[0].Cores, probe.Points[1].Cores)
	}
	upd := ta.Ops[trace.OpUpdateTuple]
	if len(upd.Entry.Cores) != 2 {
		t.Errorf("update entry replicas = %v, want the leftover core", upd.Entry.Cores)
	}
}

func TestFallbackWhenEntriesExceedCores(t *testing.T) {
	ops := make(map[trace.OpType]*OpProfile)
	var order []trace.OpType
	for i := trace.OpIndexProbe; i <= trace.OpDeleteTuple; i++ {
		ops[i] = &OpProfile{Op: i, Instances: 1}
		order = append(order, i)
	}
	prof := &Profile{
		Workload: "x",
		Txns: map[trace.TxnType]*TxnProfile{
			0: {Type: 0, Name: "big", Ops: ops, OpOrder: order},
		},
		Config: DefaultProfileConfig(),
	}
	asg := prof.Assign(3) // 1 txn entry + 5 op entries > 3 cores
	if !asg.PerTxn[0].Fallback {
		t.Error("expected fallback on a machine smaller than the op entries")
	}
	// Tracker under fallback never migrates.
	tk := NewTracker(asg.PerTxn[0])
	if _, ok := tk.Next(trace.Event{Kind: trace.KindTxnBegin}); ok {
		t.Error("fallback tracker migrated")
	}
}

func TestTrackerUnknownOp(t *testing.T) {
	prof := &Profile{
		Workload: "x",
		Txns: map[trace.TxnType]*TxnProfile{
			0: {
				Type: 0, Name: "t",
				Ops: map[trace.OpType]*OpProfile{
					trace.OpIndexProbe: {Op: trace.OpIndexProbe, Seq: []uint64{0x40}, Instances: 3},
				},
				OpOrder: []trace.OpType{trace.OpIndexProbe},
			},
		},
		Config: DefaultProfileConfig(),
	}
	tk := NewTracker(prof.Assign(8).PerTxn[0])
	tk.Next(trace.Event{Kind: trace.KindTxnBegin})
	// An operation that was never profiled: no hint, no crash.
	if _, ok := tk.Next(trace.Event{Kind: trace.KindOpBegin, Op: trace.OpDeleteTuple}); ok {
		t.Error("unknown op produced a migration")
	}
	// Its instructions don't match probe's points either.
	if _, ok := tk.Next(trace.Event{Kind: trace.KindInstr, Addr: 0x40}); ok {
		t.Error("instruction inside unknown op migrated")
	}
	tk.Next(trace.Event{Kind: trace.KindOpEnd, Op: trace.OpDeleteTuple})
	// Back to a known op: works again.
	if _, ok := tk.Next(trace.Event{Kind: trace.KindOpBegin, Op: trace.OpIndexProbe}); !ok {
		t.Error("known op after unknown op did not migrate")
	}
}

func TestTrackerReset(t *testing.T) {
	prof := &Profile{
		Workload: "x",
		Txns: map[trace.TxnType]*TxnProfile{
			0: {
				Type: 0, Name: "t",
				Ops: map[trace.OpType]*OpProfile{
					trace.OpIndexProbe: {Op: trace.OpIndexProbe, Seq: []uint64{0x40, 0x80}, Instances: 3},
				},
				OpOrder: []trace.OpType{trace.OpIndexProbe},
			},
		},
		Config: DefaultProfileConfig(),
	}
	tk := NewTracker(prof.Assign(8).PerTxn[0])
	tk.Next(trace.Event{Kind: trace.KindOpBegin, Op: trace.OpIndexProbe})
	tk.Next(trace.Event{Kind: trace.KindInstr, Addr: 0x40})
	tk.Reset()
	// After reset the prev chain restarts: 0x80 must not fire first.
	tk.Next(trace.Event{Kind: trace.KindOpBegin, Op: trace.OpIndexProbe})
	if _, ok := tk.Next(trace.Event{Kind: trace.KindInstr, Addr: 0x80}); ok {
		t.Error("prev chain survived Reset")
	}
}

func TestStabilityCounter(t *testing.T) {
	cfg := tinyCfg()
	stable := func() *trace.Trace {
		return mkOpTrace(0, map[trace.OpType][]uint64{trace.OpIndexProbe: blocks(0, 1, 2, 3, 4)},
			[]trace.OpType{trace.OpIndexProbe})
	}
	divergent := mkOpTrace(0, map[trace.OpType][]uint64{trace.OpIndexProbe: blocks(0, 1, 2, 3, 6)},
		[]trace.OpType{trace.OpIndexProbe})
	s := &trace.Set{Workload: "w", TypeNames: []string{"x"},
		Traces: []*trace.Trace{stable(), stable(), stable()}}
	prof := FindMigrationPoints(s, cfg)

	sc := NewStabilityCounter(prof)
	sc.AddTrace(stable())
	sc.AddTrace(stable())
	sc.AddTrace(divergent)
	rows := sc.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Instances != 3 || r.Matches != 2 {
		t.Errorf("row = %+v, want 2/3 matches", r)
	}
	if got := r.MatchRate(); got < 0.66 || got > 0.67 {
		t.Errorf("MatchRate = %v", got)
	}
}

func TestHardwareBudget(t *testing.T) {
	// Section 3.2.4: "a core can keep up to 50 migration points in less
	// than 1KB" — 50×152 + 92 bits < 8192 bits.
	ta := &TxnAssignment{Ops: map[trace.OpType]*OpAssignment{}}
	pts := make([]PointAssignment, 45)
	ta.Ops[trace.OpIndexProbe] = &OpAssignment{Points: pts} // 1 txn + 1 op entry + 45 = 47
	ta.Ops[trace.OpUpdateTuple] = &OpAssignment{Points: make([]PointAssignment, 2)}
	if ta.TotalPoints() != 50 {
		t.Fatalf("TotalPoints = %d", ta.TotalPoints())
	}
	if bits := ta.HardwareBits(); bits >= 8192 {
		t.Errorf("HardwareBits = %d, want < 8192 (1KB)", bits)
	}
}

func TestSeqEqual(t *testing.T) {
	if !SeqEqual(nil, nil) || !SeqEqual([]uint64{1}, []uint64{1}) {
		t.Error("equal sequences reported unequal")
	}
	if SeqEqual([]uint64{1}, []uint64{2}) || SeqEqual([]uint64{1}, []uint64{1, 2}) {
		t.Error("unequal sequences reported equal")
	}
}

func TestAssignDeterministic(t *testing.T) {
	tr := mkOpTrace(0, map[trace.OpType][]uint64{
		trace.OpIndexProbe:  blocks(0, 1, 2, 3, 4, 5, 6),
		trace.OpUpdateTuple: blocks(8, 9, 10, 11, 12),
	}, []trace.OpType{trace.OpIndexProbe, trace.OpUpdateTuple})
	s := &trace.Set{Workload: "w", TypeNames: []string{"x"}, Traces: []*trace.Trace{tr, tr, tr}}
	p1 := FindMigrationPoints(s, tinyCfg())
	p2 := FindMigrationPoints(s, tinyCfg())
	a1, a2 := p1.Assign(16), p2.Assign(16)
	for tt, t1 := range a1.PerTxn {
		t2 := a2.PerTxn[tt]
		for op, o1 := range t1.Ops {
			o2 := t2.Ops[op]
			if len(o1.Points) != len(o2.Points) {
				t.Fatalf("nondeterministic assignment for op %v", op)
			}
			for i := range o1.Points {
				if o1.Points[i].Addr != o2.Points[i].Addr || o1.Points[i].Cores[0] != o2.Points[i].Cores[0] {
					t.Fatalf("point %d differs across runs", i)
				}
			}
		}
	}
}
