package core

import (
	"fmt"
	"sort"
	"strings"

	"addict/internal/cache"
	"addict/internal/trace"
)

// ProfileConfig parameterizes Algorithm 1.
type ProfileConfig struct {
	// L1I is the instruction-cache geometry that defines "cache-sized
	// actions" (Table 1: 32KB, 8-way).
	L1I cache.Config
	// NoMigrate, when non-nil, reports addresses where migration points
	// must not be placed (short critical sections — Section 3.1.3). An
	// eviction inside such a routine is deferred: the point is placed at
	// the next eviction outside it.
	NoMigrate func(addr uint64) bool
}

// DefaultProfileConfig returns the Table 1 L1-I geometry with no
// no-migrate filter.
func DefaultProfileConfig() ProfileConfig {
	return ProfileConfig{L1I: cache.Config{SizeBytes: 32 << 10, Ways: 8, Name: "L1-I"}}
}

// OpProfile is the profiling result for one (transaction type, operation):
// the winning migration-point sequence and its support.
type OpProfile struct {
	// Op is the database operation.
	Op trace.OpType
	// Seq is the chosen migration-point sequence (instruction block
	// addresses, in execution order). Empty means the operation fits the
	// L1-I and migrates only at its entry.
	Seq []uint64
	// SeqCount is how many op instances produced exactly Seq.
	SeqCount int
	// Instances is the total op instances observed for this transaction
	// type.
	Instances int
	// Alternatives is the number of distinct sequences observed.
	Alternatives int
}

// Support returns SeqCount/Instances — how representative the winning
// sequence is (Figure 4's stability is the trace-replay version of this).
func (o *OpProfile) Support() float64 {
	if o.Instances == 0 {
		return 0
	}
	return float64(o.SeqCount) / float64(o.Instances)
}

// TxnProfile is the migration-point profile of one transaction type.
type TxnProfile struct {
	// Type and Name identify the transaction type.
	Type trace.TxnType
	Name string
	// Instances is the number of traces of this type profiled.
	Instances int
	// Ops holds the per-operation profiles, keyed by operation.
	Ops map[trace.OpType]*OpProfile
	// OpOrder lists operations by first appearance (Algorithm 2 assigns
	// cores in this order).
	OpOrder []trace.OpType
}

// Profile is Algorithm 1's output for a workload.
type Profile struct {
	// Workload is the benchmark name.
	Workload string
	// Txns maps transaction types to their profiles.
	Txns map[trace.TxnType]*TxnProfile
	// Config echoes the profiling parameters.
	Config ProfileConfig
}

// seqKey encodes an address sequence as a map key.
func seqKey(seq []uint64) string {
	var sb strings.Builder
	for _, a := range seq {
		fmt.Fprintf(&sb, "%x ", a)
	}
	return sb.String()
}

// profiler runs Algorithm 1's cache simulation over traces.
type profiler struct {
	cfg ProfileConfig
	l1i *cache.Cache
	// counts[xct][op][seqKey] = occurrences; firstSeen breaks ties
	// deterministically (the paper picks randomly among ties; a stable
	// choice keeps runs reproducible).
	counts    map[trace.TxnType]map[trace.OpType]map[string]*seqStat
	instances map[trace.TxnType]int
	opOrder   map[trace.TxnType][]trace.OpType
	names     map[trace.TxnType]string
	arrival   int // global arrival counter: unique first-seen indices
}

type seqStat struct {
	seq   []uint64
	count int
	first int // global arrival index for deterministic tie-breaking
}

func newProfiler(cfg ProfileConfig) *profiler {
	return &profiler{
		cfg:       cfg,
		l1i:       cache.New(cfg.L1I),
		counts:    make(map[trace.TxnType]map[trace.OpType]map[string]*seqStat),
		instances: make(map[trace.TxnType]int),
		opOrder:   make(map[trace.TxnType][]trace.OpType),
		names:     make(map[trace.TxnType]string),
	}
}

// addTrace folds one transaction trace into the profile (Algorithm 1 lines
// 2-16): the L1-I is emptied at transaction and operation boundaries and
// after every eviction-causing fetch, whose address joins the candidate
// sequence.
func (p *profiler) addTrace(t *trace.Trace) {
	xct := t.Type
	p.names[xct] = t.TypeName
	p.instances[xct]++
	if _, ok := p.counts[xct]; !ok {
		p.counts[xct] = make(map[trace.OpType]map[string]*seqStat)
	}
	var curOp trace.OpType
	inOp := false
	var seq []uint64

	for _, ev := range t.Events {
		switch ev.Kind {
		case trace.KindTxnBegin, trace.KindTxnEnd:
			p.l1i.Flush()
		case trace.KindOpBegin:
			p.l1i.Flush()
			curOp = ev.Op
			inOp = true
			seq = seq[:0]
			if _, seen := p.counts[xct][curOp]; !seen {
				p.counts[xct][curOp] = make(map[string]*seqStat)
				p.opOrder[xct] = append(p.opOrder[xct], curOp)
			}
		case trace.KindOpEnd:
			if !inOp {
				continue
			}
			key := seqKey(seq)
			bucket := p.counts[xct][curOp]
			st, ok := bucket[key]
			if !ok {
				st = &seqStat{seq: append([]uint64(nil), seq...), first: p.arrival}
				bucket[key] = st
			}
			st.count++
			p.arrival++
			p.l1i.Flush()
			inOp = false
		case trace.KindInstr:
			if !inOp {
				// Transaction glue outside operations warms the cache but
				// never creates migration points (Algorithm 1 records per
				// operation).
				p.l1i.Access(ev.Addr)
				continue
			}
			res := p.l1i.Access(ev.Addr)
			if res.Victim {
				if p.cfg.NoMigrate != nil && p.cfg.NoMigrate(ev.Addr) {
					// Deferred: tolerate the eviction, keep filling; the
					// next eviction outside the zone becomes the point.
					continue
				}
				p.l1i.Flush()
				p.l1i.Access(ev.Addr) // the triggering block starts the next action
				seq = append(seq, ev.Addr)
			}
		}
	}
}

// finish selects the most frequent sequence per (xct, op) — Algorithm 1
// line 17.
func (p *profiler) finish(workload string) *Profile {
	prof := &Profile{Workload: workload, Txns: make(map[trace.TxnType]*TxnProfile), Config: p.cfg}
	for xct, ops := range p.counts {
		tp := &TxnProfile{
			Type:      xct,
			Name:      p.names[xct],
			Instances: p.instances[xct],
			Ops:       make(map[trace.OpType]*OpProfile),
			OpOrder:   p.opOrder[xct],
		}
		for op, bucket := range ops {
			best := (*seqStat)(nil)
			total := 0
			for _, st := range bucket {
				total += st.count
				if best == nil || st.count > best.count ||
					(st.count == best.count && st.first < best.first) {
					best = st
				}
			}
			tp.Ops[op] = &OpProfile{
				Op:           op,
				Seq:          best.seq,
				SeqCount:     best.count,
				Instances:    total,
				Alternatives: len(bucket),
			}
		}
		prof.Txns[xct] = tp
	}
	return prof
}

// FindMigrationPoints runs Algorithm 1 over a set of profiling traces (the
// paper uses the first 1000 traces of each workload, Section 4.1).
func FindMigrationPoints(s *trace.Set, cfg ProfileConfig) *Profile {
	p := newProfiler(cfg)
	for _, t := range s.Traces {
		p.addTrace(t)
	}
	return p.finish(s.Workload)
}

// OpSequences extracts the eviction sequences of every operation instance
// in a single trace, using the same cache simulation as profiling — the
// unit of Figure 4's stability check.
func OpSequences(t *trace.Trace, cfg ProfileConfig) []InstanceSeq {
	var out []InstanceSeq
	l1i := cache.New(cfg.L1I)
	var curOp trace.OpType
	inOp := false
	var seq []uint64
	for _, ev := range t.Events {
		switch ev.Kind {
		case trace.KindTxnBegin, trace.KindTxnEnd:
			l1i.Flush()
		case trace.KindOpBegin:
			l1i.Flush()
			curOp, inOp = ev.Op, true
			seq = nil
		case trace.KindOpEnd:
			if inOp {
				out = append(out, InstanceSeq{Op: curOp, Seq: seq})
				inOp = false
				l1i.Flush()
			}
		case trace.KindInstr:
			res := l1i.Access(ev.Addr)
			if inOp && res.Victim {
				if cfg.NoMigrate != nil && cfg.NoMigrate(ev.Addr) {
					continue
				}
				l1i.Flush()
				l1i.Access(ev.Addr)
				seq = append(seq, ev.Addr)
			}
		}
	}
	return out
}

// InstanceSeq is one operation instance's eviction sequence.
type InstanceSeq struct {
	Op  trace.OpType
	Seq []uint64
}

// SeqEqual compares two migration-point sequences.
func SeqEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortedTypes returns the profiled transaction types in ascending order
// (deterministic iteration for reports and assignment).
func (p *Profile) SortedTypes() []trace.TxnType {
	out := make([]trace.TxnType, 0, len(p.Txns))
	for tt := range p.Txns {
		out = append(out, tt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
