package pool

import (
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 100 * time.Millisecond}, // clamped to attempt 1
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{5, 1600 * time.Millisecond},
		{6, 2 * time.Second}, // capped
		{50, 2 * time.Second},
	}
	for _, c := range cases {
		if got := Backoff(c.attempt, base, max); got != c.want {
			t.Errorf("Backoff(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
}

func TestBackoffUncapped(t *testing.T) {
	if got := Backoff(4, time.Second, 0); got != 8*time.Second {
		t.Errorf("uncapped Backoff(4) = %v, want 8s", got)
	}
}

// TestBackoffOverflowStopsAtCap drives the doubling far past the point a
// time.Duration would overflow: the schedule must stay pinned at max, never
// wrap negative.
func TestBackoffOverflowStopsAtCap(t *testing.T) {
	got := Backoff(200, time.Second, time.Minute)
	if got != time.Minute {
		t.Errorf("Backoff(200) = %v, want the 1m cap", got)
	}
}
