package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLRUEvictionOrder: with a unit-weight budget of 3, touching an entry
// protects it — the least-recently-used entry is the one that recomputes.
func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU[string](3, nil)
	ctx := context.Background()
	computes := map[string]int{}
	get := func(key string) string {
		v, err := l.Do(ctx, key, func() (string, error) {
			computes[key]++
			return "v:" + key, nil
		})
		if err != nil {
			t.Fatalf("Do(%q): %v", key, err)
		}
		return v
	}
	get("a")
	get("b")
	get("c")
	get("a") // touch: recency now a, c, b
	get("d") // evicts b
	if get("b"); computes["b"] != 2 {
		t.Errorf("b should have been evicted and recomputed, computes=%v", computes)
	}
	if get("a"); computes["a"] != 1 {
		t.Errorf("touched entry a was evicted, computes=%v", computes)
	}
	st := l.Stats()
	if st.Entries != 3 || st.Bytes != 3 {
		t.Errorf("want 3 resident unit-weight entries, got %+v", st)
	}
	if st.Evictions < 2 {
		t.Errorf("want >= 2 evictions (b, then one for b's return), got %+v", st)
	}
}

// TestLRUUnbounded: budget <= 0 never evicts — Flight behavior plus stats.
func TestLRUUnbounded(t *testing.T) {
	l := NewLRU[int](0, func(int) int64 { return 1 << 20 })
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := l.Do(ctx, key, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Evictions != 0 || st.Entries != 50 || st.Misses != 50 {
		t.Errorf("unbounded cache evicted or lost entries: %+v", st)
	}
}

// TestLRUSetBudget: lowering the budget on a live cache evicts down
// immediately.
func TestLRUSetBudget(t *testing.T) {
	l := NewLRU[int](0, nil)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		_, _ = l.Do(ctx, fmt.Sprintf("k%d", i), func() (int, error) { return i, nil })
	}
	l.SetBudget(4)
	st := l.Stats()
	if st.Entries != 4 || st.Evictions != 6 {
		t.Errorf("SetBudget(4) on 10 unit entries: want 4 resident / 6 evicted, got %+v", st)
	}
}

// TestLRUErrorNotCached: a failed computation is evicted, the key retries.
func TestLRUErrorNotCached(t *testing.T) {
	l := NewLRU[int](10, nil)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, err := l.Do(ctx, "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("want leader to see its error, got %v", err)
	}
	v, err := l.Do(ctx, "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after failure: got %d, %v", v, err)
	}
	if st := l.Stats(); st.Entries != 1 {
		t.Errorf("want only the successful entry resident, got %+v", st)
	}
}

// TestLRUOversizedEntry: an entry heavier than the whole budget still
// returns its value, it just never becomes resident.
func TestLRUOversizedEntry(t *testing.T) {
	l := NewLRU[int](5, func(int) int64 { return 100 })
	ctx := context.Background()
	v, err := l.Do(ctx, "big", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("oversized entry: got %d, %v", v, err)
	}
	st := l.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Evictions != 1 {
		t.Errorf("oversized entry should be immediately evicted: %+v", st)
	}
}

// TestLRUSingleFlight: concurrent callers of one key share one
// computation even while it is in flight.
func TestLRUSingleFlight(t *testing.T) {
	l := NewLRU[int](100, nil)
	ctx := context.Background()
	var computes atomic.Int64
	gate := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := l.Do(ctx, "k", func() (int, error) {
				computes.Add(1)
				<-gate // hold the computation so every caller piles up
				return 9, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("want 1 computation for %d concurrent callers, got %d", n, computes.Load())
	}
	for i, v := range results {
		if v != 9 {
			t.Errorf("caller %d got %d, want 9", i, v)
		}
	}
}

// TestLRUStressRace hammers a tiny-budget cache from many goroutines: the
// returned value is always the key's (no lost or crossed entries), and
// the eviction counter only ever grows.
func TestLRUStressRace(t *testing.T) {
	l := NewLRU[string](6, nil)
	ctx := context.Background()
	const workers, iters, keys = 8, 300, 16
	stop := make(chan struct{})
	var monotonic sync.WaitGroup
	monotonic.Add(1)
	go func() {
		defer monotonic.Done()
		var last CacheStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := l.Stats()
			if st.Evictions < last.Evictions || st.Hits < last.Hits || st.Misses < last.Misses {
				t.Errorf("counters went backwards: %+v then %+v", last, st)
				return
			}
			last = st
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (w*31+i*7)%keys)
				v, err := l.Do(ctx, key, func() (string, error) { return "v:" + key, nil })
				if err != nil {
					t.Errorf("Do(%q): %v", key, err)
					return
				}
				if v != "v:"+key {
					t.Errorf("Do(%q) returned %q — crossed entries", key, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	monotonic.Wait()
	st := l.Stats()
	if st.Bytes > 6 || st.Entries > 6 {
		t.Errorf("resident set exceeds budget after quiescence: %+v", st)
	}
	if st.Evictions == 0 {
		t.Errorf("16 keys through a 6-entry budget never evicted: %+v", st)
	}
}

// TestFlightStatsAndForget: leads/hits count computations and coalesced
// serves; Forget drops a memoized value (next Do recomputes) but leaves an
// in-flight computation coalescing.
func TestFlightStatsAndForget(t *testing.T) {
	var f Flight[int]
	ctx := context.Background()
	var computes atomic.Int64
	compute := func() (int, error) { computes.Add(1); return 1, nil }
	_, _ = f.Do(ctx, "k", compute)
	_, _ = f.Do(ctx, "k", compute)
	if st := f.Stats(); st.Leads != 1 || st.Hits != 1 {
		t.Errorf("want 1 lead / 1 hit, got %+v", st)
	}
	f.Forget("k")
	_, _ = f.Do(ctx, "k", compute)
	if computes.Load() != 2 {
		t.Errorf("Do after Forget should recompute, computes=%d", computes.Load())
	}

	// Forget during flight: the in-flight cell stays, waiters still
	// coalesce onto it.
	var g Flight[int]
	gate := make(chan struct{})
	entered := make(chan struct{})
	var inflight atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = g.Do(ctx, "k", func() (int, error) {
			inflight.Add(1)
			close(entered)
			<-gate
			return 5, nil
		})
	}()
	<-entered
	g.Forget("k") // must be a no-op: computation is live
	waiter := make(chan int, 1)
	go func() {
		v, _ := g.Do(ctx, "k", func() (int, error) {
			inflight.Add(1)
			return 6, nil
		})
		waiter <- v
	}()
	close(gate)
	<-done
	if v := <-waiter; v != 5 {
		t.Errorf("waiter got %d, want the in-flight leader's 5", v)
	}
	if inflight.Load() != 1 {
		t.Errorf("Forget on an in-flight key caused a second computation")
	}
}
