package pool

import (
	"context"
	"sync"
)

// CacheStats is a point-in-time snapshot of a cache's counters. Hits,
// Misses, and Evictions are monotonic over the cache's lifetime; Entries
// and Bytes describe the resident set at snapshot time. The JSON tags are
// the serving wire format (cmd/addict-serve exposes these via expvar).
type CacheStats struct {
	// Hits counts calls served without running the computation: a resident
	// entry, or a wait on another caller's in-flight computation.
	Hits uint64 `json:"hits"`
	// Misses counts computations started (single-flight leaders).
	Misses uint64 `json:"misses"`
	// Evictions counts entries removed to fit the weight budget.
	Evictions uint64 `json:"evictions"`
	// Entries is the resident entry count.
	Entries int64 `json:"entries"`
	// Bytes is the resident weight sum (the unit is whatever the weigh
	// function returns; the artifact caches weigh approximate bytes).
	Bytes int64 `json:"bytes"`
}

// lruCell is one in-flight or resident LRU computation. After done is
// closed, val/err/weight are immutable; prev/next/resident are guarded by
// the owning cache's mutex.
type lruCell[V any] struct {
	key        string
	done       chan struct{}
	val        V
	err        error
	weight     int64
	prev, next *lruCell[V]
	resident   bool
}

// LRU is Flight with a weight budget: a concurrency-safe, single-flight
// memoization cache that evicts least-recently-used entries once the
// resident weight exceeds the budget. It keeps Flight's contract — one
// computation per key no matter how many concurrent callers, failed or
// cancelled computations evicted rather than cached, waiters retrying with
// their own contexts — and adds bounded residency: every completed value
// is weighed, and the least-recently-used completed entries are dropped
// until the total fits. In-flight computations are never evicted (a live
// key is never computed twice), and eviction never corrupts a value a
// caller is about to receive — an evicted entry's value still returns to
// every caller already waiting on it; only later callers recompute.
//
// A budget <= 0 means unbounded, which makes LRU behave exactly like
// Flight plus statistics — the artifact caches (sweep.Artifacts,
// sweep.Workbench) run unbounded by default and are bounded by serving
// deployments (Engine WithCacheBudget, addict-serve -cache-budget).
type LRU[V any] struct {
	mu         sync.Mutex
	budget     int64
	weigh      func(V) int64
	m          map[string]*lruCell[V]
	head, tail *lruCell[V] // recency list over resident cells; head = most recent

	used      int64
	entries   int64
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewLRU builds a cache with the given weight budget (<= 0 = unbounded).
// weigh maps a completed value to its weight; nil weighs every entry 1,
// making the budget a max entry count.
func NewLRU[V any](budget int64, weigh func(V) int64) *LRU[V] {
	if weigh == nil {
		weigh = func(V) int64 { return 1 }
	}
	return &LRU[V]{budget: budget, weigh: weigh}
}

// SetBudget replaces the weight budget and immediately evicts down to it.
// Lowering the budget on a live cache is safe: values already handed out
// are unaffected, only residency changes.
func (l *LRU[V]) SetBudget(budget int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.budget = budget
	l.evictOver()
}

// Stats returns a snapshot of the cache counters.
func (l *LRU[V]) Stats() CacheStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return CacheStats{
		Hits:      l.hits,
		Misses:    l.misses,
		Evictions: l.evictions,
		Entries:   l.entries,
		Bytes:     l.used,
	}
}

// Do returns the cached value for key, computing it with fn on a miss.
// The contract matches Flight.Do — single-flight per key, ctx stops the
// wait on another caller's computation, errors are evicted and retried by
// live waiters, a panic in fn propagates to the leader — plus recency:
// a hit moves the entry to the front of the eviction order.
func (l *LRU[V]) Do(ctx context.Context, key string, fn func() (V, error)) (V, error) {
	for {
		l.mu.Lock()
		if l.m == nil {
			l.m = make(map[string]*lruCell[V])
		}
		c, ok := l.m[key]
		if !ok {
			c = &lruCell[V]{key: key, done: make(chan struct{})}
			l.m[key] = c
			l.misses++
			l.mu.Unlock()
			l.lead(c, fn)
			return c.val, c.err
		}
		if c.resident {
			// Resident cells are always completed successes: touch and
			// serve without unlocking twice.
			l.moveToFront(c)
			l.hits++
			l.mu.Unlock()
			return c.val, nil
		}
		l.mu.Unlock()

		select {
		case <-c.done:
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
		if c.err == nil {
			l.mu.Lock()
			l.hits++
			l.mu.Unlock()
			return c.val, nil
		}
		// The leader failed and its cell was evicted; retry (possibly
		// becoming the new leader) unless this caller's own context died.
		if err := ctx.Err(); err != nil {
			var zero V
			return zero, err
		}
	}
}

// lead runs the computation as key's leader, then publishes the outcome:
// success inserts the weighed value at the front of the recency list and
// evicts down to budget; failure (or a panic in fn) evicts the cell so the
// key is retryable. Mirrors Flight.lead.
func (l *LRU[V]) lead(c *lruCell[V], fn func() (V, error)) {
	completed := false
	defer func() {
		if !completed {
			c.err = errFlightPanic
		}
		l.mu.Lock()
		if c.err != nil {
			// Only evict our own cell: a retrying waiter may already have
			// installed a successor.
			if l.m[c.key] == c {
				delete(l.m, c.key)
			}
		} else {
			c.weight = l.weigh(c.val)
			l.insert(c)
		}
		l.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
}

// insert puts a completed cell at the front of the recency list and evicts
// the least-recently-used cells until the budget fits. Caller holds mu.
func (l *LRU[V]) insert(c *lruCell[V]) {
	c.resident = true
	l.used += c.weight
	l.entries++
	l.pushFront(c)
	l.evictOver()
}

// evictOver drops tail cells while the resident weight exceeds the budget.
// A single entry heavier than the whole budget is evicted immediately —
// its value still returns to the callers of the computation that produced
// it, it just never becomes resident. Caller holds mu.
func (l *LRU[V]) evictOver() {
	for l.budget > 0 && l.used > l.budget && l.tail != nil {
		t := l.tail
		l.unlink(t)
		t.resident = false
		l.used -= t.weight
		l.entries--
		delete(l.m, t.key)
		l.evictions++
	}
}

// pushFront links a cell at the head of the recency list. Caller holds mu.
func (l *LRU[V]) pushFront(c *lruCell[V]) {
	c.prev = nil
	c.next = l.head
	if l.head != nil {
		l.head.prev = c
	}
	l.head = c
	if l.tail == nil {
		l.tail = c
	}
}

// unlink removes a cell from the recency list. Caller holds mu.
func (l *LRU[V]) unlink(c *lruCell[V]) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		l.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else {
		l.tail = c.prev
	}
	c.prev, c.next = nil, nil
}

// moveToFront touches a resident cell. Caller holds mu.
func (l *LRU[V]) moveToFront(c *lruCell[V]) {
	if l.head == c {
		return
	}
	l.unlink(c)
	l.pushFront(c)
}
