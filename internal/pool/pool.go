package pool

import (
	"context"
	"runtime"
	"sync"
)

// NormWorkers applies the engine-wide worker-count convention: values below
// 1 select runtime.GOMAXPROCS(0). Every public parallel entry point (the
// facade, the cmds, the experiment and sweep runners) routes through this
// one helper so the convention cannot drift between layers.
func NormWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run invokes fn(0), fn(1), ... fn(n-1) on up to `workers` goroutines and
// returns once every call has finished. Indices are handed out in order,
// so earlier (typically longer-running) units start first. workers <= 1
// runs inline on the caller's goroutine. Panics inside fn propagate and
// crash the process, matching the engine's fail-fast error philosophy.
func Run(workers, n int, fn func(i int)) {
	_ = RunCtx(context.Background(), workers, n, fn)
}

// RunCtx is Run with cooperative cancellation: no new index is handed out
// once ctx is cancelled, and the call returns ctx.Err() (nil when every
// index ran). Cancellation is checked between items only — an fn already
// running completes normally — so fn never observes a half-executed unit.
func RunCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
	cancelled := false
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			cancelled = true
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if cancelled {
		return ctx.Err()
	}
	return nil
}
