package pool

import "sync"

// Run invokes fn(0), fn(1), ... fn(n-1) on up to `workers` goroutines and
// returns once every call has finished. Indices are handed out in order,
// so earlier (typically longer-running) units start first. workers <= 1
// runs inline on the caller's goroutine. Panics inside fn propagate and
// crash the process, matching the engine's fail-fast error philosophy.
func Run(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
