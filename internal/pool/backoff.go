package pool

import "time"

// Backoff returns the exponential retry delay for a 1-based attempt count:
// base for the first retry, doubling per attempt, capped at max (and never
// below base). It is the one backoff schedule the retrying layers share —
// the HTTP client's transport retries, the distributed worker's
// coordinator-unreachable loop, and the coordinator's failed-unit requeue
// delay — so "bounded retry with backoff" means the same thing everywhere.
// A max of 0 means uncapped.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if max > 0 && d >= max {
			return max
		}
		if d <= 0 { // overflow far past any real cap
			return max
		}
	}
	if max > 0 && d > max {
		return max
	}
	return d
}
