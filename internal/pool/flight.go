package pool

import (
	"context"
	"errors"
	"sync"
)

// flightCell holds one in-flight or completed artifact computation.
type flightCell[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// errFlightPanic marks a cell whose computation panicked: the panic
// propagates to the leader's caller, while waiters observe a failed cell
// (evicted, retryable) instead of blocking forever.
var errFlightPanic = errors.New("pool: flight computation panicked")

// Flight is a concurrency-safe memoization map with single-flight
// semantics: the first caller of a key (the leader) runs the computation
// while later callers block until it is ready, so a successful computation
// runs exactly once per key. A computation that returns an error is NOT
// cached — the key is evicted, and each waiter whose own context is still
// live retries (becoming the new leader) rather than inheriting the
// leader's error. That makes Flight safe under per-request contexts: one
// cancelled request neither poisons a long-lived session's cache nor
// spuriously fails concurrent requests that were not cancelled. The zero
// value is ready to use.
//
// Flight is the caching primitive behind the shared artifact cache
// (sweep.Artifacts) and the session workbench (sweep.Workbench), whose
// determinism guarantees rest on every artifact being computed once with
// order-free content.
type Flight[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCell[V]

	leads uint64 // computations started
	hits  uint64 // calls served by a memoized value or another caller's flight
}

// FlightStats is a snapshot of a Flight's counters: Leads counts
// computations started (one per distinct successful key, plus retries of
// failed ones), Hits counts calls that were served without computing —
// either from the memoized map or by waiting on an in-flight leader. The
// serving daemon (cmd/addict-serve) exposes these so request coalescing is
// observable.
type FlightStats struct {
	Leads uint64 `json:"leads"`
	Hits  uint64 `json:"hits"`
}

// Stats returns a snapshot of the flight counters.
func (f *Flight[V]) Stats() FlightStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightStats{Leads: f.leads, Hits: f.hits}
}

// Forget drops key's memoized value so the next Do computes afresh. An
// in-flight computation is left alone (waiters keep their single-flight
// coalescing); only a completed success is dropped. Callers that want
// coalescing without memoization — the serving daemon's bench endpoint,
// where a measurement must be fresh per burst but identical concurrent
// requests should still compute once — call Forget after Do returns.
func (f *Flight[V]) Forget(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.m[key]
	if !ok {
		return
	}
	select {
	case <-c.done:
		delete(f.m, key)
	default:
		// Still computing: leave it for the waiters.
	}
}

// Do returns the memoized value for key, computing it with fn on first
// use. fn should observe ctx (cancellation between its own work items) and
// return ctx's error when cancelled; Do itself uses ctx to stop waiting on
// another caller's computation and to decide whether a failed shared
// computation is worth retrying, so a cancelled waiter returns promptly
// even while an unrelated leader keeps computing. A panic inside fn
// propagates to the leader's caller; waiters see the key evicted and
// retry, re-encountering the panic in their own call stacks (fail-fast,
// never a deadlock).
func (f *Flight[V]) Do(ctx context.Context, key string, fn func() (V, error)) (V, error) {
	for {
		f.mu.Lock()
		if f.m == nil {
			f.m = make(map[string]*flightCell[V])
		}
		c, ok := f.m[key]
		if !ok {
			c = &flightCell[V]{done: make(chan struct{})}
			f.m[key] = c
			f.leads++
			f.mu.Unlock()
			f.lead(key, c, fn)
			return c.val, c.err
		}
		f.mu.Unlock()

		select {
		case <-c.done:
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
		if c.err == nil {
			f.mu.Lock()
			f.hits++
			f.mu.Unlock()
			return c.val, nil
		}
		// The leader failed and its cell was evicted. If this caller's own
		// context is dead, that is the failure to report; otherwise loop
		// and retry — possibly becoming the new leader.
		if err := ctx.Err(); err != nil {
			var zero V
			return zero, err
		}
	}
}

// lead runs the computation as key's leader. The deferred block publishes
// the outcome even when fn panics: the cell is marked failed and evicted,
// waiters unblock, and the panic continues to the leader's caller.
func (f *Flight[V]) lead(key string, c *flightCell[V], fn func() (V, error)) {
	completed := false
	defer func() {
		if !completed {
			c.err = errFlightPanic
		}
		if c.err != nil {
			f.mu.Lock()
			// Only evict our own cell: a retrying waiter may already have
			// installed a successor after observing the close below.
			if f.m[key] == c {
				delete(f.m, key)
			}
			f.mu.Unlock()
		}
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
}
