// Package pool provides the bounded worker pool and the single-flight
// memoization map shared by the parallel experiment engine (internal/exp),
// the parameter-sweep engine (internal/sweep), sharded trace generation
// (internal/workload), and the concurrent facade (package addict).
//
// It has no counterpart in the paper: it exists so the Section 4 evaluation
// — and the sensitivity sweeps built on top of it — can run on a worker
// pool while staying byte-identical to a serial run.
package pool
