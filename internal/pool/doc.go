// Package pool provides the bounded worker pool (with cooperative
// context cancellation, RunCtx) and the error-aware single-flight
// memoization map (Flight) shared by the parallel experiment engine
// (internal/exp), the parameter-sweep engine (internal/sweep), sharded
// trace generation (internal/workload), and the session facade (package
// addict, the Engine).
//
// It has no counterpart in the paper: it exists so the Section 4 evaluation
// — and the sensitivity sweeps built on top of it — can run on a worker
// pool while staying byte-identical to a serial run, and so a Ctrl-C (or
// any context cancellation) unwinds every pipeline between work items.
package pool
