package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 37
		var hits [n]int32
		Run(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max int32
	Run(workers, 64, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if got := atomic.LoadInt32(&max); got > workers {
		t.Errorf("observed %d concurrent calls, want <= %d", got, workers)
	}
}

func TestRunZeroItems(t *testing.T) {
	ran := false
	Run(4, 0, func(int) { ran = true })
	if ran {
		t.Error("fn ran with n=0")
	}
}

func TestRunCtxCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := RunCtx(ctx, workers, 1000, func(i int) {
			if atomic.AddInt32(&ran, 1) == 3 {
				cancel()
			}
		})
		cancel()
		if err == nil {
			t.Errorf("workers=%d: RunCtx after cancellation returned nil", workers)
		}
		// Items already dispatched may complete, but dispatch must stop:
		// nowhere near all 1000 items run.
		if n := atomic.LoadInt32(&ran); n > 100 {
			t.Errorf("workers=%d: %d items ran after cancellation", workers, n)
		}
	}
}

func TestRunCtxNilErrorWhenComplete(t *testing.T) {
	var hits int32
	if err := RunCtx(context.Background(), 4, 16, func(int) { atomic.AddInt32(&hits, 1) }); err != nil {
		t.Fatal(err)
	}
	if hits != 16 {
		t.Errorf("ran %d items, want 16", hits)
	}
}

func TestNormWorkers(t *testing.T) {
	if got := NormWorkers(7); got != 7 {
		t.Errorf("NormWorkers(7) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, w := range []int{0, -1} {
		if got := NormWorkers(w); got != want {
			t.Errorf("NormWorkers(%d) = %d, want GOMAXPROCS %d", w, got, want)
		}
	}
}

func TestFlightSingleFlight(t *testing.T) {
	var f Flight[int]
	var calls int32
	const goroutines = 16
	results := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := f.Do(context.Background(), "k", func() (int, error) {
				atomic.AddInt32(&calls, 1)
				time.Sleep(10 * time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("computation ran %d times, want 1", calls)
	}
	for g, v := range results {
		if v != 42 {
			t.Errorf("goroutine %d saw %d, want 42", g, v)
		}
	}
}

func TestFlightErrorEvictsAndRetries(t *testing.T) {
	var f Flight[string]
	ctx := context.Background()
	boom := errors.New("boom")
	if _, err := f.Do(ctx, "k", func() (string, error) { return "", boom }); err != boom {
		t.Fatalf("first Do error = %v, want boom", err)
	}
	v, err := f.Do(ctx, "k", func() (string, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after error = (%q, %v), want (ok, nil)", v, err)
	}
	// The successful value is now cached.
	v, err = f.Do(ctx, "k", func() (string, error) { return "recomputed", nil })
	if err != nil || v != "ok" {
		t.Fatalf("cached Do = (%q, %v), want (ok, nil)", v, err)
	}
}

// TestFlightWaiterRetriesAfterLeaderCancellation: a waiter whose own
// context is live must not inherit the leader's cancellation — it retries
// and computes the value itself.
func TestFlightWaiterRetriesAfterLeaderCancellation(t *testing.T) {
	var f Flight[int]
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	entered := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := f.Do(leaderCtx, "k", func() (int, error) {
			close(entered)
			<-leaderCtx.Done() // simulate cancellation mid-computation
			return 0, leaderCtx.Err()
		})
		if err == nil {
			t.Error("cancelled leader returned nil error")
		}
	}()

	<-entered // the waiter joins strictly after the leader owns the cell
	waiterDone := make(chan struct{})
	var waiterVal int
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterVal, waiterErr = f.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block on the cell
	cancelLeader()
	<-waiterDone
	wg.Wait()
	if waiterErr != nil || waiterVal != 7 {
		t.Fatalf("live-context waiter got (%d, %v), want (7, nil)", waiterVal, waiterErr)
	}
	// The waiter's cancelled-context path still reports its own error.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Do(dead, "other", func() (int, error) { return 0, context.Canceled }); err == nil {
		t.Error("dead-context caller returned nil error")
	}
}

// TestFlightLeaderPanicUnblocksWaiters: a panicking computation must not
// leave waiters blocked forever (the OnceMap regression the error path
// introduced); the waiter retries and succeeds.
func TestFlightLeaderPanicUnblocksWaiters(t *testing.T) {
	var f Flight[int]
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		f.Do(context.Background(), "k", func() (int, error) {
			close(entered)
			time.Sleep(20 * time.Millisecond)
			panic("boom")
		})
	}()
	<-entered
	done := make(chan struct{})
	var v int
	var err error
	go func() {
		defer close(done)
		v, err = f.Do(context.Background(), "k", func() (int, error) { return 9, nil })
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked after leader panic")
	}
	wg.Wait()
	if err != nil || v != 9 {
		t.Fatalf("waiter after panic got (%d, %v), want (9, nil)", v, err)
	}
}

// TestFlightWaiterCancelsPromptly: a waiter whose context dies must return
// immediately, not block until the unrelated leader finishes.
func TestFlightWaiterCancelsPromptly(t *testing.T) {
	var f Flight[int]
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		f.Do(context.Background(), "k", func() (int, error) {
			close(entered)
			<-release // a leader that computes for a long time
			return 1, nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := f.Do(ctx, "k", func() (int, error) { return 2, nil })
	elapsed := time.Since(start)
	close(release)
	if err == nil {
		t.Fatal("cancelled waiter returned nil error")
	}
	if elapsed > time.Second {
		t.Errorf("cancelled waiter blocked %v on the leader", elapsed)
	}
}
