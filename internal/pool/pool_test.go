package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 37
		var hits [n]int32
		Run(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Errorf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max int32
	Run(workers, 64, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if got := atomic.LoadInt32(&max); got > workers {
		t.Errorf("observed %d concurrent calls, want <= %d", got, workers)
	}
}

func TestRunZeroItems(t *testing.T) {
	ran := false
	Run(4, 0, func(int) { ran = true })
	if ran {
		t.Error("fn ran with n=0")
	}
}
