package pool

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSetBudgetInFlightCompletion pins the over-budget window down: a
// computation in flight when SetBudget lowers the budget must still insert
// and evict inside one critical section, so no observer ever sees the
// resident weight above the new budget — not even for the instant between
// the completion's insert and its eviction pass.
func TestSetBudgetInFlightCompletion(t *testing.T) {
	lru := NewLRU[int](1000, func(v int) int64 { return int64(v) })
	ctx := context.Background()

	// A resident entry that fits the initial budget.
	if _, err := lru.Do(ctx, "resident", func() (int, error) { return 400, nil }); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := lru.Do(ctx, "inflight", func() (int, error) {
			close(started)
			<-release
			return 900, nil
		})
		if err != nil {
			t.Errorf("inflight Do: %v", err)
		}
	}()
	<-started

	// Shrink the budget below the resident weight while the computation
	// runs. The resident entry must go; the in-flight one is untouched (a
	// live key is never evicted).
	lru.SetBudget(300)
	if st := lru.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("after SetBudget(300): %+v, want the 400-weight entry evicted", st)
	}

	// Let the in-flight computation complete: it weighs 900 > 300, so the
	// insert must evict it in the same lock scope — the value still returns
	// to its caller, it just never becomes resident.
	close(release)
	<-done
	st := lru.Stats()
	if st.Bytes > 300 {
		t.Fatalf("completing insert left %d resident bytes over the 300 budget", st.Bytes)
	}
	if st.Entries != 0 {
		t.Fatalf("an over-budget completion stayed resident: %+v", st)
	}
	// The caller of the evicted computation still got its value; later
	// callers recompute.
	recomputed := false
	v, err := lru.Do(ctx, "inflight", func() (int, error) { recomputed = true; return 123, nil })
	if err != nil || v != 123 || !recomputed {
		t.Fatalf("post-eviction Do = %d, %v (recomputed=%v)", v, err, recomputed)
	}
}

// TestSetBudgetStress hammers inserts, hits, and concurrent SetBudget calls
// (run under -race): at every observation point the resident weight must
// respect the largest budget any concurrent SetBudget could have installed,
// and after quiescence the final (smallest) budget holds exactly.
func TestSetBudgetStress(t *testing.T) {
	const (
		maxBudget = 10_000
		minBudget = maxBudget / 2
		workers   = 8
		rounds    = 200
	)
	lru := NewLRU[int](maxBudget, func(v int) int64 { return int64(v) })
	ctx := context.Background()

	var violations atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch {
				case w == 0 && i%10 == 0:
					// Toggle the budget between the two bounds.
					if i%20 == 0 {
						lru.SetBudget(minBudget)
					} else {
						lru.SetBudget(maxBudget)
					}
				default:
					key := fmt.Sprintf("k%d", (w*rounds+i)%64)
					weight := 100 + (w*rounds+i)%900
					if _, err := lru.Do(ctx, key, func() (int, error) { return weight, nil }); err != nil {
						t.Errorf("Do: %v", err)
						return
					}
				}
				if st := lru.Stats(); st.Bytes > maxBudget {
					violations.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := violations.Load(); n > 0 {
		t.Errorf("observed %d instants with resident bytes above every concurrent budget", n)
	}
	lru.SetBudget(minBudget)
	if st := lru.Stats(); st.Bytes > minBudget {
		t.Errorf("final SetBudget left %d resident bytes over the %d budget", st.Bytes, minBudget)
	}
}
