package pool

import "sync"

// onceCell holds one single-flight artifact.
type onceCell[V any] struct {
	once sync.Once
	val  V
}

// OnceMap is a concurrency-safe memoization map with single-flight
// semantics: the first caller of a key computes the value while later
// callers block until it is ready; the computation runs exactly once. The
// zero value is ready to use. It is the caching primitive behind both the
// experiment workbench (internal/exp) and the sweep engine
// (internal/sweep), whose determinism guarantees rest on every artifact
// being computed once with order-free content.
type OnceMap[V any] struct {
	mu sync.Mutex
	m  map[string]*onceCell[V]
}

// Do returns the memoized value for key, computing it with fn on first use.
func (om *OnceMap[V]) Do(key string, fn func() V) V {
	om.mu.Lock()
	if om.m == nil {
		om.m = make(map[string]*onceCell[V])
	}
	c, ok := om.m[key]
	if !ok {
		c = new(onceCell[V])
		om.m[key] = c
	}
	om.mu.Unlock()
	c.once.Do(func() { c.val = fn() })
	return c.val
}
