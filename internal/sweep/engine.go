package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"addict/internal/codemap"
	"addict/internal/core"
	"addict/internal/pool"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/store"
	"addict/internal/trace"
	"addict/internal/workload"
)

// ValidateWorkloadName rejects names the workload-name registry does not
// resolve — neither a TPC benchmark nor a registered backend (encoded
// synthetic workloads). Kept as the sweep-flavored wrapper over
// workload.Validate, the one registry every by-name consumer shares.
func ValidateWorkloadName(name string) error {
	return workload.Validate(name)
}

// Metrics are the per-unit outcomes every emitter reports. All values are
// raw (not normalized): normalization needs a baseline point, and which
// point that is belongs to the analysis over the emitted rows, not to the
// engine.
type Metrics struct {
	// Makespan is the cycle the last transaction completed at.
	Makespan uint64 `json:"makespan_cycles"`
	// AvgLatency is the mean transaction latency in cycles.
	AvgLatency float64 `json:"avg_latency_cycles"`
	// Instructions is the dynamic instruction count.
	Instructions uint64 `json:"instructions"`
	// IPC is aggregate instructions per cycle (Instructions / Makespan).
	IPC float64 `json:"ipc"`
	// MPKI per cache level.
	L1IMPKI float64 `json:"l1i_mpki"`
	L1DMPKI float64 `json:"l1d_mpki"`
	LLCMPKI float64 `json:"llc_mpki"`
	// SwitchesPerKI is migrations+switches per 1000 instructions.
	SwitchesPerKI float64 `json:"switches_per_ki"`
	// OverheadShare is migration/switch cycles over busy cycles.
	OverheadShare float64 `json:"overhead_share"`
	// Speculation counters (HTMSPEC); zero — and omitted from JSON — for
	// the non-speculative mechanisms, so pre-existing rows are unchanged.
	CapacityAborts uint64 `json:"capacity_aborts,omitempty"`
	ConflictAborts uint64 `json:"conflict_aborts,omitempty"`
	SpecFallbacks  uint64 `json:"spec_fallbacks,omitempty"`
}

// Measure reduces a simulation result to the sweep metrics.
func Measure(r sim.Result) Metrics {
	m := r.Machine
	ipc := 0.0
	if r.Makespan > 0 {
		ipc = float64(m.Instructions) / float64(r.Makespan)
	}
	return Metrics{
		Makespan:       r.Makespan,
		AvgLatency:     r.AvgLatency(),
		Instructions:   m.Instructions,
		IPC:            ipc,
		L1IMPKI:        m.MPKI(m.L1IMisses),
		L1DMPKI:        m.MPKI(m.L1DMisses),
		LLCMPKI:        m.MPKI(m.SharedMisses),
		SwitchesPerKI:  r.SwitchesPerKInstr(),
		OverheadShare:  r.OverheadShare(),
		CapacityAborts: r.Spec.CapacityAborts,
		ConflictAborts: r.Spec.ConflictAborts,
		SpecFallbacks:  r.Spec.Fallbacks,
	}
}

// Replay executes one unit over prepared artifacts: the scheduling
// configuration is assembled from the unit's machine and load parameters on
// top of the frozen mechanism knobs (sched.DefaultConfig). This is the
// single execution path shared by the sweep engine and internal/exp's
// figure runners — a figure is a preset grid point replayed here.
func Replay(u Unit, set *trace.Set, prof *core.Profile) (sim.Result, error) {
	cfg := sched.DefaultConfig(u.Machine)
	cfg.Profile = prof
	cfg.BatchSize = u.Threads
	cfg.AdmitLimit = u.Admit
	return sched.Run(u.Mechanism, set, cfg)
}

// Artifacts caches the artifacts experiment units share — the one
// implementation of the trace-window and profiling recipe, used by the
// sweep engine, the bench harness, internal/exp's figure pipeline, and the
// facade's Engine sessions. Trace sets are keyed by workload over fixed
// (seed, scale, window) parameters; migration-point profiles are keyed by
// (workload, L1-I geometry), because Algorithm 1's output depends on the
// cache it profiles against. Every artifact is single-flight memoized with
// order-free content; a computation aborted by context cancellation is
// evicted rather than cached, so one cancelled request never poisons a
// long-lived session.
type Artifacts struct {
	seed          int64
	scale         float64
	profileTraces int
	evalTraces    int
	// workers bounds the generation parallelism of sharded trace requests
	// (1 = serial). It does not affect content.
	workers int
	layout  *codemap.Layout

	// cache holds every artifact kind — trace windows, profiles, and the
	// Workbench's replay results — in one weight-accounted LRU, so a
	// residency budget covers the whole session instead of per-kind pools.
	// Keys are kind-prefixed ("profset", "evalset", "profile", "result");
	// values are weighed by artifactWeight. Unbounded by default (every
	// artifact stays resident, the pre-eviction behavior); Bound turns on
	// eviction for serving deployments. An attached on-disk store
	// (SetStore) layers underneath as a read-through L2: memory misses
	// load from disk before recomputing, and computed artifacts spill to
	// disk so the next process starts warm.
	cache *store.CachedStore
}

// NewArtifacts prepares an empty artifact cache whose trace generation may
// use up to `workers` goroutines (values below 1 run serially).
func NewArtifacts(seed int64, scale float64, profileTraces, evalTraces, workers int) *Artifacts {
	if workers < 1 {
		workers = 1
	}
	return &Artifacts{
		seed:          seed,
		scale:         scale,
		profileTraces: profileTraces,
		evalTraces:    evalTraces,
		workers:       workers,
		layout:        codemap.NewLayout(),
		cache:         store.NewCached(pool.NewLRU[any](0, artifactWeight), nil),
	}
}

// Bound sets the cache's resident-weight budget in approximate bytes
// (<= 0 = unbounded) and immediately evicts down to it. Eviction is safe
// at any time: artifacts regenerate deterministically, so an evicted
// window or profile recomputes to identical content — only pointer
// identity across calls is lost once a budget is set. With a store
// attached, an evicted artifact usually reloads from disk instead of
// recomputing.
func (a *Artifacts) Bound(budget int64) { a.cache.Mem().SetBudget(budget) }

// SetStore attaches an on-disk artifact store as the read-through L2
// under the in-memory cache (nil detaches). Artifacts already resident in
// memory are unaffected; subsequent misses load from the store before
// recomputing, and computed artifacts are persisted best-effort.
func (a *Artifacts) SetStore(st *store.Store) { a.cache.SetDisk(st) }

// Store returns the attached on-disk store, nil when memory-only.
func (a *Artifacts) Store() *store.Store { return a.cache.Disk() }

// CacheStats reports the artifact cache's counters (resident bytes and
// entries, hits/misses/evictions). Bytes are the artifactWeight estimates,
// not exact heap usage.
func (a *Artifacts) CacheStats() pool.CacheStats { return a.cache.Mem().Stats() }

// StoreStats reports the attached on-disk store's counters; ok is false
// when no store is attached.
func (a *Artifacts) StoreStats() (s store.Stats, ok bool) {
	if d := a.cache.Disk(); d != nil {
		return d.Stats(), true
	}
	return store.Stats{}, false
}

// artifactWeight estimates an artifact's resident footprint in bytes for
// the cache's weight accounting. Trace sets dominate (16 bytes per packed
// event plus per-trace overhead); profiles and replay results are small
// but still accounted so a tiny budget behaves sanely.
func artifactWeight(v any) int64 {
	const entryOverhead = 256 // cell, map entry, list links, key
	switch x := v.(type) {
	case *trace.Set:
		w := int64(entryOverhead)
		for _, t := range x.Traces {
			w += 96 + 16*int64(len(t.Events))
		}
		return w
	case *core.Profile:
		w := int64(entryOverhead)
		for _, tp := range x.Txns {
			w += 128
			for _, op := range tp.Ops {
				w += 64 + 8*int64(len(op.Seq))
			}
		}
		return w
	case sim.Result:
		return entryOverhead + 512 + 8*int64(len(x.CoreActive))
	default:
		// An unrecognized kind must never undermine the budget: a flat
		// guess lets a large value count as a few bytes and the resident
		// set overshoot. Size the fallback from the encoded value (doubled:
		// Go heap objects outweigh their wire form), and when the value
		// does not even encode, assume it is large.
		if data, err := json.Marshal(v); err == nil {
			return entryOverhead + 2*int64(len(data))
		}
		return 1 << 20
	}
}

// Layout returns the storage manager's code layout (no-migrate zones,
// routine ranges) the cache profiles against.
func (a *Artifacts) Layout() *codemap.Layout { return a.layout }

// Matches reports whether the cache was built over exactly these base
// parameters — the compatibility test a session runs before sharing its
// cache with a sweep or bench configuration.
func (a *Artifacts) Matches(seed int64, scale float64, profileTraces, evalTraces int) bool {
	return a.seed == seed && a.scale == scale &&
		a.profileTraces == profileTraces && a.evalTraces == evalTraces
}

// ProfileSet returns the workload's profiling window (the paper's "first
// 1000" traces): shards [0, NumShards(profileTraces)) of the sharded trace
// space, worker-count independent. The workload name resolves through the
// workload-name registry (TPC benchmarks, "synth:" encoded names).
func (a *Artifacts) ProfileSet(ctx context.Context, name string) (*trace.Set, error) {
	v, err := a.cache.Do(ctx, "profset\x00"+name, a.setEntry("profset", name), func() (any, error) {
		r, err := workload.Resolve(name)
		if err != nil {
			return nil, err
		}
		return r.GenerateSharded(ctx, a.seed, a.scale,
			0, a.profileTraces, workload.DefaultShardSize, a.workers)
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Set), nil
}

// EvalSet returns the workload's evaluation window (the paper's "next
// 1000"): the shards immediately after the profiling window, so the two
// sets are disjoint by construction regardless of computation order.
func (a *Artifacts) EvalSet(ctx context.Context, name string) (*trace.Set, error) {
	v, err := a.cache.Do(ctx, "evalset\x00"+name, a.setEntry("evalset", name), func() (any, error) {
		r, err := workload.Resolve(name)
		if err != nil {
			return nil, err
		}
		base := workload.NumShards(a.profileTraces, workload.DefaultShardSize)
		return r.GenerateSharded(ctx, a.seed, a.scale,
			base, a.evalTraces, workload.DefaultShardSize, a.workers)
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Set), nil
}

// Profile returns Algorithm 1's output for a workload against the given
// machine's L1-I geometry, with the storage manager's no-migrate zones
// applied (Section 3.1.3).
func (a *Artifacts) Profile(ctx context.Context, name string, m sim.Config) (*core.Profile, error) {
	key := fmt.Sprintf("profile\x00%s\x00%d\x00%d", name, m.L1I.SizeBytes, m.L1I.Ways)
	v, err := a.cache.Do(ctx, key, a.profileEntry(name, m), func() (any, error) {
		set, err := a.ProfileSet(ctx, name)
		if err != nil {
			return nil, err
		}
		cfg := core.ProfileConfig{L1I: m.L1I, NoMigrate: a.layout.NoMigrate}
		return core.FindMigrationPoints(set, cfg), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Profile), nil
}

// RunUnit executes one unit over the artifact cache and reduces the result
// to metrics. Only ADDICT consults the migration-point profile, so other
// mechanisms skip Algorithm 1 entirely. This is the single per-unit
// execution path: the in-process engine (Run) and the distributed workers
// (internal/dist) both call it, which is what makes a re-dispatched unit a
// deterministic recomputation — or, with a shared store attached, a cache
// hit — instead of a divergent answer.
func RunUnit(ctx context.Context, a *Artifacts, u Unit) (Metrics, error) {
	var prof *core.Profile
	if u.Mechanism == sched.ADDICT {
		p, err := a.Profile(ctx, u.Workload, u.Machine)
		if err != nil {
			return Metrics{}, fmt.Errorf("sweep: %s: %w", u.ID, err)
		}
		prof = p
	}
	set, err := a.EvalSet(ctx, u.Workload)
	if err != nil {
		return Metrics{}, fmt.Errorf("sweep: %s: %w", u.ID, err)
	}
	r, err := Replay(u, set, prof)
	if err != nil {
		return Metrics{}, fmt.Errorf("sweep: %s: %w", u.ID, err)
	}
	return Measure(r), nil
}

// Run expands the spec and executes every unit on up to `workers`
// goroutines (values below 1 run serially), streaming each unit's result to
// the emitter in expansion order as soon as the unit (and every unit before
// it) has finished. Output is byte-identical for every worker count: unit
// execution order never affects content (deterministic simulation over
// single-flight, order-free artifacts) and emission order is fixed by the
// grid, not by completion.
func Run(spec Spec, em Emitter, workers int) error {
	return RunCtx(context.Background(), spec, em, workers)
}

// RunCtx is Run with cooperative cancellation: once ctx is cancelled no new
// unit starts and no further row is emitted, and the call returns ctx's
// error — the rows already streamed form a clean prefix of the full sweep.
func RunCtx(ctx context.Context, spec Spec, em Emitter, workers int) error {
	return RunWith(ctx, spec, em, workers, nil)
}

// RunWith is RunCtx over a caller-supplied artifact cache (nil builds a
// fresh one from the spec) — the hook a long-lived session uses to share
// one cache across repeated sweeps. A cache whose base parameters do not
// Match the spec's resolved parameters is ignored (a fresh one is built),
// so a mismatched cache can never silently substitute its own artifacts.
func RunWith(ctx context.Context, spec Spec, em Emitter, workers int, arts *Artifacts) error {
	units, err := spec.Expand()
	if err != nil {
		return err
	}
	// Validate workload names before spending any cycles.
	seen := map[string]bool{}
	for _, u := range units {
		if !seen[u.Workload] {
			if err := ValidateWorkloadName(u.Workload); err != nil {
				return fmt.Errorf("sweep: %w", err)
			}
			seen[u.Workload] = true
		}
	}

	if workers < 1 {
		workers = 1
	}
	s := spec.withDefaults()
	if arts != nil && !arts.Matches(s.Seed, s.Scale, s.ProfileTraces, s.EvalTraces) {
		// withDefaults may have normalized parameters (e.g. seed 0 -> 42)
		// past what the caller matched against; never let a mismatched
		// cache substitute its own artifacts.
		arts = nil
	}
	if arts == nil {
		arts = NewArtifacts(s.Seed, s.Scale, s.ProfileTraces, s.EvalTraces, workers)
	}
	results := make([]Metrics, len(units))
	errs := make([]error, len(units))
	done := make([]chan struct{}, len(units))
	for i := range done {
		done[i] = make(chan struct{})
	}
	// stopped makes the remaining units no-ops after an error return, so
	// the pool goroutine drains immediately instead of simulating a grid
	// nobody will read.
	var stopped atomic.Bool
	stop := func(err error) error { stopped.Store(true); return err }
	go pool.RunCtx(ctx, workers, len(units), func(i int) {
		defer close(done[i])
		if stopped.Load() {
			return
		}
		results[i], errs[i] = RunUnit(ctx, arts, units[i])
	})

	if err := em.Begin(units); err != nil {
		return stop(err)
	}
	for i := range units {
		select {
		case <-done[i]:
		case <-ctx.Done():
			return stop(ctx.Err())
		}
		if errs[i] != nil {
			return stop(errs[i])
		}
		if err := em.Emit(units[i], results[i]); err != nil {
			return stop(err)
		}
	}
	return em.End()
}
