package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// synthSpec is the synthetic acceptance grid: one preset swept over 2
// thetas x 2 write fractions = 4 workload variants x 2 mechanisms.
func synthSpec() Spec {
	return Spec{
		Seed:          7,
		Scale:         0.01,
		ProfileTraces: 60,
		EvalTraces:    40,
		Mechanisms:    []string{"Baseline", "ADDICT"},
		Synth:         "zipf-hot-rw",
		SynthThetas:   []float64{0.6, 0.99},
		SynthWriteFracs: []float64{
			0.1, 0.8,
		},
	}
}

func TestSynthAxesExpand(t *testing.T) {
	units, err := synthSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 8 {
		t.Fatalf("expanded %d units, want 8", len(units))
	}
	// Synth variants replace the default TPC trio, theta outermost.
	if got := units[0].Workload; got != "synth:zipf-hot-rw+z0.6+w0.1" {
		t.Errorf("first workload = %q", got)
	}
	if got := units[6].Workload; got != "synth:zipf-hot-rw+z0.99+w0.8" {
		t.Errorf("last variant = %q", got)
	}
	for _, u := range units {
		if !strings.HasPrefix(u.ID, u.Workload+"/") {
			t.Errorf("unit ID %q does not embed workload %q", u.ID, u.Workload)
		}
	}
}

func TestSynthAxesAppendAfterExplicitWorkloads(t *testing.T) {
	s := synthSpec()
	s.Workloads = []string{"TPC-B"}
	s.SynthThetas, s.SynthWriteFracs = nil, nil
	units, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 4 { // (TPC-B + 1 synth variant) x 2 mechanisms
		t.Fatalf("expanded %d units, want 4", len(units))
	}
	if units[0].Workload != "TPC-B" || units[2].Workload != "synth:zipf-hot-rw" {
		t.Errorf("workload order: %q then %q", units[0].Workload, units[2].Workload)
	}
}

func TestSynthAxesRejectBadValues(t *testing.T) {
	cases := []Spec{
		{SynthThetas: []float64{0.5}},                                               // axes without preset
		{Synth: "no-such-preset"},                                                   // unknown preset
		{Synth: "zipf-hot-rw", SynthThetas: []float64{0}},                           // sentinel value
		{Synth: "zipf-hot-rw", SynthThetas: []float64{1.2}},                         // out of range
		{Synth: "zipf-hot-rw", SynthWriteFracs: []float64{2}},                       // out of range
		{Synth: "zipf-hot-rw", SynthHotKeys: []int{0}},                              // not positive
		{Synth: "zipf-hot-rw", SynthThetas: []float64{0.5}, SynthHotKeys: []int{8}}, // z+h exclusive
	}
	for i, s := range cases {
		if _, err := s.Expand(); err == nil {
			t.Errorf("bad synth spec %d accepted: %+v", i, s)
		}
	}
}

func TestSynthWorkloadNamesAcceptedInWorkloadsAxis(t *testing.T) {
	s := Spec{
		Seed: 7, Scale: 0.01, ProfileTraces: 60, EvalTraces: 40,
		Workloads:  []string{"synth:uniform-ro"},
		Mechanisms: []string{"Baseline"},
	}
	var buf bytes.Buffer
	em, err := NewEmitter("csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(s, em, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "synth:uniform-ro/Baseline/") {
		t.Errorf("sweep output missing synth unit:\n%s", buf.String())
	}

	s.Workloads = []string{"synth:bogus"}
	em, _ = NewEmitter("csv", &buf)
	if err := Run(s, em, 1); err == nil {
		t.Error("unknown synth workload accepted by Run")
	}
}

// TestSynthSweepWorkerCountByteIdentity extends the subsystem's headline
// guarantee over the synthetic grid: byte-identical CSV for every worker
// count, including the ADDICT cells that profile the synth traces.
func TestSynthSweepWorkerCountByteIdentity(t *testing.T) {
	spec := synthSpec()
	want := runToBytes(t, spec, "csv", 1)
	if len(want) == 0 {
		t.Fatal("serial synth sweep produced no output")
	}
	for _, workers := range []int{2, 8} {
		got := runToBytes(t, spec, "csv", workers)
		if !bytes.Equal(got, want) {
			t.Errorf("synth sweep output (workers=%d) diverges from serial: %s",
				workers, firstDiff(want, got))
		}
	}
}
