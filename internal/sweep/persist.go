package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"addict/internal/cache"
	"addict/internal/core"
	"addict/internal/sim"
	"addict/internal/store"
	"addict/internal/trace"
	"addict/internal/workload"
)

// On-disk artifact identity. Every artifact kind the cache holds gets a
// fully-resolved spec string — workload encoding, seed/scale/windows,
// shard recipe, and (where content depends on them) machine signature and
// algorithm version — which internal/store hashes into the content
// address. Two processes that resolve the same spec rendezvous on the same
// entry; any parameter that changes an artifact's bytes MUST appear in its
// spec, and any semantic change to a generator or codec MUST bump the
// version token below, or stale entries would verify clean and decode into
// wrong answers.

// persistVersion tags every disk spec with the artifact-recipe generation.
// Bump it when trace generation, Algorithm 1, the replay semantics, or a
// codec changes meaning — old entries then simply miss instead of
// masquerading as current.
const persistVersion = "adct-v1"

// diskBase renders the cache's base parameters as the shared spec prefix.
func (a *Artifacts) diskBase() string {
	return fmt.Sprintf("%s|seed=%d|scale=%g|prof=%d|eval=%d|shard=%d",
		persistVersion, a.seed, a.scale, a.profileTraces, a.evalTraces,
		workload.DefaultShardSize)
}

// setEntry is the on-disk identity of a trace window.
func (a *Artifacts) setEntry(kind, name string) store.Entry {
	return store.Entry{
		Spec:  kind + "|" + a.diskBase() + "|wl=" + name,
		Codec: setCodec{},
	}
}

// profileEntry is the on-disk identity of an Algorithm 1 profile: its
// content depends on the profiling window, the L1-I geometry it profiles
// against, and the storage manager's no-migrate layout (deterministic, so
// a version token pins it).
func (a *Artifacts) profileEntry(name string, m sim.Config) store.Entry {
	return store.Entry{
		Spec: fmt.Sprintf("profile|%s|wl=%s|l1i=%d/%d|layout=v1",
			a.diskBase(), name, m.L1I.SizeBytes, m.L1I.Ways),
		Codec: profileCodec{},
	}
}

// resultEntry is the on-disk identity of a replay result: the evaluation
// window plus the full machine signature and mechanism.
func (a *Artifacts) resultEntry(name, mech, machineSig string) store.Entry {
	return store.Entry{
		Spec:  "result|" + a.diskBase() + "|wl=" + name + "|mech=" + mech + "|machine=" + machineSig,
		Codec: resultCodec{},
	}
}

// setCodec persists trace windows through the tracegen binary format.
type setCodec struct{}

func (setCodec) Encode(w io.Writer, v any) error { return trace.WriteSet(w, v.(*trace.Set)) }
func (setCodec) Decode(r io.Reader) (any, error) { return trace.ReadSet(r) }

// profileCodec persists Algorithm 1 profiles through the core binary
// format. The profiling-time NoMigrate layout is not persisted (it only
// affects profiling, which already happened); the spec's layout token pins
// it instead.
type profileCodec struct{}

func (profileCodec) Encode(w io.Writer, v any) error { return core.WriteProfile(w, v.(*core.Profile)) }
func (profileCodec) Decode(r io.Reader) (any, error) { return core.ReadProfile(r) }

// resultWire is the persisted form of a replay result: the result's
// exported counters (Machine included — its exported fields are the
// counters and the configuration) plus the per-level cache aggregates,
// which live inside unexported cache objects on a live machine. All fields
// are integers or exactly-round-tripping float64s, so a decoded result
// reduces to byte-identical metrics.
type resultWire struct {
	Result sim.Result  `json:"result"`
	L1I    cache.Stats `json:"l1i"`
	L1D    cache.Stats `json:"l1d"`
	Shared cache.Stats `json:"shared"`
}

// resultCodec persists replay results as JSON of resultWire.
type resultCodec struct{}

func (resultCodec) Encode(w io.Writer, v any) error {
	res := v.(sim.Result)
	wire := resultWire{Result: res}
	if res.Machine != nil {
		wire.L1I, wire.L1D, wire.Shared = res.Machine.CacheStats()
	}
	return json.NewEncoder(w).Encode(wire)
}

func (resultCodec) Decode(r io.Reader) (any, error) {
	var wire resultWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	if wire.Result.Machine == nil {
		return nil, fmt.Errorf("sweep: persisted result carries no machine")
	}
	wire.Result.Machine.MarkRestored(wire.L1I, wire.L1D, wire.Shared)
	return wire.Result, nil
}
