package sweep

import (
	"context"
	"reflect"
	"testing"

	"addict/internal/pool"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/store"
)

// newStoredArtifacts builds an Artifacts over a fresh store in dir.
func newStoredArtifacts(t *testing.T, dir string) *Artifacts {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArtifacts(5, 0.02, 20, 20, 2)
	a.SetStore(st)
	return a
}

// TestPersistTraceSetWarmStart persists a trace window through one
// Artifacts and reloads it through a second (fresh memory, same store
// directory): the reloaded window must be identical and must come from
// disk, not regeneration.
func TestPersistTraceSetWarmStart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const name = "synth:uniform-ro"

	cold := newStoredArtifacts(t, dir)
	want, err := cold.EvalSet(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.Store().Stats()
	if cs.Writes == 0 {
		t.Fatalf("cold run persisted nothing: %+v", cs)
	}

	warm := newStoredArtifacts(t, dir)
	got, err := warm.EvalSet(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.Store().Stats()
	if ws.Hits == 0 {
		t.Fatalf("warm run hit nothing: %+v", ws)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("persisted trace window differs from the generated one")
	}

	// The profiling window has a distinct spec: warm Artifacts must not
	// serve the eval window for it.
	profCold, err := cold.ProfileSet(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	profWarm, err := warm.ProfileSet(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(profWarm, profCold) {
		t.Error("persisted profiling window differs")
	}
	if reflect.DeepEqual(profWarm, got) {
		t.Error("profiling and evaluation windows collided on disk")
	}
}

// TestPersistProfileWarmStart round-trips an Algorithm 1 profile through
// the store.
func TestPersistProfileWarmStart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const name = "synth:hotset-write"
	machine := sim.Shallow()

	cold := newStoredArtifacts(t, dir)
	want, err := cold.Profile(ctx, name, machine)
	if err != nil {
		t.Fatal(err)
	}

	warm := newStoredArtifacts(t, dir)
	got, err := warm.Profile(ctx, name, machine)
	if err != nil {
		t.Fatal(err)
	}
	// Structural equality, not DeepEqual: the codec intentionally drops
	// profiling-only configuration (the NoMigrate filter already did its
	// job), so the contract is that everything replay consumes survives.
	if !got.Equal(want) {
		t.Error("persisted profile differs from the computed one")
	}
	if ws := warm.Store().Stats(); ws.Hits == 0 {
		t.Fatalf("warm profile did not read from disk: %+v", ws)
	}

	// The restored profile must be interchangeable in a replay.
	set, err := cold.EvalSet(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnit(name, "ADDICT", machine, 0, 0)
	rCold, err := Replay(u, set, want)
	if err != nil {
		t.Fatal(err)
	}
	rWarm, err := Replay(u, set, got)
	if err != nil {
		t.Fatal(err)
	}
	if Measure(rCold) != Measure(rWarm) {
		t.Error("replay under the restored profile diverged from the computed one")
	}
}

// TestPersistResultWarmStart round-trips a replay result — the subtle
// artifact: its machine's cache statistics live in unexported cache
// objects, persisted as aggregates and answered by the restored machine.
func TestPersistResultWarmStart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const name = "synth:uniform-ro"

	cold := NewWorkbench(newStoredArtifacts(t, dir), sim.Shallow())
	want, err := cold.Result(ctx, name, sched.ADDICT)
	if err != nil {
		t.Fatal(err)
	}

	warm := NewWorkbench(newStoredArtifacts(t, dir), sim.Shallow())
	hitsBefore := warm.Artifacts().Store().Stats().Hits
	got, err := warm.Result(ctx, name, sched.ADDICT)
	if err != nil {
		t.Fatal(err)
	}
	if hits := warm.Artifacts().Store().Stats().Hits; hits <= hitsBefore {
		t.Fatal("warm result did not read from disk")
	}

	// Every metric downstream reports must match exactly.
	if gm, wm := Measure(got), Measure(want); gm != wm {
		t.Errorf("restored result metrics differ:\n got %+v\nwant %+v", gm, wm)
	}
	// The restored machine must answer CacheStats (power.Analyze consumes
	// it) with the recorded aggregates instead of touching nil caches.
	gi, gd, gs := got.Machine.CacheStats()
	wi, wd, ws := want.Machine.CacheStats()
	if gi != wi || gd != wd || gs != ws {
		t.Errorf("restored machine cache stats differ: %+v/%+v/%+v vs %+v/%+v/%+v",
			gi, gd, gs, wi, wd, ws)
	}
}

// TestPersistResultDistinctMachines verifies the machine signature keeps
// results for different machines apart on disk.
func TestPersistResultDistinctMachines(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const name = "synth:uniform-ro"

	arts := newStoredArtifacts(t, dir)
	shallow := NewWorkbench(arts, sim.Shallow())
	deep := NewWorkbench(arts, sim.Deep())
	rs, err := shallow.Result(ctx, name, sched.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := deep.Result(ctx, name, sched.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Makespan == rd.Makespan {
		t.Skip("machines produced identical makespans; signature test is vacuous")
	}

	// A warm workbench on the deep machine must get the deep result.
	warm := NewWorkbench(newStoredArtifacts(t, dir), sim.Deep())
	got, err := warm.Result(ctx, name, sched.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != rd.Makespan {
		t.Errorf("warm deep-machine result has makespan %d, want %d (shallow was %d)",
			got.Makespan, rd.Makespan, rs.Makespan)
	}
}

// TestArtifactWeightBudget locks the weight-accounting fix: with mixed
// artifact kinds — including kinds artifactWeight has no case for — the
// resident bytes never exceed the budget, because the fallback weighs the
// encoded value instead of guessing a flat constant.
func TestArtifactWeightBudget(t *testing.T) {
	// The fallback must scale with the value, not flat-guess.
	big := make([]int, 4096)
	if w := artifactWeight(big); w < 4096 {
		t.Fatalf("fallback weight %d for a 4096-int slice is below its encoded size", w)
	}
	if w := artifactWeight(func() {}); w < 1<<20 {
		t.Fatalf("unencodable value weighed %d, want the large-value assumption", w)
	}

	const budget = 32 << 10
	lru := pool.NewLRU[any](budget, artifactWeight)
	ctx := context.Background()
	values := []func() (any, error){
		func() (any, error) { return sim.Result{}, nil },
		func() (any, error) { return make([]int, 2048), nil }, // unknown kind, ~16KiB encoded
		func() (any, error) { return make([]int, 4096), nil }, // unknown kind, ~32KiB encoded
		func() (any, error) { return "small string", nil },
		func() (any, error) { return map[string]int{"a": 1}, nil },
	}
	for round := 0; round < 3; round++ {
		for i, fn := range values {
			key := string(rune('a'+i)) + string(rune('0'+round))
			if _, err := lru.Do(ctx, key, fn); err != nil {
				t.Fatal(err)
			}
			if st := lru.Stats(); st.Bytes > budget {
				t.Fatalf("resident bytes %d exceed the %d budget after inserting %q", st.Bytes, budget, key)
			}
		}
	}
}
