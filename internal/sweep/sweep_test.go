package sweep

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"addict/internal/sched"
	"addict/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the sweep golden files under testdata/")

// testSpec is the acceptance grid: 2 L1-I sizes x 2 mechanisms x 3 thread
// counts = 12 units on one workload, at tiny trace counts.
func testSpec() Spec {
	return Spec{
		Seed:          7,
		Scale:         0.1,
		ProfileTraces: 120,
		EvalTraces:    60,
		Workloads:     []string{"TPC-B"},
		Mechanisms:    []string{"Baseline", "ADDICT"},
		L1ISizes:      []int{16 << 10, 32 << 10},
		Threads:       []int{4, 8, 16},
	}
}

func runToBytes(t *testing.T, spec Spec, format string, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	em, err := NewEmitter(format, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(spec, em, workers); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// firstDiff describes the first byte position where two outputs diverge.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("byte %d: %q vs %q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestSweepWorkerCountByteIdentity is the subsystem's headline guarantee
// (mirroring TestRunAllParallelMatchesSerial): the 12-unit acceptance grid
// must emit byte-identical CSV at 1, 2, and 8 workers.
func TestSweepWorkerCountByteIdentity(t *testing.T) {
	spec := testSpec()
	want := runToBytes(t, spec, "csv", 1)
	if len(want) == 0 {
		t.Fatal("serial sweep produced no output")
	}
	for _, workers := range []int{2, 8} {
		got := runToBytes(t, spec, "csv", workers)
		if !bytes.Equal(got, want) {
			t.Errorf("sweep output (workers=%d) diverges from serial: %s", workers, firstDiff(want, got))
		}
	}
}

// TestSweepCSVGolden locks the CSV emitter's bytes for the acceptance grid.
// Regenerate with:
//
//	go test ./internal/sweep -run TestSweepCSVGolden -update
func TestSweepCSVGolden(t *testing.T) {
	got := runToBytes(t, testSpec(), "csv", 4)
	path := filepath.Join("testdata", "tpcb_grid_csv.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to regenerate): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("CSV sweep output changed from golden %s: %s\n(regenerate with -update if intended)",
			path, firstDiff(want, got))
	}
}

// TestSweepFormatsAgree checks that every emitter reports the same units in
// the same order with non-empty output.
func TestSweepFormatsAgree(t *testing.T) {
	spec := testSpec()
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range Formats {
		out := string(runToBytes(t, spec, format, 4))
		for _, u := range units {
			if !strings.Contains(out, u.ID) {
				t.Errorf("%s output missing unit %s", format, u.ID)
			}
		}
		lines := strings.Count(out, "\n")
		if lines < len(units) {
			t.Errorf("%s output has %d lines for %d units", format, lines, len(units))
		}
	}
}

func TestExpandCountsAndOrder(t *testing.T) {
	units, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 12 {
		t.Fatalf("expanded %d units, want 12", len(units))
	}
	// Innermost axis (threads) varies fastest; mechanisms before L1-I.
	if units[0].Threads != 4 || units[1].Threads != 8 || units[2].Threads != 16 {
		t.Errorf("threads axis not innermost: %v %v %v", units[0].Threads, units[1].Threads, units[2].Threads)
	}
	if units[0].Machine.L1I.SizeBytes != 16<<10 || units[3].Machine.L1I.SizeBytes != 32<<10 {
		t.Errorf("L1-I axis order wrong: %d then %d", units[0].Machine.L1I.SizeBytes, units[3].Machine.L1I.SizeBytes)
	}
	if units[0].Mechanism != sched.Baseline || units[6].Mechanism != sched.ADDICT {
		t.Errorf("mechanism axis order wrong: %s then %s", units[0].Mechanism, units[6].Mechanism)
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, u := range units {
		if seen[u.ID] {
			t.Errorf("duplicate unit ID %s", u.ID)
		}
		seen[u.ID] = true
	}
}

// TestUnitIDStable pins the ID scheme: derived from the unit's values
// alone, so it must not move when unrelated axes are added to the grid.
func TestUnitIDStable(t *testing.T) {
	u := NewUnit("TPC-C", sched.ADDICT, sim.Shallow(), 8, 4)
	want := "TPC-C/ADDICT/c16/shallow/l1i32K.8/llc16M.16/hit16/mem105/t8/a4"
	if u.ID != want {
		t.Errorf("unit ID = %q, want %q", u.ID, want)
	}
	spec := Spec{Workloads: []string{"TPC-C"}, Mechanisms: []string{"ADDICT"},
		Threads: []int{8}, AdmitLimits: []int{4}}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 || units[0].ID != want {
		t.Errorf("expanded ID = %q, want %q", units[0].ID, want)
	}
	spec.Cores = []int{8}
	wider, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if wider[0].ID == want {
		t.Error("cores override did not change the unit ID")
	}
}

func TestExpandDefaults(t *testing.T) {
	units, err := Spec{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads x 4 mechanisms, everything else at base.
	if len(units) != 12 {
		t.Fatalf("default spec expanded to %d units, want 12", len(units))
	}
	base := sim.Shallow()
	for _, u := range units {
		if u.Machine.Cores != base.Cores || u.Machine.L1I != base.L1I {
			t.Errorf("%s: machine differs from base", u.ID)
		}
	}
}

func TestExpandRejectsBadGrid(t *testing.T) {
	if _, err := (Spec{Mechanisms: []string{"FANCY"}}).Expand(); err == nil {
		t.Error("unknown mechanism not rejected")
	}
	if _, err := (Spec{L1ISizes: []int{33 << 10}}).Expand(); err == nil {
		t.Error("non-power-of-two L1-I size not rejected")
	}
	if _, err := (Spec{Cores: []int{12}}).Expand(); err == nil {
		t.Error("core count with non-power-of-two bank derivation not rejected")
	}
	// Zero/negative axis values must fail expansion, not silently run the
	// base machine.
	if _, err := (Spec{L1ISizes: []int{0, 32 << 10}}).Expand(); err == nil {
		t.Error("zero L1-I size not rejected")
	}
	if _, err := (Spec{L1ISizes: []int{-16 << 10}}).Expand(); err == nil {
		t.Error("negative L1-I size not rejected")
	}
	if _, err := (Spec{MemCycles: []uint64{0}}).Expand(); err == nil {
		t.Error("zero memory latency not rejected")
	}
	if _, err := (Spec{Threads: []int{-1}}).Expand(); err == nil {
		t.Error("negative thread count not rejected")
	}
	// 0 stays meaningful for the load axes.
	if _, err := (Spec{Threads: []int{0, 8}}).Expand(); err != nil {
		t.Errorf("zero thread count (mechanism default) rejected: %v", err)
	}
	// Base parameters are validated too (withDefaults only replaces 0).
	if _, err := (Spec{Scale: -1}).Expand(); err == nil {
		t.Error("negative scale not rejected")
	}
	if _, err := (Spec{ProfileTraces: -500}).Expand(); err == nil {
		t.Error("negative profile trace count not rejected")
	}
}

func TestOverridesDerivedFields(t *testing.T) {
	base := sim.Shallow()
	got, err := base.Apply(sim.Overrides{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != 8 {
		t.Errorf("cores = %d, want 8", got.Cores)
	}
	if got.Shared.SizeBytes != 8<<20 {
		t.Errorf("shared size = %d, want %d (1MB per core)", got.Shared.SizeBytes, 8<<20)
	}
	if got.SharedBanks != 8 {
		t.Errorf("banks = %d, want 8", got.SharedBanks)
	}
	// An explicit LLC size wins over the per-core derivation.
	got, err = base.Apply(sim.Overrides{Cores: 8, SharedSizeBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got.Shared.SizeBytes != 4<<20 {
		t.Errorf("explicit shared size = %d, want %d", got.Shared.SizeBytes, 4<<20)
	}
	// Zero overrides change nothing.
	got, err = base.Apply(sim.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Error("zero overrides altered the configuration")
	}
	// Negative overrides are rejected rather than treated as "keep".
	if _, err := base.Apply(sim.Overrides{L1ISizeBytes: -1}); err == nil {
		t.Error("negative override not rejected")
	}
}

// TestAdmitLimitAxis checks the admission cap reaches the executor: a
// 1-admit run must serialize transactions, stretching the makespan well
// beyond the default run's.
func TestAdmitLimitAxis(t *testing.T) {
	spec := Spec{
		Seed: 7, Scale: 0.1, ProfileTraces: 60, EvalTraces: 40,
		Workloads:   []string{"TPC-B"},
		Mechanisms:  []string{"Baseline"},
		AdmitLimits: []int{0, 1},
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	arts := NewArtifacts(spec.Seed, spec.Scale, spec.ProfileTraces, spec.EvalTraces, 1)
	free, err := RunUnit(context.Background(), arts, units[0])
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunUnit(context.Background(), arts, units[1])
	if err != nil {
		t.Fatal(err)
	}
	if serial.Makespan <= free.Makespan {
		t.Errorf("admit=1 makespan %d not above unbounded %d", serial.Makespan, free.Makespan)
	}
}
