package sweep

import (
	"context"
	"sync"
	"testing"
	"time"

	"addict/internal/sched"
	"addict/internal/sim"
)

// TestWorkbenchBoundedStress hammers a weight-bounded Workbench from many
// goroutines (run it under -race): a tiny budget forces artifact eviction
// and regeneration mid-traffic, yet every Result must equal the unbounded
// reference — eviction changes residency, never content — and the eviction
// counter must only grow.
func TestWorkbenchBoundedStress(t *testing.T) {
	ctx := context.Background()
	names := []string{"synth:uniform-ro", "synth:hotset-write"}

	// Reference values from an unbounded session.
	refWB := NewWorkbench(NewArtifacts(5, 0.02, 20, 20, 2), sim.Shallow())
	type pair struct {
		name string
		mech sched.Mechanism
	}
	var pairs []pair
	ref := map[pair]sim.Result{}
	for _, name := range names {
		for _, mech := range sched.Mechanisms {
			p := pair{name, mech}
			r, err := refWB.Result(ctx, p.name, p.mech)
			if err != nil {
				t.Fatalf("reference %v: %v", p, err)
			}
			pairs = append(pairs, p)
			ref[p] = r
		}
	}

	// Fresh session with a budget far below the working set (the trace
	// windows alone exceed 64KiB), so the stress loop keeps evicting and
	// regenerating artifacts while other goroutines read them.
	wb := NewWorkbench(NewArtifacts(5, 0.02, 20, 20, 2), sim.Shallow())
	wb.Bound(64 << 10)

	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ev := wb.CacheStats().Evictions; ev < last {
				t.Errorf("eviction counter went backwards: %d then %d", last, ev)
				return
			} else {
				last = ev
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const workers, rounds = 4, 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := range pairs {
					p := pairs[(i+w*3)%len(pairs)] // offset per worker: maximal interleaving
					got, err := wb.Result(ctx, p.name, p.mech)
					if err != nil {
						t.Errorf("worker %d %v: %v", w, p, err)
						return
					}
					if got.Makespan != ref[p].Makespan || got.Machine.Instructions != ref[p].Machine.Instructions {
						t.Errorf("worker %d %v: bounded result diverged from unbounded reference", w, p)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	monitor.Wait()

	st := wb.CacheStats()
	if st.Evictions == 0 {
		t.Errorf("a 64KiB budget never evicted under stress: %+v", st)
	}
	if st.Bytes > 64<<10 {
		t.Errorf("resident weight %d exceeds the 64KiB budget after quiescence", st.Bytes)
	}
	// Every Result call either computed or hit — none were lost.
	if want := uint64(workers*rounds*len(pairs)) + uint64(len(pairs)); st.Hits+st.Misses < want/4 {
		t.Errorf("implausibly few cache interactions: %+v", st)
	}
}
