package sweep

import (
	"context"
	"fmt"

	"addict/internal/cache"
	"addict/internal/core"
	"addict/internal/pool"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/store"
	"addict/internal/trace"
)

// Workbench is the session-level artifact cache: the shared Artifacts
// (trace windows, migration-point profiles) plus memoized per-(workload,
// mechanism) replay results on one fixed machine. It is the cache behind
// both the figure pipeline (internal/exp wraps it) and the facade's
// long-lived Engine sessions — promoted out of internal/exp so a session
// can reuse what the experiment harness computes and vice versa.
//
// A Workbench is safe for concurrent use: every artifact is computed once
// (single-flight) no matter how many callers request it at the same time,
// every artifact's content is independent of the order, interleaving, or
// worker count of the requests, and a computation aborted by context
// cancellation is evicted instead of cached.
type Workbench struct {
	machine sim.Config
	arts    *Artifacts
	// machineSig discriminates this workbench's replay results inside the
	// shared artifact cache: several workbenches on different machines may
	// share one Artifacts, and their (workload, mechanism) results must not
	// collide.
	machineSig string
}

// NewWorkbench wraps an artifact cache with per-mechanism result caching on
// the given machine.
func NewWorkbench(arts *Artifacts, machine sim.Config) *Workbench {
	return &Workbench{
		machine:    machine,
		arts:       arts,
		machineSig: machineSig(machine),
	}
}

// machineSig renders a machine configuration as a stable cache-key
// component: identical configurations produce identical signatures. The
// PrivateL2 pointer is flattened to its value so the signature never
// embeds a heap address.
func machineSig(m sim.Config) string {
	var l2 cache.Config
	if m.PrivateL2 != nil {
		l2 = *m.PrivateL2
	}
	m.PrivateL2 = nil
	return fmt.Sprintf("%+v|%+v", m, l2)
}

// Artifacts exposes the underlying shared artifact cache.
func (w *Workbench) Artifacts() *Artifacts { return w.arts }

// Machine returns the simulated hardware results are cached for.
func (w *Workbench) Machine() sim.Config { return w.machine }

// Bound sets the session cache's resident-weight budget in approximate
// bytes (<= 0 = unbounded): trace windows, migration-point profiles, and
// replay results share one LRU, so the budget covers everything the
// session holds. When the resident weight exceeds it, least-recently-used
// artifacts are evicted and will regenerate — deterministically, to
// identical content — on next use. A live (in-flight) computation is never
// evicted and never computed twice.
func (w *Workbench) Bound(budget int64) { w.arts.Bound(budget) }

// CacheStats reports the session cache's counters: resident bytes
// (artifactWeight estimates), entries, hits, misses, evictions.
func (w *Workbench) CacheStats() pool.CacheStats { return w.arts.CacheStats() }

// StoreStats reports the attached on-disk store's counters; ok is false
// when the session is memory-only.
func (w *Workbench) StoreStats() (s store.Stats, ok bool) { return w.arts.StoreStats() }

// ProfileSet returns the workload's profiling trace window.
func (w *Workbench) ProfileSet(ctx context.Context, name string) (*trace.Set, error) {
	return w.arts.ProfileSet(ctx, name)
}

// EvalSet returns the workload's evaluation trace window.
func (w *Workbench) EvalSet(ctx context.Context, name string) (*trace.Set, error) {
	return w.arts.EvalSet(ctx, name)
}

// Profile returns the workload's Algorithm 1 output against the session
// machine's L1-I geometry.
func (w *Workbench) Profile(ctx context.Context, name string) (*core.Profile, error) {
	return w.arts.Profile(ctx, name, w.machine)
}

// Result replays the workload's evaluation window under a mechanism at the
// default load point, caching the outcome — repeated Schedule calls on one
// session, and the figures sharing a replay (Figures 5, 6, 8b, 9), all hit
// this cache. The replay goes through the sweep execution path
// (Replay): a session's (workload, mechanism) point is the default-load
// sweep unit on the session machine.
func (w *Workbench) Result(ctx context.Context, name string, mech sched.Mechanism) (sim.Result, error) {
	key := "result\x00" + w.machineSig + "\x00" + name + "\x00" + string(mech)
	entry := w.arts.resultEntry(name, string(mech), w.machineSig)
	v, err := w.arts.cache.Do(ctx, key, entry, func() (any, error) {
		var prof *core.Profile
		if mech == sched.ADDICT {
			p, err := w.Profile(ctx, name)
			if err != nil {
				return sim.Result{}, err
			}
			prof = p
		}
		set, err := w.EvalSet(ctx, name)
		if err != nil {
			return sim.Result{}, err
		}
		u := NewUnit(name, mech, w.machine, 0, 0)
		return Replay(u, set, prof)
	})
	if err != nil {
		return sim.Result{}, err
	}
	return v.(sim.Result), nil
}
