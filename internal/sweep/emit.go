package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"addict/internal/stats"
)

// Emitter receives sweep results in unit (expansion) order. Begin is called
// once with the full expanded grid before any result, Emit once per unit as
// its result becomes available, End once after the last unit. Every emitter
// must produce deterministic bytes for a given (units, metrics) sequence —
// the engine's worker-count byte-identity guarantee extends through the
// emitter.
type Emitter interface {
	Begin(units []Unit) error
	Emit(u Unit, m Metrics) error
	End() error
}

// Formats lists the built-in emitter format names.
var Formats = []string{"table", "csv", "jsonl"}

// NewEmitter builds a built-in emitter by format name: "table" (aligned
// text), "csv" (machine-readable, one header row), or "jsonl" (one JSON
// object per unit).
func NewEmitter(format string, out io.Writer) (Emitter, error) {
	switch format {
	case "table":
		return &tableEmitter{out: out}, nil
	case "csv":
		return &csvEmitter{out: out}, nil
	case "jsonl":
		return &jsonlEmitter{out: out}, nil
	default:
		return nil, fmt.Errorf("sweep: unknown format %q (want %s)", format, strings.Join(Formats, ", "))
	}
}

// row is the flat per-unit record the machine-readable emitters share:
// every axis value spelled out (not just the composite ID) plus the
// metrics, so downstream analysis never needs to parse the ID.
type row struct {
	ID           string `json:"id"`
	Workload     string `json:"workload"`
	Mechanism    string `json:"mechanism"`
	Cores        int    `json:"cores"`
	Hierarchy    string `json:"hierarchy"`
	L1IBytes     int    `json:"l1i_bytes"`
	L1IWays      int    `json:"l1i_ways"`
	LLCBytes     int    `json:"llc_bytes"`
	LLCWays      int    `json:"llc_ways"`
	LLCHitCycles uint64 `json:"llc_hit_cycles"`
	MemCycles    uint64 `json:"mem_cycles"`
	Threads      int    `json:"threads"`
	Admit        int    `json:"admit"`
	Metrics
}

func newRow(u Unit, m Metrics) row {
	return row{
		ID:           u.ID,
		Workload:     u.Workload,
		Mechanism:    string(u.Mechanism),
		Cores:        u.Machine.Cores,
		Hierarchy:    hierarchyLabel(u.Machine),
		L1IBytes:     u.Machine.L1I.SizeBytes,
		L1IWays:      u.Machine.L1I.Ways,
		LLCBytes:     u.Machine.Shared.SizeBytes,
		LLCWays:      u.Machine.Shared.Ways,
		LLCHitCycles: u.Machine.SharedHitCycles,
		MemCycles:    u.Machine.MemCycles,
		Threads:      u.Threads,
		Admit:        u.Admit,
		Metrics:      m,
	}
}

// csvEmitter streams one comma-separated line per unit under a single
// header row. Fields never contain commas (unit IDs use "/" and "."), so
// no quoting is needed and the output is byte-stable.
type csvEmitter struct{ out io.Writer }

// csvHeader is the fixed column order. The speculation counters are not
// CSV columns: they are zero for all but HTMSPEC, and adding columns would
// break the byte-stable header; the JSONL emitter carries them (omitempty).
var csvHeader = []string{
	"id", "workload", "mechanism", "cores", "hierarchy",
	"l1i_bytes", "l1i_ways", "llc_bytes", "llc_ways",
	"llc_hit_cycles", "mem_cycles", "threads", "admit",
	"makespan_cycles", "avg_latency_cycles", "instructions", "ipc",
	"l1i_mpki", "l1d_mpki", "llc_mpki", "switches_per_ki", "overhead_share",
}

func (e *csvEmitter) Begin(units []Unit) error {
	_, err := fmt.Fprintln(e.out, strings.Join(csvHeader, ","))
	return err
}

func (e *csvEmitter) Emit(u Unit, m Metrics) error {
	r := newRow(u, m)
	_, err := fmt.Fprintf(e.out, "%s,%s,%s,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.1f,%d,%.4f,%.3f,%.3f,%.3f,%.3f,%.4f\n",
		r.ID, r.Workload, r.Mechanism, r.Cores, r.Hierarchy,
		r.L1IBytes, r.L1IWays, r.LLCBytes, r.LLCWays,
		r.LLCHitCycles, r.MemCycles, r.Threads, r.Admit,
		r.Makespan, r.AvgLatency, r.Instructions, r.IPC,
		r.L1IMPKI, r.L1DMPKI, r.LLCMPKI, r.SwitchesPerKI, r.OverheadShare)
	return err
}

func (e *csvEmitter) End() error { return nil }

// jsonlEmitter streams one JSON object per unit. Field order is fixed by
// the row struct, so the bytes are deterministic.
type jsonlEmitter struct{ out io.Writer }

func (e *jsonlEmitter) Begin(units []Unit) error { return nil }

func (e *jsonlEmitter) Emit(u Unit, m Metrics) error {
	b, err := json.Marshal(newRow(u, m))
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = e.out.Write(b)
	return err
}

func (e *jsonlEmitter) End() error { return nil }

// tableEmitter renders an aligned text table. Alignment needs every row's
// width, so rows buffer and the table renders at End — the one emitter that
// trades streaming for human-readable columns.
type tableEmitter struct {
	out io.Writer
	t   stats.Table
}

func (e *tableEmitter) Begin(units []Unit) error {
	if _, err := fmt.Fprintf(e.out, "Parameter sweep: %d units\n\n", len(units)); err != nil {
		return err
	}
	e.t.Header = []string{
		"unit", "makespan", "avg lat", "ipc",
		"L1-I mpki", "L1-D mpki", "LLC mpki", "sw/ki", "overhead",
	}
	return nil
}

func (e *tableEmitter) Emit(u Unit, m Metrics) error {
	e.t.AddRow(u.ID,
		stats.U(m.Makespan), stats.F(m.AvgLatency, 1), stats.F(m.IPC, 3),
		stats.F(m.L1IMPKI, 2), stats.F(m.L1DMPKI, 2), stats.F(m.LLCMPKI, 2),
		stats.F(m.SwitchesPerKI, 3), stats.Pct(m.OverheadShare))
	return nil
}

func (e *tableEmitter) End() error {
	// stats.Table.Render cannot report write errors; render into a buffer
	// and do one checked write so the error contract matches csv/jsonl.
	var buf bytes.Buffer
	e.t.Render(&buf)
	_, err := e.out.Write(buf.Bytes())
	return err
}
