// Package sweep implements the parameter-sweep subsystem: a declarative
// grid over machine parameters (L1-I/LLC geometry, core count, miss
// latencies), workloads — the TPC benchmarks and synthetic scenarios
// (internal/workload/synth), with dedicated axes for skew exponent, write
// fraction, and hot-set size — scheduling mechanisms, thread counts, and
// admission limits, expanded into experiment units and executed on the
// shared worker pool with the same determinism guarantees as the figure
// pipeline (internal/exp). It answers the sensitivity questions the paper's
// fixed Table-1 setup leaves open — how the SLICC/STREX/ADDICT wins move as
// the instruction cache, the core count, and the offered load scale — and
// is the execution path the figure runners are thin presets over.
//
// A Spec expands into Units in a fixed documented axis order; each unit
// carries a stable ID derived from its own parameter values alone, so
// results are joinable across runs and grids. Results stream through
// pluggable emitters (aligned text, CSV, JSON lines); output is
// byte-identical for every worker count.
package sweep

import (
	"fmt"
	"strings"

	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/workload/synth"
)

// Spec is a declarative sweep grid. The axis fields each list the values
// one parameter takes; the expansion is their cartesian product. An empty
// axis means "the base value" (a single point): empty Workloads selects the
// paper's three benchmarks, empty Mechanisms the paper's four, empty
// machine axes the base machine's Table-1 values, empty Threads/AdmitLimits
// the mechanism defaults. The struct is JSON-serializable for spec files
// (cmd/addict-sweep -spec).
type Spec struct {
	// Seed drives all workload randomness (0 selects 42, the repo default).
	Seed int64 `json:"seed,omitempty"`
	// Scale scales the database populations (0 selects 0.5, the quick
	// default — sweeps multiply unit counts, so the base cost matters).
	Scale float64 `json:"scale,omitempty"`
	// ProfileTraces / EvalTraces size the profiling and evaluation trace
	// windows (0 selects 250 each, the QuickParams sizes).
	ProfileTraces int `json:"profile_traces,omitempty"`
	EvalTraces    int `json:"eval_traces,omitempty"`
	// Deep selects the Section 4.6 deeper hierarchy as the base machine.
	Deep bool `json:"deep,omitempty"`

	// Workloads lists benchmark names: "TPC-B", "TPC-C", "TPC-E", or
	// encoded synthetic workloads ("synth:<preset>[+z<theta>][+w<frac>]
	// [+h<keys>]", see internal/workload/synth).
	Workloads []string `json:"workloads,omitempty"`

	// Synth selects a shipped synthetic-workload preset; the three synth
	// axes below vary it, and every (theta, write fraction, hot-set size)
	// combination appends one encoded workload name to the workload axis —
	// after the explicit Workloads, theta outermost, hot-set size
	// innermost. An empty synth axis keeps the preset's own value. Setting
	// Synth with no Workloads sweeps only the synthetic variants (the TPC
	// default trio is not dragged in).
	Synth string `json:"synth,omitempty"`
	// SynthThetas sweeps the zipfian skew exponent, each value in (0, 1).
	SynthThetas []float64 `json:"synth_thetas,omitempty"`
	// SynthWriteFracs sweeps the base write fraction, each value in [0, 1].
	SynthWriteFracs []float64 `json:"synth_write_fracs,omitempty"`
	// SynthHotKeys sweeps the hot-set size (selects the hotset
	// distribution), each value >= 1.
	SynthHotKeys []int `json:"synth_hot_keys,omitempty"`
	// Mechanisms lists scheduling mechanisms by name, resolved through
	// sched.ParseMechanism — any of sched.AllMechanisms ("Baseline",
	// "STREX", "SLICC", "ADDICT", "HTMSPEC", "CHAIN"), case-insensitive.
	Mechanisms []string `json:"mechanisms,omitempty"`

	// Machine axes (see sim.Overrides for the derived-field rules).
	L1ISizes        []int    `json:"l1i_sizes,omitempty"` // bytes
	L1IWays         []int    `json:"l1i_ways,omitempty"`
	SharedSizes     []int    `json:"shared_sizes,omitempty"` // bytes, total
	SharedWays      []int    `json:"shared_ways,omitempty"`
	Cores           []int    `json:"cores,omitempty"`
	SharedHitCycles []uint64 `json:"shared_hit_cycles,omitempty"`
	MemCycles       []uint64 `json:"mem_cycles,omitempty"`

	// Threads sweeps the batch size — the number of same-type transactions
	// batched together, i.e. the offered concurrency (0 = core count).
	Threads []int `json:"threads,omitempty"`
	// AdmitLimits sweeps the admission cap independently of the batch size
	// (0 = the mechanism default).
	AdmitLimits []int `json:"admit_limits,omitempty"`
}

// Unit is one expanded experiment: a fully resolved (workload, mechanism,
// machine, load) point plus the stable ID it is keyed by.
type Unit struct {
	// ID is derived from the unit's own parameter values alone — never
	// from its position in the grid — so it is stable across grid
	// reorderings and joinable across runs.
	ID        string
	Workload  string
	Mechanism sched.Mechanism
	Machine   sim.Config
	// Threads is the batch size / offered concurrency (0 = core count).
	Threads int
	// Admit is the admission cap (0 = mechanism default).
	Admit int
}

// NewUnit resolves one sweep point into a unit with its stable ID — the
// constructor the figure presets in internal/exp use to route their replays
// through the sweep execution path.
func NewUnit(workload string, mech sched.Mechanism, machine sim.Config, threads, admit int) Unit {
	u := Unit{
		Workload:  workload,
		Mechanism: mech,
		Machine:   machine,
		Threads:   threads,
		Admit:     admit,
	}
	u.ID = u.id()
	return u
}

// sizeLabel renders a byte count compactly ("32K", "16M", "768").
func sizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dM", bytes>>20)
	case bytes >= 1<<10 && bytes%(1<<10) == 0:
		return fmt.Sprintf("%dK", bytes>>10)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}

// hierarchyLabel names a machine's cache depth ("shallow" or "deep") —
// shared by unit IDs and the machine-readable emitter rows.
func hierarchyLabel(m sim.Config) string {
	if m.PrivateL2 != nil {
		return "deep"
	}
	return "shallow"
}

// id derives the stable unit ID from the unit's parameter values.
func (u Unit) id() string {
	m := u.Machine
	return fmt.Sprintf("%s/%s/c%d/%s/l1i%s.%d/llc%s.%d/hit%d/mem%d/t%d/a%d",
		u.Workload, u.Mechanism, m.Cores, hierarchyLabel(m),
		sizeLabel(m.L1I.SizeBytes), m.L1I.Ways,
		sizeLabel(m.Shared.SizeBytes), m.Shared.Ways,
		m.SharedHitCycles, m.MemCycles, u.Threads, u.Admit)
}

// Default axis values.
var (
	defaultWorkloads  = []string{"TPC-B", "TPC-C", "TPC-E"}
	defaultMechanisms = []string{
		string(sched.Baseline), string(sched.STREX),
		string(sched.SLICC), string(sched.ADDICT),
	}
)

// withDefaults fills the unset base parameters. The workload axis defaults
// to the TPC trio only when no synthetic preset is selected: a synth-only
// sweep should not drag the three TPC populations in.
func (s Spec) withDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Scale == 0 {
		s.Scale = 0.5
	}
	if s.ProfileTraces == 0 {
		s.ProfileTraces = 250
	}
	if s.EvalTraces == 0 {
		s.EvalTraces = 250
	}
	if len(s.Workloads) == 0 && s.Synth == "" {
		s.Workloads = defaultWorkloads
	}
	if len(s.Mechanisms) == 0 {
		s.Mechanisms = defaultMechanisms
	}
	return s
}

// Resolved returns the spec with every unset base parameter filled in
// (seed, scale, trace windows, default workload and mechanism axes) — the
// canonical form two processes must agree on before they can rendezvous on
// one grid: a coordinator resolves once and ships the resolved spec, so a
// worker expanding it lands on exactly the same units and the same
// artifact-store addresses. Resolving is idempotent.
func (s Spec) Resolved() Spec {
	return s.withDefaults()
}

// synthNames expands the synthetic-workload axes into encoded workload
// names, validating every combination by parsing it back.
func (s Spec) synthNames() ([]string, error) {
	if s.Synth == "" {
		if len(s.SynthThetas)+len(s.SynthWriteFracs)+len(s.SynthHotKeys) > 0 {
			return nil, fmt.Errorf("sweep: synth axes set without a synth preset")
		}
		return nil, nil
	}
	if _, ok := synth.Preset(s.Synth); !ok {
		return nil, fmt.Errorf("sweep: unknown synth preset %q (have %s)",
			s.Synth, strings.Join(synth.Presets(), ", "))
	}
	// Internal absent-override sentinels (0 for theta and hot-set size, -1
	// for the write fraction, where 0 is meaningful); validate() has
	// already rejected them as explicit axis values.
	thetas, writes, hots := s.SynthThetas, s.SynthWriteFracs, s.SynthHotKeys
	if len(thetas) == 0 {
		thetas = []float64{0}
	}
	if len(writes) == 0 {
		writes = []float64{-1}
	}
	if len(hots) == 0 {
		hots = []int{0}
	}
	var names []string
	for _, z := range thetas {
		for _, w := range writes {
			for _, h := range hots {
				name := synth.EncodeName(s.Synth, z, w, h)
				if _, err := synth.ParseName(name); err != nil {
					return nil, fmt.Errorf("sweep: %w", err)
				}
				names = append(names, name)
			}
		}
	}
	return names, nil
}

// BaseMachine returns the spec's base machine configuration.
func (s Spec) BaseMachine() sim.Config {
	if s.Deep {
		return sim.Deep()
	}
	return sim.Shallow()
}

// orZero returns the axis values, or the single zero-element (= "base
// value") when the axis is empty.
func orZero[T any](axis []T) []T {
	if len(axis) == 0 {
		return make([]T, 1)
	}
	return axis
}

// Expand resolves the grid into units: the cartesian product of every axis,
// in the fixed nesting order workload (outermost), mechanism, L1-I size,
// L1-I ways, LLC size, LLC ways, cores, LLC hit latency, memory latency,
// threads, admit (innermost). The workload axis is the explicit Workloads
// followed by the synthetic-preset variants (theta outermost, write
// fraction, hot-set size innermost). The order is part of the contract: it
// decides the emission order of every run over the same spec. Machine
// overrides are validated at expansion, so an unbuildable grid point fails
// here instead of mid-run.
func (s Spec) Expand() ([]Unit, error) {
	return s.ExpandOn(s.BaseMachine())
}

// validate rejects values the downstream layers would otherwise silently
// clamp or treat as "keep the base value": a 0 (or negative) in an explicit
// machine axis is a spec mistake, not a request for the base machine, and a
// negative scale or trace count would produce a degenerate near-empty
// workload whose metrics look like real results. Called after withDefaults,
// so zero base parameters have already been replaced.
func (s Spec) validate() error {
	if s.Scale <= 0 {
		return fmt.Errorf("sweep: scale %v is not positive", s.Scale)
	}
	if s.ProfileTraces <= 0 {
		return fmt.Errorf("sweep: profile_traces %d is not positive", s.ProfileTraces)
	}
	if s.EvalTraces <= 0 {
		return fmt.Errorf("sweep: eval_traces %d is not positive", s.EvalTraces)
	}
	pos := func(name string, vals []int) error {
		for _, v := range vals {
			if v <= 0 {
				return fmt.Errorf("sweep: axis %s: value %d is not positive", name, v)
			}
		}
		return nil
	}
	posU := func(name string, vals []uint64) error {
		for _, v := range vals {
			if v == 0 {
				return fmt.Errorf("sweep: axis %s: value 0 is not positive", name)
			}
		}
		return nil
	}
	nonNeg := func(name string, vals []int) error {
		for _, v := range vals {
			if v < 0 {
				return fmt.Errorf("sweep: axis %s: value %d is negative", name, v)
			}
		}
		return nil
	}
	checks := []error{
		pos("l1i_sizes", s.L1ISizes), pos("l1i_ways", s.L1IWays),
		pos("shared_sizes", s.SharedSizes), pos("shared_ways", s.SharedWays),
		pos("cores", s.Cores),
		posU("shared_hit_cycles", s.SharedHitCycles), posU("mem_cycles", s.MemCycles),
		// 0 is meaningful for the load axes (= mechanism default).
		nonNeg("threads", s.Threads), nonNeg("admit_limits", s.AdmitLimits),
		pos("synth_hot_keys", s.SynthHotKeys),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	// Positive phrasing so NaN (every comparison false) is rejected too.
	for _, v := range s.SynthThetas {
		if !(v > 0 && v < 1) {
			return fmt.Errorf("sweep: axis synth_thetas: value %v outside (0, 1)", v)
		}
	}
	for _, v := range s.SynthWriteFracs {
		if !(v >= 0 && v <= 1) {
			return fmt.Errorf("sweep: axis synth_write_fracs: value %v outside [0, 1]", v)
		}
	}
	return nil
}

// ExpandOn expands the grid over an explicit base machine instead of the
// spec's Deep/Shallow selection — the hook the figure presets in
// internal/exp use to sweep on the experiment run's own machine.
func (s Spec) ExpandOn(base sim.Config) ([]Unit, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	synthNames, err := s.synthNames()
	if err != nil {
		return nil, err
	}
	workloads := append(append([]string{}, s.Workloads...), synthNames...)
	var units []Unit
	for _, w := range workloads {
		for _, mechName := range s.Mechanisms {
			mech, err := mechanismByName(mechName)
			if err != nil {
				return nil, err
			}
			for _, l1iSize := range orZero(s.L1ISizes) {
				for _, l1iWays := range orZero(s.L1IWays) {
					for _, llcSize := range orZero(s.SharedSizes) {
						for _, llcWays := range orZero(s.SharedWays) {
							for _, cores := range orZero(s.Cores) {
								for _, hit := range orZero(s.SharedHitCycles) {
									for _, mem := range orZero(s.MemCycles) {
										o := sim.Overrides{
											Cores:           cores,
											L1ISizeBytes:    l1iSize,
											L1IWays:         l1iWays,
											SharedSizeBytes: llcSize,
											SharedWays:      llcWays,
											SharedHitCycles: hit,
											MemCycles:       mem,
										}
										machine, err := base.Apply(o)
										if err != nil {
											return nil, fmt.Errorf("sweep: %w", err)
										}
										for _, threads := range orZero(s.Threads) {
											for _, admit := range orZero(s.AdmitLimits) {
												units = append(units, NewUnit(w, mech, machine, threads, admit))
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return units, nil
}

// mechanismByName resolves a mechanism axis value across every
// implemented family, with sched's nearest-name suggestion on a typo.
func mechanismByName(name string) (sched.Mechanism, error) {
	m, err := sched.ParseMechanism(name)
	if err != nil {
		return "", fmt.Errorf("sweep: %w", err)
	}
	return m, nil
}
