package exp

import (
	"io"

	"addict/internal/codemap"
	"addict/internal/stats"
	"addict/internal/trace"
)

// Fig1 measures the per-routine instruction footprints of the five database
// operations over the TPC-C mix — the flow-graph percentages of Figure 1
// ("the footprint is measured as the unique 64byte cache blocks requested
// by each operation when running 1000 transactions from the transaction mix
// of TPC-C").
type Fig1Result struct {
	// OpFootprint[op] is the union instruction footprint (blocks) of all
	// instances of the operation in the mix.
	OpFootprint map[trace.OpType]int
	// Edges are the flow-graph labels: |footprint(callee)| as a share of
	// |footprint(parent)|.
	Edges []Fig1Edge
}

// Fig1Edge is one labeled arrow of Figure 1.
type Fig1Edge struct {
	Parent, Child string
	// Share is |fp(child ∩ parent-instances)| / |fp(parent)|.
	Share float64
	// Paper is the percentage printed in Figure 1.
	Paper float64
	// Dashed marks conditionally executed paths.
	Dashed bool
}

// Fig1 runs the measurement on the workbench's TPC-C profiling set.
func Fig1(w *Workbench) Fig1Result {
	set := w.ProfileSet("TPC-C")
	lay := w.Layout

	// Union footprint per operation, and per routine within each operation.
	opFP := make(map[trace.OpType]map[uint64]struct{})
	for _, t := range set.Traces {
		for _, o := range t.Ops() {
			fp := opFP[o.Op]
			if fp == nil {
				fp = make(map[uint64]struct{})
				opFP[o.Op] = fp
			}
			for _, e := range t.Events[o.Start:o.End] {
				if e.Kind == trace.KindInstr {
					fp[e.Addr] = struct{}{}
				}
			}
		}
	}

	// Share of an op's footprint inside a set of routines.
	share := func(op trace.OpType, routines ...string) float64 {
		fp := opFP[op]
		if len(fp) == 0 {
			return 0
		}
		n := 0
		for a := range fp {
			if seg, ok := lay.Find(a); ok {
				for _, r := range routines {
					if seg.Name == r {
						n++
						break
					}
				}
			}
		}
		return float64(n) / float64(len(fp))
	}

	res := Fig1Result{OpFootprint: make(map[trace.OpType]int)}
	for op, fp := range opFP {
		res.OpFootprint[op] = len(fp)
	}

	probeCallees := []string{codemap.RLookup, codemap.RTraverse, codemap.RBufFind, codemap.RLatch, codemap.RLockAcquire}
	res.Edges = []Fig1Edge{
		{Parent: "find key", Child: "lookup", Paper: 0.73,
			Share: share(trace.OpIndexProbe, probeCallees...)},
		{Parent: "lookup", Child: "traverse", Paper: 0.71,
			Share: ratio(share(trace.OpIndexProbe, codemap.RTraverse, codemap.RBufFind, codemap.RLatch, codemap.RLockAcquire),
				share(trace.OpIndexProbe, probeCallees...))},
		{Parent: "traverse", Child: "lock", Paper: 0.33,
			Share: ratio(share(trace.OpIndexProbe, codemap.RLockAcquire),
				share(trace.OpIndexProbe, codemap.RTraverse, codemap.RBufFind, codemap.RLatch, codemap.RLockAcquire))},
		{Parent: "index scan", Child: "initialize cursor", Paper: 0.75,
			Share: share(trace.OpIndexScan, codemap.RInitCursor, codemap.RTraverse, codemap.RBufFind, codemap.RLatch, codemap.RLockAcquire)},
		{Parent: "index scan", Child: "fetch next", Paper: 0.25,
			Share: share(trace.OpIndexScan, codemap.RFetchNext)},
		{Parent: "update tuple", Child: "pin record page", Paper: 0.46,
			Share: share(trace.OpUpdateTuple, codemap.RPinRecord, codemap.RBufFind, codemap.RLatch)},
		{Parent: "update tuple", Child: "update page", Paper: 0.40,
			Share: share(trace.OpUpdateTuple, codemap.RUpdatePage, codemap.RLogInsert)},
		{Parent: "insert tuple", Child: "create record", Paper: 0.44,
			Share: share(trace.OpInsertTuple, codemap.RCreateRecord, codemap.RAllocatePage, codemap.RBufFind, codemap.RLatch, codemap.RLogInsert)},
		{Parent: "insert tuple", Child: "create index entry", Paper: 0.56,
			Share: share(trace.OpInsertTuple, codemap.RCreateIndexEntry, codemap.RIndexDescent, codemap.RBtreeSMO)},
		{Parent: "create record", Child: "allocate page", Paper: 0.47, Dashed: true,
			Share: ratio(share(trace.OpInsertTuple, codemap.RAllocatePage),
				share(trace.OpInsertTuple, codemap.RCreateRecord, codemap.RAllocatePage, codemap.RBufFind, codemap.RLatch, codemap.RLogInsert))},
		{Parent: "create index entry", Child: "structural modification", Paper: 0.65, Dashed: true,
			Share: ratio(share(trace.OpInsertTuple, codemap.RBtreeSMO),
				share(trace.OpInsertTuple, codemap.RCreateIndexEntry, codemap.RIndexDescent, codemap.RBtreeSMO))},
	}
	return res
}

// Render prints the Figure 1 table.
func (r Fig1Result) Render(out io.Writer) {
	section(out, "Figure 1: Instruction footprints of database operations (TPC-C mix)")
	t := &stats.Table{Header: []string{"operation", "footprint blocks", "KB"}}
	for _, op := range []trace.OpType{trace.OpIndexProbe, trace.OpIndexScan, trace.OpUpdateTuple, trace.OpInsertTuple, trace.OpDeleteTuple} {
		fp := r.OpFootprint[op]
		t.AddRow(op.String(), stats.N(fp), stats.N(fp*64>>10))
	}
	t.Render(out)
	e := &stats.Table{Header: []string{"edge (A -> B)", "measured", "paper", "path"}}
	for _, edge := range r.Edges {
		path := "always"
		if edge.Dashed {
			path = "dashed"
		}
		e.AddRow(edge.Parent+" -> "+edge.Child, stats.Pct(edge.Share), stats.Pct(edge.Paper), path)
	}
	e.Render(out)
}
