// Package exp implements the paper's evaluation: one runner per table and
// figure (Table 1, Figures 1-9), plus the ablations called out in
// DESIGN.md. Every runner returns a structured result and renders the same
// rows/series the paper reports, normalized over Baseline where the paper
// normalizes.
//
// The evaluation runs either serially (RunAll) or on a bounded worker pool
// (RunAllParallel); both produce byte-identical reports. Shared artifacts
// live in a Workbench that is safe for concurrent use: every artifact is
// memoized with single-flight semantics, so concurrent experiments block on
// the first computation instead of duplicating it.
//
// Every replay routes through the sweep execution path (internal/sweep):
// a figure's per-(workload, mechanism) point is the default-load sweep
// unit, Figure 7 a Threads-axis grid, Figure 8a a Deep-machine grid — so
// the figure pipeline and cmd/addict-sweep cannot drift apart.
package exp

import (
	"context"
	"fmt"
	"io"

	"addict/internal/codemap"
	"addict/internal/core"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/sweep"
	"addict/internal/trace"
)

// Params scopes an experiment run.
type Params struct {
	// Seed drives all workload randomness.
	Seed int64
	// Scale scales the database populations (1.0 = the laptop-scale
	// defaults in package workload).
	Scale float64
	// ProfileTraces is the number of traces Algorithm 1 profiles (paper:
	// the first 1000).
	ProfileTraces int
	// EvalTraces is the number of traces the scheduling experiments replay
	// (paper: the next 1000).
	EvalTraces int
	// StabilityTraces is the large trace count for Figure 4 (paper:
	// 10000 beyond the profiling set).
	StabilityTraces int
	// Machine is the simulated hardware.
	Machine sim.Config
}

// DefaultParams returns the paper-faithful setup (Section 4.1).
func DefaultParams() Params {
	return Params{
		Seed:            42,
		Scale:           1.0,
		ProfileTraces:   1000,
		EvalTraces:      1000,
		StabilityTraces: 10000,
		Machine:         sim.Shallow(),
	}
}

// QuickParams returns a reduced setup for tests and fast benchmark runs:
// the same structure at ~1/4 the trace counts and 1/2 the database scale.
func QuickParams() Params {
	return Params{
		Seed:            42,
		Scale:           0.5,
		ProfileTraces:   250,
		EvalTraces:      250,
		StabilityTraces: 1000,
		Machine:         sim.Shallow(),
	}
}

// Workloads lists the paper's three benchmarks in presentation order.
var Workloads = []string{"TPC-B", "TPC-C", "TPC-E"}

// Workbench is the figure pipeline's view of the shared session cache
// (sweep.Workbench): per-workload artifacts — profiling and evaluation
// trace sets, the migration-point profile, per-mechanism replay results —
// computed once (single-flight) no matter how many experiments request
// them concurrently, with content independent of order, interleaving, and
// worker count. The figure runners consume artifacts as plain values; on a
// context-cancelled run the accessors unwind with an internal panic the
// experiment entry points (RunAllCtx, RunAllParallelCtx, Experiments)
// recover into an ordinary error, so a cancelled run renders nothing
// half-computed.
type Workbench struct {
	P      Params
	Layout *codemap.Layout

	ctx context.Context
	wb  *sweep.Workbench
}

// NewWorkbench prepares an empty workbench with serial trace generation.
func NewWorkbench(p Params) *Workbench {
	return NewWorkbenchCtx(context.Background(), p, 1)
}

// NewParallelWorkbench prepares an empty workbench whose trace generation
// may use up to `workers` goroutines. Artifact content is identical for
// every workers value (see workload.GenerateSetSharded).
func NewParallelWorkbench(p Params, workers int) *Workbench {
	return NewWorkbenchCtx(context.Background(), p, workers)
}

// NewWorkbenchCtx prepares a workbench whose artifact computations abort
// between work items once ctx is cancelled.
func NewWorkbenchCtx(ctx context.Context, p Params, workers int) *Workbench {
	arts := sweep.NewArtifacts(p.Seed, p.Scale, p.ProfileTraces, p.EvalTraces, workers)
	return NewWorkbenchOn(ctx, p, sweep.NewWorkbench(arts, p.Machine))
}

// NewWorkbenchOn wraps an existing session cache (sweep.Workbench) as an
// experiment workbench — the hook the facade's Engine uses to run
// experiments over the same artifacts its Schedule/Sweep/Bench calls
// already computed. The caller must pass a cache built over exactly p's
// seed, scale, trace windows, and machine.
func NewWorkbenchOn(ctx context.Context, p Params, wb *sweep.Workbench) *Workbench {
	return &Workbench{
		P:      p,
		Layout: wb.Artifacts().Layout(),
		ctx:    ctx,
		wb:     wb,
	}
}

// cancelPanic carries a context cancellation out of the value-oriented
// figure runners; the experiment entry points recover it into an error.
type cancelPanic struct{ err error }

// take unwraps an artifact result: cancellation panics (recovered by the
// entry points), any other error is a programming error and crashes —
// matching the engine's fail-fast philosophy.
func take[T any](w *Workbench, v T, err error) T {
	if err != nil {
		if w.ctx.Err() != nil {
			panic(cancelPanic{err})
		}
		panic(fmt.Sprintf("exp: %v", err))
	}
	return v
}

// recoverCancel converts a cancelPanic into its error; other panics
// propagate. Use in a defer: *errp is set when the run was cancelled.
func recoverCancel(errp *error) {
	switch r := recover().(type) {
	case nil:
	case cancelPanic:
		*errp = r.err
	default:
		panic(r)
	}
}

// ProfileSet returns the profiling trace set (the paper's "first 1000"
// traces): shards [0, NumShards(ProfileTraces)) of the workload's sharded
// trace space.
func (w *Workbench) ProfileSet(name string) *trace.Set {
	s, err := w.wb.ProfileSet(w.ctx, name)
	return take(w, s, err)
}

// EvalSet returns the evaluation trace set (the paper's "next 1000"): the
// shards immediately after the profiling window, so the two sets are
// disjoint by construction regardless of computation order.
func (w *Workbench) EvalSet(name string) *trace.Set {
	s, err := w.wb.EvalSet(w.ctx, name)
	return take(w, s, err)
}

// Profile returns the workload's Algorithm 1 output over the profiling set,
// with the storage manager's no-migrate zones applied (Section 3.1.3).
func (w *Workbench) Profile(name string) *core.Profile {
	p, err := w.wb.Profile(w.ctx, name)
	return take(w, p, err)
}

// Result replays the workload's evaluation set under a mechanism, caching
// the outcome (Figures 5, 6, 8b, and 9 share these runs). The replay goes
// through the sweep execution path (sweep.Replay): a figure's
// per-(workload, mechanism) point is the default-load sweep unit on the
// run's machine.
func (w *Workbench) Result(name string, mech sched.Mechanism) sim.Result {
	r, err := w.wb.Result(w.ctx, name, mech)
	return take(w, r, err)
}

// ratio is a/b guarding b=0.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// section prints an underlined header.
func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n%s\n", title)
	for range title {
		fmt.Fprint(out, "=")
	}
	fmt.Fprintln(out)
}
