// Package exp implements the paper's evaluation: one runner per table and
// figure (Table 1, Figures 1-9), plus the ablations called out in
// DESIGN.md. Every runner returns a structured result and renders the same
// rows/series the paper reports, normalized over Baseline where the paper
// normalizes.
//
// The evaluation runs either serially (RunAll) or on a bounded worker pool
// (RunAllParallel); both produce byte-identical reports. Shared artifacts
// live in a Workbench that is safe for concurrent use: every artifact is
// memoized with single-flight semantics, so concurrent experiments block on
// the first computation instead of duplicating it.
//
// Every replay routes through the sweep execution path (internal/sweep):
// a figure's per-(workload, mechanism) point is the default-load sweep
// unit, Figure 7 a Threads-axis grid, Figure 8a a Deep-machine grid — so
// the figure pipeline and cmd/addict-sweep cannot drift apart.
package exp

import (
	"fmt"
	"io"

	"addict/internal/codemap"
	"addict/internal/core"
	"addict/internal/pool"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/sweep"
	"addict/internal/trace"
)

// Params scopes an experiment run.
type Params struct {
	// Seed drives all workload randomness.
	Seed int64
	// Scale scales the database populations (1.0 = the laptop-scale
	// defaults in package workload).
	Scale float64
	// ProfileTraces is the number of traces Algorithm 1 profiles (paper:
	// the first 1000).
	ProfileTraces int
	// EvalTraces is the number of traces the scheduling experiments replay
	// (paper: the next 1000).
	EvalTraces int
	// StabilityTraces is the large trace count for Figure 4 (paper:
	// 10000 beyond the profiling set).
	StabilityTraces int
	// Machine is the simulated hardware.
	Machine sim.Config
}

// DefaultParams returns the paper-faithful setup (Section 4.1).
func DefaultParams() Params {
	return Params{
		Seed:            42,
		Scale:           1.0,
		ProfileTraces:   1000,
		EvalTraces:      1000,
		StabilityTraces: 10000,
		Machine:         sim.Shallow(),
	}
}

// QuickParams returns a reduced setup for tests and fast benchmark runs:
// the same structure at ~1/4 the trace counts and 1/2 the database scale.
func QuickParams() Params {
	return Params{
		Seed:            42,
		Scale:           0.5,
		ProfileTraces:   250,
		EvalTraces:      250,
		StabilityTraces: 1000,
		Machine:         sim.Shallow(),
	}
}

// Workloads lists the paper's three benchmarks in presentation order.
var Workloads = []string{"TPC-B", "TPC-C", "TPC-E"}

// Workbench caches per-workload artifacts (populated benchmark, profiling
// and evaluation trace sets, the migration-point profile, per-mechanism
// replay results) so the experiments sharing them do not regenerate. It is
// safe for concurrent use: each artifact is computed once (single-flight)
// no matter how many experiments request it at the same time, and every
// artifact's content is independent of the order, interleaving, or worker
// count of the requests. The trace-window and profiling recipe lives in
// sweep.Artifacts — the workbench is the figure pipeline's view of the
// same cache the sweep engine uses.
type Workbench struct {
	P      Params
	Layout *codemap.Layout

	arts    *sweep.Artifacts
	results pool.OnceMap[sim.Result]
}

// NewWorkbench prepares an empty workbench with serial trace generation.
func NewWorkbench(p Params) *Workbench {
	return NewParallelWorkbench(p, 1)
}

// NewParallelWorkbench prepares an empty workbench whose trace generation
// may use up to `workers` goroutines. Artifact content is identical for
// every workers value (see workload.GenerateSetSharded).
func NewParallelWorkbench(p Params, workers int) *Workbench {
	arts := sweep.NewArtifacts(p.Seed, p.Scale, p.ProfileTraces, p.EvalTraces, workers)
	return &Workbench{
		P:      p,
		Layout: arts.Layout(),
		arts:   arts,
	}
}

// ProfileSet returns the profiling trace set (the paper's "first 1000"
// traces): shards [0, NumShards(ProfileTraces)) of the workload's sharded
// trace space.
func (w *Workbench) ProfileSet(name string) *trace.Set { return w.arts.ProfileSet(name) }

// EvalSet returns the evaluation trace set (the paper's "next 1000"): the
// shards immediately after the profiling window, so the two sets are
// disjoint by construction regardless of computation order.
func (w *Workbench) EvalSet(name string) *trace.Set { return w.arts.EvalSet(name) }

// Profile returns the workload's Algorithm 1 output over the profiling set,
// with the storage manager's no-migrate zones applied (Section 3.1.3).
func (w *Workbench) Profile(name string) *core.Profile {
	return w.arts.Profile(name, w.P.Machine)
}

// Result replays the workload's evaluation set under a mechanism, caching
// the outcome (Figures 5, 6, 8b, and 9 share these runs). The replay goes
// through the sweep execution path (sweep.Replay): a figure's
// per-(workload, mechanism) point is the default-load sweep unit on the
// run's machine.
func (w *Workbench) Result(name string, mech sched.Mechanism) sim.Result {
	return w.results.Do(name+"\x00"+string(mech), func() sim.Result {
		u := sweep.NewUnit(name, mech, w.P.Machine, 0, 0)
		r, err := sweep.Replay(u, w.EvalSet(name), w.Profile(name))
		if err != nil {
			panic(fmt.Sprintf("exp: %s on %s: %v", mech, name, err))
		}
		return r
	})
}

// ratio is a/b guarding b=0.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// section prints an underlined header.
func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n%s\n", title)
	for range title {
		fmt.Fprint(out, "=")
	}
	fmt.Fprintln(out)
}
