// Package exp implements the paper's evaluation: one runner per table and
// figure (Table 1, Figures 1-9), plus the ablations called out in
// DESIGN.md. Every runner returns a structured result and renders the same
// rows/series the paper reports, normalized over Baseline where the paper
// normalizes.
package exp

import (
	"fmt"
	"io"

	"addict/internal/codemap"
	"addict/internal/core"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/trace"
	"addict/internal/workload"
)

// Params scopes an experiment run.
type Params struct {
	// Seed drives all workload randomness.
	Seed int64
	// Scale scales the database populations (1.0 = the laptop-scale
	// defaults in package workload).
	Scale float64
	// ProfileTraces is the number of traces Algorithm 1 profiles (paper:
	// the first 1000).
	ProfileTraces int
	// EvalTraces is the number of traces the scheduling experiments replay
	// (paper: the next 1000).
	EvalTraces int
	// StabilityTraces is the large trace count for Figure 4 (paper:
	// 10000 beyond the profiling set).
	StabilityTraces int
	// Machine is the simulated hardware.
	Machine sim.Config
}

// DefaultParams returns the paper-faithful setup (Section 4.1).
func DefaultParams() Params {
	return Params{
		Seed:            42,
		Scale:           1.0,
		ProfileTraces:   1000,
		EvalTraces:      1000,
		StabilityTraces: 10000,
		Machine:         sim.Shallow(),
	}
}

// QuickParams returns a reduced setup for tests and fast benchmark runs:
// the same structure at ~1/4 the trace counts and 1/2 the database scale.
func QuickParams() Params {
	return Params{
		Seed:            42,
		Scale:           0.5,
		ProfileTraces:   250,
		EvalTraces:      250,
		StabilityTraces: 1000,
		Machine:         sim.Shallow(),
	}
}

// Workloads lists the paper's three benchmarks in presentation order.
var Workloads = []string{"TPC-B", "TPC-C", "TPC-E"}

// Workbench caches per-workload artifacts (populated benchmark, profiling
// and evaluation trace sets, the migration-point profile) so the
// experiments sharing them do not regenerate.
type Workbench struct {
	P      Params
	Layout *codemap.Layout

	benches  map[string]*workload.Benchmark
	profSets map[string]*trace.Set
	evalSets map[string]*trace.Set
	profiles map[string]*core.Profile
	results  map[string]map[sched.Mechanism]sim.Result
}

// NewWorkbench prepares an empty workbench.
func NewWorkbench(p Params) *Workbench {
	return &Workbench{
		P:        p,
		Layout:   codemap.NewLayout(),
		benches:  make(map[string]*workload.Benchmark),
		profSets: make(map[string]*trace.Set),
		evalSets: make(map[string]*trace.Set),
		profiles: make(map[string]*core.Profile),
		results:  make(map[string]map[sched.Mechanism]sim.Result),
	}
}

// Benchmark returns the populated benchmark for a workload name.
func (w *Workbench) Benchmark(name string) *workload.Benchmark {
	if b, ok := w.benches[name]; ok {
		return b
	}
	build, err := workload.Builder(name)
	if err != nil {
		panic(err)
	}
	b := build(w.P.Seed, w.P.Scale)
	w.benches[name] = b
	return b
}

// ProfileSet returns the profiling trace set (the "first 1000" traces).
func (w *Workbench) ProfileSet(name string) *trace.Set {
	if s, ok := w.profSets[name]; ok {
		return s
	}
	s := workload.GenerateSet(w.Benchmark(name), w.P.ProfileTraces)
	w.profSets[name] = s
	return s
}

// EvalSet returns the evaluation trace set (the "next 1000" traces; the
// generator continues from the profiling set's state).
func (w *Workbench) EvalSet(name string) *trace.Set {
	if s, ok := w.evalSets[name]; ok {
		return s
	}
	w.ProfileSet(name) // ensure ordering: evaluation traces follow profiling
	s := workload.GenerateSet(w.Benchmark(name), w.P.EvalTraces)
	w.evalSets[name] = s
	return s
}

// Profile returns the workload's Algorithm 1 output over the profiling set,
// with the storage manager's no-migrate zones applied (Section 3.1.3).
func (w *Workbench) Profile(name string) *core.Profile {
	if p, ok := w.profiles[name]; ok {
		return p
	}
	cfg := core.ProfileConfig{L1I: w.P.Machine.L1I, NoMigrate: w.Layout.NoMigrate}
	p := core.FindMigrationPoints(w.ProfileSet(name), cfg)
	w.profiles[name] = p
	return p
}

// SchedConfig returns the scheduling configuration for a workload.
func (w *Workbench) SchedConfig(name string) sched.Config {
	cfg := sched.DefaultConfig(w.P.Machine)
	cfg.Profile = w.Profile(name)
	return cfg
}

// Result replays the workload's evaluation set under a mechanism, caching
// the outcome (Figures 5, 6, 8b, and 9 share these runs).
func (w *Workbench) Result(name string, mech sched.Mechanism) sim.Result {
	if m, ok := w.results[name]; ok {
		if r, ok := m[mech]; ok {
			return r
		}
	} else {
		w.results[name] = make(map[sched.Mechanism]sim.Result)
	}
	r, err := sched.Run(mech, w.EvalSet(name), w.SchedConfig(name))
	if err != nil {
		panic(fmt.Sprintf("exp: %s on %s: %v", mech, name, err))
	}
	w.results[name][mech] = r
	return r
}

// ratio is a/b guarding b=0.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// section prints an underlined header.
func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n%s\n", title)
	for range title {
		fmt.Fprint(out, "=")
	}
	fmt.Fprintln(out)
}
