package exp

import (
	"bytes"
	"strings"
	"testing"

	"addict/internal/sched"
)

// TestSynthCharRankingDiffersFromTPCB is the acceptance check of the
// synthetic-workload subsystem: at least one shipped preset must induce a
// different mechanism ranking than TPC-B — the scenario axes genuinely
// move the outcome, they don't just re-measure the TPC regime.
func TestSynthCharRankingDiffersFromTPCB(t *testing.T) {
	p := tinyParams()
	r := SynthChar(NewParallelWorkbench(p, 4))
	if len(r.Rows) < 5 {
		t.Fatalf("characterized %d scenarios, want TPC-B + >= 4 presets", len(r.Rows))
	}
	if r.Rows[0].Workload != "TPC-B" {
		t.Fatalf("reference row is %q, want TPC-B", r.Rows[0].Workload)
	}
	for _, row := range r.Rows {
		if len(row.Ranking) != len(sched.AllMechanisms) {
			t.Fatalf("%s: ranking has %d mechanisms, want %d", row.Workload, len(row.Ranking), len(sched.AllMechanisms))
		}
	}
	if !r.RankingDiffersFromFirst() {
		for _, row := range r.Rows {
			t.Logf("%s: %s", row.Workload, row.RankingString())
		}
		t.Error("every preset ranks the mechanisms exactly like TPC-B")
	}
	// The new families must take part in the movement: HTMSPEC or CHAIN
	// must occupy a different rank position on some preset than on TPC-B
	// (the extensions characterize differently across the scenario space,
	// they don't just pad every ranking in a fixed slot).
	pos := func(row SynthCharRow, m sched.Mechanism) int {
		for i, r := range row.Ranking {
			if r == m {
				return i
			}
		}
		return -1
	}
	moved := false
	for _, row := range r.Rows[1:] {
		if pos(row, sched.HTMSPEC) != pos(r.Rows[0], sched.HTMSPEC) ||
			pos(row, sched.CHAIN) != pos(r.Rows[0], sched.CHAIN) {
			moved = true
			break
		}
	}
	if !moved {
		for _, row := range r.Rows {
			t.Logf("%s: %s", row.Workload, row.RankingString())
		}
		t.Error("HTMSPEC and CHAIN hold the same rank position on every preset as on TPC-B")
	}
}

// TestSynthCharRender sanity-checks the rendered sections.
func TestSynthCharRender(t *testing.T) {
	r := SynthCharResult{Rows: []SynthCharRow{
		{Workload: "TPC-B", Ranking: []sched.Mechanism{sched.ADDICT, sched.SLICC, sched.HTMSPEC, sched.Baseline, sched.CHAIN, sched.STREX}},
	}}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Synthetic workloads: mechanism ranking") {
		t.Errorf("missing ranking section:\n%s", out)
	}
	if !strings.Contains(out, "ADDICT < SLICC < HTMSPEC < Baseline < CHAIN < STREX") {
		t.Errorf("missing ranking string:\n%s", out)
	}
}
