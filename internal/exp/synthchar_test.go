package exp

import (
	"bytes"
	"strings"
	"testing"

	"addict/internal/sched"
)

// TestSynthCharRankingDiffersFromTPCB is the acceptance check of the
// synthetic-workload subsystem: at least one shipped preset must induce a
// different mechanism ranking than TPC-B — the scenario axes genuinely
// move the outcome, they don't just re-measure the TPC regime.
func TestSynthCharRankingDiffersFromTPCB(t *testing.T) {
	p := tinyParams()
	r := SynthChar(NewParallelWorkbench(p, 4))
	if len(r.Rows) < 5 {
		t.Fatalf("characterized %d scenarios, want TPC-B + >= 4 presets", len(r.Rows))
	}
	if r.Rows[0].Workload != "TPC-B" {
		t.Fatalf("reference row is %q, want TPC-B", r.Rows[0].Workload)
	}
	for _, row := range r.Rows {
		if len(row.Ranking) != 4 {
			t.Fatalf("%s: ranking has %d mechanisms", row.Workload, len(row.Ranking))
		}
	}
	if !r.RankingDiffersFromFirst() {
		for _, row := range r.Rows {
			t.Logf("%s: %s", row.Workload, row.RankingString())
		}
		t.Error("every preset ranks the mechanisms exactly like TPC-B")
	}
}

// TestSynthCharRender sanity-checks the rendered sections.
func TestSynthCharRender(t *testing.T) {
	r := SynthCharResult{Rows: []SynthCharRow{
		{Workload: "TPC-B", Ranking: []sched.Mechanism{sched.ADDICT, sched.SLICC, sched.STREX, sched.Baseline}},
	}}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Synthetic workloads: mechanism ranking") {
		t.Errorf("missing ranking section:\n%s", out)
	}
	if !strings.Contains(out, "ADDICT < SLICC < STREX < Baseline") {
		t.Errorf("missing ranking string:\n%s", out)
	}
}
