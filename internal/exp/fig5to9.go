package exp

import (
	"io"

	"addict/internal/power"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/stats"
	"addict/internal/sweep"
)

// MechRow is one mechanism's metrics for one workload, normalized over
// Baseline where the paper normalizes.
type MechRow struct {
	Mechanism sched.Mechanism
	// Raw MPKI values.
	L1I, L1D, LLC float64
	// Normalized-over-Baseline values (Baseline = 1.0).
	L1IN, L1DN, LLCN float64
	// CyclesN is makespan / Baseline makespan (Figure 6 left).
	CyclesN float64
	// LatencyN is average latency / Baseline (Figure 6 right).
	LatencyN float64
	// SwitchesPerKI is migrations+switches per 1000 instructions (Fig 9).
	SwitchesPerKI float64
	// OverheadShare is migration/switch cycles over busy cycles (Fig 9).
	OverheadShare float64
	// PowerN is average per-core power / Baseline (Figure 8b).
	PowerN float64
}

// Comparison is the shared evaluation of all four mechanisms on one
// workload — the data behind Figures 5, 6, 8b, and 9.
type Comparison struct {
	Workload string
	Rows     []MechRow
}

// Compare runs (or fetches cached) replays of the paper's four mechanisms
// on a workload — the figure experiments' evaluation axis.
func Compare(w *Workbench, workloadName string) Comparison {
	return CompareMechs(w, workloadName, sched.Mechanisms)
}

// CompareMechs is Compare over an explicit mechanism set (the synthetic
// characterization spans all six families; the figures keep the paper's
// four). Normalization stays over Baseline regardless of the set.
func CompareMechs(w *Workbench, workloadName string, mechs []sched.Mechanism) Comparison {
	cmp := Comparison{Workload: workloadName}
	base := w.Result(workloadName, sched.Baseline)
	bm := base.Machine
	basePower := power.Analyze(base, power.DefaultWeights())
	for _, mech := range mechs {
		res := w.Result(workloadName, mech)
		m := res.Machine
		pw := power.Analyze(res, power.DefaultWeights())
		cmp.Rows = append(cmp.Rows, MechRow{
			Mechanism:     mech,
			L1I:           m.MPKI(m.L1IMisses),
			L1D:           m.MPKI(m.L1DMisses),
			LLC:           m.MPKI(m.SharedMisses),
			L1IN:          ratio(m.MPKI(m.L1IMisses), bm.MPKI(bm.L1IMisses)),
			L1DN:          ratio(m.MPKI(m.L1DMisses), bm.MPKI(bm.L1DMisses)),
			LLCN:          ratio(m.MPKI(m.SharedMisses), bm.MPKI(bm.SharedMisses)),
			CyclesN:       ratio(float64(res.Makespan), float64(base.Makespan)),
			LatencyN:      ratio(res.AvgLatency(), base.AvgLatency()),
			SwitchesPerKI: res.SwitchesPerKInstr(),
			OverheadShare: res.OverheadShare(),
			PowerN:        ratio(pw.AvgCorePower, basePower.AvgCorePower),
		})
	}
	return cmp
}

// Row returns the row for a mechanism.
func (c Comparison) Row(mech sched.Mechanism) MechRow {
	for _, r := range c.Rows {
		if r.Mechanism == mech {
			return r
		}
	}
	return MechRow{}
}

// Fig5Render prints the three MPKI plots of Figure 5.
func Fig5Render(out io.Writer, comparisons []Comparison) {
	section(out, "Figure 5: Misses per k-instruction, normalized over Baseline")
	t := &stats.Table{Header: []string{"workload", "mechanism", "L1-I", "L1-I norm", "L1-D", "L1-D norm", "LLC", "LLC norm"}}
	for _, c := range comparisons {
		for _, r := range c.Rows {
			t.AddRow(c.Workload, string(r.Mechanism),
				stats.F(r.L1I, 2), stats.F(r.L1IN, 3),
				stats.F(r.L1D, 2), stats.F(r.L1DN, 3),
				stats.F(r.LLC, 2), stats.F(r.LLCN, 3))
		}
	}
	t.Render(out)
}

// Fig6Render prints Figure 6: total execution cycles and average latency.
func Fig6Render(out io.Writer, comparisons []Comparison) {
	section(out, "Figure 6: Cycles to complete traces and average transaction latency (normalized)")
	t := &stats.Table{Header: []string{"workload", "mechanism", "cycles norm", "latency norm"}}
	for _, c := range comparisons {
		for _, r := range c.Rows {
			t.AddRow(c.Workload, string(r.Mechanism), stats.F(r.CyclesN, 3), stats.F(r.LatencyN, 3))
		}
	}
	t.Render(out)
}

// Fig8bRender prints the power plot.
func Fig8bRender(out io.Writer, comparisons []Comparison) {
	section(out, "Figure 8b: Average per-core power, normalized over Baseline")
	t := &stats.Table{Header: []string{"workload", "mechanism", "power norm"}}
	for _, c := range comparisons {
		for _, r := range c.Rows {
			t.AddRow(c.Workload, string(r.Mechanism), stats.F(r.PowerN, 3))
		}
	}
	t.Render(out)
}

// Fig9Render prints the overhead plots.
func Fig9Render(out io.Writer, comparisons []Comparison) {
	section(out, "Figure 9: Context switches/migrations per k-instructions and overhead share")
	t := &stats.Table{Header: []string{"workload", "mechanism", "switches/ki", "overhead share"}}
	for _, c := range comparisons {
		for _, r := range c.Rows {
			t.AddRow(c.Workload, string(r.Mechanism), stats.F(r.SwitchesPerKI, 3), stats.Pct(r.OverheadShare))
		}
	}
	t.Render(out)
}

// Fig8a runs ADDICT vs Baseline on the deep hierarchy (Section 4.6: an
// additional 256KB per-core L2; the shared L2 becomes an L3).
type Fig8aResult struct {
	Workload string
	// CyclesN is ADDICT's makespan over Baseline's on the deep machine.
	CyclesN float64
	// L1IN is the corresponding L1-I MPKI ratio.
	L1IN float64
	// ShallowCyclesN is the shallow-machine ratio for comparison (the
	// paper: deep gains are smaller because the private L2 absorbs most
	// L1-I misses).
	ShallowCyclesN float64
}

// Fig8a evaluates one workload on the deep hierarchy — a two-unit sweep
// preset (Baseline and ADDICT on the Deep machine) replayed through the
// sweep execution path.
func Fig8a(w *Workbench, workloadName string) Fig8aResult {
	set := w.EvalSet(workloadName)
	prof := w.Profile(workloadName)
	base, err := sweep.Replay(sweep.NewUnit(workloadName, sched.Baseline, sim.Deep(), 0, 0), set, prof)
	if err != nil {
		panic(err)
	}
	add, err := sweep.Replay(sweep.NewUnit(workloadName, sched.ADDICT, sim.Deep(), 0, 0), set, prof)
	if err != nil {
		panic(err)
	}
	shallow := Compare(w, workloadName).Row(sched.ADDICT)
	return Fig8aResult{
		Workload:       workloadName,
		CyclesN:        ratio(float64(add.Makespan), float64(base.Makespan)),
		L1IN:           ratio(add.Machine.MPKI(add.Machine.L1IMisses), base.Machine.MPKI(base.Machine.L1IMisses)),
		ShallowCyclesN: shallow.CyclesN,
	}
}

// Fig8aRender prints the deep-hierarchy comparison.
func Fig8aRender(out io.Writer, results []Fig8aResult) {
	section(out, "Figure 8a: ADDICT on a deeper memory hierarchy (cycles normalized over Baseline)")
	t := &stats.Table{Header: []string{"workload", "deep cycles norm", "deep L1-I norm", "shallow cycles norm"}}
	for _, r := range results {
		t.AddRow(r.Workload, stats.F(r.CyclesN, 3), stats.F(r.L1IN, 3), stats.F(r.ShallowCyclesN, 3))
	}
	t.Render(out)
}
