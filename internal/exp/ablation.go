package exp

import (
	"io"

	"addict/internal/core"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/stats"
)

// Ablations probe the design choices DESIGN.md calls out:
//
//   - no-migrate zones (Section 3.1.3): profile WITHOUT the critical-section
//     filter, allowing migration points inside lock/latch/log code;
//   - load balancing (Section 3.2.3): disable surplus replication so every
//     migration point keeps exactly one core;
//   - prev-point ordering (Algorithm 2 line 25): covered in unit tests (the
//     tracker refuses out-of-order migration), not here, since disabling it
//     changes correctness rather than performance;
//   - LLC pressure: shrink the shared cache to emulate the paper's
//     dataset:cache ratio (DESIGN.md documents why a laptop-scale dataset
//     cannot pressure a 16MB L2 organically).
type AblationResult struct {
	Workload string
	Rows     []AblationRow
}

// AblationRow compares one variant against the default ADDICT run.
type AblationRow struct {
	Name    string
	CyclesN float64 // over Baseline
	L1IN    float64 // over Baseline
	LLCN    float64 // over Baseline
}

// Ablate runs the variants on one workload.
func Ablate(w *Workbench, workloadName string) AblationResult {
	res := AblationResult{Workload: workloadName}
	set := w.EvalSet(workloadName)
	base := w.Result(workloadName, sched.Baseline)
	bm := base.Machine

	norm := func(name string, r sim.Result) {
		res.Rows = append(res.Rows, AblationRow{
			Name:    name,
			CyclesN: ratio(float64(r.Makespan), float64(base.Makespan)),
			L1IN:    ratio(r.Machine.MPKI(r.Machine.L1IMisses), bm.MPKI(bm.L1IMisses)),
			LLCN:    ratio(r.Machine.MPKI(r.Machine.SharedMisses), bm.MPKI(bm.SharedMisses)),
		})
	}

	// Reference: default ADDICT.
	norm("ADDICT (default)", w.Result(workloadName, sched.ADDICT))

	// Variant 1: no no-migrate zones — points may land inside short
	// critical sections.
	pcfg := core.ProfileConfig{L1I: w.P.Machine.L1I} // no NoMigrate filter
	profNoZones := core.FindMigrationPoints(w.ProfileSet(workloadName), pcfg)
	cfg := sched.DefaultConfig(w.P.Machine)
	cfg.Profile = profNoZones
	if r, err := sched.Run(sched.ADDICT, set, cfg); err == nil {
		norm("no no-migrate zones", r)
	}

	// Variant 2: single core per migration point (no surplus replication):
	// emulated by assigning on a machine of exactly the needed size — the
	// scheduler still runs on the full machine, but no point has replicas.
	profNoLB := w.Profile(workloadName)
	cfg2 := sched.DefaultConfig(w.P.Machine)
	cfg2.Profile = profNoLB
	cfg2.DisableReplication = true
	if r, err := sched.Run(sched.ADDICT, set, cfg2); err == nil {
		norm("no surplus replication", r)
	}

	// Variant 3: LLC pressure — shared cache scaled to 1/16 (1MB total),
	// emulating a dataset:LLC ratio closer to the paper's 100GB:16MB.
	small := w.P.Machine
	small.Shared.SizeBytes = small.Shared.SizeBytes / 16
	cfg3 := sched.DefaultConfig(small)
	cfg3.Profile = w.Profile(workloadName)
	baseSmall, err1 := sched.Run(sched.Baseline, set, cfg3)
	addSmall, err2 := sched.Run(sched.ADDICT, set, cfg3)
	if err1 == nil && err2 == nil {
		res.Rows = append(res.Rows, AblationRow{
			Name:    "LLC-pressure machine (1/16 shared cache)",
			CyclesN: ratio(float64(addSmall.Makespan), float64(baseSmall.Makespan)),
			L1IN:    ratio(addSmall.Machine.MPKI(addSmall.Machine.L1IMisses), baseSmall.Machine.MPKI(baseSmall.Machine.L1IMisses)),
			LLCN:    ratio(addSmall.Machine.MPKI(addSmall.Machine.SharedMisses), baseSmall.Machine.MPKI(baseSmall.Machine.SharedMisses)),
		})
	}
	return res
}

// Render prints the ablation table.
func (r AblationResult) Render(out io.Writer) {
	section(out, "Ablations — "+r.Workload+" (normalized over the matching Baseline)")
	t := &stats.Table{Header: []string{"variant", "cycles norm", "L1-I norm", "LLC norm"}}
	for _, row := range r.Rows {
		t.AddRow(row.Name, stats.F(row.CyclesN, 3), stats.F(row.L1IN, 3), stats.F(row.LLCN, 3))
	}
	t.Render(out)
}
