package exp

import (
	"context"
	"strings"
	"testing"

	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/trace"
)

// tinyParams keeps experiment tests fast while exercising full paths.
func tinyParams() Params {
	return Params{
		Seed:            7,
		Scale:           0.1,
		ProfileTraces:   300, // enough instances for the rare paths
		EvalTraces:      150,
		StabilityTraces: 250,
		Machine:         sim.Shallow(),
	}
}

func TestTable1Renders(t *testing.T) {
	var sb strings.Builder
	Table1(&sb, sim.Shallow())
	for _, want := range []string{"16 cores", "32KB", "16MB NUCA", "torus", "42ns"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	sb.Reset()
	Table1(&sb, sim.Deep())
	if !strings.Contains(sb.String(), "deep hierarchy") {
		t.Error("deep Table 1 missing private L2 row")
	}
}

func TestFig1ShapeHolds(t *testing.T) {
	w := NewWorkbench(tinyParams())
	r := Fig1(w)
	// Probe/scan/update/insert footprints must exist and be cache-scale.
	for _, op := range []trace.OpType{trace.OpIndexProbe, trace.OpIndexScan, trace.OpUpdateTuple, trace.OpInsertTuple} {
		if r.OpFootprint[op] < 100 {
			t.Errorf("%v footprint = %d blocks, implausibly small", op, r.OpFootprint[op])
		}
	}
	for _, e := range r.Edges {
		if e.Share <= 0 || e.Share >= 1 {
			t.Errorf("edge %s->%s share %.3f out of (0,1)", e.Parent, e.Child, e.Share)
		}
		// Within 15 percentage points of the paper's label; dashed-path
		// edges get extra slack at this tiny scale (splits and page
		// allocations are rare events — EXPERIMENTS.md records full-scale
		// numbers).
		tol := 0.15
		if e.Dashed || e.Child == "create index entry" || e.Child == "create record" {
			tol = 0.30
		}
		if diff := e.Share - e.Paper; diff > tol || diff < -tol {
			t.Errorf("edge %s->%s = %.2f, paper %.2f (off by more than %.2f)", e.Parent, e.Child, e.Share, e.Paper, tol)
		}
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "find key -> lookup") {
		t.Error("render missing probe edge")
	}
}

func TestFig2OverlapShape(t *testing.T) {
	w := NewWorkbench(tinyParams())
	r := Fig2(w, "TPC-B")
	// Section 2.2: instructions overlap heavily, data barely.
	if r.MixInstr.CommonShare() < 0.5 {
		t.Errorf("TPC-B mix instruction >=90%% share = %.2f, want > 0.5", r.MixInstr.CommonShare())
	}
	if r.MixData.CommonShare() > 0.10 {
		t.Errorf("TPC-B mix data >=90%% share = %.2f, want <= 0.10 (paper: at most 6%%)", r.MixData.CommonShare())
	}
	if len(r.PerTxn) != 1 || r.PerTxn[0].Name != "AccountUpdate" {
		t.Fatalf("PerTxn = %+v", r.PerTxn)
	}
	// Probe and update ops overlap >90%; insert's allocate-page path keeps
	// it lower (Section 2.2.1).
	for _, op := range r.PerTxn[0].Ops {
		switch op.Op {
		case trace.OpIndexProbe, trace.OpUpdateTuple:
			if op.Instr.CommonShare() < 0.85 {
				t.Errorf("%v common share %.2f, want >= 0.85", op.Op, op.Instr.CommonShare())
			}
		case trace.OpInsertTuple:
			if op.Instr.RareShare() == 0 {
				t.Error("insert has no rare blocks (allocate-page path missing)")
			}
		}
	}
}

func TestFig2TPCEMixLessCommonThanTxn(t *testing.T) {
	w := NewWorkbench(tinyParams())
	r := Fig2(w, "TPC-E")
	// "the instruction overlap is less in the overall TPC-E mix ...
	// However, among same-type transactions instruction overlap is still
	// significant" (Section 2.2.1).
	if len(r.PerTxn) == 0 {
		t.Fatal("no transaction types")
	}
	top := r.PerTxn[0]
	if top.Instr.CommonShare() <= r.MixInstr.CommonShare() {
		t.Errorf("same-type common share %.2f not above mix %.2f",
			top.Instr.CommonShare(), r.MixInstr.CommonShare())
	}
}

func TestFig3CommonBlocksHotter(t *testing.T) {
	w := NewWorkbench(tinyParams())
	r := Fig3(w)
	bands := r.TxnInstr
	always := bands[len(bands)-1]
	if always.Blocks == 0 {
		t.Fatal("no always-common instruction blocks")
	}
	// Figure 3's shape: blocks common to all instances are reused more
	// within an instance than rare blocks.
	for _, b := range bands[:2] {
		if b.Blocks > 0 && b.AvgReuse > always.AvgReuse {
			t.Errorf("rare band %v hotter (%.2f) than always band (%.2f)",
				b.Bucket, b.AvgReuse, always.AvgReuse)
		}
	}
}

func TestFig4StabilityHigh(t *testing.T) {
	w := NewWorkbench(tinyParams())
	r := Fig4(w, "TPC-B")
	if len(r.At1k) == 0 || len(r.At10k) == 0 {
		t.Fatal("no stability rows")
	}
	for _, row := range r.At10k {
		if row.Op == trace.OpCommit {
			continue
		}
		if row.MatchRate() < 0.5 {
			t.Errorf("%s/%v stability %.2f at large trace count, want >= 0.5",
				row.TxnName, row.Op, row.MatchRate())
		}
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "AccountUpdate") {
		t.Error("render missing transaction name")
	}
}

func TestCompareShape(t *testing.T) {
	w := NewWorkbench(tinyParams())
	c := Compare(w, "TPC-B")
	if len(c.Rows) != 4 {
		t.Fatalf("rows = %d", len(c.Rows))
	}
	base := c.Row(sched.Baseline)
	add := c.Row(sched.ADDICT)
	slicc := c.Row(sched.SLICC)
	strex := c.Row(sched.STREX)
	if base.L1IN != 1.0 || base.CyclesN != 1.0 {
		t.Errorf("baseline not normalized to 1: %+v", base)
	}
	// The paper's ordering: ADDICT reduces L1-I the most; STREX the least.
	if !(add.L1IN < slicc.L1IN && slicc.L1IN < strex.L1IN && strex.L1IN < 1.0) {
		t.Errorf("L1-I ordering broken: ADDICT %.2f, SLICC %.2f, STREX %.2f",
			add.L1IN, slicc.L1IN, strex.L1IN)
	}
	// ADDICT and SLICC increase L1-D (computation spreading).
	if add.L1DN <= 1.0 || slicc.L1DN <= 1.0 {
		t.Errorf("spreading did not increase L1-D: ADDICT %.2f SLICC %.2f", add.L1DN, slicc.L1DN)
	}
	// ADDICT cuts total execution time.
	if add.CyclesN >= 1.0 {
		t.Errorf("ADDICT cycles %.2f, want < 1", add.CyclesN)
	}
	// STREX's batching inflates latency far above the others (Figure 6).
	if strex.LatencyN < 2.0 || strex.LatencyN < add.LatencyN {
		t.Errorf("STREX latency %.2f, ADDICT %.2f — paper: STREX 7-8x worst", strex.LatencyN, add.LatencyN)
	}
	// Fig 9 ordering: ADDICT migrates the least among the three.
	if !(add.SwitchesPerKI < slicc.SwitchesPerKI && add.SwitchesPerKI < strex.SwitchesPerKI) {
		t.Errorf("switch ordering broken: %v %v %v", add.SwitchesPerKI, slicc.SwitchesPerKI, strex.SwitchesPerKI)
	}
	// Overhead stays single-digit (Figure 9 right).
	for _, r := range c.Rows {
		if r.OverheadShare > 0.10 {
			t.Errorf("%s overhead %.1f%% exceeds 10%%", r.Mechanism, r.OverheadShare*100)
		}
	}
	// ADDICT draws somewhat more power (Figure 8b: ~1.1x).
	if add.PowerN <= 1.0 || add.PowerN > 1.6 {
		t.Errorf("ADDICT power %.2f, want (1.0, 1.6]", add.PowerN)
	}
}

func TestFig7LargerBatchesHelp(t *testing.T) {
	w := NewWorkbench(tinyParams())
	r := Fig7(w, "TPC-B")
	if len(r.Points) != len(Fig7BatchSizes) {
		t.Fatalf("points = %d", len(r.Points))
	}
	first := r.Points[0]              // batch 2: lightly loaded
	mid := r.Points[3]                // batch 16
	last := r.Points[len(r.Points)-1] // batch 32
	if mid.CyclesN >= first.CyclesN || last.CyclesN >= first.CyclesN {
		t.Errorf("cycles did not improve with load: batch2=%.3f batch16=%.3f batch32=%.3f (Section 4.5)",
			first.CyclesN, mid.CyclesN, last.CyclesN)
	}
	// ADDICT must beat the full-load baseline once fully loaded.
	if mid.CyclesN >= 1.0 {
		t.Errorf("batch 16 cycles %.3f, want < 1", mid.CyclesN)
	}
}

func TestFig8aDeepHierarchySmallerWin(t *testing.T) {
	w := NewWorkbench(tinyParams())
	r := Fig8a(w, "TPC-B")
	// Section 4.6: gains shrink on the deep hierarchy (the private 256KB
	// L2 absorbs most of the L1-I miss penalty; our whole code layout fits
	// it, so at tiny scale the win can vanish entirely — it must not turn
	// into a clear loss).
	if r.CyclesN >= 1.1 {
		t.Errorf("deep-hierarchy ADDICT cycles %.3f, want < 1.1", r.CyclesN)
	}
	if r.CyclesN < r.ShallowCyclesN-0.02 {
		t.Errorf("deep win (%.3f) larger than shallow win (%.3f)", r.CyclesN, r.ShallowCyclesN)
	}
}

func TestAblations(t *testing.T) {
	w := NewWorkbench(tinyParams())
	r := Ablate(w, "TPC-B")
	if len(r.Rows) < 3 {
		t.Fatalf("ablation rows = %d", len(r.Rows))
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "no-migrate") {
		t.Error("ablation render incomplete")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, id := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig9", "ablations"} {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

// TestExperimentRegistryRunners executes the cheap registry closures end to
// end at micro scale (the expensive ones are covered by their dedicated
// tests above; this covers the registry plumbing and render paths).
func TestExperimentRegistryRunners(t *testing.T) {
	p := Params{
		Seed:            11,
		Scale:           0.03,
		ProfileTraces:   40,
		EvalTraces:      40,
		StabilityTraces: 60,
		Machine:         sim.Shallow(),
	}
	for _, id := range []string{"table1", "fig1", "fig3", "fig4"} {
		run, ok := Experiments[id]
		if !ok {
			t.Fatalf("missing %q", id)
		}
		var sb strings.Builder
		if err := run(context.Background(), &sb, p, 2); err != nil {
			t.Fatalf("experiment %q: %v", id, err)
		}
		if sb.Len() == 0 {
			t.Errorf("experiment %q produced no output", id)
		}
	}
}

// TestWorkbenchCaching: repeated access must reuse artifacts, and eval
// traces must differ from profiling traces (the paper's disjoint windows).
func TestWorkbenchCaching(t *testing.T) {
	w := NewWorkbench(Params{Seed: 3, Scale: 0.03, ProfileTraces: 20, EvalTraces: 20, StabilityTraces: 30, Machine: sim.Shallow()})
	p1 := w.ProfileSet("TPC-B")
	p2 := w.ProfileSet("TPC-B")
	if p1 != p2 {
		t.Error("profile set not cached")
	}
	e := w.EvalSet("TPC-B")
	if e == p1 {
		t.Error("eval set aliases profiling set")
	}
	// Disjoint windows: the generator continued, so traces differ.
	same := true
	for i := range e.Traces {
		if len(e.Traces[i].Events) != len(p1.Traces[i].Events) {
			same = false
			break
		}
	}
	if same {
		t.Error("evaluation traces identical in shape to profiling traces (windows overlap?)")
	}
	if w.Profile("TPC-B") != w.Profile("TPC-B") {
		t.Error("profile not cached")
	}
}
