//go:build race

package exp

// raceEnabled scales the heaviest determinism tests down when the race
// detector (5-10x slowdown) is on; the full QuickParams() comparison runs
// in the plain `go test ./...` tier.
const raceEnabled = true
