package exp

import (
	"io"

	"addict/internal/stats"
	"addict/internal/trace"
)

// Fig3 measures the average per-address reuse within one instance, grouped
// by cross-instance commonality — Figure 3's "the frequently reused
// addresses across transaction and operation instances are also frequently
// reused within each instance", shown for TPC-B's AccountUpdate and its
// insert operation.
type Fig3Result struct {
	Workload string
	TxnName  string
	// TxnInstr/TxnData are the per-band reuse profiles over whole
	// transactions.
	TxnInstr, TxnData []stats.ReuseBand
	// InsertInstr/InsertData cover the insert-tuple operation instances.
	InsertInstr, InsertData []stats.ReuseBand
}

// Fig3 analyzes the workbench's TPC-B profiling traces.
func Fig3(w *Workbench) Fig3Result {
	set := w.ProfileSet("TPC-B")
	res := Fig3Result{Workload: "TPC-B", TxnName: "AccountUpdate"}

	txnI, txnD := stats.NewFootprintCounter(), stats.NewFootprintCounter()
	insI, insD := stats.NewFootprintCounter(), stats.NewFootprintCounter()

	for _, t := range set.Traces {
		ti := make(map[uint64]uint64)
		td := make(map[uint64]uint64)
		for _, e := range t.Events {
			switch e.Kind {
			case trace.KindInstr:
				ti[e.Addr]++
			case trace.KindDataRead, trace.KindDataWrite:
				td[e.Addr]++
			}
		}
		txnI.AddInstance(ti)
		txnD.AddInstance(td)
		for _, o := range t.Ops() {
			if o.Op != trace.OpInsertTuple {
				continue
			}
			oi := make(map[uint64]uint64)
			od := make(map[uint64]uint64)
			for _, e := range t.Events[o.Start:o.End] {
				switch e.Kind {
				case trace.KindInstr:
					oi[e.Addr]++
				case trace.KindDataRead, trace.KindDataWrite:
					od[e.Addr]++
				}
			}
			insI.AddInstance(oi)
			insD.AddInstance(od)
		}
	}
	res.TxnInstr = txnI.ReuseProfile()
	res.TxnData = txnD.ReuseProfile()
	res.InsertInstr = insI.ReuseProfile()
	res.InsertData = insD.ReuseProfile()
	return res
}

// Render prints the reuse-by-commonality bands.
func (r Fig3Result) Render(out io.Writer) {
	section(out, "Figure 3: Within-instance reuse by cross-instance commonality — "+r.TxnName)
	t := &stats.Table{Header: []string{"scope", "kind", "band", "blocks", "avg reuse/instance"}}
	add := func(scope, kind string, bands []stats.ReuseBand) {
		for _, b := range bands {
			if b.Blocks == 0 {
				continue
			}
			t.AddRow(scope, kind, stats.BucketLabels[b.Bucket], stats.N(b.Blocks), stats.F(b.AvgReuse, 2))
		}
	}
	add(r.TxnName, "instr", r.TxnInstr)
	add(r.TxnName, "data", r.TxnData)
	add("insert op", "instr", r.InsertInstr)
	add("insert op", "data", r.InsertData)
	t.Render(out)
}
