package exp

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"addict/internal/pool"
	"addict/internal/sched"
	"addict/internal/sweep"
)

// RunAll executes every experiment serially and renders the full report —
// the source of EXPERIMENTS.md's measured numbers. RunAllParallel produces
// byte-identical output on a worker pool; this serial form is kept as the
// reference implementation the determinism tests compare against.
func RunAll(out io.Writer, p Params) {
	// Background context: the legacy entry point cannot be cancelled.
	_ = RunAllCtx(context.Background(), out, p)
}

// RunAllCtx is RunAll with cooperative cancellation: once ctx is cancelled
// the run stops between artifact computations and returns ctx's error; the
// sections already written form a clean prefix of the report.
func RunAllCtx(ctx context.Context, out io.Writer, p Params) (err error) {
	defer recoverCancel(&err)
	w := NewWorkbenchCtx(ctx, p, 1)

	Table1(out, p.Machine)
	Fig1(w).Render(out)
	for _, name := range Workloads {
		Fig2(w, name).Render(out)
	}
	Fig3(w).Render(out)
	for _, name := range []string{"TPC-B", "TPC-C"} {
		Fig4(w, name).Render(out)
	}
	var comparisons []Comparison
	for _, name := range Workloads {
		comparisons = append(comparisons, Compare(w, name))
	}
	Fig5Render(out, comparisons)
	Fig6Render(out, comparisons)
	for _, name := range Workloads {
		Fig7(w, name).Render(out)
	}
	var deep []Fig8aResult
	for _, name := range Workloads {
		deep = append(deep, Fig8a(w, name))
	}
	Fig8aRender(out, deep)
	Fig8bRender(out, comparisons)
	Fig9Render(out, comparisons)
	for _, name := range Workloads {
		Ablate(w, name).Render(out)
	}
	SynthChar(w).Render(out)
	return nil
}

// RunAllParallel executes every experiment of RunAll on a bounded worker
// pool and emits a byte-identical report. Independent experiment units —
// per-workload replays, per-figure analyses, the per-(workload, mechanism)
// simulations behind Figures 5/6/8b/9 — run concurrently on up to
// `workers` goroutines (workers < 1 selects runtime.GOMAXPROCS(0)); each
// renderer writes into a private buffer, and buffers stream to out in the
// exact serial presentation order as soon as their section (and every
// section before it) is ready. Determinism holds because every shared
// artifact is single-flight memoized in the Workbench and every artifact's
// content is independent of computation order (sharded trace generation,
// deterministic simulation).
func RunAllParallel(out io.Writer, p Params, workers int) {
	_ = RunAllParallelCtx(context.Background(), out, p, workers)
}

// RunAllParallelCtx is RunAllParallel with cooperative cancellation: once
// ctx is cancelled no new experiment unit starts and no further section is
// emitted; in-flight units finish (a simulation replay is not divisible)
// and the call returns ctx's error after the pool drains. The sections
// already written form a clean prefix of the serial report.
func RunAllParallelCtx(ctx context.Context, out io.Writer, p Params, workers int) error {
	workers = pool.NormWorkers(workers)
	return runAllParallelOn(ctx, NewWorkbenchCtx(ctx, p, workers), out, p, workers)
}

// RunAllParallelWith is RunAllParallelCtx over an existing session cache
// (see NewWorkbenchOn): the full report reuses — and leaves behind —
// whatever artifacts the session already holds.
func RunAllParallelWith(ctx context.Context, out io.Writer, p Params, workers int, swb *sweep.Workbench) error {
	workers = pool.NormWorkers(workers)
	return runAllParallelOn(ctx, NewWorkbenchOn(ctx, p, swb), out, p, workers)
}

// runAllParallelOn is the shared body of the parallel report runners.
func runAllParallelOn(ctx context.Context, w *Workbench, out io.Writer, p Params, workers int) error {
	fig4Workloads := []string{"TPC-B", "TPC-C"}
	comparisons := make([]Comparison, len(Workloads))
	deep := make([]Fig8aResult, len(Workloads))

	// Jobs run on the pool in submission order; emit steps flush output in
	// the serial presentation order, each as soon as the jobs it waits on
	// have finished. The two orders are independent — single-flight
	// memoization makes artifact content order-free — so jobs are
	// submitted roughly longest-first to pack the pool (warm-up replays,
	// then the heavy per-workload sweeps, then the small trace analyses).
	var jobs []func()
	type emitStep struct {
		wait   func()
		render func(io.Writer)
	}
	var emits []emitStep
	nothing := func() {}

	// done wraps a job so emit steps can wait on its completion: a
	// cancelled run closes the done channel without running the job (the
	// pool stops dispatching), so waiters unblock either way. Cancellation
	// panics inside a job are recovered here — the emission loop aborts
	// before rendering anything the job left half-built.
	done := func(job func()) (func(), func()) {
		ch := make(chan struct{})
		wrapped := func() {
			defer close(ch)
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(cancelPanic); ok {
						return
					}
					panic(r)
				}
			}()
			job()
		}
		wait := func() {
			select {
			case <-ch:
			case <-ctx.Done():
			}
		}
		return wrapped, wait
	}
	// buffered returns a pool job that renders into a private buffer and
	// queues the buffer for in-order emission once the job completes.
	buffered := func(render func(io.Writer)) func() {
		buf := new(bytes.Buffer)
		job, wait := done(func() { render(buf) })
		emits = append(emits, emitStep{wait: wait, render: func(out io.Writer) { out.Write(buf.Bytes()) }})
		return job
	}
	// direct renders cheap, already-computed results at emit time, after
	// waiting for the jobs that compute its inputs.
	direct := func(wait func(), render func(io.Writer)) {
		emits = append(emits, emitStep{wait: wait, render: render})
	}
	// waitAll chains completion waits.
	waitAll := func(waits []func()) func() {
		return func() {
			for _, w := range waits {
				w()
			}
		}
	}

	// Computation jobs whose results feed several renderers.
	compareJobs := make([]func(), len(Workloads))
	compareWaits := make([]func(), len(Workloads))
	for i, name := range Workloads {
		i, name := i, name
		compareJobs[i], compareWaits[i] = done(func() { comparisons[i] = Compare(w, name) })
	}
	deepJobs := make([]func(), len(Workloads))
	deepWaits := make([]func(), len(Workloads))
	for i, name := range Workloads {
		i, name := i, name
		deepJobs[i], deepWaits[i] = done(func() { deep[i] = Fig8a(w, name) })
	}

	// Emission plan, in RunAll's presentation order.
	direct(nothing, func(out io.Writer) { Table1(out, p.Machine) })
	fig1Job := buffered(func(out io.Writer) { Fig1(w).Render(out) })
	fig2Jobs := make([]func(), 0, len(Workloads))
	for _, name := range Workloads {
		name := name
		fig2Jobs = append(fig2Jobs, buffered(func(out io.Writer) { Fig2(w, name).Render(out) }))
	}
	fig3Job := buffered(func(out io.Writer) { Fig3(w).Render(out) })
	fig4Jobs := make([]func(), 0, len(fig4Workloads))
	for _, name := range fig4Workloads {
		name := name
		fig4Jobs = append(fig4Jobs, buffered(func(out io.Writer) { Fig4(w, name).Render(out) }))
	}
	direct(waitAll(compareWaits), func(out io.Writer) { Fig5Render(out, comparisons) })
	direct(nothing, func(out io.Writer) { Fig6Render(out, comparisons) })
	fig7Jobs := make([]func(), 0, len(Workloads))
	for _, name := range Workloads {
		name := name
		fig7Jobs = append(fig7Jobs, buffered(func(out io.Writer) { Fig7(w, name).Render(out) }))
	}
	direct(waitAll(deepWaits), func(out io.Writer) { Fig8aRender(out, deep) })
	direct(nothing, func(out io.Writer) { Fig8bRender(out, comparisons) })
	direct(nothing, func(out io.Writer) { Fig9Render(out, comparisons) })
	ablateJobs := make([]func(), 0, len(Workloads))
	for _, name := range Workloads {
		name := name
		ablateJobs = append(ablateJobs, buffered(func(out io.Writer) { Ablate(w, name).Render(out) }))
	}
	// Synthetic characterization fans out per scenario (each is a full
	// generate+profile+4-replay unit) and renders from the assembled rows.
	synthNames := SynthWorkloads()
	synthRows := make([]SynthCharRow, len(synthNames))
	synthJobs := make([]func(), len(synthNames))
	synthWaits := make([]func(), len(synthNames))
	for i, name := range synthNames {
		i, name := i, name
		synthJobs[i], synthWaits[i] = done(func() { synthRows[i] = synthCharRow(w, name) })
	}
	direct(waitAll(synthWaits), func(out io.Writer) { SynthCharResult{Rows: synthRows}.Render(out) })

	// Execution plan. Warm-up units first: the per-(workload, mechanism)
	// replays are the shared dependencies of everything below, so
	// computing them as their own units keeps the heavy consumers from
	// blocking on each other's single-flight computations. The cheap
	// early-presentation sections (Figures 1-4) come next so the report
	// starts streaming while the heavy sweeps still run.
	for _, name := range Workloads {
		name := name
		for _, mech := range allMechanisms() {
			mech := mech
			warm, _ := done(func() { w.Result(name, mech) })
			jobs = append(jobs, warm)
		}
	}
	jobs = append(jobs, fig1Job)
	jobs = append(jobs, fig2Jobs...)
	jobs = append(jobs, fig3Job)
	jobs = append(jobs, fig4Jobs...)
	jobs = append(jobs, fig7Jobs...)
	jobs = append(jobs, ablateJobs...)
	jobs = append(jobs, synthJobs...)
	jobs = append(jobs, deepJobs...)
	jobs = append(jobs, compareJobs...)

	poolDone := make(chan struct{})
	go func() {
		defer close(poolDone)
		_ = pool.RunCtx(ctx, workers, len(jobs), func(i int) { jobs[i]() })
	}()
	for _, emit := range emits {
		emit.wait()
		if err := ctx.Err(); err != nil {
			<-poolDone // in-flight units drain; undispatched ones never start
			return err
		}
		emit.render(out)
	}
	<-poolDone // warm-up jobs may still be draining after the last section
	return ctx.Err()
}

// allMechanisms returns the evaluated mechanisms in presentation order.
func allMechanisms() []sched.Mechanism { return sched.Mechanisms }

// experimentBodies maps experiment ids to their render bodies over a
// workbench — the single definition both the standalone runners
// (Experiments) and session-cache runs (RunExperimentWith) share.
var experimentBodies = map[string]func(w *Workbench, out io.Writer){
	"table1": func(w *Workbench, out io.Writer) { Table1(out, w.P.Machine) },
	"fig1":   func(w *Workbench, out io.Writer) { Fig1(w).Render(out) },
	"fig2": func(w *Workbench, out io.Writer) {
		for _, name := range Workloads {
			Fig2(w, name).Render(out)
		}
	},
	"fig3": func(w *Workbench, out io.Writer) { Fig3(w).Render(out) },
	"fig4": func(w *Workbench, out io.Writer) {
		for _, name := range []string{"TPC-B", "TPC-C"} {
			Fig4(w, name).Render(out)
		}
	},
	"fig5": func(w *Workbench, out io.Writer) { Fig5Render(out, compareAll(w)) },
	"fig6": func(w *Workbench, out io.Writer) { Fig6Render(out, compareAll(w)) },
	"fig7": func(w *Workbench, out io.Writer) {
		for _, name := range Workloads {
			Fig7(w, name).Render(out)
		}
	},
	"fig8a": func(w *Workbench, out io.Writer) {
		var rs []Fig8aResult
		for _, name := range Workloads {
			rs = append(rs, Fig8a(w, name))
		}
		Fig8aRender(out, rs)
	},
	"fig8b": func(w *Workbench, out io.Writer) { Fig8bRender(out, compareAll(w)) },
	"fig9":  func(w *Workbench, out io.Writer) { Fig9Render(out, compareAll(w)) },
	"ablations": func(w *Workbench, out io.Writer) {
		for _, name := range Workloads {
			Ablate(w, name).Render(out)
		}
	},
	"synthchar": func(w *Workbench, out io.Writer) { SynthChar(w).Render(out) },
}

// Experiments maps experiment ids to their standalone context-first
// runners. workers bounds the runner's generation and replay parallelism
// exactly as in RunAllParallelCtx (workers < 1 selects
// runtime.GOMAXPROCS(0)); output is identical for every worker count. A
// cancelled run stops between artifact computations and returns ctx's
// error.
var Experiments = func() map[string]func(ctx context.Context, out io.Writer, p Params, workers int) error {
	m := make(map[string]func(ctx context.Context, out io.Writer, p Params, workers int) error, len(experimentBodies))
	for id, body := range experimentBodies {
		body := body
		m[id] = func(ctx context.Context, out io.Writer, p Params, workers int) error {
			return runBody(ctx, body, NewWorkbenchCtx(ctx, p, pool.NormWorkers(workers)), out)
		}
	}
	return m
}()

// RunExperimentWith runs one experiment by id over an existing session
// cache (see NewWorkbenchOn) — the facade Engine's single-experiment path.
func RunExperimentWith(ctx context.Context, id string, out io.Writer, p Params, swb *sweep.Workbench) error {
	body, ok := experimentBodies[id]
	if !ok {
		return fmt.Errorf("exp: unknown experiment %q", id)
	}
	return runBody(ctx, body, NewWorkbenchOn(ctx, p, swb), out)
}

// compareAll assembles the per-workload mechanism comparisons Figures 5,
// 6, 8b, and 9 share.
func compareAll(w *Workbench) []Comparison {
	var cs []Comparison
	for _, name := range Workloads {
		cs = append(cs, Compare(w, name))
	}
	return cs
}

// runBody executes a render body, recovering a cancellation unwind into
// the returned error.
func runBody(ctx context.Context, body func(w *Workbench, out io.Writer), w *Workbench, out io.Writer) (err error) {
	defer recoverCancel(&err)
	body(w, out)
	return ctx.Err()
}
