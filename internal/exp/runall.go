package exp

import (
	"bytes"
	"io"
	"runtime"

	"addict/internal/pool"
	"addict/internal/sched"
)

// RunAll executes every experiment serially and renders the full report —
// the source of EXPERIMENTS.md's measured numbers. RunAllParallel produces
// byte-identical output on a worker pool; this serial form is kept as the
// reference implementation the determinism tests compare against.
func RunAll(out io.Writer, p Params) {
	w := NewWorkbench(p)

	Table1(out, p.Machine)
	Fig1(w).Render(out)
	for _, name := range Workloads {
		Fig2(w, name).Render(out)
	}
	Fig3(w).Render(out)
	for _, name := range []string{"TPC-B", "TPC-C"} {
		Fig4(w, name).Render(out)
	}
	var comparisons []Comparison
	for _, name := range Workloads {
		comparisons = append(comparisons, Compare(w, name))
	}
	Fig5Render(out, comparisons)
	Fig6Render(out, comparisons)
	for _, name := range Workloads {
		Fig7(w, name).Render(out)
	}
	var deep []Fig8aResult
	for _, name := range Workloads {
		deep = append(deep, Fig8a(w, name))
	}
	Fig8aRender(out, deep)
	Fig8bRender(out, comparisons)
	Fig9Render(out, comparisons)
	for _, name := range Workloads {
		Ablate(w, name).Render(out)
	}
	SynthChar(w).Render(out)
}

// RunAllParallel executes every experiment of RunAll on a bounded worker
// pool and emits a byte-identical report. Independent experiment units —
// per-workload replays, per-figure analyses, the per-(workload, mechanism)
// simulations behind Figures 5/6/8b/9 — run concurrently on up to
// `workers` goroutines (workers < 1 selects runtime.GOMAXPROCS(0)); each
// renderer writes into a private buffer, and buffers stream to out in the
// exact serial presentation order as soon as their section (and every
// section before it) is ready. Determinism holds because every shared
// artifact is single-flight memoized in the Workbench and every artifact's
// content is independent of computation order (sharded trace generation,
// deterministic simulation).
func RunAllParallel(out io.Writer, p Params, workers int) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	w := NewParallelWorkbench(p, workers)

	fig4Workloads := []string{"TPC-B", "TPC-C"}
	comparisons := make([]Comparison, len(Workloads))
	deep := make([]Fig8aResult, len(Workloads))

	// Jobs run on the pool in submission order; emit steps flush output in
	// the serial presentation order, each as soon as the jobs it waits on
	// have finished. The two orders are independent — single-flight
	// memoization makes artifact content order-free — so jobs are
	// submitted roughly longest-first to pack the pool (warm-up replays,
	// then the heavy per-workload sweeps, then the small trace analyses).
	var jobs []func()
	type emitStep struct {
		wait   func()
		render func(io.Writer)
	}
	var emits []emitStep
	nothing := func() {}

	// done wraps a job so emit steps can wait on its completion.
	done := func(job func()) (func(), func()) {
		ch := make(chan struct{})
		return func() { defer close(ch); job() }, func() { <-ch }
	}
	// buffered returns a pool job that renders into a private buffer and
	// queues the buffer for in-order emission once the job completes.
	buffered := func(render func(io.Writer)) func() {
		buf := new(bytes.Buffer)
		job, wait := done(func() { render(buf) })
		emits = append(emits, emitStep{wait: wait, render: func(out io.Writer) { out.Write(buf.Bytes()) }})
		return job
	}
	// direct renders cheap, already-computed results at emit time, after
	// waiting for the jobs that compute its inputs.
	direct := func(wait func(), render func(io.Writer)) {
		emits = append(emits, emitStep{wait: wait, render: render})
	}
	// waitAll chains completion waits.
	waitAll := func(waits []func()) func() {
		return func() {
			for _, w := range waits {
				w()
			}
		}
	}

	// Computation jobs whose results feed several renderers.
	compareJobs := make([]func(), len(Workloads))
	compareWaits := make([]func(), len(Workloads))
	for i, name := range Workloads {
		i, name := i, name
		compareJobs[i], compareWaits[i] = done(func() { comparisons[i] = Compare(w, name) })
	}
	deepJobs := make([]func(), len(Workloads))
	deepWaits := make([]func(), len(Workloads))
	for i, name := range Workloads {
		i, name := i, name
		deepJobs[i], deepWaits[i] = done(func() { deep[i] = Fig8a(w, name) })
	}

	// Emission plan, in RunAll's presentation order.
	direct(nothing, func(out io.Writer) { Table1(out, p.Machine) })
	fig1Job := buffered(func(out io.Writer) { Fig1(w).Render(out) })
	fig2Jobs := make([]func(), 0, len(Workloads))
	for _, name := range Workloads {
		name := name
		fig2Jobs = append(fig2Jobs, buffered(func(out io.Writer) { Fig2(w, name).Render(out) }))
	}
	fig3Job := buffered(func(out io.Writer) { Fig3(w).Render(out) })
	fig4Jobs := make([]func(), 0, len(fig4Workloads))
	for _, name := range fig4Workloads {
		name := name
		fig4Jobs = append(fig4Jobs, buffered(func(out io.Writer) { Fig4(w, name).Render(out) }))
	}
	direct(waitAll(compareWaits), func(out io.Writer) { Fig5Render(out, comparisons) })
	direct(nothing, func(out io.Writer) { Fig6Render(out, comparisons) })
	fig7Jobs := make([]func(), 0, len(Workloads))
	for _, name := range Workloads {
		name := name
		fig7Jobs = append(fig7Jobs, buffered(func(out io.Writer) { Fig7(w, name).Render(out) }))
	}
	direct(waitAll(deepWaits), func(out io.Writer) { Fig8aRender(out, deep) })
	direct(nothing, func(out io.Writer) { Fig8bRender(out, comparisons) })
	direct(nothing, func(out io.Writer) { Fig9Render(out, comparisons) })
	ablateJobs := make([]func(), 0, len(Workloads))
	for _, name := range Workloads {
		name := name
		ablateJobs = append(ablateJobs, buffered(func(out io.Writer) { Ablate(w, name).Render(out) }))
	}
	// Synthetic characterization fans out per scenario (each is a full
	// generate+profile+4-replay unit) and renders from the assembled rows.
	synthNames := SynthWorkloads()
	synthRows := make([]SynthCharRow, len(synthNames))
	synthJobs := make([]func(), len(synthNames))
	synthWaits := make([]func(), len(synthNames))
	for i, name := range synthNames {
		i, name := i, name
		synthJobs[i], synthWaits[i] = done(func() { synthRows[i] = synthCharRow(w, name) })
	}
	direct(waitAll(synthWaits), func(out io.Writer) { SynthCharResult{Rows: synthRows}.Render(out) })

	// Execution plan. Warm-up units first: the per-(workload, mechanism)
	// replays are the shared dependencies of everything below, so
	// computing them as their own units keeps the heavy consumers from
	// blocking on each other's single-flight computations. The cheap
	// early-presentation sections (Figures 1-4) come next so the report
	// starts streaming while the heavy sweeps still run.
	for _, name := range Workloads {
		name := name
		for _, mech := range allMechanisms() {
			mech := mech
			jobs = append(jobs, func() { w.Result(name, mech) })
		}
	}
	jobs = append(jobs, fig1Job)
	jobs = append(jobs, fig2Jobs...)
	jobs = append(jobs, fig3Job)
	jobs = append(jobs, fig4Jobs...)
	jobs = append(jobs, fig7Jobs...)
	jobs = append(jobs, ablateJobs...)
	jobs = append(jobs, synthJobs...)
	jobs = append(jobs, deepJobs...)
	jobs = append(jobs, compareJobs...)

	poolDone := make(chan struct{})
	go func() {
		defer close(poolDone)
		pool.Run(workers, len(jobs), func(i int) { jobs[i]() })
	}()
	for _, emit := range emits {
		emit.wait()
		emit.render(out)
	}
	<-poolDone // warm-up jobs may still be draining after the last section
}

// allMechanisms returns the evaluated mechanisms in presentation order.
func allMechanisms() []sched.Mechanism { return sched.Mechanisms }

// Experiments maps experiment ids to their standalone runners, for the
// cmd/addict-bench -exp flag. workers bounds the runner's generation and
// replay parallelism exactly as in RunAllParallel (workers < 1 selects
// runtime.GOMAXPROCS(0)); output is identical for every worker count.
var Experiments = map[string]func(out io.Writer, p Params, workers int){
	"table1": func(out io.Writer, p Params, workers int) { Table1(out, p.Machine) },
	"fig1": func(out io.Writer, p Params, workers int) {
		Fig1(newExpWorkbench(p, workers)).Render(out)
	},
	"fig2": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		for _, name := range Workloads {
			Fig2(w, name).Render(out)
		}
	},
	"fig3": func(out io.Writer, p Params, workers int) {
		Fig3(newExpWorkbench(p, workers)).Render(out)
	},
	"fig4": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		for _, name := range []string{"TPC-B", "TPC-C"} {
			Fig4(w, name).Render(out)
		}
	},
	"fig5": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		var cs []Comparison
		for _, name := range Workloads {
			cs = append(cs, Compare(w, name))
		}
		Fig5Render(out, cs)
	},
	"fig6": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		var cs []Comparison
		for _, name := range Workloads {
			cs = append(cs, Compare(w, name))
		}
		Fig6Render(out, cs)
	},
	"fig7": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		for _, name := range Workloads {
			Fig7(w, name).Render(out)
		}
	},
	"fig8a": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		var rs []Fig8aResult
		for _, name := range Workloads {
			rs = append(rs, Fig8a(w, name))
		}
		Fig8aRender(out, rs)
	},
	"fig8b": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		var cs []Comparison
		for _, name := range Workloads {
			cs = append(cs, Compare(w, name))
		}
		Fig8bRender(out, cs)
	},
	"fig9": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		var cs []Comparison
		for _, name := range Workloads {
			cs = append(cs, Compare(w, name))
		}
		Fig9Render(out, cs)
	},
	"ablations": func(out io.Writer, p Params, workers int) {
		w := newExpWorkbench(p, workers)
		for _, name := range Workloads {
			Ablate(w, name).Render(out)
		}
	},
	"synthchar": func(out io.Writer, p Params, workers int) {
		SynthChar(newExpWorkbench(p, workers)).Render(out)
	},
}

// newExpWorkbench builds the workbench of a standalone experiment runner,
// applying the package worker-count convention.
func newExpWorkbench(p Params, workers int) *Workbench {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return NewParallelWorkbench(p, workers)
}
