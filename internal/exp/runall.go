package exp

import "io"

// RunAll executes every experiment and renders the full report — the
// cmd/addict-bench default and the source of EXPERIMENTS.md's measured
// numbers.
func RunAll(out io.Writer, p Params) {
	w := NewWorkbench(p)

	Table1(out, p.Machine)
	Fig1(w).Render(out)
	for _, name := range Workloads {
		Fig2(w, name).Render(out)
	}
	Fig3(w).Render(out)
	for _, name := range []string{"TPC-B", "TPC-C"} {
		Fig4(w, name).Render(out)
	}
	var comparisons []Comparison
	for _, name := range Workloads {
		comparisons = append(comparisons, Compare(w, name))
	}
	Fig5Render(out, comparisons)
	Fig6Render(out, comparisons)
	for _, name := range Workloads {
		Fig7(w, name).Render(out)
	}
	var deep []Fig8aResult
	for _, name := range Workloads {
		deep = append(deep, Fig8a(w, name))
	}
	Fig8aRender(out, deep)
	Fig8bRender(out, comparisons)
	Fig9Render(out, comparisons)
	for _, name := range Workloads {
		Ablate(w, name).Render(out)
	}
}

// Experiments maps experiment ids to their standalone runners, for the
// cmd/addict-bench -exp flag.
var Experiments = map[string]func(out io.Writer, p Params){
	"table1": func(out io.Writer, p Params) { Table1(out, p.Machine) },
	"fig1":   func(out io.Writer, p Params) { Fig1(NewWorkbench(p)).Render(out) },
	"fig2": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		for _, name := range Workloads {
			Fig2(w, name).Render(out)
		}
	},
	"fig3": func(out io.Writer, p Params) { Fig3(NewWorkbench(p)).Render(out) },
	"fig4": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		for _, name := range []string{"TPC-B", "TPC-C"} {
			Fig4(w, name).Render(out)
		}
	},
	"fig5": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		var cs []Comparison
		for _, name := range Workloads {
			cs = append(cs, Compare(w, name))
		}
		Fig5Render(out, cs)
	},
	"fig6": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		var cs []Comparison
		for _, name := range Workloads {
			cs = append(cs, Compare(w, name))
		}
		Fig6Render(out, cs)
	},
	"fig7": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		for _, name := range Workloads {
			Fig7(w, name).Render(out)
		}
	},
	"fig8a": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		var rs []Fig8aResult
		for _, name := range Workloads {
			rs = append(rs, Fig8a(w, name))
		}
		Fig8aRender(out, rs)
	},
	"fig8b": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		var cs []Comparison
		for _, name := range Workloads {
			cs = append(cs, Compare(w, name))
		}
		Fig8bRender(out, cs)
	},
	"fig9": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		var cs []Comparison
		for _, name := range Workloads {
			cs = append(cs, Compare(w, name))
		}
		Fig9Render(out, cs)
	},
	"ablations": func(out io.Writer, p Params) {
		w := NewWorkbench(p)
		for _, name := range Workloads {
			Ablate(w, name).Render(out)
		}
	},
}
