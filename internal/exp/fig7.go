package exp

import (
	"io"

	"addict/internal/sched"
	"addict/internal/stats"
	"addict/internal/sweep"
)

// Fig7 sweeps the batch size (the number of concurrent transactions, i.e.
// the server load) from 2 to 32 and reports ADDICT's cycles and L1-I MPKI
// over Baseline — Section 4.5 ("while the reduction in L1-I MPKI remains
// the same the total execution time improves for larger batch sizes").
type Fig7Result struct {
	Workload string
	Points   []Fig7Point
}

// Fig7Point is one batch size's outcome.
type Fig7Point struct {
	BatchSize int
	CyclesN   float64
	L1IN      float64
}

// Fig7BatchSizes are the paper's swept loads.
var Fig7BatchSizes = []int{2, 4, 8, 16, 32}

// Fig7 sweeps one workload. ADDICT's batch size (= its admitted
// concurrency) varies against the fixed full-load Baseline, reproducing the
// paper's crossover: lightly-loaded ADDICT cannot amortize its pipeline,
// and "the reduction in the total execution time increases starting from a
// batch size of 8". The figure is a thin preset over sweep units: a
// single-workload ADDICT grid with a Threads axis, replayed through the
// same execution path as cmd/addict-sweep.
func Fig7(w *Workbench, workloadName string) Fig7Result {
	res := Fig7Result{Workload: workloadName}
	set := w.EvalSet(workloadName)
	prof := w.Profile(workloadName)
	base := w.Result(workloadName, sched.Baseline)
	bm := base.Machine
	spec := sweep.Spec{
		Workloads:  []string{workloadName},
		Mechanisms: []string{string(sched.ADDICT)},
		Threads:    Fig7BatchSizes,
	}
	units, err := spec.ExpandOn(w.P.Machine)
	if err != nil {
		panic(err)
	}
	for _, u := range units {
		r, err := sweep.Replay(u, set, prof)
		if err != nil {
			panic(err)
		}
		res.Points = append(res.Points, Fig7Point{
			BatchSize: u.Threads,
			CyclesN:   ratio(float64(r.Makespan), float64(base.Makespan)),
			L1IN:      ratio(r.Machine.MPKI(r.Machine.L1IMisses), bm.MPKI(bm.L1IMisses)),
		})
	}
	return res
}

// Render prints the sweep.
func (r Fig7Result) Render(out io.Writer) {
	section(out, "Figure 7: Effect of batch size (server load) — "+r.Workload)
	t := &stats.Table{Header: []string{"batch size", "cycles norm", "L1-I norm"}}
	for _, p := range r.Points {
		t.AddRow(stats.N(p.BatchSize), stats.F(p.CyclesN, 3), stats.F(p.L1IN, 3))
	}
	t.Render(out)
}
