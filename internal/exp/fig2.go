package exp

import (
	"io"
	"sort"

	"addict/internal/stats"
	"addict/internal/trace"
)

// Fig2 computes instruction and data footprint overlaps at the paper's
// three granularities — the whole workload mix, each transaction type, and
// each database operation within a type (Section 2.2, Figure 2).
type Fig2Result struct {
	Workload string
	// Mix is the overlap across all transactions of the mix.
	MixInstr, MixData stats.OverlapResult
	// PerTxn holds the overlaps for each transaction type, most frequent
	// first.
	PerTxn []Fig2Txn
}

// Fig2Txn is one transaction type's overlap summary.
type Fig2Txn struct {
	Name        string
	Instances   int
	Instr, Data stats.OverlapResult
	// Ops holds per-operation instruction overlaps within this type.
	Ops []Fig2Op
}

// Fig2Op is one operation's instruction overlap inside a transaction type.
type Fig2Op struct {
	Op        trace.OpType
	Instances int
	Instr     stats.OverlapResult
}

// Fig2 analyzes one workload from the workbench's profiling set.
func Fig2(w *Workbench, workloadName string) Fig2Result {
	set := w.ProfileSet(workloadName)
	res := Fig2Result{Workload: workloadName}

	var mixInstr, mixData []map[uint64]struct{}
	perTxnInstr := make(map[trace.TxnType][]map[uint64]struct{})
	perTxnData := make(map[trace.TxnType][]map[uint64]struct{})
	type opKey struct {
		tt trace.TxnType
		op trace.OpType
	}
	perOp := make(map[opKey][]map[uint64]struct{})

	for _, t := range set.Traces {
		instr, data := t.Footprint()
		mixInstr = append(mixInstr, instr)
		mixData = append(mixData, data)
		perTxnInstr[t.Type] = append(perTxnInstr[t.Type], instr)
		perTxnData[t.Type] = append(perTxnData[t.Type], data)
		for _, o := range t.Ops() {
			if o.Op == trace.OpCommit {
				continue // Figure 2 covers the five database operations
			}
			fp := make(map[uint64]struct{})
			for _, e := range t.Events[o.Start:o.End] {
				if e.Kind == trace.KindInstr {
					fp[e.Addr] = struct{}{}
				}
			}
			k := opKey{tt: t.Type, op: o.Op}
			perOp[k] = append(perOp[k], fp)
		}
	}

	res.MixInstr = stats.Overlap(mixInstr)
	res.MixData = stats.Overlap(mixData)

	// Transaction types ordered by frequency.
	type tcount struct {
		tt trace.TxnType
		n  int
	}
	var order []tcount
	for tt, fps := range perTxnInstr {
		order = append(order, tcount{tt, len(fps)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n > order[j].n
		}
		return order[i].tt < order[j].tt
	})
	for _, tc := range order {
		txn := Fig2Txn{
			Name:      set.TypeName(tc.tt),
			Instances: tc.n,
			Instr:     stats.Overlap(perTxnInstr[tc.tt]),
			Data:      stats.Overlap(perTxnData[tc.tt]),
		}
		for _, op := range []trace.OpType{trace.OpIndexProbe, trace.OpIndexScan, trace.OpUpdateTuple, trace.OpInsertTuple, trace.OpDeleteTuple} {
			fps := perOp[opKey{tt: tc.tt, op: op}]
			if len(fps) == 0 {
				continue
			}
			txn.Ops = append(txn.Ops, Fig2Op{Op: op, Instances: len(fps), Instr: stats.Overlap(fps)})
		}
		res.PerTxn = append(res.PerTxn, txn)
	}
	return res
}

// Render prints the Figure 2 bucket tables.
func (r Fig2Result) Render(out io.Writer) {
	section(out, "Figure 2: Footprint overlap — "+r.Workload)
	t := &stats.Table{Header: []string{"granularity", "kind", "blocks",
		stats.BucketLabels[0], stats.BucketLabels[1], stats.BucketLabels[2], stats.BucketLabels[3], stats.BucketLabels[4], ">=90%"}}
	row := func(name, kind string, o stats.OverlapResult) {
		t.AddRow(name, kind, stats.N(o.FootprintBlocks),
			stats.Pct(o.Shares[0]), stats.Pct(o.Shares[1]), stats.Pct(o.Shares[2]),
			stats.Pct(o.Shares[3]), stats.Pct(o.Shares[4]), stats.Pct(o.CommonShare()))
	}
	row("mix", "instr", r.MixInstr)
	row("mix", "data", r.MixData)
	for _, txn := range r.PerTxn {
		row(txn.Name, "instr", txn.Instr)
		row(txn.Name, "data", txn.Data)
		for _, op := range txn.Ops {
			row("  "+txn.Name+"/"+op.Op.String(), "instr", op.Instr)
		}
	}
	t.Render(out)
}
