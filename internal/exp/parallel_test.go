package exp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"addict/internal/core"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/workload"
)

// quickSerial caches one serial RunAll(QuickParams()) report per test
// binary; the determinism and golden tests share it instead of re-running
// the full evaluation.
var (
	quickSerialOnce sync.Once
	quickSerialOut  []byte
)

func serialQuickReport() []byte {
	quickSerialOnce.Do(func() {
		var buf bytes.Buffer
		RunAll(&buf, QuickParams())
		quickSerialOut = buf.Bytes()
	})
	return quickSerialOut
}

// firstDiff describes the first byte position where two reports diverge.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("byte %d: serial %q vs parallel %q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestRunAllParallelMatchesSerial is the engine's headline guarantee:
// RunAllParallel must render a byte-identical report to serial RunAll under
// QuickParams() for 1, 2, and 8 workers. (Under -race the comparison runs
// at tinyParams() to keep the 5-10x detector slowdown affordable; the
// guarantee itself is parameter-independent.)
func TestRunAllParallelMatchesSerial(t *testing.T) {
	p := QuickParams()
	var want []byte
	if raceEnabled {
		p = tinyParams()
		var buf bytes.Buffer
		RunAll(&buf, p)
		want = buf.Bytes()
	} else {
		want = serialQuickReport()
	}
	if len(want) == 0 {
		t.Fatal("serial RunAll produced no output")
	}
	for _, workers := range []int{1, 2, 8} {
		var buf bytes.Buffer
		RunAllParallel(&buf, p, workers)
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("RunAllParallel(workers=%d) diverges from serial RunAll: %s",
				workers, firstDiff(want, buf.Bytes()))
		}
	}
}

// TestWorkbenchShardDigestsWorkerIndependent asserts the workbench's trace
// sets are identical whichever generation parallelism produced them.
func TestWorkbenchShardDigestsWorkerIndependent(t *testing.T) {
	p := tinyParams()
	serial := NewWorkbench(p)
	for _, workers := range []int{2, 8} {
		par := NewParallelWorkbench(p, workers)
		for _, name := range Workloads {
			if got, want := par.ProfileSet(name).Digest(), serial.ProfileSet(name).Digest(); got != want {
				t.Errorf("%s profile set digest (workers=%d) = %#x, want %#x", name, workers, got, want)
			}
			if got, want := par.EvalSet(name).Digest(), serial.EvalSet(name).Digest(); got != want {
				t.Errorf("%s eval set digest (workers=%d) = %#x, want %#x", name, workers, got, want)
			}
		}
	}
	// Profiling and evaluation windows must stay disjoint shard ranges.
	for _, name := range Workloads {
		if serial.ProfileSet(name).Digest() == serial.EvalSet(name).Digest() {
			t.Errorf("%s: profile and eval sets identical", name)
		}
	}
}

// TestWorkbenchConcurrentSingleFlight hammers one workbench from many
// goroutines: every caller must observe the same artifact pointers (the
// computation ran exactly once) and identical simulation results. Run with
// -race this is the scheduler/simulator data-race audit.
func TestWorkbenchConcurrentSingleFlight(t *testing.T) {
	p := Params{Seed: 5, Scale: 0.05, ProfileTraces: 60, EvalTraces: 60, StabilityTraces: 80, Machine: sim.Shallow()}
	w := NewParallelWorkbench(p, 4)

	const goroutines = 16
	type view struct {
		prof     *core.Profile
		makespan map[sched.Mechanism]uint64
	}
	views := make([]view, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := Workloads[g%len(Workloads)]
			v := view{makespan: make(map[sched.Mechanism]uint64)}
			_ = w.ProfileSet(name)
			_ = w.EvalSet(name)
			v.prof = w.Profile(name)
			for _, mech := range sched.Mechanisms {
				v.makespan[mech] = w.Result(name, mech).Makespan
			}
			views[g] = v
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		peer := g % len(Workloads) // first goroutine on the same workload
		if views[g].prof != views[peer].prof {
			t.Errorf("goroutine %d saw a different profile instance than goroutine %d", g, peer)
		}
		for mech, ms := range views[g].makespan {
			if ms != views[peer].makespan[mech] {
				t.Errorf("goroutine %d: %s makespan %d != goroutine %d's %d", g, mech, ms, peer, views[peer].makespan[mech])
			}
		}
	}
}

// TestGenerateSetShardedMatchesWorkbench ties the workload-level generator
// to the workbench path (same recipe, same bytes).
func TestGenerateSetShardedMatchesWorkbench(t *testing.T) {
	p := tinyParams()
	w := NewWorkbench(p)
	s, err := workload.GenerateSetSharded("TPC-B", p.Seed, p.Scale, 0, p.ProfileTraces, workload.DefaultShardSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Digest() != w.ProfileSet("TPC-B").Digest() {
		t.Error("standalone sharded generation diverges from the workbench profile set")
	}
}
