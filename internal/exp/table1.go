package exp

import (
	"fmt"
	"io"

	"addict/internal/sim"
	"addict/internal/stats"
)

// Table1 renders the system parameters of the simulated machine — the
// reproduction's counterpart of the paper's Table 1.
func Table1(out io.Writer, cfg sim.Config) {
	section(out, "Table 1: System Parameters")
	t := &stats.Table{Header: []string{"component", "configuration"}}
	t.AddRow("Processing", fmt.Sprintf("%d cores, first-order OoO model (base IPC %.1f)", cfg.Cores, cfg.BaseIPC))
	t.AddRow("Private L1-I", fmt.Sprintf("%dKB, %d-way, 64B blocks", cfg.L1I.SizeBytes>>10, cfg.L1I.Ways))
	t.AddRow("Private L1-D", fmt.Sprintf("%dKB, %d-way, 64B blocks, write-invalidate coherence", cfg.L1D.SizeBytes>>10, cfg.L1D.Ways))
	if cfg.PrivateL2 != nil {
		t.AddRow("Private L2", fmt.Sprintf("%dKB, %d-way, %d-cycle hit (deep hierarchy)", cfg.PrivateL2.SizeBytes>>10, cfg.PrivateL2.Ways, cfg.PrivateL2Cycles))
	}
	t.AddRow("Shared "+cfg.Shared.Name, fmt.Sprintf("%dMB NUCA, %d-way, %d banks, %d-cycle hit",
		cfg.Shared.SizeBytes>>20, cfg.Shared.Ways, cfg.SharedBanks, cfg.SharedHitCycles))
	t.AddRow("Interconnect", fmt.Sprintf("2D torus, %d-cycle hop", cfg.HopCycles))
	t.AddRow("Memory", fmt.Sprintf("%d-cycle access (42ns at 2.5GHz)", cfg.MemCycles))
	t.AddRow("Thread migration", fmt.Sprintf("%d cycles (6 cache lines of context via LLC)", cfg.MigrationCycles))
	t.AddRow("Stall exposure", fmt.Sprintf("instr %.0f%%, on-chip data %.0f%%, off-chip data %.0f%%",
		cfg.InstrMissExposure*100, cfg.OnChipDataExposure*100, cfg.OffChipDataExposure*100))
	t.Render(out)
}
