package exp

import (
	"io"

	"addict/internal/core"
	"addict/internal/stats"
	"addict/internal/trace"
	"addict/internal/workload"
)

// Fig4 measures migration-point stability (Section 4.2): the percentage of
// operation instances whose solo-run Algorithm 1 points exactly match the
// profile chosen from the first 1000 traces, evaluated over the next 1000
// and the next 10000 traces. Evaluation traces stream one at a time, so the
// 10000-trace runs stay memory-bounded.
type Fig4Result struct {
	Workload string
	// At1k/At10k hold the per-(txn, op) match rates at the two trace
	// counts (the paper's x-axis: "Total Number of Transaction Traces").
	At1k, At10k []core.StabilityRow
}

// Fig4 evaluates the named workloads (the paper shows TPC-B AccountUpdate
// and TPC-C NewOrder/Payment; the runner accepts any subset of Workloads).
func Fig4(w *Workbench, workloadName string) Fig4Result {
	prof := w.Profile(workloadName)
	res := Fig4Result{Workload: workloadName}

	small := w.P.EvalTraces
	large := w.P.StabilityTraces

	counterSmall := core.NewStabilityCounter(prof)
	counterLarge := core.NewStabilityCounter(prof)
	// Stream the shards beyond the profiling window with the same sharded
	// warm-started recipe the profile was trained on, so stability is
	// measured against traces from the generation regime the profile saw.
	// The first EvalTraces streamed traces are exactly the workbench's
	// eval set (same shard range); the stream then continues into further
	// shards for the large count, staying memory-bounded.
	base := workload.NumShards(w.P.ProfileTraces, workload.DefaultShardSize)
	err := workload.StreamShardedCtx(w.ctx, workloadName, w.P.Seed, w.P.Scale,
		base, large, workload.DefaultShardSize, func(i int, t *trace.Trace) {
			counterLarge.AddTrace(t)
			if i < small {
				counterSmall.AddTrace(t)
			}
		})
	if err != nil {
		if w.ctx.Err() != nil {
			panic(cancelPanic{err})
		}
		panic(err)
	}
	res.At1k = counterSmall.Rows()
	res.At10k = counterLarge.Rows()
	return res
}

// Render prints the stability bars.
func (r Fig4Result) Render(out io.Writer) {
	section(out, "Figure 4: Migration-point stability — "+r.Workload)
	t := &stats.Table{Header: []string{"transaction", "operation", "match@small", "match@large", "instances@large"}}
	idx := make(map[string]core.StabilityRow, len(r.At10k))
	for _, row := range r.At10k {
		idx[row.TxnName+"/"+row.Op.String()] = row
	}
	for _, row := range r.At1k {
		big := idx[row.TxnName+"/"+row.Op.String()]
		t.AddRow(row.TxnName, row.Op.String(), stats.Pct(row.MatchRate()), stats.Pct(big.MatchRate()), stats.N(big.Instances))
	}
	t.Render(out)
}
