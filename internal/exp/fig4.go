package exp

import (
	"io"

	"addict/internal/core"
	"addict/internal/stats"
	"addict/internal/trace"
	"addict/internal/workload"
)

// Fig4 measures migration-point stability (Section 4.2): the percentage of
// operation instances whose solo-run Algorithm 1 points exactly match the
// profile chosen from the first 1000 traces, evaluated over the next 1000
// and the next 10000 traces. Evaluation traces stream one at a time, so the
// 10000-trace runs stay memory-bounded.
type Fig4Result struct {
	Workload string
	// At1k/At10k hold the per-(txn, op) match rates at the two trace
	// counts (the paper's x-axis: "Total Number of Transaction Traces").
	At1k, At10k []core.StabilityRow
}

// Fig4 evaluates the named workloads (the paper shows TPC-B AccountUpdate
// and TPC-C NewOrder/Payment; the runner accepts any subset of Workloads).
func Fig4(w *Workbench, workloadName string) Fig4Result {
	prof := w.Profile(workloadName)
	res := Fig4Result{Workload: workloadName}

	small := w.P.EvalTraces
	large := w.P.StabilityTraces

	counterSmall := core.NewStabilityCounter(prof)
	counterLarge := core.NewStabilityCounter(prof)
	// A fresh benchmark continues deterministically past the profiling
	// window; the workbench's own eval set must stay untouched, so rebuild
	// and skip the profiling prefix.
	build, err := workload.Builder(workloadName)
	if err != nil {
		panic(err)
	}
	b := build(w.P.Seed, w.P.Scale)
	skip := w.P.ProfileTraces
	workload.Stream(b, skip+large, func(i int, t *trace.Trace) {
		if i < skip {
			return
		}
		counterLarge.AddTrace(t)
		if i < skip+small {
			counterSmall.AddTrace(t)
		}
	})
	res.At1k = counterSmall.Rows()
	res.At10k = counterLarge.Rows()
	return res
}

// Render prints the stability bars.
func (r Fig4Result) Render(out io.Writer) {
	section(out, "Figure 4: Migration-point stability — "+r.Workload)
	t := &stats.Table{Header: []string{"transaction", "operation", "match@small", "match@large", "instances@large"}}
	idx := make(map[string]core.StabilityRow, len(r.At10k))
	for _, row := range r.At10k {
		idx[row.TxnName+"/"+row.Op.String()] = row
	}
	for _, row := range r.At1k {
		big := idx[row.TxnName+"/"+row.Op.String()]
		t.AddRow(row.TxnName, row.Op.String(), stats.Pct(row.MatchRate()), stats.Pct(big.MatchRate()), stats.N(big.Instances))
	}
	t.Render(out)
}
