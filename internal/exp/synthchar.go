package exp

import (
	"io"
	"sort"
	"strings"

	"addict/internal/sched"
	"addict/internal/stats"
	"addict/internal/workload/synth"
)

// SynthWorkloads lists the synthetic-characterization scenarios: TPC-B as
// the reference point the paper's mixes anchor, then every shipped preset
// in sorted order.
func SynthWorkloads() []string {
	names := []string{"TPC-B"}
	for _, p := range synth.Presets() {
		names = append(names, synth.NamePrefix+p)
	}
	return names
}

// SynthCharRow is one scenario's four-mechanism outcome plus the ranking
// it induces.
type SynthCharRow struct {
	Workload string
	Rows     []MechRow
	// Ranking orders the mechanisms by normalized cycles, best (fewest)
	// first; ties break in presentation order.
	Ranking []sched.Mechanism
}

// RankingString renders the ranking as "ADDICT < SLICC < Baseline < STREX"
// (left is fastest).
func (r SynthCharRow) RankingString() string {
	parts := make([]string, len(r.Ranking))
	for i, m := range r.Ranking {
		parts[i] = string(m)
	}
	return strings.Join(parts, " < ")
}

// SynthCharResult is the synthetic-workload characterization: how the
// mechanism ranking moves across the scenario space the presets span.
type SynthCharResult struct {
	Rows []SynthCharRow
}

// SynthChar replays TPC-B and every shipped synthetic preset under every
// mechanism family — the paper's four plus HTMSPEC and CHAIN — (through
// the shared workbench, so the TPC-B replays are the same cached runs the
// figures use) and ranks the mechanisms per scenario. This is the
// experiment behind the claim that the scenario axes matter: the ranking
// that holds on the TPC mixes does not hold across the synthetic space.
func SynthChar(w *Workbench) SynthCharResult {
	var res SynthCharResult
	for _, name := range SynthWorkloads() {
		res.Rows = append(res.Rows, synthCharRow(w, name))
	}
	return res
}

// synthCharRow characterizes one scenario — the per-scenario unit
// RunAllParallel fans out over.
func synthCharRow(w *Workbench, name string) SynthCharRow {
	c := CompareMechs(w, name, sched.AllMechanisms)
	ranking := make([]sched.Mechanism, len(c.Rows))
	perm := make([]int, len(c.Rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return c.Rows[perm[a]].CyclesN < c.Rows[perm[b]].CyclesN
	})
	for i, p := range perm {
		ranking[i] = c.Rows[p].Mechanism
	}
	return SynthCharRow{Workload: name, Rows: c.Rows, Ranking: ranking}
}

// RankingDiffersFromFirst reports whether any scenario ranks the
// mechanisms differently than the first (reference) row.
func (r SynthCharResult) RankingDiffersFromFirst() bool {
	if len(r.Rows) == 0 {
		return false
	}
	ref := r.Rows[0].RankingString()
	for _, row := range r.Rows[1:] {
		if row.RankingString() != ref {
			return true
		}
	}
	return false
}

// Render prints the characterization: the per-scenario metric table, then
// the induced rankings.
func (r SynthCharResult) Render(out io.Writer) {
	section(out, "Synthetic workloads: mechanism outcomes across scenarios")
	t := &stats.Table{Header: []string{"workload", "mechanism", "cycles norm", "latency norm", "L1-I norm", "L1-I mpki", "sw/ki"}}
	for _, row := range r.Rows {
		for _, m := range row.Rows {
			t.AddRow(row.Workload, string(m.Mechanism),
				stats.F(m.CyclesN, 3), stats.F(m.LatencyN, 3),
				stats.F(m.L1IN, 3), stats.F(m.L1I, 2),
				stats.F(m.SwitchesPerKI, 3))
		}
	}
	t.Render(out)

	section(out, "Synthetic workloads: mechanism ranking (fastest first)")
	rt := &stats.Table{Header: []string{"workload", "ranking"}}
	for _, row := range r.Rows {
		rt.AddRow(row.Workload, row.RankingString())
	}
	rt.Render(out)
}
