package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the renderer golden files under testdata/")

// goldenIDs maps a section title prefix to its golden file, in the report's
// presentation order. Sections sharing a prefix (e.g. Figure 2's three
// workloads) concatenate into one file.
var goldenIDs = []struct{ prefix, id string }{
	{"Table 1:", "table1"},
	{"Figure 1:", "fig1"},
	{"Figure 2:", "fig2"},
	{"Figure 3:", "fig3"},
	{"Figure 4:", "fig4"},
	{"Figure 5:", "fig5"},
	{"Figure 6:", "fig6"},
	{"Figure 7:", "fig7"},
	{"Figure 8a:", "fig8a"},
	{"Figure 8b:", "fig8b"},
	{"Figure 9:", "fig9"},
	{"Ablations", "ablations"},
	{"Synthetic workloads:", "synthchar"},
}

// splitReport cuts a RunAll report into per-golden-id chunks. Every section
// starts with "\n<title>\n====...\n" (see section()); a chunk runs from the
// newline preceding its title to the start of the next section.
func splitReport(t *testing.T, report []byte) map[string][]byte {
	t.Helper()
	lines := bytes.SplitAfter(report, []byte("\n"))
	isRule := func(l []byte) bool {
		l = bytes.TrimRight(l, "\n")
		if len(l) == 0 {
			return false
		}
		for _, c := range l {
			if c != '=' {
				return false
			}
		}
		return true
	}
	idOf := func(title []byte) string {
		for _, g := range goldenIDs {
			if bytes.HasPrefix(title, []byte(g.prefix)) {
				return g.id
			}
		}
		t.Fatalf("section title %q matches no golden id", title)
		return ""
	}

	// Offsets of each line start.
	offsets := make([]int, len(lines)+1)
	for i, l := range lines {
		offsets[i+1] = offsets[i] + len(l)
	}

	type boundary struct {
		start int // includes the leading "\n" the section printed
		id    string
	}
	var bounds []boundary
	for i := 0; i+1 < len(lines); i++ {
		if isRule(lines[i+1]) && len(bytes.TrimRight(lines[i], "\n")) > 0 {
			start := offsets[i]
			if start > 0 && report[start-1] == '\n' {
				start-- // the blank separator belongs to this section
			}
			bounds = append(bounds, boundary{start: start, id: idOf(lines[i])})
		}
	}
	if len(bounds) == 0 {
		t.Fatal("no sections found in report")
	}
	out := make(map[string][]byte)
	for i, b := range bounds {
		end := len(report)
		if i+1 < len(bounds) {
			end = bounds[i+1].start
		}
		out[b.id] = append(out[b.id], report[b.start:end]...)
	}
	return out
}

// TestRenderersMatchGoldens locks every renderer's QuickParams() output to
// the committed goldens, so a concurrency (or any other) refactor cannot
// silently change reported numbers. Regenerate with:
//
//	go test ./internal/exp -run TestRenderersMatchGoldens -update
func TestRenderersMatchGoldens(t *testing.T) {
	if raceEnabled {
		t.Skip("goldens encode QuickParams() output; skipped under -race for time (covered by the plain test tier)")
	}
	chunks := splitReport(t, serialQuickReport())
	if len(chunks) != len(goldenIDs) {
		t.Errorf("report has %d distinct sections, want %d", len(chunks), len(goldenIDs))
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range goldenIDs {
		path := filepath.Join("testdata", g.id+".golden")
		got, ok := chunks[g.id]
		if !ok {
			t.Errorf("report is missing the %s section", g.id)
			continue
		}
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update to regenerate): %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s output changed from golden %s: %s\n(regenerate with -update if intended)",
				g.id, path, firstDiff(want, got))
		}
	}
}
