package stats

import "sort"

// OverlapBucket labels the appearance-frequency bands of Figure 2's pies.
type OverlapBucket int

// The five frequency bands: a block appearing in all instances is Always;
// one appearing in 95% of them is B90to100; and so on.
const (
	B0to30 OverlapBucket = iota
	B30to60
	B60to90
	B90to100
	Always

	NumBuckets = 5
)

// BucketLabels are the Figure 2 legend strings.
var BucketLabels = [NumBuckets]string{"[0,30)%", "[30,60)%", "[60,90)%", "[90,100)%", "100%"}

// bucketOf classifies an appearance frequency in (0, 1].
func bucketOf(freq float64) OverlapBucket {
	switch {
	case freq >= 1.0:
		return Always
	case freq >= 0.9:
		return B90to100
	case freq >= 0.6:
		return B60to90
	case freq >= 0.3:
		return B30to60
	default:
		return B0to30
	}
}

// OverlapResult is one Figure 2 pie: how the union footprint of a group of
// instances distributes over appearance-frequency bands.
type OverlapResult struct {
	// Shares[b] is the fraction of the union footprint in bucket b;
	// the shares sum to 1 (for a non-empty footprint).
	Shares [NumBuckets]float64
	// FootprintBlocks is the union footprint size in 64-byte blocks.
	FootprintBlocks int
	// Instances is the number of instances analyzed.
	Instances int
}

// CommonShare returns the fraction of the footprint present in at least 90%
// of instances (the two darkest slices) — the paper's headline "overlap"
// number (e.g. "98% overlap in instructions" for TradeStatus).
func (r OverlapResult) CommonShare() float64 {
	return r.Shares[B90to100] + r.Shares[Always]
}

// RareShare returns the lightest slice ([0,30)) — divergent code such as
// TPC-B insert's allocate-page path.
func (r OverlapResult) RareShare() float64 { return r.Shares[B0to30] }

// Overlap computes the Figure 2 bucketing for a group of per-instance
// footprints (sets of block addresses).
func Overlap(footprints []map[uint64]struct{}) OverlapResult {
	res := OverlapResult{Instances: len(footprints)}
	if len(footprints) == 0 {
		return res
	}
	counts := make(map[uint64]int)
	for _, fp := range footprints {
		for a := range fp {
			counts[a]++
		}
	}
	res.FootprintBlocks = len(counts)
	if len(counts) == 0 {
		return res
	}
	n := float64(len(footprints))
	for _, c := range counts {
		res.Shares[bucketOf(float64(c)/n)]++
	}
	for b := range res.Shares {
		res.Shares[b] /= float64(res.FootprintBlocks)
	}
	return res
}

// FootprintCounter incrementally accumulates block appearance counts and
// per-instance access counts without retaining the footprints themselves —
// the streaming form used when instance counts are large.
type FootprintCounter struct {
	appearances map[uint64]int // instances containing each block
	accesses    map[uint64]uint64
	instances   int
}

// NewFootprintCounter returns an empty counter.
func NewFootprintCounter() *FootprintCounter {
	return &FootprintCounter{
		appearances: make(map[uint64]int),
		accesses:    make(map[uint64]uint64),
	}
}

// AddInstance folds one instance's accesses (block address → access count)
// into the counter.
func (c *FootprintCounter) AddInstance(accesses map[uint64]uint64) {
	c.instances++
	for a, n := range accesses {
		c.appearances[a]++
		c.accesses[a] += n
	}
}

// Instances returns the number of instances folded in.
func (c *FootprintCounter) Instances() int { return c.instances }

// Overlap produces the Figure 2 bucketing from the accumulated counts.
func (c *FootprintCounter) Overlap() OverlapResult {
	res := OverlapResult{Instances: c.instances, FootprintBlocks: len(c.appearances)}
	if c.instances == 0 || len(c.appearances) == 0 {
		return res
	}
	n := float64(c.instances)
	for _, cnt := range c.appearances {
		res.Shares[bucketOf(float64(cnt)/n)]++
	}
	for b := range res.Shares {
		res.Shares[b] /= float64(len(c.appearances))
	}
	return res
}

// ReuseBand is one x-axis band of Figure 3: blocks grouped by
// cross-instance commonality, with their average within-instance reuse.
type ReuseBand struct {
	Bucket OverlapBucket
	// Blocks is the number of distinct blocks in the band.
	Blocks int
	// AvgReuse is the mean, over blocks in the band, of (total accesses /
	// instances containing the block) — Figure 3's y-axis.
	AvgReuse float64
}

// ReuseProfile computes Figure 3's "average number of accesses to each
// memory address per instance", grouped by commonality band (the paper
// plots per-address points ordered by commonality; the bands summarize the
// same ordering textually).
func (c *FootprintCounter) ReuseProfile() []ReuseBand {
	type acc struct {
		blocks int
		sum    float64
	}
	var bands [NumBuckets]acc
	n := float64(c.instances)
	for a, cnt := range c.appearances {
		b := bucketOf(float64(cnt) / n)
		bands[b].blocks++
		bands[b].sum += float64(c.accesses[a]) / float64(cnt)
	}
	out := make([]ReuseBand, 0, NumBuckets)
	for b := 0; b < NumBuckets; b++ {
		band := ReuseBand{Bucket: OverlapBucket(b), Blocks: bands[b].blocks}
		if bands[b].blocks > 0 {
			band.AvgReuse = bands[b].sum / float64(bands[b].blocks)
		}
		out = append(out, band)
	}
	return out
}

// TopBlocks returns the n most-accessed blocks (address, total accesses),
// most-accessed first — used to identify the common hot data (index roots,
// lock table, metadata) in reports.
func (c *FootprintCounter) TopBlocks(n int) []BlockCount {
	out := make([]BlockCount, 0, len(c.accesses))
	for a, cnt := range c.accesses {
		out = append(out, BlockCount{Addr: a, Count: cnt})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Addr < out[j].Addr
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// BlockCount pairs a block address with an access count.
type BlockCount struct {
	Addr  uint64
	Count uint64
}
