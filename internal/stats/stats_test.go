package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func fp(addrs ...uint64) map[uint64]struct{} {
	m := make(map[uint64]struct{}, len(addrs))
	for _, a := range addrs {
		m[a] = struct{}{}
	}
	return m
}

func TestOverlapAllCommon(t *testing.T) {
	res := Overlap([]map[uint64]struct{}{
		fp(1, 2, 3), fp(1, 2, 3), fp(1, 2, 3),
	})
	if res.Shares[Always] != 1.0 {
		t.Errorf("Shares = %v, want all in Always", res.Shares)
	}
	if res.CommonShare() != 1.0 || res.RareShare() != 0 {
		t.Errorf("CommonShare=%v RareShare=%v", res.CommonShare(), res.RareShare())
	}
	if res.FootprintBlocks != 3 || res.Instances != 3 {
		t.Errorf("footprint=%d instances=%d", res.FootprintBlocks, res.Instances)
	}
}

func TestOverlapBucketBoundaries(t *testing.T) {
	// 10 instances: block A in all 10 (Always), B in 9 (B90to100),
	// C in 6 (B60to90), D in 3 (B30to60), E in 1 (B0to30).
	var fps []map[uint64]struct{}
	for i := 0; i < 10; i++ {
		f := fp(0xA)
		if i < 9 {
			f[0xB] = struct{}{}
		}
		if i < 6 {
			f[0xC] = struct{}{}
		}
		if i < 3 {
			f[0xD] = struct{}{}
		}
		if i < 1 {
			f[0xE] = struct{}{}
		}
		fps = append(fps, f)
	}
	res := Overlap(fps)
	want := [NumBuckets]float64{0.2, 0.2, 0.2, 0.2, 0.2}
	for b := range want {
		if diff := res.Shares[b] - want[b]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("bucket %s share = %v, want %v", BucketLabels[b], res.Shares[b], want[b])
		}
	}
}

func TestOverlapEmpty(t *testing.T) {
	res := Overlap(nil)
	if res.FootprintBlocks != 0 || res.CommonShare() != 0 {
		t.Errorf("empty overlap = %+v", res)
	}
	res = Overlap([]map[uint64]struct{}{{}, {}})
	if res.FootprintBlocks != 0 {
		t.Errorf("footprint of empty instances = %d", res.FootprintBlocks)
	}
}

func TestFootprintCounterMatchesOverlap(t *testing.T) {
	f := func(seed int64) bool {
		// Build random instances both ways and compare.
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := rng % n
			if v < 0 {
				v = -v
			}
			return v
		}
		var fps []map[uint64]struct{}
		c := NewFootprintCounter()
		for i := 0; i < 12; i++ {
			inst := make(map[uint64]uint64)
			for j := 0; j < 30; j++ {
				a := uint64(next(40)) * 64
				inst[a]++
			}
			set := make(map[uint64]struct{}, len(inst))
			for a := range inst {
				set[a] = struct{}{}
			}
			fps = append(fps, set)
			c.AddInstance(inst)
		}
		want := Overlap(fps)
		got := c.Overlap()
		if got.FootprintBlocks != want.FootprintBlocks || got.Instances != want.Instances {
			return false
		}
		for b := range got.Shares {
			if d := got.Shares[b] - want.Shares[b]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReuseProfile(t *testing.T) {
	c := NewFootprintCounter()
	// Block 0x40 in every instance with 10 accesses each;
	// block 0x80 in one instance with 2 accesses.
	for i := 0; i < 4; i++ {
		inst := map[uint64]uint64{0x40: 10}
		if i == 0 {
			inst[0x80] = 2
		}
		c.AddInstance(inst)
	}
	bands := c.ReuseProfile()
	if len(bands) != NumBuckets {
		t.Fatalf("bands = %d", len(bands))
	}
	if bands[Always].Blocks != 1 || bands[Always].AvgReuse != 10 {
		t.Errorf("Always band = %+v", bands[Always])
	}
	if bands[B0to30].Blocks != 1 || bands[B0to30].AvgReuse != 2 {
		t.Errorf("B0to30 band = %+v", bands[B0to30])
	}
	// The Figure 3 shape: common blocks more reused within an instance.
	if bands[Always].AvgReuse <= bands[B0to30].AvgReuse {
		t.Error("common band not hotter than rare band")
	}
}

func TestTopBlocks(t *testing.T) {
	c := NewFootprintCounter()
	c.AddInstance(map[uint64]uint64{0x40: 5, 0x80: 50, 0xC0: 7})
	top := c.TopBlocks(2)
	if len(top) != 2 || top[0].Addr != 0x80 || top[1].Addr != 0xC0 {
		t.Errorf("TopBlocks = %+v", top)
	}
	if got := c.TopBlocks(10); len(got) != 3 {
		t.Errorf("TopBlocks(10) returned %d", len(got))
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		f float64
		b OverlapBucket
	}{
		{1.0, Always}, {0.99, B90to100}, {0.9, B90to100},
		{0.89, B60to90}, {0.6, B60to90}, {0.59, B30to60},
		{0.3, B30to60}, {0.29, B0to30}, {0.01, B0to30},
	}
	for _, c := range cases {
		if got := bucketOf(c.f); got != c.b {
			t.Errorf("bucketOf(%v) = %v, want %v", c.f, got, c.b)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", F(1.5, 2))
	tab.AddRow("b", Pct(0.25))
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Demo", "name", "alpha", "1.50", "25.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if N(5) != "5" || U(7) != "7" {
		t.Error("N/U wrong")
	}
	if Norm(2, 4) != "0.500" {
		t.Errorf("Norm = %q", Norm(2, 4))
	}
	if Norm(1, 0) != "n/a" {
		t.Errorf("Norm by zero = %q", Norm(1, 0))
	}
}
