// Package stats implements the analyses of the paper's memory
// characterization study (Section 2): footprint-overlap bucketing
// (Figure 2's pies), within-instance reuse profiles (Figure 3), and the
// text-table rendering shared by every experiment report and sweep emitter.
package stats
