package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal text-table renderer for experiment reports: left-
// aligned first column, right-aligned numeric columns, rendered with
// column-width padding.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row; values are used as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				b.WriteString(pad(c, widths[i], false))
			} else {
				b.WriteString(pad(c, widths[i], true))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	sp := strings.Repeat(" ", w-len(s))
	if right {
		return sp + s
	}
	return s + sp
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// N formats an integer.
func N(v int) string { return fmt.Sprintf("%d", v) }

// U formats a uint64.
func U(v uint64) string { return fmt.Sprintf("%d", v) }

// Norm formats a value normalized over a baseline (the paper's
// "normalized over Baseline (=1 on Y-axis)" convention).
func Norm(v, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v/base)
}
