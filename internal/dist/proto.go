package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"

	"addict/internal/store"
	"addict/internal/sweep"
)

// Wire protocol (all POST, JSON bodies, mounted under /dist/v1/). Leases
// carry unit *indexes*, not unit payloads: the coordinator ships the fully
// resolved spec once at join, both sides expand it to the same []Unit, and
// every subsequent message names units by (index, id). The ID doubles as
// an end-to-end check that both expansions agree; GridHash catches version
// skew the ID alone cannot (the ID omits seed, scale, and trace windows).
const (
	pathJoin     = "/dist/v1/join"
	pathLease    = "/dist/v1/lease"
	pathComplete = "/dist/v1/complete"
	pathSummary  = "/dist/v1/summary"
)

// joinRequest registers a worker with the coordinator.
type joinRequest struct {
	// Name is the worker's self-reported label (hostname, flag), kept for
	// the counter summary; the coordinator assigns the authoritative ID.
	Name string `json:"name,omitempty"`
}

type joinResponse struct {
	// WorkerID is the coordinator-assigned identity the worker presents on
	// every subsequent request.
	WorkerID string `json:"worker_id"`
	// Spec is the fully resolved sweep spec (every defaulted parameter
	// spelled out), so the worker's local expansion and artifact recipe
	// cannot drift from the coordinator's.
	Spec sweep.Spec `json:"spec"`
	// Units is the expanded grid size, GridHash the digest over the
	// resolved spec plus every unit ID. A worker whose local expansion
	// disagrees with either must refuse to compute.
	Units    int    `json:"units"`
	GridHash string `json:"grid_hash"`
}

// leaseRequest asks for up to Max units to compute.
type leaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
	// Store piggybacks the worker's artifact-store counters so the
	// coordinator's summary can report per-worker hit rates without a
	// separate metrics channel.
	Store *store.Stats `json:"store,omitempty"`
}

// leaseUnit names one leased unit by grid position and stable ID.
type leaseUnit struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
}

type leaseResponse struct {
	Units []leaseUnit `json:"units,omitempty"`
	// Done means every unit is complete: the worker should exit cleanly.
	Done bool `json:"done,omitempty"`
	// Abort is a fatal run error (retry budget exhausted, emitter failure,
	// coordinator cancelled): the worker should stop and report it.
	Abort string `json:"abort,omitempty"`
	// WaitMillis hints how long to sleep before the next lease request
	// when no unit is currently leasable.
	WaitMillis int `json:"wait_ms,omitempty"`
}

// completeRequest reports one unit's outcome: Metrics on success, Error on
// a compute failure (the coordinator decides requeue vs abort).
type completeRequest struct {
	WorkerID string         `json:"worker_id"`
	Index    int            `json:"index"`
	ID       string         `json:"id"`
	Metrics  *sweep.Metrics `json:"metrics,omitempty"`
	Error    string         `json:"error,omitempty"`
	Store    *store.Stats   `json:"store,omitempty"`
}

type completeResponse struct {
	// Duplicate reports that the unit was already complete when this
	// result arrived (straggler re-dispatch or an expired-lease revenant);
	// the result was discarded, which is safe because units are
	// deterministic. Informational only.
	Duplicate bool `json:"duplicate,omitempty"`
}

// gridHash digests the resolved spec and the expanded unit IDs. Metrics
// travel as JSON float64 (exact round-trip in Go), so two processes that
// agree on this hash and share the artifact recipe produce byte-identical
// rows for the same unit.
func gridHash(spec sweep.Spec, units []sweep.Unit) string {
	h := sha256.New()
	b, _ := json.Marshal(spec)
	h.Write(b)
	h.Write([]byte{0})
	for _, u := range units {
		io.WriteString(h, u.ID)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
