package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"addict/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the dist golden files under testdata/")

// testSpec is a 4-unit grid (2 mechanisms x 2 thread counts, one workload)
// at tiny trace counts — small enough that the integration tests simulate
// it a few times over, large enough that two workers genuinely interleave.
func testSpec() sweep.Spec {
	return sweep.Spec{
		Seed:          7,
		Scale:         0.1,
		ProfileTraces: 120,
		EvalTraces:    60,
		Workloads:     []string{"TPC-B"},
		Mechanisms:    []string{"Baseline", "ADDICT"},
		Threads:       []int{4, 8},
	}
}

// serialBytes runs the spec through the single-process engine — the
// reference output every distributed run must reproduce byte for byte.
func serialBytes(t *testing.T, spec sweep.Spec, format string) []byte {
	t.Helper()
	var buf bytes.Buffer
	em, err := sweep.NewEmitter(format, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.RunCtx(context.Background(), spec, em, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := max(i-60, 0)
			return fmt.Sprintf("byte %d: %q vs %q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// runDistributed drives one full coordinator + N workers run over a real
// HTTP listener and returns the merged output bytes and final summary.
// Worker errors are returned per worker; the caller decides which matter.
func runDistributed(t *testing.T, spec sweep.Spec, opts Options, workers []WorkerOptions, format string) ([]byte, Summary, []error) {
	t.Helper()
	c, err := NewCoordinator(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var buf bytes.Buffer
	em, err := sweep.NewEmitter(format, &buf)
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- c.Run(context.Background(), em) }()

	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, wo := range workers {
		wg.Add(1)
		go func(i int, wo WorkerOptions) {
			defer wg.Done()
			_, errs[i] = Work(context.Background(), srv.URL, wo)
		}(i, wo)
	}
	wg.Wait()
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator run: %v (worker errors: %v)", err, errs)
	}
	return buf.Bytes(), c.Summary(), errs
}

// TestDistTwoWorkersMatchesSerial is the tentpole guarantee: a coordinator
// plus two workers rendezvousing on one store directory must merge to the
// exact bytes the single-process engine emits, locked by a golden file.
func TestDistTwoWorkersMatchesSerial(t *testing.T) {
	spec := testSpec()
	want := serialBytes(t, spec, "jsonl")
	if len(want) == 0 {
		t.Fatal("serial sweep produced no output")
	}

	storeDir := t.TempDir()
	got, sum, errs := runDistributed(t, spec, Options{LeaseBatch: 1}, []WorkerOptions{
		{Name: "a", StoreDir: storeDir, Workers: 2},
		{Name: "b", StoreDir: storeDir, Workers: 2},
	}, "jsonl")
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed output diverges from serial: %s", firstDiff(want, got))
	}
	if sum.Completed != sum.Units || !sum.Done {
		t.Errorf("summary reports %d/%d done=%v", sum.Completed, sum.Units, sum.Done)
	}
	var workerDone uint64
	for _, w := range sum.Workers {
		workerDone += w.Completed
	}
	if workerDone != uint64(sum.Units) {
		t.Errorf("per-worker completions sum to %d, want %d", workerDone, sum.Units)
	}

	golden := filepath.Join("testdata", "two_workers.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantGolden, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, wantGolden) {
		t.Errorf("merged output diverges from golden %s: %s", golden, firstDiff(wantGolden, got))
	}
}

// TestDistWorkerCrashMidUnit kills a worker after it has leased units but
// before it completes any — the crash window the lease timeout exists for —
// and asserts the grid still finishes, the leases were requeued, and the
// merged report is still byte-identical to serial.
func TestDistWorkerCrashMidUnit(t *testing.T) {
	spec := testSpec()
	want := serialBytes(t, spec, "jsonl")

	c, err := NewCoordinator(spec, Options{
		LeaseTimeout:   200 * time.Millisecond,
		StragglerAfter: -1, // isolate the expiry path: no speculative rescue
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var buf bytes.Buffer
	em, err := sweep.NewEmitter("jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- c.Run(context.Background(), em) }()

	// The victim cancels itself inside the lease hook: units are leased to
	// it, nothing will ever be completed or reported — exactly what the
	// coordinator observes when a worker process dies.
	victimCtx, kill := context.WithCancel(context.Background())
	leased := make(chan struct{})
	var once sync.Once
	storeDir := t.TempDir()
	victimErr := make(chan error, 1)
	go func() {
		_, err := Work(victimCtx, srv.URL, WorkerOptions{
			Name:     "victim",
			StoreDir: storeDir,
			OnLease: func(ids []string) {
				kill()
				once.Do(func() { close(leased) })
			},
		})
		victimErr <- err
	}()
	select {
	case <-leased:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never leased a unit")
	}
	if err := <-victimErr; err == nil {
		t.Fatal("victim exited cleanly; want a cancellation error")
	}

	// The survivor joins only after the victim is dead, so the victim's
	// leased units must come back through expiry.
	_, err = Work(context.Background(), srv.URL, WorkerOptions{
		Name: "survivor", StoreDir: storeDir, Workers: 2,
	})
	if err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator run: %v", err)
	}

	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("post-crash merged output diverges from serial: %s", firstDiff(want, got))
	}
	sum := c.Summary()
	if sum.Requeues == 0 {
		t.Error("crash left no requeues; the expiry path did not fire")
	}
	if v, ok := sum.Workers["w1"]; !ok || v.Requeued == 0 {
		t.Errorf("victim's counters do not show the requeue: %+v", sum.Workers)
	}
}

// --- protocol-level tests over a fake clock (no simulation) ---

// postAs drives one handler round-trip directly (no listener), so the
// injected clock is race-free.
func postAs(t *testing.T, h http.Handler, path string, in, out any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK && out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return rec
}

func newTestCoordinator(t *testing.T, opts Options) (*Coordinator, *time.Time) {
	t.Helper()
	c, err := NewCoordinator(testSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	return c, &now
}

func join(t *testing.T, h http.Handler, name string) string {
	t.Helper()
	var jr joinResponse
	postAs(t, h, pathJoin, joinRequest{Name: name}, &jr)
	if jr.WorkerID == "" {
		t.Fatal("join assigned no worker id")
	}
	return jr.WorkerID
}

func TestLeaseExpiryRequeuesToNextWorker(t *testing.T) {
	c, now := newTestCoordinator(t, Options{LeaseTimeout: time.Minute, LeaseBatch: 2, StragglerAfter: -1})
	h := c.Handler()
	w1 := join(t, h, "")
	w2 := join(t, h, "")

	var lr leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w1, Max: 2}, &lr)
	if len(lr.Units) != 2 {
		t.Fatalf("w1 leased %d units, want 2", len(lr.Units))
	}
	// w1 says nothing for a full lease timeout: its units return to the
	// pool and the next lease hands them to w2 (batch covers the grid).
	*now = now.Add(2 * time.Minute)
	var lr2 leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w2, Max: 4}, &lr2)
	if len(lr2.Units) != 2 {
		t.Fatalf("w2 leased %d units after expiry, want 2 (batch cap)", len(lr2.Units))
	}
	if got := c.Summary().Requeues; got != 2 {
		t.Errorf("requeues = %d, want 2", got)
	}
}

func TestFailureBackoffThenAbortAfterRetryBudget(t *testing.T) {
	c, now := newTestCoordinator(t, Options{
		LeaseTimeout: time.Hour, MaxRetries: 2, RetryBackoff: time.Second, StragglerAfter: -1,
	})
	h := c.Handler()
	w1 := join(t, h, "")

	fail := func(idx int, id string) {
		postAs(t, h, pathComplete, completeRequest{
			WorkerID: w1, Index: idx, ID: id, Error: "boom",
		}, &completeResponse{})
	}
	var lr leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w1, Max: 1}, &lr)
	u := lr.Units[0]

	// First failure: the unit enters a backoff window, so an immediate
	// re-lease must hand out a different unit, not the failed one.
	fail(u.Index, u.ID)
	var lr2 leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w1, Max: 1}, &lr2)
	if len(lr2.Units) == 0 || lr2.Units[0].Index == u.Index {
		t.Fatalf("re-lease during backoff returned %+v, want a different unit", lr2.Units)
	}
	// Past the backoff the failed unit is leasable again; two more
	// failures exhaust MaxRetries=2 and abort the run.
	*now = now.Add(time.Minute)
	var lr3 leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w1, Max: 4}, &lr3)
	found := false
	for _, lu := range lr3.Units {
		if lu.Index == u.Index {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed unit not re-leased after backoff: %+v", lr3.Units)
	}
	fail(u.Index, u.ID)
	*now = now.Add(time.Minute)
	fail(u.Index, u.ID)

	var lr4 leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w1, Max: 1}, &lr4)
	if lr4.Abort == "" || !strings.Contains(lr4.Abort, "failed 3 times") {
		t.Fatalf("lease after retry exhaustion = %+v, want abort", lr4)
	}
	var em nullEmitter
	if err := c.Run(context.Background(), &em); err == nil {
		t.Error("Run returned nil after abort")
	}
}

func TestStragglerRedispatchFirstCompletionWins(t *testing.T) {
	c, now := newTestCoordinator(t, Options{
		LeaseTimeout: time.Hour, LeaseBatch: 4, StragglerAfter: time.Minute,
	})
	h := c.Handler()
	w1 := join(t, h, "")
	w2 := join(t, h, "")

	var lr leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w1, Max: 4}, &lr)
	if len(lr.Units) != 4 {
		t.Fatalf("w1 leased %d units, want the whole grid", len(lr.Units))
	}
	// Young leases: the idle worker waits rather than duplicating.
	var lr2 leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w2, Max: 1}, &lr2)
	if len(lr2.Units) != 0 || lr2.WaitMillis == 0 {
		t.Fatalf("idle worker got %+v before StragglerAfter, want a wait hint", lr2)
	}
	// Aged leases: the idle worker is put on a backup copy of one unit.
	*now = now.Add(2 * time.Minute)
	var lr3 leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w2, Max: 1}, &lr3)
	if len(lr3.Units) != 1 {
		t.Fatalf("idle worker got %+v after StragglerAfter, want one backup unit", lr3)
	}
	u := lr3.Units[0]

	m := sweep.Metrics{Makespan: 42}
	var cr completeResponse
	postAs(t, h, pathComplete, completeRequest{WorkerID: w2, Index: u.Index, ID: u.ID, Metrics: &m}, &cr)
	if cr.Duplicate {
		t.Error("first completion flagged duplicate")
	}
	var cr2 completeResponse
	postAs(t, h, pathComplete, completeRequest{WorkerID: w1, Index: u.Index, ID: u.ID, Metrics: &m}, &cr2)
	if !cr2.Duplicate {
		t.Error("second completion not flagged duplicate")
	}
	sum := c.Summary()
	if sum.Stragglers != 1 || sum.Duplicates != 1 || sum.Completed != 1 {
		t.Errorf("summary = stragglers %d duplicates %d completed %d, want 1/1/1",
			sum.Stragglers, sum.Duplicates, sum.Completed)
	}
}

func TestCompletionRefreshesWorkerLeases(t *testing.T) {
	c, now := newTestCoordinator(t, Options{LeaseTimeout: time.Minute, LeaseBatch: 4, StragglerAfter: -1})
	h := c.Handler()
	w1 := join(t, h, "")
	w2 := join(t, h, "")

	var lr leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w1, Max: 4}, &lr)
	// 50s in (within the lease) w1 completes one unit; that heartbeat must
	// push its remaining deadlines out, so at 90s nothing has expired.
	*now = now.Add(50 * time.Second)
	u := lr.Units[0]
	m := sweep.Metrics{Makespan: 1}
	postAs(t, h, pathComplete, completeRequest{WorkerID: w1, Index: u.Index, ID: u.ID, Metrics: &m}, &completeResponse{})
	*now = now.Add(40 * time.Second)
	var lr2 leaseResponse
	postAs(t, h, pathLease, leaseRequest{WorkerID: w2, Max: 4}, &lr2)
	if len(lr2.Units) != 0 {
		t.Fatalf("live worker's leases expired despite heartbeat: w2 got %+v", lr2.Units)
	}
	if got := c.Summary().Requeues; got != 0 {
		t.Errorf("requeues = %d, want 0", got)
	}
}

func TestJoinRequiredBeforeLease(t *testing.T) {
	c, _ := newTestCoordinator(t, Options{})
	rec := postAs(t, c.Handler(), pathLease, leaseRequest{WorkerID: "ghost", Max: 1}, nil)
	if rec.Code != http.StatusForbidden {
		t.Errorf("lease from unjoined worker = %d, want 403", rec.Code)
	}
}

func TestCompleteRejectsIDMismatch(t *testing.T) {
	c, _ := newTestCoordinator(t, Options{})
	h := c.Handler()
	w1 := join(t, h, "")
	m := sweep.Metrics{}
	rec := postAs(t, h, pathComplete, completeRequest{WorkerID: w1, Index: 0, ID: "wrong", Metrics: &m}, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("completion with wrong unit id = %d, want 400", rec.Code)
	}
}

type nullEmitter struct{}

func (nullEmitter) Begin([]sweep.Unit) error             { return nil }
func (nullEmitter) Emit(sweep.Unit, sweep.Metrics) error { return nil }
func (nullEmitter) End() error                           { return nil }
