package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"addict/internal/pool"
	"addict/internal/store"
	"addict/internal/sweep"
)

// WorkerOptions configure one worker process (or goroutine).
type WorkerOptions struct {
	// Name is a self-reported label for the coordinator's counter summary
	// (hostname, flag value); the coordinator assigns the real identity.
	Name string
	// StoreDir attaches the shared on-disk artifact store ("" = memory
	// only — correct but cold). StoreBudget caps it (0 = unbounded).
	StoreDir    string
	StoreBudget int64
	// Workers bounds artifact-generation parallelism inside this worker
	// (values below 1 select all CPUs, the package-wide convention).
	Workers int
	// LeaseBatch is how many units to request per lease (0 = let the
	// coordinator pick).
	LeaseBatch int
	// Retries bounds consecutive transport failures (coordinator
	// unreachable, 5xx) before giving up; RetryBase seeds the pool.Backoff
	// schedule between them. Defaults: 5 attempts, 200ms base.
	Retries   int
	RetryBase time.Duration
	// OnLease, when set, observes each granted lease's unit IDs before
	// computation starts — a progress hook, and the injection point the
	// crash tests use to kill a worker mid-unit.
	OnLease func(ids []string)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	o.Workers = pool.NormWorkers(o.Workers)
	if o.Retries <= 0 {
		o.Retries = 5
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 200 * time.Millisecond
	}
	return o
}

// Work runs one worker against the coordinator at baseURL until the grid
// is done (returns the number of units this worker completed), the
// coordinator aborts the run, or ctx is cancelled. It joins, expands the
// coordinator's resolved spec locally — refusing to compute if the
// expansion disagrees with the coordinator's grid hash (version skew) —
// then loops lease → sweep.RunUnit → complete. Compute failures are
// reported, not fatal here: the coordinator owns the retry budget.
func Work(ctx context.Context, baseURL string, opts WorkerOptions) (int, error) {
	opts = opts.withDefaults()
	base := strings.TrimRight(baseURL, "/")
	hc := &http.Client{}

	var join joinResponse
	if err := postJSON(ctx, hc, base+pathJoin, joinRequest{Name: opts.Name}, &join, opts); err != nil {
		return 0, fmt.Errorf("dist: join: %w", err)
	}
	units, err := join.Spec.Expand()
	if err != nil {
		return 0, fmt.Errorf("dist: expand coordinator spec: %w", err)
	}
	if len(units) != join.Units || gridHash(join.Spec, units) != join.GridHash {
		return 0, fmt.Errorf("dist: local expansion (%d units) disagrees with coordinator grid %s (%d units): version skew, refusing to compute",
			len(units), join.GridHash, join.Units)
	}

	arts := sweep.NewArtifacts(join.Spec.Seed, join.Spec.Scale,
		join.Spec.ProfileTraces, join.Spec.EvalTraces, opts.Workers)
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir, opts.StoreBudget)
		if err != nil {
			return 0, fmt.Errorf("dist: open store: %w", err)
		}
		arts.SetStore(st)
	}
	storeStats := func() *store.Stats {
		if s, ok := arts.StoreStats(); ok {
			return &s
		}
		return nil
	}

	completed := 0
	for {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		var lr leaseResponse
		req := leaseRequest{WorkerID: join.WorkerID, Max: opts.LeaseBatch, Store: storeStats()}
		if err := postJSON(ctx, hc, base+pathLease, req, &lr, opts); err != nil {
			return completed, fmt.Errorf("dist: lease: %w", err)
		}
		switch {
		case lr.Abort != "":
			return completed, fmt.Errorf("dist: run aborted by coordinator: %s", lr.Abort)
		case lr.Done:
			return completed, nil
		case len(lr.Units) == 0:
			wait := time.Duration(lr.WaitMillis) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return completed, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		if opts.OnLease != nil {
			ids := make([]string, len(lr.Units))
			for i, lu := range lr.Units {
				ids[i] = lu.ID
			}
			opts.OnLease(ids)
		}
		for _, lu := range lr.Units {
			if lu.Index < 0 || lu.Index >= len(units) || units[lu.Index].ID != lu.ID {
				return completed, fmt.Errorf("dist: lease names unit %d=%q, local grid disagrees", lu.Index, lu.ID)
			}
			m, runErr := sweep.RunUnit(ctx, arts, units[lu.Index])
			if runErr != nil && ctx.Err() != nil {
				// A crash/cancel, not a unit failure: report nothing and
				// let the lease expire, exactly like a killed process.
				return completed, ctx.Err()
			}
			cr := completeRequest{
				WorkerID: join.WorkerID,
				Index:    lu.Index,
				ID:       lu.ID,
				Store:    storeStats(),
			}
			if runErr != nil {
				cr.Error = runErr.Error()
			} else {
				cr.Metrics = &m
			}
			var resp completeResponse
			if err := postJSON(ctx, hc, base+pathComplete, cr, &resp, opts); err != nil {
				return completed, fmt.Errorf("dist: complete %s: %w", lu.ID, err)
			}
			if runErr == nil && !resp.Duplicate {
				completed++
			}
		}
	}
}

// postJSON posts one JSON request and decodes the JSON response, retrying
// transport errors and 5xx responses on the shared pool.Backoff schedule
// (4xx is a protocol bug or a stale worker — never retried).
func postJSON(ctx context.Context, hc *http.Client, url string, in, out any, opts WorkerOptions) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	var last error
	for attempt := 1; attempt <= opts.Retries; attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(pool.Backoff(attempt-1, opts.RetryBase, 5*time.Second)):
			}
		}
		last = tryPostJSON(ctx, hc, url, body, out)
		if last == nil {
			return nil
		}
		var pe *protocolError
		if errors.As(last, &pe) && pe.status < 500 {
			return last
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return fmt.Errorf("%w (after %d attempts)", last, opts.Retries)
}

func tryPostJSON(ctx context.Context, hc *http.Client, url string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &protocolError{status: resp.StatusCode, msg: strings.TrimSpace(string(msg))}
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
}

// protocolError is a non-200 coordinator response; 4xx is terminal, 5xx
// retryable.
type protocolError struct {
	status int
	msg    string
}

func (e *protocolError) Error() string {
	return fmt.Sprintf("coordinator returned %d: %s", e.status, e.msg)
}
