package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"addict/internal/pool"
	"addict/internal/store"
	"addict/internal/sweep"
)

// Options tune the coordinator's lease protocol. The zero value means
// production defaults; tests shrink the timeouts to milliseconds.
type Options struct {
	// LeaseTimeout is how long a worker may hold a unit before the
	// coordinator assumes the worker crashed and requeues it. Any
	// completion from a worker refreshes that worker's other leases, so a
	// live worker chewing through a batch is never timed out mid-batch.
	LeaseTimeout time.Duration // default 60s
	// LeaseBatch caps units granted per lease request (the worker may ask
	// for fewer). Small batches keep the tail short; the shared store
	// makes re-leasing cheap, so there is no reason to hand out big slabs.
	LeaseBatch int // default 2
	// MaxRetries bounds worker-reported compute failures per unit before
	// the whole run aborts. Lease timeouts (crashes) do not count: a
	// deterministic unit that *errors* repeatedly will error everywhere,
	// whereas a crashed worker says nothing about the unit.
	MaxRetries int // default 3
	// RetryBackoff is the base requeue delay after a compute failure,
	// doubling per attempt (pool.Backoff, capped at LeaseTimeout).
	RetryBackoff time.Duration // default 1s
	// StragglerAfter is the lease age past which, once nothing is left to
	// hand out, an idle worker is granted a duplicate lease on a
	// still-running unit (speculative tail execution; first completion
	// wins, the loser is discarded). 0 defaults to LeaseTimeout/2;
	// negative disables re-dispatch.
	StragglerAfter time.Duration
	// PollInterval is the wait hint returned when no unit is leasable.
	PollInterval time.Duration // default 150ms
}

func (o Options) withDefaults() Options {
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 60 * time.Second
	}
	if o.LeaseBatch <= 0 {
		o.LeaseBatch = 2
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Second
	}
	if o.StragglerAfter == 0 {
		o.StragglerAfter = o.LeaseTimeout / 2
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 150 * time.Millisecond
	}
	return o
}

// unit lifecycle. A unit may hold several live leases at once (straggler
// re-dispatch); it is done the first time any of them completes.
const (
	unitPending = iota
	unitLeased
	unitDone
)

type lease struct {
	worker   string
	granted  time.Time
	deadline time.Time
}

type unitState struct {
	status    int
	attempts  int       // worker-reported compute failures
	notBefore time.Time // earliest re-lease after a failure's backoff
	leases    []lease
	lastErr   string
}

// WorkerCounters is one worker's slice of the run, reported by Summary.
type WorkerCounters struct {
	Name      string `json:"name,omitempty"`
	Leased    uint64 `json:"leased"`
	Completed uint64 `json:"completed"`
	// Requeued counts this worker's leases that expired and were handed
	// back (the crash path); Failed counts compute errors it reported.
	Requeued   uint64 `json:"requeued"`
	Failed     uint64 `json:"failed"`
	Duplicates uint64 `json:"duplicates"`
	// Store is the worker's last self-reported artifact-store snapshot.
	Store *store.Stats `json:"store,omitempty"`
}

// Summary is the coordinator's progress/counter snapshot, served on
// GET /dist/v1/summary and exposed via Vars for expvar publication.
type Summary struct {
	Units      int                       `json:"units"`
	Completed  int                       `json:"completed"`
	Leases     uint64                    `json:"leases"`
	Requeues   uint64                    `json:"requeues"`
	Failures   uint64                    `json:"failures"`
	Duplicates uint64                    `json:"duplicates"`
	Stragglers uint64                    `json:"straggler_redispatches"`
	Workers    map[string]WorkerCounters `json:"workers"`
	Done       bool                      `json:"done"`
	Abort      string                    `json:"abort,omitempty"`
}

// Coordinator owns one sweep run: the expanded grid, the lease state
// machine, and the in-order merge of worker results. Construct with
// NewCoordinator, mount Handler on a listener, then Run to merge; workers
// connect with Work.
type Coordinator struct {
	spec  sweep.Spec
	units []sweep.Unit
	hash  string
	opts  Options
	now   func() time.Time // injectable clock for tests

	mu         sync.Mutex
	state      []unitState
	results    []sweep.Metrics
	remaining  int
	nextWorker int
	workers    map[string]*WorkerCounters
	// released marks workers that have been told the run is over (done or
	// abort in a lease response) — the signal the embedding layer uses to
	// keep the endpoint alive just long enough for every worker to exit
	// cleanly instead of dialing a closed port.
	released   map[string]bool
	leases     uint64
	requeues   uint64
	failures   uint64
	duplicates uint64
	stragglers uint64

	// done[i] closes when unit i's result is recorded; abortCh closes at
	// most once when the run becomes unwinnable.
	done     []chan struct{}
	abortCh  chan struct{}
	abortMsg string
}

// NewCoordinator expands the spec (resolving every defaulted parameter
// first, so workers receive a spec that cannot drift) and validates it the
// same way the in-process engine does.
func NewCoordinator(spec sweep.Spec, opts Options) (*Coordinator, error) {
	spec = spec.Resolved()
	units, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, u := range units {
		if !seen[u.Workload] {
			if err := sweep.ValidateWorkloadName(u.Workload); err != nil {
				return nil, fmt.Errorf("dist: %w", err)
			}
			seen[u.Workload] = true
		}
	}
	c := &Coordinator{
		spec:      spec,
		units:     units,
		hash:      gridHash(spec, units),
		opts:      opts.withDefaults(),
		now:       time.Now,
		state:     make([]unitState, len(units)),
		results:   make([]sweep.Metrics, len(units)),
		remaining: len(units),
		workers:   map[string]*WorkerCounters{},
		released:  map[string]bool{},
		done:      make([]chan struct{}, len(units)),
		abortCh:   make(chan struct{}),
	}
	for i := range c.done {
		c.done[i] = make(chan struct{})
	}
	return c, nil
}

// Units returns the expanded grid size.
func (c *Coordinator) Units() int { return len(c.units) }

// AllReleased reports whether every joined worker has been told the run is
// over (done or abort). The embedding layer polls this after Run returns
// to decide when the worker endpoint can close without stranding a worker
// mid-poll on a dead port.
func (c *Coordinator) AllReleased() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id := range c.workers {
		if !c.released[id] {
			return false
		}
	}
	return true
}

// Handler returns the coordinator's route table (the /dist/v1/* endpoints),
// ready to mount on any mux or serve directly.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(pathJoin, c.handleJoin)
	mux.HandleFunc(pathLease, c.handleLease)
	mux.HandleFunc(pathComplete, c.handleComplete)
	mux.HandleFunc(pathSummary, c.handleSummary)
	return mux
}

// Run merges worker results into the emitter in expansion order — the
// exact loop sweep.RunWith uses, waiting on each unit's done channel in
// grid order — so the merged output is byte-identical to a single-process
// run of the same spec. It returns when every unit has been emitted, the
// run aborts (retry budget exhausted, emitter failure), or ctx is
// cancelled; an abort is propagated to workers through their next lease
// response.
func (c *Coordinator) Run(ctx context.Context, em sweep.Emitter) error {
	if err := em.Begin(c.units); err != nil {
		c.abort("emitter: " + err.Error())
		return err
	}
	for i := range c.units {
		select {
		case <-c.done[i]:
		case <-c.abortCh:
			return errors.New("dist: " + c.abortReason())
		case <-ctx.Done():
			c.abort("coordinator cancelled: " + ctx.Err().Error())
			return ctx.Err()
		}
		c.mu.Lock()
		m := c.results[i]
		c.mu.Unlock()
		if err := em.Emit(c.units[i], m); err != nil {
			c.abort("emitter: " + err.Error())
			return err
		}
	}
	if err := em.End(); err != nil {
		c.abort("emitter: " + err.Error())
		return err
	}
	return nil
}

// Abort marks the run unwinnable from outside the protocol — the hook the
// embedding layer uses when it knows no worker can ever finish the grid
// (e.g. every local worker failed and nothing remote has joined). The
// first reason wins; workers see it on their next lease.
func (c *Coordinator) Abort(reason string) { c.abort(reason) }

// abort marks the run unwinnable (first reason wins) and wakes Run.
func (c *Coordinator) abort(reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.abortLocked(reason)
}

func (c *Coordinator) abortLocked(reason string) {
	if c.abortMsg != "" {
		return
	}
	c.abortMsg = reason
	close(c.abortCh)
}

func (c *Coordinator) abortReason() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.abortMsg
}

// Summary snapshots the run's counters.
func (c *Coordinator) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summary{
		Units:      len(c.units),
		Completed:  len(c.units) - c.remaining,
		Leases:     c.leases,
		Requeues:   c.requeues,
		Failures:   c.failures,
		Duplicates: c.duplicates,
		Stragglers: c.stragglers,
		Workers:    make(map[string]WorkerCounters, len(c.workers)),
		Done:       c.remaining == 0,
		Abort:      c.abortMsg,
	}
	for id, w := range c.workers {
		cp := *w
		if w.Store != nil {
			st := *w.Store
			cp.Store = &st
		}
		s.Workers[id] = cp
	}
	return s
}

// Vars returns the summary as an expvar-compatible Func for publication
// under the serving process's metrics map.
func (c *Coordinator) Vars() func() any {
	return func() any { return c.Summary() }
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	c.nextWorker++
	id := fmt.Sprintf("w%d", c.nextWorker)
	c.workers[id] = &WorkerCounters{Name: req.Name}
	c.mu.Unlock()
	writeJSON(w, joinResponse{
		WorkerID: id,
		Spec:     c.spec,
		Units:    len(c.units),
		GridHash: c.hash,
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	wc := c.workers[req.WorkerID]
	if wc == nil {
		httpError(w, http.StatusForbidden, "unknown worker %q (join first)", req.WorkerID)
		return
	}
	if req.Store != nil {
		st := *req.Store
		wc.Store = &st
	}
	if c.abortMsg != "" {
		c.released[req.WorkerID] = true
		writeJSON(w, leaseResponse{Abort: c.abortMsg})
		return
	}
	if c.remaining == 0 {
		c.released[req.WorkerID] = true
		writeJSON(w, leaseResponse{Done: true})
		return
	}
	now := c.now()
	c.expireLocked(now)

	max := req.Max
	if max <= 0 || max > c.opts.LeaseBatch {
		max = c.opts.LeaseBatch
	}
	var grant []leaseUnit
	backoffWait := time.Duration(-1)
	for i := range c.state {
		if len(grant) >= max {
			break
		}
		st := &c.state[i]
		if st.status != unitPending {
			continue
		}
		if st.notBefore.After(now) {
			// In a failure backoff window: leasable later, not now.
			if d := st.notBefore.Sub(now); backoffWait < 0 || d < backoffWait {
				backoffWait = d
			}
			continue
		}
		st.status = unitLeased
		st.leases = append(st.leases, lease{
			worker:   req.WorkerID,
			granted:  now,
			deadline: now.Add(c.opts.LeaseTimeout),
		})
		grant = append(grant, leaseUnit{Index: i, ID: c.units[i].ID})
	}
	if len(grant) == 0 && backoffWait < 0 && c.opts.StragglerAfter >= 0 {
		// Nothing pending at all: every remaining unit is leased. Put the
		// idle worker on the oldest sufficiently-aged running unit as a
		// backup — a crashed or slow holder no longer strands the tail for
		// a full lease timeout. Cap at one duplicate per unit.
		best := -1
		for i := range c.state {
			st := &c.state[i]
			if st.status != unitLeased || len(st.leases) != 1 {
				continue
			}
			l := st.leases[0]
			if l.worker == req.WorkerID || now.Sub(l.granted) < c.opts.StragglerAfter {
				continue
			}
			if best < 0 || l.granted.Before(c.state[best].leases[0].granted) {
				best = i
			}
		}
		if best >= 0 {
			st := &c.state[best]
			st.leases = append(st.leases, lease{
				worker:   req.WorkerID,
				granted:  now,
				deadline: now.Add(c.opts.LeaseTimeout),
			})
			grant = append(grant, leaseUnit{Index: best, ID: c.units[best].ID})
			c.stragglers++
		}
	}
	if len(grant) > 0 {
		c.leases += uint64(len(grant))
		wc.Leased += uint64(len(grant))
		writeJSON(w, leaseResponse{Units: grant})
		return
	}
	wait := c.opts.PollInterval
	if backoffWait >= 0 && backoffWait < wait {
		wait = backoffWait
	}
	writeJSON(w, leaseResponse{WaitMillis: int(wait.Milliseconds()) + 1})
}

// expireLocked requeues units whose every lease has passed its deadline —
// the crash-recovery path. Requeues are unbounded (a crash says nothing
// about the unit) but counted.
func (c *Coordinator) expireLocked(now time.Time) {
	for i := range c.state {
		st := &c.state[i]
		if st.status != unitLeased {
			continue
		}
		live := st.leases[:0]
		for _, l := range st.leases {
			if l.deadline.After(now) {
				live = append(live, l)
				continue
			}
			c.requeues++
			if wc := c.workers[l.worker]; wc != nil {
				wc.Requeued++
			}
		}
		st.leases = live
		if len(st.leases) == 0 {
			st.status = unitPending
		}
	}
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Index < 0 || req.Index >= len(c.units) {
		httpError(w, http.StatusBadRequest, "unit index %d out of range", req.Index)
		return
	}
	if req.ID != c.units[req.Index].ID {
		httpError(w, http.StatusBadRequest, "unit %d id mismatch: got %q want %q",
			req.Index, req.ID, c.units[req.Index].ID)
		return
	}
	if req.Error == "" && req.Metrics == nil {
		httpError(w, http.StatusBadRequest, "completion carries neither metrics nor error")
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	wc := c.workers[req.WorkerID]
	if wc == nil {
		httpError(w, http.StatusForbidden, "unknown worker %q (join first)", req.WorkerID)
		return
	}
	if req.Store != nil {
		st := *req.Store
		wc.Store = &st
	}
	now := c.now()
	st := &c.state[req.Index]
	if st.status == unitDone {
		// Straggler's loser, or a revenant whose lease expired and whose
		// unit was recomputed elsewhere. Deterministic units make the
		// discard safe.
		c.duplicates++
		wc.Duplicates++
		writeJSON(w, completeResponse{Duplicate: true})
		return
	}
	// Drop this worker's lease on the unit (expired-lease revenants have
	// none; their result is still valid — determinism again).
	live := st.leases[:0]
	for _, l := range st.leases {
		if l.worker != req.WorkerID {
			live = append(live, l)
		}
	}
	st.leases = live

	if req.Error != "" {
		st.attempts++
		st.lastErr = req.Error
		c.failures++
		wc.Failed++
		if st.attempts > c.opts.MaxRetries {
			c.abortLocked(fmt.Sprintf("unit %s failed %d times, giving up: %s",
				c.units[req.Index].ID, st.attempts, req.Error))
			writeJSON(w, completeResponse{})
			return
		}
		st.status = unitPending
		st.notBefore = now.Add(pool.Backoff(st.attempts, c.opts.RetryBackoff, c.opts.LeaseTimeout))
		writeJSON(w, completeResponse{})
		return
	}

	c.results[req.Index] = *req.Metrics
	st.status = unitDone
	st.leases = nil
	c.remaining--
	wc.Completed++
	close(c.done[req.Index])

	// A completion is proof of life: refresh the worker's other leases so
	// a slow batch is never requeued under a live worker.
	for i := range c.state {
		o := &c.state[i]
		if o.status != unitLeased {
			continue
		}
		for j := range o.leases {
			if o.leases[j].worker == req.WorkerID {
				o.leases[j].deadline = now.Add(c.opts.LeaseTimeout)
			}
		}
	}
	writeJSON(w, completeResponse{})
}

func (c *Coordinator) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, c.Summary())
}

// Progress returns a one-line human summary ("done/units, workers sorted
// by id") for log output.
func (c *Coordinator) Progress() string {
	s := c.Summary()
	ids := make([]string, 0, len(s.Workers))
	for id := range s.Workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	line := fmt.Sprintf("%d/%d units", s.Completed, s.Units)
	for _, id := range ids {
		w := s.Workers[id]
		line += fmt.Sprintf(" %s:%d", id, w.Completed)
	}
	return line
}

// --- small HTTP helpers (same shape as cmd/addict-serve's, kept local so
// internal/dist has no dependency on a main package) ---

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	b = append(b, '\n')
	w.Write(b)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
