// Package dist executes one sweep grid across many processes: a
// coordinator expands the spec into stable unit IDs and leases units over
// HTTP/JSON to workers that compute them through the shared artifact path
// (sweep.RunUnit over sweep.Artifacts) and report metrics back; the
// coordinator merges the results into a report byte-identical to the
// single-process sweep engine's output.
//
// The determinism contract does all the heavy lifting. Every unit is a
// pure function of its stable ID's parameters — the simulation is
// deterministic, trace generation is worker-count independent, and the
// unit ID never depends on grid position — so a unit may be computed by
// any worker, recomputed after a crash, or computed twice concurrently
// (straggler re-dispatch near the tail) and the merged report cannot
// change. Failure handling therefore never needs consensus: a lease that
// times out is simply requeued, a duplicate completion is discarded, and a
// worker-reported error retries with exponential backoff until a bounded
// attempt budget aborts the run. Workers that rendezvous on one
// content-addressed store directory (internal/store) resolve identical
// artifact specs to identical disk addresses, so a re-dispatched unit is
// usually a cache hit rather than a recomputation.
//
// The coordinator is transport-agnostic serving state: Handler returns the
// route table and Run merges and emits, so the same code runs under a
// dedicated listener (cmd/addict-sweep -serve-workers), inside the serving
// daemon (POST /v1/sweep distributed mode), or under httptest. Workers are
// one function (Work) that joins, leases, computes, and completes until
// the coordinator reports the grid done.
package dist
