// Package cache implements the set-associative cache models used by both
// ADDICT's profiling step (Algorithm 1 tracks L1-I evictions, Section 3.1)
// and the multicore timing simulator (the Table 1 hierarchy: private
// 32KB/8-way L1s and the banked 16MB NUCA L2).
//
// Caches here are *functional* models: they track block residency and
// replacement, and report hits/misses/evictions. Timing (latencies, torus
// hops, memory) is layered on top by package sim.
package cache
