package cache

import (
	"fmt"

	"addict/internal/trace"
)

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity; must be a power of two.
	SizeBytes int
	// Ways is the associativity; must divide the number of blocks.
	Ways int
	// Name appears in diagnostics ("L1-I", "L1-D", "L2", "L3").
	Name string
}

// Validate checks the configuration for structural soundness.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0 {
		return fmt.Errorf("cache %s: size %d is not a positive power of two", c.Name, c.SizeBytes)
	}
	blocks := c.SizeBytes / trace.BlockSize
	if blocks == 0 {
		return fmt.Errorf("cache %s: size %d smaller than one block", c.Name, c.SizeBytes)
	}
	if c.Ways <= 0 || blocks%c.Ways != 0 {
		return fmt.Errorf("cache %s: %d ways does not divide %d blocks", c.Name, c.Ways, blocks)
	}
	sets := blocks / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets is not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache activity since the last Reset.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// MissRatio returns misses/accesses (0 when idle).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement per set.
// Lines are identified by 64-byte block address; the zero address is valid
// (tracked with an explicit valid bit). Not safe for concurrent use; the
// simulator is single-goroutine by design.
//
// The line array is packed: one word per way, holding the block address
// with the valid bit folded into bit 0 (block addresses are 64-byte
// aligned, so the low six bits are free); 0 means invalid. Packing halves
// the bytes a set scan touches versus an (addr, valid) struct and makes
// the hit probe a single word compare — cache.Access is the innermost loop
// of every replayed event, so the simulator's own cache behavior matters.
//
// Invariant: within a set, invalid ways form a suffix. New and Flush make
// every way invalid (a trivially valid suffix); a fill consumes the way at
// the LRU end, shrinking the suffix by one; a hit only reorders ways in
// front of it; and Invalidate shifts the survivors up and parks the freed
// way at the LRU end, growing the suffix. Access therefore fills without
// scanning for a free way: the set has one exactly when the LRU way is
// invalid.
type Cache struct {
	cfg      Config
	ways     int
	setShift uint
	setMask  uint64
	// lines[set*ways+way]; within a set, index 0 is MRU, ways-1 is LRU.
	// Each word is blockAddr|1 when valid, 0 when invalid.
	lines []uint64
	stats Stats
}

// lineValid is the packed valid bit.
const lineValid = 1

// New builds a cache from cfg; it panics on invalid configuration (a
// programming error — configurations are compiled into experiment setups).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	blocks := cfg.SizeBytes / trace.BlockSize
	sets := blocks / cfg.Ways
	return &Cache{
		cfg:      cfg,
		ways:     cfg.Ways,
		setShift: uint(trace.BlockShift),
		setMask:  uint64(sets - 1),
		lines:    make([]uint64, blocks),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.lines) / c.ways }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Capacity returns the capacity in blocks.
func (c *Cache) Capacity() int { return len(c.lines) }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the activity counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) setIndex(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	// Hit reports whether the block was resident.
	Hit bool
	// Evicted is the block address displaced by the fill, when Victim.
	Evicted uint64
	// Victim reports whether a valid block was evicted.
	Victim bool
}

// Access looks up the block containing addr, fills on miss, and updates LRU
// order. It returns the outcome, including the identity of any evicted block
// — the signal Algorithm 1 listens for ("addr request requires an eviction",
// line 14). The steady-state path performs no allocation: a hit in the MRU
// way returns without touching the rest of the set, any other outcome is
// one probe scan plus one copy-based shift.
func (c *Cache) Access(addr uint64) AccessResult {
	addr &^= trace.BlockSize - 1
	c.stats.Accesses++
	tag := addr | lineValid
	set := c.setIndex(addr) * c.ways
	ln := c.lines[set : set+c.ways : set+c.ways]
	if ln[0] == tag {
		// Hit in the MRU way: nothing moves.
		return AccessResult{Hit: true}
	}
	for i := 1; i < len(ln); i++ {
		if ln[i] == tag {
			// Hit: move to MRU position.
			copy(ln[1:i+1], ln[:i])
			ln[0] = tag
			return AccessResult{Hit: true}
		}
	}
	c.stats.Misses++
	// Miss: the victim is the LRU way. By the suffix invariant it is
	// invalid exactly when the set still has a free way, so no scan for
	// one is needed.
	res := AccessResult{}
	if victim := ln[c.ways-1]; victim != 0 {
		res.Evicted = victim &^ lineValid
		res.Victim = true
		c.stats.Evictions++
	}
	copy(ln[1:], ln[:c.ways-1])
	ln[0] = tag
	return res
}

// Contains reports whether the block containing addr is resident, without
// modifying state or statistics. SLICC's core-selection heuristic and the
// simulator's coherence checks use it.
func (c *Cache) Contains(addr uint64) bool {
	addr &^= trace.BlockSize - 1
	tag := addr | lineValid
	set := c.setIndex(addr) * c.ways
	for _, l := range c.lines[set : set+c.ways] {
		if l == tag {
			return true
		}
	}
	return false
}

// Invalidate removes the block containing addr if resident, returning whether
// it was. Used for write-invalidate coherence between private L1-D caches.
func (c *Cache) Invalidate(addr uint64) bool {
	addr &^= trace.BlockSize - 1
	tag := addr | lineValid
	set := c.setIndex(addr) * c.ways
	ln := c.lines[set : set+c.ways]
	for i := range ln {
		if ln[i] == tag {
			// Shift the remainder up and park the invalid line at LRU.
			copy(ln[i:], ln[i+1:])
			ln[c.ways-1] = 0
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache — Algorithm 1 "empties the L1-I cache"
// at transaction/operation boundaries and after every eviction.
func (c *Cache) Flush() {
	clear(c.lines)
}

// Resident returns the number of valid blocks.
func (c *Cache) Resident() int {
	n := 0
	for _, l := range c.lines {
		if l != 0 {
			n++
		}
	}
	return n
}

// ResidentBlocks appends the addresses of all valid blocks to dst and
// returns it. Diagnostic/analysis use only (it allocates).
func (c *Cache) ResidentBlocks(dst []uint64) []uint64 {
	for _, l := range c.lines {
		if l != 0 {
			dst = append(dst, l&^lineValid)
		}
	}
	return dst
}

// BankOf maps a block address to one of nBanks NUCA banks (power of two) by
// hashing the block number, matching the banked shared L2 of Table 1.
func BankOf(addr uint64, nBanks int) int {
	if nBanks&(nBanks-1) != 0 || nBanks <= 0 {
		panic(fmt.Sprintf("cache: bank count %d not a positive power of two", nBanks))
	}
	block := addr >> trace.BlockShift
	// Mix the bits so sequential code blocks spread over banks.
	x := block * 0x9e3779b97f4a7c15
	return int((x >> 32) & uint64(nBanks-1))
}
