package cache

import (
	"math/rand"
	"testing"

	"addict/internal/trace"
)

// diffRef is the obviously-correct reference model the packed
// implementation is checked against: per set, an ordered list of resident
// block addresses, MRU first. A hit moves the address to the front; a miss
// inserts at the front, evicting the last address only when the set is
// full.
type diffRef struct {
	sets  []diffSet
	ways  int
	shift uint
	mask  uint64
}

type diffSet struct {
	addrs []uint64 // MRU first; len ≤ ways
}

func newDiffRef(cfg Config) *diffRef {
	blocks := cfg.SizeBytes / trace.BlockSize
	sets := blocks / cfg.Ways
	return &diffRef{
		sets:  make([]diffSet, sets),
		ways:  cfg.Ways,
		shift: uint(trace.BlockShift),
		mask:  uint64(sets - 1),
	}
}

func (r *diffRef) set(addr uint64) *diffSet {
	return &r.sets[(addr>>r.shift)&r.mask]
}

func (r *diffRef) access(addr uint64) AccessResult {
	addr &^= trace.BlockSize - 1
	s := r.set(addr)
	for i, a := range s.addrs {
		if a == addr {
			copy(s.addrs[1:i+1], s.addrs[:i])
			s.addrs[0] = addr
			return AccessResult{Hit: true}
		}
	}
	res := AccessResult{}
	if len(s.addrs) == r.ways {
		res.Evicted = s.addrs[len(s.addrs)-1]
		res.Victim = true
		s.addrs = s.addrs[:len(s.addrs)-1]
	}
	s.addrs = append([]uint64{addr}, s.addrs...)
	return res
}

func (r *diffRef) contains(addr uint64) bool {
	addr &^= trace.BlockSize - 1
	for _, a := range r.set(addr).addrs {
		if a == addr {
			return true
		}
	}
	return false
}

func (r *diffRef) invalidate(addr uint64) bool {
	addr &^= trace.BlockSize - 1
	s := r.set(addr)
	for i, a := range s.addrs {
		if a == addr {
			s.addrs = append(s.addrs[:i], s.addrs[i+1:]...)
			return true
		}
	}
	return false
}

func (r *diffRef) flush() {
	for i := range r.sets {
		r.sets[i].addrs = r.sets[i].addrs[:0]
	}
}

func (r *diffRef) resident() int {
	n := 0
	for i := range r.sets {
		n += len(r.sets[i].addrs)
	}
	return n
}

// TestDifferentialAgainstReference drives the packed-order cache and the
// reference model with 1M pseudorandom operations across several
// geometries (direct-mapped through fully associative) and asserts
// identical hit/miss/eviction sequences, residency, and statistics. This
// is the lock on the packed fast path: any divergence from true-LRU with
// a free-way-first fill policy shows up as a sequence mismatch.
func TestDifferentialAgainstReference(t *testing.T) {
	geometries := []Config{
		{SizeBytes: 4 << 10, Ways: 1, Name: "direct-4K"},
		{SizeBytes: 8 << 10, Ways: 2, Name: "2way-8K"},
		{SizeBytes: 16 << 10, Ways: 4, Name: "4way-16K"},
		{SizeBytes: 32 << 10, Ways: 8, Name: "8way-32K"},
		{SizeBytes: 4 << 10, Ways: 64, Name: "full-4K"},
	}
	const opsPerGeometry = 200_000 // 5 geometries × 200k = 1M operations
	for gi, cfg := range geometries {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			c := New(cfg)
			ref := newDiffRef(cfg)
			rng := rand.New(rand.NewSource(int64(1000 + gi)))
			// Footprint ~4× capacity: plenty of conflict misses and
			// evictions without degenerating to all-miss.
			blocks := uint64(4 * cfg.SizeBytes / trace.BlockSize)
			var evictions uint64
			for op := 0; op < opsPerGeometry; op++ {
				addr := (rng.Uint64() % blocks) * trace.BlockSize
				// Unaligned inputs must behave identically too.
				addr += uint64(rng.Intn(trace.BlockSize))
				switch r := rng.Intn(100); {
				case r < 80:
					got := c.Access(addr)
					want := ref.access(addr)
					if got != want {
						t.Fatalf("op %d: Access(%#x) = %+v, reference %+v", op, addr, got, want)
					}
					if got.Victim {
						evictions++
					}
				case r < 90:
					if got, want := c.Contains(addr), ref.contains(addr); got != want {
						t.Fatalf("op %d: Contains(%#x) = %v, reference %v", op, addr, got, want)
					}
				case r < 99:
					if got, want := c.Invalidate(addr), ref.invalidate(addr); got != want {
						t.Fatalf("op %d: Invalidate(%#x) = %v, reference %v", op, addr, got, want)
					}
				default:
					c.Flush()
					ref.flush()
				}
				if op%8192 == 0 {
					if got, want := c.Resident(), ref.resident(); got != want {
						t.Fatalf("op %d: Resident() = %d, reference %d", op, got, want)
					}
				}
			}
			if got := c.Stats().Evictions; got != evictions {
				t.Fatalf("eviction counter %d, observed %d victims", got, evictions)
			}
			if got, want := c.Resident(), ref.resident(); got != want {
				t.Fatalf("final residency %d, reference %d", got, want)
			}
		})
	}
}

// TestAccessZeroAlloc asserts the access path never allocates — it is the
// innermost loop of every replayed event.
func TestAccessZeroAlloc(t *testing.T) {
	c := New(Config{SizeBytes: 16 << 10, Ways: 4, Name: "alloc-probe"})
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = (rng.Uint64() % 1024) * trace.BlockSize
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, a := range addrs {
			c.Access(a)
			c.Contains(a)
		}
		c.Invalidate(addrs[0])
	})
	if allocs != 0 {
		t.Fatalf("access path allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkCacheAccess measures the packed access path over a mixed
// hit/miss stream (the per-event unit of Algorithm 1's replay loop).
func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{SizeBytes: 32 << 10, Ways: 8, Name: "bench"})
	rng := rand.New(rand.NewSource(11))
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = (rng.Uint64() % 2048) * trace.BlockSize
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}
