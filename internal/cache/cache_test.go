package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"addict/internal/trace"
)

func smallCache(t *testing.T) *Cache {
	t.Helper()
	// 8 blocks, 2 ways, 4 sets.
	return New(Config{SizeBytes: 8 * trace.BlockSize, Ways: 2, Name: "test"})
}

func addrForSet(c *Cache, set, tag int) uint64 {
	return uint64(tag*c.Sets()+set) * trace.BlockSize
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1},
		{SizeBytes: 100, Ways: 1},                 // not a power of two
		{SizeBytes: 1 << 15, Ways: 0},             // zero ways
		{SizeBytes: 1 << 15, Ways: 7},             // does not divide
		{SizeBytes: 32, Ways: 1},                  // smaller than a block
		{SizeBytes: 3 * trace.BlockSize, Ways: 1}, // not pow2
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v) unexpectedly valid", i, cfg)
		}
	}
	good := Config{SizeBytes: 32 << 10, Ways: 8, Name: "L1-I"}
	if err := good.Validate(); err != nil {
		t.Errorf("Table 1 L1 config invalid: %v", err)
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c := smallCache(t)
	if res := c.Access(0x1000); res.Hit {
		t.Error("first access hit an empty cache")
	}
	if res := c.Access(0x1000); !res.Hit {
		t.Error("second access to same block missed")
	}
	if res := c.Access(0x1001); !res.Hit {
		t.Error("access within same block missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 3 accesses / 1 miss", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t)
	a0 := addrForSet(c, 0, 0)
	a1 := addrForSet(c, 0, 1)
	a2 := addrForSet(c, 0, 2)
	c.Access(a0)
	c.Access(a1)
	// Touch a0 so a1 becomes LRU.
	c.Access(a0)
	res := c.Access(a2)
	if res.Hit {
		t.Fatal("conflict access hit")
	}
	if !res.Victim || res.Evicted != a1 {
		t.Errorf("evicted %#x (victim=%v), want LRU %#x", res.Evicted, res.Victim, a1)
	}
	if !c.Contains(a0) || !c.Contains(a2) || c.Contains(a1) {
		t.Error("post-eviction residency wrong")
	}
}

func TestNoVictimWhileSetNotFull(t *testing.T) {
	c := smallCache(t)
	for tag := 0; tag < 2; tag++ {
		res := c.Access(addrForSet(c, 1, tag))
		if res.Victim {
			t.Errorf("eviction reported while set had free ways (tag %d)", tag)
		}
	}
	if c.Stats().Evictions != 0 {
		t.Errorf("evictions = %d, want 0", c.Stats().Evictions)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t)
	a := addrForSet(c, 2, 0)
	c.Access(a)
	if !c.Invalidate(a) {
		t.Error("Invalidate of resident block returned false")
	}
	if c.Contains(a) {
		t.Error("block still resident after Invalidate")
	}
	if c.Invalidate(a) {
		t.Error("Invalidate of absent block returned true")
	}
	// The freed way must be reused without evicting.
	b := addrForSet(c, 2, 1)
	cc := addrForSet(c, 2, 2)
	c.Access(b)
	if res := c.Access(cc); res.Victim {
		t.Error("eviction despite invalidated free way")
	}
}

func TestFlush(t *testing.T) {
	c := smallCache(t)
	for i := 0; i < 8; i++ {
		c.Access(uint64(i) * trace.BlockSize)
	}
	if c.Resident() != 8 {
		t.Fatalf("resident = %d, want 8", c.Resident())
	}
	c.Flush()
	if c.Resident() != 0 {
		t.Errorf("resident after flush = %d, want 0", c.Resident())
	}
	if got := c.ResidentBlocks(nil); len(got) != 0 {
		t.Errorf("ResidentBlocks after flush = %v", got)
	}
}

func TestResidentBlocks(t *testing.T) {
	c := smallCache(t)
	want := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		a := addrForSet(c, i, 0)
		c.Access(a)
		want[a] = true
	}
	got := c.ResidentBlocks(nil)
	if len(got) != len(want) {
		t.Fatalf("ResidentBlocks = %d entries, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected resident block %#x", a)
		}
	}
}

func TestStatsResetKeepsContents(t *testing.T) {
	c := smallCache(t)
	c.Access(0x40)
	c.ResetStats()
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if !c.Contains(0x40) {
		t.Error("contents lost on ResetStats")
	}
}

func TestBankOfDistributesAndIsStable(t *testing.T) {
	const nBanks = 16
	counts := make([]int, nBanks)
	for i := 0; i < 1<<14; i++ {
		a := uint64(i) * trace.BlockSize
		b := BankOf(a, nBanks)
		if b != BankOf(a, nBanks) {
			t.Fatal("BankOf not deterministic")
		}
		counts[b]++
	}
	for b, n := range counts {
		if n == 0 {
			t.Errorf("bank %d received no blocks", b)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BankOf with non-power-of-two banks did not panic")
		}
	}()
	BankOf(0, 12)
}

// Reference model for property tests: a map plus per-set LRU lists.
type refCache struct {
	sets  int
	ways  int
	order [][]uint64 // per set, MRU first
}

func newRef(sets, ways int) *refCache {
	return &refCache{sets: sets, ways: ways, order: make([][]uint64, sets)}
}

func (r *refCache) access(addr uint64) (hit bool, evicted uint64, victim bool) {
	addr &^= trace.BlockSize - 1
	set := int((addr >> trace.BlockShift) & uint64(r.sets-1))
	l := r.order[set]
	for i, a := range l {
		if a == addr {
			copy(l[1:i+1], l[:i])
			l[0] = addr
			return true, 0, false
		}
	}
	if len(l) == r.ways {
		evicted, victim = l[len(l)-1], true
		l = l[:len(l)-1]
	}
	r.order[set] = append([]uint64{addr}, l...)
	return false, evicted, victim
}

// TestAgainstReferenceModel drives the cache and an obviously-correct
// reference with identical random access streams and requires identical
// observable behaviour.
func TestAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{SizeBytes: 16 * trace.BlockSize, Ways: 4, Name: "ref"})
		r := newRef(c.Sets(), c.Ways())
		for i := 0; i < 2000; i++ {
			addr := uint64(rng.Intn(64)) * trace.BlockSize
			got := c.Access(addr)
			wantHit, wantEv, wantVic := r.access(addr)
			if got.Hit != wantHit || got.Victim != wantVic || (wantVic && got.Evicted != wantEv) {
				t.Logf("seed %d step %d addr %#x: got %+v want hit=%v ev=%#x vic=%v",
					seed, i, addr, got, wantHit, wantEv, wantVic)
				return false
			}
			if c.Contains(addr) != true {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestResidencyNeverExceedsCapacity is the core capacity invariant under
// arbitrary access/invalidate/flush interleavings.
func TestResidencyNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{SizeBytes: 8 * trace.BlockSize, Ways: 2, Name: "cap"})
		for i := 0; i < 1000; i++ {
			switch rng.Intn(10) {
			case 0:
				c.Invalidate(uint64(rng.Intn(32)) * trace.BlockSize)
			case 1:
				if rng.Intn(50) == 0 {
					c.Flush()
				}
			default:
				c.Access(uint64(rng.Intn(32)) * trace.BlockSize)
			}
			if c.Resident() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Error("MissRatio of zero stats should be 0")
	}
	s = Stats{Accesses: 10, Misses: 4}
	if got := s.MissRatio(); got != 0.4 {
		t.Errorf("MissRatio = %v, want 0.4", got)
	}
}

// BenchmarkAccess gauges the simulator's innermost loop.
func BenchmarkAccess(b *testing.B) {
	c := New(Config{SizeBytes: 32 << 10, Ways: 8, Name: "L1-I"})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(2048)) * trace.BlockSize
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}
