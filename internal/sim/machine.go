package sim

import (
	"addict/internal/cache"
	"addict/internal/trace"
)

// Level identifies where an access was served.
type Level uint8

// Service levels.
const (
	ServedL1 Level = iota
	ServedPrivateL2
	ServedShared
	ServedMem
	ServedNone // marker events
)

// AccessOutcome reports what one executed event did to the memory system —
// the signal the scheduling mechanisms key off (SLICC watches L1-I misses;
// STREX watches fills/evictions).
type AccessOutcome struct {
	// L1Miss reports a miss in the relevant private L1.
	L1Miss bool
	// L1Evict reports that the L1 fill evicted a valid block.
	L1Evict bool
	// ServedBy is the level that supplied the block.
	ServedBy Level
	// Cycles is the charge for the event, including the base execution
	// cost for instruction blocks.
	Cycles uint64
}

// Machine is the simulated multicore: per-core private caches plus the
// shared NUCA cache and memory, with activity counters for the MPKI and
// power analyses.
type Machine struct {
	Cfg Config

	l1i, l1d []*cache.Cache
	l2p      []*cache.Cache // non-nil in deep hierarchies
	shared   *cache.Cache

	hops [][]uint64 // torus distance core → bank

	// baseBlockCycles caches Cfg.BaseBlockCycles(): the method copies the
	// whole Config and divides floats, which is far too expensive for a
	// per-instruction-event constant.
	baseBlockCycles uint64

	// restored* substitute for the live per-level cache aggregation when
	// the machine was reconstructed from a persisted result
	// (internal/store): the cache objects are not persisted, only their
	// aggregate statistics, and a restored machine only answers counter
	// queries — it never executes.
	restored                                 bool
	restoredL1I, restoredL1D, restoredShared cache.Stats

	// Counters.
	Instructions uint64 // dynamic instructions (blocks × InstrPerBlock)
	L1IMisses    uint64
	L1DMisses    uint64
	L2PMisses    uint64 // deep hierarchy only
	SharedMisses uint64 // LLC misses = memory accesses
	SharedHits   uint64
	NoCHops      uint64
	Invalidation uint64 // coherence invalidations caused by writes
	DataReads    uint64
	DataWrites   uint64
}

// NewMachine builds a machine from cfg; it panics on invalid configuration.
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{Cfg: cfg, shared: cache.New(cfg.Shared), baseBlockCycles: cfg.BaseBlockCycles()}
	for i := 0; i < cfg.Cores; i++ {
		m.l1i = append(m.l1i, cache.New(cfg.L1I))
		m.l1d = append(m.l1d, cache.New(cfg.L1D))
		if cfg.PrivateL2 != nil {
			m.l2p = append(m.l2p, cache.New(*cfg.PrivateL2))
		}
	}
	m.hops = torusHops(cfg.Cores, cfg.SharedBanks)
	return m
}

// torusHops precomputes Manhattan-with-wraparound distances between core i
// and bank j on a square torus large enough for the banks; cores are placed
// modulo the grid.
func torusHops(cores, banks int) [][]uint64 {
	side := 1
	for side*side < banks {
		side++
	}
	pos := func(i int) (int, int) { return i % side, (i / side) % side }
	dist := func(a, b, n int) int {
		d := a - b
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return d
	}
	h := make([][]uint64, cores)
	for c := 0; c < cores; c++ {
		h[c] = make([]uint64, banks)
		cx, cy := pos(c)
		for b := 0; b < banks; b++ {
			bx, by := pos(b)
			h[c][b] = uint64(dist(cx, bx, side) + dist(cy, by, side))
		}
	}
	return h
}

// sharedLatency returns the NUCA access latency from a core to the bank
// holding addr, counting the traversal hops.
func (m *Machine) sharedLatency(core int, addr uint64) uint64 {
	bank := cache.BankOf(addr, m.Cfg.SharedBanks)
	hops := m.hops[core][bank]
	m.NoCHops += 2 * hops // request + response
	return m.Cfg.SharedHitCycles + hops*m.Cfg.HopCycles
}

// expose scales a miss latency by the exposure factor.
func expose(latency uint64, factor float64) uint64 {
	return uint64(float64(latency)*factor + 0.5)
}

// Exec executes one trace event on the given core and returns the cycle
// charge and outcome. Marker events (Txn/Op boundaries) cost nothing.
func (m *Machine) Exec(core int, ev trace.Event) AccessOutcome {
	switch ev.Kind {
	case trace.KindInstr:
		return m.execInstr(core, ev.Addr)
	case trace.KindDataRead:
		return m.execData(core, ev.Addr, false)
	case trace.KindDataWrite:
		return m.execData(core, ev.Addr, true)
	default:
		return AccessOutcome{ServedBy: ServedNone}
	}
}

func (m *Machine) execInstr(core int, addr uint64) AccessOutcome {
	m.Instructions += trace.InstrPerBlock
	out := AccessOutcome{ServedBy: ServedL1, Cycles: m.baseBlockCycles}
	res := m.l1i[core].Access(addr)
	if res.Hit {
		return out
	}
	out.L1Miss = true
	out.L1Evict = res.Victim
	m.L1IMisses++
	var lat uint64
	if m.l2p != nil {
		if m.l2p[core].Access(addr).Hit {
			out.ServedBy = ServedPrivateL2
			out.Cycles += expose(m.Cfg.PrivateL2Cycles, m.Cfg.InstrMissExposure)
			return out
		}
		m.L2PMisses++
		lat += m.Cfg.PrivateL2Cycles
	}
	lat += m.sharedLatency(core, addr)
	if m.shared.Access(addr).Hit {
		m.SharedHits++
		out.ServedBy = ServedShared
		out.Cycles += expose(lat, m.Cfg.InstrMissExposure)
		return out
	}
	m.SharedMisses++
	out.ServedBy = ServedMem
	out.Cycles += expose(lat+m.Cfg.MemCycles, m.Cfg.InstrMissExposure)
	return out
}

func (m *Machine) execData(core int, addr uint64, write bool) AccessOutcome {
	if write {
		m.DataWrites++
	} else {
		m.DataReads++
	}
	out := AccessOutcome{ServedBy: ServedL1}
	res := m.l1d[core].Access(addr)
	if write {
		// Write-invalidate coherence: remote L1-D (and private L2) copies
		// die. The invalidation itself is off the critical path (store
		// buffer); its cost appears as the remote cores' later misses. The
		// block reaches the shared cache through the ordinary fill path, so
		// no extra shared access is charged here.
		for c := range m.l1d {
			if c != core && m.l1d[c].Invalidate(addr) {
				m.Invalidation++
			}
			if m.l2p != nil && c != core && m.l2p[c].Invalidate(addr) {
				m.Invalidation++
			}
		}
	}
	if res.Hit {
		return out
	}
	out.L1Miss = true
	out.L1Evict = res.Victim
	m.L1DMisses++
	var lat uint64
	if m.l2p != nil {
		if m.l2p[core].Access(addr).Hit {
			out.ServedBy = ServedPrivateL2
			out.Cycles = expose(m.Cfg.PrivateL2Cycles, m.Cfg.OnChipDataExposure)
			return out
		}
		m.L2PMisses++
		lat += m.Cfg.PrivateL2Cycles
	}
	lat += m.sharedLatency(core, addr)
	if m.shared.Access(addr).Hit {
		m.SharedHits++
		out.ServedBy = ServedShared
		out.Cycles = expose(lat, m.Cfg.OnChipDataExposure)
		return out
	}
	m.SharedMisses++
	out.ServedBy = ServedMem
	out.Cycles = expose(lat+m.Cfg.MemCycles, m.Cfg.OffChipDataExposure)
	return out
}

// L1IContains reports whether core's L1-I holds addr without disturbing
// state — SLICC's "which cache already has my instructions" probe.
func (m *Machine) L1IContains(core int, addr uint64) bool {
	return m.l1i[core].Contains(addr)
}

// FlushL1I empties a core's instruction cache (used by tests and by
// profiling-style runs).
func (m *Machine) FlushL1I(core int) { m.l1i[core].Flush() }

// MarkRestored flags a machine deserialized from a persisted result,
// recording the per-level aggregates its live caches held at serialization
// time. CacheStats answers from the recorded aggregates; every other
// counter is an exported field the decoder sets directly. A restored
// machine must never execute events (its cache objects are gone) — it
// exists to make persisted results interchangeable with fresh ones in the
// metric and power reductions.
func (m *Machine) MarkRestored(l1i, l1d, shared cache.Stats) {
	m.restored = true
	m.restoredL1I, m.restoredL1D, m.restoredShared = l1i, l1d, shared
}

// CacheStats returns per-level aggregate cache statistics.
func (m *Machine) CacheStats() (l1i, l1d, shared cache.Stats) {
	if m.restored {
		return m.restoredL1I, m.restoredL1D, m.restoredShared
	}
	for _, c := range m.l1i {
		s := c.Stats()
		l1i.Accesses += s.Accesses
		l1i.Misses += s.Misses
		l1i.Evictions += s.Evictions
	}
	for _, c := range m.l1d {
		s := c.Stats()
		l1d.Accesses += s.Accesses
		l1d.Misses += s.Misses
		l1d.Evictions += s.Evictions
	}
	shared = m.shared.Stats()
	return
}

// MPKI returns misses per 1000 instructions for a raw miss count.
func (m *Machine) MPKI(misses uint64) float64 {
	if m.Instructions == 0 {
		return 0
	}
	return float64(misses) / float64(m.Instructions) * 1000
}
