package sim

import (
	"testing"

	"addict/internal/trace"
)

func TestConfigPresets(t *testing.T) {
	if err := Shallow().Validate(); err != nil {
		t.Errorf("Shallow invalid: %v", err)
	}
	d := Deep()
	if err := d.Validate(); err != nil {
		t.Errorf("Deep invalid: %v", err)
	}
	if d.PrivateL2 == nil || d.Shared.Name != "L3" {
		t.Error("Deep hierarchy not configured")
	}
	if Shallow().BaseBlockCycles() != 8 { // 16 instr / 2 IPC
		t.Errorf("BaseBlockCycles = %d, want 8", Shallow().BaseBlockCycles())
	}
	bad := Shallow()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero-core config validated")
	}
}

func TestTorusHops(t *testing.T) {
	h := torusHops(16, 16)
	for c := 0; c < 16; c++ {
		if h[c][c] != 0 {
			t.Errorf("hops[%d][%d] = %d, want 0", c, c, h[c][c])
		}
		for b := 0; b < 16; b++ {
			if h[c][b] > 4 {
				t.Errorf("hops[%d][%d] = %d, exceeds 4x4 torus diameter", c, b, h[c][b])
			}
			if h[c][b] != h[b][c] {
				t.Errorf("hops not symmetric at %d,%d", c, b)
			}
		}
	}
}

func TestMachineInstrTiming(t *testing.T) {
	m := NewMachine(Shallow())
	base := m.Cfg.BaseBlockCycles()

	out := m.Exec(0, trace.Event{Kind: trace.KindInstr, Addr: 0x400000})
	if !out.L1Miss || out.ServedBy != ServedMem {
		t.Errorf("first fetch: %+v, want L1 miss served by memory", out)
	}
	if out.Cycles <= base+m.Cfg.MemCycles/2 {
		t.Errorf("memory-served fetch cost %d cycles, too cheap", out.Cycles)
	}
	out = m.Exec(0, trace.Event{Kind: trace.KindInstr, Addr: 0x400000})
	if out.L1Miss || out.Cycles != base {
		t.Errorf("hit: %+v, want base %d cycles", out, base)
	}
	// Another core fetching the same block: L1 miss, shared hit.
	out = m.Exec(1, trace.Event{Kind: trace.KindInstr, Addr: 0x400000})
	if !out.L1Miss || out.ServedBy != ServedShared {
		t.Errorf("cross-core fetch: %+v, want shared hit", out)
	}
	if m.Instructions != 3*trace.InstrPerBlock {
		t.Errorf("Instructions = %d", m.Instructions)
	}
	if m.L1IMisses != 2 || m.SharedMisses != 1 || m.SharedHits != 1 {
		t.Errorf("miss counters: L1I=%d shared=%d/%d", m.L1IMisses, m.SharedMisses, m.SharedHits)
	}
}

func TestMachineDataCoherence(t *testing.T) {
	m := NewMachine(Shallow())
	addr := uint64(0x2_0000_0000)
	m.Exec(0, trace.Event{Kind: trace.KindDataRead, Addr: addr})
	m.Exec(1, trace.Event{Kind: trace.KindDataRead, Addr: addr})
	// Core 2 writes: both copies invalidated.
	m.Exec(2, trace.Event{Kind: trace.KindDataWrite, Addr: addr})
	if m.Invalidation != 2 {
		t.Errorf("invalidations = %d, want 2", m.Invalidation)
	}
	// Core 0 re-reads: must miss L1 again.
	out := m.Exec(0, trace.Event{Kind: trace.KindDataRead, Addr: addr})
	if !out.L1Miss {
		t.Error("read after remote write hit a stale L1 copy")
	}
	if out.ServedBy != ServedShared {
		t.Errorf("served by %v, want shared", out.ServedBy)
	}
}

func TestMachineDeepHierarchy(t *testing.T) {
	m := NewMachine(Deep())
	addr := uint64(0x400000)
	m.Exec(0, trace.Event{Kind: trace.KindInstr, Addr: addr})
	// Evict from tiny L1 by filling its set, keeping the private L2 copy.
	for i := 1; i <= 8; i++ {
		conflict := addr + uint64(i)*uint64(m.Cfg.L1I.SizeBytes/m.Cfg.L1I.Ways)
		m.Exec(0, trace.Event{Kind: trace.KindInstr, Addr: conflict})
	}
	out := m.Exec(0, trace.Event{Kind: trace.KindInstr, Addr: addr})
	if !out.L1Miss || out.ServedBy != ServedPrivateL2 {
		t.Errorf("refetch: %+v, want private-L2 hit", out)
	}
}

func TestMarkersAreFree(t *testing.T) {
	m := NewMachine(Shallow())
	out := m.Exec(0, trace.Event{Kind: trace.KindTxnBegin})
	if out.Cycles != 0 || out.ServedBy != ServedNone {
		t.Errorf("marker outcome: %+v", out)
	}
	if m.Instructions != 0 {
		t.Error("marker counted as instruction")
	}
}

func TestMPKI(t *testing.T) {
	m := NewMachine(Shallow())
	if m.MPKI(10) != 0 {
		t.Error("MPKI with no instructions should be 0")
	}
	m.Instructions = 2000
	if got := m.MPKI(10); got != 5 {
		t.Errorf("MPKI = %v, want 5", got)
	}
}

// runAll is a trivial mechanism: round-robin placement, always run.
type runAll struct{ next int }

func (r *runAll) Place(t *Thread) int {
	c := r.next
	r.next = (r.next + 1) % 4
	return c
}
func (r *runAll) Act(*Thread, trace.Event) Action             { return Run }
func (r *runAll) Observe(*Thread, trace.Event, AccessOutcome) {}

func mkTrace(id int, blocks int) *trace.Trace {
	b := trace.NewBuffer(true)
	b.TxnBegin(trace.TxnType(id%3), "t")
	b.OpBegin(trace.OpIndexProbe)
	for i := 0; i < blocks; i++ {
		b.Instr(uint64(0x400000 + (i%64)*trace.BlockSize))
		if i%4 == 0 {
			b.Data(uint64(0x1_0000_0000+(id*1000+i)*trace.BlockSize), i%8 == 0)
		}
	}
	b.OpEnd(trace.OpIndexProbe)
	b.TxnEnd()
	return b.Take()[0]
}

func smallConfig() Config {
	c := Shallow()
	c.Cores = 4
	// Shrink the shared cache so tests exercise misses: 1MB total.
	c.Shared.SizeBytes = 1 << 20
	return c
}

func TestExecutorRunsAllEvents(t *testing.T) {
	var traces []*trace.Trace
	for i := 0; i < 10; i++ {
		traces = append(traces, mkTrace(i, 100))
	}
	m := NewMachine(smallConfig())
	ex := NewExecutor(m, &runAll{}, traces)
	res := ex.Run()
	if res.Threads != 10 {
		t.Errorf("Threads = %d", res.Threads)
	}
	if res.Makespan == 0 || res.TotalLatency == 0 {
		t.Error("no time elapsed")
	}
	if m.Instructions != 10*100*trace.InstrPerBlock {
		t.Errorf("Instructions = %d, want %d", m.Instructions, 10*100*trace.InstrPerBlock)
	}
	if res.Migrations != 0 || res.ContextSwitches != 0 {
		t.Error("trivial scheduler migrated")
	}
	// 10 threads round-robin on 4 cores: queues force waiting, so the
	// makespan exceeds any single thread's latency.
	var maxLat uint64
	for _, th := range ex.Threads() {
		if th.Latency() > maxLat {
			maxLat = th.Latency()
		}
	}
	if res.Makespan < maxLat {
		t.Errorf("makespan %d < max latency %d", res.Makespan, maxLat)
	}
}

func TestExecutorDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		var traces []*trace.Trace
		for i := 0; i < 8; i++ {
			traces = append(traces, mkTrace(i, 50+i*10))
		}
		ex := NewExecutor(NewMachine(smallConfig()), &runAll{}, traces)
		res := ex.Run()
		return res.Makespan, res.TotalLatency
	}
	m1, l1 := run()
	m2, l2 := run()
	if m1 != m2 || l1 != l2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", m1, l1, m2, l2)
	}
}

// migrator bounces every thread to core (ID+1) mod N at each op boundary.
type migrator struct{ cores int }

func (mg *migrator) Place(t *Thread) int { return t.ID % mg.cores }
func (mg *migrator) Act(t *Thread, ev trace.Event) Action {
	if ev.Kind == trace.KindOpBegin {
		return MigrateTo((t.Core + 1) % mg.cores)
	}
	return Run
}
func (mg *migrator) Observe(*Thread, trace.Event, AccessOutcome) {}

func TestExecutorMigration(t *testing.T) {
	traces := []*trace.Trace{mkTrace(0, 40), mkTrace(1, 40)}
	m := NewMachine(smallConfig())
	ex := NewExecutor(m, &migrator{cores: 4}, traces)
	res := ex.Run()
	if res.Migrations != 2 { // one op boundary per trace
		t.Errorf("Migrations = %d, want 2", res.Migrations)
	}
	if res.OverheadCycles != 2*m.Cfg.MigrationCycles {
		t.Errorf("OverheadCycles = %d", res.OverheadCycles)
	}
	if res.SwitchesPerKInstr() <= 0 {
		t.Error("SwitchesPerKInstr = 0 despite migrations")
	}
}

// yielder switches threads every 10 instruction events (STREX-style).
type yielder struct{ counts map[int]int }

func (y *yielder) Place(*Thread) int { return 0 } // everyone on core 0
func (y *yielder) Act(t *Thread, ev trace.Event) Action {
	if ev.Kind == trace.KindInstr {
		y.counts[t.ID]++
		if y.counts[t.ID]%10 == 0 {
			return Yield
		}
	}
	return Run
}
func (y *yielder) Observe(*Thread, trace.Event, AccessOutcome) {}

func TestExecutorYield(t *testing.T) {
	traces := []*trace.Trace{mkTrace(0, 35), mkTrace(1, 35), mkTrace(2, 35)}
	m := NewMachine(smallConfig())
	ex := NewExecutor(m, &yielder{counts: map[int]int{}}, traces)
	res := ex.Run()
	if res.ContextSwitches == 0 {
		t.Fatal("no context switches")
	}
	if res.Migrations != 0 {
		t.Error("yield produced migrations")
	}
	// All events ran exactly once despite the multiplexing.
	if m.Instructions != 3*35*trace.InstrPerBlock {
		t.Errorf("Instructions = %d", m.Instructions)
	}
	// Time-multiplexing on one core: every thread's latency approaches the
	// makespan (the paper's STREX latency effect).
	for _, th := range ex.Threads() {
		if th.Latency() < res.Makespan/3 {
			t.Errorf("thread %d latency %d too small vs makespan %d", th.ID, th.Latency(), res.Makespan)
		}
	}
}

func TestYieldOnEmptyQueueKeepsRunning(t *testing.T) {
	traces := []*trace.Trace{mkTrace(0, 25)}
	m := NewMachine(smallConfig())
	ex := NewExecutor(m, &yielder{counts: map[int]int{}}, traces)
	res := ex.Run() // would hang if yield-with-empty-queue didn't retry
	if res.Threads != 1 || m.Instructions == 0 {
		t.Error("single-thread yield run broken")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Machine: NewMachine(smallConfig()), Threads: 0}
	if r.AvgLatency() != 0 || r.SwitchesPerKInstr() != 0 || r.OverheadShare() != 0 {
		t.Error("zero-state helpers nonzero")
	}
	r.Threads = 2
	r.TotalLatency = 10
	if r.AvgLatency() != 5 {
		t.Errorf("AvgLatency = %v", r.AvgLatency())
	}
	r.CoreActive = []uint64{50, 50}
	r.OverheadCycles = 10
	if r.OverheadShare() != 0.1 {
		t.Errorf("OverheadShare = %v", r.OverheadShare())
	}
}
