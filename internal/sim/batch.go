package sim

import "addict/internal/trace"

// maxWindow caps the event slice offered to BatchHooks.RunWindow — long
// enough to amortize the per-window hook call over many events, short
// enough that the preallocated outcome buffer stays cache-resident.
const maxWindow = 128

// BatchHooks is the batch-dispatch extension of Hooks. A mechanism that
// implements it is consulted once per event *window* instead of once per
// event: the executor offers the thread's upcoming events and the
// mechanism commits to a prefix it will run without any scheduling action,
// eliminating the per-event Act/Observe interface calls on the hot path.
// Replay results are byte-identical to the per-event path (Executor.NoBatch
// forces the latter; the equivalence is locked by tests in internal/sched).
//
// The contract, which makes that equivalence hold:
//
//   - RunWindow(t, evs) returns n, the length of the prefix of evs for
//     which the mechanism guarantees Act would return the Run action —
//     regardless of the events' outcomes, which are not yet known. The
//     guarantee must hold under the worst-case outcome of every committed
//     event (e.g. STREX commits only as many instruction fetches as could
//     all evict without reaching its switch threshold). n = 0 falls back
//     to a per-event Act call for the next event.
//
//   - The executor executes committed events without calling Act, possibly
//     in several chunks: other threads' events interleave at the global
//     (time, ID) order exactly as they would have with per-event dispatch,
//     and a preempted thread resumes its remaining commitment later —
//     RunWindow is not asked again until the commitment is exhausted.
//     Decisions must therefore depend only on state that other threads
//     cannot change: the thread's own events plus mechanism state local to
//     the thread or its core (a thread occupies its core for the whole
//     commitment, so per-core monitors are safe).
//
//   - ObserveBatch(t, evs, outs) reports each chunk, in order, right after
//     its last event executes and before any other hook call. It must
//     leave the mechanism's state exactly as the per-event Act+Observe
//     sequence would have (for counters Act maintains — like SLICC's
//     cooldown — ObserveBatch replays Act's bookkeeping too, since Act was
//     never called). The evs/outs slices alias executor-owned buffers and
//     must not be retained.
type BatchHooks interface {
	Hooks
	// RunWindow returns how many leading events of evs the mechanism
	// commits to run on t's current core without a scheduling action.
	RunWindow(t *Thread, evs []trace.Event) int
	// ObserveBatch reports the outcomes of one executed chunk of committed
	// events.
	ObserveBatch(t *Thread, evs []trace.Event, outs []AccessOutcome)
}
