package sim

import (
	"testing"

	"addict/internal/trace"
)

// admissionSpy records the max number of simultaneously live threads.
type admissionSpy struct {
	live    map[int]bool
	maxLive int
}

func (a *admissionSpy) Place(t *Thread) int { return 0 }
func (a *admissionSpy) Act(t *Thread, ev trace.Event) Action {
	if a.live == nil {
		a.live = make(map[int]bool)
	}
	if !a.live[t.ID] {
		a.live[t.ID] = true
		if len(a.live) > a.maxLive {
			a.maxLive = len(a.live)
		}
	}
	// Spread threads so several can be live: migrate by id.
	if ev.Kind == trace.KindOpBegin {
		return MigrateTo(t.ID % 4)
	}
	return Run
}
func (a *admissionSpy) Observe(t *Thread, ev trace.Event, out AccessOutcome) {
	if t.Pos() >= len(t.Trace.Events) {
		delete(a.live, t.ID)
	}
}

func TestAdmitLimitBoundsConcurrency(t *testing.T) {
	var traces []*trace.Trace
	for i := 0; i < 12; i++ {
		traces = append(traces, mkTrace(i, 30))
	}
	spy := &admissionSpy{}
	ex := NewExecutor(NewMachine(smallConfig()), spy, traces)
	ex.AdmitLimit = 3
	res := ex.Run()
	if res.Threads != 12 {
		t.Fatalf("threads = %d", res.Threads)
	}
	if spy.maxLive > 3 {
		t.Errorf("max live threads = %d, admit limit 3", spy.maxLive)
	}
}

func TestAdmitUnlimitedByDefault(t *testing.T) {
	var traces []*trace.Trace
	for i := 0; i < 8; i++ {
		traces = append(traces, mkTrace(i, 30))
	}
	spy := &admissionSpy{}
	ex := NewExecutor(NewMachine(smallConfig()), spy, traces)
	ex.Run()
	if spy.maxLive < 2 {
		t.Errorf("max live = %d; expected concurrency without a limit", spy.maxLive)
	}
}

// batchSpy records which batches were ever live together.
type batchSpy struct {
	liveBatch map[int]int // batch -> live count
	overlap   bool
}

func (b *batchSpy) Place(t *Thread) int { return t.ID % 4 }
func (b *batchSpy) Act(t *Thread, ev trace.Event) Action {
	if b.liveBatch == nil {
		b.liveBatch = make(map[int]int)
	}
	if t.Pos() == 0 {
		b.liveBatch[t.Batch]++
		if len(b.liveBatch) > 1 {
			b.overlap = true
		}
	}
	return Run
}
func (b *batchSpy) Observe(t *Thread, ev trace.Event, out AccessOutcome) {
	if t.Pos() >= len(t.Trace.Events) {
		b.liveBatch[t.Batch]--
		if b.liveBatch[t.Batch] == 0 {
			delete(b.liveBatch, t.Batch)
		}
	}
}

func TestBatchBarrierSerializesBatches(t *testing.T) {
	var traces []*trace.Trace
	for i := 0; i < 9; i++ {
		traces = append(traces, mkTrace(i, 20))
	}
	spy := &batchSpy{}
	ex := NewExecutor(NewMachine(smallConfig()), spy, traces)
	ex.BatchBarrier = true
	for i, th := range ex.Threads() {
		th.Batch = i / 3 // batches of 3
	}
	res := ex.Run()
	if res.Threads != 9 {
		t.Fatalf("threads = %d", res.Threads)
	}
	if spy.overlap {
		t.Error("batches overlapped despite BatchBarrier")
	}
}

func TestBatchBarrierWithoutBatchesStillCompletes(t *testing.T) {
	traces := []*trace.Trace{mkTrace(0, 10), mkTrace(1, 10)}
	ex := NewExecutor(NewMachine(smallConfig()), &runAll{}, traces)
	ex.BatchBarrier = true // all threads have Batch 0
	res := ex.Run()
	if res.Threads != 2 {
		t.Fatalf("threads = %d", res.Threads)
	}
}

// TestLateAdmissionJoinsAtCurrentClock: a thread admitted after others
// finish must not start in the past.
func TestLateAdmissionJoinsAtCurrentClock(t *testing.T) {
	var traces []*trace.Trace
	for i := 0; i < 4; i++ {
		traces = append(traces, mkTrace(i, 50))
	}
	ex := NewExecutor(NewMachine(smallConfig()), &runAll{}, traces)
	ex.AdmitLimit = 1 // strictly serial
	ex.Run()
	threads := ex.Threads()
	for i := 1; i < len(threads); i++ {
		if threads[i].startTime < threads[i-1].endTime {
			t.Errorf("thread %d started at %d before predecessor ended at %d",
				i, threads[i].startTime, threads[i-1].endTime)
		}
	}
}
