// Package sim implements the multicore timing simulator the scheduling
// mechanisms are evaluated on — the reproduction's stand-in for the Zesto
// full-timing simulation of Section 4.1 (DESIGN.md Section 2 documents the
// substitution).
//
// The machine model follows Table 1: 16 out-of-order cores at 2.5GHz with
// private 32KB/8-way L1 instruction and data caches (3-cycle load-to-use),
// a shared 16-bank NUCA L2 (1MB per core, 16-way, 16-cycle hit) on a 2D
// torus with 1-cycle hops, and ~42ns DDR3 memory. Timing is first-order
// stall accounting: a base CPI for the 6-wide core plus exposed miss
// latencies, with the exposure factors encoding Section 4.3's observations
// (instruction-miss stalls are hard to hide; on-chip data misses are mostly
// hidden by the OoO core; off-chip data misses are mostly exposed).
package sim

import (
	"fmt"

	"addict/internal/cache"
	"addict/internal/trace"
)

// Config describes the simulated machine.
type Config struct {
	// Cores is the number of cores (Table 1: 16).
	Cores int
	// BaseIPC is the sustained non-memory IPC of one 6-wide OoO core.
	BaseIPC float64

	// L1I and L1D configure the private level-1 caches.
	L1I, L1D cache.Config

	// PrivateL2 optionally adds a per-core L2 between L1 and the shared
	// cache (Section 4.6's deeper hierarchy: 256KB, 7 cycles). Nil for the
	// shallow hierarchy.
	PrivateL2 *cache.Config
	// PrivateL2Cycles is the private L2 hit latency.
	PrivateL2Cycles uint64

	// Shared configures the shared last-level cache (L2 in the shallow
	// hierarchy, L3 in the deep one): NUCA, banked, torus-connected.
	Shared cache.Config
	// SharedBanks is the bank count (Table 1: 16).
	SharedBanks int
	// SharedHitCycles is the bank hit latency before hop costs.
	SharedHitCycles uint64
	// HopCycles is the per-hop torus latency.
	HopCycles uint64

	// MemCycles is the main-memory access latency (42ns × 2.5GHz ≈ 105).
	MemCycles uint64

	// Exposure factors: the fraction of a miss's latency that stalls the
	// core.
	InstrMissExposure   float64
	OnChipDataExposure  float64
	OffChipDataExposure float64

	// MigrationCycles is the thread-migration cost (Section 3.2.4 estimates
	// ~90 cycles: 6 cache lines of context through the LLC).
	MigrationCycles uint64
	// ContextSwitchCycles is the same-core switch cost (STREX-style
	// hardware-stratified switching).
	ContextSwitchCycles uint64
}

// Shallow returns the Table 1 configuration.
func Shallow() Config {
	return Config{
		Cores:   16,
		BaseIPC: 2.0,
		L1I:     cache.Config{SizeBytes: 32 << 10, Ways: 8, Name: "L1-I"},
		L1D:     cache.Config{SizeBytes: 32 << 10, Ways: 8, Name: "L1-D"},
		Shared: cache.Config{
			SizeBytes: 16 << 20, // 1MB per core × 16 cores
			Ways:      16,
			Name:      "L2",
		},
		SharedBanks:         16,
		SharedHitCycles:     16,
		HopCycles:           1,
		MemCycles:           105, // 42ns at 2.5GHz
		InstrMissExposure:   1.0,
		OnChipDataExposure:  0.30,
		OffChipDataExposure: 0.85,
		MigrationCycles:     90,
		ContextSwitchCycles: 90,
	}
}

// Deep returns Section 4.6's deeper hierarchy: the shallow machine plus a
// 256KB per-core L2 with a 7-cycle hit latency; the shared cache becomes
// the L3.
func Deep() Config {
	c := Shallow()
	c.PrivateL2 = &cache.Config{SizeBytes: 256 << 10, Ways: 8, Name: "L2-private"}
	c.PrivateL2Cycles = 7
	c.Shared.Name = "L3"
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: %d cores", c.Cores)
	}
	if c.BaseIPC <= 0 {
		return fmt.Errorf("sim: BaseIPC %v", c.BaseIPC)
	}
	if err := c.L1I.Validate(); err != nil {
		return err
	}
	if err := c.L1D.Validate(); err != nil {
		return err
	}
	if c.PrivateL2 != nil {
		if err := c.PrivateL2.Validate(); err != nil {
			return err
		}
	}
	if err := c.Shared.Validate(); err != nil {
		return err
	}
	if c.SharedBanks <= 0 || c.SharedBanks&(c.SharedBanks-1) != 0 {
		return fmt.Errorf("sim: %d banks", c.SharedBanks)
	}
	return nil
}

// BaseBlockCycles is the cycle cost of executing one instruction block's
// worth of instructions with no memory stalls.
func (c Config) BaseBlockCycles() uint64 {
	return uint64(float64(trace.InstrPerBlock)/c.BaseIPC + 0.5)
}

// String summarizes the configuration for reports (Table 1 rendering is in
// internal/exp).
func (c Config) String() string {
	kind := "shallow"
	if c.PrivateL2 != nil {
		kind = "deep"
	}
	return fmt.Sprintf("%d cores, %s hierarchy, %dKB L1, %dMB shared %s",
		c.Cores, kind, c.L1I.SizeBytes>>10, c.Shared.SizeBytes>>20, c.Shared.Name)
}
