package sim

import (
	"container/heap"
	"fmt"

	"addict/internal/trace"
)

// The executor is a discrete-event engine: threads (one per transaction
// trace) execute events on cores in global time order, with per-core FIFO
// wait queues. Scheduling mechanisms steer it through the Hooks interface —
// the same structure as the paper's evaluation, where Baseline, STREX,
// SLICC, and ADDICT are all "implemented on the Zesto simulator"
// (Section 4.1).

// ActionKind is a scheduler directive for the next event of a thread.
type ActionKind uint8

// Scheduler directives.
const (
	// ActRun executes the event on the thread's current core.
	ActRun ActionKind = iota
	// ActMigrate moves the thread to core Dest (paying the migration cost),
	// then executes the event there.
	ActMigrate
	// ActYield performs a same-core context switch: the thread goes to the
	// back of its core's queue and the next queued thread resumes. The
	// event is retried when the thread runs again (STREX's
	// time-multiplexing).
	ActYield
)

// Action is the scheduler's decision for one event.
type Action struct {
	Kind ActionKind
	// Dest is the target core for ActMigrate.
	Dest int
}

// Run is the no-op action.
var Run = Action{Kind: ActRun}

// MigrateTo builds a migration action.
func MigrateTo(core int) Action { return Action{Kind: ActMigrate, Dest: core} }

// Yield is the STREX-style same-core switch action.
var Yield = Action{Kind: ActYield}

// Hooks is the scheduling-mechanism interface.
type Hooks interface {
	// Place returns the core whose queue thread t initially joins.
	Place(t *Thread) int
	// Act decides what happens before executing event ev of t (which
	// currently occupies t.Core). Migrating to the current core is
	// equivalent to ActRun.
	Act(t *Thread, ev trace.Event) Action
	// Observe reports the outcome after an event executes.
	Observe(t *Thread, ev trace.Event, out AccessOutcome)
}

// Thread is one transaction's replay cursor.
type Thread struct {
	ID    int
	Trace *trace.Trace
	// Core is the core the thread occupies (or waits at).
	Core int
	// Batch is the scheduler-assigned batch number (same-type batching).
	Batch int

	pos       int
	time      uint64
	started   bool
	startTime uint64
	endTime   uint64
	state     threadState
	// pendingCost is charged when the thread next acquires a core
	// (migration or context-switch latency).
	pendingCost uint64
	// forceRun executes the next event without consulting the scheduler —
	// set after a migration so each event gets exactly one migration
	// decision (re-asking after arrival could ping-pong forever).
	forceRun bool
}

type threadState uint8

const (
	stateQueued threadState = iota
	stateRunning
	stateDone
)

// Pos returns the index of the next event to execute.
func (t *Thread) Pos() int { return t.pos }

// Time returns the thread's virtual clock.
func (t *Thread) Time() uint64 { return t.time }

// Latency returns the thread's completion latency (first execution →
// completion); valid once done.
func (t *Thread) Latency() uint64 { return t.endTime - t.startTime }

// Result aggregates a completed run.
type Result struct {
	// Machine is the machine the run executed on (with its counters).
	Machine *Machine
	// Makespan is the cycle at which the last thread completed — the
	// paper's "cycles to complete 1000 traces".
	Makespan uint64
	// TotalLatency is the sum of per-transaction latencies.
	TotalLatency uint64
	// Threads is the number of transactions executed.
	Threads int
	// Migrations counts cross-core thread moves; ContextSwitches counts
	// same-core switches (Figure 9's overhead metric counts both).
	Migrations      uint64
	ContextSwitches uint64
	// OverheadCycles is the total cycles spent in migration/switch costs.
	OverheadCycles uint64
	// CoreActive[c] is the busy-cycle count of core c (power model input).
	CoreActive []uint64
}

// AvgLatency returns the mean transaction latency.
func (r Result) AvgLatency() float64 {
	if r.Threads == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Threads)
}

// SwitchesPerKInstr returns (migrations+context switches) per 1000
// instructions — Figure 9's left plot.
func (r Result) SwitchesPerKInstr() float64 {
	if r.Machine.Instructions == 0 {
		return 0
	}
	return float64(r.Migrations+r.ContextSwitches) / float64(r.Machine.Instructions) * 1000
}

// OverheadShare returns the fraction of total core-busy cycles spent on
// migration/switch overhead — Figure 9's right plot.
func (r Result) OverheadShare() float64 {
	var busy uint64
	for _, c := range r.CoreActive {
		busy += c
	}
	if busy == 0 {
		return 0
	}
	return float64(r.OverheadCycles) / float64(busy)
}

type coreState struct {
	occupant int // thread ID, -1 when free
	queue    []int
	freeAt   uint64
	active   uint64
}

// Executor drives a set of threads over a machine under a scheduling
// mechanism.
type Executor struct {
	M     *Machine
	hooks Hooks

	// AdmitLimit bounds the number of unfinished admitted threads (0 = no
	// bound). ADDICT and SLICC admit one batch at a time ("the batch size
	// is equal to the number of available cores ... to not increase
	// average transaction latency drastically", Section 3.2.1); Baseline
	// and STREX bound concurrency through their core queues instead.
	AdmitLimit int
	// BatchBarrier admits threads one batch at a time: batch b+1 starts
	// only when every thread of batch b has finished. Instructions loaded
	// by the previous batch stay resident, which is the paper's "the
	// transactions from the previous batch might prefetch the instructions
	// needed for current batch" (Section 4.5). Overrides AdmitLimit.
	BatchBarrier bool

	threads []*Thread
	cores   []coreState
	ready   threadHeap

	nextAdmit int
	live      int
	clock     uint64 // latest event time seen; late admissions join "now"

	migrations, switches, overhead uint64
}

// NewExecutor prepares a run of the given traces.
func NewExecutor(m *Machine, hooks Hooks, traces []*trace.Trace) *Executor {
	ex := &Executor{M: m, hooks: hooks}
	ex.cores = make([]coreState, m.Cfg.Cores)
	for i := range ex.cores {
		ex.cores[i].occupant = -1
	}
	for i, tr := range traces {
		ex.threads = append(ex.threads, &Thread{ID: i, Trace: tr, Core: -1})
	}
	return ex
}

// Threads exposes the run's threads (schedulers use it for batching).
func (ex *Executor) Threads() []*Thread { return ex.threads }

// Run executes all threads to completion and returns the result.
func (ex *Executor) Run() Result {
	// Admission: threads join their placement core's queue in thread order
	// (which schedulers control by batching), up to AdmitLimit in flight.
	ex.admit()
	for ex.ready.Len() > 0 {
		t := heap.Pop(&ex.ready).(*Thread)
		if t.time > ex.clock {
			ex.clock = t.time
		}
		ex.step(t)
	}
	res := Result{
		Machine:         ex.M,
		Threads:         len(ex.threads),
		Migrations:      ex.migrations,
		ContextSwitches: ex.switches,
		OverheadCycles:  ex.overhead,
	}
	for _, t := range ex.threads {
		if t.state != stateDone {
			panic(fmt.Sprintf("sim: thread %d stuck at event %d/%d (deadlocked queue?)",
				t.ID, t.pos, len(t.Trace.Events)))
		}
		if t.endTime > res.Makespan {
			res.Makespan = t.endTime
		}
		res.TotalLatency += t.Latency()
	}
	res.CoreActive = make([]uint64, len(ex.cores))
	for i := range ex.cores {
		res.CoreActive[i] = ex.cores[i].active
	}
	return res
}

// step processes one event of a running thread.
func (ex *Executor) step(t *Thread) {
	if t.pos >= len(t.Trace.Events) {
		ex.finish(t)
		return
	}
	ev := t.Trace.Events[t.pos]
	act := Run
	if t.forceRun {
		t.forceRun = false
	} else {
		act = ex.hooks.Act(t, ev)
	}
	switch act.Kind {
	case ActMigrate:
		if act.Dest != t.Core {
			ex.migrate(t, act.Dest)
			return
		}
		fallthrough // migrating to the current core is just running
	case ActRun:
		out := ex.M.Exec(t.Core, ev)
		if !t.started && ev.IsMemory() {
			t.started = true
			t.startTime = t.time
		}
		t.time += out.Cycles
		ex.cores[t.Core].active += out.Cycles
		t.pos++
		ex.hooks.Observe(t, ev, out)
		heap.Push(&ex.ready, t)
	case ActYield:
		ex.yield(t)
	}
}

// admit places waiting threads until the in-flight bound is reached (or,
// under BatchBarrier, the whole next batch once the previous one drained).
func (ex *Executor) admit() {
	if ex.BatchBarrier {
		if ex.live > 0 {
			return
		}
		for ex.nextAdmit < len(ex.threads) {
			t := ex.threads[ex.nextAdmit]
			if ex.live > 0 && t.Batch != ex.threads[ex.nextAdmit-1].Batch {
				break
			}
			ex.nextAdmit++
			ex.live++
			dest := ex.hooks.Place(t)
			ex.enqueue(t, dest, ex.clock)
		}
		return
	}
	for ex.nextAdmit < len(ex.threads) && (ex.AdmitLimit == 0 || ex.live < ex.AdmitLimit) {
		t := ex.threads[ex.nextAdmit]
		ex.nextAdmit++
		ex.live++
		dest := ex.hooks.Place(t)
		ex.enqueue(t, dest, ex.clock)
	}
}

// finish completes a thread, promotes the next waiter on its core, and
// admits a replacement.
func (ex *Executor) finish(t *Thread) {
	t.state = stateDone
	t.endTime = t.time
	if !t.started { // empty trace: zero-length latency
		t.startTime = t.time
	}
	ex.releaseCore(t.Core, t.time)
	t.Core = -1
	ex.live--
	ex.admit()
}

// migrate moves t to dest: the current core is released and t joins dest.
func (ex *Executor) migrate(t *Thread, dest int) {
	ex.migrations++
	ex.overhead += ex.M.Cfg.MigrationCycles
	from := t.Core
	ex.releaseCore(from, t.time)
	t.pendingCost = ex.M.Cfg.MigrationCycles
	t.forceRun = true
	ex.enqueue(t, dest, t.time)
}

// yield rotates t behind the waiters of its own batch on the same core and
// promotes the queue head — STREX's intra-batch time multiplexing. A thread
// with no same-batch peers waiting keeps running (nothing to reuse its
// cache contents), without a switch charged.
func (ex *Executor) yield(t *Thread) {
	core := &ex.cores[t.Core]
	last := -1
	for i, id := range core.queue {
		if ex.threads[id].Batch == t.Batch {
			last = i
		}
	}
	if last == -1 {
		heap.Push(&ex.ready, t)
		return
	}
	ex.switches++
	ex.overhead += ex.M.Cfg.ContextSwitchCycles
	t.state = stateQueued
	t.pendingCost = ex.M.Cfg.ContextSwitchCycles
	core.queue = append(core.queue, 0)
	copy(core.queue[last+2:], core.queue[last+1:])
	core.queue[last+1] = t.ID
	core.occupant = -1
	ex.promote(t.Core, t.time)
}

// enqueue adds t to a core's queue at time `now`, running it immediately if
// the core is free.
func (ex *Executor) enqueue(t *Thread, core int, now uint64) {
	t.Core = core
	c := &ex.cores[core]
	if c.occupant == -1 && len(c.queue) == 0 {
		c.occupant = t.ID
		if c.freeAt > t.time {
			t.time = c.freeAt
		}
		if now > t.time {
			t.time = now
		}
		t.time += t.pendingCost
		t.pendingCost = 0
		t.state = stateRunning
		heap.Push(&ex.ready, t)
		return
	}
	t.state = stateQueued
	c.queue = append(c.queue, t.ID)
}

// releaseCore frees a core at time `now` and promotes the next waiter.
func (ex *Executor) releaseCore(core int, now uint64) {
	c := &ex.cores[core]
	c.occupant = -1
	if c.freeAt < now {
		c.freeAt = now
	}
	ex.promote(core, now)
}

// promote moves the head waiter (if any) onto the core.
func (ex *Executor) promote(core int, now uint64) {
	c := &ex.cores[core]
	if c.occupant != -1 || len(c.queue) == 0 {
		return
	}
	id := c.queue[0]
	c.queue = c.queue[1:]
	t := ex.threads[id]
	c.occupant = id
	if t.time < now {
		t.time = now
	}
	if t.time < c.freeAt {
		t.time = c.freeAt
	}
	t.time += t.pendingCost
	t.pendingCost = 0
	t.state = stateRunning
	heap.Push(&ex.ready, t)
}

// QueueLen reports a core's wait-queue length (scheduler load balancing).
func (ex *Executor) QueueLen(core int) int { return len(ex.cores[core].queue) }

// CoreFree reports whether a core is unoccupied with an empty queue.
func (ex *Executor) CoreFree(core int) bool {
	return ex.cores[core].occupant == -1 && len(ex.cores[core].queue) == 0
}

// threadHeap orders runnable threads by (time, ID) for determinism.
type threadHeap []*Thread

func (h threadHeap) Len() int { return len(h) }
func (h threadHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].ID < h[j].ID
}
func (h threadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *threadHeap) Push(x interface{}) { *h = append(*h, x.(*Thread)) }
func (h *threadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
