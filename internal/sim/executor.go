package sim

import (
	"fmt"

	"addict/internal/trace"
)

// The executor is a discrete-event engine: threads (one per transaction
// trace) execute events on cores in global time order, with per-core FIFO
// wait queues. Scheduling mechanisms steer it through the Hooks interface —
// the same structure as the paper's evaluation, where Baseline, STREX,
// SLICC, and ADDICT are all "implemented on the Zesto simulator"
// (Section 4.1).
//
// The engine is written for zero steady-state allocation and minimal
// per-event dispatch: all per-thread and per-core state is preallocated in
// NewExecutor, the ready set is a hand-rolled binary heap of thread
// pointers (no interface boxing, comparisons inline), a running thread
// keeps executing without any heap traffic while it remains earliest in
// the (time, ID) order, and mechanisms implementing BatchHooks commit
// whole event windows so the per-event Act/Observe interface calls vanish
// from the hot path. All of this is observationally equivalent to the
// one-event-at-a-time engine (NoBatch replays that behavior exactly).

// ActionKind is a scheduler directive for the next event of a thread.
type ActionKind uint8

// Scheduler directives.
const (
	// ActRun executes the event on the thread's current core.
	ActRun ActionKind = iota
	// ActMigrate moves the thread to core Dest (paying the migration cost),
	// then executes the event there.
	ActMigrate
	// ActYield performs a same-core context switch: the thread goes to the
	// back of its core's queue and the next queued thread resumes. The
	// event is retried when the thread runs again (STREX's
	// time-multiplexing).
	ActYield
)

// Action is the scheduler's decision for one event.
type Action struct {
	Kind ActionKind
	// Dest is the target core for ActMigrate.
	Dest int
}

// Run is the no-op action.
var Run = Action{Kind: ActRun}

// MigrateTo builds a migration action.
func MigrateTo(core int) Action { return Action{Kind: ActMigrate, Dest: core} }

// Yield is the STREX-style same-core switch action.
var Yield = Action{Kind: ActYield}

// Hooks is the scheduling-mechanism interface.
type Hooks interface {
	// Place returns the core whose queue thread t initially joins.
	Place(t *Thread) int
	// Act decides what happens before executing event ev of t (which
	// currently occupies t.Core). Migrating to the current core is
	// equivalent to ActRun.
	Act(t *Thread, ev trace.Event) Action
	// Observe reports the outcome after an event executes.
	Observe(t *Thread, ev trace.Event, out AccessOutcome)
}

// Thread is one transaction's replay cursor.
type Thread struct {
	ID    int
	Trace *trace.Trace
	// Core is the core the thread occupies (or waits at).
	Core int
	// Batch is the scheduler-assigned batch number (same-type batching).
	Batch int

	pos       int
	time      uint64
	started   bool
	startTime uint64
	endTime   uint64
	state     threadState
	// pendingCost is charged when the thread next acquires a core
	// (migration or context-switch latency).
	pendingCost uint64
	// forceRun executes the next event without consulting the scheduler —
	// set after a migration so each event gets exactly one migration
	// decision (re-asking after arrival could ping-pong forever).
	forceRun bool
	// committed counts upcoming events the mechanism has batch-committed
	// to plain execution (BatchHooks.RunWindow); they run without Act.
	committed int
}

type threadState uint8

const (
	stateQueued threadState = iota
	stateRunning
	stateDone
)

// Pos returns the index of the next event to execute.
func (t *Thread) Pos() int { return t.pos }

// Time returns the thread's virtual clock.
func (t *Thread) Time() uint64 { return t.time }

// Latency returns the thread's completion latency (first execution →
// completion); valid once done.
func (t *Thread) Latency() uint64 { return t.endTime - t.startTime }

// Result aggregates a completed run.
type Result struct {
	// Machine is the machine the run executed on (with its counters).
	Machine *Machine
	// Makespan is the cycle at which the last thread completed — the
	// paper's "cycles to complete 1000 traces".
	Makespan uint64
	// TotalLatency is the sum of per-transaction latencies.
	TotalLatency uint64
	// Threads is the number of transactions executed.
	Threads int
	// Migrations counts cross-core thread moves; ContextSwitches counts
	// same-core switches (Figure 9's overhead metric counts both).
	Migrations      uint64
	ContextSwitches uint64
	// OverheadCycles is the total cycles spent in migration/switch costs.
	OverheadCycles uint64
	// CoreActive[c] is the busy-cycle count of core c (power model input).
	CoreActive []uint64
	// Spec carries the speculation counters of HTM-style mechanisms
	// (all-zero for non-speculative ones).
	Spec SpecStats
}

// SpecStats aggregates the abort/fallback counters of a speculative
// (HTM-style) mechanism run.
type SpecStats struct {
	// CapacityAborts counts regions aborted because a read or write set
	// overflowed its bound.
	CapacityAborts uint64
	// ConflictAborts counts regions aborted on a conflicting line (written
	// by another thread since the region began).
	ConflictAborts uint64
	// Fallbacks counts threads that exhausted their abort budget and fell
	// back to non-speculative execution for the rest of the run.
	Fallbacks uint64
}

// SpecReporter is implemented by hooks of speculative mechanisms; the
// executor collects the counters into Result.Spec at the end of a run.
type SpecReporter interface {
	SpecStats() SpecStats
}

// AvgLatency returns the mean transaction latency.
func (r Result) AvgLatency() float64 {
	if r.Threads == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Threads)
}

// SwitchesPerKInstr returns (migrations+context switches) per 1000
// instructions — Figure 9's left plot.
func (r Result) SwitchesPerKInstr() float64 {
	if r.Machine.Instructions == 0 {
		return 0
	}
	return float64(r.Migrations+r.ContextSwitches) / float64(r.Machine.Instructions) * 1000
}

// OverheadShare returns the fraction of total core-busy cycles spent on
// migration/switch overhead — Figure 9's right plot.
func (r Result) OverheadShare() float64 {
	var busy uint64
	for _, c := range r.CoreActive {
		busy += c
	}
	if busy == 0 {
		return 0
	}
	return float64(r.OverheadCycles) / float64(busy)
}

// coreState tracks one core: its occupant and a FIFO wait queue stored as
// a ring over a preallocated slice (head advances on promote; the live
// region is queue[head:]). The queue never allocates after NewExecutor —
// its capacity is the thread count, the upper bound on waiters anywhere.
type coreState struct {
	occupant int // thread ID, -1 when free
	queue    []int
	head     int
	freeAt   uint64
	active   uint64
}

// qlen is the number of waiting threads.
func (c *coreState) qlen() int { return len(c.queue) - c.head }

// compact reclaims the dead head region so an append stays in capacity.
func (c *coreState) compact() {
	n := copy(c.queue, c.queue[c.head:])
	c.queue = c.queue[:n]
	c.head = 0
}

// push appends a waiter.
func (c *coreState) push(id int) {
	if len(c.queue) == cap(c.queue) && c.head > 0 {
		c.compact()
	}
	c.queue = append(c.queue, id)
}

// popFront removes and returns the head waiter.
func (c *coreState) popFront() int {
	id := c.queue[c.head]
	c.head++
	if c.head == len(c.queue) {
		c.queue = c.queue[:0]
		c.head = 0
	}
	return id
}

// Executor drives a set of threads over a machine under a scheduling
// mechanism.
type Executor struct {
	M     *Machine
	hooks Hooks

	// AdmitLimit bounds the number of unfinished admitted threads (0 = no
	// bound). ADDICT and SLICC admit one batch at a time ("the batch size
	// is equal to the number of available cores ... to not increase
	// average transaction latency drastically", Section 3.2.1); Baseline
	// and STREX bound concurrency through their core queues instead.
	AdmitLimit int
	// BatchBarrier admits threads one batch at a time: batch b+1 starts
	// only when every thread of batch b has finished. Instructions loaded
	// by the previous batch stay resident, which is the paper's "the
	// transactions from the previous batch might prefetch the instructions
	// needed for current batch" (Section 4.5). Overrides AdmitLimit.
	BatchBarrier bool
	// NoBatch forces per-event dispatch even when the mechanism implements
	// BatchHooks. Results are identical either way (that equivalence is
	// what the differential tests assert); the per-event path is the
	// reference.
	NoBatch bool

	threads []*Thread
	cores   []coreState
	ready   threadHeap
	batch   BatchHooks // hooks, when batch-capable and batching enabled
	// outs is the preallocated outcome buffer for committed-window chunks.
	outs [maxWindow]AccessOutcome

	nextAdmit int
	live      int
	clock     uint64 // latest event time seen; late admissions join "now"

	migrations, switches, overhead uint64
}

// NewExecutor prepares a run of the given traces. All per-thread and
// per-core state is allocated here; the replay loop itself is
// allocation-free.
func NewExecutor(m *Machine, hooks Hooks, traces []*trace.Trace) *Executor {
	ex := &Executor{M: m, hooks: hooks}
	ex.cores = make([]coreState, m.Cfg.Cores)
	for i := range ex.cores {
		ex.cores[i].occupant = -1
		ex.cores[i].queue = make([]int, 0, len(traces))
	}
	store := make([]Thread, len(traces))
	ex.threads = make([]*Thread, len(traces))
	for i, tr := range traces {
		store[i] = Thread{ID: i, Trace: tr, Core: -1}
		ex.threads[i] = &store[i]
	}
	ex.ready.s = make([]*Thread, 0, len(traces))
	return ex
}

// Threads exposes the run's threads (schedulers use it for batching).
func (ex *Executor) Threads() []*Thread { return ex.threads }

// Run executes all threads to completion and returns the result.
func (ex *Executor) Run() Result {
	ex.batch = nil
	if !ex.NoBatch {
		if b, ok := ex.hooks.(BatchHooks); ok {
			ex.batch = b
		}
	}
	// Admission: threads join their placement core's queue in thread order
	// (which schedulers control by batching), up to AdmitLimit in flight.
	ex.admit()
	for ex.ready.len() > 0 {
		t := ex.ready.pop()
		for t != nil {
			t = ex.runThread(t)
		}
	}
	res := Result{
		Machine:         ex.M,
		Threads:         len(ex.threads),
		Migrations:      ex.migrations,
		ContextSwitches: ex.switches,
		OverheadCycles:  ex.overhead,
	}
	for _, t := range ex.threads {
		if t.state != stateDone {
			panic(fmt.Sprintf("sim: thread %d stuck at event %d/%d (deadlocked queue?)",
				t.ID, t.pos, len(t.Trace.Events)))
		}
		if t.endTime > res.Makespan {
			res.Makespan = t.endTime
		}
		res.TotalLatency += t.Latency()
	}
	res.CoreActive = make([]uint64, len(ex.cores))
	for i := range ex.cores {
		res.CoreActive[i] = ex.cores[i].active
	}
	if r, ok := ex.hooks.(SpecReporter); ok {
		res.Spec = r.SpecStats()
	}
	return res
}

// runThread executes t's events until the thread finishes, blocks
// (migration or yield), or another ready thread becomes earlier in the
// (time, ID) order. In the last case t swaps places with the heap minimum
// and the new earliest thread is returned — one sift instead of a
// push+pop, and no heap traffic at all while t stays earliest. Each loop
// iteration corresponds exactly to one pop of the one-event-at-a-time
// engine, so the event interleaving (and therefore every simulated
// counter) is identical.
func (ex *Executor) runThread(t *Thread) *Thread {
	events := t.Trace.Events
	for {
		if t.time > ex.clock {
			ex.clock = t.time
		}
		if t.pos >= len(events) {
			ex.finish(t)
			return nil
		}
		if t.committed > 0 {
			if ex.execCommitted(t) {
				return ex.ready.swapRoot(t)
			}
			continue
		}
		if t.forceRun {
			t.forceRun = false
			if ex.execOne(t, events[t.pos]) {
				return ex.ready.swapRoot(t)
			}
			continue
		}
		if ex.batch != nil {
			win := events[t.pos:]
			if len(win) > maxWindow {
				win = win[:maxWindow]
			}
			if n := ex.batch.RunWindow(t, win); n > 0 {
				if n > len(win) {
					n = len(win)
				}
				t.committed = n
				if ex.execCommitted(t) {
					return ex.ready.swapRoot(t)
				}
				continue
			}
		}
		ev := events[t.pos]
		act := ex.hooks.Act(t, ev)
		switch act.Kind {
		case ActMigrate:
			if act.Dest != t.Core {
				ex.migrate(t, act.Dest)
				return nil
			}
			fallthrough // migrating to the current core is just running
		case ActRun:
			if ex.execOne(t, ev) {
				return ex.ready.swapRoot(t)
			}
		case ActYield:
			if ex.yield(t) {
				return nil
			}
			// No same-batch waiter: the thread keeps the core and the
			// scheduler is asked again (it has just reset its monitor).
		}
	}
}

// execOne executes one event with a per-event Observe and reports whether
// t lost its earliest position.
func (ex *Executor) execOne(t *Thread, ev trace.Event) (preempted bool) {
	out := ex.M.Exec(t.Core, ev)
	if !t.started && ev.IsMemory() {
		t.started = true
		t.startTime = t.time
	}
	t.time += out.Cycles
	ex.cores[t.Core].active += out.Cycles
	t.pos++
	ex.hooks.Observe(t, ev, out)
	return len(ex.ready.s) > 0 && before(ex.ready.s[0], t)
}

// execCommitted executes as much of t's batch commitment as the global
// (time, ID) order allows — no Act calls, outcomes reported through one
// ObserveBatch per chunk — and reports whether t was preempted. The heap
// cannot change while the chunk runs (executing events touches only the
// machine, the thread, and its core's cycle counter), so the preemption
// bound is two registers, not a heap probe per event.
func (ex *Executor) execCommitted(t *Thread) (preempted bool) {
	n := t.committed
	evs := t.Trace.Events[t.pos : t.pos+n]
	limTime := ^uint64(0)
	limWins := false // at equal time, does the ready head precede t?
	if len(ex.ready.s) > 0 {
		top := ex.ready.s[0]
		limTime = top.time
		limWins = top.ID < t.ID
	}
	m := ex.M
	core := t.Core
	var cycles uint64
	k := 0
	for k < n {
		ev := evs[k]
		out := m.Exec(core, ev)
		if !t.started && ev.IsMemory() {
			t.started = true
			t.startTime = t.time
		}
		t.time += out.Cycles
		cycles += out.Cycles
		ex.outs[k] = out
		k++
		if t.time > limTime || (t.time == limTime && limWins) {
			preempted = true
			break
		}
	}
	ex.cores[core].active += cycles
	t.pos += k
	t.committed = n - k
	ex.batch.ObserveBatch(t, evs[:k], ex.outs[:k])
	return preempted
}

// admit places waiting threads until the in-flight bound is reached (or,
// under BatchBarrier, the whole next batch once the previous one drained).
func (ex *Executor) admit() {
	if ex.BatchBarrier {
		if ex.live > 0 {
			return
		}
		for ex.nextAdmit < len(ex.threads) {
			t := ex.threads[ex.nextAdmit]
			if ex.live > 0 && t.Batch != ex.threads[ex.nextAdmit-1].Batch {
				break
			}
			ex.nextAdmit++
			ex.live++
			dest := ex.hooks.Place(t)
			ex.enqueue(t, dest, ex.clock)
		}
		return
	}
	for ex.nextAdmit < len(ex.threads) && (ex.AdmitLimit == 0 || ex.live < ex.AdmitLimit) {
		t := ex.threads[ex.nextAdmit]
		ex.nextAdmit++
		ex.live++
		dest := ex.hooks.Place(t)
		ex.enqueue(t, dest, ex.clock)
	}
}

// finish completes a thread, promotes the next waiter on its core, and
// admits a replacement.
func (ex *Executor) finish(t *Thread) {
	t.state = stateDone
	t.endTime = t.time
	if !t.started { // empty trace: zero-length latency
		t.startTime = t.time
	}
	ex.releaseCore(t.Core, t.time)
	t.Core = -1
	ex.live--
	ex.admit()
}

// migrate moves t to dest: the current core is released and t joins dest.
func (ex *Executor) migrate(t *Thread, dest int) {
	ex.migrations++
	ex.overhead += ex.M.Cfg.MigrationCycles
	from := t.Core
	ex.releaseCore(from, t.time)
	t.pendingCost = ex.M.Cfg.MigrationCycles
	t.forceRun = true
	ex.enqueue(t, dest, t.time)
}

// yield rotates t behind the waiters of its own batch on the same core and
// promotes the queue head — STREX's intra-batch time multiplexing. A thread
// with no same-batch peers waiting keeps running (nothing to reuse its
// cache contents), without a switch charged; yield then returns false and
// the thread keeps the core.
func (ex *Executor) yield(t *Thread) bool {
	c := &ex.cores[t.Core]
	last := -1
	for i := c.head; i < len(c.queue); i++ {
		if ex.threads[c.queue[i]].Batch == t.Batch {
			last = i
		}
	}
	if last == -1 {
		return false
	}
	ex.switches++
	ex.overhead += ex.M.Cfg.ContextSwitchCycles
	t.state = stateQueued
	t.pendingCost = ex.M.Cfg.ContextSwitchCycles
	if len(c.queue) == cap(c.queue) && c.head > 0 {
		last -= c.head
		c.compact()
	}
	c.queue = append(c.queue, 0)
	copy(c.queue[last+2:], c.queue[last+1:])
	c.queue[last+1] = t.ID
	c.occupant = -1
	ex.promote(t.Core, t.time)
	return true
}

// enqueue adds t to a core's queue at time `now`, running it immediately if
// the core is free.
func (ex *Executor) enqueue(t *Thread, core int, now uint64) {
	t.Core = core
	c := &ex.cores[core]
	if c.occupant == -1 && c.qlen() == 0 {
		c.occupant = t.ID
		if c.freeAt > t.time {
			t.time = c.freeAt
		}
		if now > t.time {
			t.time = now
		}
		t.time += t.pendingCost
		t.pendingCost = 0
		t.state = stateRunning
		ex.ready.push(t)
		return
	}
	t.state = stateQueued
	c.push(t.ID)
}

// releaseCore frees a core at time `now` and promotes the next waiter.
func (ex *Executor) releaseCore(core int, now uint64) {
	c := &ex.cores[core]
	c.occupant = -1
	if c.freeAt < now {
		c.freeAt = now
	}
	ex.promote(core, now)
}

// promote moves the head waiter (if any) onto the core.
func (ex *Executor) promote(core int, now uint64) {
	c := &ex.cores[core]
	if c.occupant != -1 || c.qlen() == 0 {
		return
	}
	id := c.popFront()
	t := ex.threads[id]
	c.occupant = id
	if t.time < now {
		t.time = now
	}
	if t.time < c.freeAt {
		t.time = c.freeAt
	}
	t.time += t.pendingCost
	t.pendingCost = 0
	t.state = stateRunning
	ex.ready.push(t)
}

// QueueLen reports a core's wait-queue length (scheduler load balancing).
func (ex *Executor) QueueLen(core int) int { return ex.cores[core].qlen() }

// CoreFree reports whether a core is unoccupied with an empty queue.
func (ex *Executor) CoreFree(core int) bool {
	return ex.cores[core].occupant == -1 && ex.cores[core].qlen() == 0
}

// before is the executor's strict total order on threads: (time, ID)
// lexicographic. IDs are unique, so ties cannot exist and any correct heap
// pops the same sequence the container/heap engine did.
func before(a, b *Thread) bool {
	return a.time < b.time || (a.time == b.time && a.ID < b.ID)
}

// threadHeap is a hand-rolled binary min-heap of runnable threads. It
// exists (instead of container/heap) because the heap is the replay loop's
// hottest structure: concrete element type and inlined comparisons remove
// the interface dispatch of Less/Swap/Push/Pop, and swapRoot replaces the
// push-then-pop round trip of a preempted thread with a single sift-down.
type threadHeap struct {
	s []*Thread
}

func (h *threadHeap) len() int { return len(h.s) }

// push inserts t (hole-based sift-up: parents slide down, t is stored
// once).
func (h *threadHeap) push(t *Thread) {
	h.s = append(h.s, t)
	s := h.s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !before(t, s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = t
}

// pop removes and returns the earliest thread.
func (h *threadHeap) pop() *Thread {
	t := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s[last] = nil
	h.s = h.s[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return t
}

// swapRoot exchanges the earliest thread for t — equivalent to push(t)
// followed by pop() when t is known not to be the earliest.
func (h *threadHeap) swapRoot(t *Thread) *Thread {
	r := h.s[0]
	h.s[0] = t
	h.siftDown(0)
	return r
}

// siftDown restores the heap below i (hole-based: children slide up, the
// displaced thread is stored once at its final slot).
func (h *threadHeap) siftDown(i int) {
	s := h.s
	n := len(s)
	t := s[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && before(s[r], s[l]) {
			m = r
		}
		if !before(s[m], t) {
			break
		}
		s[i] = s[m]
		i = m
	}
	s[i] = t
}
