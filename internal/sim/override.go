package sim

import "fmt"

// Overrides is a sparse set of machine-parameter substitutions for
// sensitivity sweeps (internal/sweep): zero-valued fields keep the base
// configuration's value. Apply validates the substituted configuration and
// recomputes the derived fields, so a sweep axis can vary one knob without
// hand-maintaining the rest of Table 1.
type Overrides struct {
	// Cores substitutes the core count. The shared cache keeps its
	// per-core capacity budget (Table 1: 1MB per core) and one bank per
	// core, unless SharedSizeBytes pins the total explicitly.
	Cores int

	// L1ISizeBytes / L1IWays reshape the private instruction cache —
	// the axis the paper's whole premise is most sensitive to.
	L1ISizeBytes int
	L1IWays      int

	// L1DSizeBytes / L1DWays reshape the private data cache.
	L1DSizeBytes int
	L1DWays      int

	// SharedSizeBytes / SharedWays reshape the shared last-level cache
	// (total capacity, not per-core). SharedSizeBytes takes precedence
	// over the per-core scaling a Cores override would derive.
	SharedSizeBytes int
	SharedWays      int

	// SharedHitCycles / MemCycles substitute the miss latencies.
	SharedHitCycles uint64
	MemCycles       uint64
}

// IsZero reports whether the overrides substitute nothing.
func (o Overrides) IsZero() bool { return o == Overrides{} }

// Apply returns the base configuration with the overrides substituted and
// derived fields recomputed: a Cores change rescales the shared cache to
// the base per-core budget and re-derives the bank count (one bank per
// core, as in Table 1's 16 banks for 16 cores). The result is validated;
// an override that produces an unbuildable machine (non-power-of-two
// geometry, associativity not dividing the blocks) is reported as an
// error rather than a later panic, so sweep specs fail fast at expansion.
func (c Config) Apply(o Overrides) (Config, error) {
	// Negative values are neither "keep" (that is 0) nor buildable —
	// reject them instead of silently keeping the base value.
	for _, v := range []int{o.Cores, o.L1ISizeBytes, o.L1IWays, o.L1DSizeBytes,
		o.L1DWays, o.SharedSizeBytes, o.SharedWays} {
		if v < 0 {
			return Config{}, fmt.Errorf("sim: overrides %+v: negative value", o)
		}
	}
	out := c
	if o.Cores > 0 && o.Cores != c.Cores {
		perCore := c.Shared.SizeBytes / c.Cores
		out.Cores = o.Cores
		out.Shared.SizeBytes = perCore * o.Cores
		out.SharedBanks = o.Cores
	}
	if o.L1ISizeBytes > 0 {
		out.L1I.SizeBytes = o.L1ISizeBytes
	}
	if o.L1IWays > 0 {
		out.L1I.Ways = o.L1IWays
	}
	if o.L1DSizeBytes > 0 {
		out.L1D.SizeBytes = o.L1DSizeBytes
	}
	if o.L1DWays > 0 {
		out.L1D.Ways = o.L1DWays
	}
	if o.SharedSizeBytes > 0 {
		out.Shared.SizeBytes = o.SharedSizeBytes
	}
	if o.SharedWays > 0 {
		out.Shared.Ways = o.SharedWays
	}
	if o.SharedHitCycles > 0 {
		out.SharedHitCycles = o.SharedHitCycles
	}
	if o.MemCycles > 0 {
		out.MemCycles = o.MemCycles
	}
	if err := out.Validate(); err != nil {
		return Config{}, fmt.Errorf("sim: overrides %+v: %w", o, err)
	}
	return out, nil
}
