package trace

import "fmt"

// Recorder receives the memory events produced by an executing transaction.
// The storage manager calls it from every instrumented routine; trace
// generation uses the buffering implementation below, while tests may supply
// lightweight fakes.
type Recorder interface {
	// TxnBegin marks the entry of a transaction of the given type.
	TxnBegin(tt TxnType, name string)
	// TxnEnd marks the exit of the current transaction.
	TxnEnd()
	// OpBegin marks the entry of a database operation.
	OpBegin(op OpType)
	// OpEnd marks the exit of the current database operation.
	OpEnd(op OpType)
	// Instr records the fetch of one 64-byte instruction block.
	Instr(blockAddr uint64)
	// Data records a data access to the 64-byte block containing addr.
	Data(addr uint64, write bool)
}

// Buffer is a Recorder that accumulates events into Trace values.
// It is not safe for concurrent use; trace generation is deterministic and
// single-goroutine (DESIGN.md Section 2).
type Buffer struct {
	cur    *Trace
	done   []*Trace
	curOp  OpType
	inTxn  bool
	inOp   bool
	panics bool
}

// NewBuffer returns an empty trace buffer. If strict is true, protocol
// violations (nested operations, events outside transactions) panic instead
// of being ignored; the storage-manager tests run strict.
func NewBuffer(strict bool) *Buffer {
	return &Buffer{panics: strict}
}

// TxnBegin implements Recorder.
func (b *Buffer) TxnBegin(tt TxnType, name string) {
	if b.inTxn {
		b.violation("TxnBegin inside open transaction")
		return
	}
	b.inTxn = true
	b.cur = &Trace{Type: tt, TypeName: name}
	b.cur.Events = append(b.cur.Events, Event{Kind: KindTxnBegin, Aux: uint16(tt)})
}

// TxnEnd implements Recorder.
func (b *Buffer) TxnEnd() {
	if !b.inTxn {
		b.violation("TxnEnd without TxnBegin")
		return
	}
	if b.inOp {
		b.violation("TxnEnd with open operation")
		return
	}
	b.cur.Events = append(b.cur.Events, Event{Kind: KindTxnEnd})
	b.done = append(b.done, b.cur)
	b.cur = nil
	b.inTxn = false
}

// OpBegin implements Recorder.
func (b *Buffer) OpBegin(op OpType) {
	if !b.inTxn || b.inOp {
		b.violation("OpBegin outside transaction or inside open operation")
		return
	}
	b.inOp = true
	b.curOp = op
	b.cur.Events = append(b.cur.Events, Event{Kind: KindOpBegin, Op: op})
}

// OpEnd implements Recorder.
func (b *Buffer) OpEnd(op OpType) {
	if !b.inOp || op != b.curOp {
		b.violation("OpEnd mismatch")
		return
	}
	b.inOp = false
	b.cur.Events = append(b.cur.Events, Event{Kind: KindOpEnd, Op: op})
}

// Instr implements Recorder.
func (b *Buffer) Instr(blockAddr uint64) {
	if !b.inTxn {
		return // population and background work are not traced
	}
	b.cur.Events = append(b.cur.Events, Event{Kind: KindInstr, Addr: blockAddr &^ (BlockSize - 1)})
}

// Data implements Recorder.
func (b *Buffer) Data(addr uint64, write bool) {
	if !b.inTxn {
		return
	}
	k := KindDataRead
	if write {
		k = KindDataWrite
	}
	b.cur.Events = append(b.cur.Events, Event{Kind: k, Addr: addr &^ (BlockSize - 1)})
}

// Take returns the completed traces and resets the buffer's completed list.
func (b *Buffer) Take() []*Trace {
	t := b.done
	b.done = nil
	return t
}

// Len returns the number of completed traces held by the buffer.
func (b *Buffer) Len() int { return len(b.done) }

func (b *Buffer) violation(msg string) {
	if b.panics {
		panic(fmt.Sprintf("trace: protocol violation: %s", msg))
	}
}

// Discard is a Recorder that drops everything. The storage manager uses it
// during database population, which the paper excludes from tracing
// ("after a warm-up period", Section 4.1).
type Discard struct{}

// TxnBegin implements Recorder.
func (Discard) TxnBegin(TxnType, string) {}

// TxnEnd implements Recorder.
func (Discard) TxnEnd() {}

// OpBegin implements Recorder.
func (Discard) OpBegin(OpType) {}

// OpEnd implements Recorder.
func (Discard) OpEnd(OpType) {}

// Instr implements Recorder.
func (Discard) Instr(uint64) {}

// Data implements Recorder.
func (Discard) Data(uint64, bool) {}
