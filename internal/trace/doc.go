// Package trace defines the memory-trace model shared by every component of
// the ADDICT reproduction: the storage manager emits traces, the
// characterization study analyzes them, and the scheduling mechanisms replay
// them on the timing simulator.
//
// A trace is the per-transaction sequence of instruction-block fetches and
// data accesses, delimited by transaction and database-operation markers —
// the same abstraction the paper obtains from Pin-collected x86 traces
// (Section 4.1), at 64-byte cache-block granularity (Section 2.1). codec.go
// adds the binary serialization (cmd/tracegen), recorder.go the recording
// sinks the storage manager writes into.
package trace
