package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// BlockSize is the cache-block granularity of all recorded addresses, in
// bytes. The paper measures footprints "as the unique 64byte cache blocks
// requested by each operation" (Section 2.1).
const BlockSize = 64

// BlockShift is log2(BlockSize).
const BlockShift = 6

// EventKind discriminates trace events.
type EventKind uint8

// Trace event kinds. Instruction fetches and data accesses carry an address;
// the Begin/End markers carry transaction/operation identifiers, mirroring
// the "indicators ... that correspond to the entry and exit points of the
// transactions or operations" taken as input by Algorithm 1.
const (
	// KindInstr is a fetch of one 64-byte instruction block. Executing it
	// represents executing the instructions it holds (see InstrPerBlock).
	KindInstr EventKind = iota
	// KindDataRead is a data load from a 64-byte block.
	KindDataRead
	// KindDataWrite is a data store to a 64-byte block.
	KindDataWrite
	// KindTxnBegin marks a transaction entry; Aux holds the TxnType.
	KindTxnBegin
	// KindTxnEnd marks a transaction exit.
	KindTxnEnd
	// KindOpBegin marks a database-operation entry; Aux holds the OpType.
	KindOpBegin
	// KindOpEnd marks a database-operation exit; Aux holds the OpType.
	KindOpEnd
)

// String returns a short human-readable name for the kind.
func (k EventKind) String() string {
	switch k {
	case KindInstr:
		return "I"
	case KindDataRead:
		return "R"
	case KindDataWrite:
		return "W"
	case KindTxnBegin:
		return "TxnBegin"
	case KindTxnEnd:
		return "TxnEnd"
	case KindOpBegin:
		return "OpBegin"
	case KindOpEnd:
		return "OpEnd"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// InstrPerBlock is the number of dynamic instructions represented by one
// instruction-block fetch event. x86 instructions average ~4 bytes, so a
// 64-byte block holds ~16; MPKI figures divide miss counts by
// (blocks executed × InstrPerBlock) / 1000.
const InstrPerBlock = 16

// OpType identifies one of the predefined database operations of
// Section 2.1.
type OpType uint8

// The database operations transactions are composed of. OpNone marks code
// executed outside any operation (transaction glue). OpCommit is not one of
// the paper's five operations: it brackets the commit epilogue (commit log
// record + lock release), giving the scheduler an action boundary for the
// per-transaction epilogue code exactly as for the operations proper.
const (
	OpNone OpType = iota
	OpIndexProbe
	OpIndexScan
	OpUpdateTuple
	OpInsertTuple
	OpDeleteTuple
	OpCommit

	NumOpTypes = 7
)

// String returns the paper's name for the operation.
func (o OpType) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpIndexProbe:
		return "probe"
	case OpIndexScan:
		return "scan"
	case OpUpdateTuple:
		return "update"
	case OpInsertTuple:
		return "insert"
	case OpDeleteTuple:
		return "delete"
	case OpCommit:
		return "commit"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(o))
	}
}

// TxnType identifies a transaction type within a workload (e.g. TPC-C
// NewOrder). Values are workload-scoped; package workload assigns them.
type TxnType uint16

// Event is one element of a trace. It is deliberately compact (16 bytes)
// because the stability experiment (Section 4.2) processes 11,000 traces per
// workload.
type Event struct {
	// Addr is the 64-byte-aligned block address for KindInstr/KindDataRead/
	// KindDataWrite events, zero otherwise.
	Addr uint64
	// Kind discriminates the event.
	Kind EventKind
	// Op is the OpType for KindOpBegin/KindOpEnd events.
	Op OpType
	// Aux carries the TxnType for KindTxnBegin events.
	Aux uint16
}

// Block returns the block address of a memory event (already aligned).
func (e Event) Block() uint64 { return e.Addr }

// IsMemory reports whether the event is an instruction fetch or data access.
func (e Event) IsMemory() bool { return e.Kind <= KindDataWrite }

// Trace is the recorded execution of a single transaction.
type Trace struct {
	// Type is the transaction type that produced the trace.
	Type TxnType
	// TypeName is the workload's human-readable transaction name
	// (e.g. "NewOrder").
	TypeName string
	// Events is the event sequence, beginning with KindTxnBegin and ending
	// with KindTxnEnd.
	Events []Event
}

// Instructions returns the number of dynamic instructions represented by the
// trace (instruction-block fetches × InstrPerBlock).
func (t *Trace) Instructions() uint64 {
	var blocks uint64
	for _, e := range t.Events {
		if e.Kind == KindInstr {
			blocks++
		}
	}
	return blocks * InstrPerBlock
}

// InstrBlocks returns the number of instruction-block fetch events.
func (t *Trace) InstrBlocks() uint64 {
	var blocks uint64
	for _, e := range t.Events {
		if e.Kind == KindInstr {
			blocks++
		}
	}
	return blocks
}

// Footprint returns the sets of unique instruction and data blocks touched by
// the trace.
func (t *Trace) Footprint() (instr, data map[uint64]struct{}) {
	instr = make(map[uint64]struct{})
	data = make(map[uint64]struct{})
	for _, e := range t.Events {
		switch e.Kind {
		case KindInstr:
			instr[e.Addr] = struct{}{}
		case KindDataRead, KindDataWrite:
			data[e.Addr] = struct{}{}
		}
	}
	return instr, data
}

// OpSlice is the sub-trace of a single database-operation invocation:
// Events[Start:End] covers everything between (and including) the operation's
// OpBegin and OpEnd markers.
type OpSlice struct {
	Op         OpType
	Start, End int
}

// Ops returns the database-operation invocations in the trace, in execution
// order. Operations do not nest (the storage manager's five operations are
// flat API calls, Section 2.1).
func (t *Trace) Ops() []OpSlice {
	var ops []OpSlice
	start := -1
	var cur OpType
	for i, e := range t.Events {
		switch e.Kind {
		case KindOpBegin:
			start = i
			cur = e.Op
		case KindOpEnd:
			if start >= 0 {
				ops = append(ops, OpSlice{Op: cur, Start: start, End: i + 1})
				start = -1
			}
		}
	}
	return ops
}

// Validate checks the structural invariants of a trace: it must be bracketed
// by TxnBegin/TxnEnd, operations must be properly paired and non-nested, and
// every memory event must carry a block-aligned address.
func (t *Trace) Validate() error {
	if len(t.Events) < 2 {
		return fmt.Errorf("trace: too short (%d events)", len(t.Events))
	}
	if t.Events[0].Kind != KindTxnBegin {
		return fmt.Errorf("trace: first event is %v, want TxnBegin", t.Events[0].Kind)
	}
	if t.Events[len(t.Events)-1].Kind != KindTxnEnd {
		return fmt.Errorf("trace: last event is %v, want TxnEnd", t.Events[len(t.Events)-1].Kind)
	}
	inOp := false
	var openOp OpType
	for i, e := range t.Events {
		switch e.Kind {
		case KindTxnBegin:
			if i != 0 {
				return fmt.Errorf("trace: TxnBegin at interior position %d", i)
			}
		case KindTxnEnd:
			if i != len(t.Events)-1 {
				return fmt.Errorf("trace: TxnEnd at interior position %d", i)
			}
			if inOp {
				return fmt.Errorf("trace: TxnEnd with operation %v still open", openOp)
			}
		case KindOpBegin:
			if inOp {
				return fmt.Errorf("trace: nested OpBegin(%v) inside %v at %d", e.Op, openOp, i)
			}
			inOp = true
			openOp = e.Op
		case KindOpEnd:
			if !inOp {
				return fmt.Errorf("trace: OpEnd(%v) without OpBegin at %d", e.Op, i)
			}
			if e.Op != openOp {
				return fmt.Errorf("trace: OpEnd(%v) does not match OpBegin(%v) at %d", e.Op, openOp, i)
			}
			inOp = false
		case KindInstr, KindDataRead, KindDataWrite:
			if e.Addr%BlockSize != 0 {
				return fmt.Errorf("trace: unaligned address %#x at %d", e.Addr, i)
			}
		default:
			return fmt.Errorf("trace: unknown event kind %d at %d", e.Kind, i)
		}
	}
	return nil
}

// Set is an ordered collection of transaction traces — the unit the
// experiments operate on ("11000 transaction traces for each workload",
// Section 4.1).
type Set struct {
	// Workload is the benchmark name ("TPC-B", "TPC-C", "TPC-E").
	Workload string
	// TypeNames maps TxnType to transaction names for this workload.
	TypeNames []string
	// Traces holds the transaction traces in generation order.
	Traces []*Trace
}

// ByType groups trace indices by transaction type.
func (s *Set) ByType() map[TxnType][]int {
	m := make(map[TxnType][]int)
	for i, t := range s.Traces {
		m[t.Type] = append(m[t.Type], i)
	}
	return m
}

// Slice returns a new Set sharing the same metadata but holding only
// Traces[lo:hi]. It mirrors the paper's trace batching ("the first 1000 ...
// the next batch of 1000", Section 4.1).
func (s *Set) Slice(lo, hi int) *Set {
	return &Set{Workload: s.Workload, TypeNames: s.TypeNames, Traces: s.Traces[lo:hi]}
}

// TotalInstructions sums Instructions over all traces.
func (s *Set) TotalInstructions() uint64 {
	var n uint64
	for _, t := range s.Traces {
		n += t.Instructions()
	}
	return n
}

// TypeName returns the name of a transaction type, falling back to a numeric
// form for unknown types.
func (s *Set) TypeName(tt TxnType) string {
	if int(tt) < len(s.TypeNames) {
		return s.TypeNames[tt]
	}
	return fmt.Sprintf("txn%d", tt)
}

// MergeSets concatenates part sets into one Set, preserving part order. The
// workload metadata is taken from the first part (sharded generation
// produces parts of the same workload). Traces are shared, not copied.
func MergeSets(parts ...*Set) *Set {
	out := &Set{}
	for i, p := range parts {
		if i == 0 {
			out.Workload = p.Workload
			out.TypeNames = append([]string(nil), p.TypeNames...)
		}
		out.Traces = append(out.Traces, p.Traces...)
	}
	return out
}

// Digest returns a 64-bit FNV-1a hash over the set's full content —
// workload name, type names, and every event of every trace. Two sets with
// the same digest are (up to hash collision) identical trace-for-trace;
// the determinism tests use it to assert that sharded generation is
// independent of the worker count.
func (s *Set) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(s.Workload))
	for _, n := range s.TypeNames {
		h.Write([]byte{0})
		h.Write([]byte(n))
	}
	u64(uint64(len(s.Traces)))
	for _, t := range s.Traces {
		u64(uint64(t.Type))
		u64(uint64(len(t.Events)))
		for _, e := range t.Events {
			u64(e.Addr)
			u64(uint64(e.Kind) | uint64(e.Op)<<8 | uint64(e.Aux)<<16)
		}
	}
	return h.Sum64()
}
