package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format, used by cmd/tracegen to persist trace sets.
//
//	header:  magic "ADCT" | version u16 | workload string | type names
//	traces:  count u32, then per trace: type u16 | name string | events
//	events:  count u32, then per event: kind u8 | op u8 | aux u16 | addr u64
//
// Strings are u16 length + bytes. All integers are little-endian. The format
// favors simplicity and determinism over compactness; a 1000-trace TPC-C set
// is a few tens of MB.

const (
	codecMagic   = "ADCT"
	codecVersion = 1
)

// maxPrealloc caps how many trace/event slots the decoder allocates ahead
// of the stream actually delivering them. Counts are attacker-controlled
// 32-bit fields; without the cap a 12-byte header could demand a
// multi-gigabyte upfront allocation (found by FuzzEventCodec). Beyond the
// cap the slices grow by append, so truncated streams fail with a read
// error instead of an OOM.
const maxPrealloc = 1 << 16

// WriteSet serializes a trace set to w.
func WriteSet(w io.Writer, s *Set) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(codecVersion)); err != nil {
		return err
	}
	if err := writeString(bw, s.Workload); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(s.TypeNames))); err != nil {
		return err
	}
	for _, n := range s.TypeNames {
		if err := writeString(bw, n); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.Traces))); err != nil {
		return err
	}
	for _, t := range s.Traces {
		if err := writeTrace(bw, t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSet deserializes a trace set from r.
func ReadSet(r io.Reader) (*Set, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	s := &Set{}
	var err error
	if s.Workload, err = readString(br); err != nil {
		return nil, err
	}
	var nNames uint16
	if err := binary.Read(br, binary.LittleEndian, &nNames); err != nil {
		return nil, err
	}
	s.TypeNames = make([]string, nNames)
	for i := range s.TypeNames {
		if s.TypeNames[i], err = readString(br); err != nil {
			return nil, err
		}
	}
	var nTraces uint32
	if err := binary.Read(br, binary.LittleEndian, &nTraces); err != nil {
		return nil, err
	}
	// Cap compared as uint32: on 32-bit platforms int(nTraces) could
	// overflow negative and panic the very make this cap protects.
	s.Traces = make([]*Trace, 0, int(min(nTraces, maxPrealloc)))
	for i := uint32(0); i < nTraces; i++ {
		t, err := readTrace(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading trace %d: %w", i, err)
		}
		s.Traces = append(s.Traces, t)
	}
	return s, nil
}

func writeTrace(w io.Writer, t *Trace) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(t.Type)); err != nil {
		return err
	}
	if err := writeString(w, t.TypeName); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(t.Events))); err != nil {
		return err
	}
	buf := make([]byte, 12)
	for _, e := range t.Events {
		buf[0] = byte(e.Kind)
		buf[1] = byte(e.Op)
		binary.LittleEndian.PutUint16(buf[2:], e.Aux)
		binary.LittleEndian.PutUint64(buf[4:], e.Addr)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	var tt uint16
	if err := binary.Read(r, binary.LittleEndian, &tt); err != nil {
		return nil, err
	}
	t.Type = TxnType(tt)
	var err error
	if t.TypeName, err = readString(r); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	t.Events = make([]Event, 0, int(min(n, maxPrealloc)))
	buf := make([]byte, 12)
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		t.Events = append(t.Events, Event{
			Kind: EventKind(buf[0]),
			Op:   OpType(buf[1]),
			Aux:  binary.LittleEndian.Uint16(buf[2:]),
			Addr: binary.LittleEndian.Uint64(buf[4:]),
		})
	}
	return t, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xffff {
		return fmt.Errorf("trace: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
