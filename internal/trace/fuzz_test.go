package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedSet builds a small but representative set for the fuzz corpus:
// two transaction types, operation brackets, all event kinds, extreme
// addresses.
func fuzzSeedSet() *Set {
	return &Set{
		Workload:  "TPC-X",
		TypeNames: []string{"Alpha", "Beta"},
		Traces: []*Trace{
			{
				Type:     0,
				TypeName: "Alpha",
				Events: []Event{
					{Kind: KindTxnBegin, Aux: 0},
					{Kind: KindOpBegin, Op: OpIndexProbe},
					{Kind: KindInstr, Addr: 0x1000},
					{Kind: KindDataRead, Addr: 0xffffffffffffffc0},
					{Kind: KindOpEnd, Op: OpIndexProbe},
					{Kind: KindTxnEnd},
				},
			},
			{
				Type:     1,
				TypeName: "Beta",
				Events: []Event{
					{Kind: KindTxnBegin, Aux: 1},
					{Kind: KindDataWrite, Addr: 0},
					{Kind: KindTxnEnd},
				},
			},
		},
	}
}

// setsEqual compares two sets structurally (DeepEqual would distinguish
// nil and empty slices, which the codec does not).
func setsEqual(a, b *Set) bool {
	if a.Workload != b.Workload || len(a.TypeNames) != len(b.TypeNames) || len(a.Traces) != len(b.Traces) {
		return false
	}
	for i := range a.TypeNames {
		if a.TypeNames[i] != b.TypeNames[i] {
			return false
		}
	}
	for i := range a.Traces {
		at, bt := a.Traces[i], b.Traces[i]
		if at.Type != bt.Type || at.TypeName != bt.TypeName || len(at.Events) != len(bt.Events) {
			return false
		}
		for j := range at.Events {
			if at.Events[j] != bt.Events[j] {
				return false
			}
		}
	}
	return true
}

// synthSet derives a set deterministically from raw fuzz bytes: a
// workload name, up to two type names, and one trace whose events are the
// remaining bytes chopped into 12-byte records — any field values, valid
// or not, must survive the codec unchanged (the codec persists, it does
// not validate).
func synthSet(data []byte) *Set {
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		h := data[:n]
		data = data[n:]
		return h
	}
	s := &Set{Workload: string(take(8))}
	for i := 0; i < 2 && len(data) > 0; i++ {
		s.TypeNames = append(s.TypeNames, string(take(4)))
	}
	tr := &Trace{TypeName: "synth"}
	if b := take(2); len(b) == 2 {
		tr.Type = TxnType(binary.LittleEndian.Uint16(b))
	}
	for len(data) >= 12 {
		rec := take(12)
		tr.Events = append(tr.Events, Event{
			Kind: EventKind(rec[0]),
			Op:   OpType(rec[1]),
			Aux:  binary.LittleEndian.Uint16(rec[2:]),
			Addr: binary.LittleEndian.Uint64(rec[4:]),
		})
	}
	s.Traces = append(s.Traces, tr)
	return s
}

// FuzzEventCodec is the round-trip fuzz target for the binary trace
// format. Two properties hold for every input:
//
//  1. Arbitrary bytes never panic the decoder, and any bytes it does
//     accept decode → encode → decode to the same set, with byte-identical
//     re-encoding (the format has one canonical serialization).
//  2. Any set synthesized from the bytes (arbitrary field values) survives
//     encode → decode unchanged.
//
// CI runs this briefly on every push (see the fuzz-smoke step); longer
// local runs: go test ./internal/trace -fuzz=FuzzEventCodec.
func FuzzEventCodec(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteSet(&seed, fuzzSeedSet()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ADCT"))
	// Header claiming 4 billion traces: must fail cleanly, not OOM.
	hostile := append([]byte("ADCT"), 1, 0, 0, 0, 0, 0)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff)
	f.Add(hostile)
	f.Add(bytes.Repeat([]byte{0x42}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := ReadSet(bytes.NewReader(data)); err == nil {
			var enc bytes.Buffer
			if err := WriteSet(&enc, s); err != nil {
				t.Fatalf("re-encoding a decoded set failed: %v", err)
			}
			s2, err := ReadSet(bytes.NewReader(enc.Bytes()))
			if err != nil {
				t.Fatalf("re-decoding failed: %v", err)
			}
			if !setsEqual(s, s2) {
				t.Fatalf("decode→encode→decode changed the set")
			}
			var enc2 bytes.Buffer
			if err := WriteSet(&enc2, s2); err != nil {
				t.Fatalf("second encode failed: %v", err)
			}
			if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
				t.Fatalf("re-encoding is not canonical")
			}
		}

		s := synthSet(data)
		var enc bytes.Buffer
		if err := WriteSet(&enc, s); err != nil {
			t.Fatalf("encoding synthesized set: %v", err)
		}
		got, err := ReadSet(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("decoding synthesized set: %v", err)
		}
		if !setsEqual(s, got) {
			t.Fatalf("synthesized set did not round-trip")
		}
	})
}
