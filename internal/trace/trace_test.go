package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mkTrace(tt TxnType, ops []OpType, blocksPerOp int) *Trace {
	b := NewBuffer(true)
	b.TxnBegin(tt, "test")
	for _, op := range ops {
		b.OpBegin(op)
		for i := 0; i < blocksPerOp; i++ {
			b.Instr(uint64(0x400000 + i*BlockSize))
			b.Data(uint64(0x10000000+i*BlockSize), i%3 == 0)
		}
		b.OpEnd(op)
	}
	b.TxnEnd()
	return b.Take()[0]
}

func TestBufferProducesValidTrace(t *testing.T) {
	tr := mkTrace(3, []OpType{OpIndexProbe, OpUpdateTuple}, 5)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Type != 3 {
		t.Errorf("Type = %d, want 3", tr.Type)
	}
	if got := tr.InstrBlocks(); got != 10 {
		t.Errorf("InstrBlocks = %d, want 10", got)
	}
	if got := tr.Instructions(); got != 10*InstrPerBlock {
		t.Errorf("Instructions = %d, want %d", got, 10*InstrPerBlock)
	}
}

func TestTraceOps(t *testing.T) {
	tr := mkTrace(1, []OpType{OpIndexProbe, OpInsertTuple, OpIndexProbe}, 2)
	ops := tr.Ops()
	if len(ops) != 3 {
		t.Fatalf("Ops = %d, want 3", len(ops))
	}
	want := []OpType{OpIndexProbe, OpInsertTuple, OpIndexProbe}
	for i, o := range ops {
		if o.Op != want[i] {
			t.Errorf("op %d = %v, want %v", i, o.Op, want[i])
		}
		if tr.Events[o.Start].Kind != KindOpBegin || tr.Events[o.End-1].Kind != KindOpEnd {
			t.Errorf("op %d slice not bracketed by OpBegin/OpEnd", i)
		}
	}
}

func TestFootprint(t *testing.T) {
	tr := mkTrace(0, []OpType{OpIndexProbe}, 7)
	instr, data := tr.Footprint()
	if len(instr) != 7 {
		t.Errorf("instruction footprint = %d blocks, want 7", len(instr))
	}
	if len(data) != 7 {
		t.Errorf("data footprint = %d blocks, want 7", len(data))
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"empty", nil},
		{"no begin", []Event{{Kind: KindInstr}, {Kind: KindTxnEnd}}},
		{"no end", []Event{{Kind: KindTxnBegin}, {Kind: KindInstr}}},
		{"nested op", []Event{
			{Kind: KindTxnBegin},
			{Kind: KindOpBegin, Op: OpIndexProbe},
			{Kind: KindOpBegin, Op: OpIndexScan},
			{Kind: KindOpEnd, Op: OpIndexScan},
			{Kind: KindOpEnd, Op: OpIndexProbe},
			{Kind: KindTxnEnd},
		}},
		{"mismatched op end", []Event{
			{Kind: KindTxnBegin},
			{Kind: KindOpBegin, Op: OpIndexProbe},
			{Kind: KindOpEnd, Op: OpIndexScan},
			{Kind: KindTxnEnd},
		}},
		{"open op at end", []Event{
			{Kind: KindTxnBegin},
			{Kind: KindOpBegin, Op: OpIndexProbe},
			{Kind: KindTxnEnd},
		}},
		{"unaligned address", []Event{
			{Kind: KindTxnBegin},
			{Kind: KindInstr, Addr: 0x401},
			{Kind: KindTxnEnd},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := &Trace{Events: c.events}
			if err := tr.Validate(); err == nil {
				t.Errorf("Validate accepted malformed trace %q", c.name)
			}
		})
	}
}

func TestBufferStrictPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Buffer)
	}{
		{"double TxnBegin", func(b *Buffer) { b.TxnBegin(0, "a"); b.TxnBegin(0, "b") }},
		{"TxnEnd without begin", func(b *Buffer) { b.TxnEnd() }},
		{"nested OpBegin", func(b *Buffer) {
			b.TxnBegin(0, "a")
			b.OpBegin(OpIndexProbe)
			b.OpBegin(OpIndexScan)
		}},
		{"TxnEnd with open op", func(b *Buffer) {
			b.TxnBegin(0, "a")
			b.OpBegin(OpIndexProbe)
			b.TxnEnd()
		}},
		{"OpEnd mismatch", func(b *Buffer) {
			b.TxnBegin(0, "a")
			b.OpBegin(OpIndexProbe)
			b.OpEnd(OpIndexScan)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("strict buffer did not panic on %q", c.name)
				}
			}()
			c.f(NewBuffer(true))
		})
	}
}

func TestBufferLenientIgnores(t *testing.T) {
	b := NewBuffer(false)
	b.TxnEnd() // ignored
	b.OpBegin(OpIndexProbe)
	b.Instr(0x400000) // outside txn: dropped
	b.TxnBegin(1, "x")
	b.Instr(0x400040)
	b.TxnEnd()
	traces := b.Take()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	if got := traces[0].InstrBlocks(); got != 1 {
		t.Errorf("InstrBlocks = %d, want 1 (pre-txn events must be dropped)", got)
	}
}

func TestBufferAlignsAddresses(t *testing.T) {
	b := NewBuffer(true)
	b.TxnBegin(0, "t")
	b.Instr(0x400013)
	b.Data(0x10000077, true)
	b.TxnEnd()
	tr := b.Take()[0]
	if tr.Events[1].Addr != 0x400000 {
		t.Errorf("instr addr = %#x, want %#x", tr.Events[1].Addr, 0x400000)
	}
	if tr.Events[2].Addr != 0x10000040 {
		t.Errorf("data addr = %#x, want %#x", tr.Events[2].Addr, 0x10000040)
	}
}

func TestSetByTypeAndSlice(t *testing.T) {
	s := &Set{
		Workload:  "TPC-X",
		TypeNames: []string{"A", "B"},
		Traces: []*Trace{
			mkTrace(0, []OpType{OpIndexProbe}, 1),
			mkTrace(1, []OpType{OpIndexProbe}, 1),
			mkTrace(0, []OpType{OpIndexProbe}, 1),
		},
	}
	byType := s.ByType()
	if !reflect.DeepEqual(byType[0], []int{0, 2}) {
		t.Errorf("ByType[0] = %v, want [0 2]", byType[0])
	}
	if !reflect.DeepEqual(byType[1], []int{1}) {
		t.Errorf("ByType[1] = %v, want [1]", byType[1])
	}
	sub := s.Slice(1, 3)
	if len(sub.Traces) != 2 || sub.Workload != "TPC-X" {
		t.Errorf("Slice: got %d traces, workload %q", len(sub.Traces), sub.Workload)
	}
	if s.TypeName(0) != "A" || s.TypeName(9) != "txn9" {
		t.Errorf("TypeName fallback broken: %q %q", s.TypeName(0), s.TypeName(9))
	}
}

func TestCodecRoundtrip(t *testing.T) {
	s := &Set{
		Workload:  "TPC-B",
		TypeNames: []string{"AccountUpdate"},
		Traces: []*Trace{
			mkTrace(0, []OpType{OpIndexProbe, OpUpdateTuple, OpInsertTuple}, 20),
			mkTrace(0, []OpType{OpIndexProbe}, 3),
		},
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatalf("WriteSet: %v", err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatalf("ReadSet: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadSet(bytes.NewReader([]byte("NOPE    "))); err == nil {
		t.Error("ReadSet accepted bad magic")
	}
	if _, err := ReadSet(bytes.NewReader(nil)); err == nil {
		t.Error("ReadSet accepted empty input")
	}
	// Truncated valid stream.
	s := &Set{Workload: "w", TypeNames: []string{"t"}, Traces: []*Trace{mkTrace(0, []OpType{OpIndexProbe}, 4)}}
	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatalf("WriteSet: %v", err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadSet(bytes.NewReader(trunc)); err == nil {
		t.Error("ReadSet accepted truncated stream")
	}
}

// TestCodecRoundtripProperty uses testing/quick to exercise the codec with
// randomized event contents.
func TestCodecRoundtripProperty(t *testing.T) {
	f := func(seed int64, nEvents uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Type: TxnType(rng.Intn(16)), TypeName: "q"}
		tr.Events = append(tr.Events, Event{Kind: KindTxnBegin, Aux: uint16(tr.Type)})
		for i := 0; i < int(nEvents); i++ {
			tr.Events = append(tr.Events, Event{
				Kind: EventKind(rng.Intn(3)), // memory kinds only
				Addr: uint64(rng.Int63()) &^ (BlockSize - 1),
			})
		}
		tr.Events = append(tr.Events, Event{Kind: KindTxnEnd})
		s := &Set{Workload: "q", TypeNames: []string{"q"}, Traces: []*Trace{tr}}
		var buf bytes.Buffer
		if err := WriteSet(&buf, s); err != nil {
			return false
		}
		got, err := ReadSet(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{KindInstr, KindDataRead, KindDataWrite, KindTxnBegin, KindTxnEnd, KindOpBegin, KindOpEnd, 99}
	want := []string{"I", "R", "W", "TxnBegin", "TxnEnd", "OpBegin", "OpEnd", "EventKind(99)"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("%d: String() = %q, want %q", i, k.String(), want[i])
		}
	}
}

func TestOpTypeString(t *testing.T) {
	ops := []OpType{OpNone, OpIndexProbe, OpIndexScan, OpUpdateTuple, OpInsertTuple, OpDeleteTuple, 77}
	want := []string{"none", "probe", "scan", "update", "insert", "delete", "OpType(77)"}
	for i, o := range ops {
		if o.String() != want[i] {
			t.Errorf("%d: String() = %q, want %q", i, o.String(), want[i])
		}
	}
}

func TestDiscardIsNoop(t *testing.T) {
	var d Discard
	d.TxnBegin(0, "x")
	d.OpBegin(OpIndexProbe)
	d.Instr(0x1000)
	d.Data(0x2000, true)
	d.OpEnd(OpIndexProbe)
	d.TxnEnd()
	// Nothing to assert beyond "does not panic"; Discard has no state.
}
