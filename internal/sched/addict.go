package sched

import (
	"addict/internal/core"
	"addict/internal/sim"
	"addict/internal/trace"
)

// ADDICT's runtime half (Algorithm 2 lines 16-31): each thread carries a
// tracker over its type's migration-point map; crossing a point migrates
// the thread to the point's core. Core selection implements Section
// 3.2.3's dynamic reassignment: stay if already on a point core, else take
// a free point core, else steal a globally idle core for this point, else
// wait in the shortest point-core queue.
type addictHooks struct {
	cores int
	asg   *core.Assignment
	ex    *sim.Executor

	// trackers/tracked are per-thread, indexed by thread ID and
	// preallocated in bind (the replay loop must not allocate); tracked is
	// false for fallback-scheduled types.
	trackers []core.Tracker
	tracked  []bool
	// pending holds a migration-point crossing RunWindow discovered but
	// did not commit past: the tracker has already consumed the event, so
	// Act picks the decision up here instead of consuming it again.
	pending []pendingCross
	// pointCores is the runtime (mutable) core set per migration point;
	// stealing reassigns cores between points ("if there are any idle
	// cores that belong to another migration point, ADDICT reassigns one
	// of these idle cores to the current migration point").
	pointCores map[*core.PointAssignment][]int
	coreOwner  map[int]*core.PointAssignment
	// served remembers every core that ever hosted a point — a stolen-back
	// core that is still warm is a far better target than a cold one.
	served   map[*core.PointAssignment]map[int]bool
	fallback *baselineHooks
	// static disables replicas and stealing (ablation).
	static bool
}

// pendingCross is one tracker crossing awaiting its Act call.
type pendingCross struct {
	pos int
	pt  *core.PointAssignment
	ok  bool
}

func newAddictHooks(cfg Config) *addictHooks {
	cores := cfg.Machine.Cores
	asg := cfg.Profile.Assign(cores)
	// Physical remapping: rotate each type's logical core map so batches
	// of different types run on disjoint cores where possible
	// (core.TxnAssignment.Rotate).
	types := cfg.Profile.SortedTypes()
	stride := 1
	if len(types) > 1 {
		stride = cores/len(types) + 1
	}
	for i, tt := range types {
		asg.PerTxn[tt].Rotate((i*stride)%cores, cores)
	}
	if cfg.DisableReplication {
		for _, ta := range asg.PerTxn {
			ta.Entry.Cores = ta.Entry.Cores[:1]
			for _, oa := range ta.Ops {
				oa.Entry.Cores = oa.Entry.Cores[:1]
				for i := range oa.Points {
					oa.Points[i].Cores = oa.Points[i].Cores[:1]
				}
			}
		}
	}
	return &addictHooks{
		cores:      cores,
		asg:        asg,
		static:     cfg.DisableReplication,
		pointCores: make(map[*core.PointAssignment][]int),
		coreOwner:  make(map[int]*core.PointAssignment),
		served:     make(map[*core.PointAssignment]map[int]bool),
		fallback:   &baselineHooks{cores: cores},
	}
}

func (a *addictHooks) bind(ex *sim.Executor) {
	a.ex = ex
	n := len(ex.Threads())
	a.trackers = make([]core.Tracker, n)
	a.tracked = make([]bool, n)
	a.pending = make([]pendingCross, n)
}

func (a *addictHooks) txnAsg(t *sim.Thread) *core.TxnAssignment {
	return a.asg.PerTxn[t.Trace.Type]
}

// Place implements sim.Hooks: every transaction enters at its type's entry
// core ("each transaction takes core0 as their entry core").
func (a *addictHooks) Place(t *sim.Thread) int {
	ta := a.txnAsg(t)
	if ta == nil || ta.Fallback {
		return a.fallback.Place(t)
	}
	a.trackers[t.ID] = core.MakeTracker(ta)
	a.tracked[t.ID] = true
	return ta.Entry.Cores[0]
}

// Act implements sim.Hooks: consult the tracker; on a crossed point, pick
// the destination core. A crossing RunWindow already discovered (and whose
// event the tracker therefore already consumed) is picked up from pending;
// the executor guarantees Act is next consulted exactly at that event.
func (a *addictHooks) Act(t *sim.Thread, ev trace.Event) sim.Action {
	if !a.tracked[t.ID] {
		return sim.Run // fallback-scheduled type
	}
	var pt *core.PointAssignment
	var crossed bool
	if p := &a.pending[t.ID]; p.ok && p.pos == t.Pos() {
		pt, crossed = p.pt, true
		p.ok = false
	} else {
		pt, crossed = a.trackers[t.ID].Next(ev)
	}
	if !crossed {
		return sim.Run
	}
	dest := a.chooseCore(t, pt)
	if dest == t.Core {
		return sim.Run
	}
	return sim.MigrateTo(dest)
}

// RunWindow implements sim.BatchHooks: the tracker is a deterministic
// automaton over the thread's own events, so it can be advanced ahead of
// execution — every event up to (excluding) the next migration-point
// crossing is guaranteed ActRun. The crossing itself is parked in pending
// for Act; core selection must wait until then because it reads live
// queue/occupancy state.
func (a *addictHooks) RunWindow(t *sim.Thread, evs []trace.Event) int {
	if !a.tracked[t.ID] {
		return len(evs) // fallback-scheduled type: Act never acts
	}
	p := &a.pending[t.ID]
	if p.ok {
		return 0 // a crossing is already waiting for its Act call
	}
	tk := &a.trackers[t.ID]
	pos := t.Pos()
	for i, ev := range evs {
		if pt, crossed := tk.Next(ev); crossed {
			*p = pendingCross{pos: pos + i, pt: pt, ok: true}
			return i
		}
	}
	return len(evs)
}

// ObserveBatch implements sim.BatchHooks: nothing to do — the tracker
// already advanced in RunWindow and ADDICT takes no outcome feedback.
func (a *addictHooks) ObserveBatch(*sim.Thread, []trace.Event, []sim.AccessOutcome) {}

var _ sim.BatchHooks = (*addictHooks)(nil)

// chooseCore applies the dynamic core-selection policy for a migration
// point.
func (a *addictHooks) chooseCore(t *sim.Thread, pt *core.PointAssignment) int {
	set := a.pointCores[pt]
	if set == nil {
		// Capacity `cores` up front: stealing can grow a point's set to at
		// most every core, and a full-capacity start keeps the steal path
		// allocation-free for the rest of the run.
		set = make([]int, len(pt.Cores), a.cores)
		copy(set, pt.Cores)
		a.pointCores[pt] = set
		a.served[pt] = make(map[int]bool, a.cores)
		for _, c := range set {
			if a.coreOwner[c] == nil {
				a.coreOwner[c] = pt
			}
			a.served[pt][c] = true
		}
	}
	// 1. Already on a core of this point: no migration.
	for _, c := range set {
		if c == t.Core {
			return c
		}
	}
	// 2. A free core of this point.
	for _, c := range set {
		if a.ex.CoreFree(c) {
			return c
		}
	}
	// 3. Dynamic reassignment (Section 3.2.3): steal an idle core from
	// another migration point — but only under real pressure (every point
	// core already has waiters). Faulting a ~L1-I-sized action into a cold
	// core costs far more than a short wait, so transient contention
	// queues instead. Steal-backs prefer cores that served this point
	// before (still partially warm).
	best, bestLen := set[0], int(^uint(0)>>1)
	for _, c := range set {
		if l := a.ex.QueueLen(c); l < bestLen {
			best, bestLen = c, l
		}
	}
	if bestLen >= 1 && !a.static {
		warm := a.served[pt]
		for pass := 0; pass < 2; pass++ {
			for c := 0; c < a.cores; c++ {
				if !a.ex.CoreFree(c) || a.coreOwner[c] == pt {
					continue
				}
				if pass == 0 && !warm[c] {
					continue // warm steal-backs first
				}
				if a.steal(pt, c) {
					return c
				}
			}
		}
	}
	// 4. Wait in the shortest queue among the point's cores.
	return best
}

// steal reassigns idle core c to point pt, unless that would leave the
// previous owner with nothing.
func (a *addictHooks) steal(pt *core.PointAssignment, c int) bool {
	owner := a.coreOwner[c]
	if owner != nil {
		prev := a.pointCores[owner]
		if len(prev) <= 1 {
			return false
		}
		a.pointCores[owner] = removeCore(prev, c)
	}
	a.coreOwner[c] = pt
	a.pointCores[pt] = append(a.pointCores[pt], c)
	a.served[pt][c] = true
	return true
}

func removeCore(set []int, c int) []int {
	out := set[:0]
	for _, v := range set {
		if v != c {
			out = append(out, v)
		}
	}
	return out
}

// Observe implements sim.Hooks (ADDICT's decisions are purely
// software-hint driven; no feedback needed).
func (a *addictHooks) Observe(*sim.Thread, trace.Event, sim.AccessOutcome) {}
