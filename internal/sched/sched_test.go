package sched

import (
	"testing"

	"addict/internal/codemap"
	"addict/internal/core"
	"addict/internal/sim"
	"addict/internal/trace"
	"addict/internal/workload"
)

// testSetup builds a small TPC-B trace set plus its migration-point
// profile, shared across mechanism tests.
func testSetup(t *testing.T, n int) (*trace.Set, *core.Profile, Config) {
	t.Helper()
	b := workload.NewTPCB(1, 0.1)
	profSet := workload.GenerateSet(b, 100)
	evalSet := workload.GenerateSet(b, n)
	lay := codemap.NewLayout()
	pcfg := core.DefaultProfileConfig()
	pcfg.NoMigrate = lay.NoMigrate
	prof := core.FindMigrationPoints(profSet, pcfg)
	cfg := DefaultConfig(sim.Shallow())
	cfg.Profile = prof
	return evalSet, prof, cfg
}

func TestBatchByTypeGroups(t *testing.T) {
	mk := func(tt trace.TxnType) *trace.Trace {
		b := trace.NewBuffer(true)
		b.TxnBegin(tt, "x")
		b.Instr(0x400000)
		b.TxnEnd()
		return b.Take()[0]
	}
	traces := []*trace.Trace{mk(0), mk(1), mk(0), mk(1), mk(0), mk(1), mk(0), mk(1)}
	out := batchByType(traces, 2)
	if len(out) != len(traces) {
		t.Fatalf("lost traces: %d", len(out))
	}
	// Batches of 2 same-type, round-robin across types.
	wantTypes := []trace.TxnType{0, 0, 1, 1, 0, 0, 1, 1}
	for i, tr := range out {
		if tr.Type != wantTypes[i] {
			t.Errorf("position %d: type %d, want %d", i, tr.Type, wantTypes[i])
		}
	}
}

func TestApplyBatchesBoundaries(t *testing.T) {
	mk := func(tt trace.TxnType) *trace.Trace {
		b := trace.NewBuffer(true)
		b.TxnBegin(tt, "x")
		b.Instr(0x400000)
		b.TxnEnd()
		return b.Take()[0]
	}
	// 3 of type 0, then 2 of type 1, batch size 2 → batches 0,0 | 1 | 2,2.
	ordered := []*trace.Trace{mk(0), mk(0), mk(0), mk(1), mk(1)}
	ex := sim.NewExecutor(sim.NewMachine(sim.Shallow()), &baselineHooks{cores: 16}, ordered)
	applyBatches(ex, ordered, 2)
	got := make([]int, 5)
	for i, th := range ex.Threads() {
		got[i] = th.Batch
	}
	want := []int{0, 0, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("batches = %v, want %v", got, want)
			break
		}
	}
}

func TestAllMechanismsExecuteEverything(t *testing.T) {
	set, _, cfg := testSetup(t, 48)
	wantInstr := uint64(0)
	for _, tr := range set.Traces {
		wantInstr += tr.Instructions()
	}
	for _, mech := range AllMechanisms {
		res, err := Run(mech, set, cfg)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if res.Machine.Instructions != wantInstr {
			t.Errorf("%s executed %d instructions, want %d", mech, res.Machine.Instructions, wantInstr)
		}
		if res.Threads != 48 || res.Makespan == 0 {
			t.Errorf("%s: threads=%d makespan=%d", mech, res.Threads, res.Makespan)
		}
	}
}

func TestBaselineNeverSwitches(t *testing.T) {
	set, _, cfg := testSetup(t, 32)
	res, err := Run(Baseline, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 || res.ContextSwitches != 0 {
		t.Errorf("baseline switched: %d migrations, %d switches", res.Migrations, res.ContextSwitches)
	}
}

func TestSTREXSwitchesButNeverMigrates(t *testing.T) {
	set, _, cfg := testSetup(t, 32)
	res, err := Run(STREX, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("STREX migrated %d times", res.Migrations)
	}
	if res.ContextSwitches == 0 {
		t.Error("STREX never context-switched")
	}
}

func TestSLICCMigrates(t *testing.T) {
	set, _, cfg := testSetup(t, 32)
	res, err := Run(SLICC, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Error("SLICC never migrated")
	}
	if res.ContextSwitches != 0 {
		t.Errorf("SLICC context-switched %d times", res.ContextSwitches)
	}
}

func TestADDICTMigratesAndWinsOnL1I(t *testing.T) {
	set, _, cfg := testSetup(t, 64)
	base, err := Run(Baseline, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	add, err := Run(ADDICT, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if add.Migrations == 0 {
		t.Fatal("ADDICT never migrated")
	}
	bMPKI := base.Machine.MPKI(base.Machine.L1IMisses)
	aMPKI := add.Machine.MPKI(add.Machine.L1IMisses)
	t.Logf("L1-I MPKI: baseline %.2f, ADDICT %.2f (ratio %.2f)", bMPKI, aMPKI, aMPKI/bMPKI)
	if aMPKI >= bMPKI {
		t.Errorf("ADDICT L1-I MPKI %.2f not below baseline %.2f", aMPKI, bMPKI)
	}
	// The paper's headline: a large reduction (85% on the full setup; the
	// small test set must still show a clear win).
	if aMPKI > 0.6*bMPKI {
		t.Errorf("ADDICT reduction too small: %.2f vs %.2f", aMPKI, bMPKI)
	}
}

func TestADDICTRequiresProfile(t *testing.T) {
	set, _, cfg := testSetup(t, 8)
	cfg.Profile = nil
	if _, err := Run(ADDICT, set, cfg); err == nil {
		t.Error("ADDICT without profile did not error")
	}
}

func TestUnknownMechanism(t *testing.T) {
	set, _, cfg := testSetup(t, 8)
	if _, err := Run("Bogus", set, cfg); err == nil {
		t.Error("unknown mechanism did not error")
	}
}

func TestRunDeterminism(t *testing.T) {
	set, _, cfg := testSetup(t, 32)
	for _, mech := range AllMechanisms {
		r1, err := Run(mech, set, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(mech, set, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Makespan != r2.Makespan || r1.Migrations != r2.Migrations ||
			r1.Machine.L1IMisses != r2.Machine.L1IMisses {
			t.Errorf("%s nondeterministic: makespan %d/%d, migrations %d/%d",
				mech, r1.Makespan, r2.Makespan, r1.Migrations, r2.Migrations)
		}
	}
}

func TestBatchSizeOverride(t *testing.T) {
	set, _, cfg := testSetup(t, 32)
	cfg.BatchSize = 4
	res, err := Run(ADDICT, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 32 {
		t.Errorf("threads = %d", res.Threads)
	}
}
