package sched

import (
	"addict/internal/sim"
	"addict/internal/trace"
)

// CHAIN is a chaining-aware variant informed by the RISC-V instruction
// chaining extension (arXiv 2503.20609): dependent instruction windows —
// here, a transaction's database-operation invocations — are treated as
// chain links that commit as a unit on the core that owns the link's code.
// Every (transaction type, operation type) pair gets a home core, assigned
// round-robin the first time any thread reaches that operation; threads
// reaching an operation's begin marker chase the chain to its home, where
// the operation's instruction working set is already resident from every
// previous execution of the same operation. Consecutive links that share a
// home fuse: no migration is issued when the thread already sits on the
// home core.
//
// CHAIN is what ADDICT's software-guided migration looks like without a
// profiling pass: operation markers alone pick the migration points, so
// homes are op-type-granular rather than L1-I-capacity-sized. Short
// operations are not worth chasing — the migration cost would outweigh
// the locality gain — so links shorter than CHAINMinOpEvents run in place
// (the chain "fuses through" them).
type chainHooks struct {
	cores int
	minOp int
	ex    *sim.Executor
	// home maps txnType*NumOpTypes+opType → home core (-1 unassigned);
	// nextHome rotates assignments so chains pipeline across cores.
	home     []int
	nextHome int
}

// chainLookahead caps the op-length scan at Act time.
const chainLookahead = 256

// chainMaxQueue is the congestion bypass: a chain link runs in place when
// its home core already has this many waiters (queueing behind a convoy
// costs more than refetching the operation's code).
const chainMaxQueue = 2

func newChainHooks(cfg Config, ordered []*trace.Trace) *chainHooks {
	maxType := 0
	for _, tr := range ordered {
		if int(tr.Type) > maxType {
			maxType = int(tr.Type)
		}
	}
	home := make([]int, (maxType+1)*trace.NumOpTypes)
	for i := range home {
		home[i] = -1
	}
	return &chainHooks{cores: cfg.Machine.Cores, minOp: cfg.CHAINMinOpEvents, home: home}
}

func (c *chainHooks) bind(ex *sim.Executor) { c.ex = ex }

// Place implements sim.Hooks: batches enter round-robin across cores; the
// chain takes over from the first operation marker.
func (c *chainHooks) Place(t *sim.Thread) int { return t.Batch % c.cores }

// Act implements sim.Hooks. The only decision point is an operation's
// begin marker: resolve (or first-assign) the operation's home core and
// chase the chain there when the link is long enough to repay the
// migration.
func (c *chainHooks) Act(t *sim.Thread, ev trace.Event) sim.Action {
	if ev.Kind != trace.KindOpBegin {
		return sim.Run
	}
	idx := int(t.Trace.Type)*trace.NumOpTypes + int(ev.Op)
	home := c.home[idx]
	if home < 0 {
		home = c.nextHome
		c.nextHome = (c.nextHome + 1) % c.cores
		c.home[idx] = home
	}
	if home == t.Core || c.opLen(t) < c.minOp {
		return sim.Run
	}
	if c.ex.QueueLen(home) >= chainMaxQueue {
		return sim.Run // congested home: break the chain, run in place
	}
	return sim.MigrateTo(home)
}

// opLen measures the current operation window (the thread stands on its
// OpBegin) in events, up to the lookahead cap.
func (c *chainHooks) opLen(t *sim.Thread) int {
	events := t.Trace.Events
	end := t.Pos() + chainLookahead
	if end > len(events) {
		end = len(events)
	}
	for i := t.Pos() + 1; i < end; i++ {
		if events[i].Kind == trace.KindOpEnd {
			return i - t.Pos()
		}
	}
	return end - t.Pos()
}

// Observe implements sim.Hooks (CHAIN takes no outcome feedback).
func (c *chainHooks) Observe(*sim.Thread, trace.Event, sim.AccessOutcome) {}

// RunWindow implements sim.BatchHooks: Act acts only at an operation-begin
// marker, so everything up to (excluding) the next OpBegin — the rest of
// the current chain link, its end marker, and any inter-op glue — is
// guaranteed ActRun and commits as one window.
func (c *chainHooks) RunWindow(t *sim.Thread, evs []trace.Event) int {
	for i, ev := range evs {
		if ev.Kind == trace.KindOpBegin {
			return i
		}
	}
	return len(evs)
}

// ObserveBatch implements sim.BatchHooks (nothing to observe).
func (c *chainHooks) ObserveBatch(*sim.Thread, []trace.Event, []sim.AccessOutcome) {}

var _ sim.BatchHooks = (*chainHooks)(nil)
