package sched

import (
	"fmt"

	"addict/internal/core"
	"addict/internal/sim"
	"addict/internal/trace"
)

// Mechanism names a scheduling mechanism.
type Mechanism string

// The evaluated mechanisms. Baseline, STREX, SLICC, and ADDICT are the
// paper's four; HTMSPEC and CHAIN are the related-work extensions (see
// doc.go for provenance).
const (
	Baseline Mechanism = "Baseline"
	STREX    Mechanism = "STREX"
	SLICC    Mechanism = "SLICC"
	ADDICT   Mechanism = "ADDICT"
	HTMSPEC  Mechanism = "HTMSPEC"
	CHAIN    Mechanism = "CHAIN"
)

// Mechanisms lists the paper's four mechanisms in its presentation order.
// The figure experiments (5-9) and Engine.ScheduleAll compare exactly this
// set, reproducing the paper's evaluation axis.
var Mechanisms = []Mechanism{Baseline, STREX, SLICC, ADDICT}

// AllMechanisms lists every implemented mechanism family: the paper's four
// plus the related-work extensions. Name-resolving entry points
// (ParseMechanism, sweep grids, the serving API, the bench harness's extra
// cells, and the synthchar characterization) span this set.
var AllMechanisms = []Mechanism{Baseline, STREX, SLICC, ADDICT, HTMSPEC, CHAIN}

// Config parameterizes a scheduling run.
type Config struct {
	// Machine is the simulated hardware (Table 1 by default).
	Machine sim.Config
	// BatchSize is the number of same-type transactions batched together;
	// 0 means "number of cores" (the paper's default, Section 3.2.1).
	BatchSize int
	// AdmitLimit caps the number of concurrently admitted transactions
	// independently of the batch size (sweep axis: thread admission).
	// 0 keeps each mechanism's default: the batch size for SLICC and
	// ADDICT; unbounded (concurrency limited by the core queues) for
	// STREX, and for Baseline unless BatchSize models the load.
	AdmitLimit int
	// Profile supplies ADDICT's migration points (required for ADDICT).
	Profile *core.Profile

	// STREXEvictionThreshold is the number of L1-I evictions a thread
	// tolerates before STREX switches to the next thread in the batch.
	STREXEvictionThreshold int
	// SLICCWindow and SLICCMissThreshold define SLICC's miss-burst
	// detector: a migration triggers when the last SLICCWindow instruction
	// fetches contain at least SLICCMissThreshold misses.
	SLICCWindow        int
	SLICCMissThreshold int
	// SLICCCooldown is the minimum number of fetches between two SLICC
	// migrations of the same thread.
	SLICCCooldown int

	// HTMSPECReadSetLines and HTMSPECWriteSetLines bound HTMSPEC's
	// per-thread speculative read/write sets (in 64-byte cache lines); an
	// operation window touching more distinct lines than either cap takes
	// a capacity abort.
	HTMSPECReadSetLines  int
	HTMSPECWriteSetLines int
	// HTMSPECMaxAborts is the number of aborts a thread tolerates before
	// it permanently falls back to the non-speculative Baseline path
	// (the standard bounded-retry HTM fallback policy).
	HTMSPECMaxAborts int

	// CHAINMinOpEvents is the minimum remaining length (in trace events)
	// of an operation window for CHAIN to chase it to the operation's
	// home core; shorter windows run in place because the migration cost
	// would outweigh the instruction-locality gain.
	CHAINMinOpEvents int

	// DisableReplication strips ADDICT's surplus-core replicas and dynamic
	// stealing, leaving exactly one core per migration point — the
	// load-balancing ablation of Section 3.2.3's "fewer migration points
	// than cores" rule.
	DisableReplication bool

	// BatchBarrier makes ADDICT and SLICC admit strictly one batch at a
	// time (batch b+1 starts only after batch b drains) instead of the
	// default sliding window of BatchSize in-flight transactions.
	BatchBarrier bool
}

// DefaultConfig returns the paper's evaluation setup on the given machine.
// The mechanism knobs are calibrated once against the paper's Figure 5/6/9
// shape (see EXPERIMENTS.md) and frozen.
func DefaultConfig(machine sim.Config) Config {
	return Config{
		Machine:                machine,
		STREXEvictionThreshold: 64,
		SLICCWindow:            32,
		SLICCMissThreshold:     16,
		SLICCCooldown:          128,
		HTMSPECReadSetLines:    64,
		HTMSPECWriteSetLines:   32,
		HTMSPECMaxAborts:       4,
		CHAINMinOpEvents:       24,
	}
}

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return c.Machine.Cores
}

// Run replays a trace set under the given mechanism and returns the
// simulation result.
func Run(mech Mechanism, s *trace.Set, cfg Config) (sim.Result, error) {
	ex, err := newRun(mech, s, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return ex.Run(), nil
}

// newRun wires the mechanism's hooks, batching, and admission policy into
// a ready-to-run executor. Split from Run so the batch/per-event
// equivalence tests can flip sim.Executor.NoBatch before running.
func newRun(mech Mechanism, s *trace.Set, cfg Config) (*sim.Executor, error) {
	m := sim.NewMachine(cfg.Machine)
	// admit applies the explicit admission cap, if any, over a mechanism's
	// default in-flight bound.
	admit := func(def int) int {
		if cfg.AdmitLimit > 0 {
			return cfg.AdmitLimit
		}
		return def
	}
	switch mech {
	case Baseline:
		hooks := &baselineHooks{cores: cfg.Machine.Cores}
		ex := sim.NewExecutor(m, hooks, s.Traces)
		// An explicit batch size models server load for Baseline too
		// (Figure 7 compares mechanisms at equal concurrency).
		ex.AdmitLimit = admit(cfg.BatchSize)
		return ex, nil
	case STREX:
		ordered := batchByType(s.Traces, cfg.batchSize())
		hooks := newStrexHooks(cfg)
		ex := sim.NewExecutor(m, hooks, ordered)
		ex.AdmitLimit = admit(0)
		applyBatches(ex, ordered, cfg.batchSize())
		return ex, nil
	case SLICC:
		ordered := batchByType(s.Traces, cfg.batchSize())
		hooks := newSliccHooks(cfg)
		ex := sim.NewExecutor(m, hooks, ordered)
		ex.AdmitLimit = admit(cfg.batchSize())
		ex.BatchBarrier = cfg.BatchBarrier
		applyBatches(ex, ordered, cfg.batchSize())
		hooks.bind(ex)
		return ex, nil
	case ADDICT:
		if cfg.Profile == nil {
			return nil, fmt.Errorf("sched: ADDICT requires a migration-point profile")
		}
		ordered := batchByType(s.Traces, cfg.batchSize())
		hooks := newAddictHooks(cfg)
		ex := sim.NewExecutor(m, hooks, ordered)
		ex.AdmitLimit = admit(cfg.batchSize())
		ex.BatchBarrier = cfg.BatchBarrier
		applyBatches(ex, ordered, cfg.batchSize())
		hooks.bind(ex)
		return ex, nil
	case HTMSPEC:
		ordered := batchByType(s.Traces, cfg.batchSize())
		hooks := newHTMSpecHooks(cfg)
		ex := sim.NewExecutor(m, hooks, ordered)
		// Concurrency bounded by the core queues (like STREX): HTMSPEC is
		// Baseline plus speculation, so it runs at Baseline's width and
		// pays only for aborts.
		ex.AdmitLimit = admit(0)
		applyBatches(ex, ordered, cfg.batchSize())
		hooks.bind(ex)
		return ex, nil
	case CHAIN:
		ordered := batchByType(s.Traces, cfg.batchSize())
		hooks := newChainHooks(cfg, ordered)
		ex := sim.NewExecutor(m, hooks, ordered)
		ex.AdmitLimit = admit(cfg.batchSize())
		ex.BatchBarrier = cfg.BatchBarrier
		applyBatches(ex, ordered, cfg.batchSize())
		hooks.bind(ex)
		return ex, nil
	default:
		return nil, unknownMechanism(string(mech))
	}
}

// batchByType reorders traces so same-type transactions are grouped into
// batches of size b, preserving arrival order within a type — "same-type
// transactions from the list of client requests form a batch" (Algorithm 2
// lines 16-17). Batches of different types follow each other in first-
// arrival order.
func batchByType(traces []*trace.Trace, b int) []*trace.Trace {
	byType := make(map[trace.TxnType][]*trace.Trace)
	var typeOrder []trace.TxnType
	for _, t := range traces {
		if _, seen := byType[t.Type]; !seen {
			typeOrder = append(typeOrder, t.Type)
		}
		byType[t.Type] = append(byType[t.Type], t)
	}
	// Round-robin over types at batch granularity, mimicking a dispatcher
	// draining per-type request queues.
	out := make([]*trace.Trace, 0, len(traces))
	for len(out) < len(traces) {
		for _, tt := range typeOrder {
			q := byType[tt]
			if len(q) == 0 {
				continue
			}
			n := b
			if n > len(q) {
				n = len(q)
			}
			out = append(out, q[:n]...)
			byType[tt] = q[n:]
		}
	}
	return out
}

// applyBatches stamps batch indices onto the executor's threads (threads
// are created in `ordered` order).
func applyBatches(ex *sim.Executor, ordered []*trace.Trace, b int) {
	threads := ex.Threads()
	batch := 0
	count := 0
	var cur trace.TxnType
	for i, th := range threads {
		if count == b || (count > 0 && ordered[i].Type != cur) {
			batch++
			count = 0
		}
		cur = ordered[i].Type
		th.Batch = batch
		count++
	}
}

// baselineHooks is traditional scheduling: each transaction starts and
// finishes on one core; cores pull transactions in arrival order.
type baselineHooks struct {
	cores int
	next  int
}

// Place implements sim.Hooks by round-robin core assignment.
func (b *baselineHooks) Place(t *sim.Thread) int {
	c := b.next
	b.next = (b.next + 1) % b.cores
	return c
}

// Act implements sim.Hooks: never migrate, never yield.
func (b *baselineHooks) Act(*sim.Thread, trace.Event) sim.Action { return sim.Run }

// Observe implements sim.Hooks.
func (b *baselineHooks) Observe(*sim.Thread, trace.Event, sim.AccessOutcome) {}

// RunWindow implements sim.BatchHooks: Baseline never acts, so every
// offered event is committed — the whole replay runs without a single
// per-event scheduler call.
func (b *baselineHooks) RunWindow(t *sim.Thread, evs []trace.Event) int { return len(evs) }

// ObserveBatch implements sim.BatchHooks (nothing to observe).
func (b *baselineHooks) ObserveBatch(*sim.Thread, []trace.Event, []sim.AccessOutcome) {}

var _ sim.BatchHooks = (*baselineHooks)(nil)
