package sched

import (
	"addict/internal/sim"
	"addict/internal/trace"
)

// SLICC (Atta et al., MICRO 2012) spreads a transaction's computation over
// several cores to aggregate L1-I capacity: when a thread's fetch stream
// starts missing heavily (its working segment changed), SLICC migrates it
// to the core whose instruction cache already holds the blocks it needs —
// or to an idle core where the segment will be faulted in and then reused
// by the following same-type transactions. It is hardware-only: migration
// decisions come from miss counters and cache-residency probes, with no
// knowledge of operation boundaries, which is why it migrates more often
// than ADDICT and cannot avoid migrating inside critical sections
// (Section 5.2).
type sliccHooks struct {
	cores         int
	window        int
	missThreshold int
	cooldown      int

	ex *sim.Executor
	// st is per-thread state, indexed by thread ID (preallocated in bind —
	// the replay loop must not allocate).
	st []sliccState
	// rrPreferred rotates the idle-core preference for newly faulted
	// segments. It is global: every thread agrees on where the next fresh
	// segment goes, so followers find the leader's segment homes.
	rrPreferred int
	// segSeen/segBuf are reusable scratch for upcomingBlocks, so the
	// migration-decision path allocates nothing in steady state.
	segSeen map[uint64]struct{}
	segBuf  []uint64
}

type sliccState struct {
	fetches    int // fetches in current window
	misses     int // misses in current window
	sinceMove  int
	migrations int
}

func newSliccHooks(cfg Config) *sliccHooks {
	return &sliccHooks{
		cores:         cfg.Machine.Cores,
		window:        cfg.SLICCWindow,
		missThreshold: cfg.SLICCMissThreshold,
		cooldown:      cfg.SLICCCooldown,
		segSeen:       make(map[uint64]struct{}, segmentLookahead),
		segBuf:        make([]uint64, 0, segmentLookahead),
	}
}

func (s *sliccHooks) bind(ex *sim.Executor) {
	s.ex = ex
	s.st = make([]sliccState, len(ex.Threads()))
}

// Place implements sim.Hooks: a batch's threads all start on the same core
// and follow the leader through the segment homes it faults in — SLICC's
// self-assembling pipeline ("the initial/leader thread misses the
// instructions ... and the rest of the threads reuse the instructions
// already brought into cache(s) by the initial thread", Section 5.2).
func (s *sliccHooks) Place(t *sim.Thread) int { return t.Batch % s.cores }

func (s *sliccHooks) state(id int) *sliccState { return &s.st[id] }

// segmentLookahead is the number of distinct upcoming blocks scored when
// choosing a migration target — the replay-time stand-in for SLICC's
// per-core cache signatures.
const segmentLookahead = 32

// Act implements sim.Hooks: on a miss burst, chase the instructions —
// migrate to the core whose L1-I holds the most of the upcoming segment.
func (s *sliccHooks) Act(t *sim.Thread, ev trace.Event) sim.Action {
	if ev.Kind != trace.KindInstr {
		return sim.Run
	}
	st := s.state(t.ID)
	st.sinceMove++
	if st.fetches < s.window || st.misses < s.missThreshold || st.sinceMove < s.cooldown {
		return sim.Run
	}
	dest := s.pickCore(t)
	st.fetches, st.misses = 0, 0
	if dest == t.Core {
		return sim.Run
	}
	st.sinceMove = 0
	st.migrations++
	return sim.MigrateTo(dest)
}

// upcomingBlocks collects the next n distinct instruction blocks of the
// thread's stream into the reusable segment scratch (the returned slice is
// valid until the next call).
func (s *sliccHooks) upcomingBlocks(t *sim.Thread, n int) []uint64 {
	events := t.Trace.Events
	clear(s.segSeen)
	seen := s.segSeen
	out := s.segBuf[:0]
	for i := t.Pos(); i < len(events) && len(out) < n; i++ {
		if events[i].Kind != trace.KindInstr {
			continue
		}
		a := events[i].Addr
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

// pickCore scores every core's L1-I against the upcoming segment and
// chooses the best holder; with no meaningful holder, an idle core becomes
// the segment's new home.
func (s *sliccHooks) pickCore(t *sim.Thread) int {
	m := s.ex.M
	segment := s.upcomingBlocks(t, segmentLookahead)
	if len(segment) == 0 {
		return t.Core
	}
	// Score every core's L1-I against the segment; the current core's
	// score is the bar to beat. SLICC strongly prefers free cores — a
	// one-thread-per-core mechanism queueing behind a busy holder wastes
	// more than refetching.
	curScore := 0
	bestFree, bestFreeScore := -1, -1
	bestBusy, bestBusyScore := -1, -1
	for c := 0; c < s.cores; c++ {
		score := 0
		for _, a := range segment {
			if m.L1IContains(c, a) {
				score++
			}
		}
		switch {
		case c == t.Core:
			curScore = score
		case s.ex.CoreFree(c):
			if score > bestFreeScore {
				bestFree, bestFreeScore = c, score
			}
		default:
			if score > bestBusyScore {
				bestBusy, bestBusyScore = c, score
			}
		}
	}
	if bestFree >= 0 && bestFreeScore > curScore && bestFreeScore > len(segment)/4 {
		return bestFree
	}
	if bestBusy >= 0 && bestBusyScore > 2*curScore && bestBusyScore > len(segment)/2 &&
		s.ex.QueueLen(bestBusy) == 0 {
		// A decisively better busy holder with an empty queue: short wait,
		// big reuse.
		return bestBusy
	}
	if curScore >= len(segment)/4 {
		return t.Core // already reasonably at home
	}
	// Nobody holds the segment: fault it into an idle core (the global
	// rotating preference gives fresh segments stable homes).
	for i := 0; i < s.cores; i++ {
		c := (s.rrPreferred + i) % s.cores
		if c != t.Core && s.ex.CoreFree(c) {
			s.rrPreferred = (c + 1) % s.cores
			return c
		}
	}
	return t.Core
}

// Observe implements sim.Hooks: maintain the sliding miss window.
func (s *sliccHooks) Observe(t *sim.Thread, ev trace.Event, out sim.AccessOutcome) {
	if ev.Kind != trace.KindInstr {
		return
	}
	st := s.state(t.ID)
	st.fetches++
	if out.L1Miss {
		st.misses++
	}
	if st.fetches > s.window {
		// Restart the window (block-granular approximation of a sliding
		// window; SLICC's hardware uses saturating counters).
		st.fetches = 0
		st.misses = 0
	}
}

// RunWindow implements sim.BatchHooks. Act migrates only at an instruction
// fetch whose miss burst satisfies all three detector conditions; two of
// them — the fetch-count window and the cooldown — evolve independently of
// outcomes, so their trajectories can be replayed in advance: a fetch is
// guaranteed ActRun whenever the window is not yet full or the cooldown
// has not expired. Commitment stops at the first fetch where both are
// satisfiable and the (unknowable) miss count gets a say.
func (s *sliccHooks) RunWindow(t *sim.Thread, evs []trace.Event) int {
	st := s.state(t.ID)
	f := st.fetches
	sm := st.sinceMove
	for i, ev := range evs {
		if ev.Kind == trace.KindInstr {
			sm++
			if f >= s.window && sm >= s.cooldown {
				return i
			}
			// Replay Observe's deterministic part of the counter
			// evolution (the reset fires on fetch count alone).
			f++
			if f > s.window {
				f = 0
			}
		}
	}
	return len(evs)
}

// ObserveBatch implements sim.BatchHooks: replay Act's bookkeeping (the
// cooldown advance — Act was never called for committed events) plus the
// per-event Observe, in order, so the detector state is exactly what the
// per-event path would have left.
func (s *sliccHooks) ObserveBatch(t *sim.Thread, evs []trace.Event, outs []sim.AccessOutcome) {
	st := s.state(t.ID)
	for i, ev := range evs {
		if ev.Kind != trace.KindInstr {
			continue
		}
		st.sinceMove++
		st.fetches++
		if outs[i].L1Miss {
			st.misses++
		}
		if st.fetches > s.window {
			st.fetches = 0
			st.misses = 0
		}
	}
}

var _ sim.BatchHooks = (*sliccHooks)(nil)
