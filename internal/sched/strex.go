package sched

import (
	"addict/internal/sim"
	"addict/internal/trace"
)

// STREX (Atta et al., ISCA 2013) boosts instruction-cache reuse by
// stratified execution: a batch of same-type transactions shares ONE core
// and time-multiplexes at cache-sized strata. The lead thread faults a
// stratum of code into the L1-I; when the cache fills (evictions mount),
// STREX switches to the next transaction in the batch, which re-executes
// the same stratum out of the warm cache. It is hardware-only: no software
// hints, no multi-core spreading — which is why the paper finds it the
// weakest on L1-I misses (-20%) and the worst on latency (7-8× Baseline,
// every transaction spans its whole batch) and LLC pressure (+50%, one
// core's L2 window serves 16 live transactions).
type strexHooks struct {
	cores     int
	threshold int
	// evictions is the per-core cache-fill monitor: L1-I evictions on the
	// core since the last switch, regardless of which thread caused them.
	// (A per-core monitor is what the STREX hardware implements; it also
	// lets batch members drift out of stratum alignment, which is the
	// paper's explanation for STREX's modest L1-I gains.)
	evictions []int
	// batchCore pins each batch to one core, chosen by least assigned
	// work so skewed mixes (TPC-C's huge Delivery vs small Payment
	// batches) stay balanced.
	batchCore map[int]int
	coreWork  []uint64
}

func newStrexHooks(cfg Config) *strexHooks {
	return &strexHooks{
		cores:     cfg.Machine.Cores,
		threshold: cfg.STREXEvictionThreshold,
		evictions: make([]int, cfg.Machine.Cores),
		batchCore: make(map[int]int),
		coreWork:  make([]uint64, cfg.Machine.Cores),
	}
}

// Place implements sim.Hooks: each batch is pinned to one core — the
// least-loaded one when the batch first arrives.
func (s *strexHooks) Place(t *sim.Thread) int {
	c, ok := s.batchCore[t.Batch]
	if !ok {
		c = 0
		for i := 1; i < s.cores; i++ {
			if s.coreWork[i] < s.coreWork[c] {
				c = i
			}
		}
		s.batchCore[t.Batch] = c
	}
	s.coreWork[c] += uint64(len(t.Trace.Events))
	return c
}

// Act implements sim.Hooks: switch to the next batch thread once the
// core's monitor has seen `threshold` evictions (the stratum boundary).
func (s *strexHooks) Act(t *sim.Thread, ev trace.Event) sim.Action {
	if ev.Kind != trace.KindInstr {
		return sim.Run
	}
	if s.evictions[t.Core] >= s.threshold {
		s.evictions[t.Core] = 0
		return sim.Yield
	}
	return sim.Run
}

// Observe implements sim.Hooks: feed the per-core fill monitor.
func (s *strexHooks) Observe(t *sim.Thread, ev trace.Event, out sim.AccessOutcome) {
	if ev.Kind == trace.KindInstr && out.L1Evict {
		s.evictions[t.Core]++
	}
}

// RunWindow implements sim.BatchHooks. Act yields only at an instruction
// fetch once the core's monitor reaches the threshold, and each committed
// fetch can raise the monitor by at most one — so the first
// threshold-minus-current fetches are guaranteed ActRun under any outcome,
// and everything up to (excluding) the first fetch that could cross the
// line is committed. Non-fetch events never yield and commit freely. The
// monitor is per-core state, which the batch contract allows: t occupies
// its core for the whole commitment.
func (s *strexHooks) RunWindow(t *sim.Thread, evs []trace.Event) int {
	margin := s.threshold - s.evictions[t.Core]
	instr := 0
	for i, ev := range evs {
		if ev.Kind == trace.KindInstr {
			if instr >= margin {
				return i
			}
			instr++
		}
	}
	return len(evs)
}

// ObserveBatch implements sim.BatchHooks: identical bookkeeping to the
// per-event Observe.
func (s *strexHooks) ObserveBatch(t *sim.Thread, evs []trace.Event, outs []sim.AccessOutcome) {
	n := 0
	for i, ev := range evs {
		if ev.Kind == trace.KindInstr && outs[i].L1Evict {
			n++
		}
	}
	s.evictions[t.Core] += n
}

var _ sim.BatchHooks = (*strexHooks)(nil)
