package sched

import (
	"testing"

	"addict/internal/sim"
	"addict/internal/trace"
	"addict/internal/workload"
)

func TestSTREXPlacementBalancesSkewedBatches(t *testing.T) {
	// Batches of wildly different sizes must not pile onto low cores.
	cfg := DefaultConfig(sim.Shallow())
	s := newStrexHooks(cfg)
	mk := func(id, batch, events int) *sim.Thread {
		b := trace.NewBuffer(true)
		b.TxnBegin(0, "x")
		for i := 0; i < events; i++ {
			b.Instr(uint64(0x400000 + i*64))
		}
		b.TxnEnd()
		return &sim.Thread{ID: id, Trace: b.Take()[0], Batch: batch}
	}
	// Batch 0 is huge; batches 1..16 are small.
	var cores []int
	cores = append(cores, s.Place(mk(0, 0, 5000)))
	for i := 1; i <= 16; i++ {
		cores = append(cores, s.Place(mk(i, i, 100)))
	}
	// The huge batch's core must not also receive the first small batch.
	if cores[1] == cores[0] {
		t.Errorf("least-loaded placement put batch 1 on the loaded core %d", cores[0])
	}
	// All threads of one batch stay on one core.
	c := s.Place(mk(100, 0, 10))
	if c != cores[0] {
		t.Errorf("batch 0 thread placed on %d, batch core is %d", c, cores[0])
	}
}

func TestADDICTDisableReplicationSingleCores(t *testing.T) {
	set, _, cfg := testSetup(t, 32)
	cfg.DisableReplication = true
	res, err := Run(ADDICT, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 32 {
		t.Fatalf("threads = %d", res.Threads)
	}
	// Static single-core points serialize the pipeline: throughput must be
	// clearly worse than replicated ADDICT (the ablation's finding).
	full, err := Run(ADDICT, set, Config{
		Machine:                cfg.Machine,
		Profile:                cfg.Profile,
		STREXEvictionThreshold: cfg.STREXEvictionThreshold,
		SLICCWindow:            cfg.SLICCWindow,
		SLICCMissThreshold:     cfg.SLICCMissThreshold,
		SLICCCooldown:          cfg.SLICCCooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= full.Makespan {
		t.Errorf("unreplicated ADDICT (%d) not slower than replicated (%d)", res.Makespan, full.Makespan)
	}
}

func TestADDICTBatchBarrierMode(t *testing.T) {
	set, _, cfg := testSetup(t, 48)
	cfg.BatchBarrier = true
	res, err := Run(ADDICT, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 48 || res.Migrations == 0 {
		t.Fatalf("barrier run broken: %+v threads, %d migrations", res.Threads, res.Migrations)
	}
	// Barrier admission must still complete deterministically.
	res2, err := Run(ADDICT, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res2.Makespan {
		t.Error("barrier mode nondeterministic")
	}
}

func TestSLICCFollowsLeaderCores(t *testing.T) {
	// Same-type threads starting on the same core must end up reusing the
	// leader's segment homes: total L1-I misses well below one-full-fault
	// per thread.
	b := workload.NewTPCB(5, 0.1)
	set := workload.GenerateSet(b, 32)
	cfg := DefaultConfig(sim.Shallow())
	res, err := Run(SLICC, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Baseline, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.L1IMisses >= base.Machine.L1IMisses {
		t.Errorf("SLICC misses %d not below baseline %d", res.Machine.L1IMisses, base.Machine.L1IMisses)
	}
}

func TestMechanismsShareSameWork(t *testing.T) {
	// Every mechanism must execute exactly the same instruction and data
	// stream — scheduling must never change what a transaction does
	// (Section 3.2.5, "ADDICT's migrations have no effect on ACID
	// properties ... it does not change what a transaction executes").
	set, _, cfg := testSetup(t, 24)
	var wantInstr, wantReads, wantWrites uint64
	for i, mech := range AllMechanisms {
		res, err := Run(mech, set, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := res.Machine
		if i == 0 {
			wantInstr, wantReads, wantWrites = m.Instructions, m.DataReads, m.DataWrites
			continue
		}
		if m.Instructions != wantInstr || m.DataReads != wantReads || m.DataWrites != wantWrites {
			t.Errorf("%s work differs: instr %d/%d reads %d/%d writes %d/%d",
				mech, m.Instructions, wantInstr, m.DataReads, wantReads, m.DataWrites, wantWrites)
		}
	}
}

func TestBatchByTypePreservesArrivalWithinType(t *testing.T) {
	mk := func(tt trace.TxnType, tag int) *trace.Trace {
		b := trace.NewBuffer(true)
		b.TxnBegin(tt, "x")
		b.Instr(uint64(0x400000 + tag*64)) // tag encodes arrival order
		b.TxnEnd()
		return b.Take()[0]
	}
	traces := []*trace.Trace{mk(0, 0), mk(1, 1), mk(0, 2), mk(0, 3), mk(1, 4)}
	out := batchByType(traces, 4)
	var perType [2][]uint64
	for _, tr := range out {
		perType[tr.Type] = append(perType[tr.Type], tr.Events[1].Addr)
	}
	for tt, addrs := range perType {
		for i := 1; i < len(addrs); i++ {
			if addrs[i] < addrs[i-1] {
				t.Errorf("type %d arrival order broken: %v", tt, addrs)
			}
		}
	}
}
