package sched

import (
	"fmt"

	"addict/internal/core"
	"addict/internal/sim"
	"addict/internal/trace"
)

// RunOnline is ADDICT's pure-dynamic deployment (Section 3.1.3): "ADDICT
// can perform this step as a part of the ramp-up time (a few seconds)
// without making any specialized scheduling decisions for transactions and
// then switch to migrating transactions based on the information collected
// in this step."
//
// The first rampUp transactions run under traditional scheduling while
// Algorithm 1 profiles them; the remainder run under ADDICT with the
// freshly computed migration points. Returns the combined result plus the
// profile it learned.
func RunOnline(s *trace.Set, cfg Config, rampUp int, noMigrate func(uint64) bool) (sim.Result, *core.Profile, error) {
	if rampUp <= 0 || rampUp >= len(s.Traces) {
		return sim.Result{}, nil, fmt.Errorf("sched: ramp-up %d must be within (0, %d)", rampUp, len(s.Traces))
	}
	pcfg := core.ProfileConfig{L1I: cfg.Machine.L1I, NoMigrate: noMigrate}
	prof := core.FindMigrationPoints(s.Slice(0, rampUp), pcfg)

	m := sim.NewMachine(cfg.Machine)
	serving := s.Traces[rampUp:]
	ordered := append(append([]*trace.Trace(nil), s.Traces[:rampUp]...),
		batchByType(serving, cfg.batchSize())...)

	cfg.Profile = prof
	hooks := &onlineHooks{
		rampUp:   rampUp,
		baseline: &baselineHooks{cores: cfg.Machine.Cores},
		addict:   newAddictHooks(cfg),
	}
	ex := sim.NewExecutor(m, hooks, ordered)
	// Ramp-up transactions are one batch each (no batching under
	// traditional scheduling); serving-phase batches follow.
	threads := ex.Threads()
	for i := 0; i < rampUp; i++ {
		threads[i].Batch = i
	}
	batch := rampUp
	count := 0
	var cur trace.TxnType
	for i := rampUp; i < len(threads); i++ {
		if count == cfg.batchSize() || (count > 0 && ordered[i].Type != cur) {
			batch++
			count = 0
		}
		cur = ordered[i].Type
		threads[i].Batch = batch
		count++
	}
	hooks.addict.bind(ex)
	res := ex.Run()
	return res, prof, nil
}

// onlineHooks runs ramp-up threads under baseline rules and the rest under
// ADDICT.
type onlineHooks struct {
	rampUp   int
	baseline *baselineHooks
	addict   *addictHooks
}

// Place implements sim.Hooks.
func (o *onlineHooks) Place(t *sim.Thread) int {
	if t.ID < o.rampUp {
		return o.baseline.Place(t)
	}
	return o.addict.Place(t)
}

// Act implements sim.Hooks.
func (o *onlineHooks) Act(t *sim.Thread, ev trace.Event) sim.Action {
	if t.ID < o.rampUp {
		return o.baseline.Act(t, ev)
	}
	return o.addict.Act(t, ev)
}

// Observe implements sim.Hooks.
func (o *onlineHooks) Observe(t *sim.Thread, ev trace.Event, out sim.AccessOutcome) {
	if t.ID < o.rampUp {
		o.baseline.Observe(t, ev, out)
		return
	}
	o.addict.Observe(t, ev, out)
}
