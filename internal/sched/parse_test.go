package sched

import "testing"

func TestParseMechanism(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mechanism
	}{
		{"Baseline", Baseline},
		{"baseline", Baseline},
		{"STREX", STREX},
		{"slicc", SLICC},
		{"addict", ADDICT},
		{"HtmSpec", HTMSPEC},
		{"chain", CHAIN},
	} {
		got, err := ParseMechanism(tc.in)
		if err != nil {
			t.Errorf("ParseMechanism(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMechanism(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// TestParseMechanismErrorText pins the unknown-name error texts: a typo
// within edit distance gets a did-you-mean suggestion; an unrecognizable
// name gets the bare list.
func TestParseMechanismErrorText(t *testing.T) {
	const have = "have Baseline, STREX, SLICC, ADDICT, HTMSPEC, CHAIN"
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"ADICT", `sched: unknown mechanism "ADICT" (did you mean "ADDICT"? ` + have + `)`},
		{"htmspc", `sched: unknown mechanism "htmspc" (did you mean "HTMSPEC"? ` + have + `)`},
		{"Chian", `sched: unknown mechanism "Chian" (did you mean "CHAIN"? ` + have + `)`},
		{"SLIC", `sched: unknown mechanism "SLIC" (did you mean "SLICC"? ` + have + `)`},
		{"Bogus", `sched: unknown mechanism "Bogus" (` + have + `)`},
		{"", `sched: unknown mechanism "" (` + have + `)`},
	} {
		_, err := ParseMechanism(tc.in)
		if err == nil {
			t.Errorf("ParseMechanism(%q) unexpectedly succeeded", tc.in)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("ParseMechanism(%q) error:\n got %s\nwant %s", tc.in, err.Error(), tc.want)
		}
	}
}
