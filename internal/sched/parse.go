package sched

import (
	"fmt"
	"strings"
)

// ParseMechanism resolves a mechanism name to its canonical Mechanism
// constant, accepting every implemented family (AllMechanisms) in any
// letter case. Unknown names get a nearest-name suggestion (mirroring
// synth.ParseName's unknown-preset errors), so a typo like "ADICT" or
// "htm" points at the intended mechanism instead of a bare list.
func ParseMechanism(name string) (Mechanism, error) {
	for _, m := range AllMechanisms {
		if strings.EqualFold(name, string(m)) {
			return m, nil
		}
	}
	return "", unknownMechanism(name)
}

// MechanismNames renders AllMechanisms for error messages and docs.
func MechanismNames() string {
	names := make([]string, len(AllMechanisms))
	for i, m := range AllMechanisms {
		names[i] = string(m)
	}
	return strings.Join(names, ", ")
}

// unknownMechanism builds the unknown-name error, with a did-you-mean
// suggestion when some known mechanism is within edit distance.
func unknownMechanism(name string) error {
	if near := nearestMechanism(name); near != "" {
		return fmt.Errorf("sched: unknown mechanism %q (did you mean %q? have %s)",
			name, near, MechanismNames())
	}
	return fmt.Errorf("sched: unknown mechanism %q (have %s)", name, MechanismNames())
}

// nearestMechanism returns the known mechanism closest to name by
// case-insensitive edit distance, or "" when nothing is plausibly close
// (the same cutoff rule as synth's nearestPreset: a third of the name's
// length, at least 2).
func nearestMechanism(name string) string {
	lower := strings.ToLower(name)
	best, bestDist := "", -1
	for _, m := range AllMechanisms {
		d := editDistance(lower, strings.ToLower(string(m)))
		if bestDist < 0 || d < bestDist {
			best, bestDist = string(m), d
		}
	}
	max := (len(name) + 2) / 3
	if max < 2 {
		max = 2
	}
	if bestDist < 0 || bestDist > max {
		return ""
	}
	return best
}

// editDistance is the Levenshtein distance between a and b (two-row DP).
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
