package sched

import (
	"fmt"

	"addict/internal/core"
	"addict/internal/sim"
	"addict/internal/trace"
)

// exampleSet builds a tiny two-type trace set with operation markers —
// enough structure for every mechanism family to make its decisions.
func exampleSet() *trace.Set {
	b := trace.NewBuffer(true)
	for i := 0; i < 4; i++ {
		tt := trace.TxnType(i % 2)
		b.TxnBegin(tt, []string{"alpha", "beta"}[tt])
		for op := 0; op < 2; op++ {
			b.OpBegin(trace.OpType(op))
			for k := 0; k < 40; k++ {
				b.Instr(uint64(0x400000 + int(tt)*0x10000 + op*0x1000 + (k%8)*64))
			}
			b.Data(uint64(0x900000+i*64), op == 1)
			b.OpEnd(trace.OpType(op))
		}
		b.TxnEnd()
	}
	return &trace.Set{Workload: "example", TypeNames: []string{"alpha", "beta"}, Traces: b.Take()}
}

// Baseline: each transaction starts and finishes on one core.
func ExampleRun() {
	res, err := Run(Baseline, exampleSet(), DefaultConfig(sim.Shallow()))
	if err != nil {
		panic(err)
	}
	fmt.Println("transactions:", res.Threads)
	// Output: transactions: 4
}

// STREX: a batch of same-type transactions time-multiplexes one core,
// switching on L1-I eviction pressure.
func ExampleRun_strex() {
	res, err := Run(STREX, exampleSet(), DefaultConfig(sim.Shallow()))
	if err != nil {
		panic(err)
	}
	fmt.Println("transactions:", res.Threads)
	// Output: transactions: 4
}

// SLICC: a miss-burst detector migrates threads as their fetches leave
// the cached code segment.
func ExampleRun_slicc() {
	res, err := Run(SLICC, exampleSet(), DefaultConfig(sim.Shallow()))
	if err != nil {
		panic(err)
	}
	fmt.Println("transactions:", res.Threads)
	// Output: transactions: 4
}

// ADDICT needs Algorithm 1's migration-point profile; here it is computed
// from the same set the replay then runs.
func ExampleRun_addict() {
	set := exampleSet()
	cfg := DefaultConfig(sim.Shallow())
	cfg.Profile = core.FindMigrationPoints(set, core.ProfileConfig{L1I: cfg.Machine.L1I})
	res, err := Run(ADDICT, set, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("transactions:", res.Threads)
	// Output: transactions: 4
}

// HTMSPEC runs each operation window as a bounded speculative region; a
// window touching more lines than the set bound takes a capacity abort,
// surfaced through the result's speculation counters.
func ExampleRun_htmspec() {
	b := trace.NewBuffer(true)
	b.TxnBegin(0, "wide")
	b.OpBegin(0)
	for i := 0; i < 8; i++ {
		b.Data(uint64(0x200000+i*64), false) // 8 distinct lines
	}
	b.OpEnd(0)
	b.TxnEnd()
	set := &trace.Set{Workload: "example", TypeNames: []string{"wide"}, Traces: b.Take()}

	cfg := DefaultConfig(sim.Shallow())
	cfg.HTMSPECReadSetLines = 4 // the 8-line window overflows this bound
	res, err := Run(HTMSPEC, set, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("capacity aborts:", res.Spec.CapacityAborts)
	// Output: capacity aborts: 1
}

// CHAIN chases each operation window to the core owning that operation's
// code — ADDICT's migration idea with markers instead of a profile.
func ExampleRun_chain() {
	res, err := Run(CHAIN, exampleSet(), DefaultConfig(sim.Shallow()))
	if err != nil {
		panic(err)
	}
	fmt.Println("transactions:", res.Threads)
	// Output: transactions: 4
}

// Mechanism names resolve case-insensitively, with a nearest-name
// suggestion on a typo.
func ExampleParseMechanism() {
	m, _ := ParseMechanism("htmspec")
	fmt.Println(m)
	_, err := ParseMechanism("ADICT")
	fmt.Println(err)
	// Output:
	// HTMSPEC
	// sched: unknown mechanism "ADICT" (did you mean "ADDICT"? have Baseline, STREX, SLICC, ADDICT, HTMSPEC, CHAIN)
}
