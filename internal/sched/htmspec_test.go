package sched

import (
	"testing"

	"addict/internal/sim"
	"addict/internal/trace"
)

// htmSet wraps hand-built traces into a runnable Set.
func htmSet(traces []*trace.Trace) *trace.Set {
	return &trace.Set{Workload: "unit", TypeNames: []string{"unit"}, Traces: traces}
}

// TestHTMSPECCapacityAbort forces a set-overflow abort deterministically:
// a single thread's operation touches more distinct lines than the set
// bound, so validation at the operation's end must take exactly one
// capacity abort — and with a single thread there is nothing to conflict
// with.
func TestHTMSPECCapacityAbort(t *testing.T) {
	build := func(writes bool) *trace.Set {
		b := trace.NewBuffer(true)
		b.TxnBegin(0, "unit")
		b.OpBegin(0)
		b.Instr(0x400000)
		for i := 0; i < 8; i++ {
			b.Data(uint64(0x200000+i*64), writes)
		}
		b.OpEnd(0)
		b.TxnEnd()
		return htmSet(b.Take())
	}
	for _, tc := range []struct {
		name   string
		writes bool
	}{
		{"read-set", false},
		{"write-set", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(sim.Shallow())
			cfg.HTMSPECReadSetLines = 4
			cfg.HTMSPECWriteSetLines = 4
			cfg.HTMSPECMaxAborts = 100 // keep the fallback out of the way
			res, err := Run(HTMSPEC, build(tc.writes), cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := sim.SpecStats{CapacityAborts: 1}
			if res.Spec != want {
				t.Errorf("Spec = %+v, want %+v", res.Spec, want)
			}
		})
	}
}

// TestHTMSPECConflictAbort forces a conflicting-line abort
// deterministically: a reader opens its region, reads a line, and pads
// long enough that a second thread's write to the same line lands before
// the region validates. The reader must take exactly one conflict abort;
// the writer's own region commits (a thread never conflicts with itself).
func TestHTMSPECConflictAbort(t *testing.T) {
	const line = uint64(0x300000)
	rb := trace.NewBuffer(true)
	rb.TxnBegin(0, "unit")
	rb.OpBegin(0)
	rb.Data(line, false)
	for i := 0; i < 3000; i++ {
		rb.Instr(0x400000) // warm pad: holds the region open past the write
	}
	rb.OpEnd(0)
	rb.TxnEnd()

	wb := trace.NewBuffer(true)
	wb.TxnBegin(0, "unit")
	for i := 0; i < 300; i++ {
		wb.Instr(0x410000) // pre-region pad: the reader's region opens first
	}
	wb.OpBegin(1)
	wb.Data(line, true)
	wb.OpEnd(1)
	wb.TxnEnd()

	cfg := DefaultConfig(sim.Shallow())
	cfg.HTMSPECMaxAborts = 100
	res, err := Run(HTMSPEC, htmSet(append(rb.Take(), wb.Take()...)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.SpecStats{ConflictAborts: 1}
	if res.Spec != want {
		t.Errorf("Spec = %+v, want %+v", res.Spec, want)
	}
}

// TestHTMSPECFallbackAfterMaxAborts forces the bounded-retry fallback: with
// a two-abort budget and every operation overflowing the read set, the
// first two operations abort, the thread falls back, and the third
// operation must run non-speculatively (no third abort).
func TestHTMSPECFallbackAfterMaxAborts(t *testing.T) {
	b := trace.NewBuffer(true)
	b.TxnBegin(0, "unit")
	for op := 0; op < 3; op++ {
		b.OpBegin(trace.OpType(op))
		b.Instr(0x400000)
		for i := 0; i < 4; i++ {
			b.Data(uint64(0x500000+i*64), false)
		}
		b.OpEnd(trace.OpType(op))
	}
	b.TxnEnd()

	cfg := DefaultConfig(sim.Shallow())
	cfg.HTMSPECReadSetLines = 2
	cfg.HTMSPECMaxAborts = 2
	res, err := Run(HTMSPEC, htmSet(b.Take()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.SpecStats{CapacityAborts: 2, Fallbacks: 1}
	if res.Spec != want {
		t.Errorf("Spec = %+v, want %+v", res.Spec, want)
	}
}
