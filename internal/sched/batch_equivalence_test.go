package sched

import (
	"testing"

	"addict/internal/core"
	"addict/internal/sim"
	"addict/internal/trace"
	"addict/internal/workload"
)

// equivSetup builds a small but structurally rich replay input: enough
// threads to contend for cores, several transaction types, and a real
// migration-point profile for ADDICT.
func equivSetup(t testing.TB) (Config, *trace.Set) {
	t.Helper()
	w := workload.NewTPCC(7, 0.05)
	profSet := workload.GenerateSet(w, 60)
	evalSet := workload.GenerateSet(w, 60)
	cfg := DefaultConfig(sim.Shallow())
	cfg.Profile = core.FindMigrationPoints(profSet, core.ProfileConfig{L1I: cfg.Machine.L1I})
	return cfg, evalSet
}

// TestBatchDispatchMatchesPerEvent replays every mechanism twice — once on
// the per-event reference path (NoBatch) and once with batch dispatch —
// and requires identical results down to every machine counter. This is
// the executable form of the BatchHooks contract: window commitment is an
// optimization, never a behavior change.
func TestBatchDispatchMatchesPerEvent(t *testing.T) {
	cfg, evalSet := equivSetup(t)
	for _, mech := range AllMechanisms {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			ref := runWithDispatch(t, mech, evalSet, cfg, true)
			got := runWithDispatch(t, mech, evalSet, cfg, false)
			compareResults(t, ref, got)
		})
	}
}

func runWithDispatch(t *testing.T, mech Mechanism, s *trace.Set, cfg Config, noBatch bool) sim.Result {
	t.Helper()
	ex, err := newRun(mech, s, cfg)
	if err != nil {
		t.Fatalf("newRun(%s): %v", mech, err)
	}
	ex.NoBatch = noBatch
	return ex.Run()
}

// compareResults asserts two runs are observationally identical: the
// run-level aggregates, the per-core activity, and every machine counter.
func compareResults(t *testing.T, ref, got sim.Result) {
	t.Helper()
	if ref.Makespan != got.Makespan {
		t.Errorf("Makespan: per-event %d, batch %d", ref.Makespan, got.Makespan)
	}
	if ref.TotalLatency != got.TotalLatency {
		t.Errorf("TotalLatency: per-event %d, batch %d", ref.TotalLatency, got.TotalLatency)
	}
	if ref.Threads != got.Threads {
		t.Errorf("Threads: per-event %d, batch %d", ref.Threads, got.Threads)
	}
	if ref.Migrations != got.Migrations {
		t.Errorf("Migrations: per-event %d, batch %d", ref.Migrations, got.Migrations)
	}
	if ref.ContextSwitches != got.ContextSwitches {
		t.Errorf("ContextSwitches: per-event %d, batch %d", ref.ContextSwitches, got.ContextSwitches)
	}
	if ref.OverheadCycles != got.OverheadCycles {
		t.Errorf("OverheadCycles: per-event %d, batch %d", ref.OverheadCycles, got.OverheadCycles)
	}
	if ref.Spec != got.Spec {
		t.Errorf("Spec: per-event %+v, batch %+v", ref.Spec, got.Spec)
	}
	for i := range ref.CoreActive {
		if ref.CoreActive[i] != got.CoreActive[i] {
			t.Errorf("CoreActive[%d]: per-event %d, batch %d", i, ref.CoreActive[i], got.CoreActive[i])
		}
	}
	rm, gm := ref.Machine, got.Machine
	if rm.Instructions != gm.Instructions {
		t.Errorf("Instructions: per-event %d, batch %d", rm.Instructions, gm.Instructions)
	}
	if rm.L1IMisses != gm.L1IMisses {
		t.Errorf("L1IMisses: per-event %d, batch %d", rm.L1IMisses, gm.L1IMisses)
	}
	if rm.L1DMisses != gm.L1DMisses {
		t.Errorf("L1DMisses: per-event %d, batch %d", rm.L1DMisses, gm.L1DMisses)
	}
	if rm.SharedMisses != gm.SharedMisses {
		t.Errorf("SharedMisses: per-event %d, batch %d", rm.SharedMisses, gm.SharedMisses)
	}
	if rm.SharedHits != gm.SharedHits {
		t.Errorf("SharedHits: per-event %d, batch %d", rm.SharedHits, gm.SharedHits)
	}
	if rm.NoCHops != gm.NoCHops {
		t.Errorf("NoCHops: per-event %d, batch %d", rm.NoCHops, gm.NoCHops)
	}
	if rm.Invalidation != gm.Invalidation {
		t.Errorf("Invalidation: per-event %d, batch %d", rm.Invalidation, gm.Invalidation)
	}
	ri, rd, rs := rm.CacheStats()
	gi, gd, gs := gm.CacheStats()
	if ri != gi || rd != gd || rs != gs {
		t.Errorf("cache stats: per-event %v/%v/%v, batch %v/%v/%v", ri, rd, rs, gi, gd, gs)
	}
}
