package sched

import (
	"testing"

	"addict/internal/codemap"
	"addict/internal/sim"
	"addict/internal/workload"
)

func TestRunOnlineProfilesThenMigrates(t *testing.T) {
	b := workload.NewTPCB(1, 0.1)
	set := workload.GenerateSet(b, 160)
	lay := codemap.NewLayout()
	cfg := DefaultConfig(sim.Shallow())

	res, prof, err := RunOnline(set, cfg, 60, lay.NoMigrate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 160 {
		t.Fatalf("threads = %d", res.Threads)
	}
	if prof == nil || len(prof.Txns) == 0 {
		t.Fatal("no profile learned during ramp-up")
	}
	// The serving phase must actually migrate.
	if res.Migrations == 0 {
		t.Error("online run never migrated after ramp-up")
	}
	// Online must land between Baseline (no locality help) and offline
	// ADDICT (profiled up front): better than baseline overall despite the
	// baseline-scheduled ramp-up window.
	base, err := Run(Baseline, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.MPKI(res.Machine.L1IMisses) >= base.Machine.MPKI(base.Machine.L1IMisses) {
		t.Errorf("online L1-I MPKI %.2f not below baseline %.2f",
			res.Machine.MPKI(res.Machine.L1IMisses), base.Machine.MPKI(base.Machine.L1IMisses))
	}
}

func TestRunOnlineValidatesRampUp(t *testing.T) {
	b := workload.NewTPCB(2, 0.05)
	set := workload.GenerateSet(b, 10)
	cfg := DefaultConfig(sim.Shallow())
	if _, _, err := RunOnline(set, cfg, 0, nil); err == nil {
		t.Error("ramp-up 0 accepted")
	}
	if _, _, err := RunOnline(set, cfg, 10, nil); err == nil {
		t.Error("ramp-up == len accepted")
	}
	if _, _, err := RunOnline(set, cfg, 15, nil); err == nil {
		t.Error("ramp-up > len accepted")
	}
}

func TestRunOnlineDeterminism(t *testing.T) {
	b := workload.NewTPCB(3, 0.05)
	set := workload.GenerateSet(b, 60)
	cfg := DefaultConfig(sim.Shallow())
	r1, p1, err := RunOnline(set, cfg, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, p2, err := RunOnline(set, cfg, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan || r1.Migrations != r2.Migrations {
		t.Error("online run nondeterministic")
	}
	if !p1.Equal(p2) {
		t.Error("online profiles differ across runs")
	}
}
