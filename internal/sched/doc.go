// Package sched implements the transaction scheduling mechanism families
// the reproduction evaluates, all driving the same trace-replay executor
// on the same simulated machine.
//
// # The paper's four (Section 4.1)
//
// Baseline, STREX, SLICC, and ADDICT are the paper's evaluation axis,
// mirroring "we implement all four scheduling mechanisms on the Zesto
// simulator" — the series compared in Figures 5, 6, 8b, and 9
// (Mechanisms, in the paper's presentation order):
//
//   - Baseline — traditional scheduling: each transaction starts and
//     finishes on one core; cores pull transactions in arrival order.
//   - STREX (Atta et al., ISCA'13) — same-core time multiplexing: a batch
//     of same-type transactions shares one core, switching on L1-I
//     eviction pressure so the batch reuses the resident code.
//   - SLICC (Atta et al., MICRO'12) — hardware-only computation
//     spreading: a miss-burst detector migrates a thread when its fetches
//     leave the cached segment, spreading a transaction's code footprint
//     over several L1-I caches.
//   - ADDICT (this paper) — software-guided migration: Algorithm 1's
//     profiling pass picks migration points at operation granularity,
//     Algorithm 2 assigns each point a core, and the replay migrates
//     threads at exactly those points.
//
// # Related-work extensions
//
// HTMSPEC and CHAIN extend the axis with two mechanism families from
// later related work (AllMechanisms = the paper's four plus these two;
// the figure experiments keep the original four):
//
//   - HTMSPEC (htmspec.go) — bounded HTM-style speculation in the style
//     of limited read/write-set proposals needing no ISA or coherence
//     changes (arXiv 2510.15888). Each operation window runs as a
//     speculative region over per-thread bounded read/write sets;
//     validation at the operation's end aborts on set overflow (capacity)
//     or on a line another thread wrote since the region began
//     (conflict), and after HTMSPECMaxAborts aborts the thread falls back
//     to the non-speculative Baseline path. Abort counters surface as
//     sim.Result.Spec.
//   - CHAIN (chain.go) — chaining-aware scheduling informed by the
//     RISC-V instruction-chaining extension (arXiv 2503.20609): a
//     transaction's operation invocations are chain links committed as a
//     unit on the core that owns the link's code, with short links and
//     congested homes fusing in place. It is ADDICT's migration idea
//     without the profiling pass: operation markers alone pick the
//     migration points.
//
// Mechanism names resolve through ParseMechanism (case-insensitive, with
// a nearest-name suggestion on a typo); DESIGN.md §12 is the mechanism
// reference manual (state machines, abort/handoff conditions, knobs, and
// which BatchHooks methods each family implements).
//
// All six families implement sim.BatchHooks — scheduling decisions happen
// only at designated marker events, so whole event windows commit per
// scheduler call and the steady-state replay loop allocates nothing (the
// bench harness's zero-alloc and batch-equivalence guards cover every
// family). online.go adds the pure-dynamic deployment of Section 3.1.3
// (profile while serving, then migrate).
package sched
