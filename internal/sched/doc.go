// Package sched implements the four transaction scheduling mechanisms the
// paper evaluates (Section 4.1): Baseline (traditional one-core-per-
// transaction), STREX (same-core time multiplexing, ISCA'13), SLICC
// (hardware-only computation spreading, MICRO'12), and ADDICT (software-
// guided migration over the Step 1 migration points). All four drive the
// same trace-replay executor on the same simulated machine, mirroring the
// paper's "we implement all four scheduling mechanisms on the Zesto
// simulator" — they are the series compared in Figures 5, 6, 8b, and 9.
// online.go adds the pure-dynamic deployment of Section 3.1.3 (profile
// while serving, then migrate).
package sched
