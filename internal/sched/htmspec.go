package sched

import (
	"addict/internal/sim"
	"addict/internal/trace"
)

// HTMSPEC models a bounded hardware-transactional-memory mechanism in the
// style of limited read/write-set HTM proposals that need no ISA or
// coherence-protocol changes (arXiv 2510.15888): each database operation
// window (OpBegin..OpEnd) runs as one speculative region. The hardware
// tracks the region's read and write sets in small per-thread line
// buffers; at the operation's end the region validates and commits. A
// region aborts when a set overflows its bound (capacity abort) or when a
// tracked line was written by another thread since the region began
// (conflict abort). An abort costs a backoff reschedule — the thread
// migrates to the least-queued core and retries there — and after
// HTMSPECMaxAborts aborts the thread permanently falls back to the
// non-speculative Baseline path, the standard bounded-retry fallback.
//
// The replay engine executes every event exactly once, so an abort is
// modeled as its cost (the migration plus the requeue delay), not as
// a rollback-and-re-execute of the window: the instruction and data
// streams stay identical across mechanisms (the ACID-neutrality invariant
// every mechanism shares — see TestAllMechanismsExecuteEverything).
//
// Conflict detection is eager and approximate, as in signature-based HTM:
// a fixed-size, direct-mapped last-writer table records the most recent
// writer and a global write stamp per line slot. Validation checks every
// tracked line against the table; slot aliasing can hide an older writer
// (a lost conflict), never invent one for a line nobody wrote. All
// decisions happen at OpEnd markers only, which keeps the batch-dispatch
// contract: every other event is guaranteed ActRun, so whole op bodies
// commit as windows (see RunWindow).
type htmSpecHooks struct {
	cores     int
	readCap   int
	writeCap  int
	maxAborts int
	ex        *sim.Executor

	// st is per-thread speculation state, indexed by thread ID and
	// preallocated in bind (the replay loop must not allocate).
	st   []htmState
	next int // round-robin entry placement cursor

	// The last-writer conflict table: direct-mapped over line-address
	// hashes. lineTab holds the resident line, stampTab the global write
	// stamp of its latest write, ownerTab the writing thread. clock is
	// the global stamp, advanced once per data write by any thread.
	lineTab  []uint64
	stampTab []uint64
	ownerTab []int32
	clock    uint64

	stats sim.SpecStats
}

// htmState is one thread's speculation context.
type htmState struct {
	readSet  []uint64 // tracked read lines (readSet[:nr])
	writeSet []uint64 // tracked written lines (writeSet[:nw])
	nr, nw   int
	// startStamp is the global write stamp at the current region's begin;
	// only writes stamped after it can conflict.
	startStamp  uint64
	speculating bool
	overflow    bool
	fellBack    bool
	aborts      int
}

// htmTableBits sizes the last-writer table (2^13 = 8192 slots, ~160 KiB —
// fixed, so its cost amortizes to zero per event).
const htmTableBits = 13

func newHTMSpecHooks(cfg Config) *htmSpecHooks {
	return &htmSpecHooks{
		cores:     cfg.Machine.Cores,
		readCap:   cfg.HTMSPECReadSetLines,
		writeCap:  cfg.HTMSPECWriteSetLines,
		maxAborts: cfg.HTMSPECMaxAborts,
		lineTab:   make([]uint64, 1<<htmTableBits),
		stampTab:  make([]uint64, 1<<htmTableBits),
		ownerTab:  make([]int32, 1<<htmTableBits),
	}
}

func (h *htmSpecHooks) bind(ex *sim.Executor) {
	h.ex = ex
	n := len(ex.Threads())
	h.st = make([]htmState, n)
	// One backing array per set kind: per-thread slices carved out of it,
	// so the steady-state loop never allocates.
	reads := make([]uint64, n*h.readCap)
	writes := make([]uint64, n*h.writeCap)
	for i := range h.st {
		h.st[i].readSet = reads[i*h.readCap : (i+1)*h.readCap]
		h.st[i].writeSet = writes[i*h.writeCap : (i+1)*h.writeCap]
	}
}

// SpecStats implements sim.SpecReporter: the run's abort/fallback counters.
func (h *htmSpecHooks) SpecStats() sim.SpecStats { return h.stats }

// Place implements sim.Hooks: round-robin entry placement (the Baseline
// rule) — speculation needs concurrency to be worth anything, so HTMSPEC
// keeps the machine as wide as Baseline does and pays for contention only
// when a region actually aborts.
func (h *htmSpecHooks) Place(t *sim.Thread) int {
	c := h.next
	h.next = (h.next + 1) % h.cores
	return c
}

// slot hashes a line address into the conflict table.
func (h *htmSpecHooks) slot(line uint64) int {
	return int((line * 0x9E3779B97F4A7C15) >> (64 - htmTableBits))
}

// Act implements sim.Hooks. The only decision point is an operation's end
// marker: a speculating thread validates its region there. Validation
// failure aborts — clear the sets, count the abort, and pay the abort
// penalty: the thread backs off to the least-queued core (a migration
// charge plus the requeue delay, modeling the discard-and-reschedule of a
// real HTM abort). The marker then executes at the destination without
// another decision, so each failed validation is charged exactly once.
func (h *htmSpecHooks) Act(t *sim.Thread, ev trace.Event) sim.Action {
	if ev.Kind != trace.KindOpEnd {
		return sim.Run
	}
	st := &h.st[t.ID]
	if !st.speculating {
		return sim.Run
	}
	if st.overflow {
		return h.abort(t, st, true)
	}
	if h.conflicts(st.readSet[:st.nr], st.startStamp, t.ID) ||
		h.conflicts(st.writeSet[:st.nw], st.startStamp, t.ID) {
		return h.abort(t, st, false)
	}
	return sim.Run // validated: the region commits
}

// conflicts reports whether any tracked line was last written by another
// thread after the region began.
func (h *htmSpecHooks) conflicts(lines []uint64, start uint64, me int) bool {
	for _, line := range lines {
		s := h.slot(line)
		if h.lineTab[s] == line && h.stampTab[s] > start && h.ownerTab[s] != int32(me) {
			return true
		}
	}
	return false
}

// abort records one abort, resets the thread's speculation, applies the
// fallback policy, and backs the thread off to the next core as the abort
// penalty.
func (h *htmSpecHooks) abort(t *sim.Thread, st *htmState, capacity bool) sim.Action {
	if capacity {
		h.stats.CapacityAborts++
	} else {
		h.stats.ConflictAborts++
	}
	st.aborts++
	st.speculating = false
	st.nr, st.nw = 0, 0
	st.overflow = false
	if st.aborts >= h.maxAborts && !st.fellBack {
		st.fellBack = true
		h.stats.Fallbacks++
	}
	// Reschedule on the least-queued core (ties to the lowest index, so
	// the choice is deterministic). If that is the current core, MigrateTo
	// degrades to Run: the retry is immediate and free, as a real
	// same-core HTM retry would be.
	dest := 0
	for c := 1; c < h.cores; c++ {
		if h.ex.QueueLen(c) < h.ex.QueueLen(dest) {
			dest = c
		}
	}
	return sim.MigrateTo(dest)
}

// Observe implements sim.Hooks: region bookkeeping. Every data write —
// speculative or not, fallback threads included — publishes to the
// last-writer table, so non-speculating writers still abort speculating
// readers.
func (h *htmSpecHooks) Observe(t *sim.Thread, ev trace.Event, out sim.AccessOutcome) {
	h.observeOne(t, ev)
}

func (h *htmSpecHooks) observeOne(t *sim.Thread, ev trace.Event) {
	st := &h.st[t.ID]
	switch ev.Kind {
	case trace.KindOpBegin:
		if !st.fellBack {
			st.nr, st.nw = 0, 0
			st.overflow = false
			st.startStamp = h.clock
			st.speculating = true
		}
	case trace.KindOpEnd:
		// Region closed (committed at Act, or aborted there).
		st.speculating = false
		st.nr, st.nw = 0, 0
		st.overflow = false
	case trace.KindDataRead:
		if st.speculating {
			st.nr = addLine(st.readSet, st.nr, ev.Addr, &st.overflow)
		}
	case trace.KindDataWrite:
		h.clock++
		s := h.slot(ev.Addr)
		h.lineTab[s] = ev.Addr
		h.stampTab[s] = h.clock
		h.ownerTab[s] = int32(t.ID)
		if st.speculating {
			st.nw = addLine(st.writeSet, st.nw, ev.Addr, &st.overflow)
		}
	}
}

// addLine inserts a line into a bounded set (linear-probe dedup; regions
// are short, so n stays small), marking overflow when the set is full.
func addLine(set []uint64, n int, line uint64, overflow *bool) int {
	for i := 0; i < n; i++ {
		if set[i] == line {
			return n
		}
	}
	if n == len(set) {
		*overflow = true
		return n
	}
	set[n] = line
	return n + 1
}

// RunWindow implements sim.BatchHooks: Act acts only at an operation-end
// marker, so every event up to (excluding) the next OpEnd is guaranteed
// ActRun under any outcome — a whole op body commits as one window. A
// fallen-back thread never acts again and commits everything offered.
func (h *htmSpecHooks) RunWindow(t *sim.Thread, evs []trace.Event) int {
	if h.st[t.ID].fellBack {
		return len(evs)
	}
	for i, ev := range evs {
		if ev.Kind == trace.KindOpEnd {
			return i
		}
	}
	return len(evs)
}

// ObserveBatch implements sim.BatchHooks: identical bookkeeping to the
// per-event Observe, in order. Chunks break exactly where other threads
// interleave, so the global write stamps evolve as per-event dispatch
// would.
func (h *htmSpecHooks) ObserveBatch(t *sim.Thread, evs []trace.Event, outs []sim.AccessOutcome) {
	for _, ev := range evs {
		h.observeOne(t, ev)
	}
}

var _ sim.BatchHooks = (*htmSpecHooks)(nil)
var _ sim.SpecReporter = (*htmSpecHooks)(nil)
