package power

import (
	"testing"

	"addict/internal/sim"
	"addict/internal/trace"
)

func fakeResult(makespan uint64, migrations uint64) sim.Result {
	m := sim.NewMachine(sim.Shallow())
	// Drive some traffic through the machine so counters are non-zero.
	for i := 0; i < 100; i++ {
		m.Exec(0, trace.Event{Kind: trace.KindInstr, Addr: uint64(0x400000 + i*64)})
		m.Exec(1, trace.Event{Kind: trace.KindDataRead, Addr: uint64(0x2_0000_0000 + i*64)})
	}
	return sim.Result{
		Machine:    m,
		Makespan:   makespan,
		Migrations: migrations,
		CoreActive: make([]uint64, 16),
	}
}

func TestAnalyzeBasics(t *testing.T) {
	rep := Analyze(fakeResult(1000, 5), DefaultWeights())
	if rep.TotalEnergy <= 0 || rep.AvgCorePower <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	sum := rep.Breakdown.Dynamic + rep.Breakdown.Caches + rep.Breakdown.NoC +
		rep.Breakdown.Memory + rep.Breakdown.Migration + rep.Breakdown.Static
	if diff := rep.TotalEnergy - sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("breakdown does not sum: %v vs %v", rep.TotalEnergy, sum)
	}
}

// TestFasterRunDrawsMorePower is the Figure 8b effect: identical work over
// a shorter makespan raises average power.
func TestFasterRunDrawsMorePower(t *testing.T) {
	slow := Analyze(fakeResult(2000, 0), DefaultWeights())
	fast := Analyze(fakeResult(1200, 50), DefaultWeights())
	if fast.AvgCorePower <= slow.AvgCorePower {
		t.Errorf("fast run power %v not above slow run %v", fast.AvgCorePower, slow.AvgCorePower)
	}
	// Energy, by contrast, barely moves (static shrinks, migrations add).
	if fast.TotalEnergy > slow.TotalEnergy {
		t.Errorf("faster run used more energy: %v vs %v", fast.TotalEnergy, slow.TotalEnergy)
	}
}

func TestMigrationsCostEnergy(t *testing.T) {
	none := Analyze(fakeResult(1000, 0), DefaultWeights())
	many := Analyze(fakeResult(1000, 1000), DefaultWeights())
	if many.TotalEnergy <= none.TotalEnergy {
		t.Error("migrations did not add energy")
	}
	if many.Breakdown.Migration == 0 {
		t.Error("migration energy not attributed")
	}
}

func TestZeroMakespan(t *testing.T) {
	rep := Analyze(fakeResult(0, 0), DefaultWeights())
	if rep.AvgCorePower != 0 {
		t.Errorf("power with zero makespan = %v", rep.AvgCorePower)
	}
}
