// Package power estimates per-core power from simulator activity counters —
// the reproduction's stand-in for McPAT (Section 4.7, Figure 8b; DESIGN.md
// Section 2 documents the substitution).
//
// The model splits energy into a dynamic part that tracks work done
// (instructions, cache and memory events, migrations — nearly identical
// across scheduling mechanisms, since they execute the same transactions)
// and a static part that tracks wall-clock time (leakage and clocks burn
// regardless of progress). Average per-core power is total energy over
// makespan: a mechanism that finishes the same work in fewer cycles
// therefore draws MORE average power — Figure 8b's "ADDICT requires around
// 10% more power than Baseline".
package power
