package power

import "addict/internal/sim"

// Weights are the per-event energy costs in arbitrary energy units
// (relative magnitudes follow the usual CMP breakdowns: DRAM ≫ LLC ≫ L1).
type Weights struct {
	Instruction  float64 // per retired instruction
	L1Access     float64 // L1-I or L1-D access
	SharedAccess float64 // shared-cache bank access
	NoCHop       float64 // one interconnect hop
	MemAccess    float64 // DRAM access
	Migration    float64 // thread-context transfer (~6 cache lines)
	Invalidation float64 // coherence invalidation
	StaticCycle  float64 // per core-cycle of wall-clock (leakage + clocks)
}

// DefaultWeights returns the calibrated weights (static ≈ 45% of a typical
// Baseline run's energy, the usual server-core split).
func DefaultWeights() Weights {
	return Weights{
		Instruction:  0.40,
		L1Access:     0.05,
		SharedAccess: 0.50,
		NoCHop:       0.10,
		MemAccess:    8.0,
		Migration:    15.0,
		Invalidation: 0.50,
		StaticCycle:  0.55,
	}
}

// Report is the power analysis of one run.
type Report struct {
	// TotalEnergy is the run's total energy (arbitrary units).
	TotalEnergy float64
	// AvgCorePower is energy / makespan / cores — Figure 8b's metric.
	AvgCorePower float64
	// Breakdown attributes energy to components.
	Breakdown struct {
		Dynamic, Caches, NoC, Memory, Migration, Static float64
	}
}

// Analyze computes the power report for a completed run.
func Analyze(res sim.Result, w Weights) Report {
	m := res.Machine
	var rep Report

	rep.Breakdown.Dynamic = float64(m.Instructions) * w.Instruction
	l1i, l1d, shared := m.CacheStats()
	rep.Breakdown.Caches = float64(l1i.Accesses+l1d.Accesses)*w.L1Access +
		float64(shared.Accesses)*w.SharedAccess
	rep.Breakdown.NoC = float64(m.NoCHops)*w.NoCHop +
		float64(m.Invalidation)*w.Invalidation
	rep.Breakdown.Memory = float64(m.SharedMisses) * w.MemAccess
	rep.Breakdown.Migration = float64(res.Migrations+res.ContextSwitches) * w.Migration
	cores := len(res.CoreActive)
	if cores == 0 {
		cores = m.Cfg.Cores
	}
	rep.Breakdown.Static = float64(res.Makespan) * float64(cores) * w.StaticCycle

	rep.TotalEnergy = rep.Breakdown.Dynamic + rep.Breakdown.Caches +
		rep.Breakdown.NoC + rep.Breakdown.Memory + rep.Breakdown.Migration +
		rep.Breakdown.Static
	if res.Makespan > 0 && cores > 0 {
		rep.AvgCorePower = rep.TotalEnergy / float64(res.Makespan) / float64(cores)
	}
	return rep
}
