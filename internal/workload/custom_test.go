package workload

import (
	"strings"
	"testing"

	"addict/internal/codemap"
	"addict/internal/storage"
	"addict/internal/trace"
)

// customManager builds a tiny populated manager for custom-workload tests.
func customManager(t *testing.T) (*storage.Manager, *storage.Table) {
	t.Helper()
	m := storage.NewManager(trace.Discard{}, codemap.NewLayout())
	tbl := m.CreateTable("kv")
	tbl.CreateIndex("kv_pk")
	pop := m.Begin()
	for i := 0; i < 50; i++ {
		mustInsert(m, pop, tbl, []uint64{uint64(i)}, mkRec(64, uint64(i)))
	}
	m.Commit(pop)
	return m, tbl
}

// TestNewCustomValid: a well-formed spec list compiles and generates.
func TestNewCustomValid(t *testing.T) {
	m, tbl := customManager(t)
	b, err := NewCustom("KV", m, 1, []TxnSpec{
		{Name: "Get", Weight: 1.0, Run: func(txn *storage.Txn) {
			m.IndexProbe(txn, tbl, tbl.Index(0), 7)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := GenerateSet(b, 5)
	if len(s.Traces) != 5 {
		t.Fatalf("generated %d traces", len(s.Traces))
	}
}

// TestNewCustomErrorPaths locks the validation of user-supplied specs:
// each malformed list must fail with a diagnostic naming the problem
// instead of surfacing later as a NaN mix or a panic.
func TestNewCustomErrorPaths(t *testing.T) {
	m, tbl := customManager(t)
	noop := func(txn *storage.Txn) { m.IndexProbe(txn, tbl, tbl.Index(0), 1) }
	cases := []struct {
		name  string
		types []TxnSpec
		want  string
	}{
		{"empty types", nil, "no transaction types"},
		{"zero weights", []TxnSpec{
			{Name: "A", Weight: 0, Run: noop},
			{Name: "B", Weight: 0, Run: noop},
		}, "sum to 0"},
		{"negative weight", []TxnSpec{
			{Name: "A", Weight: -0.5, Run: noop},
			{Name: "B", Weight: 1.5, Run: noop},
		}, "negative weight"},
		{"nil run", []TxnSpec{{Name: "A", Weight: 1}}, "no Run"},
		{"unnamed type", []TxnSpec{{Weight: 1, Run: noop}}, "no name"},
		{"duplicate name", []TxnSpec{
			{Name: "A", Weight: 0.5, Run: noop},
			{Name: "A", Weight: 0.5, Run: noop},
		}, "duplicate type name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b, err := NewCustom("Bad", m, 1, c.types)
			if err == nil {
				t.Fatalf("accepted: %+v", b)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestNewCustomSingleZeroWeightAmongPositive: a zero weight next to
// positive ones is legal (the type just never fires) — only an all-zero
// total is rejected.
func TestNewCustomSingleZeroWeightAmongPositive(t *testing.T) {
	m, tbl := customManager(t)
	noop := func(txn *storage.Txn) { m.IndexProbe(txn, tbl, tbl.Index(0), 1) }
	b, err := NewCustom("Mixed", m, 3, []TxnSpec{
		{Name: "Never", Weight: 0, Run: func(txn *storage.Txn) {
			t.Error("zero-weight type executed")
		}},
		{Name: "Always", Weight: 1, Run: noop},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := GenerateSet(b, 30)
	for _, tr := range s.Traces {
		if tr.TypeName != "Always" {
			t.Fatalf("unexpected type %q", tr.TypeName)
		}
	}
}
