package workload

import (
	"encoding/binary"
	"math/rand"

	"addict/internal/codemap"
	"addict/internal/storage"
	"addict/internal/trace"
)

// TPC-B: the classic bank benchmark. One transaction type, AccountUpdate:
// read and update an account, its teller, and its branch, then append a row
// to the unindexed History table — the paper's running example for the
// rarely-taken allocate-page path ("only six AccountUpdate instances out of
// the 1000 require this routine", Section 2.2.1).
const (
	tpcbBranches     = 16
	tpcbTellersPerBr = 10
	tpcbAccountsPer  = 10000

	tpcbAccountRec = 100
	tpcbTellerRec  = 100
	tpcbBranchRec  = 100
	tpcbHistoryRec = 50
)

type tpcb struct {
	m        *storage.Manager
	rng      *rand.Rand
	branch   *storage.Table
	teller   *storage.Table
	account  *storage.Table
	history  *storage.Table
	nBranch  int
	nTeller  int
	nAccount int
}

// NewTPCB builds and populates a TPC-B database and returns its benchmark.
// scale 1.0 ≈ 160k accounts; the experiments use scale 1.0.
func NewTPCB(seed int64, scale float64) *Benchmark {
	rng := rand.New(rand.NewSource(seed))
	m := storage.NewManager(trace.Discard{}, codemap.NewLayout())
	w := &tpcb{
		m:        m,
		rng:      rng,
		nBranch:  scaled(tpcbBranches, scale),
		nTeller:  scaled(tpcbBranches*tpcbTellersPerBr, scale),
		nAccount: scaled(tpcbBranches*tpcbAccountsPer, scale),
	}
	w.branch = m.CreateTable("branch")
	w.branch.CreateIndex("branch_pk")
	w.teller = m.CreateTable("teller")
	w.teller.CreateIndex("teller_pk")
	w.account = m.CreateTable("account")
	w.account.CreateIndex("account_pk")
	w.history = m.CreateTable("history") // no index, per spec

	pop := m.Begin()
	for i := 0; i < w.nBranch; i++ {
		mustInsert(m, pop, w.branch, []uint64{uint64(i)}, mkRec(tpcbBranchRec, uint64(i)))
	}
	for i := 0; i < w.nTeller; i++ {
		mustInsert(m, pop, w.teller, []uint64{uint64(i)}, mkRec(tpcbTellerRec, uint64(i)))
	}
	for i := 0; i < w.nAccount; i++ {
		mustInsert(m, pop, w.account, []uint64{uint64(i)}, mkRec(tpcbAccountRec, uint64(i)))
	}
	m.Commit(pop)

	return newBenchmark("TPC-B", m, rng, []TxnSpec{
		{Name: "AccountUpdate", Weight: 1.0, Run: w.accountUpdate},
	})
}

// accountUpdate is the TPC-B transaction: probe + update account, teller,
// and branch; insert a history row.
func (w *tpcb) accountUpdate(txn *storage.Txn) {
	m := w.m
	aid := uint64(w.rng.Intn(w.nAccount))
	tid := uint64(w.rng.Intn(w.nTeller))
	bid := uint64(w.rng.Intn(w.nBranch))
	delta := uint64(w.rng.Intn(1999999)) // the +/-999999 delta of the spec

	arid, arec, ok := m.IndexProbe(txn, w.account, w.account.Index(0), aid)
	if !ok {
		panic("tpcb: account vanished")
	}
	bumpBalance(arec, delta)
	must(m.UpdateTuple(txn, w.account, arid, aid, arec))

	trid, trec, ok := m.IndexProbe(txn, w.teller, w.teller.Index(0), tid)
	if !ok {
		panic("tpcb: teller vanished")
	}
	bumpBalance(trec, delta)
	must(m.UpdateTuple(txn, w.teller, trid, tid, trec))

	brid, brec, ok := m.IndexProbe(txn, w.branch, w.branch.Index(0), bid)
	if !ok {
		panic("tpcb: branch vanished")
	}
	bumpBalance(brec, delta)
	must(m.UpdateTuple(txn, w.branch, brid, bid, brec))

	hist := mkRec(tpcbHistoryRec, aid)
	binary.LittleEndian.PutUint64(hist[8:], tid)
	binary.LittleEndian.PutUint64(hist[16:], bid)
	if _, err := m.InsertTuple(txn, w.history, nil, hist); err != nil {
		panic(err)
	}
}

// mkRec builds a record of the given size with the key stamped at offset 0.
func mkRec(size int, key uint64) []byte {
	rec := make([]byte, size)
	binary.LittleEndian.PutUint64(rec, key)
	return rec
}

// bumpBalance adds delta to the balance field (offset 24) in place.
func bumpBalance(rec []byte, delta uint64) {
	bal := binary.LittleEndian.Uint64(rec[24:])
	binary.LittleEndian.PutUint64(rec[24:], bal+delta)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
