package workload

import "testing"

// TestShardSeedDistinct: neighbouring (seed, shard) pairs must yield
// distinct, well-mixed shard seeds (the splitmix64 step).
func TestShardSeedDistinct(t *testing.T) {
	seen := make(map[int64][2]int64)
	for _, seed := range []int64{0, 1, 42, -7} {
		for shard := 0; shard < 64; shard++ {
			s := ShardSeed(seed, shard)
			if prev, dup := seen[s]; dup {
				t.Fatalf("ShardSeed collision: (%d,%d) and (%d,%d) -> %d", seed, shard, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{seed, int64(shard)}
		}
	}
	if ShardSeed(1, 0) == 1 {
		t.Error("ShardSeed(1, 0) must not pass the seed through unmixed")
	}
}

func TestNumShards(t *testing.T) {
	cases := []struct{ n, size, want int }{
		{0, 128, 1},
		{1, 128, 1},
		{128, 128, 1},
		{129, 128, 2},
		{250, 128, 2},
		{1000, 128, 8},
		{40, 0, 1}, // size 0 selects the default
	}
	for _, c := range cases {
		if got := NumShards(c.n, c.size); got != c.want {
			t.Errorf("NumShards(%d, %d) = %d, want %d", c.n, c.size, got, c.want)
		}
	}
}

// TestShardedGenerationWorkerIndependent is the core determinism guarantee:
// the merged trace set's digest must be identical for every worker count.
func TestShardedGenerationWorkerIndependent(t *testing.T) {
	for _, name := range []string{"TPC-B", "TPC-C", "TPC-E"} {
		ref, err := GenerateSetSharded(name, 9, 0.05, 0, 40, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ref.Traces) != 40 {
			t.Fatalf("%s: got %d traces, want 40", name, len(ref.Traces))
		}
		want := ref.Digest()
		for _, workers := range []int{2, 3, 8} {
			s, err := GenerateSetSharded(name, 9, 0.05, 0, 40, 16, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if got := s.Digest(); got != want {
				t.Errorf("%s: digest with %d workers = %#x, want %#x (serial)", name, workers, got, want)
			}
		}
	}
}

// TestShardedGenerationWindowsDisjoint: distinct baseShard ranges must
// produce different traces (the paper's "first 1000" vs "next 1000").
func TestShardedGenerationWindowsDisjoint(t *testing.T) {
	a, err := GenerateSetSharded("TPC-B", 9, 0.05, 0, 24, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSetSharded("TPC-B", 9, 0.05, NumShards(24, 8), 24, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == b.Digest() {
		t.Error("profiling-window and evaluation-window shards produced identical sets")
	}
	if a.Workload != "TPC-B" || len(a.TypeNames) == 0 {
		t.Errorf("merged set lost workload metadata: %+v", a)
	}
}

// TestShardedGenerationValidTraces: merged shard output must satisfy the
// trace structural invariants end to end.
func TestShardedGenerationValidTraces(t *testing.T) {
	s, err := GenerateSetSharded("TPC-C", 9, 0.05, 0, 20, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range s.Traces {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
	}
}

func TestShardedGenerationUnknownWorkload(t *testing.T) {
	if _, err := GenerateSetSharded("TPC-Z", 1, 1, 0, 10, 8, 2); err == nil {
		t.Error("unknown workload must error")
	}
}
