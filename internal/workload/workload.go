// Package workload implements the three TPC OLTP benchmarks the paper
// characterizes and evaluates (Section 4.1): TPC-B, TPC-C, and TPC-E, as
// deterministic trace generators over the storage manager.
//
// Schemas and transaction logic follow the TPC specifications, scaled to
// laptop-sized populations (DESIGN.md Section 2 explains why the sparse data
// address space preserves the paper's ≤6% data overlap despite the smaller
// physical dataset). Transaction mixes match the specs: TPC-B's single
// AccountUpdate; TPC-C's 45/43/4/4/4 NewOrder/Payment/OrderStatus/Delivery/
// StockLevel; TPC-E's 10-type, ~77% read-only mix with TradeStatus at 19%.
package workload

import (
	"fmt"
	"math/rand"

	"addict/internal/storage"
	"addict/internal/trace"
)

// Benchmark is a populated workload that generates one transaction trace at
// a time.
type Benchmark struct {
	name  string
	m     *storage.Manager
	rng   *rand.Rand
	types []TxnSpec
	cum   []float64
	gen   uint64
}

// TxnSpec declares one transaction type of a benchmark's mix.
type TxnSpec struct {
	// Name is the transaction's spec name (e.g. "NewOrder").
	Name string
	// Weight is the mix fraction (all weights in a benchmark sum to ~1).
	Weight float64
	// Run executes the transaction's operations inside an open storage
	// transaction.
	Run func(txn *storage.Txn)
}

// NewCustom assembles a benchmark from user-supplied transaction specs over
// an already-populated storage manager — the hook for workloads beyond the
// three TPC benchmarks (the paper's conclusion: "ADDICT can benefit any
// application that ... [has] concurrent requests executing a series of
// actions from a predefined set"). The specs are validated up front: an
// empty type list, a missing Run, a duplicate or empty name, a negative
// weight, or an all-zero weight total would otherwise surface later as a
// NaN mix or a panic mid-generation.
func NewCustom(name string, m *storage.Manager, seed int64, types []TxnSpec) (*Benchmark, error) {
	if err := validateTypes(name, types); err != nil {
		return nil, err
	}
	return newBenchmark(name, m, rand.New(rand.NewSource(seed)), types), nil
}

// validateTypes rejects transaction-spec lists the mix machinery cannot
// serve. TPC builders bypass it (their specs are compile-time constants);
// every user-supplied path goes through it.
func validateTypes(name string, types []TxnSpec) error {
	if len(types) == 0 {
		return fmt.Errorf("workload %s: no transaction types", name)
	}
	seen := make(map[string]bool, len(types))
	total := 0.0
	for i, t := range types {
		if t.Name == "" {
			return fmt.Errorf("workload %s: type %d has no name", name, i)
		}
		if seen[t.Name] {
			return fmt.Errorf("workload %s: duplicate type name %q", name, t.Name)
		}
		seen[t.Name] = true
		if t.Run == nil {
			return fmt.Errorf("workload %s: type %q has no Run", name, t.Name)
		}
		if t.Weight < 0 {
			return fmt.Errorf("workload %s: type %q has negative weight %v", name, t.Name, t.Weight)
		}
		total += t.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload %s: mix weights sum to %v, want > 0", name, total)
	}
	return nil
}

func newBenchmark(name string, m *storage.Manager, rng *rand.Rand, types []TxnSpec) *Benchmark {
	b := &Benchmark{name: name, m: m, rng: rng, types: types}
	total := 0.0
	for _, t := range types {
		total += t.Weight
	}
	acc := 0.0
	for _, t := range types {
		acc += t.Weight / total
		b.cum = append(b.cum, acc)
	}
	return b
}

// Name returns the benchmark name ("TPC-B", "TPC-C", "TPC-E").
func (b *Benchmark) Name() string { return b.name }

// Manager returns the underlying storage manager.
func (b *Benchmark) Manager() *storage.Manager { return b.m }

// TypeNames returns the transaction type names indexed by trace.TxnType.
func (b *Benchmark) TypeNames() []string {
	names := make([]string, len(b.types))
	for i, t := range b.types {
		names[i] = t.Name
	}
	return names
}

// TypeByName returns the TxnType for a transaction name.
func (b *Benchmark) TypeByName(name string) (trace.TxnType, bool) {
	for i, t := range b.types {
		if t.Name == name {
			return trace.TxnType(i), true
		}
	}
	return 0, false
}

// pickType draws a transaction type from the mix.
func (b *Benchmark) pickType() int {
	r := b.rng.Float64()
	for i, c := range b.cum {
		if r < c {
			return i
		}
	}
	return len(b.cum) - 1
}

// NextTxn runs one transaction, drawn from the mix, against the manager's
// current recorder, and returns its type.
func (b *Benchmark) NextTxn() trace.TxnType {
	i := b.pickType()
	spec := b.types[i]
	rec := b.m.Recorder()
	rec.TxnBegin(trace.TxnType(i), spec.Name)
	txn := b.m.Begin()
	spec.Run(txn)
	b.m.Commit(txn)
	rec.TxnEnd()
	b.gen++
	return trace.TxnType(i)
}

// Generated returns the number of transactions generated so far.
func (b *Benchmark) Generated() uint64 { return b.gen }

// GenerateSet collects n transaction traces into a Set (the paper's trace
// batches, Section 4.1).
func GenerateSet(b *Benchmark, n int) *trace.Set {
	buf := trace.NewBuffer(true)
	prev := b.m.Recorder()
	b.m.SetRecorder(buf)
	defer b.m.SetRecorder(prev)
	s := &trace.Set{Workload: b.name, TypeNames: b.TypeNames()}
	for i := 0; i < n; i++ {
		b.NextTxn()
		s.Traces = append(s.Traces, buf.Take()[0])
	}
	return s
}

// Stream generates n traces one at a time, calling fn on each and then
// discarding it — the memory-bounded path for the 11,000-trace stability
// experiment (Section 4.2).
func Stream(b *Benchmark, n int, fn func(i int, t *trace.Trace)) {
	buf := trace.NewBuffer(true)
	prev := b.m.Recorder()
	b.m.SetRecorder(buf)
	defer b.m.SetRecorder(prev)
	for i := 0; i < n; i++ {
		b.NextTxn()
		fn(i, buf.Take()[0])
	}
}

// Builder constructs one of the three benchmarks by name.
func Builder(name string) (func(seed int64, scale float64) *Benchmark, error) {
	switch name {
	case "TPC-B", "tpcb":
		return NewTPCB, nil
	case "TPC-C", "tpcc":
		return NewTPCC, nil
	case "TPC-E", "tpce":
		return NewTPCE, nil
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q (want TPC-B, TPC-C, or TPC-E)", name)
}

// All returns the three standard benchmarks at the given scale, in paper
// order.
func All(seed int64, scale float64) []*Benchmark {
	return []*Benchmark{NewTPCB(seed, scale), NewTPCC(seed, scale), NewTPCE(seed, scale)}
}

// scaled returns max(1, int(n*scale)).
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		return 1
	}
	return v
}

// mustInsert is the population-path insert; population bugs are fatal.
func mustInsert(m *storage.Manager, txn *storage.Txn, tbl *storage.Table, keys []uint64, rec []byte) storage.RID {
	rid, err := m.InsertTuple(txn, tbl, keys, rec)
	if err != nil {
		panic(fmt.Sprintf("workload: population insert into %s: %v", tbl.Name(), err))
	}
	return rid
}
