package workload

import (
	"encoding/binary"
	"math/rand"

	"addict/internal/codemap"
	"addict/internal/storage"
	"addict/internal/trace"
)

// TPC-E: the brokerage benchmark — ten transaction types, ~77% read-only,
// with TradeStatus as the most frequent at 19% of the mix (Section 2.2.1:
// "TPC-E has 10 transaction types in its mix, twice the number of TPC-C,
// and the most frequent transaction, TradeStatus, accounts for only 19%").
// The reproduction simplifies each transaction to its storage-operation
// skeleton (probes/scans/updates/inserts/deletes against the right tables)
// — which is all the memory-characterization and scheduling experiments
// observe.
const (
	tpceCustomers  = 2000
	tpceAcctsPer   = 2
	tpceSecurities = 1000
	tpceCompanies  = 500
	tpceBrokers    = 100
	tpceInitTrades = 20000
	tpceDays       = 30
	tpceWatchPer   = 10

	tpceCustRec  = 300
	tpceAcctRec  = 200
	tpceSecRec   = 220
	tpceCompRec  = 220
	tpceBrokRec  = 100
	tpceTradeRec = 210
	tpceHoldRec  = 120
	tpceLTRec    = 80
	tpceDMRec    = 80
	tpceWIRec    = 40
	tpceSettRec  = 100
)

func acctTradeKey(acct, t int) uint64 { return uint64(acct)<<28 | uint64(t) }
func holdKey(acct, sec int) uint64    { return uint64(acct)<<12 | uint64(sec) }
func dmKey(sec, day int) uint64       { return uint64(sec)<<8 | uint64(day) }
func watchKey(cust, sec int) uint64   { return uint64(cust)<<12 | uint64(sec) }

type tpce struct {
	m   *storage.Manager
	rng *rand.Rand

	customer, account, broker, security, company  *storage.Table
	lastTrade, trade, holding, dailyMarket, watch *storage.Table
	settlement                                    *storage.Table
	nCust, nAcct, nSec, nTrades                   int
	nextTrade                                     int
	recentTrades                                  []recentTrade
}

type recentTrade struct{ id, acct, sec int }

// NewTPCE builds and populates a TPC-E database at the given scale
// (scale 1.0 ≈ 2000 customers, 20000 initial trades).
func NewTPCE(seed int64, scale float64) *Benchmark {
	rng := rand.New(rand.NewSource(seed))
	m := storage.NewManager(trace.Discard{}, codemap.NewLayout())
	w := &tpce{
		m:       m,
		rng:     rng,
		nCust:   scaled(tpceCustomers, scale),
		nSec:    scaled(tpceSecurities, scale),
		nTrades: scaled(tpceInitTrades, scale),
	}
	w.nAcct = w.nCust * tpceAcctsPer

	w.customer = m.CreateTable("e_customer")
	w.customer.CreateIndex("e_customer_pk")
	w.account = m.CreateTable("e_account")
	w.account.CreateIndex("e_account_pk")
	w.broker = m.CreateTable("e_broker")
	w.broker.CreateIndex("e_broker_pk")
	w.security = m.CreateTable("e_security")
	w.security.CreateIndex("e_security_pk")
	w.company = m.CreateTable("e_company")
	w.company.CreateIndex("e_company_pk")
	w.lastTrade = m.CreateTable("e_last_trade")
	w.lastTrade.CreateIndex("e_last_trade_pk")
	w.trade = m.CreateTable("e_trade")
	w.trade.CreateIndex("e_trade_pk")
	w.trade.CreateIndex("e_trade_acct") // (acct, trade) secondary
	w.holding = m.CreateTable("e_holding")
	w.holding.CreateIndex("e_holding_pk")
	w.dailyMarket = m.CreateTable("e_daily_market")
	w.dailyMarket.CreateIndex("e_daily_market_pk")
	w.watch = m.CreateTable("e_watch_item")
	w.watch.CreateIndex("e_watch_item_pk")
	w.settlement = m.CreateTable("e_settlement") // no index

	w.populate()

	return newBenchmark("TPC-E", m, rng, []TxnSpec{
		{Name: "TradeStatus", Weight: 0.19, Run: w.tradeStatus},
		{Name: "MarketWatch", Weight: 0.18, Run: w.marketWatch},
		{Name: "SecurityDetail", Weight: 0.14, Run: w.securityDetail},
		{Name: "CustomerPosition", Weight: 0.13, Run: w.customerPosition},
		{Name: "TradeOrder", Weight: 0.101, Run: w.tradeOrder},
		{Name: "TradeResult", Weight: 0.10, Run: w.tradeResult},
		{Name: "TradeLookup", Weight: 0.08, Run: w.tradeLookup},
		{Name: "BrokerVolume", Weight: 0.049, Run: w.brokerVolume},
		{Name: "TradeUpdate", Weight: 0.02, Run: w.tradeUpdate},
		{Name: "MarketFeed", Weight: 0.01, Run: w.marketFeed},
	})
}

func (w *tpce) populate() {
	m := w.m
	pop := m.Begin()
	for c := 0; c < w.nCust; c++ {
		mustInsert(m, pop, w.customer, []uint64{uint64(c)}, mkRec(tpceCustRec, uint64(c)))
		for a := 0; a < tpceAcctsPer; a++ {
			acct := c*tpceAcctsPer + a
			rec := mkRec(tpceAcctRec, uint64(acct))
			binary.LittleEndian.PutUint64(rec[8:], uint64(c))
			mustInsert(m, pop, w.account, []uint64{uint64(acct)}, rec)
		}
		for i := 0; i < tpceWatchPer; i++ {
			sec := (c*7 + i*131) % w.nSec
			mustInsert(m, pop, w.watch, []uint64{watchKey(c, sec)}, mkRec(tpceWIRec, watchKey(c, sec)))
		}
	}
	for b := 0; b < tpceBrokers; b++ {
		mustInsert(m, pop, w.broker, []uint64{uint64(b)}, mkRec(tpceBrokRec, uint64(b)))
	}
	for co := 0; co < scaled(tpceCompanies, 1); co++ {
		mustInsert(m, pop, w.company, []uint64{uint64(co)}, mkRec(tpceCompRec, uint64(co)))
	}
	for s := 0; s < w.nSec; s++ {
		rec := mkRec(tpceSecRec, uint64(s))
		binary.LittleEndian.PutUint64(rec[8:], uint64(s%tpceCompanies)) // company
		mustInsert(m, pop, w.security, []uint64{uint64(s)}, rec)
		mustInsert(m, pop, w.lastTrade, []uint64{uint64(s)}, mkRec(tpceLTRec, uint64(s)))
		for day := 0; day < tpceDays; day++ {
			mustInsert(m, pop, w.dailyMarket, []uint64{dmKey(s, day)}, mkRec(tpceDMRec, dmKey(s, day)))
		}
	}
	for t := 0; t < w.nTrades; t++ {
		acct := w.rng.Intn(w.nAcct)
		sec := w.rng.Intn(w.nSec)
		w.insertTrade(pop, t, acct, sec)
	}
	w.nextTrade = w.nTrades
	// Seed holdings: a few per account (the security stride can collide for
	// small scales, so de-duplicate keys up front).
	seen := make(map[uint64]struct{})
	for acct := 0; acct < w.nAcct; acct++ {
		for i := 0; i < 3; i++ {
			sec := (acct*13 + i*577) % w.nSec
			k := holdKey(acct, sec)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			mustInsert(m, pop, w.holding, []uint64{k}, mkRec(tpceHoldRec, k))
		}
	}
	m.Commit(pop)
}

func (w *tpce) insertTrade(txn *storage.Txn, id, acct, sec int) {
	rec := mkRec(tpceTradeRec, uint64(id))
	binary.LittleEndian.PutUint64(rec[8:], uint64(acct))
	binary.LittleEndian.PutUint64(rec[16:], uint64(sec))
	mustInsert(w.m, txn, w.trade, []uint64{uint64(id), acctTradeKey(acct, id)}, rec)
	if len(w.recentTrades) >= 512 {
		w.recentTrades = w.recentTrades[1:]
	}
	w.recentTrades = append(w.recentTrades, recentTrade{id: id, acct: acct, sec: sec})
}

// tradeStatus (19%, read-only): the customer's brokerage page — probe
// customer/account/broker, then the 20 most recent trades of the account.
func (w *tpce) tradeStatus(txn *storage.Txn) {
	m := w.m
	acct := w.rng.Intn(w.nAcct)
	_, arec, ok := m.IndexProbe(txn, w.account, w.account.Index(0), uint64(acct))
	if !ok {
		panic("tpce: account missing")
	}
	cust := binary.LittleEndian.Uint64(arec[8:])
	if _, _, ok := m.IndexProbe(txn, w.customer, w.customer.Index(0), cust); !ok {
		panic("tpce: customer missing")
	}
	m.IndexProbe(txn, w.broker, w.broker.Index(0), uint64(acct%tpceBrokers))
	m.IndexScan(txn, w.trade.Index(1), acctTradeKey(acct, 0), acctTradeKey(acct, 1<<28-1), true, true, 20)
}

// marketWatch (18%, read-only): the customer's watch list and each
// security's last trade.
func (w *tpce) marketWatch(txn *storage.Txn) {
	m := w.m
	cust := w.rng.Intn(w.nCust)
	items := m.IndexScan(txn, w.watch.Index(0), watchKey(cust, 0), watchKey(cust, 1<<12-1), true, true, 0)
	for _, it := range items {
		sec := it.Key & (1<<12 - 1)
		m.IndexProbe(txn, w.lastTrade, w.lastTrade.Index(0), sec)
	}
}

// securityDetail (14%, read-only): security master data, its company, last
// trade, and recent daily-market rows.
func (w *tpce) securityDetail(txn *storage.Txn) {
	m := w.m
	sec := w.rng.Intn(w.nSec)
	_, srec, ok := m.IndexProbe(txn, w.security, w.security.Index(0), uint64(sec))
	if !ok {
		panic("tpce: security missing")
	}
	comp := binary.LittleEndian.Uint64(srec[8:])
	m.IndexProbe(txn, w.company, w.company.Index(0), comp)
	m.IndexProbe(txn, w.lastTrade, w.lastTrade.Index(0), uint64(sec))
	m.IndexScan(txn, w.dailyMarket.Index(0), dmKey(sec, 10), dmKey(sec, 29), true, true, 0)
}

// customerPosition (13%, read-only): the customer's accounts, holdings, and
// marks-to-market.
func (w *tpce) customerPosition(txn *storage.Txn) {
	m := w.m
	cust := w.rng.Intn(w.nCust)
	if _, _, ok := m.IndexProbe(txn, w.customer, w.customer.Index(0), uint64(cust)); !ok {
		panic("tpce: customer missing")
	}
	for a := 0; a < tpceAcctsPer; a++ {
		acct := cust*tpceAcctsPer + a
		m.IndexProbe(txn, w.account, w.account.Index(0), uint64(acct))
		holds := m.IndexScan(txn, w.holding.Index(0), holdKey(acct, 0), holdKey(acct, 1<<12-1), true, true, 10)
		for _, h := range holds {
			sec := h.Key & (1<<12 - 1)
			m.IndexProbe(txn, w.lastTrade, w.lastTrade.Index(0), sec)
		}
	}
}

// tradeOrder (10.1%): place a trade — probes of account/customer/broker/
// security/last-trade, the indexed trade insert, and the account update. 1%
// of orders name an invalid security, exercising probe's not-found flag.
func (w *tpce) tradeOrder(txn *storage.Txn) {
	m := w.m
	acct := w.rng.Intn(w.nAcct)
	sec := w.rng.Intn(w.nSec)
	if w.rng.Intn(100) == 0 {
		sec = w.nSec + 3 // invalid security
	}
	arid, arec, ok := m.IndexProbe(txn, w.account, w.account.Index(0), uint64(acct))
	if !ok {
		panic("tpce: account missing")
	}
	cust := binary.LittleEndian.Uint64(arec[8:])
	m.IndexProbe(txn, w.customer, w.customer.Index(0), cust)
	m.IndexProbe(txn, w.broker, w.broker.Index(0), uint64(acct%tpceBrokers))
	if _, _, ok := m.IndexProbe(txn, w.security, w.security.Index(0), uint64(sec)); !ok {
		return // invalid security: order rejected before any write
	}
	m.IndexProbe(txn, w.lastTrade, w.lastTrade.Index(0), uint64(sec))

	id := w.nextTrade
	w.nextTrade++
	w.insertTrade(txn, id, acct, sec)
	bumpBalance(arec, 1)
	must(m.UpdateTuple(txn, w.account, arid, uint64(acct), arec))
}

// tradeResult (10%): settle a recent trade — update the trade row, update
// or create the holding (selling everything deletes it), update the
// account, and append an unindexed settlement row.
func (w *tpce) tradeResult(txn *storage.Txn) {
	m := w.m
	if len(w.recentTrades) == 0 {
		return
	}
	rt := w.recentTrades[w.rng.Intn(len(w.recentTrades))]
	trid, trec, ok := m.IndexProbe(txn, w.trade, w.trade.Index(0), uint64(rt.id))
	if !ok {
		return // already settled and pruned in a previous TradeResult
	}
	bumpBalance(trec, 2) // status → completed
	must(m.UpdateTuple(txn, w.trade, trid, uint64(rt.id), trec))

	hk := holdKey(rt.acct, rt.sec)
	hrid, hrec, ok := m.IndexProbe(txn, w.holding, w.holding.Index(0), hk)
	switch {
	case !ok:
		// New position.
		if _, err := m.InsertTuple(txn, w.holding, []uint64{hk}, mkRec(tpceHoldRec, hk)); err != nil {
			panic(err)
		}
	case w.rng.Intn(5) == 0:
		// Sold out: the holding row goes away.
		must(m.DeleteTuple(txn, w.holding, hrid, []uint64{hk}))
	default:
		bumpBalance(hrec, 10)
		must(m.UpdateTuple(txn, w.holding, hrid, hk, hrec))
	}

	arid, arec, ok := m.IndexProbe(txn, w.account, w.account.Index(0), uint64(rt.acct))
	if !ok {
		panic("tpce: account missing")
	}
	bumpBalance(arec, 100)
	must(m.UpdateTuple(txn, w.account, arid, uint64(rt.acct), arec))
	if _, err := m.InsertTuple(txn, w.settlement, nil, mkRec(tpceSettRec, uint64(rt.id))); err != nil {
		panic(err)
	}
}

// tradeLookup (8%, read-only): a page of the account's trade history plus
// detail probes of the first few.
func (w *tpce) tradeLookup(txn *storage.Txn) {
	m := w.m
	acct := w.rng.Intn(w.nAcct)
	trades := m.IndexScan(txn, w.trade.Index(1), acctTradeKey(acct, 0), acctTradeKey(acct, 1<<28-1), true, true, 20)
	for i, tr := range trades {
		if i >= 5 {
			break
		}
		m.IndexProbe(txn, w.trade, w.trade.Index(0), tr.Key&(1<<28-1))
	}
}

// tradeUpdate (2%): amend a few trades of an account.
func (w *tpce) tradeUpdate(txn *storage.Txn) {
	m := w.m
	acct := w.rng.Intn(w.nAcct)
	trades := m.IndexScan(txn, w.trade.Index(1), acctTradeKey(acct, 0), acctTradeKey(acct, 1<<28-1), true, true, 20)
	for i, tr := range trades {
		if i >= 3 {
			break
		}
		id := tr.Key & (1<<28 - 1)
		trid, trec, ok := m.IndexProbe(txn, w.trade, w.trade.Index(0), id)
		if !ok {
			continue
		}
		bumpBalance(trec, 1)
		must(m.UpdateTuple(txn, w.trade, trid, id, trec))
	}
}

// brokerVolume (4.9%, read-only): broker probe plus market aggregates over
// a handful of securities.
func (w *tpce) brokerVolume(txn *storage.Txn) {
	m := w.m
	m.IndexProbe(txn, w.broker, w.broker.Index(0), uint64(w.rng.Intn(tpceBrokers)))
	for i := 0; i < 5; i++ {
		sec := w.rng.Intn(w.nSec)
		m.IndexProbe(txn, w.security, w.security.Index(0), uint64(sec))
		m.IndexScan(txn, w.dailyMarket.Index(0), dmKey(sec, 25), dmKey(sec, 29), true, true, 0)
	}
}

// marketFeed (1%): the ticker — update last_trade for a burst of
// securities.
func (w *tpce) marketFeed(txn *storage.Txn) {
	m := w.m
	for i := 0; i < 10; i++ {
		sec := uint64(w.rng.Intn(w.nSec))
		ltrid, ltrec, ok := m.IndexProbe(txn, w.lastTrade, w.lastTrade.Index(0), sec)
		if !ok {
			panic("tpce: last_trade missing")
		}
		bumpBalance(ltrec, 1)
		must(m.UpdateTuple(txn, w.lastTrade, ltrid, sec, ltrec))
	}
}
