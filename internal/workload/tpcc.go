package workload

import (
	"encoding/binary"
	"math/rand"

	"addict/internal/codemap"
	"addict/internal/storage"
	"addict/internal/trace"
)

// TPC-C: the order-entry benchmark. Five transaction types at the spec mix
// (NewOrder 45, Payment 43, OrderStatus 4, Delivery 4, StockLevel 4).
// NewOrder inserts into indexed tables (orders carries two indexes), which
// is why its insert operation shows the paper's extra create-index-entry
// code compared to TPC-B (Section 2.2.1); Payment inserts into the
// unindexed History table, so "the instructions for creating an index entry
// are not common in the overall mix".
const (
	tpccWarehouses    = 2
	tpccDistrictsPerW = 10
	tpccCustPerDist   = 3000
	tpccItems         = 10000
	tpccInitOrders    = 30 // per district; the newest third stay undelivered

	// Record sizes follow the TPC-C row sizes (customer ~655B, stock
	// ~306B, item ~82B, order-line ~54B ...), so the data-block footprint
	// per transaction — and with it the last-level-cache pressure the
	// paper's "long-latency data misses" come from — is spec-shaped.
	tpccCustRec  = 655
	tpccStockRec = 306
	tpccItemRec  = 96
	tpccOrderRec = 64
	tpccOLineRec = 64
	tpccHistRec  = 60
	tpccWhRec    = 100
	tpccDistRec  = 100

	tpccMinLines = 3
	tpccMaxLines = 7
)

// Composite key encodings (all fields are small enough to pack into 64
// bits; keys only need to be unique and order-correct within one index).
func distKey(w, d int) uint64     { return uint64(w)<<8 | uint64(d) }
func custKey(w, d, c int) uint64  { return uint64(w)<<24 | uint64(d)<<16 | uint64(c) }
func stockKey(w, i int) uint64    { return uint64(w)<<24 | uint64(i) }
func orderKey(w, d, o int) uint64 { return uint64(w)<<40 | uint64(d)<<32 | uint64(o) }
func custOrdKey(w, d, c, o int) uint64 {
	return uint64(w)<<56 | uint64(d)<<48 | uint64(c)<<20 | uint64(o)
}
func olineKey(w, d, o, l int) uint64 {
	return uint64(w)<<56 | uint64(d)<<48 | uint64(o)<<8 | uint64(l)
}

type tpcc struct {
	m   *storage.Manager
	rng *rand.Rand

	warehouse, district, customer, item, stock *storage.Table
	orders, newOrder, orderLine, history       *storage.Table
	nCust, nItems, nW                          int
	nextOID                                    [][]int // [w][d]
	recentOrders                               [][][]recentOrder
}

type recentOrder struct{ c, o int }

// NewTPCC builds and populates a TPC-C database at the given scale
// (scale 1.0 ≈ 60k customers across 2 warehouses).
func NewTPCC(seed int64, scale float64) *Benchmark {
	rng := rand.New(rand.NewSource(seed))
	m := storage.NewManager(trace.Discard{}, codemap.NewLayout())
	w := &tpcc{
		m:      m,
		rng:    rng,
		nW:     tpccWarehouses,
		nCust:  scaled(tpccCustPerDist, scale),
		nItems: scaled(tpccItems, scale),
	}

	w.warehouse = m.CreateTable("warehouse")
	w.warehouse.CreateIndex("warehouse_pk")
	w.district = m.CreateTable("district")
	w.district.CreateIndex("district_pk")
	w.customer = m.CreateTable("customer")
	w.customer.CreateIndex("customer_pk")
	w.item = m.CreateTable("item")
	w.item.CreateIndex("item_pk")
	w.stock = m.CreateTable("stock")
	w.stock.CreateIndex("stock_pk")
	w.orders = m.CreateTable("orders")
	w.orders.CreateIndex("orders_pk")
	w.orders.CreateIndex("orders_cust") // (w,d,c,o) secondary
	w.newOrder = m.CreateTable("new_order")
	w.newOrder.CreateIndex("new_order_pk")
	w.orderLine = m.CreateTable("order_line")
	w.orderLine.CreateIndex("order_line_pk")
	w.history = m.CreateTable("history_c") // no index, per spec

	w.populate()

	return newBenchmark("TPC-C", m, rng, []TxnSpec{
		{Name: "NewOrder", Weight: 0.45, Run: w.newOrderTxn},
		{Name: "Payment", Weight: 0.43, Run: w.paymentTxn},
		{Name: "OrderStatus", Weight: 0.04, Run: w.orderStatusTxn},
		{Name: "Delivery", Weight: 0.04, Run: w.deliveryTxn},
		{Name: "StockLevel", Weight: 0.04, Run: w.stockLevelTxn},
	})
}

func (w *tpcc) populate() {
	m := w.m
	pop := m.Begin()
	w.nextOID = make([][]int, w.nW)
	w.recentOrders = make([][][]recentOrder, w.nW)
	for wh := 0; wh < w.nW; wh++ {
		mustInsert(m, pop, w.warehouse, []uint64{uint64(wh)}, mkRec(tpccWhRec, uint64(wh)))
		w.nextOID[wh] = make([]int, tpccDistrictsPerW)
		w.recentOrders[wh] = make([][]recentOrder, tpccDistrictsPerW)
		for d := 0; d < tpccDistrictsPerW; d++ {
			mustInsert(m, pop, w.district, []uint64{distKey(wh, d)}, mkRec(tpccDistRec, distKey(wh, d)))
			for c := 0; c < w.nCust; c++ {
				mustInsert(m, pop, w.customer, []uint64{custKey(wh, d, c)}, mkRec(tpccCustRec, custKey(wh, d, c)))
			}
		}
	}
	for i := 0; i < w.nItems; i++ {
		mustInsert(m, pop, w.item, []uint64{uint64(i)}, mkRec(tpccItemRec, uint64(i)))
		for wh := 0; wh < w.nW; wh++ {
			mustInsert(m, pop, w.stock, []uint64{stockKey(wh, i)}, mkRec(tpccStockRec, stockKey(wh, i)))
		}
	}
	// Initial orders: the newest third are undelivered (rows in new_order).
	for wh := 0; wh < w.nW; wh++ {
		for d := 0; d < tpccDistrictsPerW; d++ {
			for o := 0; o < tpccInitOrders; o++ {
				c := w.rng.Intn(w.nCust)
				w.insertOrder(pop, wh, d, o, c, tpccMinLines+w.rng.Intn(tpccMaxLines-tpccMinLines+1),
					o >= tpccInitOrders*2/3)
			}
			w.nextOID[wh][d] = tpccInitOrders
		}
	}
	m.Commit(pop)
}

// insertOrder writes an order row, its lines, and optionally its new_order
// row; it also remembers the order for OrderStatus targeting.
func (w *tpcc) insertOrder(txn *storage.Txn, wh, d, o, c, lines int, undelivered bool) {
	m := w.m
	orec := mkRec(tpccOrderRec, orderKey(wh, d, o))
	binary.LittleEndian.PutUint64(orec[8:], uint64(c))
	binary.LittleEndian.PutUint16(orec[16:], uint16(lines))
	mustInsert(m, txn, w.orders, []uint64{orderKey(wh, d, o), custOrdKey(wh, d, c, o)}, orec)
	if undelivered {
		mustInsert(m, txn, w.newOrder, []uint64{orderKey(wh, d, o)}, mkRec(24, orderKey(wh, d, o)))
	}
	for l := 0; l < lines; l++ {
		item := w.rng.Intn(w.nItems)
		lrec := mkRec(tpccOLineRec, olineKey(wh, d, o, l))
		binary.LittleEndian.PutUint64(lrec[8:], uint64(item))
		mustInsert(m, txn, w.orderLine, []uint64{olineKey(wh, d, o, l)}, lrec)
	}
	ro := w.recentOrders[wh][d]
	if len(ro) >= 128 {
		ro = ro[1:]
	}
	w.recentOrders[wh][d] = append(ro, recentOrder{c: c, o: o})
}

// newOrderTxn: the order-entry transaction (45% of the mix). Probes
// warehouse/district/customer, updates the district's next-order counter,
// then per line probes item and stock and updates stock, and finally inserts
// the order (two indexes), new-order, and line rows. 1% of item probes use
// an invalid item id, exercising the not-found flag path of index probe.
func (w *tpcc) newOrderTxn(txn *storage.Txn) {
	m := w.m
	wh := w.rng.Intn(w.nW)
	d := w.rng.Intn(tpccDistrictsPerW)
	c := w.rng.Intn(w.nCust)

	if _, _, ok := m.IndexProbe(txn, w.warehouse, w.warehouse.Index(0), uint64(wh)); !ok {
		panic("tpcc: warehouse missing")
	}
	drid, drec, ok := m.IndexProbe(txn, w.district, w.district.Index(0), distKey(wh, d))
	if !ok {
		panic("tpcc: district missing")
	}
	bumpBalance(drec, 1) // next_o_id++
	must(m.UpdateTuple(txn, w.district, drid, distKey(wh, d), drec))
	if _, _, ok := m.IndexProbe(txn, w.customer, w.customer.Index(0), custKey(wh, d, c)); !ok {
		panic("tpcc: customer missing")
	}

	lines := tpccMinLines + w.rng.Intn(tpccMaxLines-tpccMinLines+1)
	for l := 0; l < lines; l++ {
		item := w.rng.Intn(w.nItems)
		if w.rng.Intn(100) == 0 {
			item = w.nItems + 17 // invalid item: probe takes the miss path
		}
		if _, _, ok := m.IndexProbe(txn, w.item, w.item.Index(0), uint64(item)); !ok {
			continue // spec: unused item number → line skipped
		}
		srid, srec, ok := m.IndexProbe(txn, w.stock, w.stock.Index(0), stockKey(wh, item))
		if !ok {
			panic("tpcc: stock missing")
		}
		bumpBalance(srec, ^uint64(0)) // quantity--
		must(m.UpdateTuple(txn, w.stock, srid, stockKey(wh, item), srec))
	}

	o := w.nextOID[wh][d]
	w.nextOID[wh][d]++
	w.insertOrder(txn, wh, d, o, c, lines, true)
}

// paymentTxn (43%): probe+update warehouse, district, customer; insert an
// unindexed history row.
func (w *tpcc) paymentTxn(txn *storage.Txn) {
	m := w.m
	wh := w.rng.Intn(w.nW)
	d := w.rng.Intn(tpccDistrictsPerW)
	c := w.rng.Intn(w.nCust)
	amount := uint64(1 + w.rng.Intn(5000))

	wrid, wrec, ok := m.IndexProbe(txn, w.warehouse, w.warehouse.Index(0), uint64(wh))
	if !ok {
		panic("tpcc: warehouse missing")
	}
	bumpBalance(wrec, amount)
	must(m.UpdateTuple(txn, w.warehouse, wrid, uint64(wh), wrec))

	drid, drec, ok := m.IndexProbe(txn, w.district, w.district.Index(0), distKey(wh, d))
	if !ok {
		panic("tpcc: district missing")
	}
	bumpBalance(drec, amount)
	must(m.UpdateTuple(txn, w.district, drid, distKey(wh, d), drec))

	crid, crec, ok := m.IndexProbe(txn, w.customer, w.customer.Index(0), custKey(wh, d, c))
	if !ok {
		panic("tpcc: customer missing")
	}
	bumpBalance(crec, amount)
	must(m.UpdateTuple(txn, w.customer, crid, custKey(wh, d, c), crec))

	hist := mkRec(tpccHistRec, custKey(wh, d, c))
	if _, err := m.InsertTuple(txn, w.history, nil, hist); err != nil {
		panic(err)
	}
}

// orderStatusTxn (4%, read-only): probe the customer, find their most
// recent order through the (w,d,c,o) secondary index, and scan its lines.
func (w *tpcc) orderStatusTxn(txn *storage.Txn) {
	m := w.m
	wh := w.rng.Intn(w.nW)
	d := w.rng.Intn(tpccDistrictsPerW)
	ro := w.recentOrders[wh][d]
	if len(ro) == 0 {
		return
	}
	target := ro[w.rng.Intn(len(ro))]
	c := target.c

	if _, _, ok := m.IndexProbe(txn, w.customer, w.customer.Index(0), custKey(wh, d, c)); !ok {
		panic("tpcc: customer missing")
	}
	// Latest order of this customer via the secondary index.
	res := m.IndexScan(txn, w.orders.Index(1), custOrdKey(wh, d, c, 0), custOrdKey(wh, d, c, 1<<20-1), true, true, 0)
	if len(res) == 0 {
		return
	}
	o := int(res[len(res)-1].Key & (1<<20 - 1))
	m.IndexScan(txn, w.orderLine.Index(0), olineKey(wh, d, o, 0), olineKey(wh, d, o, 255), true, true, 0)
}

// deliveryTxn (4%): for every district, pop the oldest undelivered order
// from new_order, mark the order delivered, stamp its lines, and credit the
// customer. The spec's deferred-delivery batch is what makes this the mix's
// largest transaction.
func (w *tpcc) deliveryTxn(txn *storage.Txn) {
	m := w.m
	wh := w.rng.Intn(w.nW)
	for d := 0; d < tpccDistrictsPerW; d++ {
		no := m.IndexScan(txn, w.newOrder.Index(0), orderKey(wh, d, 0), orderKey(wh, d, 1<<24), true, true, 1)
		if len(no) == 0 {
			continue // district fully delivered
		}
		noRID := no[0].RID
		oKey := no[0].Key
		must(m.DeleteTuple(txn, w.newOrder, noRID, []uint64{oKey}))

		orid, orec, ok := m.IndexProbe(txn, w.orders, w.orders.Index(0), oKey)
		if !ok {
			panic("tpcc: delivered order missing")
		}
		c := int(binary.LittleEndian.Uint64(orec[8:]))
		lines := int(binary.LittleEndian.Uint16(orec[16:]))
		bumpBalance(orec, 7) // carrier id
		must(m.UpdateTuple(txn, w.orders, orid, oKey, orec))

		o := int(oKey & 0xffff_ffff)
		ols := m.IndexScan(txn, w.orderLine.Index(0), olineKey(wh, d, o, 0), olineKey(wh, d, o, 255), true, true, 0)
		if len(ols) != lines {
			panic("tpcc: order line count mismatch")
		}
		for _, ol := range ols {
			lrec := append([]byte(nil), ol.Rec...)
			bumpBalance(lrec, 1) // delivery date
			must(m.UpdateTuple(txn, w.orderLine, ol.RID, ol.Key, lrec))
		}

		crid, crec, ok := m.IndexProbe(txn, w.customer, w.customer.Index(0), custKey(wh, d, c))
		if !ok {
			panic("tpcc: customer missing")
		}
		bumpBalance(crec, 100)
		must(m.UpdateTuple(txn, w.customer, crid, custKey(wh, d, c), crec))
	}
}

// stockLevelTxn (4%, read-only): read the district's recent order lines and
// probe the stock row of each distinct item.
func (w *tpcc) stockLevelTxn(txn *storage.Txn) {
	m := w.m
	wh := w.rng.Intn(w.nW)
	d := w.rng.Intn(tpccDistrictsPerW)
	if _, _, ok := m.IndexProbe(txn, w.district, w.district.Index(0), distKey(wh, d)); !ok {
		panic("tpcc: district missing")
	}
	cur := w.nextOID[wh][d]
	lo := cur - 20
	if lo < 0 {
		lo = 0
	}
	ols := m.IndexScan(txn, w.orderLine.Index(0), olineKey(wh, d, lo, 0), olineKey(wh, d, cur, 255), true, true, 100)
	seen := make(map[uint64]struct{}, len(ols))
	for _, ol := range ols {
		item := binary.LittleEndian.Uint64(ol.Rec[8:])
		if _, dup := seen[item]; dup {
			continue
		}
		seen[item] = struct{}{}
		if len(seen) > 20 {
			break
		}
		m.IndexProbe(txn, w.stock, w.stock.Index(0), stockKey(wh, int(item)))
	}
}
