package workload

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"addict/internal/trace"
)

// The workload-name registry: ONE funnel every by-name consumer — the
// sweep grid, the bench harness, cmd/tracegen, and the addict facade —
// resolves workload names through. The three TPC benchmarks are built in;
// other name spaces (the "synth:" encoded names of workload/synth, future
// backends) register a Source, typically from an init function, and are
// claimed by prefix. Before the registry, sweep, bench, and tracegen each
// re-implemented the TPC-versus-synth dispatch; a new backend had to patch
// all three.

// Resolved is a workload name resolved to its generators. Both functions
// are pure in their arguments, so a Resolved handle is safe to share and
// reuse.
type Resolved struct {
	// Build compiles one populated benchmark instance — the single-
	// instance entry point (facade NewWorkload, serial generation).
	Build func(seed int64, scale float64) (*Benchmark, error)
	// GenerateSharded generates traces [baseShard*shardSize, ...+n) under
	// the deterministic shard recipe: byte-identical for every workers
	// value, cancellable between shards via ctx.
	GenerateSharded func(ctx context.Context, seed int64, scale float64, baseShard, n, shardSize, workers int) (*trace.Set, error)
}

// Source is a pluggable workload-name backend.
type Source struct {
	// Name identifies the backend in error listings ("synth").
	Name string
	// Owns reports whether the backend claims the name (typically a
	// prefix test). A claimed name that fails to resolve is an error, not
	// a fall-through to other backends.
	Owns func(name string) bool
	// Resolve validates the claimed name and returns its generators.
	Resolve func(name string) (Resolved, error)
}

var registry struct {
	mu      sync.RWMutex
	sources []Source
}

// Register adds a workload-name backend. It is typically called from a
// backend package's init; later registrations are consulted after earlier
// ones.
func Register(s Source) {
	if s.Owns == nil || s.Resolve == nil {
		panic("workload: Register with nil Owns or Resolve")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.sources = append(registry.sources, s)
}

// Resolve looks a workload name up in the registry: the built-in TPC
// benchmarks ("TPC-B", "TPC-C", "TPC-E"), then every registered backend in
// registration order. Unknown names report the known name spaces.
func Resolve(name string) (Resolved, error) {
	if build, err := Builder(name); err == nil {
		return Resolved{
			Build: func(seed int64, scale float64) (*Benchmark, error) {
				return build(seed, scale), nil
			},
			GenerateSharded: func(ctx context.Context, seed int64, scale float64, baseShard, n, shardSize, workers int) (*trace.Set, error) {
				return GenerateSetShardedWithCtx(ctx, func(shard int) *Benchmark {
					return build(ShardSeed(seed, shard), scale)
				}, baseShard, n, shardSize, workers)
			},
		}, nil
	}
	registry.mu.RLock()
	sources := registry.sources
	registry.mu.RUnlock()
	for _, s := range sources {
		if s.Owns(name) {
			return s.Resolve(name)
		}
	}
	return Resolved{}, fmt.Errorf("workload: unknown workload %q (want TPC-B, TPC-C, TPC-E%s)",
		name, backendHint(sources))
}

// Validate reports whether the registry resolves the name, without building
// anything.
func Validate(name string) error {
	_, err := Resolve(name)
	return err
}

// backendHint lists the registered backend names for error messages.
func backendHint(sources []Source) string {
	if len(sources) == 0 {
		return ""
	}
	names := make([]string, 0, len(sources))
	for _, s := range sources {
		if s.Name != "" {
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	hint := ""
	for _, n := range names {
		hint += ", or a " + n + " name"
	}
	return hint
}
