package workload

import (
	"testing"

	"addict/internal/trace"
)

// Small scales keep test populations fast; determinism is scale-independent.
const testScale = 0.02

func TestTPCBPopulation(t *testing.T) {
	b := NewTPCB(1, testScale)
	m := b.Manager()
	if got := m.MustTable("account").Rows(); got == 0 {
		t.Fatal("no accounts populated")
	}
	if got := m.MustTable("history").Rows(); got != 0 {
		t.Errorf("history has %d rows before any transaction", got)
	}
	if len(m.MustTable("history").Indexes()) != 0 {
		t.Error("history must have no index (TPC-B spec)")
	}
	if b.Name() != "TPC-B" {
		t.Errorf("Name = %q", b.Name())
	}
	if names := b.TypeNames(); len(names) != 1 || names[0] != "AccountUpdate" {
		t.Errorf("TypeNames = %v", names)
	}
}

func TestTPCCPopulation(t *testing.T) {
	b := NewTPCC(1, testScale)
	m := b.Manager()
	for _, tbl := range []string{"warehouse", "district", "customer", "item", "stock", "orders", "new_order", "order_line"} {
		if m.MustTable(tbl).Rows() == 0 {
			t.Errorf("table %s empty after population", tbl)
		}
	}
	if len(m.MustTable("orders").Indexes()) != 2 {
		t.Error("orders must carry two indexes (pk + customer)")
	}
	if len(m.MustTable("history_c").Indexes()) != 0 {
		t.Error("TPC-C history must have no index")
	}
}

func TestTPCEPopulation(t *testing.T) {
	b := NewTPCE(1, testScale)
	m := b.Manager()
	for _, tbl := range []string{"e_customer", "e_account", "e_security", "e_trade", "e_holding", "e_daily_market", "e_watch_item"} {
		if m.MustTable(tbl).Rows() == 0 {
			t.Errorf("table %s empty after population", tbl)
		}
	}
	if len(m.MustTable("e_trade").Indexes()) != 2 {
		t.Error("trade must carry two indexes")
	}
}

func TestMixRatios(t *testing.T) {
	b := NewTPCC(7, testScale)
	counts := make(map[string]int)
	s := GenerateSet(b, 1500)
	for _, tr := range s.Traces {
		counts[tr.TypeName]++
	}
	frac := func(name string) float64 { return float64(counts[name]) / 1500 }
	checks := map[string][2]float64{
		"NewOrder":    {0.40, 0.50},
		"Payment":     {0.38, 0.48},
		"OrderStatus": {0.02, 0.07},
		"Delivery":    {0.02, 0.07},
		"StockLevel":  {0.02, 0.07},
	}
	for name, bounds := range checks {
		if f := frac(name); f < bounds[0] || f > bounds[1] {
			t.Errorf("%s fraction = %.3f, want within [%.2f,%.2f]", name, f, bounds[0], bounds[1])
		}
	}
}

func TestTPCEMixReadOnlyShare(t *testing.T) {
	b := NewTPCE(7, testScale)
	s := GenerateSet(b, 1000)
	counts := make(map[string]int)
	for _, tr := range s.Traces {
		counts[tr.TypeName]++
	}
	// "almost 80% of the TPC-E mix is read-only" (Section 2.2.1).
	ro := counts["TradeStatus"] + counts["MarketWatch"] + counts["SecurityDetail"] +
		counts["CustomerPosition"] + counts["TradeLookup"] + counts["BrokerVolume"]
	if f := float64(ro) / 1000; f < 0.70 || f > 0.85 {
		t.Errorf("read-only fraction = %.3f, want ~0.77", f)
	}
	if f := float64(counts["TradeStatus"]) / 1000; f < 0.14 || f > 0.24 {
		t.Errorf("TradeStatus fraction = %.3f, want ~0.19", f)
	}
	if len(counts) != 10 {
		t.Errorf("saw %d transaction types in 1000 txns, want 10", len(counts))
	}
}

func TestAllTracesValidate(t *testing.T) {
	for _, b := range All(3, testScale) {
		s := GenerateSet(b, 120)
		for i, tr := range s.Traces {
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s trace %d (%s): %v", b.Name(), i, tr.TypeName, err)
			}
			if tr.InstrBlocks() == 0 {
				t.Fatalf("%s trace %d has no instruction events", b.Name(), i)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	s1 := GenerateSet(NewTPCC(42, testScale), 60)
	s2 := GenerateSet(NewTPCC(42, testScale), 60)
	if len(s1.Traces) != len(s2.Traces) {
		t.Fatal("trace counts differ")
	}
	for i := range s1.Traces {
		a, b := s1.Traces[i], s2.Traces[i]
		if a.Type != b.Type || len(a.Events) != len(b.Events) {
			t.Fatalf("trace %d differs in shape: %d/%d events", i, len(a.Events), len(b.Events))
		}
		for j := range a.Events {
			if a.Events[j] != b.Events[j] {
				t.Fatalf("trace %d event %d differs: %+v vs %+v", i, j, a.Events[j], b.Events[j])
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	s1 := GenerateSet(NewTPCB(1, testScale), 20)
	s2 := GenerateSet(NewTPCB(2, testScale), 20)
	same := true
	for i := range s1.Traces {
		if len(s1.Traces[i].Events) != len(s2.Traces[i].Events) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identically-shaped traces (suspicious)")
	}
}

func TestOpsByTransactionType(t *testing.T) {
	b := NewTPCC(5, testScale)
	s := GenerateSet(b, 400)
	opsOf := func(name string) map[trace.OpType]int {
		m := make(map[trace.OpType]int)
		for _, tr := range s.Traces {
			if tr.TypeName != name {
				continue
			}
			for _, o := range tr.Ops() {
				m[o.Op]++
			}
		}
		return m
	}
	no := opsOf("NewOrder")
	if no[trace.OpInsertTuple] == 0 || no[trace.OpIndexProbe] == 0 || no[trace.OpUpdateTuple] == 0 {
		t.Errorf("NewOrder ops missing kinds: %v", no)
	}
	pay := opsOf("Payment")
	if pay[trace.OpInsertTuple] == 0 || pay[trace.OpUpdateTuple] == 0 {
		t.Errorf("Payment ops missing kinds: %v", pay)
	}
	if pay[trace.OpIndexScan] != 0 {
		t.Errorf("Payment should not scan: %v", pay)
	}
	os := opsOf("OrderStatus")
	if os[trace.OpUpdateTuple] != 0 || os[trace.OpInsertTuple] != 0 || os[trace.OpDeleteTuple] != 0 {
		t.Errorf("OrderStatus must be read-only: %v", os)
	}
	del := opsOf("Delivery")
	if del[trace.OpDeleteTuple] == 0 {
		t.Errorf("Delivery performed no deletes: %v", del)
	}
}

// TestInstructionVsDataOverlap is the core Section 2 sanity check at
// workload level: same-type transactions must overlap heavily in
// instruction blocks and barely in data blocks.
func TestInstructionVsDataOverlap(t *testing.T) {
	b := NewTPCB(11, 0.2) // larger scale so data addresses spread
	s := GenerateSet(b, 60)
	instrCount := make(map[uint64]int)
	dataCount := make(map[uint64]int)
	for _, tr := range s.Traces {
		instr, data := tr.Footprint()
		for a := range instr {
			instrCount[a]++
		}
		for a := range data {
			dataCount[a]++
		}
	}
	share := func(m map[uint64]int, thresh int) float64 {
		common := 0
		for _, n := range m {
			if n >= thresh {
				common++
			}
		}
		return float64(common) / float64(len(m))
	}
	// Instruction blocks present in ≥90% of instances should dominate the
	// footprint; data blocks present in ≥90% should be a sliver.
	iShare := share(instrCount, 54)
	dShare := share(dataCount, 54)
	if iShare < 0.5 {
		t.Errorf("instruction blocks common to >=90%% of AccountUpdates = %.2f of footprint, want > 0.5", iShare)
	}
	if dShare > 0.15 {
		t.Errorf("data blocks common to >=90%% of AccountUpdates = %.2f of footprint, want < 0.15", dShare)
	}
	if iShare <= dShare {
		t.Errorf("instruction overlap (%.2f) must exceed data overlap (%.2f)", iShare, dShare)
	}
}

func TestStreamMatchesGenerateSet(t *testing.T) {
	var streamed []int
	Stream(NewTPCB(9, testScale), 15, func(i int, tr *trace.Trace) {
		streamed = append(streamed, len(tr.Events))
	})
	s := GenerateSet(NewTPCB(9, testScale), 15)
	if len(streamed) != len(s.Traces) {
		t.Fatal("Stream count mismatch")
	}
	for i := range streamed {
		if streamed[i] != len(s.Traces[i].Events) {
			t.Errorf("trace %d: stream %d events vs set %d", i, streamed[i], len(s.Traces[i].Events))
		}
	}
}

func TestBuilder(t *testing.T) {
	for _, name := range []string{"TPC-B", "tpcc", "TPC-E"} {
		f, err := Builder(name)
		if err != nil || f == nil {
			t.Errorf("Builder(%q) failed: %v", name, err)
		}
	}
	if _, err := Builder("TPC-Z"); err == nil {
		t.Error("Builder accepted unknown benchmark")
	}
}

func TestTypeByName(t *testing.T) {
	b := NewTPCC(1, testScale)
	tt, ok := b.TypeByName("Payment")
	if !ok || b.TypeNames()[tt] != "Payment" {
		t.Errorf("TypeByName(Payment) = %d, %v", tt, ok)
	}
	if _, ok := b.TypeByName("NoSuch"); ok {
		t.Error("TypeByName of unknown name succeeded")
	}
}
