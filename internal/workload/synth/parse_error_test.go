package synth

import (
	"strings"
	"testing"
)

// TestParseNameErrorText pins the error text of every malformed-encoding
// class: a near-miss preset must name the nearest preset (typos are the
// common failure on the serving path, where the text travels to a remote
// client as the whole diagnosis), and each override failure must say which
// override and why.
func TestParseNameErrorText(t *testing.T) {
	cases := []struct {
		name string
		want string // substring of the error
	}{
		// Typos within edit distance: suggest the intended preset.
		{"synth:zipf-hot-rm", `did you mean "zipf-hot-rw"`},
		{"synth:unifrom-ro", `did you mean "uniform-ro"`},
		{"synth:hotset-wrte", `did you mean "hotset-write"`},
		{"synth:long-tx", `did you mean "long-txn"`},
		{"synth:phase-shitf", `did you mean "phase-shift"`},
		// Nothing plausibly close: list the presets, no guess.
		{"synth:totally-different", "have hotset-write, long-txn, phase-shift, uniform-ro, zipf-hot-rw"},
		{"synth:", "unknown preset"},
		// Override failures name the override and the reason.
		{"synth:uniform-ro+z", "empty override"},
		{"synth:uniform-ro+w0.2+w0.5", "duplicate w override"},
		{"synth:uniform-ro+z0.5+z0.9", "duplicate z override"},
		{"synth:uniform-ro+zabc", "bad theta"},
		{"synth:uniform-ro+wxyz", "bad write fraction"},
		{"synth:uniform-ro+hx", "bad hot-set size"},
		{"synth:uniform-ro+q3", "unknown override"},
		{"synth:uniform-ro+z0.9+h8", "z and h overrides are mutually exclusive"},
	}
	for _, tc := range cases {
		_, err := ParseName(tc.name)
		if err == nil {
			t.Errorf("ParseName(%q) accepted, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseName(%q) = %q, want it to contain %q", tc.name, err.Error(), tc.want)
		}
	}
}

// TestNearestPresetCutoff: the suggester never reaches across more than a
// third of the name — wildly wrong names get the listing, not a guess.
func TestNearestPresetCutoff(t *testing.T) {
	if got := nearestPreset("zipf-hot-rw"); got != "zipf-hot-rw" {
		t.Errorf("exact name: got %q", got)
	}
	if got := nearestPreset("zipf-hot-rm"); got != "zipf-hot-rw" {
		t.Errorf("one-edit typo: got %q", got)
	}
	if got := nearestPreset("abcdefgh"); got != "" {
		t.Errorf("unrelated name suggested %q, want no suggestion", got)
	}
	if got := nearestPreset(""); got != "" {
		t.Errorf("empty name suggested %q, want no suggestion", got)
	}
}
