package synth

import (
	"bytes"
	"testing"

	"addict/internal/trace"
	"addict/internal/workload"
)

// encode serializes a set so identity checks compare actual bytes, not
// just digests — mirroring the sweep byte-identity contract.
func encode(t *testing.T, s *trace.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSynthWorkerCountByteIdentity is the subsystem's headline determinism
// guarantee (mirroring TestSweepWorkerCountByteIdentity): sharded
// generation of every preset — including the multi-phase one — must be
// bit-for-bit identical for every worker count.
func TestSynthWorkerCountByteIdentity(t *testing.T) {
	for _, name := range Presets() {
		spec, _ := Preset(name)
		ref, err := GenerateSetSharded(spec, 9, 0.02, 0, 40, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ref.Traces) != 40 {
			t.Fatalf("%s: got %d traces, want 40", name, len(ref.Traces))
		}
		want := encode(t, ref)
		for _, workers := range []int{2, 3, 8} {
			s, err := GenerateSetSharded(spec, 9, 0.02, 0, 40, 16, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !bytes.Equal(encode(t, s), want) {
				t.Errorf("%s: output with %d workers diverges from serial", name, workers)
			}
		}
	}
}

// TestSynthShardedWindowsDisjoint: the profiling and evaluation shard
// windows of a synthetic workload must differ, like the TPC path's.
func TestSynthShardedWindowsDisjoint(t *testing.T) {
	spec, _ := Preset("zipf-hot-rw")
	a, err := GenerateSetSharded(spec, 9, 0.02, 0, 24, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSetSharded(spec, 9, 0.02, workload.NumShards(24, 8), 24, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == b.Digest() {
		t.Error("profiling and evaluation windows produced identical synth sets")
	}
	if a.Workload != spec.Name || len(a.TypeNames) == 0 {
		t.Errorf("merged synth set lost metadata: workload %q, %d type names", a.Workload, len(a.TypeNames))
	}
}

// TestSynthPhasePositionIndependentOfSharding: a multi-phase schedule is
// keyed by absolute trace index, so the same global window must carry the
// same phase behavior whether it was generated in one shard or many. The
// phase flip is observable through the op mix: phase A is read-mostly,
// phase B write-heavy.
func TestSynthPhasePositionIndependentOfSharding(t *testing.T) {
	spec, _ := Preset("phase-shift")
	big, err := GenerateSetSharded(spec, 4, 0.02, 0, 64, 64, 1) // one shard
	if err != nil {
		t.Fatal(err)
	}
	small, err := GenerateSetSharded(spec, 4, 0.02, 0, 64, 16, 4) // four shards
	if err != nil {
		t.Fatal(err)
	}
	// Different shard sizes give different per-shard databases and rng
	// streams, so traces differ — but the *phase* at each index must match:
	// compare per-index write-op presence profiles in aggregate windows.
	writes := func(s *trace.Set, lo, hi int) int {
		n := 0
		for _, tr := range s.Traces[lo:hi] {
			for _, op := range tr.Ops() {
				if op.Op == trace.OpUpdateTuple || op.Op == trace.OpInsertTuple {
					n++
				}
			}
		}
		return n
	}
	// Indexes [0, 64) sit inside phase A (first 192 traces): read-mostly
	// under both shardings.
	bigW, smallW := writes(big, 0, 64), writes(small, 0, 64)
	bigOps, smallOps := 0, 0
	for _, tr := range big.Traces {
		bigOps += len(tr.Ops())
	}
	for _, tr := range small.Traces {
		smallOps += len(tr.Ops())
	}
	if f := float64(bigW) / float64(bigOps); f > 0.25 {
		t.Errorf("single-shard phase-A write share %.2f, want read-mostly (< 0.25)", f)
	}
	if f := float64(smallW) / float64(smallOps); f > 0.25 {
		t.Errorf("four-shard phase-A write share %.2f, want read-mostly (< 0.25)", f)
	}
}

// TestSynthPhaseShiftObservable: the write share must actually flip
// between the two phases of the phase-shift preset within one long shard.
func TestSynthPhaseShiftObservable(t *testing.T) {
	spec, _ := Preset("phase-shift")
	b, err := New(spec, 4, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	s := workload.GenerateSet(b, 384) // one full period from index 0
	share := func(lo, hi int) float64 {
		w, n := 0, 0
		for _, tr := range s.Traces[lo:hi] {
			for _, op := range tr.Ops() {
				n++
				if op.Op == trace.OpUpdateTuple || op.Op == trace.OpInsertTuple {
					w++
				}
			}
		}
		return float64(w) / float64(n)
	}
	a, bshare := share(0, 192), share(192, 384)
	if bshare < a+0.2 {
		t.Errorf("phase write shares %.2f -> %.2f: no observable shift", a, bshare)
	}
}
