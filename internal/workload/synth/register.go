package synth

import (
	"context"

	"addict/internal/trace"
	"addict/internal/workload"
)

// The synthetic-workload backend registers its encoded name space
// ("synth:<preset>[+z<theta>][+w<frac>][+h<keys>]") with the workload-name
// registry, so every by-name consumer (sweep grids, bench configs,
// cmd/tracegen, the facade) resolves synthetic names through the same
// funnel as the TPC benchmarks. Importing this package is what plugs the
// name space in.
func init() {
	workload.Register(workload.Source{
		Name: "synth:",
		Owns: IsName,
		Resolve: func(name string) (workload.Resolved, error) {
			spec, err := ParseName(name)
			if err != nil {
				return workload.Resolved{}, err
			}
			return workload.Resolved{
				Build: func(seed int64, scale float64) (*workload.Benchmark, error) {
					return New(spec, seed, scale)
				},
				GenerateSharded: func(ctx context.Context, seed int64, scale float64, baseShard, n, shardSize, workers int) (*trace.Set, error) {
					return GenerateSetShardedCtx(ctx, spec, seed, scale, baseShard, n, shardSize, workers)
				},
			}, nil
		},
	})
}
