package synth

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"addict/internal/trace"
	"addict/internal/workload"
)

// newTestRand returns a seeded rng for distribution tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// tiny returns a spec small enough for fast tests.
func tiny() Spec {
	return Spec{
		Name:   "synth:test",
		Tables: 2, Rows: 400, TxnTypes: 3, ReadOnlyTypes: 1,
		OpsMin: 2, OpsMax: 6,
		Skew:      Skew{Dist: DistZipfian, Theta: 0.9},
		WriteFrac: 0.4, InsertFrac: 0.1, ScanFrac: 0.1,
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Tables: -1},
		{Rows: 1},
		{RecBytes: 8},
		{TxnTypes: 2, ReadOnlyTypes: 3},
		{OpsMin: 5, OpsMax: 2},
		{WriteFrac: 0.7, InsertFrac: 0.4},
		{WriteFrac: -0.1},
		{Skew: Skew{Dist: "pareto"}},
		{Skew: Skew{Dist: DistZipfian, Theta: 0}},
		{Skew: Skew{Dist: DistZipfian, Theta: 1.5}},
		{Skew: Skew{Dist: DistHotSet}},
		{Skew: Skew{Dist: DistHotSet, HotKeys: 4, HotProb: 1.2}},
		{Skew: Skew{Dist: DistZipfian, Theta: math.NaN()}},
		{Skew: Skew{Dist: DistHotSet, HotKeys: 4, HotProb: math.NaN()}},
		{WriteFrac: math.NaN()},
		{Phases: []Phase{{Traces: 5, WriteFrac: floatPtr(math.NaN())}}},
		{Phases: []Phase{{Traces: 0}}},
		{Phases: []Phase{{Traces: 10, Skew: &Skew{Dist: "nope"}}}},
		{WriteFrac: 0.2, ScanFrac: 0.5, Phases: []Phase{{Traces: 10, WriteFrac: floatPtr(0.6)}}},
	}
	for i, s := range bad {
		if err := s.withDefaults().Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	if err := (Spec{}).withDefaults().Validate(); err != nil {
		t.Errorf("zero spec (all defaults) rejected: %v", err)
	}
	if err := tiny().Validate(); err != nil {
		t.Errorf("tiny spec rejected: %v", err)
	}
}

// TestOpsDefaultsIndependent: either ops bound may be set alone; the other
// takes a valid default.
func TestOpsDefaultsIndependent(t *testing.T) {
	cases := []struct {
		in       Spec
		min, max int
	}{
		{Spec{}, 4, 12},
		{Spec{OpsMin: 7}, 7, 7},
		{Spec{OpsMax: 8}, 4, 8},
		{Spec{OpsMax: 2}, 2, 2}, // default lower bound clamps to the range
		{Spec{OpsMin: 3, OpsMax: 9}, 3, 9},
	}
	for _, c := range cases {
		got := c.in.withDefaults()
		if got.OpsMin != c.min || got.OpsMax != c.max {
			t.Errorf("withDefaults(%+v) ops = [%d, %d], want [%d, %d]",
				c.in, got.OpsMin, got.OpsMax, c.min, c.max)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("defaulted spec %+v invalid: %v", got, err)
		}
	}
}

func TestNewGeneratesValidTraces(t *testing.T) {
	b, err := New(tiny(), 7, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "synth:test" {
		t.Errorf("Name = %q", b.Name())
	}
	if names := b.TypeNames(); len(names) != 3 || names[0] != "Synth0ro" || names[1] != "Synth1rw" {
		t.Errorf("TypeNames = %v", names)
	}
	s := workload.GenerateSet(b, 80)
	types := map[string]int{}
	for i, tr := range s.Traces {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if tr.InstrBlocks() == 0 {
			t.Fatalf("trace %d has no instructions", i)
		}
		types[tr.TypeName]++
	}
	if len(types) != 3 {
		t.Errorf("saw %d types in 80 txns, want 3: %v", len(types), types)
	}
}

// TestReadOnlyTypesNeverWrite: ops of read-only types must stay probes and
// scans even under a write-heavy mix.
func TestReadOnlyTypesNeverWrite(t *testing.T) {
	spec := tiny()
	spec.WriteFrac, spec.InsertFrac = 0.8, 0.1
	b, err := New(spec, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s := workload.GenerateSet(b, 120)
	for i, tr := range s.Traces {
		if tr.TypeName != "Synth0ro" {
			continue
		}
		for _, op := range tr.Ops() {
			switch op.Op {
			case trace.OpUpdateTuple, trace.OpInsertTuple, trace.OpDeleteTuple:
				t.Fatalf("trace %d (read-only type) performed %v", i, op.Op)
			}
		}
	}
}

// TestZipfSkewConcentrates: zipfian(0.99) draws must concentrate far more
// mass on the hottest keys than uniform draws do.
func TestZipfSkewConcentrates(t *testing.T) {
	const n, draws = 1000, 20000
	z := newZipf(n, 0.99)
	rng := newTestRand(11)
	zipfHot := 0
	for i := 0; i < draws; i++ {
		if z.draw(rng) < n/100 {
			zipfHot++
		}
	}
	uni := uniformDist{n: n}
	rng = newTestRand(11)
	uniHot := 0
	for i := 0; i < draws; i++ {
		if uni.draw(rng) < n/100 {
			uniHot++
		}
	}
	zf, uf := float64(zipfHot)/draws, float64(uniHot)/draws
	if zf < 5*uf {
		t.Errorf("zipf top-1%% share %.3f not well above uniform's %.3f", zf, uf)
	}
	if zf < 0.2 {
		t.Errorf("zipf(0.99) top-1%% share %.3f, want > 0.2", zf)
	}
}

// TestHotSetDist: the hot-set distribution must respect HotProb within
// sampling noise, and clamp when the hot set covers the whole population.
func TestHotSetDist(t *testing.T) {
	d := hotSetDist{n: 1000, hot: 10, hotProb: 0.8}
	rng := newTestRand(5)
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := d.draw(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("draw %d out of range", k)
		}
		if k < 10 {
			hot++
		}
	}
	if f := float64(hot) / draws; f < 0.77 || f > 0.83 {
		t.Errorf("hot share %.3f, want ~0.8", f)
	}
	full := hotSetDist{n: 8, hot: 8, hotProb: 0.5}
	for i := 0; i < 100; i++ {
		if k := full.draw(rng); k < 0 || k >= 8 {
			t.Fatalf("clamped hot set drew %d", k)
		}
	}
}

// TestPhaseSchedule: the phase lookup must cycle with the period and
// normalize negative (pre-warm-up) indexes.
func TestPhaseSchedule(t *testing.T) {
	spec := Spec{
		WriteFrac: 0.1,
		Phases: []Phase{
			{Traces: 10},
			{Traces: 5, WriteFrac: floatPtr(0.9)},
		},
	}
	b, err := newBenchFor(t, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		g    int64
		want float64
	}{{0, 0.1}, {9, 0.1}, {10, 0.9}, {14, 0.9}, {15, 0.1}, {29, 0.9}, {30, 0.1}, {-1, 0.9}, {-6, 0.1}} {
		if got := b.phase(c.g).write; got != c.want {
			t.Errorf("phase(%d).write = %v, want %v", c.g, got, c.want)
		}
	}
}

func TestPresetsAllValidAndGenerate(t *testing.T) {
	if len(Presets()) < 4 {
		t.Fatalf("only %d presets shipped, want >= 4", len(Presets()))
	}
	for _, name := range Presets() {
		spec, ok := Preset(name)
		if !ok {
			t.Fatalf("Preset(%q) missing", name)
		}
		if spec.Name != NamePrefix+name {
			t.Errorf("preset %q spec.Name = %q", name, spec.Name)
		}
		if err := spec.withDefaults().Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		b, err := New(spec, 1, 0.02)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		s := workload.GenerateSet(b, 10)
		for i, tr := range s.Traces {
			if err := tr.Validate(); err != nil {
				t.Fatalf("preset %q trace %d: %v", name, i, err)
			}
		}
	}
}

func TestParseName(t *testing.T) {
	// Bare preset and prefixed forms resolve to the same spec.
	a, err := ParseName("zipf-hot-rw")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseName("synth:zipf-hot-rw")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || a.Name != "synth:zipf-hot-rw" {
		t.Errorf("names %q vs %q", a.Name, b.Name)
	}

	// Overrides apply and canonicalize.
	s, err := ParseName("synth:uniform-ro+z0.99+w0.5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Skew.Dist != DistZipfian || s.Skew.Theta != 0.99 || s.WriteFrac != 0.5 {
		t.Errorf("overrides not applied: %+v", s)
	}
	if s.Name != "synth:uniform-ro+z0.99+w0.5" {
		t.Errorf("canonical name = %q", s.Name)
	}
	if s.Name != EncodeName("uniform-ro", 0.99, 0.5, 0) {
		t.Errorf("EncodeName mismatch: %q", EncodeName("uniform-ro", 0.99, 0.5, 0))
	}

	// Every spelling of a value lands on one canonical name.
	for _, alias := range []string{"synth:uniform-ro+w.5", "synth:uniform-ro+w0.50"} {
		got, err := ParseName(alias)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", alias, err)
		}
		if got.Name != "synth:uniform-ro+w0.5" {
			t.Errorf("ParseName(%q).Name = %q, want canonical synth:uniform-ro+w0.5", alias, got.Name)
		}
	}

	h, err := ParseName("synth:uniform-ro+h64")
	if err != nil {
		t.Fatal(err)
	}
	if h.Skew.Dist != DistHotSet || h.Skew.HotKeys != 64 || h.Skew.HotProb != 0.9 {
		t.Errorf("hot override: %+v", h.Skew)
	}

	for _, bad := range []string{
		"synth:nope", "synth:uniform-ro+q3", "synth:uniform-ro+z",
		"synth:uniform-ro+zabc", "synth:uniform-ro+z2.0",
		"synth:uniform-ro+z0.9+h8", "synth:uniform-ro+w-1",
		"synth:uniform-ro+w0.2+w0.5", // duplicate overrides: several "canonical" names, one spec
		"synth:uniform-ro+z0.5+z0.9",
		"synth:uniform-ro+zNaN", // NaN passes naive range checks and panics mid-generation
		"synth:uniform-ro+wNaN",
	} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) accepted", bad)
		}
	}
}

func TestIsName(t *testing.T) {
	if !IsName("synth:uniform-ro") || IsName("TPC-B") || IsName("uniform-ro") {
		t.Error("IsName misclassifies")
	}
}

// TestEncodeNameOmitsAbsent: the absent-override sentinels must not leak
// into names.
func TestEncodeNameOmitsAbsent(t *testing.T) {
	if got := EncodeName("long-txn", 0, -1, 0); got != "synth:long-txn" {
		t.Errorf("EncodeName with no overrides = %q", got)
	}
	if got := EncodeName("long-txn", 0, 0, 0); got != "synth:long-txn+w0" {
		t.Errorf("EncodeName with zero write frac = %q", got)
	}
}

// TestSpecJSONRoundTrip: specs must survive the -synth spec-file path.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec, _ := Preset("phase-shift")
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != spec.Name || len(back.Phases) != len(spec.Phases) {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if back.Phases[1].WriteFrac == nil || *back.Phases[1].WriteFrac != 0.8 {
		t.Error("phase override lost in JSON round trip")
	}
	if !strings.Contains(string(data), "zipfian") {
		t.Errorf("JSON missing skew: %s", data)
	}
}

// newBenchFor compiles a spec at minimal size and returns the internal
// bench for white-box phase tests.
func newBenchFor(t *testing.T, spec Spec) (*bench, error) {
	t.Helper()
	spec.Rows = 16
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w := &bench{spec: spec, rows: 16}
	w.base = phaseParams{write: spec.WriteFrac}
	for _, p := range spec.Phases {
		pp := w.base
		if p.WriteFrac != nil {
			pp.write = *p.WriteFrac
		}
		w.period += int64(p.Traces)
		pp.until = w.period
		w.phases = append(w.phases, pp)
	}
	return w, nil
}
