// Package synth is the declarative synthetic-workload subsystem: a JSON-
// serializable Spec (table count and sizes, key-skew distribution, read/
// write mix, ops-per-transaction distribution, transaction-type count with
// shared or private code paths, and multi-phase schedules that shift skew
// and mix mid-trace) that compiles into workload.TxnSpecs over a generated
// storage.Manager population.
//
// The paper's conclusion claims ADDICT benefits "any application that ...
// [has] concurrent requests executing a series of actions from a predefined
// set"; the three TPC mixes probe only three points of that space. A Spec
// describes an arbitrary point — YCSB-style uniform/zipfian/hot-set skew,
// the limited read/write-set regimes of LRW-style studies, phased
// time-varying behavior — and the shipped presets (Presets) mark the
// corners where instruction chasing wins and loses.
//
// Compilation is fully deterministic per seed, and sharded generation
// (GenerateSetSharded) is worker-count independent exactly like the TPC
// path: shard s draws its randomness from workload.ShardSeed(seed, s) and
// its phase schedule from the absolute trace index s*shardSize + i, so the
// merged set is bit-for-bit identical for every worker count. Workloads are
// addressable by encoded name ("synth:<preset>[+z<theta>][+w<frac>]
// [+h<keys>]", see ParseName), which is how the sweep grid (internal/sweep)
// and the benchmark harness (internal/bench) reach them.
package synth
