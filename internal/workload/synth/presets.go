package synth

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NamePrefix marks encoded synthetic-workload names ("synth:...") apart
// from the TPC benchmark names wherever workloads travel by name (sweep
// grids, bench configs, unit IDs).
const NamePrefix = "synth:"

// floatLabel renders a float compactly and reversibly for encoded names
// ("0.99", "0.5", "1").
func floatLabel(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// presets are the shipped scenarios. Each marks a corner of the scenario
// space where the mechanism ranking is expected to move (see the
// characterization experiment in internal/exp):
//
//   - uniform-ro: uniform keys, read-only, short transactions — the
//     smallest per-transaction instruction footprint; migration overhead
//     has the least to amortize against.
//   - zipf-hot-rw: YCSB-style zipfian(0.99) skew, half the ops are
//     updates, four types (one read-only) over shared tables — the
//     contended OLTP regime closest to the TPC mixes.
//   - hotset-write: 64 hot keys absorb 90% of accesses with a write-heavy
//     mix — the extreme data-contention corner; data misses, not
//     instruction misses, dominate.
//   - phase-shift: the schedule flips between a uniform read-mostly phase
//     and a zipfian write-heavy phase every 192 transactions — probing how
//     profiles learned over one phase serve the other.
//   - long-txn: 48-96 ops per transaction with scans, private tables per
//     type — the large read/write-set regime (LRW) where each transaction
//     walks far more storage-manager code than any TPC transaction.
var presets = map[string]Spec{
	"uniform-ro": {
		Name:          NamePrefix + "uniform-ro",
		Tables:        2,
		TxnTypes:      2,
		ReadOnlyTypes: 2,
		OpsMin:        2, OpsMax: 4,
		Skew: Skew{Dist: DistUniform},
	},
	"zipf-hot-rw": {
		Name:          NamePrefix + "zipf-hot-rw",
		Tables:        4,
		TxnTypes:      4,
		ReadOnlyTypes: 1,
		OpsMin:        4, OpsMax: 12,
		Skew:      Skew{Dist: DistZipfian, Theta: 0.99},
		WriteFrac: 0.5, InsertFrac: 0.05,
	},
	"hotset-write": {
		Name:     NamePrefix + "hotset-write",
		Tables:   2,
		TxnTypes: 2,
		OpsMin:   4, OpsMax: 10,
		Skew:      Skew{Dist: DistHotSet, HotKeys: 64, HotProb: 0.9},
		WriteFrac: 0.8,
	},
	"phase-shift": {
		Name:          NamePrefix + "phase-shift",
		Tables:        2,
		TxnTypes:      3,
		ReadOnlyTypes: 1,
		OpsMin:        4, OpsMax: 10,
		Skew:      Skew{Dist: DistUniform},
		WriteFrac: 0.1,
		Phases: []Phase{
			{Traces: 192},
			{Traces: 192,
				Skew:      &Skew{Dist: DistZipfian, Theta: 0.99},
				WriteFrac: floatPtr(0.8)},
		},
	},
	"long-txn": {
		Name:          NamePrefix + "long-txn",
		Tables:        4,
		TxnTypes:      4,
		ReadOnlyTypes: 2,
		PrivateTables: true,
		OpsMin:        48, OpsMax: 96,
		Skew:      Skew{Dist: DistZipfian, Theta: 0.6},
		WriteFrac: 0.3, InsertFrac: 0.05, ScanFrac: 0.15,
	},
}

func floatPtr(v float64) *float64 { return &v }

// Presets returns the shipped preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset returns a shipped preset spec by bare name ("zipf-hot-rw").
func Preset(name string) (Spec, bool) {
	s, ok := presets[name]
	return s, ok
}

// IsName reports whether a workload name addresses a synthetic workload
// (the "synth:" prefix) rather than a TPC benchmark.
func IsName(name string) bool { return strings.HasPrefix(name, NamePrefix) }

// nearestPreset returns the shipped preset closest to name by edit
// distance, or "" when nothing is plausibly close (more than a third of
// the name would have to change). Unknown-preset errors name it, so a typo
// ("zipf-hot-rm") points at the intended preset instead of only echoing
// the bad name.
func nearestPreset(name string) string {
	best, bestDist := "", -1
	for _, p := range Presets() {
		d := editDistance(name, p)
		if bestDist < 0 || d < bestDist {
			best, bestDist = p, d
		}
	}
	max := (len(name) + 2) / 3
	if max < 2 {
		max = 2
	}
	if bestDist < 0 || bestDist > max {
		return ""
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EncodeName renders a preset plus overrides as a stable workload name:
// "synth:<preset>[+z<theta>][+w<frac>][+h<keys>]". A zero theta or hotKeys
// omits that override (neither is a valid override value); writeFrac is
// omitted when negative, because 0 is a meaningful write fraction. The
// name round-trips through ParseName and is what sweep unit IDs embed, so
// its format is part of the ID-stability contract.
func EncodeName(preset string, theta, writeFrac float64, hotKeys int) string {
	var b strings.Builder
	b.WriteString(NamePrefix)
	b.WriteString(preset)
	if theta != 0 {
		b.WriteString("+z")
		b.WriteString(floatLabel(theta))
	}
	if writeFrac >= 0 {
		b.WriteString("+w")
		b.WriteString(floatLabel(writeFrac))
	}
	if hotKeys != 0 {
		b.WriteString("+h")
		b.WriteString(strconv.Itoa(hotKeys))
	}
	return b.String()
}

// ParseName resolves an encoded synthetic workload name — "synth:<preset>"
// with optional "+z<theta>" (zipfian skew exponent), "+w<frac>" (base
// write fraction), and "+h<keys>" (hot-set size, selects the hotset
// distribution) overrides — into its spec. A bare preset name (no prefix)
// is accepted too, for command-line convenience. Overrides replace the
// preset's base values; z and h are mutually exclusive (they select
// different distributions). The spec's Name is the canonical encoded form.
func ParseName(name string) (Spec, error) {
	trimmed := strings.TrimPrefix(name, NamePrefix)
	parts := strings.Split(trimmed, "+")
	spec, ok := Preset(parts[0])
	if !ok {
		if near := nearestPreset(parts[0]); near != "" {
			return Spec{}, fmt.Errorf("synth: unknown preset %q (did you mean %q? have %s)",
				parts[0], near, strings.Join(Presets(), ", "))
		}
		return Spec{}, fmt.Errorf("synth: unknown preset %q (have %s)", parts[0], strings.Join(Presets(), ", "))
	}
	seen := map[byte]bool{}
	for _, p := range parts[1:] {
		if len(p) < 2 {
			return Spec{}, fmt.Errorf("synth: %s: empty override %q", name, p)
		}
		// Repeated overrides would make several distinct "canonical" names
		// denote one spec, breaking the name↔ID stability contract.
		if seen[p[0]] {
			return Spec{}, fmt.Errorf("synth: %s: duplicate %c override", name, p[0])
		}
		seen[p[0]] = true
		val := p[1:]
		switch p[0] {
		case 'z':
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("synth: %s: bad theta %q: %v", name, val, err)
			}
			spec.Skew = Skew{Dist: DistZipfian, Theta: v}
		case 'w':
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("synth: %s: bad write fraction %q: %v", name, val, err)
			}
			spec.WriteFrac = v
		case 'h':
			v, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("synth: %s: bad hot-set size %q: %v", name, val, err)
			}
			hotProb := spec.Skew.HotProb
			if hotProb == 0 {
				hotProb = 0.9
			}
			spec.Skew = Skew{Dist: DistHotSet, HotKeys: v, HotProb: hotProb}
		default:
			return Spec{}, fmt.Errorf("synth: %s: unknown override %q (want z, w, or h)", name, p)
		}
	}
	if seen['z'] && seen['h'] {
		return Spec{}, fmt.Errorf("synth: %s: z and h overrides are mutually exclusive", name)
	}
	// Rebuild the name from the parsed values, not the raw input parts, so
	// every spelling of a value ("+w.5", "+w0.50") lands on one canonical
	// name — sweep unit IDs and trace.Set labels stay joinable.
	theta, write, hot := 0.0, -1.0, 0
	if seen['z'] {
		theta = spec.Skew.Theta
	}
	if seen['w'] {
		write = spec.WriteFrac
	}
	if seen['h'] {
		hot = spec.Skew.HotKeys
	}
	spec.Name = EncodeName(parts[0], theta, write, hot)
	if err := spec.withDefaults().Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
