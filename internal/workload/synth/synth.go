package synth

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"addict/internal/codemap"
	"addict/internal/storage"
	"addict/internal/trace"
	"addict/internal/workload"
)

// Key-skew distribution names.
const (
	DistUniform = "uniform"
	DistZipfian = "zipfian"
	DistHotSet  = "hotset"
)

// Skew declares how transaction operations pick keys within a table's
// [0, rows) base population.
type Skew struct {
	// Dist is the distribution: "uniform", "zipfian" (YCSB-style, exponent
	// Theta), or "hotset" (probability HotProb of drawing from the first
	// HotKeys keys).
	Dist string `json:"dist"`
	// Theta is the zipfian exponent, in (0, 1). Higher is more skewed;
	// YCSB's default is 0.99.
	Theta float64 `json:"theta,omitempty"`
	// HotKeys is the hot-set size in keys (clamped to the scaled row count).
	HotKeys int `json:"hot_keys,omitempty"`
	// HotProb is the probability an access lands in the hot set.
	HotProb float64 `json:"hot_prob,omitempty"`
}

// Phase is one window of a cyclic multi-phase schedule. Non-nil fields
// override the spec's base values while the phase is active; the schedule
// repeats every sum-of-Traces transactions of the global trace stream, so
// phase membership depends only on a transaction's absolute index — never
// on sharding or worker count.
type Phase struct {
	// Traces is the phase length in transactions (> 0).
	Traces int `json:"traces"`
	// Skew, when non-nil, replaces the base key-skew distribution.
	Skew *Skew `json:"skew,omitempty"`
	// WriteFrac, when non-nil, replaces the base update fraction.
	WriteFrac *float64 `json:"write_frac,omitempty"`
}

// Spec declares a synthetic workload. The zero value of every field selects
// a sensible default (see withDefaults); Validate rejects contradictory
// settings. Specs are JSON-serializable for cmd/tracegen -synth files.
type Spec struct {
	// Name labels the workload (trace.Set.Workload, sweep unit IDs).
	Name string `json:"name,omitempty"`

	// Tables is the number of identically-sized tables (default 1), each
	// with one primary index.
	Tables int `json:"tables,omitempty"`
	// Rows is the per-table base population at scale 1.0 (default 65536).
	Rows int `json:"rows,omitempty"`
	// RecBytes is the record size (default 128, minimum 16).
	RecBytes int `json:"rec_bytes,omitempty"`

	// TxnTypes is the number of transaction types in the mix (default 1,
	// equal weights).
	TxnTypes int `json:"txn_types,omitempty"`
	// ReadOnlyTypes makes the first n types read-only regardless of the
	// write mix — distinct code paths in the sense of TPC-E's read-only
	// majority (their ops never enter the update/insert routines).
	ReadOnlyTypes int `json:"read_only_types,omitempty"`
	// PrivateTables pins type t to table t mod Tables, giving each type a
	// private data partition (and so a private index/descent path); when
	// false every op draws its table uniformly — the fully shared regime.
	PrivateTables bool `json:"private_tables,omitempty"`

	// OpsMin/OpsMax bound the uniform ops-per-transaction distribution
	// (defaults 4 and 12).
	OpsMin int `json:"ops_min,omitempty"`
	OpsMax int `json:"ops_max,omitempty"`

	// Skew is the base key distribution (default uniform).
	Skew Skew `json:"skew,omitempty"`

	// WriteFrac is the probability an op is a probe+update; InsertFrac an
	// insert of a fresh key; ScanFrac a bounded index scan; the remainder
	// are plain index probes. The three must sum to at most 1. Read-only
	// types treat WriteFrac and InsertFrac as 0.
	WriteFrac  float64 `json:"write_frac,omitempty"`
	InsertFrac float64 `json:"insert_frac,omitempty"`
	ScanFrac   float64 `json:"scan_frac,omitempty"`
	// ScanLen is the key span (and result cap) of scan ops (default 16).
	ScanLen int `json:"scan_len,omitempty"`

	// Phases is the optional cyclic schedule; empty means the base values
	// hold throughout.
	Phases []Phase `json:"phases,omitempty"`
}

// withDefaults fills unset fields with the documented defaults.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "synth"
	}
	if s.Tables == 0 {
		s.Tables = 1
	}
	if s.Rows == 0 {
		s.Rows = 65536
	}
	if s.RecBytes == 0 {
		s.RecBytes = 128
	}
	if s.TxnTypes == 0 {
		s.TxnTypes = 1
	}
	// Ops bounds default independently: both unset selects 4-12, a lone
	// OpsMin selects a fixed count, a lone OpsMax keeps the default lower
	// bound (clamped so the range stays valid).
	if s.OpsMin == 0 && s.OpsMax == 0 {
		s.OpsMin, s.OpsMax = 4, 12
	}
	if s.OpsMax == 0 {
		s.OpsMax = s.OpsMin
	}
	if s.OpsMin == 0 {
		s.OpsMin = 4
		if s.OpsMin > s.OpsMax {
			s.OpsMin = s.OpsMax
		}
	}
	if s.Skew.Dist == "" {
		s.Skew.Dist = DistUniform
	}
	if s.ScanLen == 0 {
		s.ScanLen = 16
	}
	return s
}

// validateSkew checks one skew declaration.
func validateSkew(where string, k Skew) error {
	// Range checks are phrased positively (!(lo < v && v < hi)) so NaN —
	// for which every comparison is false — is rejected too.
	switch k.Dist {
	case DistUniform:
	case DistZipfian:
		if !(k.Theta > 0 && k.Theta < 1) {
			return fmt.Errorf("synth: %s: zipfian theta %v outside (0, 1)", where, k.Theta)
		}
	case DistHotSet:
		if k.HotKeys < 1 {
			return fmt.Errorf("synth: %s: hotset needs hot_keys >= 1, got %d", where, k.HotKeys)
		}
		if !(k.HotProb >= 0 && k.HotProb <= 1) {
			return fmt.Errorf("synth: %s: hot_prob %v outside [0, 1]", where, k.HotProb)
		}
	default:
		return fmt.Errorf("synth: %s: unknown distribution %q (want uniform, zipfian, or hotset)", where, k.Dist)
	}
	return nil
}

// Validate rejects specs the compiler cannot serve. It is called on the
// defaulted form, so zero fields have already been replaced.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Tables < 1 {
		return fmt.Errorf("synth: tables %d < 1", s.Tables)
	}
	if s.Rows < 2 {
		return fmt.Errorf("synth: rows %d < 2", s.Rows)
	}
	if s.RecBytes < 16 || s.RecBytes > 4096 {
		return fmt.Errorf("synth: rec_bytes %d outside [16, 4096]", s.RecBytes)
	}
	if s.TxnTypes < 1 {
		return fmt.Errorf("synth: txn_types %d < 1", s.TxnTypes)
	}
	if s.ReadOnlyTypes < 0 || s.ReadOnlyTypes > s.TxnTypes {
		return fmt.Errorf("synth: read_only_types %d outside [0, %d]", s.ReadOnlyTypes, s.TxnTypes)
	}
	if s.OpsMin < 1 || s.OpsMax < s.OpsMin {
		return fmt.Errorf("synth: ops range [%d, %d] invalid", s.OpsMin, s.OpsMax)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"write_frac", s.WriteFrac}, {"insert_frac", s.InsertFrac}, {"scan_frac", s.ScanFrac}} {
		if !(f.v >= 0 && f.v <= 1) { // rejects NaN too
			return fmt.Errorf("synth: %s %v outside [0, 1]", f.name, f.v)
		}
	}
	if sum := s.WriteFrac + s.InsertFrac + s.ScanFrac; sum > 1 {
		return fmt.Errorf("synth: write+insert+scan fractions sum to %v > 1", sum)
	}
	if s.ScanLen < 1 {
		return fmt.Errorf("synth: scan_len %d < 1", s.ScanLen)
	}
	if err := validateSkew("skew", s.Skew); err != nil {
		return err
	}
	for i, p := range s.Phases {
		if p.Traces < 1 {
			return fmt.Errorf("synth: phase %d: traces %d < 1", i, p.Traces)
		}
		if p.Skew != nil {
			if err := validateSkew(fmt.Sprintf("phase %d skew", i), *p.Skew); err != nil {
				return err
			}
		}
		if p.WriteFrac != nil {
			if !(*p.WriteFrac >= 0 && *p.WriteFrac <= 1) { // rejects NaN too
				return fmt.Errorf("synth: phase %d: write_frac %v outside [0, 1]", i, *p.WriteFrac)
			}
			if *p.WriteFrac+s.InsertFrac+s.ScanFrac > 1 {
				return fmt.Errorf("synth: phase %d: write_frac %v pushes op fractions over 1", i, *p.WriteFrac)
			}
		}
	}
	return nil
}

// keyDist draws keys in [0, n) for a fixed n resolved at compile time.
type keyDist interface {
	draw(rng *rand.Rand) int
}

type uniformDist struct{ n int }

func (d uniformDist) draw(rng *rand.Rand) int { return rng.Intn(d.n) }

// zipfDist is the Gray et al. zipfian generator YCSB popularized: rank 0 is
// the hottest key. The zeta sum is precomputed once per (rows, theta).
type zipfDist struct {
	n                  int
	alpha, eta         float64
	zetan, halfPowThet float64
}

func newZipf(n int, theta float64) *zipfDist {
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	return &zipfDist{
		n:           n,
		alpha:       1 / (1 - theta),
		zetan:       zetan,
		eta:         (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		halfPowThet: math.Pow(0.5, theta),
	}
}

func (z *zipfDist) draw(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.halfPowThet {
		return 1
	}
	i := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if i >= z.n {
		i = z.n - 1
	}
	return i
}

type hotSetDist struct {
	n, hot  int
	hotProb float64
}

func (d hotSetDist) draw(rng *rand.Rand) int {
	if d.hot >= d.n {
		return rng.Intn(d.n)
	}
	if rng.Float64() < d.hotProb {
		return rng.Intn(d.hot)
	}
	return d.hot + rng.Intn(d.n-d.hot)
}

// phaseParams are one phase's resolved knobs.
type phaseParams struct {
	until int64 // cumulative end of the phase within the period (exclusive)
	dist  keyDist
	write float64
}

// bench is the compiled synthetic workload: the populated manager plus the
// state its Run closures share. A bench belongs to exactly one
// workload.Benchmark instance (one shard), so it needs no locking — shards
// are independent by construction.
type bench struct {
	spec   Spec
	m      *storage.Manager
	rng    *rand.Rand
	tables []*storage.Table
	rows   int // scaled per-table base population

	base   phaseParams
	phases []phaseParams
	period int64

	// g is the absolute index of the next transaction in the global trace
	// stream. Shards start it at shard*shardSize - workload.ShardWarmup so
	// that after the warm-up the traced window continues the stream exactly
	// where shard boundaries place it.
	g int64

	// nextKey[t] is the next fresh insert key of table t (base rows and
	// prior inserts are all taken).
	nextKey []uint64
}

// New compiles a spec into a benchmark over a freshly generated and
// populated storage manager. scale multiplies the per-table row count
// (minimum 2); the result is deterministic in (spec, seed, scale).
func New(spec Spec, seed int64, scale float64) (*workload.Benchmark, error) {
	return newBench(spec, seed, scale, 0)
}

// newBench is New plus the global stream position the instance starts at
// (non-zero only for generation shards).
func newBench(spec Spec, seed int64, scale float64, start int64) (*workload.Benchmark, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rows := int(float64(spec.Rows) * scale)
	if rows < 2 {
		rows = 2
	}

	w := &bench{
		spec: spec,
		// workload.NewCustom seeds the type-selection stream from `seed`;
		// the op/key stream must not replay it, so it draws from a
		// split-off seed (ShardSeed's finalizer with a reserved index —
		// generation shards only ever use indexes >= 0).
		rng:     rand.New(rand.NewSource(workload.ShardSeed(seed, -1))),
		m:       storage.NewManager(trace.Discard{}, codemap.NewLayout()),
		rows:    rows,
		g:       start,
		nextKey: make([]uint64, spec.Tables),
	}

	// Population: Tables identical tables, keys [0, rows).
	rec := make([]byte, spec.RecBytes)
	pop := w.m.Begin()
	for t := 0; t < spec.Tables; t++ {
		tbl := w.m.CreateTable(fmt.Sprintf("synth_%d", t))
		tbl.CreateIndex(fmt.Sprintf("synth_%d_pk", t))
		for k := 0; k < rows; k++ {
			binary.LittleEndian.PutUint64(rec, uint64(k))
			if _, err := w.m.InsertTuple(pop, tbl, []uint64{uint64(k)}, rec); err != nil {
				return nil, fmt.Errorf("synth: populating table %d: %w", t, err)
			}
		}
		w.tables = append(w.tables, tbl)
		w.nextKey[t] = uint64(rows)
	}
	w.m.Commit(pop)

	// Resolve the base and per-phase parameters. Zipf states are cached per
	// theta: phases often share the base distribution.
	zipfs := map[float64]*zipfDist{}
	dist := func(k Skew) keyDist {
		switch k.Dist {
		case DistZipfian:
			z, ok := zipfs[k.Theta]
			if !ok {
				z = newZipf(rows, k.Theta)
				zipfs[k.Theta] = z
			}
			return z
		case DistHotSet:
			hot := k.HotKeys
			if hot > rows {
				hot = rows
			}
			return hotSetDist{n: rows, hot: hot, hotProb: k.HotProb}
		default:
			return uniformDist{n: rows}
		}
	}
	w.base = phaseParams{dist: dist(spec.Skew), write: spec.WriteFrac}
	for _, p := range spec.Phases {
		pp := w.base
		if p.Skew != nil {
			pp.dist = dist(*p.Skew)
		}
		if p.WriteFrac != nil {
			pp.write = *p.WriteFrac
		}
		w.period += int64(p.Traces)
		pp.until = w.period
		w.phases = append(w.phases, pp)
	}

	types := make([]workload.TxnSpec, spec.TxnTypes)
	weight := 1.0 / float64(spec.TxnTypes)
	for t := 0; t < spec.TxnTypes; t++ {
		ro := t < spec.ReadOnlyTypes
		suffix := "rw"
		if ro {
			suffix = "ro"
		}
		types[t] = workload.TxnSpec{
			Name:   fmt.Sprintf("Synth%d%s", t, suffix),
			Weight: weight,
			Run:    w.runner(t, ro),
		}
	}
	return workload.NewCustom(spec.Name, w.m, seed, types)
}

// phase resolves the parameters governing global transaction index g.
func (w *bench) phase(g int64) phaseParams {
	if w.period == 0 {
		return w.base
	}
	pos := g % w.period
	if pos < 0 {
		pos += w.period
	}
	for _, p := range w.phases {
		if pos < p.until {
			return p
		}
	}
	return w.phases[len(w.phases)-1]
}

// runner builds type t's transaction body. Every randomized decision draws
// from the benchmark's single rng stream, so the whole instance is one
// deterministic function of its seed.
func (w *bench) runner(t int, readOnly bool) func(*storage.Txn) {
	return func(txn *storage.Txn) {
		p := w.phase(w.g)
		w.g++
		spec := &w.spec
		nops := spec.OpsMin + w.rng.Intn(spec.OpsMax-spec.OpsMin+1)
		for o := 0; o < nops; o++ {
			ti := t % len(w.tables)
			if !spec.PrivateTables && len(w.tables) > 1 {
				ti = w.rng.Intn(len(w.tables))
			}
			tbl := w.tables[ti]
			write, insert := p.write, spec.InsertFrac
			if readOnly {
				write, insert = 0, 0
			}
			r := w.rng.Float64()
			switch {
			case r < write:
				w.update(txn, tbl, p)
			case r < write+insert:
				w.insert(txn, tbl, ti)
			case r < write+insert+spec.ScanFrac:
				w.scan(txn, tbl, p)
			default:
				w.probe(txn, tbl, p)
			}
		}
	}
}

func (w *bench) probe(txn *storage.Txn, tbl *storage.Table, p phaseParams) {
	key := uint64(p.dist.draw(w.rng))
	if _, _, ok := w.m.IndexProbe(txn, tbl, tbl.Index(0), key); !ok {
		panic(fmt.Sprintf("synth: base key %d vanished from %s", key, tbl.Name()))
	}
}

// update is a probe followed by a read-modify-write of the op counter at
// offset 8 (the record's key stays stamped at offset 0).
func (w *bench) update(txn *storage.Txn, tbl *storage.Table, p phaseParams) {
	key := uint64(p.dist.draw(w.rng))
	rid, rec, ok := w.m.IndexProbe(txn, tbl, tbl.Index(0), key)
	if !ok {
		panic(fmt.Sprintf("synth: base key %d vanished from %s", key, tbl.Name()))
	}
	binary.LittleEndian.PutUint64(rec[8:], binary.LittleEndian.Uint64(rec[8:])+1)
	if err := w.m.UpdateTuple(txn, tbl, rid, key, rec); err != nil {
		panic(err)
	}
}

// insert appends a fresh key past the base population (and past every prior
// insert of this instance), so duplicate-key failures cannot occur.
func (w *bench) insert(txn *storage.Txn, tbl *storage.Table, ti int) {
	key := w.nextKey[ti]
	w.nextKey[ti]++
	rec := make([]byte, w.spec.RecBytes)
	binary.LittleEndian.PutUint64(rec, key)
	if _, err := w.m.InsertTuple(txn, tbl, []uint64{key}, rec); err != nil {
		panic(err)
	}
}

func (w *bench) scan(txn *storage.Txn, tbl *storage.Table, p phaseParams) {
	lo := uint64(p.dist.draw(w.rng))
	w.m.IndexScan(txn, tbl.Index(0), lo, lo+uint64(w.spec.ScanLen)-1, true, true, w.spec.ScanLen)
}

// GenerateSetSharded generates n traces of the synthetic workload as
// independent warm-started shards on up to `workers` goroutines, merged in
// shard order — the synth counterpart of workload.GenerateSetSharded, with
// the identical byte-identity contract: shard s draws its randomness from
// workload.ShardSeed(seed, s) and populates its own database, and the
// phase schedule follows the absolute trace index s*shardSize + i, so the
// result depends only on (spec, seed, scale, baseShard, n, shardSize),
// never on workers.
//
// shardSize <= 0 selects workload.DefaultShardSize; workers < 1 runs
// serially.
func GenerateSetSharded(spec Spec, seed int64, scale float64, baseShard, n, shardSize, workers int) (*trace.Set, error) {
	return GenerateSetShardedCtx(context.Background(), spec, seed, scale, baseShard, n, shardSize, workers)
}

// GenerateSetShardedCtx is GenerateSetSharded with cooperative cancellation
// between shards (the same contract as workload.GenerateSetShardedWithCtx).
func GenerateSetShardedCtx(ctx context.Context, spec Spec, seed int64, scale float64, baseShard, n, shardSize, workers int) (*trace.Set, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if shardSize <= 0 {
		shardSize = workload.DefaultShardSize
	}
	return workload.GenerateSetShardedWithCtx(ctx, func(shard int) *workload.Benchmark {
		start := int64(shard)*int64(shardSize) - workload.ShardWarmup
		b, err := newBench(spec, workload.ShardSeed(seed, shard), scale, start)
		if err != nil {
			// The spec was validated above; a failure here is a population
			// bug, not an input error.
			panic(err)
		}
		return b
	}, baseShard, n, shardSize, workers)
}
