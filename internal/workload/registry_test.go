package workload_test

// The registry test lives in an external test package so it can import
// workload/synth: registering the "synth:" backend is an import side
// effect, and package workload itself must not depend on its backends.

import (
	"context"
	"strings"
	"testing"

	"addict/internal/workload"
	"addict/internal/workload/synth"
)

// TestResolveTPCMatchesDirectPath: the registry's built-in TPC entries must
// produce byte-identical sets to the direct sharded generator.
func TestResolveTPCMatchesDirectPath(t *testing.T) {
	r, err := workload.Resolve("TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.GenerateSharded(context.Background(), 11, 0.05, 0, 30, workload.DefaultShardSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.GenerateSetSharded("TPC-B", 11, 0.05, 0, 30, workload.DefaultShardSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != want.Digest() {
		t.Error("registry TPC-B generation diverges from workload.GenerateSetSharded")
	}
}

// TestResolveSynthMatchesDirectPath: the registered synth backend must
// produce byte-identical sets to synth.GenerateSetSharded.
func TestResolveSynthMatchesDirectPath(t *testing.T) {
	const name = "synth:zipf-hot-rw+z0.9"
	r, err := workload.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.GenerateSharded(context.Background(), 7, 0.02, 1, 20, workload.DefaultShardSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := synth.ParseName(name)
	if err != nil {
		t.Fatal(err)
	}
	want, err := synth.GenerateSetSharded(spec, 7, 0.02, 1, 20, workload.DefaultShardSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != want.Digest() {
		t.Error("registry synth generation diverges from synth.GenerateSetSharded")
	}
}

// TestResolveErrors: unknown names and claimed-but-invalid names must both
// fail, the latter with the backend's own diagnosis.
func TestResolveErrors(t *testing.T) {
	if err := workload.Validate("nope"); err == nil {
		t.Error("Validate(nope) = nil, want error")
	}
	err := workload.Validate("synth:not-a-preset")
	if err == nil {
		t.Fatal("Validate(synth:not-a-preset) = nil, want error")
	}
	if !strings.Contains(err.Error(), "not-a-preset") {
		t.Errorf("claimed-name error %q does not name the bad preset", err)
	}
	if err := workload.Validate("synth:uniform-ro"); err != nil {
		t.Errorf("Validate(synth:uniform-ro) = %v", err)
	}
}

// TestResolveBuild: the Build half of a resolved handle compiles a usable
// benchmark for both name spaces.
func TestResolveBuild(t *testing.T) {
	for _, name := range []string{"TPC-B", "synth:uniform-ro"} {
		r, err := workload.Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Build(3, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s := workload.GenerateSet(b, 3); len(s.Traces) != 3 {
			t.Errorf("%s: generated %d traces, want 3", name, len(s.Traces))
		}
	}
}

// TestGenerateSetShardedWithCtxCancelled: a cancelled context must abort
// generation with the context's error, not return a partial set.
func TestGenerateSetShardedWithCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := workload.Resolve("TPC-B")
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.GenerateSharded(ctx, 1, 0.05, 0, 600, workload.DefaultShardSize, 2)
	if err == nil {
		t.Fatal("cancelled generation returned nil error")
	}
	if s != nil {
		t.Error("cancelled generation returned a partial set")
	}
}
