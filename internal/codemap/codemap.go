package codemap

import (
	"fmt"
	"sort"

	"addict/internal/trace"
)

// CodeBase is the address of the first instruction block. Data addresses
// (package storage) live far above it, so instruction and data blocks never
// collide.
const CodeBase uint64 = 0x0040_0000

// Routine names. The set mirrors the significant code parts of Figure 1 plus
// the shared lower-level services every operation uses (buffer pool, lock
// manager, latching, logging) and the transaction glue.
const (
	RTxnBegin  = "txn_begin"
	RTxnCommit = "txn_commit" // lock release walk + commit log record

	// Shared services.
	RLockAcquire = "lock_acquire" // no-migrate (Section 3.1.3)
	RLockRelease = "lock_release" // no-migrate
	RLatch       = "latch"        // no-migrate
	RBufFind     = "buf_find"     // buffer-pool hash probe + pin
	RLogInsert   = "log_insert"   // no-migrate

	// Index probe (Figure 1 left).
	RFindKey  = "find_key"       // storage manager API entry
	RLookup   = "btree_lookup"   // per-index lookup routine
	RTraverse = "btree_traverse" // top-to-bottom page descent

	// Index scan.
	RScanAPI    = "scan_api"
	RInitCursor = "init_cursor"
	RFetchNext  = "fetch_next"

	// Update tuple.
	RUpdateAPI  = "update_api"
	RPinRecord  = "pin_record_page"
	RUpdatePage = "update_page"

	// Insert tuple.
	RInsertAPI        = "insert_api"
	RCreateRecord     = "create_record"
	RAllocatePage     = "allocate_page" // dashed path: only when no page has space
	RCreateIndexEntry = "create_index_entry"
	RIndexDescent     = "index_descent" // insert-optimized descent
	RBtreeSMO         = "btree_smo"     // dashed path: splits / new roots

	// Delete tuple (Section 2.1 notes it mirrors insert; included for
	// completeness).
	RDeleteAPI        = "delete_api"
	RRemoveRecord     = "remove_record"
	RRemoveIndexEntry = "remove_index_entry"
	RBtreeMerge       = "btree_merge" // dashed path: underflow merges
)

// Segment is the code range owned by one routine.
type Segment struct {
	// Name is the routine name (one of the R… constants).
	Name string
	// Base is the address of the routine's first block.
	Base uint64
	// NBlocks is the routine's size in 64-byte blocks.
	NBlocks int
	// NoMigrate marks routines inside which ADDICT must not place migration
	// points (short critical sections, lock acquisition/release —
	// Section 3.1.3).
	NoMigrate bool
}

// Addr returns the address of the i-th block of the segment. i must be in
// [0, NBlocks).
func (s Segment) Addr(i int) uint64 {
	if i < 0 || i >= s.NBlocks {
		panic(fmt.Sprintf("codemap: block %d out of range for %s (%d blocks)", i, s.Name, s.NBlocks))
	}
	return s.Base + uint64(i)*trace.BlockSize
}

// End returns the first address past the segment.
func (s Segment) End() uint64 { return s.Base + uint64(s.NBlocks)*trace.BlockSize }

// Contains reports whether addr falls inside the segment.
func (s Segment) Contains(addr uint64) bool { return addr >= s.Base && addr < s.End() }

// EmitAll records a straight-line execution of the whole routine body.
func (s Segment) EmitAll(rec trace.Recorder) { s.EmitRange(rec, 0, s.NBlocks) }

// EmitRange records execution of blocks [from, to) of the routine.
func (s Segment) EmitRange(rec trace.Recorder, from, to int) {
	if from < 0 || to > s.NBlocks || from > to {
		panic(fmt.Sprintf("codemap: range [%d,%d) out of bounds for %s (%d blocks)", from, to, s.Name, s.NBlocks))
	}
	for i := from; i < to; i++ {
		rec.Instr(s.Base + uint64(i)*trace.BlockSize)
	}
}

// EmitLoop records `times` iterations over blocks [from, to) — the emission
// form of a hot inner loop (B-tree binary search, scan fetch loop, lock hash
// walk). Loop blocks are what give common instructions their high
// within-instance reuse counts (Figure 3).
func (s Segment) EmitLoop(rec trace.Recorder, from, to, times int) {
	for t := 0; t < times; t++ {
		s.EmitRange(rec, from, to)
	}
}

// sizes is the Figure 1 calibration. See DESIGN.md Section 5; the derivation
// of the targets is spelled out in layout_test.go, and the Fig 1 experiment
// (internal/exp) prints the resulting measured percentages.
var sizes = []struct {
	name      string
	blocks    int
	noMigrate bool
}{
	{RTxnBegin, 24, false},
	{RTxnCommit, 90, false},
	{RLockAcquire, 120, true},
	{RLockRelease, 40, true},
	{RLatch, 10, true},
	{RBufFind, 50, false},
	{RLogInsert, 120, true},
	{RFindKey, 170, false},
	{RLookup, 125, false},
	{RTraverse, 200, false},
	{RScanAPI, 70, false},
	{RInitCursor, 150, false},
	{RFetchNext, 90, false},
	{RUpdateAPI, 50, false},
	{RPinRecord, 190, false},
	{RUpdatePage, 140, false},
	{RInsertAPI, 80, false},
	{RCreateRecord, 130, false},
	{RAllocatePage, 270, false},
	{RCreateIndexEntry, 60, false},
	{RIndexDescent, 150, false},
	{RBtreeSMO, 700, false},
	{RDeleteAPI, 70, false},
	{RRemoveRecord, 120, false},
	{RRemoveIndexEntry, 80, false},
	{RBtreeMerge, 300, false},
}

// Layout maps routine names to code segments. One immutable Layout is shared
// by trace generation, profiling, and the experiments.
type Layout struct {
	segs   []Segment
	byName map[string]int
}

// NewLayout builds the standard storage-manager code layout.
func NewLayout() *Layout {
	l := &Layout{byName: make(map[string]int, len(sizes))}
	addr := CodeBase
	for _, s := range sizes {
		if _, dup := l.byName[s.name]; dup {
			panic("codemap: duplicate routine " + s.name)
		}
		l.byName[s.name] = len(l.segs)
		l.segs = append(l.segs, Segment{Name: s.name, Base: addr, NBlocks: s.blocks, NoMigrate: s.noMigrate})
		addr += uint64(s.blocks) * trace.BlockSize
	}
	return l
}

// Routine returns the segment for a routine name; it panics on unknown names
// (a programming error, not an input error).
func (l *Layout) Routine(name string) Segment {
	i, ok := l.byName[name]
	if !ok {
		panic("codemap: unknown routine " + name)
	}
	return l.segs[i]
}

// Routines returns all segments in address order.
func (l *Layout) Routines() []Segment {
	out := make([]Segment, len(l.segs))
	copy(out, l.segs)
	return out
}

// TotalBlocks returns the size of the whole layout in blocks.
func (l *Layout) TotalBlocks() int {
	n := 0
	for _, s := range l.segs {
		n += s.NBlocks
	}
	return n
}

// TotalBytes returns the size of the whole layout in bytes — the simulated
// storage manager's instruction footprint.
func (l *Layout) TotalBytes() int { return l.TotalBlocks() * trace.BlockSize }

// Find returns the segment containing addr, if any. Segments are contiguous
// and sorted, so this is a binary search.
func (l *Layout) Find(addr uint64) (Segment, bool) {
	i := sort.Search(len(l.segs), func(i int) bool { return l.segs[i].End() > addr })
	if i < len(l.segs) && l.segs[i].Contains(addr) {
		return l.segs[i], true
	}
	return Segment{}, false
}

// NoMigrate reports whether addr falls inside a routine where migration
// points must not be placed (Section 3.1.3: "migrating within short critical
// sections or lock acquisitions/releases would increase the duration of these
// routines").
func (l *Layout) NoMigrate(addr uint64) bool {
	s, ok := l.Find(addr)
	return ok && s.NoMigrate
}
