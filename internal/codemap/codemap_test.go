package codemap

import (
	"testing"
	"testing/quick"

	"addict/internal/trace"
)

func TestLayoutNonOverlapping(t *testing.T) {
	l := NewLayout()
	segs := l.Routines()
	for i := 1; i < len(segs); i++ {
		if segs[i].Base < segs[i-1].End() {
			t.Errorf("segment %s (base %#x) overlaps %s (end %#x)",
				segs[i].Name, segs[i].Base, segs[i-1].Name, segs[i-1].End())
		}
	}
}

func TestLayoutTotalFootprintInPaperRange(t *testing.T) {
	l := NewLayout()
	bytes := l.TotalBytes()
	// Section 4.6: "Shore-MT has an instruction footprint of 128KB-256KB".
	if bytes < 128<<10 || bytes > 256<<10 {
		t.Errorf("total layout = %d bytes, want within [128KB, 256KB]", bytes)
	}
}

func TestRoutineLookup(t *testing.T) {
	l := NewLayout()
	for _, name := range []string{RFindKey, RBtreeSMO, RLatch, RFetchNext} {
		s := l.Routine(name)
		if s.Name != name {
			t.Errorf("Routine(%q).Name = %q", name, s.Name)
		}
		if s.NBlocks <= 0 {
			t.Errorf("Routine(%q).NBlocks = %d", name, s.NBlocks)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Routine(unknown) did not panic")
		}
	}()
	l.Routine("no_such_routine")
}

func TestFindCoversEveryBlock(t *testing.T) {
	l := NewLayout()
	for _, s := range l.Routines() {
		for i := 0; i < s.NBlocks; i++ {
			got, ok := l.Find(s.Addr(i))
			if !ok || got.Name != s.Name {
				t.Fatalf("Find(%#x) = %v,%v; want %s", s.Addr(i), got.Name, ok, s.Name)
			}
		}
	}
	// Addresses outside the layout are not found.
	if _, ok := l.Find(CodeBase - trace.BlockSize); ok {
		t.Error("Find below CodeBase succeeded")
	}
	last := l.Routines()[len(l.Routines())-1]
	if _, ok := l.Find(last.End()); ok {
		t.Error("Find past layout end succeeded")
	}
}

func TestNoMigrateZones(t *testing.T) {
	l := NewLayout()
	// Section 3.1.3: lock acquisition/release, latching, and log inserts are
	// short critical sections where migration points must not be placed.
	for _, name := range []string{RLockAcquire, RLockRelease, RLatch, RLogInsert} {
		s := l.Routine(name)
		if !l.NoMigrate(s.Addr(0)) || !l.NoMigrate(s.Addr(s.NBlocks-1)) {
			t.Errorf("%s should be a no-migrate zone", name)
		}
	}
	for _, name := range []string{RFindKey, RTraverse, RBtreeSMO} {
		if l.NoMigrate(l.Routine(name).Addr(0)) {
			t.Errorf("%s should allow migration points", name)
		}
	}
}

func TestEmitRangeAndLoop(t *testing.T) {
	l := NewLayout()
	s := l.Routine(RTraverse)
	b := trace.NewBuffer(true)
	b.TxnBegin(0, "t")
	s.EmitRange(b, 2, 5)
	s.EmitLoop(b, 0, 2, 3)
	b.TxnEnd()
	tr := b.Take()[0]
	var addrs []uint64
	for _, e := range tr.Events {
		if e.Kind == trace.KindInstr {
			addrs = append(addrs, e.Addr)
		}
	}
	want := []uint64{s.Addr(2), s.Addr(3), s.Addr(4), s.Addr(0), s.Addr(1), s.Addr(0), s.Addr(1), s.Addr(0), s.Addr(1)}
	if len(addrs) != len(want) {
		t.Fatalf("got %d instr events, want %d", len(addrs), len(want))
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("event %d: addr %#x, want %#x", i, addrs[i], want[i])
		}
	}
}

func TestEmitBoundsChecked(t *testing.T) {
	l := NewLayout()
	s := l.Routine(RLatch)
	b := trace.NewBuffer(true)
	b.TxnBegin(0, "t")
	defer func() {
		if recover() == nil {
			t.Error("EmitRange out of bounds did not panic")
		}
	}()
	s.EmitRange(b, 0, s.NBlocks+1)
}

func TestAddrBoundsChecked(t *testing.T) {
	s := NewLayout().Routine(RLatch)
	defer func() {
		if recover() == nil {
			t.Error("Addr out of bounds did not panic")
		}
	}()
	_ = s.Addr(s.NBlocks)
}

// TestLayoutDeterministic: two layouts must be bit-identical — the whole
// reproduction depends on addresses being stable across runs.
func TestLayoutDeterministic(t *testing.T) {
	a, b := NewLayout(), NewLayout()
	sa, sb := a.Routines(), b.Routines()
	if len(sa) != len(sb) {
		t.Fatalf("layouts differ in routine count: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("segment %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// TestFindMatchesLinearScan cross-checks the binary search against a lookup
// over random addresses.
func TestFindMatchesLinearScan(t *testing.T) {
	l := NewLayout()
	segs := l.Routines()
	linear := func(addr uint64) (Segment, bool) {
		for _, s := range segs {
			if s.Contains(addr) {
				return s, true
			}
		}
		return Segment{}, false
	}
	f := func(raw uint64) bool {
		addr := CodeBase + raw%uint64(l.TotalBytes()+4096)
		g1, ok1 := l.Find(addr)
		g2, ok2 := linear(addr)
		return ok1 == ok2 && g1 == g2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFigure1Ratios checks the calibrated footprint ratios against
// Figure 1's published percentages (probe path: lookup 73% of find key,
// traverse 71% of lookup, lock 33% of traverse; update: pin 46%, update
// page 40%; insert: allocate-page 47% of create-record, SMO 65% of
// create-index-entry).
//
// Two ratios deviate deliberately: the lock fast path and pin-record sizes
// were reduced so that every migration-point action fits the 32KB L1-I with
// slack — the scheduling behaviour the paper's evaluation depends on —
// trading ~6-8 percentage points on two Figure 1 labels (recorded in
// EXPERIMENTS.md). The live measurement over generated traces is done by
// the Fig 1 experiment; this test pins the static calibration.
func TestFigure1Ratios(t *testing.T) {
	l := NewLayout()
	n := func(name string) float64 { return float64(l.Routine(name).NBlocks) }

	// Footprints along the probe call path (lock fast path = 95 of 120
	// blocks is exercised on the grant path).
	lock := 95.0
	traverse := n(RTraverse) + n(RBufFind) + n(RLatch) + lock
	lookup := n(RLookup) + traverse
	findKey := n(RFindKey) + lookup

	// Update tuple.
	pin := n(RPinRecord) + n(RBufFind) + n(RLatch)
	updPage := n(RUpdatePage) + n(RLogInsert)
	upd := n(RUpdateAPI) + lock + n(RPinRecord) + n(RBufFind) + n(RLatch) + n(RUpdatePage) + n(RLogInsert)

	// Insert tuple dashed paths.
	cr := n(RCreateRecord) + n(RBufFind) + n(RLatch) + n(RLogInsert) + n(RAllocatePage)
	cie := n(RCreateIndexEntry) + n(RIndexDescent) + n(RLogInsert) + n(RBtreeSMO)

	checks := []struct {
		name      string
		got       float64
		want      float64
		tolerance float64
	}{
		{"lookup/find_key", lookup / findKey, 0.73, 0.05},
		{"traverse/lookup", traverse / lookup, 0.71, 0.05},
		{"lock/traverse", lock / traverse, 0.33, 0.07}, // deliberate: see doc comment
		{"pin/update", pin / upd, 0.40, 0.05},          // paper: 0.46; deliberate
		{"update_page/update", updPage / upd, 0.40, 0.05},
		{"allocate_page/create_record", n(RAllocatePage) / cr, 0.47, 0.05},
		{"smo/create_index_entry", n(RBtreeSMO) / cie, 0.65, 0.07},
	}
	for _, c := range checks {
		if diff := c.got - c.want; diff > c.tolerance || diff < -c.tolerance {
			t.Errorf("%s = %.3f, want %.2f ± %.2f", c.name, c.got, c.want, c.tolerance)
		}
	}
}
