// Package codemap defines the synthetic instruction layout of the storage
// manager — the substrate behind the Figure 1 footprint breakdown and the
// Figure 2 overlap study.
//
// The paper collects real x86 instruction traces with Pin; a Go reproduction
// cannot (DESIGN.md Section 2). Instead, every storage-manager routine owns a
// contiguous range of 64-byte instruction blocks, and executing the routine
// emits fetches from that range. The block counts are calibrated so that the
// per-routine footprint percentages of Figure 1 hold, and the total layout
// size lands inside the paper's 128KB–256KB Shore-MT instruction footprint
// (Section 4.6).
//
// What is synthetic is only the mapping "routine → code bytes". Which
// routines execute, in which order, with which branch paths and loop trip
// counts, is decided by the real storage-manager control flow in package
// storage — e.g. the allocate-page path runs only when a data page actually
// fills, so its blocks are rare across instances exactly as in Figure 2.
package codemap
