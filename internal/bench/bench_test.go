package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"addict/internal/core"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/trace"
	"addict/internal/workload"
)

// guardInput builds the small replay input the zero-alloc guards and the
// replay benchmarks share.
func guardInput(tb testing.TB) (sched.Config, *trace.Set) {
	tb.Helper()
	w := workload.NewTPCC(11, 0.05)
	profSet := workload.GenerateSet(w, 40)
	evalSet := workload.GenerateSet(w, 40)
	cfg := sched.DefaultConfig(sim.Shallow())
	cfg.Profile = core.FindMigrationPoints(profSet, core.ProfileConfig{L1I: cfg.Machine.L1I})
	return cfg, evalSet
}

// TestSteadyStateZeroAlloc is the zero-alloc contract of the replay core:
// for every mechanism, the marginal allocation count per additional
// replayed event is exactly zero. Setup (executor construction, batching,
// per-thread scheduler state, first-use point-core sets) may allocate;
// the per-event loop may not — DoubleInterior keeps every per-run term
// identical so only per-event allocations survive the subtraction.
func TestSteadyStateZeroAlloc(t *testing.T) {
	cfg, evalSet := guardInput(t)
	for _, mech := range sched.AllMechanisms {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			per, err := SteadyStateAllocsPerEvent(mech, evalSet, cfg)
			if err != nil {
				t.Fatalf("measuring %s: %v", mech, err)
			}
			if per != 0 {
				t.Errorf("%s: %.6f steady-state allocs/event, want 0", mech, per)
			}
		})
	}
}

// TestDoubleInteriorStructure checks the guard's instrument: doubled
// traces must stay valid, keep their type, and roughly double the events.
func TestDoubleInteriorStructure(t *testing.T) {
	_, evalSet := guardInput(t)
	doubled := DoubleInterior(evalSet)
	if len(doubled.Traces) != len(evalSet.Traces) {
		t.Fatalf("trace count changed: %d -> %d", len(evalSet.Traces), len(doubled.Traces))
	}
	for i, d := range doubled.Traces {
		orig := evalSet.Traces[i]
		if d.Type != orig.Type {
			t.Fatalf("trace %d: type changed", i)
		}
		if want := 2 + 2*(len(orig.Events)-2); len(d.Events) != want {
			t.Fatalf("trace %d: %d events, want %d", i, len(d.Events), want)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("trace %d: doubled trace invalid: %v", i, err)
		}
	}
}

// TestRunProducesReport exercises the harness end to end at tiny sizes and
// sanity-checks the report invariants the BENCH_*.json trajectory relies
// on.
func TestRunProducesReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workloads = []string{"TPC-B"}
	cfg.Scale = 0.05
	cfg.ProfileTraces = 20
	cfg.EvalTraces = 20
	cfg.MinRuns = 1
	cfg.MinDuration = 1
	rep, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The grid (one workload × the paper's four) plus DefaultConfig's two
	// extra cells, which ride at the end in config order.
	want := len(sched.Mechanisms) + len(cfg.ExtraCells)
	if len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	for i, ec := range cfg.ExtraCells {
		c := rep.Cells[len(sched.Mechanisms)+i]
		if c.Workload != ec.Workload || c.Mechanism != string(ec.Mechanism) {
			t.Fatalf("extra cell %d is %s/%s, want %s/%s", i, c.Workload, c.Mechanism, ec.Workload, ec.Mechanism)
		}
	}
	for _, c := range rep.Cells {
		if c.Events == 0 || c.EventsPerSec <= 0 || c.NsPerEvent <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
		if c.SteadyAllocsPerEvent != 0 {
			t.Errorf("%s/%s: steady-state allocs %.6f, want 0", c.Workload, c.Mechanism, c.SteadyAllocsPerEvent)
		}
	}
	if rep.Replay.EventsPerSec <= 0 {
		t.Fatalf("degenerate replay summary %+v", rep.Replay)
	}

	// Round-trip the file layout, with and without a baseline.
	var buf bytes.Buffer
	noBase, err := Compare(nil, rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := noBase.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Current == nil || parsed.Current.Replay.Events != rep.Replay.Events {
		t.Fatalf("file round trip lost the report")
	}
	withBase, err := Compare(parsed.Current, rep)
	if err != nil {
		t.Fatal(err)
	}
	if withBase.SpeedupEventsPerSec <= 0 {
		t.Fatalf("speedup not computed: %+v", withBase.SpeedupEventsPerSec)
	}
	if len(withBase.SpeedupCells) != len(rep.Cells) {
		t.Fatalf("%d per-cell speedups, want %d", len(withBase.SpeedupCells), len(rep.Cells))
	}
	for _, s := range withBase.SpeedupCells {
		if s.Speedup <= 0 {
			t.Fatalf("degenerate per-cell speedup %+v", s)
		}
	}

	// A bare report (no current/baseline wrapper) must be accepted as a
	// baseline source too.
	var bareBuf bytes.Buffer
	enc := json.NewEncoder(&bareBuf)
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	parsedBare, err := ReadFile(&bareBuf)
	if err != nil {
		t.Fatal(err)
	}
	if parsedBare.Current == nil || parsedBare.Current.Replay.Events != rep.Replay.Events {
		t.Fatalf("bare report not accepted as baseline")
	}
}

// TestRunAcceptsSynthWorkloads: the harness must resolve encoded
// synthetic-workload names through the shared artifact cache, so synth
// scenarios can join the BENCH trajectory.
func TestRunAcceptsSynthWorkloads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workloads = []string{"synth:uniform-ro"}
	cfg.Mechanisms = []sched.Mechanism{sched.Baseline, sched.ADDICT}
	cfg.ExtraCells = nil
	cfg.Scale = 0.02
	cfg.ProfileTraces = 20
	cfg.EvalTraces = 20
	cfg.MinRuns = 1
	cfg.MinDuration = 1
	rep, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Workload != "synth:uniform-ro" || c.Events == 0 || c.EventsPerSec <= 0 {
			t.Fatalf("degenerate synth cell %+v", c)
		}
	}

	cfg.Workloads = []string{"synth:no-such-preset"}
	if _, err := Run(cfg, nil); err == nil {
		t.Error("unknown synth workload accepted")
	}
}

// BenchmarkReplay measures the full replay path (executor construction
// plus event loop) for the Baseline mechanism — the headline
// events-per-second number.
func BenchmarkReplay(b *testing.B) {
	cfg, evalSet := guardInput(b)
	events := setEvents(evalSet)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(sched.Baseline, evalSet, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events), "events/op")
}

// benchMechanism measures one mechanism's replay.
func benchMechanism(b *testing.B, mech sched.Mechanism) {
	cfg, evalSet := guardInput(b)
	events := setEvents(evalSet)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(mech, evalSet, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events), "events/op")
}

func BenchmarkSchedBaseline(b *testing.B) { benchMechanism(b, sched.Baseline) }
func BenchmarkSchedSTREX(b *testing.B)    { benchMechanism(b, sched.STREX) }
func BenchmarkSchedSLICC(b *testing.B)    { benchMechanism(b, sched.SLICC) }
func BenchmarkSchedADDICT(b *testing.B)   { benchMechanism(b, sched.ADDICT) }
func BenchmarkSchedHTMSPEC(b *testing.B)  { benchMechanism(b, sched.HTMSPEC) }
func BenchmarkSchedCHAIN(b *testing.B)    { benchMechanism(b, sched.CHAIN) }
