// The per-cell, machine-independent regression gate. The paper's entire
// contribution is a per-mechanism, per-workload comparison, so the gate
// judges every (workload × mechanism) cell instead of one events-weighted
// aggregate (where a 2x win on a heavy cell can mask a 50% regression on a
// light one), and it judges machine-independent ratios: each cell's
// events/sec is first normalized by the same report's Baseline-mechanism
// cell on the same workload — the paper's own in-run-reference trick —
// so a runner that is uniformly k× faster multiplies numerator and
// denominator alike and k cancels out of the gated ratio.

package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"addict/internal/sched"
)

// ReferenceMechanism is the in-run normalization reference: every cell's
// events/sec is divided by this mechanism's cell on the same workload in
// the same report. Both gated reports must carry it for every workload.
const ReferenceMechanism = string(sched.Baseline)

// GateConfig scopes one gate evaluation. The zero value disables both
// checks; Gate requires at least one to be enabled.
type GateConfig struct {
	// MaxCellRegress is the per-cell budget on the *normalized* ratio: a
	// cell fails when current_norm/baseline_norm < 1-MaxCellRegress. This
	// is the primary, machine-independent check. 0 disables it.
	MaxCellRegress float64
	// MaxRegress is the budget on the aggregate events/sec speedup — the
	// pre-gate check, kept as a secondary signal. It compares absolute
	// throughput across the two recording machines, so part of its budget
	// absorbs machine-speed variance; a uniform slowdown of every
	// mechanism (which normalized ratios cannot see) only trips here.
	// 0 disables it.
	MaxRegress float64
	// MaxAllocRegress is the per-cell growth budget on the allocation
	// trajectory: a cell fails when its allocs/event exceed
	// baseline*(1+MaxAllocRegress)+0.5 or its bytes/event exceed
	// baseline*(1+MaxAllocRegress)+64. Allocation counts come from the Go
	// allocator, not the clock, so they are machine-independent without
	// normalization; the additive slack keeps a near-zero baseline (an
	// allocation-free cell) from demanding exact equality forever while
	// still pinning it near zero. Cells whose baseline recorded no
	// allocation metrics (pre-trajectory BENCH files) are skipped rather
	// than judged against a fabricated zero. 0 disables it.
	MaxAllocRegress float64
}

// Additive slack on the alloc ceilings: multiplicative budgets alone make
// a zero-alloc baseline an impossible bar (0*(1+r) = 0 forever), and both
// metrics jitter by a few setup allocations between runs.
const (
	allocSlackPerEvent = 0.5
	bytesSlackPerEvent = 64
)

// GateCell is one row of the gate's verdict table.
type GateCell struct {
	Workload  string `json:"workload"`
	Mechanism string `json:"mechanism"`
	// BaselineEventsPerSec/CurrentEventsPerSec are the raw measurements;
	// RawSpeedup is their machine-dependent ratio.
	BaselineEventsPerSec float64 `json:"baseline_events_per_sec"`
	CurrentEventsPerSec  float64 `json:"current_events_per_sec"`
	RawSpeedup           float64 `json:"raw_speedup"`
	// BaselineNorm/CurrentNorm are each report's events/sec divided by the
	// same report's ReferenceMechanism cell on the same workload;
	// NormRatio is CurrentNorm/BaselineNorm — the machine-independent
	// quantity the per-cell floor judges. Reference cells normalize to 1
	// by construction and can never fail the per-cell check.
	BaselineNorm float64 `json:"baseline_norm"`
	CurrentNorm  float64 `json:"current_norm"`
	NormRatio    float64 `json:"norm_ratio"`
	// Floor is 1-MaxCellRegress (0 when the per-cell check is disabled).
	Floor float64 `json:"floor,omitempty"`
	Pass  bool    `json:"pass"`
	// The allocation trajectory (populated when the alloc check is
	// enabled and the baseline recorded allocation metrics). AllocPass is
	// true whenever the alloc check did not fail — including when it was
	// disabled or skipped.
	BaselineAllocsPerEvent float64 `json:"baseline_allocs_per_event,omitempty"`
	CurrentAllocsPerEvent  float64 `json:"current_allocs_per_event,omitempty"`
	BaselineBytesPerEvent  float64 `json:"baseline_bytes_per_event,omitempty"`
	CurrentBytesPerEvent   float64 `json:"current_bytes_per_event,omitempty"`
	AllocPass              bool    `json:"alloc_pass"`
}

// Verdict is one gate evaluation: the per-cell table plus the aggregate
// check, in the current report's deterministic cell order — two gate runs
// over the same pair of reports produce byte-identical verdicts.
type Verdict struct {
	ReferenceMechanism string  `json:"reference_mechanism"`
	CellFloor          float64 `json:"cell_floor,omitempty"`
	AggregateFloor     float64 `json:"aggregate_floor,omitempty"`
	// AllocCeiling is 1+MaxAllocRegress (0 when the alloc check is
	// disabled); every cell's allocs/event and bytes/event must stay
	// under baseline*AllocCeiling plus a small additive slack.
	AllocCeiling float64    `json:"alloc_ceiling,omitempty"`
	Cells        []GateCell `json:"cells"`
	// Worst* name the cell with the smallest normalized ratio — the cell
	// the gate fails on when it fails.
	WorstWorkload  string  `json:"worst_workload"`
	WorstMechanism string  `json:"worst_mechanism"`
	WorstNormRatio float64 `json:"worst_norm_ratio"`
	// AggregateSpeedup is the events-weighted raw speedup (the old gate's
	// only signal, now secondary).
	AggregateSpeedup float64 `json:"aggregate_speedup"`
	AggregatePass    bool    `json:"aggregate_pass"`
	Pass             bool    `json:"pass"`
}

// cellKey identifies one cell across reports.
type cellKey struct{ workload, mechanism string }

// cellIndex maps a report's cells by (workload, mechanism).
func cellIndex(r *Report) map[cellKey]Cell {
	idx := make(map[cellKey]Cell, len(r.Cells))
	for _, c := range r.Cells {
		idx[cellKey{c.Workload, c.Mechanism}] = c
	}
	return idx
}

// Comparable reports whether two reports measured the same thing, i.e.
// whether any ratio between them means anything: same seed, scale, and
// trace windows; same measurement bounds (when both recorded them — v1
// baselines carry none and are accepted as "bounds unrecorded"); and the
// same (workload × mechanism) cell set. A nil error means comparable.
func Comparable(baseline, current *Report) error {
	if baseline == nil || current == nil {
		return fmt.Errorf("bench: not comparable: nil report")
	}
	if baseline.Seed != current.Seed || baseline.Scale != current.Scale ||
		baseline.ProfileTraces != current.ProfileTraces || baseline.EvalTraces != current.EvalTraces {
		return fmt.Errorf("bench: not comparable: baseline measured (seed=%d scale=%v traces=%d/%d), current (seed=%d scale=%v traces=%d/%d)",
			baseline.Seed, baseline.Scale, baseline.ProfileTraces, baseline.EvalTraces,
			current.Seed, current.Scale, current.ProfileTraces, current.EvalTraces)
	}
	if baseline.MinRuns != 0 && baseline.MinRuns != current.MinRuns {
		return fmt.Errorf("bench: not comparable: baseline cells measured with min %d runs, current with %d",
			baseline.MinRuns, current.MinRuns)
	}
	if baseline.MinDuration != 0 && baseline.MinDuration != current.MinDuration {
		return fmt.Errorf("bench: not comparable: baseline cells measured for min %v, current for %v",
			baseline.MinDuration, current.MinDuration)
	}
	return sameCellSets(baseline, current)
}

// sameCellSets refuses baseline/current pairs whose (workload × mechanism)
// sets differ — aggregates over different cell sets (BENCH_3's TPC-only
// cells versus a TPC+synth run) are not comparable, and a per-cell gate
// has nothing to pair the odd cells with.
func sameCellSets(baseline, current *Report) error {
	seen := func(r *Report, label string) (map[cellKey]bool, error) {
		set := make(map[cellKey]bool, len(r.Cells))
		for _, c := range r.Cells {
			k := cellKey{c.Workload, c.Mechanism}
			if set[k] {
				return nil, fmt.Errorf("bench: %s report carries duplicate cell %s/%s", label, c.Workload, c.Mechanism)
			}
			set[k] = true
		}
		return set, nil
	}
	b, err := seen(baseline, "baseline")
	if err != nil {
		return err
	}
	c, err := seen(current, "current")
	if err != nil {
		return err
	}
	var missing, extra []string
	for k := range b {
		if !c[k] {
			missing = append(missing, k.workload+"/"+k.mechanism)
		}
	}
	for k := range c {
		if !b[k] {
			extra = append(extra, k.workload+"/"+k.mechanism)
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		return nil
	}
	sort.Strings(missing)
	sort.Strings(extra)
	var parts []string
	if len(missing) > 0 {
		parts = append(parts, fmt.Sprintf("baseline-only cells: %s", strings.Join(missing, ", ")))
	}
	if len(extra) > 0 {
		parts = append(parts, fmt.Sprintf("current-only cells: %s", strings.Join(extra, ", ")))
	}
	return fmt.Errorf("bench: not comparable: cell sets differ (%s)", strings.Join(parts, "; "))
}

// referenceCells maps each workload to its ReferenceMechanism events/sec;
// a workload without a positive reference cell makes normalization — and
// therefore the gate — impossible.
func referenceCells(r *Report, label string) (map[string]float64, error) {
	refs := make(map[string]float64)
	for _, c := range r.Cells {
		if c.Mechanism == ReferenceMechanism {
			refs[c.Workload] = c.EventsPerSec
		}
	}
	for _, c := range r.Cells {
		if refs[c.Workload] <= 0 {
			return nil, fmt.Errorf("bench: %s report has no %s reference cell for workload %s — the normalized gate needs the %s mechanism in every gated run",
				label, ReferenceMechanism, c.Workload, ReferenceMechanism)
		}
	}
	return refs, nil
}

// Gate evaluates the per-cell regression gate between two reports. It
// returns an error when the pair cannot be judged at all — incomparable
// reports, a missing reference cell, or a config with no enabled check —
// and otherwise a Verdict whose Pass reflects every enabled check; the
// per-cell check fails on the worst cell's normalized ratio.
func Gate(baseline, current *Report, cfg GateConfig) (*Verdict, error) {
	if cfg.MaxCellRegress < 0 || cfg.MaxCellRegress >= 1 {
		return nil, fmt.Errorf("bench: gate: max cell regression %v outside [0, 1)", cfg.MaxCellRegress)
	}
	if cfg.MaxRegress < 0 || cfg.MaxRegress >= 1 {
		return nil, fmt.Errorf("bench: gate: max aggregate regression %v outside [0, 1)", cfg.MaxRegress)
	}
	if cfg.MaxAllocRegress < 0 {
		return nil, fmt.Errorf("bench: gate: max alloc regression %v negative", cfg.MaxAllocRegress)
	}
	if cfg.MaxCellRegress == 0 && cfg.MaxRegress == 0 && cfg.MaxAllocRegress == 0 {
		return nil, fmt.Errorf("bench: gate: no check enabled (all budgets zero)")
	}
	if err := Comparable(baseline, current); err != nil {
		return nil, err
	}
	baseRefs, err := referenceCells(baseline, "baseline")
	if err != nil {
		return nil, err
	}
	curRefs, err := referenceCells(current, "current")
	if err != nil {
		return nil, err
	}

	v := &Verdict{
		ReferenceMechanism: ReferenceMechanism,
		Pass:               true,
		AggregatePass:      true,
	}
	if cfg.MaxCellRegress > 0 {
		v.CellFloor = 1 - cfg.MaxCellRegress
	}
	if cfg.MaxRegress > 0 {
		v.AggregateFloor = 1 - cfg.MaxRegress
	}
	if cfg.MaxAllocRegress > 0 {
		v.AllocCeiling = 1 + cfg.MaxAllocRegress
	}

	base := cellIndex(baseline)
	for _, c := range current.Cells {
		b := base[cellKey{c.Workload, c.Mechanism}]
		if b.EventsPerSec <= 0 || c.EventsPerSec <= 0 {
			return nil, fmt.Errorf("bench: gate: cell %s/%s carries no events/sec", c.Workload, c.Mechanism)
		}
		gc := GateCell{
			Workload:             c.Workload,
			Mechanism:            c.Mechanism,
			BaselineEventsPerSec: b.EventsPerSec,
			CurrentEventsPerSec:  c.EventsPerSec,
			RawSpeedup:           c.EventsPerSec / b.EventsPerSec,
			BaselineNorm:         b.EventsPerSec / baseRefs[c.Workload],
			CurrentNorm:          c.EventsPerSec / curRefs[c.Workload],
			Floor:                v.CellFloor,
			Pass:                 true,
			AllocPass:            true,
		}
		gc.NormRatio = gc.CurrentNorm / gc.BaselineNorm
		if v.CellFloor > 0 && gc.NormRatio < v.CellFloor {
			gc.Pass = false
			v.Pass = false
		}
		// The alloc trajectory floor. A baseline cell with neither metric
		// recorded predates the trajectory and is skipped — zero there
		// means "unmeasured", and judging against it would demand an
		// allocation-free current run no baseline ever promised.
		if v.AllocCeiling > 0 && (b.AllocsPerEvent > 0 || b.BytesPerEvent > 0) {
			gc.BaselineAllocsPerEvent = b.AllocsPerEvent
			gc.CurrentAllocsPerEvent = c.AllocsPerEvent
			gc.BaselineBytesPerEvent = b.BytesPerEvent
			gc.CurrentBytesPerEvent = c.BytesPerEvent
			if c.AllocsPerEvent > b.AllocsPerEvent*v.AllocCeiling+allocSlackPerEvent ||
				c.BytesPerEvent > b.BytesPerEvent*v.AllocCeiling+bytesSlackPerEvent {
				gc.AllocPass = false
				v.Pass = false
			}
		}
		if v.WorstWorkload == "" || gc.NormRatio < v.WorstNormRatio {
			v.WorstWorkload = gc.Workload
			v.WorstMechanism = gc.Mechanism
			v.WorstNormRatio = gc.NormRatio
		}
		v.Cells = append(v.Cells, gc)
	}

	if baseline.Replay.EventsPerSec <= 0 {
		return nil, fmt.Errorf("bench: gate: baseline carries no aggregate events/sec")
	}
	v.AggregateSpeedup = current.Replay.EventsPerSec / baseline.Replay.EventsPerSec
	if v.AggregateFloor > 0 && v.AggregateSpeedup < v.AggregateFloor {
		v.AggregatePass = false
		v.Pass = false
	}
	return v, nil
}

// ApplyGate evaluates the gate over the file's baseline/current pair and
// records the verdict in the file, so the emitted BENCH_*.json carries the
// judgment it was produced under.
func (f *File) ApplyGate(cfg GateConfig) (*Verdict, error) {
	if f.Baseline == nil {
		return nil, fmt.Errorf("bench: gate: file carries no baseline to gate against")
	}
	v, err := Gate(f.Baseline, f.Current, cfg)
	if err != nil {
		return nil, err
	}
	f.Gate = v
	return v, nil
}

// Summary is the verdict in one line — the shape a CI failure message or
// log grep wants.
func (v *Verdict) Summary() string {
	status := "PASS"
	if !v.Pass {
		status = "FAIL"
	}
	s := fmt.Sprintf("gate %s: worst cell %s/%s %.3fx normalized",
		status, v.WorstWorkload, v.WorstMechanism, v.WorstNormRatio)
	if v.CellFloor > 0 {
		s += fmt.Sprintf(" (floor %.3fx)", v.CellFloor)
	}
	s += fmt.Sprintf(", aggregate %.3fx", v.AggregateSpeedup)
	if v.AggregateFloor > 0 {
		s += fmt.Sprintf(" (floor %.3fx)", v.AggregateFloor)
	}
	if v.AllocCeiling > 0 {
		var failing []string
		for _, c := range v.Cells {
			if !c.AllocPass {
				failing = append(failing, fmt.Sprintf("%s/%s %.1f->%.1f allocs/ev %.0f->%.0f B/ev",
					c.Workload, c.Mechanism,
					c.BaselineAllocsPerEvent, c.CurrentAllocsPerEvent,
					c.BaselineBytesPerEvent, c.CurrentBytesPerEvent))
			}
		}
		if len(failing) == 0 {
			s += fmt.Sprintf(", allocs within %.2fx", v.AllocCeiling)
		} else {
			s += fmt.Sprintf(", alloc regress over %.2fx ceiling: %s", v.AllocCeiling, strings.Join(failing, "; "))
		}
	}
	return s
}

// WriteTable renders the per-cell verdict table — raw speedup, normalized
// ratio, floor, pass/fail per cell — in the verdict's (deterministic) cell
// order, followed by the worst-cell and aggregate lines.
func (v *Verdict) WriteTable(w io.Writer) error {
	wl := len("workload")
	ml := len("mechanism")
	for _, c := range v.Cells {
		if len(c.Workload) > wl {
			wl = len(c.Workload)
		}
		if len(c.Mechanism) > ml {
			ml = len(c.Mechanism)
		}
	}
	if _, err := fmt.Fprintf(w, "per-cell gate (normalized by the %s mechanism per workload; raw speedups are machine-dependent):\n",
		v.ReferenceMechanism); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-*s  %-*s  %9s  %9s  %7s  %s\n",
		wl, "workload", ml, "mechanism", "raw", "norm", "floor", "verdict"); err != nil {
		return err
	}
	for _, c := range v.Cells {
		floor := "-"
		if c.Floor > 0 {
			floor = fmt.Sprintf("%.3fx", c.Floor)
		}
		verdict := "pass"
		switch {
		case !c.Pass && !c.AllocPass:
			verdict = "FAIL+alloc"
		case !c.Pass:
			verdict = "FAIL"
		case !c.AllocPass:
			verdict = "ALLOC-FAIL"
		}
		if _, err := fmt.Fprintf(w, "  %-*s  %-*s  %8.3fx  %8.3fx  %7s  %s\n",
			wl, c.Workload, ml, c.Mechanism, c.RawSpeedup, c.NormRatio, floor, verdict); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s\n", v.Summary())
	return err
}
