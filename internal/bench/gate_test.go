package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// gateReport builds a synthetic report whose cells carry the given
// events/sec, in (workload, mechanism) grid order, with a consistent
// events-weighted aggregate (equal event weight per cell).
func gateReport(workloads, mechanisms []string, eps func(w, m string) float64) *Report {
	rep := &Report{
		Schema:        schemaID,
		Seed:          42,
		Scale:         0.5,
		ProfileTraces: 250,
		EvalTraces:    250,
		MinRuns:       2,
		MinDuration:   300 * time.Millisecond,
	}
	const events = 1_000_000
	for _, w := range workloads {
		for _, m := range mechanisms {
			e := eps(w, m)
			rep.Cells = append(rep.Cells, Cell{
				Workload:     w,
				Mechanism:    m,
				Events:       events,
				Runs:         2,
				EventsPerSec: e,
				NsPerEvent:   1e9 / e,
			})
			rep.Replay.Events += 2 * events
			rep.Replay.Seconds += 2 * events / e
		}
	}
	rep.Replay.EventsPerSec = float64(rep.Replay.Events) / rep.Replay.Seconds
	rep.Replay.NsPerEvent = rep.Replay.Seconds * 1e9 / float64(rep.Replay.Events)
	return rep
}

var (
	gateWorkloads  = []string{"TPC-B", "synth:uniform-ro"}
	gateMechanisms = []string{"Baseline", "ADDICT"}
)

// TestGateCatchesMaskedCellRegression is the acceptance scenario: one cell
// regresses 40% while every other cell doubles, so the events-weighted
// aggregate *improves* — the old aggregate-only check passes — yet the
// per-cell gate must fail, on exactly that cell.
func TestGateCatchesMaskedCellRegression(t *testing.T) {
	base := gateReport(gateWorkloads, gateMechanisms, func(w, m string) float64 { return 1e6 })
	cur := gateReport(gateWorkloads, gateMechanisms, func(w, m string) float64 {
		if w == "synth:uniform-ro" && m == "ADDICT" {
			return 0.6e6 // the masked regression: 40% down
		}
		return 2e6
	})

	// The old gate's only signal: the aggregate clears a 15% budget.
	f, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if f.SpeedupEventsPerSec < 1-0.15 {
		t.Fatalf("aggregate speedup %.3fx should mask the cell regression in this scenario", f.SpeedupEventsPerSec)
	}

	v, err := f.ApplyGate(GateConfig{MaxCellRegress: 0.15, MaxRegress: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("per-cell gate passed a 40%% single-cell regression: %s", v.Summary())
	}
	if !v.AggregatePass {
		t.Errorf("aggregate check should pass (it is the masking bug): %s", v.Summary())
	}
	if v.WorstWorkload != "synth:uniform-ro" || v.WorstMechanism != "ADDICT" {
		t.Errorf("worst cell %s/%s, want synth:uniform-ro/ADDICT", v.WorstWorkload, v.WorstMechanism)
	}
	// Normalized: current norm = 0.6/2 = 0.3 against baseline norm 1.
	if v.WorstNormRatio > 0.31 || v.WorstNormRatio < 0.29 {
		t.Errorf("worst normalized ratio %.3f, want ~0.30", v.WorstNormRatio)
	}
	failing := 0
	for _, c := range v.Cells {
		if !c.Pass {
			failing++
			if c.Workload != "synth:uniform-ro" || c.Mechanism != "ADDICT" {
				t.Errorf("unexpected failing cell %s/%s", c.Workload, c.Mechanism)
			}
		}
	}
	if failing != 1 {
		t.Errorf("%d failing cells, want exactly 1", failing)
	}
	if f.Gate == nil {
		t.Error("ApplyGate did not record the verdict in the file")
	}
}

// TestGateNormalizedRatioMachineInvariance: scaling every cell of the
// current run by a uniform machine-speed factor must leave every
// normalized ratio exactly 1 — machine speed divides out — while the raw
// speedups carry the factor.
func TestGateNormalizedRatioMachineInvariance(t *testing.T) {
	base := gateReport(gateWorkloads, gateMechanisms, func(w, m string) float64 {
		// Unequal cells, so the normalization is non-trivial.
		if m == "ADDICT" {
			return 1.5e6
		}
		return 1e6
	})
	const machineSpeed = 4 // power of two: the scaling is float-exact
	cur := gateReport(gateWorkloads, gateMechanisms, func(w, m string) float64 {
		if m == "ADDICT" {
			return machineSpeed * 1.5e6
		}
		return machineSpeed * 1e6
	})
	v, err := Gate(base, cur, GateConfig{MaxCellRegress: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("uniform %dx machine scaling tripped the normalized gate: %s", machineSpeed, v.Summary())
	}
	for _, c := range v.Cells {
		if c.NormRatio != 1 {
			t.Errorf("%s/%s: normalized ratio %v under uniform scaling, want exactly 1", c.Workload, c.Mechanism, c.NormRatio)
		}
		if c.RawSpeedup != machineSpeed {
			t.Errorf("%s/%s: raw speedup %v, want %d", c.Workload, c.Mechanism, c.RawSpeedup, machineSpeed)
		}
	}

	// The same scaling downward trips only the (machine-dependent)
	// aggregate check, never the normalized cells.
	slow := gateReport(gateWorkloads, gateMechanisms, func(w, m string) float64 {
		if m == "ADDICT" {
			return 1.5e6 / machineSpeed
		}
		return 1e6 / machineSpeed
	})
	v, err = Gate(base, slow, GateConfig{MaxCellRegress: 0.01, MaxRegress: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass || v.AggregatePass {
		t.Errorf("uniform slowdown must trip the aggregate check: %s", v.Summary())
	}
	for _, c := range v.Cells {
		if !c.Pass {
			t.Errorf("%s/%s failed the normalized check under a uniform slowdown", c.Workload, c.Mechanism)
		}
	}
}

// withAllocs stamps every cell of a gate report with allocation metrics.
func withAllocs(r *Report, allocs func(w, m string) (perEvent, bytesPerEvent float64)) *Report {
	for i := range r.Cells {
		c := &r.Cells[i]
		c.AllocsPerEvent, c.BytesPerEvent = allocs(c.Workload, c.Mechanism)
	}
	return r
}

// TestGateAllocTrajectoryFloor: the allocation-metric trajectory check —
// a cell whose allocs/event or bytes/event grow past
// baseline*(1+MaxAllocRegress)+slack must fail the gate even when its
// throughput is fine, and growth inside the budget (or inside the additive
// slack, for a zero-alloc baseline) must pass.
func TestGateAllocTrajectoryFloor(t *testing.T) {
	flat := func(w, m string) float64 { return 1e6 }
	base := withAllocs(gateReport(gateWorkloads, gateMechanisms, flat),
		func(w, m string) (float64, float64) { return 10, 800 })
	cfg := GateConfig{MaxCellRegress: 0.15, MaxAllocRegress: 0.5}

	// Identical allocation behavior passes, and the verdict records it.
	cur := withAllocs(gateReport(gateWorkloads, gateMechanisms, flat),
		func(w, m string) (float64, float64) { return 10, 800 })
	v, err := Gate(base, cur, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("unchanged alloc trajectory failed: %s", v.Summary())
	}
	if v.AllocCeiling != 1.5 {
		t.Errorf("alloc ceiling %v, want 1.5", v.AllocCeiling)
	}
	for _, c := range v.Cells {
		if !c.AllocPass || c.BaselineAllocsPerEvent != 10 || c.CurrentBytesPerEvent != 800 {
			t.Errorf("%s/%s: alloc fields not recorded: %+v", c.Workload, c.Mechanism, c)
		}
	}

	// One cell's allocs/event blow past the ceiling (10*1.5+0.5 = 15.5)
	// while its throughput is unchanged: the gate must fail on exactly
	// that cell, via AllocPass, with the throughput check still passing.
	cur = withAllocs(gateReport(gateWorkloads, gateMechanisms, flat),
		func(w, m string) (float64, float64) {
			if w == "TPC-B" && m == "ADDICT" {
				return 16, 800
			}
			return 10, 800
		})
	v, err = Gate(base, cur, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("60%% allocs/event growth passed a 50%% budget: %s", v.Summary())
	}
	for _, c := range v.Cells {
		wantFail := c.Workload == "TPC-B" && c.Mechanism == "ADDICT"
		if c.AllocPass == wantFail {
			t.Errorf("%s/%s: AllocPass=%v", c.Workload, c.Mechanism, c.AllocPass)
		}
		if !c.Pass {
			t.Errorf("%s/%s: throughput check failed on an alloc-only regression", c.Workload, c.Mechanism)
		}
	}
	if !strings.Contains(v.Summary(), "alloc regress") || !strings.Contains(v.Summary(), "TPC-B/ADDICT") {
		t.Errorf("summary does not name the alloc regression: %s", v.Summary())
	}

	// Bytes/event alone regressing (800*1.5+64 = 1264) fails the same way.
	cur = withAllocs(gateReport(gateWorkloads, gateMechanisms, flat),
		func(w, m string) (float64, float64) {
			if w == "TPC-B" && m == "Baseline" {
				return 10, 1300
			}
			return 10, 800
		})
	if v, err = Gate(base, cur, cfg); err != nil {
		t.Fatal(err)
	} else if v.Pass {
		t.Errorf("bytes/event regression passed: %s", v.Summary())
	}

	// A zero-alloc baseline pins the cell near zero: growth inside the
	// additive slack passes, growth past it fails — the slack keeps the
	// multiplicative budget from demanding exact zero forever without
	// letting allocations creep back in.
	zeroBase := withAllocs(gateReport(gateWorkloads, gateMechanisms, flat),
		func(w, m string) (float64, float64) { return 0, 100 })
	within := withAllocs(gateReport(gateWorkloads, gateMechanisms, flat),
		func(w, m string) (float64, float64) { return 0.4, 100 })
	if v, err = Gate(zeroBase, within, cfg); err != nil {
		t.Fatal(err)
	} else if !v.Pass {
		t.Errorf("growth inside the additive slack failed: %s", v.Summary())
	}
	crept := withAllocs(gateReport(gateWorkloads, gateMechanisms, flat),
		func(w, m string) (float64, float64) { return 0.6, 100 })
	if v, err = Gate(zeroBase, crept, cfg); err != nil {
		t.Fatal(err)
	} else if v.Pass {
		t.Errorf("allocations crept past the slack on a zero-alloc baseline: %s", v.Summary())
	}

	// A baseline that never recorded allocation metrics (both zero —
	// pre-trajectory BENCH files) is skipped, not judged against zero.
	unrecorded := gateReport(gateWorkloads, gateMechanisms, flat)
	heavy := withAllocs(gateReport(gateWorkloads, gateMechanisms, flat),
		func(w, m string) (float64, float64) { return 50, 4000 })
	if v, err = Gate(unrecorded, heavy, cfg); err != nil {
		t.Fatal(err)
	} else if !v.Pass {
		t.Errorf("unrecorded baseline was judged against zero: %s", v.Summary())
	}

	// The alloc check alone is an enabled check; a negative budget refuses.
	if _, err := Gate(base, base, GateConfig{MaxAllocRegress: 0.5}); err != nil {
		t.Errorf("alloc-only gate refused: %v", err)
	}
	if _, err := Gate(base, base, GateConfig{MaxAllocRegress: -0.1}); err == nil {
		t.Error("negative alloc budget accepted")
	}
}

// TestGateVerdictByteStable: gating the same two artifacts twice must
// produce byte-identical verdicts (JSON and rendered table) — the gate is
// a pure function of its inputs.
func TestGateVerdictByteStable(t *testing.T) {
	base := withAllocs(gateReport(gateWorkloads, gateMechanisms, func(w, m string) float64 {
		return 1e6 + float64(len(w)+len(m))*1e4
	}), func(w, m string) (float64, float64) { return float64(len(w)), float64(64 * len(m)) })
	cur := withAllocs(gateReport(gateWorkloads, gateMechanisms, func(w, m string) float64 {
		return 1.1e6 + float64(len(w)*len(m))*1e4
	}), func(w, m string) (float64, float64) { return float64(len(m)), float64(64 * len(w)) })
	cfg := GateConfig{MaxCellRegress: 0.25, MaxRegress: 0.5, MaxAllocRegress: 0.5}
	render := func() ([]byte, []byte) {
		v, err := Gate(base, cur, cfg)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var tbl bytes.Buffer
		if err := v.WriteTable(&tbl); err != nil {
			t.Fatal(err)
		}
		return js, tbl.Bytes()
	}
	js1, tbl1 := render()
	js2, tbl2 := render()
	if !bytes.Equal(js1, js2) {
		t.Errorf("verdict JSON not byte-stable:\n%s\nvs\n%s", js1, js2)
	}
	if !bytes.Equal(tbl1, tbl2) {
		t.Errorf("verdict table not byte-stable:\n%s\nvs\n%s", tbl1, tbl2)
	}
}

// TestCompareRefusesMismatchedCellSets: pairing reports over different
// workload sets (the BENCH_3-vs-BENCH_5 trap) must refuse, naming the odd
// cells, for Compare and Gate alike.
func TestCompareRefusesMismatchedCellSets(t *testing.T) {
	flat := func(w, m string) float64 { return 1e6 }
	tpcOnly := gateReport([]string{"TPC-B"}, gateMechanisms, flat)
	withSynth := gateReport(gateWorkloads, gateMechanisms, flat)

	if _, err := Compare(tpcOnly, withSynth); err == nil {
		t.Error("Compare accepted reports over different workload sets")
	} else if !strings.Contains(err.Error(), "not comparable") || !strings.Contains(err.Error(), "synth:uniform-ro") {
		t.Errorf("mismatch error does not name the odd cells: %v", err)
	}
	if _, err := Gate(tpcOnly, withSynth, GateConfig{MaxCellRegress: 0.15}); err == nil {
		t.Error("Gate accepted reports over different workload sets")
	}
	// Same workloads, different mechanism sets is the same bug.
	fewMechs := gateReport(gateWorkloads, []string{"Baseline"}, flat)
	if _, err := Compare(fewMechs, withSynth); err == nil {
		t.Error("Compare accepted reports over different mechanism sets")
	}
}

// TestGateRefusesPrePR9Baseline models the BENCH_9 trajectory break: the
// default cell set gained two extra cells (the speculative mechanisms on
// the contended synthetic regime), so a baseline recorded from the older
// grid-only configuration must be refused — by Compare and by Gate — with
// the odd cells named, instead of silently judging a different aggregate.
func TestGateRefusesPrePR9Baseline(t *testing.T) {
	flat := func(w, m string) float64 { return 1e6 }
	old := gateReport(gateWorkloads, gateMechanisms, flat) // pre-PR-9 shape
	cur := gateReport(gateWorkloads, gateMechanisms, flat)
	for _, m := range []string{"HTMSPEC", "CHAIN"} {
		cur.Cells = append(cur.Cells, Cell{
			Workload: "synth:zipf-hot-rw", Mechanism: m,
			Events: 1_000_000, Runs: 2, EventsPerSec: 1e6, NsPerEvent: 1e3,
		})
	}
	if err := Comparable(old, cur); err == nil {
		t.Error("Comparable accepted a baseline lacking the extra cells")
	} else if !strings.Contains(err.Error(), "HTMSPEC") || !strings.Contains(err.Error(), "CHAIN") {
		t.Errorf("refusal does not name the missing cells: %v", err)
	}
	if _, err := Compare(old, cur); err == nil {
		t.Error("Compare accepted a baseline lacking the extra cells")
	}
	if _, err := Gate(old, cur, GateConfig{MaxCellRegress: 0.15}); err == nil {
		t.Error("Gate accepted a baseline lacking the extra cells")
	}
}

// TestComparableMeasurementBounds: mismatched recorded bounds refuse, but
// a v1 baseline with no recorded bounds (zero) is accepted as unknown.
func TestComparableMeasurementBounds(t *testing.T) {
	flat := func(w, m string) float64 { return 1e6 }
	base := gateReport(gateWorkloads, gateMechanisms, flat)
	cur := gateReport(gateWorkloads, gateMechanisms, flat)

	cur.MinRuns = 5
	if err := Comparable(base, cur); err == nil || !strings.Contains(err.Error(), "runs") {
		t.Errorf("mismatched MinRuns accepted: %v", err)
	}
	cur.MinRuns = base.MinRuns
	cur.MinDuration = base.MinDuration * 2
	if err := Comparable(base, cur); err == nil || !strings.Contains(err.Error(), "min") {
		t.Errorf("mismatched MinDuration accepted: %v", err)
	}
	cur.MinDuration = base.MinDuration

	// A pre-v2 baseline records no bounds; zero means unknown, not zero.
	base.MinRuns, base.MinDuration = 0, 0
	if err := Comparable(base, cur); err != nil {
		t.Errorf("baseline without recorded bounds refused: %v", err)
	}
}

// TestGateNeedsReferenceCell: a run measured without the reference
// mechanism cannot be normalized and must refuse rather than fabricate
// ratios.
func TestGateNeedsReferenceCell(t *testing.T) {
	flat := func(w, m string) float64 { return 1e6 }
	base := gateReport(gateWorkloads, []string{"STREX", "ADDICT"}, flat)
	cur := gateReport(gateWorkloads, []string{"STREX", "ADDICT"}, flat)
	if _, err := Gate(base, cur, GateConfig{MaxCellRegress: 0.15}); err == nil {
		t.Error("Gate normalized without a Baseline reference cell")
	} else if !strings.Contains(err.Error(), ReferenceMechanism) {
		t.Errorf("refusal does not name the missing reference mechanism: %v", err)
	}
}

// TestGateRequiresEnabledCheck: a gate with both budgets zero judges
// nothing and must say so.
func TestGateRequiresEnabledCheck(t *testing.T) {
	flat := func(w, m string) float64 { return 1e6 }
	base := gateReport(gateWorkloads, gateMechanisms, flat)
	if _, err := Gate(base, base, GateConfig{}); err == nil {
		t.Error("gate with no enabled check accepted")
	}
	if _, err := Gate(base, base, GateConfig{MaxCellRegress: 1.5}); err == nil {
		t.Error("out-of-range cell budget accepted")
	}
}

// TestZeroSeedExpressible: seed 0 used to be swallowed by the zero-means-
// default sentinel; SeedSet makes it expressible while Config{} keeps the
// default.
func TestZeroSeedExpressible(t *testing.T) {
	if got := withDefaults(Config{}).Seed; got != 42 {
		t.Errorf("default seed %d, want 42", got)
	}
	if got := withDefaults(Config{SeedSet: true}).Seed; got != 0 {
		t.Errorf("explicit zero seed resolved to %d, want 0", got)
	}
	if got := withDefaults(Config{Seed: 7}).Seed; got != 7 {
		t.Errorf("non-zero seed resolved to %d, want 7", got)
	}
}

// TestReadFileBaselineOnly: a file carrying only a baseline used to fall
// through to the bare-report parse and report `unknown schema ""` — the
// error must say what is actually missing.
func TestReadFileBaselineOnly(t *testing.T) {
	rep := gateReport(gateWorkloads, gateMechanisms, func(w, m string) float64 { return 1e6 })
	data, err := json.Marshal(&File{Baseline: rep})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReadFile(bytes.NewReader(data))
	if err == nil {
		t.Fatal("baseline-only file accepted")
	}
	if !strings.Contains(err.Error(), "no current report") {
		t.Errorf("misleading error for baseline-only file: %v", err)
	}
	if strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("still the old misleading error: %v", err)
	}
}
