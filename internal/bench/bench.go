// Package bench is the replay-core benchmark harness: it measures replay
// throughput (events/sec, ns/event) and allocation behavior (allocs/event,
// steady-state allocs/event) for every scheduling mechanism × workload cell,
// and emits machine-readable reports so each PR leaves a performance
// trajectory (BENCH_*.json) the next one must beat. cmd/addict-bench -json
// is the command-line entry point; Compare pairs a current report with a
// recorded baseline and computes aggregate and per-cell speedups, refusing
// pairs that did not measure the same thing; Gate turns the pair into a
// per-cell, machine-independent regression verdict (see gate.go).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"addict/internal/core"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/sweep"
	"addict/internal/trace"
)

// Config scopes one harness run.
type Config struct {
	// Workloads are the benchmark names to measure (default: TPC-B/C/E).
	// Encoded synthetic workloads ("synth:<preset>[+z<theta>][+w<frac>]
	// [+h<keys>]", see internal/workload/synth) are accepted too — the
	// artifact cache resolves both name spaces through the same sharded
	// recipe.
	Workloads []string
	// Mechanisms are the scheduling mechanisms to measure (default: all).
	Mechanisms []sched.Mechanism
	// Seed/Scale/ProfileTraces/EvalTraces mirror exp.Params (defaults:
	// the quick evaluation sizes, so cells are comparable across PRs).
	//
	// A zero Seed selects the default (42) unless SeedSet marks the zero
	// intentional, so seed 0 stays expressible — the other zero values
	// (Scale, trace counts) have no meaningful zero and always default.
	Seed          int64
	SeedSet       bool
	Scale         float64
	ProfileTraces int
	EvalTraces    int
	// Machine is the simulated hardware (default: the Table 1 machine).
	Machine sim.Config
	// MinRuns and MinDuration bound each cell's measurement loop: a cell
	// replays its trace set at least MinRuns times and for at least
	// MinDuration of wall clock.
	MinRuns     int
	MinDuration time.Duration
	// Workers parallelizes trace generation only; measurement itself is
	// strictly serial so cells are comparable.
	Workers int
	// ExtraCells are additional workload × mechanism cells measured after
	// the full Workloads × Mechanisms grid, in order. They let the
	// trajectory carry targeted cells (the speculative mechanisms on the
	// contended synthetic regime) without multiplying the whole grid.
	// Unlike the other fields, an empty list stays empty — extras are
	// opt-in via DefaultConfig, not a default.
	ExtraCells []ExtraCell
}

// ExtraCell names one additional workload × mechanism cell.
type ExtraCell struct {
	Workload  string
	Mechanism sched.Mechanism
}

// DefaultConfig returns the standard harness setup (quick evaluation
// sizes): the three TPC benchmarks plus two synthetic regimes — a
// uniform read-only cell and a zipfian hot read-write cell — so the
// BENCH_*.json trajectory measures replay performance on non-TPC access
// patterns too (BENCH_5.json onward; earlier trajectory points carry TPC
// cells only), and two extra cells putting the speculative mechanisms
// (HTMSPEC, CHAIN) on the contended zipfian regime (BENCH_9.json onward).
// Reports generated from different sizes or cell sets are not comparable;
// trajectories should all use this configuration.
func DefaultConfig() Config {
	return Config{
		Workloads: []string{
			"TPC-B", "TPC-C", "TPC-E",
			"synth:uniform-ro", "synth:zipf-hot-rw",
		},
		Mechanisms: sched.Mechanisms,
		ExtraCells: []ExtraCell{
			{Workload: "synth:zipf-hot-rw", Mechanism: sched.HTMSPEC},
			{Workload: "synth:zipf-hot-rw", Mechanism: sched.CHAIN},
		},
		Seed:          42,
		Scale:         0.5,
		ProfileTraces: 250,
		EvalTraces:    250,
		Machine:       sim.Shallow(),
		MinRuns:       2,
		MinDuration:   300 * time.Millisecond,
		Workers:       1,
	}
}

// Cell is one mechanism × workload measurement.
type Cell struct {
	Workload  string `json:"workload"`
	Mechanism string `json:"mechanism"`
	// Events is the number of trace events one replay executes.
	Events uint64 `json:"events"`
	// Runs is how many times the replay was repeated for the measurement.
	Runs int `json:"runs"`
	// NsPerEvent and EventsPerSec describe replay throughput; both count
	// full replays (executor construction included) since that is the unit
	// every experiment pays for.
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerEvent and BytesPerEvent are total heap activity per event,
	// setup included. SteadyAllocsPerEvent isolates the per-event loop: it
	// is the marginal allocations per additional event when the same
	// thread/batch structure replays a longer event stream (see
	// SteadyStateAllocsPerEvent), and is 0 for an allocation-free
	// steady-state replay core.
	AllocsPerEvent       float64 `json:"allocs_per_event"`
	BytesPerEvent        float64 `json:"bytes_per_event"`
	SteadyAllocsPerEvent float64 `json:"steady_allocs_per_event"`
}

// Summary aggregates the replay benchmark over all cells: total events
// divided by total wall-clock across every mechanism × workload replay.
type Summary struct {
	Events       uint64  `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
}

// Report is one full harness run.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Seed          int64   `json:"seed"`
	Scale         float64 `json:"scale"`
	ProfileTraces int     `json:"profile_traces"`
	EvalTraces    int     `json:"eval_traces"`

	// MinRuns and MinDuration record the measurement bounds each cell was
	// timed under (schema v2 onward; zero in older reports), so a gate can
	// detect baseline/current pairs whose cells were measured to different
	// standards before judging their ratio.
	MinRuns     int           `json:"min_runs,omitempty"`
	MinDuration time.Duration `json:"min_duration_ns,omitempty"`

	// Replay is the headline aggregate ("the replay benchmark"): every
	// cell's events over every cell's seconds.
	Replay Summary `json:"replay"`
	Cells  []Cell  `json:"cells"`
}

// schemaID tags reports so future format changes stay detectable. v2 adds
// the measurement bounds (min_runs/min_duration_ns); v1 reports are still
// readable — their bounds parse as zero ("unrecorded").
const schemaID = "addict-bench/v2"

// knownSchemas are the report formats ReadFile accepts.
var knownSchemas = map[string]bool{
	"addict-bench/v1": true,
	"addict-bench/v2": true,
}

// Run executes the harness and returns the report. Progress lines go to
// progress when non-nil (one per cell; measurement noise is easier to
// diagnose when the slow cell is visible).
func Run(cfg Config, progress io.Writer) (*Report, error) {
	return RunCtx(context.Background(), cfg, progress)
}

// RunCtx is Run with cooperative cancellation: the harness stops between
// trace-generation shards and between measurement cells once ctx is
// cancelled, and returns ctx's error instead of a partial report (a
// partial report would not be comparable to any BENCH_*.json trajectory
// point).
func RunCtx(ctx context.Context, cfg Config, progress io.Writer) (*Report, error) {
	return RunWith(ctx, cfg, progress, nil)
}

// RunWith is RunCtx over a caller-supplied artifact cache (nil builds a
// fresh one from the config) — the hook a long-lived session uses to share
// generated traces and profiles with the harness. A cache whose base
// parameters do not Match the resolved config is ignored (a fresh one is
// built), so the report's metadata always describes the artifacts it was
// measured on; measurement itself is unaffected (cells are strictly serial
// either way).
func RunWith(ctx context.Context, cfg Config, progress io.Writer, arts *sweep.Artifacts) (*Report, error) {
	cfg = withDefaults(cfg)
	for _, name := range cfg.Workloads {
		if err := sweep.ValidateWorkloadName(name); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	for _, ec := range cfg.ExtraCells {
		if err := sweep.ValidateWorkloadName(ec.Workload); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
	}
	if arts != nil && !arts.Matches(cfg.Seed, cfg.Scale, cfg.ProfileTraces, cfg.EvalTraces) {
		arts = nil
	}
	if arts == nil {
		arts = sweep.NewArtifacts(cfg.Seed, cfg.Scale, cfg.ProfileTraces, cfg.EvalTraces, cfg.Workers)
	}
	rep := &Report{
		Schema:        schemaID,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Seed:          cfg.Seed,
		Scale:         cfg.Scale,
		ProfileTraces: cfg.ProfileTraces,
		EvalTraces:    cfg.EvalTraces,
		MinRuns:       cfg.MinRuns,
		MinDuration:   cfg.MinDuration,
	}
	// measure runs one cell and folds it into the report; the artifact
	// cache memoizes, so an extra cell on an already-measured workload
	// reuses its trace set and profile.
	measure := func(name string, mech sched.Mechanism) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		set, err := arts.EvalSet(ctx, name)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", name, err)
		}
		prof, err := arts.Profile(ctx, name, cfg.Machine)
		if err != nil {
			return fmt.Errorf("bench: %s: %w", name, err)
		}
		cell, err := measureCell(mech, set, prof, cfg)
		if err != nil {
			return fmt.Errorf("bench: %s on %s: %w", mech, name, err)
		}
		rep.Cells = append(rep.Cells, cell)
		rep.Replay.Events += cell.Events * uint64(cell.Runs)
		rep.Replay.Seconds += cell.NsPerEvent * float64(cell.Events) * float64(cell.Runs) / 1e9
		if progress != nil {
			fmt.Fprintf(progress, "bench %-8s %-8s %8.1f ns/event  %.2fM events/sec  (%d runs)\n",
				name, mech, cell.NsPerEvent, cell.EventsPerSec/1e6, cell.Runs)
		}
		return nil
	}
	for _, name := range cfg.Workloads {
		for _, mech := range cfg.Mechanisms {
			if err := measure(name, mech); err != nil {
				return nil, err
			}
		}
	}
	for _, ec := range cfg.ExtraCells {
		if err := measure(ec.Workload, ec.Mechanism); err != nil {
			return nil, err
		}
	}
	if rep.Replay.Seconds > 0 {
		rep.Replay.EventsPerSec = float64(rep.Replay.Events) / rep.Replay.Seconds
		rep.Replay.NsPerEvent = rep.Replay.Seconds * 1e9 / float64(rep.Replay.Events)
	}
	return rep, nil
}

func withDefaults(cfg Config) Config {
	def := DefaultConfig()
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = def.Workloads
	}
	if len(cfg.Mechanisms) == 0 {
		cfg.Mechanisms = def.Mechanisms
	}
	if cfg.Seed == 0 && !cfg.SeedSet {
		cfg.Seed = def.Seed
	}
	cfg.SeedSet = true
	if cfg.Scale == 0 {
		cfg.Scale = def.Scale
	}
	if cfg.ProfileTraces == 0 {
		cfg.ProfileTraces = def.ProfileTraces
	}
	if cfg.EvalTraces == 0 {
		cfg.EvalTraces = def.EvalTraces
	}
	if cfg.Machine.Cores == 0 {
		cfg.Machine = def.Machine
	}
	if cfg.MinRuns == 0 {
		cfg.MinRuns = def.MinRuns
	}
	if cfg.MinDuration == 0 {
		cfg.MinDuration = def.MinDuration
	}
	if cfg.Workers == 0 {
		cfg.Workers = def.Workers
	}
	return cfg
}

// schedConfig builds the replay configuration for one cell.
func schedConfig(machine sim.Config, prof *core.Profile) sched.Config {
	cfg := sched.DefaultConfig(machine)
	cfg.Profile = prof
	return cfg
}

// measureCell times repeated replays of one mechanism over one set.
func measureCell(mech sched.Mechanism, set *trace.Set, prof *core.Profile, cfg Config) (Cell, error) {
	rcfg := schedConfig(cfg.Machine, prof)
	events := setEvents(set)
	if events == 0 {
		return Cell{}, fmt.Errorf("empty trace set")
	}
	// Warm up once: first-run work (lazily built artifacts, map growth,
	// branch predictors warming the scan loops) must not skew the timing.
	if _, err := sched.Run(mech, set, rcfg); err != nil {
		return Cell{}, err
	}
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	start := time.Now()
	runs := 0
	for {
		if _, err := sched.Run(mech, set, rcfg); err != nil {
			return Cell{}, err
		}
		runs++
		if runs >= cfg.MinRuns && time.Since(start) >= cfg.MinDuration {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m2)

	total := float64(events) * float64(runs)
	cell := Cell{
		Workload:       set.Workload,
		Mechanism:      string(mech),
		Events:         events,
		Runs:           runs,
		NsPerEvent:     float64(elapsed.Nanoseconds()) / total,
		EventsPerSec:   total / elapsed.Seconds(),
		AllocsPerEvent: float64(m2.Mallocs-m1.Mallocs) / total,
		BytesPerEvent:  float64(m2.TotalAlloc-m1.TotalAlloc) / total,
	}
	steady, err := SteadyStateAllocsPerEvent(mech, set, rcfg)
	if err != nil {
		return Cell{}, err
	}
	cell.SteadyAllocsPerEvent = steady
	return cell, nil
}

// setEvents counts the events one replay of the set executes (every event
// executes exactly once; yields retry scheduling decisions, not events).
func setEvents(s *trace.Set) uint64 {
	var n uint64
	for _, t := range s.Traces {
		n += uint64(len(t.Events))
	}
	return n
}

// SteadyStateAllocsPerEvent measures the marginal allocations per
// additional replayed event: it replays the set and a variant with every
// trace's interior doubled (same trace count, same type mix, same batch
// structure — only the event streams are longer) and divides the
// allocation delta by the event delta. Per-run setup (executor, batching,
// per-thread scheduler state) cancels out, so a replay core whose
// per-event loop never allocates measures exactly 0.
func SteadyStateAllocsPerEvent(mech sched.Mechanism, set *trace.Set, rcfg sched.Config) (float64, error) {
	doubled := DoubleInterior(set)
	dEvents := float64(setEvents(doubled) - setEvents(set))
	// Allocation noise (a stray background allocation landing inside one
	// measurement) is strictly additive, so the minimum delta over a few
	// repetitions is the true marginal count.
	const repeats = 3
	best := -1.0
	for r := 0; r < repeats; r++ {
		short, err := allocsPerRun(3, mech, set, rcfg)
		if err != nil {
			return 0, err
		}
		long, err := allocsPerRun(3, mech, doubled, rcfg)
		if err != nil {
			return 0, err
		}
		per := (long - short) / dEvents
		if per < 0 {
			// Marginal allocations cannot be negative; tiny negatives are
			// the same noise landing in the short run.
			per = 0
		}
		if best < 0 || per < best {
			best = per
		}
		if best == 0 {
			break
		}
	}
	return best, nil
}

// allocsPerRun returns the average allocation count of one replay.
func allocsPerRun(runs int, mech sched.Mechanism, set *trace.Set, rcfg sched.Config) (float64, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// Warm up: lazily grown caches (scheduler maps, slice capacities)
	// reach steady shape before counting.
	if _, err := sched.Run(mech, set, rcfg); err != nil {
		return 0, err
	}
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	for i := 0; i < runs; i++ {
		if _, err := sched.Run(mech, set, rcfg); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&m2)
	return float64(m2.Mallocs-m1.Mallocs) / float64(runs), nil
}

// DoubleInterior returns a set whose traces repeat their interior (between
// TxnBegin and TxnEnd) twice. The result is structurally valid (operation
// brackets stay balanced), has the same trace count and type mix — so
// batching, placement, and per-thread scheduler state are identical — and
// roughly twice the events. The zero-alloc guards replay it against the
// original to isolate per-event allocations.
func DoubleInterior(s *trace.Set) *trace.Set {
	out := &trace.Set{Workload: s.Workload, TypeNames: s.TypeNames}
	for _, t := range s.Traces {
		ev := t.Events
		if len(ev) < 2 {
			out.Traces = append(out.Traces, t)
			continue
		}
		interior := ev[1 : len(ev)-1]
		d := make([]trace.Event, 0, 2+2*len(interior))
		d = append(d, ev[0])
		d = append(d, interior...)
		d = append(d, interior...)
		d = append(d, ev[len(ev)-1])
		out.Traces = append(out.Traces, &trace.Trace{Type: t.Type, TypeName: t.TypeName, Events: d})
	}
	return out
}

// File is the on-disk BENCH_*.json layout: the current report plus the
// pre-change baseline it is measured against.
type File struct {
	Baseline *Report `json:"baseline,omitempty"`
	Current  *Report `json:"current"`
	// SpeedupEventsPerSec is Current.Replay.EventsPerSec over
	// Baseline.Replay.EventsPerSec (0 when no baseline is recorded). It is
	// the events-weighted aggregate: a win on a heavy cell can mask a loss
	// on a light one, which is why the per-cell Gate exists.
	SpeedupEventsPerSec float64 `json:"speedup_events_per_sec,omitempty"`
	// SpeedupCells are the per-(workload × mechanism) raw speedups, in the
	// current report's cell order. Raw speedups compare absolute events/sec
	// across the two reports, so they carry the recording machines' speed
	// difference; the Gate's normalized ratios cancel it.
	SpeedupCells []CellSpeedup `json:"speedup_cells,omitempty"`
	// Gate is the per-cell regression verdict, recorded when the file was
	// produced by a gated run (ApplyGate).
	Gate *Verdict `json:"gate,omitempty"`
}

// CellSpeedup is one cell's raw events/sec ratio between two reports.
type CellSpeedup struct {
	Workload  string  `json:"workload"`
	Mechanism string  `json:"mechanism"`
	Speedup   float64 `json:"speedup_events_per_sec"`
}

// Compare builds the on-disk file from a current report and an optional
// baseline, computing the aggregate and per-cell speedups. A baseline that
// did not measure the same thing as the current report — different
// seed/scale/trace windows, different measurement bounds, or a different
// cell set (the BENCH_3-vs-BENCH_5 trap: TPC-only versus TPC+synth
// aggregates) — is refused instead of silently compared.
func Compare(baseline, current *Report) (*File, error) {
	f := &File{Baseline: baseline, Current: current}
	if baseline == nil {
		return f, nil
	}
	if err := Comparable(baseline, current); err != nil {
		return nil, err
	}
	if baseline.Replay.EventsPerSec > 0 {
		f.SpeedupEventsPerSec = current.Replay.EventsPerSec / baseline.Replay.EventsPerSec
	}
	base := cellIndex(baseline)
	for _, c := range current.Cells {
		b := base[cellKey{c.Workload, c.Mechanism}]
		if b.EventsPerSec <= 0 {
			return nil, fmt.Errorf("bench: baseline cell %s/%s carries no events/sec", c.Workload, c.Mechanism)
		}
		f.SpeedupCells = append(f.SpeedupCells, CellSpeedup{
			Workload:  c.Workload,
			Mechanism: c.Mechanism,
			Speedup:   c.EventsPerSec / b.EventsPerSec,
		})
	}
	return f, nil
}

// WriteJSON writes a bench file as indented JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadFile parses a bench file. A bare Report (no current/baseline
// wrapper) is accepted too, so a previous run's report can serve directly
// as a baseline. Both schema versions parse (v1 reports simply carry no
// measurement bounds).
func ReadFile(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err == nil {
		if f.Current != nil {
			if err := checkSchema(f.Current.Schema); err != nil {
				return nil, err
			}
			if f.Baseline != nil {
				if err := checkSchema(f.Baseline.Schema); err != nil {
					return nil, fmt.Errorf("embedded baseline: %w", err)
				}
			}
			return &f, nil
		}
		if f.Baseline != nil {
			// A wrapper with only a baseline used to fall through to the
			// bare-Report parse and report `unknown schema ""` — say what
			// is actually wrong.
			return nil, fmt.Errorf("bench: file carries a baseline but no current report")
		}
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: not a bench file or report: %w", err)
	}
	if err := checkSchema(rep.Schema); err != nil {
		return nil, err
	}
	return &File{Current: &rep}, nil
}

// checkSchema validates a report's schema tag against the known formats.
func checkSchema(schema string) error {
	if !knownSchemas[schema] {
		return fmt.Errorf("bench: unknown schema %q", schema)
	}
	return nil
}
