// Package store is the content-addressed, on-disk artifact store: the L2
// layer under the in-memory artifact cache (pool.LRU) that gives sessions
// warm starts across process restarts and lets independent processes
// rendezvous on shared artifacts. Entries are keyed by a stable hash of the
// artifact's fully-resolved spec (workload encoding, seed/scale/windows,
// machine signature, artifact kind — the caller renders the spec string,
// the store hashes it), writes are crash-safe (temp file + fsync + rename),
// reads verify a recorded content hash and treat any corruption as a miss
// (quarantine + recompute, never a wrong answer), and a size-budget GC
// prunes least-recently-used entries. Artifacts regenerate
// deterministically, so losing an entry — eviction, corruption, or a
// wiped directory — costs time, not correctness.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// File layout: <dir>/<key[:2]>/<key>.art where key = hex(sha256(spec)).
//
//	magic "ADS1" | specLen u32 | spec bytes | payloadLen u64 |
//	sha256(payload) 32 bytes | payload
//
// The spec travels in the header so a hash collision (or a caller bug that
// derives one key from two specs) is detected on read instead of silently
// serving the wrong artifact, and so `strings <file>` identifies an entry
// during debugging. The payload digest is the corruption check: a
// truncated or bit-flipped file fails verification and is quarantined.

const (
	fileMagic  = "ADS1"
	fileSuffix = ".art"
	// quarantineSuffix marks a file that failed verification. Quarantined
	// files are renamed, not deleted, so a corruption burst stays
	// diagnosable; GC removes them like any other entry.
	quarantineSuffix = ".bad"
	// tmpInfix marks in-progress writes ("<key>.art.tmp-*"). A crash
	// between create and rename leaves one behind; it is never read as an
	// entry and GC sweeps it once stale.
	tmpInfix = fileSuffix + ".tmp-"
	// staleTmpAge is how old an orphaned temp file must be before GC
	// removes it — old enough that no live writer still owns it.
	staleTmpAge = 10 * time.Minute
	// maxSpecLen bounds the header's spec field on read, so a corrupt
	// length cannot demand an absurd allocation.
	maxSpecLen = 1 << 20
)

// Stats is a snapshot of the store's counters. Hits, Misses, Writes,
// VerifyFailures, and GCEvictions are monotonic over the store's lifetime
// in this process; Entries and Bytes describe the resident set (best
// effort when several processes share one directory). The JSON tags are
// the serving wire format (cmd/addict-serve exposes these via expvar, the
// Engine via CacheStats).
type Stats struct {
	// Hits counts reads that returned a verified payload.
	Hits uint64 `json:"hits"`
	// Misses counts reads that found no entry (the caller computes).
	Misses uint64 `json:"misses"`
	// Writes counts entries successfully persisted.
	Writes uint64 `json:"writes"`
	// VerifyFailures counts reads that found an entry but failed
	// verification (bad magic, spec mismatch, truncation, digest mismatch,
	// or undecodable payload) — each one quarantined and reported as a
	// miss, so a failure here never becomes a wrong answer.
	VerifyFailures uint64 `json:"verify_failures"`
	// GCEvictions counts entries removed by the size-budget GC.
	GCEvictions uint64 `json:"gc_evictions"`
	// WriteErrors counts failed persists (full disk, permissions). A store
	// that cannot write still serves what it holds.
	WriteErrors uint64 `json:"write_errors"`
	// Entries and Bytes describe the resident entry set.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Store is a content-addressed artifact store over one directory. Safe for
// concurrent use within a process; across processes, writes stay safe
// (atomic renames of identical deterministic content). A budgeted store
// rescans the directory on every Put before enforcing the budget, so the
// budget holds even when several processes write the same directory; an
// unbounded store's size index is best effort until the next GC walk.
type Store struct {
	dir    string
	budget int64 // bytes; <= 0 = unbounded

	mu    sync.Mutex
	sizes map[string]int64 // key -> file size, the resident index
	used  int64

	hits, misses, writes uint64
	verifyFailures       uint64
	gcEvictions          uint64
	writeErrors          uint64
}

// Open prepares a store over dir (created if missing) with a size budget
// in bytes (<= 0 = unbounded) and indexes the entries already present — a
// restart resumes with the previous run's artifacts warm.
func Open(dir string, budget int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, budget: budget, sizes: make(map[string]int64)}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rescanLocked()
	s.gcLocked()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Key derives the on-disk key for a fully-resolved spec string: the
// content address every process computing the same artifact agrees on.
func Key(spec string) string {
	sum := sha256.Sum256([]byte(spec))
	return hex.EncodeToString(sum[:])
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:           s.hits,
		Misses:         s.misses,
		Writes:         s.writes,
		VerifyFailures: s.verifyFailures,
		GCEvictions:    s.gcEvictions,
		WriteErrors:    s.writeErrors,
		Entries:        int64(len(s.sizes)),
		Bytes:          s.used,
	}
}

// path returns the entry file for a key, and its parent directory.
func (s *Store) path(key string) (dir, file string) {
	dir = filepath.Join(s.dir, key[:2])
	return dir, filepath.Join(dir, key+fileSuffix)
}

// Get returns the verified payload stored under spec, or (nil, false) on a
// miss. A present-but-unverifiable entry — truncated, bit-flipped, wrong
// spec under the hash — is quarantined and reported as a miss, so the
// caller recomputes instead of decoding garbage.
func (s *Store) Get(spec string) ([]byte, bool) {
	key := Key(spec)
	_, file := s.path(key)
	data, err := os.ReadFile(file)
	if err != nil {
		s.count(func() { s.misses++ })
		return nil, false
	}
	payload, verr := verify(data, spec)
	if verr != nil {
		s.quarantine(key, file)
		return nil, false
	}
	s.count(func() { s.hits++ })
	// Touch for the GC's recency order; best effort (a read-only mirror
	// still serves).
	now := time.Now()
	_ = os.Chtimes(file, now, now)
	return payload, true
}

// verify parses an entry file and returns its payload, or an error naming
// what failed.
func verify(data []byte, spec string) ([]byte, error) {
	if len(data) < len(fileMagic)+4 || string(data[:4]) != fileMagic {
		return nil, fmt.Errorf("bad magic")
	}
	rest := data[4:]
	specLen := binary.LittleEndian.Uint32(rest[:4])
	if specLen > maxSpecLen || len(rest) < 4+int(specLen)+8+sha256.Size {
		return nil, fmt.Errorf("truncated header")
	}
	rest = rest[4:]
	if string(rest[:specLen]) != spec {
		return nil, fmt.Errorf("spec mismatch")
	}
	rest = rest[specLen:]
	payloadLen := binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	digest := rest[:sha256.Size]
	payload := rest[sha256.Size:]
	if uint64(len(payload)) != payloadLen {
		return nil, fmt.Errorf("truncated payload: have %d want %d", len(payload), payloadLen)
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(digest) {
		return nil, fmt.Errorf("content digest mismatch")
	}
	return payload, nil
}

// Put persists a payload under spec: write to a temp file in the entry's
// directory, fsync, atomically rename into place, then GC down to the
// budget. Persist failures are counted, not returned — the value the
// caller computed is still correct, the store just could not keep it.
func (s *Store) Put(spec string, payload []byte) {
	key := Key(spec)
	dir, file := s.path(key)
	if err := s.write(dir, file, spec, payload); err != nil {
		s.count(func() { s.writeErrors++ })
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	size := int64(entrySize(spec, payload))
	if prev, ok := s.sizes[key]; ok {
		s.used -= prev
	}
	s.sizes[key] = size
	s.used += size
	s.writes++
	// Under a size budget the directory, not this handle's index, is the
	// truth: other processes sharing the store (distributed sweep workers
	// rendezvousing on one directory) write entries this index has never
	// seen, and judging the budget against the local view alone lets N
	// writers each stay "under budget" while the directory grows to N
	// times it. Rescan before the GC decision so every eviction pass sees
	// the whole resident set. Unbounded stores skip the walk — nothing to
	// enforce.
	if s.budget > 0 {
		s.rescanLocked()
	}
	s.gcLocked()
}

func entrySize(spec string, payload []byte) int {
	return len(fileMagic) + 4 + len(spec) + 8 + sha256.Size + len(payload)
}

func (s *Store) write(dir, file, spec string, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(file)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	header := make([]byte, 0, entrySize(spec, nil))
	header = append(header, fileMagic...)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(spec)))
	header = append(header, spec...)
	header = binary.LittleEndian.AppendUint64(header, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	header = append(header, sum[:]...)
	if _, err := tmp.Write(header); err == nil {
		_, err = tmp.Write(payload)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), file); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss; best effort
// (some platforms refuse directory syncs).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// MarkCorrupt quarantines the entry stored under spec — the hook for
// callers whose decode failed after the content digest passed (a codec
// version drift), so the stale encoding is replaced on the next Put
// instead of failing every read.
func (s *Store) MarkCorrupt(spec string) {
	key := Key(spec)
	_, file := s.path(key)
	s.quarantine(key, file)
}

// quarantine renames a failed entry aside and counts the failure.
func (s *Store) quarantine(key, file string) {
	_ = os.Rename(file, file+quarantineSuffix)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.verifyFailures++
	s.misses++
	if size, ok := s.sizes[key]; ok {
		s.used -= size
		delete(s.sizes, key)
	}
}

// count runs a counter mutation under the lock.
func (s *Store) count(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// GC prunes the store to its size budget, oldest entries first, and sweeps
// quarantined files and stale temp files. Runs automatically after every
// Put; exported so deployments can force a sweep.
func (s *Store) GC() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rescanLocked()
	s.gcLocked()
}

// rescanLocked rebuilds the size index from the directory — the source of
// truth when several processes share one store. Caller holds mu.
func (s *Store) rescanLocked() {
	sizes := make(map[string]int64)
	var used int64
	var stale []string
	_ = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		name := d.Name()
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		switch {
		case strings.HasSuffix(name, fileSuffix):
			key := strings.TrimSuffix(name, fileSuffix)
			sizes[key] = info.Size()
			used += info.Size()
		case strings.Contains(name, tmpInfix):
			if time.Since(info.ModTime()) > staleTmpAge {
				stale = append(stale, path)
			}
		case strings.HasSuffix(name, quarantineSuffix):
			stale = append(stale, path)
		}
		return nil
	})
	s.sizes, s.used = sizes, used
	for _, p := range stale {
		_ = os.Remove(p)
	}
}

// gcLocked removes oldest entries until the resident bytes fit the budget.
// Caller holds mu.
func (s *Store) gcLocked() {
	if s.budget <= 0 || s.used <= s.budget {
		return
	}
	type entry struct {
		key   string
		size  int64
		mtime time.Time
	}
	var entries []entry
	for key, size := range s.sizes {
		_, file := s.path(key)
		info, err := os.Stat(file)
		if err != nil {
			// Gone already (another process GC'd it); drop from the index.
			s.used -= size
			delete(s.sizes, key)
			continue
		}
		entries = append(entries, entry{key, size, info.ModTime()})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].key < entries[j].key
	})
	for _, e := range entries {
		if s.used <= s.budget {
			break
		}
		_, file := s.path(e.key)
		if err := os.Remove(file); err != nil && !os.IsNotExist(err) {
			continue
		}
		s.used -= e.size
		delete(s.sizes, e.key)
		s.gcEvictions++
	}
}
