package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := "test|seed=1|wl=TPC-C"
	payload := []byte("the artifact payload")
	if _, ok := s.Get(spec); ok {
		t.Fatal("Get on an empty store reported a hit")
	}
	s.Put(spec, payload)
	got, ok := s.Get(spec)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("resident set = %d entries / %d bytes, want 1 entry, positive bytes", st.Entries, st.Bytes)
	}
}

func TestDistinctSpecsDistinctEntries(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("spec-a", []byte("aaa"))
	s.Put("spec-b", []byte("bbb"))
	if got, ok := s.Get("spec-a"); !ok || string(got) != "aaa" {
		t.Fatalf("spec-a = %q, %v", got, ok)
	}
	if got, ok := s.Get("spec-b"); !ok || string(got) != "bbb" {
		t.Fatalf("spec-b = %q, %v", got, ok)
	}
}

func TestReopenWarmStart(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put("persist-spec", []byte("survives restarts"))

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("persist-spec")
	if !ok || string(got) != "survives restarts" {
		t.Fatalf("reopened store: got %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Errorf("reopened store indexed %d entries, want 1", st.Entries)
	}
}

func TestEmptyPayload(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("empty", nil)
	got, ok := s.Get("empty")
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload: got %q, %v", got, ok)
	}
}

// entryFile locates the single .art file the test wrote, so corruption
// tests can damage it.
func entryFile(t *testing.T, s *Store, spec string) string {
	t.Helper()
	_, file := s.path(Key(spec))
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("entry file: %v", err)
	}
	return file
}

func TestCorruptionTruncated(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := "truncate-me"
	s.Put(spec, bytes.Repeat([]byte("x"), 4096))
	file := entryFile(t, s, spec)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(file, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(spec); ok {
		t.Fatal("truncated entry read as a hit")
	}
	st := s.Stats()
	if st.VerifyFailures != 1 {
		t.Errorf("verify_failures = %d, want 1", st.VerifyFailures)
	}
	// The corrupt file must be quarantined: a second read is a plain miss,
	// not another verification failure.
	if _, ok := s.Get(spec); ok {
		t.Fatal("quarantined entry read as a hit")
	}
	if st := s.Stats(); st.VerifyFailures != 1 {
		t.Errorf("verify_failures after quarantine = %d, want still 1", st.VerifyFailures)
	}
	// Recompute-and-rewrite heals the entry.
	s.Put(spec, []byte("fresh"))
	if got, ok := s.Get(spec); !ok || string(got) != "fresh" {
		t.Fatalf("healed entry: got %q, %v", got, ok)
	}
}

func TestCorruptionBitFlip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := "flip-me"
	s.Put(spec, bytes.Repeat([]byte("y"), 1024))
	file := entryFile(t, s, spec)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(spec); ok {
		t.Fatal("bit-flipped entry read as a hit")
	}
	if st := s.Stats(); st.VerifyFailures != 1 {
		t.Errorf("verify_failures = %d, want 1", st.VerifyFailures)
	}
}

func TestCorruptionSpecMismatch(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := "original-spec"
	s.Put(spec, []byte("payload"))
	// Simulate a caller bug (or hash collision): the file under this key
	// was written for a different spec. Copy the entry under another key.
	_, src := s.path(Key(spec))
	other := "other-spec"
	dstDir, dst := s.path(Key(other))
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(other); ok {
		t.Fatal("entry with mismatched spec read as a hit")
	}
}

func TestStrayTempFileIsMissAndSwept(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A crash between create and rename leaves "<key>.art.tmp-*" behind;
	// it must never read as an entry.
	spec := "crashed-write"
	key := Key(spec)
	sub := filepath.Join(dir, key[:2])
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(sub, key+".art.tmp-12345")
	if err := os.WriteFile(stray, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(spec); ok {
		t.Fatal("stray temp file read as a hit")
	}
	if st := s.Stats(); st.VerifyFailures != 0 {
		t.Errorf("a stray temp file is a plain miss, not a verify failure; got %d", st.VerifyFailures)
	}
	// Fresh temp files survive GC (a live writer may own them) ...
	s.GC()
	if _, err := os.Stat(stray); err != nil {
		t.Fatalf("fresh temp file swept: %v", err)
	}
	// ... stale ones are swept.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stray, old, old); err != nil {
		t.Fatal(err)
	}
	s.GC()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not swept: %v", err)
	}
}

func TestGCBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("z"), 1000)
	specs := []string{"gc-a", "gc-b", "gc-c", "gc-d", "gc-e", "gc-f"}
	for i, spec := range specs {
		s.Put(spec, payload)
		// Distinct mtimes give the GC a deterministic recency order.
		when := time.Now().Add(time.Duration(i-len(specs)) * time.Minute)
		file := entryFile(t, s, spec)
		if err := os.Chtimes(file, when, when); err != nil {
			t.Fatal(err)
		}
	}
	s.GC()
	st := s.Stats()
	if st.Bytes > 4096 {
		t.Errorf("resident bytes %d exceed the 4096 budget", st.Bytes)
	}
	if st.GCEvictions == 0 {
		t.Error("GC over budget evicted nothing")
	}
	// The newest entry must survive; the oldest must be gone.
	if _, ok := s.Get(specs[len(specs)-1]); !ok {
		t.Error("newest entry was evicted")
	}
	if _, ok := s.Get(specs[0]); ok {
		t.Error("oldest entry survived a GC that had to evict")
	}
}

// entryBytesOnDisk sums the resident entry files under dir — the
// directory truth a budget must be judged against.
func entryBytesOnDisk(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, fileSuffix) {
			total += info.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestGCBudgetSharedDirTwoHandles is the two-process contention scenario
// distributed sweeps create: two Store handles (standing in for two worker
// processes) over one directory and one budget, writing in parallel — some
// distinct specs, some the same spec from both sides, racing identical
// renames — with GC sweeps mixed in. No read may ever fail verification
// (atomic renames of identical deterministic content), and the budget must
// hold against the *directory*, not each handle's private index: before
// the rescan-on-Put fix, each handle GC'd only its own writes, so N
// writers kept the directory at N times the budget.
func TestGCBudgetSharedDirTwoHandles(t *testing.T) {
	dir := t.TempDir()
	const budget = 64 << 10
	a, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("artifact"), 512) // 4 KiB

	var wg sync.WaitGroup
	write := func(s *Store, who string) {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			spec := "contend|" + who + "|" + strconv.Itoa(i)
			if i%4 == 0 {
				spec = "contend|shared|" + strconv.Itoa(i) // both handles race this key
			}
			s.Put(spec, payload)
			if got, ok := s.Get(spec); ok && !bytes.Equal(got, payload) {
				t.Errorf("%s: read back wrong payload for %s", who, spec)
			}
			// One explicit sweep early on; the later writes must be
			// covered by Put's own budget pass (a late GC here would
			// rescan and mask a stale-index bug).
			if i == 9 {
				s.GC()
			}
		}
	}
	wg.Add(2)
	go write(a, "a")
	go write(b, "b")
	wg.Wait()

	// One more ordinary Put with no explicit GC: its own budget pass must
	// already see (and evict down) the other handle's entries. This is
	// the regression assert — with the handle-local index, each side ends
	// near the budget by its own accounting while the directory holds
	// both sides' survivors.
	a.Put("contend|tail", payload)
	if got := entryBytesOnDisk(t, dir); got > budget {
		t.Errorf("directory holds %d bytes after a budgeted Put, budget %d", got, budget)
	}
	if got, ok := a.Get("contend|tail"); !ok || !bytes.Equal(got, payload) {
		t.Error("newest entry did not survive its own Put's GC")
	}
	for _, s := range []*Store{a, b} {
		if st := s.Stats(); st.VerifyFailures != 0 {
			t.Errorf("%d verify failures under contention, want 0 (%+v)", st.VerifyFailures, st)
		}
	}
}

func TestGCSweepsQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := "quarantine-sweep"
	s.Put(spec, []byte("data"))
	file := entryFile(t, s, spec)
	if err := os.WriteFile(file, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(spec); ok {
		t.Fatal("garbage read as a hit")
	}
	bad := file + ".bad"
	if _, err := os.Stat(bad); err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
	s.GC()
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("quarantine file not swept: %v", err)
	}
}

func TestPutOverwriteKeepsIndexConsistent(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := "rewrite"
	s.Put(spec, bytes.Repeat([]byte("a"), 100))
	before := s.Stats().Bytes
	s.Put(spec, bytes.Repeat([]byte("b"), 5000))
	st := s.Stats()
	if st.Entries != 1 {
		t.Errorf("entries = %d after overwrite, want 1", st.Entries)
	}
	if st.Bytes <= before {
		t.Errorf("bytes = %d after larger overwrite, want > %d", st.Bytes, before)
	}
}

func TestOpenEmptyDirErrors(t *testing.T) {
	if _, err := Open("", 0); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestKeyIsHexSHA256(t *testing.T) {
	key := Key("some spec")
	if len(key) != 64 || strings.ToLower(key) != key {
		t.Fatalf("key %q is not lowercase hex sha256", key)
	}
	if Key("some spec") != key {
		t.Fatal("Key is not deterministic")
	}
	if Key("other spec") == key {
		t.Fatal("distinct specs share a key")
	}
}
