package store

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"addict/internal/pool"
)

// jsonCodec is the test codec: JSON of a string.
type jsonCodec struct{}

func (jsonCodec) Encode(w io.Writer, v any) error { return json.NewEncoder(w).Encode(v.(string)) }
func (jsonCodec) Decode(r io.Reader) (any, error) {
	var s string
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return s, nil
}

// brokenCodec decodes nothing — the codec-drift stand-in.
type brokenCodec struct{}

func (brokenCodec) Encode(w io.Writer, v any) error { return json.NewEncoder(w).Encode(v.(string)) }
func (brokenCodec) Decode(r io.Reader) (any, error) {
	return nil, errors.New("stale encoding")
}

func newCached(t *testing.T) *CachedStore {
	t.Helper()
	disk, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewCached(pool.NewLRU[any](0, nil), disk)
}

func TestCachedReadThrough(t *testing.T) {
	c := newCached(t)
	entry := Entry{Spec: "rt-spec", Codec: jsonCodec{}}
	computes := 0
	compute := func() (any, error) { computes++; return "value", nil }

	v, err := c.Do(context.Background(), "k", entry, compute)
	if err != nil || v.(string) != "value" {
		t.Fatalf("first Do = %v, %v", v, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	// Second call: memory hit, no disk read, no compute.
	if _, err := c.Do(context.Background(), "k", entry, compute); err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatalf("memory hit recomputed: computes = %d", computes)
	}
	// New memory layer over the same disk: disk hit, still no compute.
	c2 := NewCached(pool.NewLRU[any](0, nil), c.Disk())
	v, err = c2.Do(context.Background(), "k", entry, compute)
	if err != nil || v.(string) != "value" {
		t.Fatalf("disk read-through = %v, %v", v, err)
	}
	if computes != 1 {
		t.Fatalf("disk hit recomputed: computes = %d", computes)
	}
	if st := c.Disk().Stats(); st.Hits != 1 {
		t.Errorf("disk hits = %d, want 1", st.Hits)
	}
}

func TestCachedMemoryOnlyEntry(t *testing.T) {
	c := newCached(t)
	computes := 0
	v, err := c.Do(context.Background(), "mem-only", Entry{}, func() (any, error) {
		computes++
		return "ephemeral", nil
	})
	if err != nil || v.(string) != "ephemeral" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if st := c.Disk().Stats(); st.Writes != 0 || st.Misses != 0 {
		t.Errorf("zero Entry touched the disk: %+v", st)
	}
	if computes != 1 {
		t.Fatalf("computes = %d", computes)
	}
}

func TestCachedNilDisk(t *testing.T) {
	c := NewCached(pool.NewLRU[any](0, nil), nil)
	v, err := c.Do(context.Background(), "k", Entry{Spec: "s", Codec: jsonCodec{}}, func() (any, error) {
		return "plain", nil
	})
	if err != nil || v.(string) != "plain" {
		t.Fatalf("Do = %v, %v", v, err)
	}
}

func TestCachedComputeErrorNotPersisted(t *testing.T) {
	c := newCached(t)
	entry := Entry{Spec: "err-spec", Codec: jsonCodec{}}
	boom := errors.New("boom")
	if _, err := c.Do(context.Background(), "k", entry, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Disk().Stats(); st.Writes != 0 {
		t.Errorf("a failed compute was persisted: %+v", st)
	}
	// The key stays retryable.
	v, err := c.Do(context.Background(), "k", entry, func() (any, error) { return "ok", nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry = %v, %v", v, err)
	}
}

func TestCachedCodecDriftQuarantinesAndRecomputes(t *testing.T) {
	disk, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the disk with an entry the (new) codec can no longer decode.
	old := NewCached(pool.NewLRU[any](0, nil), disk)
	if _, err := old.Do(context.Background(), "k", Entry{Spec: "drift", Codec: jsonCodec{}}, func() (any, error) {
		return "v1-encoding", nil
	}); err != nil {
		t.Fatal(err)
	}

	c := NewCached(pool.NewLRU[any](0, nil), disk)
	computes := 0
	v, err := c.Do(context.Background(), "k", Entry{Spec: "drift", Codec: brokenCodec{}}, func() (any, error) {
		computes++
		return "v2-value", nil
	})
	if err != nil || v.(string) != "v2-value" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (recompute on drift)", computes)
	}
	st := disk.Stats()
	if st.VerifyFailures != 1 {
		t.Errorf("verify_failures = %d, want 1 (drift quarantined)", st.VerifyFailures)
	}
	// The fresh encoding replaced the quarantined one.
	if st.Writes != 2 {
		t.Errorf("writes = %d, want 2", st.Writes)
	}
}
