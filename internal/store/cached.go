package store

import (
	"bytes"
	"context"
	"io"

	"addict/internal/pool"
)

// Codec serializes one artifact kind for the on-disk layer. Encodings must
// be deterministic enough to round-trip to an equivalent value — the
// artifacts themselves regenerate deterministically, so a decoded value
// and a recomputed one must be interchangeable in every downstream report.
type Codec interface {
	Encode(w io.Writer, v any) error
	Decode(r io.Reader) (any, error)
}

// Entry names an artifact's on-disk identity: the fully-resolved spec
// string (hashed by the store into the file key) and the codec for its
// kind. A zero Entry (empty Spec or nil Codec) marks an artifact that is
// memory-only — the read-through layer skips the disk for it.
type Entry struct {
	Spec  string
	Codec Codec
}

// CachedStore layers the on-disk store (L2) under an in-memory pool.LRU
// (L1) as a read-through cache: a lookup consults memory first
// (single-flight — concurrent callers of one key share one load-or-
// compute), then disk, then computes; a computed value is written back to
// disk (best effort) so the next process starts warm. Disk corruption and
// codec drift surface as misses, never as decoded garbage: the entry is
// quarantined and recomputed. A nil disk store degrades to the plain
// in-memory cache.
type CachedStore struct {
	mem  *pool.LRU[any]
	disk *Store
}

// NewCached wraps an in-memory cache and an optional disk store (nil =
// memory only).
func NewCached(mem *pool.LRU[any], disk *Store) *CachedStore {
	return &CachedStore{mem: mem, disk: disk}
}

// Mem returns the in-memory layer (for budget and stats plumbing).
func (c *CachedStore) Mem() *pool.LRU[any] { return c.mem }

// Disk returns the on-disk layer, nil when the cache is memory-only.
func (c *CachedStore) Disk() *Store { return c.disk }

// SetDisk attaches (or detaches, with nil) the on-disk layer. Values
// already resident in memory are unaffected; subsequent misses read
// through.
func (c *CachedStore) SetDisk(disk *Store) { c.disk = disk }

// Do returns the artifact cached under memKey, reading through memory,
// then disk (when the entry names an on-disk identity), then compute. The
// in-memory layer keeps pool.LRU's contract: one computation per key no
// matter how many concurrent callers, failed or cancelled computations
// evicted rather than cached.
func (c *CachedStore) Do(ctx context.Context, memKey string, disk Entry, compute func() (any, error)) (any, error) {
	if c.disk == nil || disk.Spec == "" || disk.Codec == nil {
		return c.mem.Do(ctx, memKey, compute)
	}
	return c.mem.Do(ctx, memKey, func() (any, error) {
		if data, ok := c.disk.Get(disk.Spec); ok {
			v, err := disk.Codec.Decode(bytes.NewReader(data))
			if err == nil {
				return v, nil
			}
			// The content digest passed but the payload does not decode: a
			// codec version drift. Quarantine so the fresh encoding below
			// replaces it instead of failing every future read.
			c.disk.MarkCorrupt(disk.Spec)
		}
		v, err := compute()
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if encErr := disk.Codec.Encode(&buf, v); encErr == nil {
			c.disk.Put(disk.Spec, buf.Bytes())
		}
		return v, nil
	})
}
