package storage

import "addict/internal/trace"

// Txn is a transaction context: an ID, the locks held (released at commit —
// strict two-phase locking), and the last LSN written.
type Txn struct {
	id      uint64
	locks   []lockName
	lastLSN uint64
	done    bool
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// LockCount returns the number of lock acquisitions currently held.
func (t *Txn) LockCount() int { return len(t.locks) }

// Begin starts a transaction and emits the txn_begin glue code. The caller
// is responsible for the surrounding trace markers (Recorder.TxnBegin with
// the workload's transaction type, which the storage manager does not know).
func (m *Manager) Begin() *Txn {
	m.nextTxn++
	txn := &Txn{id: m.nextTxn}
	m.seg.txnBegin.EmitAll(m.rec)
	return txn
}

// Commit writes the commit record, releases all locks, and emits the
// txn_commit code, bracketed as the OpCommit epilogue action. ADDICT's
// migrations "have no effect on ACID properties" (Section 3.2.5): commit
// order and lock lifetimes are identical under every scheduling mechanism
// because scheduling happens at trace-replay time, not here.
func (m *Manager) Commit(txn *Txn) {
	if txn.done {
		panic("storage: commit of finished transaction")
	}
	m.rec.OpBegin(trace.OpCommit)
	m.seg.txnCommit.EmitRange(m.rec, 0, 50)
	m.wal.insert(m, txn, logCommit, 16)
	m.lock.releaseAll(m, txn)
	m.seg.txnCommit.EmitRange(m.rec, 50, 90)
	m.rec.OpEnd(trace.OpCommit)
	txn.done = true
}

// Abort releases locks without a commit record. (No undo is modeled: trace
// generation never aborts mid-operation; the method exists for API
// completeness and tests.)
func (m *Manager) Abort(txn *Txn) {
	if txn.done {
		panic("storage: abort of finished transaction")
	}
	m.lock.releaseAll(m, txn)
	txn.done = true
}
