package storage

import (
	"bytes"
	"testing"

	"addict/internal/codemap"
	"addict/internal/trace"
)

// tracedManager returns a manager recording into a strict buffer, with one
// indexed table populated with n rows of the given payload size.
func tracedManager(t *testing.T, n int, payload int) (*Manager, *trace.Buffer, *Table) {
	t.Helper()
	m := testManager()
	tbl := m.CreateTable("t")
	tbl.CreateIndex("t_pk")
	pop := m.Begin()
	rec := make([]byte, payload)
	for i := 0; i < n; i++ {
		if _, err := m.InsertTuple(pop, tbl, []uint64{uint64(i)}, rec); err != nil {
			t.Fatalf("populate: %v", err)
		}
	}
	m.Commit(pop)
	buf := trace.NewBuffer(true)
	m.SetRecorder(buf)
	return m, buf, tbl
}

func TestProbeReturnsTuple(t *testing.T) {
	m, buf, tbl := tracedManager(t, 500, 80)
	buf.TxnBegin(0, "probe")
	txn := m.Begin()
	rid, rec, ok := m.IndexProbe(txn, tbl, tbl.Index(0), 123)
	if !ok {
		t.Fatal("probe of existing key failed")
	}
	if len(rec) != 80 {
		t.Errorf("tuple length = %d, want 80", len(rec))
	}
	if rid == (RID{}) {
		t.Error("zero RID returned")
	}
	if !m.lock.heldBy(txn.id, tbl.Index(0).ID(), 123) {
		t.Error("probe did not take the record lock")
	}
	// Missing key: flag, no lock.
	if _, _, ok := m.IndexProbe(txn, tbl, tbl.Index(0), 999999); ok {
		t.Error("probe of missing key succeeded")
	}
	m.Commit(txn)
	buf.TxnEnd()

	tr := buf.Take()[0]
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := tr.Ops()
	// Two probes plus the commit epilogue action.
	if len(ops) != 3 || ops[0].Op != trace.OpIndexProbe || ops[2].Op != trace.OpCommit {
		t.Fatalf("ops = %+v, want two probes and a commit", ops)
	}
}

func TestUpdateTupleRewrites(t *testing.T) {
	m, buf, tbl := tracedManager(t, 100, 60)
	buf.TxnBegin(0, "upd")
	txn := m.Begin()
	rid, _, ok := m.IndexProbe(txn, tbl, tbl.Index(0), 10)
	if !ok {
		t.Fatal("probe failed")
	}
	newRec := bytes.Repeat([]byte{0xAB}, 60)
	if err := m.UpdateTuple(txn, tbl, rid, 10, newRec); err != nil {
		t.Fatal(err)
	}
	_, got, ok := m.IndexProbe(txn, tbl, tbl.Index(0), 10)
	if !ok || !bytes.Equal(got, newRec) {
		t.Error("update not visible")
	}
	m.Commit(txn)
	buf.TxnEnd()

	tr := buf.Take()[0]
	var haveWrite bool
	for _, e := range tr.Events {
		if e.Kind == trace.KindDataWrite && e.Addr >= DataBase {
			haveWrite = true
		}
	}
	if !haveWrite {
		t.Error("update produced no data-page write events")
	}
}

func TestInsertAllocatesPagesRarely(t *testing.T) {
	m, buf, tbl := tracedManager(t, 10, 100)
	alloc := m.Layout().Routine(codemap.RAllocatePage)
	// ~78 records per page: 1000 inserts should allocate ~12 pages.
	allocs := 0
	for i := 0; i < 1000; i++ {
		buf.TxnBegin(0, "ins")
		txn := m.Begin()
		if _, err := m.InsertTuple(txn, tbl, []uint64{uint64(1000 + i)}, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		m.Commit(txn)
		buf.TxnEnd()
		tr := buf.Take()[0]
		seen := false
		for _, e := range tr.Events {
			if e.Kind == trace.KindInstr && alloc.Contains(e.Addr) {
				seen = true
				break
			}
		}
		if seen {
			allocs++
		}
	}
	if allocs < 5 || allocs > 30 {
		t.Errorf("allocate-page path taken in %d/1000 inserts, want ~13 (rare path)", allocs)
	}
}

func TestInsertDuplicateKeyFails(t *testing.T) {
	m, _, tbl := tracedManager(t, 10, 40)
	m.SetRecorder(trace.Discard{})
	txn := m.Begin()
	if _, err := m.InsertTuple(txn, tbl, []uint64{5}, make([]byte, 40)); err == nil {
		t.Error("duplicate insert succeeded")
	}
	m.Abort(txn)
}

func TestInsertKeyArityChecked(t *testing.T) {
	m, _, tbl := tracedManager(t, 1, 40)
	m.SetRecorder(trace.Discard{})
	txn := m.Begin()
	if _, err := m.InsertTuple(txn, tbl, nil, make([]byte, 40)); err == nil {
		t.Error("insert with missing keys succeeded")
	}
	if err := m.DeleteTuple(txn, tbl, RID{}, nil); err == nil {
		t.Error("delete with missing keys succeeded")
	}
	m.Abort(txn)
}

func TestDeleteTuple(t *testing.T) {
	m, buf, tbl := tracedManager(t, 200, 50)
	buf.TxnBegin(0, "del")
	txn := m.Begin()
	rid, _, ok := m.IndexProbe(txn, tbl, tbl.Index(0), 77)
	if !ok {
		t.Fatal("probe failed")
	}
	if err := m.DeleteTuple(txn, tbl, rid, []uint64{77}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m.IndexProbe(txn, tbl, tbl.Index(0), 77); ok {
		t.Error("deleted key still probeable")
	}
	if err := m.DeleteTuple(txn, tbl, rid, []uint64{77}); err == nil {
		t.Error("double delete succeeded")
	}
	m.Commit(txn)
	buf.TxnEnd()
	if tbl.Rows() != 199 {
		t.Errorf("Rows = %d, want 199", tbl.Rows())
	}
}

func TestIndexScanBounds(t *testing.T) {
	m, buf, tbl := tracedManager(t, 300, 40)
	buf.TxnBegin(0, "scan")
	txn := m.Begin()
	res := m.IndexScan(txn, tbl.Index(0), 50, 60, true, true, 0)
	if len(res) != 11 || res[0].Key != 50 || res[10].Key != 60 {
		t.Errorf("scan [50,60] returned %d results (first %v)", len(res), res[0])
	}
	res = m.IndexScan(txn, tbl.Index(0), 50, 60, false, false, 0)
	if len(res) != 9 {
		t.Errorf("scan (50,60) returned %d results, want 9", len(res))
	}
	res = m.IndexScan(txn, tbl.Index(0), 0, ^uint64(0), true, true, 25)
	if len(res) != 25 {
		t.Errorf("limited scan returned %d, want 25", len(res))
	}
	m.Commit(txn)
	buf.TxnEnd()

	tr := buf.Take()[0]
	ops := tr.Ops()
	if len(ops) != 4 {
		t.Fatalf("ops = %d, want 3 scans + commit", len(ops))
	}
	for _, o := range ops[:3] {
		if o.Op != trace.OpIndexScan {
			t.Errorf("op = %v, want scan", o.Op)
		}
	}
	if ops[3].Op != trace.OpCommit {
		t.Errorf("last op = %v, want commit", ops[3].Op)
	}
}

// TestFigure1FootprintShape checks the live (measured, not static) footprint
// relationships of Figure 1 on real operation traces: scan's fetch-next part
// is several times smaller than initialize-cursor, and the probe chain
// find key > lookup > traverse holds.
func TestFigure1FootprintShape(t *testing.T) {
	m, buf, tbl := tracedManager(t, 2000, 60)
	lay := m.Layout()

	buf.TxnBegin(0, "probe")
	txn := m.Begin()
	m.IndexProbe(txn, tbl, tbl.Index(0), 1234)
	m.Commit(txn)
	buf.TxnEnd()
	tr := buf.Take()[0]

	instr, _ := tr.Footprint()
	within := func(name string) int {
		seg := lay.Routine(name)
		n := 0
		for a := range instr {
			if seg.Contains(a) {
				n++
			}
		}
		return n
	}
	// The probe trace must touch all of find_key/lookup/traverse and the
	// lock fast path but none of the insert machinery.
	if within(codemap.RFindKey) == 0 || within(codemap.RLookup) == 0 || within(codemap.RTraverse) == 0 {
		t.Error("probe trace missing its Figure 1 routines")
	}
	if within(codemap.RLockAcquire) == 0 {
		t.Error("probe did not run the lock manager")
	}
	if within(codemap.RBtreeSMO) != 0 || within(codemap.RCreateRecord) != 0 {
		t.Error("probe trace touched insert machinery")
	}
}

func TestProbeIndexOnly(t *testing.T) {
	m, buf, tbl := tracedManager(t, 50, 40)
	buf.TxnBegin(0, "p")
	txn := m.Begin()
	rid, ok := m.ProbeIndexOnly(txn, tbl.Index(0), 7)
	if !ok || rid == (RID{}) {
		t.Fatalf("ProbeIndexOnly = %v,%v", rid, ok)
	}
	if _, ok := m.ProbeIndexOnly(txn, tbl.Index(0), 70000); ok {
		t.Error("ProbeIndexOnly found missing key")
	}
	m.Commit(txn)
	buf.TxnEnd()
}

// TestTraceStructureAcrossMixedTransaction validates the trace protocol over
// a transaction touching every operation type.
func TestTraceStructureAcrossMixedTransaction(t *testing.T) {
	m, buf, tbl := tracedManager(t, 500, 60)
	buf.TxnBegin(3, "mixed")
	txn := m.Begin()
	rid, _, _ := m.IndexProbe(txn, tbl, tbl.Index(0), 5)
	m.UpdateTuple(txn, tbl, rid, 5, make([]byte, 60))
	m.InsertTuple(txn, tbl, []uint64{90001}, make([]byte, 60))
	m.IndexScan(txn, tbl.Index(0), 10, 20, true, true, 0)
	rid2, _, _ := m.IndexProbe(txn, tbl, tbl.Index(0), 6)
	m.DeleteTuple(txn, tbl, rid2, []uint64{6})
	m.Commit(txn)
	buf.TxnEnd()

	tr := buf.Take()[0]
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	wantOps := []trace.OpType{
		trace.OpIndexProbe, trace.OpUpdateTuple, trace.OpInsertTuple,
		trace.OpIndexScan, trace.OpIndexProbe, trace.OpDeleteTuple,
		trace.OpCommit,
	}
	ops := tr.Ops()
	if len(ops) != len(wantOps) {
		t.Fatalf("got %d ops, want %d", len(ops), len(wantOps))
	}
	for i, o := range ops {
		if o.Op != wantOps[i] {
			t.Errorf("op %d = %v, want %v", i, o.Op, wantOps[i])
		}
	}
	if tr.Type != 3 || tr.TypeName != "mixed" {
		t.Errorf("trace type = %d %q", tr.Type, tr.TypeName)
	}
}

// TestDataAddressesDisjointFromCode: every data access must land outside the
// code layout.
func TestDataAddressesDisjointFromCode(t *testing.T) {
	m, buf, tbl := tracedManager(t, 100, 60)
	buf.TxnBegin(0, "x")
	txn := m.Begin()
	m.IndexProbe(txn, tbl, tbl.Index(0), 42)
	m.InsertTuple(txn, tbl, []uint64{55555}, make([]byte, 60))
	m.Commit(txn)
	buf.TxnEnd()
	tr := buf.Take()[0]
	lay := m.Layout()
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindDataRead, trace.KindDataWrite:
			if _, inCode := lay.Find(e.Addr); inCode {
				t.Fatalf("data access %#x falls inside code layout", e.Addr)
			}
		case trace.KindInstr:
			if _, inCode := lay.Find(e.Addr); !inCode {
				t.Fatalf("instruction fetch %#x outside code layout", e.Addr)
			}
		}
	}
}

func TestManagerCatalogAccessors(t *testing.T) {
	m := testManager()
	tbl := m.CreateTable("acc")
	idx := tbl.CreateIndex("acc_pk")
	if got, ok := m.Table("acc"); !ok || got != tbl {
		t.Error("Table lookup failed")
	}
	if _, ok := m.Table("nope"); ok {
		t.Error("Table of unknown name succeeded")
	}
	if got, ok := m.Index("acc_pk"); !ok || got != idx {
		t.Error("Index lookup failed")
	}
	if m.MustTable("acc") != tbl {
		t.Error("MustTable failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable of unknown name did not panic")
		}
	}()
	m.MustTable("nope")
}

func TestCreateIndexOnNonEmptyTablePanics(t *testing.T) {
	m, _, tbl := tracedManager(t, 5, 40)
	m.SetRecorder(trace.Discard{})
	defer func() {
		if recover() == nil {
			t.Error("CreateIndex on populated table did not panic")
		}
	}()
	tbl.CreateIndex("late")
}
