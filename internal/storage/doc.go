// Package storage implements the transactional storage manager that
// generates the paper's workload traces: a miniature Shore-MT with slotted
// pages, a buffer pool, B+tree indexes, an S/X lock manager, and a log
// manager (Section 4.1 of the paper runs Shore-MT with the Aether logging
// and speculative-lock optimizations; we model their scalable fast paths).
//
// Every routine is instrumented: executing it emits instruction-block
// fetches from its codemap segment and data-block accesses from the real
// pages, lock buckets, and log buffer it touches, producing the traces that
// the Section 2 characterization study analyzes and the Section 4
// scheduling mechanisms replay. Control flow is real — the allocate-page
// path runs only when a page actually fills, structural modifications only
// when a node actually splits — which is what makes the Figure 2 overlap
// structure organic rather than hardcoded.
package storage
