package storage

import "fmt"

// LockMode is the requested access mode.
type LockMode uint8

// Lock modes: shared (readers) and exclusive (writers).
const (
	LockS LockMode = iota
	LockX
)

// String returns "S" or "X".
func (m LockMode) String() string {
	if m == LockX {
		return "X"
	}
	return "S"
}

// lockName identifies a lockable object: a (space, key) pair where space is
// a table or index ID and key is a record key or page number.
type lockName struct {
	space uint32
	key   uint64
}

// lockEntry tracks the holders of one lock.
type lockEntry struct {
	mode    LockMode
	holders map[uint64]int // txn id → acquisition count
}

// lockManager is a hash-partitioned S/X lock table. Trace generation is
// single-threaded (deterministic), so requests never block; conflicting
// requests from *other* transactions fail fast and are counted — the
// workload drivers are written so this does not occur, and tests assert the
// conflict behaviour directly.
type lockManager struct {
	table map[lockName]*lockEntry

	acquires, releases, conflicts uint64
}

func newLockManager() *lockManager {
	return &lockManager{table: make(map[lockName]*lockEntry)}
}

func lockBucketAddr(n lockName) uint64 {
	h := (uint64(n.space)*0x9e3779b97f4a7c15 ^ n.key) * 0xff51afd7ed558ccd
	return LockBase + (h%LockBuckets)*64
}

// lockHeaderAddr is the lock-table header block read on every acquisition —
// one of the paper's few commonly shared data blocks.
func lockHeaderAddr() uint64 { return LockBase + LockBuckets*64 }

// acquire takes a lock for txn, emitting the instrumented lock_acquire
// path. Re-acquisition by the holder and S→X upgrade by a sole holder
// succeed; conflicts return false.
//
// Code-range map for lock_acquire (120 blocks):
//
//	[0,30)   hash + header checks
//	[30,50)  bucket chain walk (looped per chain hop)
//	[50,95)  grant fast path (the Shore-MT speculative-lock-inheritance
//	         style fast path, Section 4.1)
//	[95,120) conflict/queue path
func (lm *lockManager) acquire(m *Manager, txn *Txn, space uint32, key uint64, mode LockMode) bool {
	name := lockName{space: space, key: key}
	m.seg.lockAcquire.EmitRange(m.rec, 0, 30)
	m.dataRead(lockHeaderAddr())
	m.seg.lockAcquire.EmitLoop(m.rec, 30, 50, 1)
	m.dataRead(lockBucketAddr(name))

	e, ok := lm.table[name]
	if !ok {
		e = &lockEntry{mode: mode, holders: map[uint64]int{txn.id: 1}}
		lm.table[name] = e
		lm.granted(m, txn, name)
		return true
	}
	if n, holds := e.holders[txn.id]; holds {
		// Re-entrant acquisition; upgrade S→X only when sole holder.
		if mode == LockX && e.mode == LockS {
			if len(e.holders) > 1 {
				lm.conflict(m)
				return false
			}
			e.mode = LockX
		}
		e.holders[txn.id] = n + 1
		lm.granted(m, txn, name)
		return true
	}
	if e.mode == LockS && mode == LockS {
		e.holders[txn.id] = 1
		lm.granted(m, txn, name)
		return true
	}
	lm.conflict(m)
	return false
}

func (lm *lockManager) granted(m *Manager, txn *Txn, name lockName) {
	m.seg.lockAcquire.EmitRange(m.rec, 50, 95)
	m.dataWrite(lockBucketAddr(name))
	txn.locks = append(txn.locks, name)
	lm.acquires++
}

func (lm *lockManager) conflict(m *Manager) {
	m.seg.lockAcquire.EmitRange(m.rec, 95, 120)
	lm.conflicts++
}

// releaseAll drops every lock held by txn (commit-time release; strict
// two-phase locking). The first release runs the full lock_release body;
// subsequent ones run only its hot loop — modeling the i-cache-resident
// release walk.
func (lm *lockManager) releaseAll(m *Manager, txn *Txn) {
	for i, name := range txn.locks {
		if i == 0 {
			m.seg.lockRelease.EmitAll(m.rec)
		} else {
			m.seg.lockRelease.EmitRange(m.rec, 0, 12)
		}
		m.dataWrite(lockBucketAddr(name))
		e, ok := lm.table[name]
		if !ok {
			panic(fmt.Sprintf("storage: releasing unknown lock %+v", name))
		}
		if n := e.holders[txn.id]; n > 1 {
			e.holders[txn.id] = n - 1
		} else {
			delete(e.holders, txn.id)
		}
		if len(e.holders) == 0 {
			delete(lm.table, name)
		}
		lm.releases++
	}
	txn.locks = txn.locks[:0]
}

// heldBy reports whether txn holds a lock on (space, key).
func (lm *lockManager) heldBy(txnID uint64, space uint32, key uint64) bool {
	e, ok := lm.table[lockName{space: space, key: key}]
	if !ok {
		return false
	}
	_, holds := e.holders[txnID]
	return holds
}
