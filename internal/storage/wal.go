package storage

// logManager is the write-ahead log: an LSN counter and a circular log
// buffer whose blocks are written by every update/insert/delete and by
// every commit. It models the consolidated buffer acquire→copy→release
// path of Aether logging (Johnson et al., cited as the logging optimization
// enabled in Section 4.1).
type logManager struct {
	lsn     uint64
	offset  uint64 // bytes ever written; buffer position = offset % LogBufBytes
	records uint64
	flushes uint64
}

// Log record kinds (payload layout is irrelevant to tracing; sizes matter).
type logKind uint8

const (
	logUpdate logKind = iota
	logInsert
	logDelete
	logCommit
)

const (
	logRecordHeader = 48
	logFlushChunk   = 64 << 10 // flush path taken when crossing a 64KB boundary
)

func newLogManager() *logManager {
	return &logManager{lsn: 1}
}

// insert appends one log record and returns its LSN, emitting the
// instrumented log_insert path and the log-buffer block writes.
//
// Code-range map for log_insert (120 blocks):
//
//	[0,60)    buffer-slot reserve (CAS fast path)
//	[60,100)  payload copy loop (looped per 128 payload bytes)
//	[100,120) flush/group-commit path (on 64KB boundary crossings)
func (lg *logManager) insert(m *Manager, txn *Txn, kind logKind, payload int) uint64 {
	m.seg.logInsert.EmitRange(m.rec, 0, 60)
	size := uint64(logRecordHeader + payload)

	// Copy loop: one iteration per 128 bytes of record.
	iters := int((size + 127) / 128)
	if iters > 8 {
		iters = 8
	}
	m.seg.logInsert.EmitLoop(m.rec, 60, 100, 1)
	for i := 1; i < iters; i++ {
		m.seg.logInsert.EmitRange(m.rec, 60, 72) // hot inner copy loop
	}

	// Write the touched log-buffer blocks.
	start := lg.offset
	end := lg.offset + size
	for blk := start &^ 63; blk < end; blk += 64 {
		m.dataWrite(LogBase + blk%LogBufBytes)
	}

	if start/logFlushChunk != end/logFlushChunk {
		m.seg.logInsert.EmitRange(m.rec, 100, 120)
		lg.flushes++
	}

	lg.offset = end
	lg.records++
	lsn := lg.lsn
	lg.lsn++
	txn.lastLSN = lsn
	return lsn
}
