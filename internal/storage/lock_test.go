package storage

import "testing"

func TestLockSharedCompatible(t *testing.T) {
	m := testManager()
	t1, t2 := m.Begin(), m.Begin()
	if !m.lock.acquire(m, t1, 1, 100, LockS) {
		t.Fatal("first S lock denied")
	}
	if !m.lock.acquire(m, t2, 1, 100, LockS) {
		t.Fatal("second S lock denied")
	}
	if !m.lock.heldBy(t1.id, 1, 100) || !m.lock.heldBy(t2.id, 1, 100) {
		t.Error("holders not recorded")
	}
}

func TestLockExclusiveConflicts(t *testing.T) {
	m := testManager()
	t1, t2 := m.Begin(), m.Begin()
	if !m.lock.acquire(m, t1, 1, 100, LockX) {
		t.Fatal("X lock denied")
	}
	if m.lock.acquire(m, t2, 1, 100, LockS) {
		t.Error("S granted over X")
	}
	if m.lock.acquire(m, t2, 1, 100, LockX) {
		t.Error("X granted over X")
	}
	_, _, conflicts := m.LockStats()
	if conflicts != 2 {
		t.Errorf("conflicts = %d, want 2", conflicts)
	}
}

func TestLockReentrantAndUpgrade(t *testing.T) {
	m := testManager()
	t1 := m.Begin()
	if !m.lock.acquire(m, t1, 1, 5, LockS) {
		t.Fatal("S denied")
	}
	if !m.lock.acquire(m, t1, 1, 5, LockS) {
		t.Fatal("re-entrant S denied")
	}
	if !m.lock.acquire(m, t1, 1, 5, LockX) {
		t.Fatal("sole-holder upgrade denied")
	}
	// Upgrade blocked when shared with another txn.
	t2 := m.Begin()
	if !m.lock.acquire(m, t2, 1, 6, LockS) || !m.lock.acquire(m, t1, 1, 6, LockS) {
		t.Fatal("setup S locks denied")
	}
	if m.lock.acquire(m, t1, 1, 6, LockX) {
		t.Error("upgrade granted while shared")
	}
}

func TestLockReleaseAll(t *testing.T) {
	m := testManager()
	t1, t2 := m.Begin(), m.Begin()
	m.lock.acquire(m, t1, 1, 1, LockX)
	m.lock.acquire(m, t1, 1, 2, LockS)
	m.lock.acquire(m, t1, 1, 2, LockS) // re-entrant
	m.Commit(t1)
	if t1.LockCount() != 0 {
		t.Errorf("locks after commit = %d", t1.LockCount())
	}
	if !m.lock.acquire(m, t2, 1, 1, LockX) {
		t.Error("lock not freed by commit")
	}
	if len(m.lock.table) != 1 {
		t.Errorf("lock table has %d entries, want 1", len(m.lock.table))
	}
}

func TestLockDifferentSpacesIndependent(t *testing.T) {
	m := testManager()
	t1, t2 := m.Begin(), m.Begin()
	if !m.lock.acquire(m, t1, 1, 9, LockX) {
		t.Fatal("X denied")
	}
	if !m.lock.acquire(m, t2, 2, 9, LockX) {
		t.Error("same key in different space blocked")
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	m := testManager()
	t1 := m.Begin()
	m.lock.acquire(m, t1, 1, 1, LockX)
	m.Abort(t1)
	t2 := m.Begin()
	if !m.lock.acquire(m, t2, 1, 1, LockX) {
		t.Error("abort did not release locks")
	}
}

func TestCommitPanicsTwice(t *testing.T) {
	m := testManager()
	t1 := m.Begin()
	m.Commit(t1)
	defer func() {
		if recover() == nil {
			t.Error("double commit did not panic")
		}
	}()
	m.Commit(t1)
}

func TestLogAdvancesAndFlushes(t *testing.T) {
	m := testManager()
	t1 := m.Begin()
	start := m.LogBytes()
	for i := 0; i < 2000; i++ {
		m.wal.insert(m, t1, logUpdate, 100)
	}
	if m.LogBytes() <= start {
		t.Error("log did not advance")
	}
	if m.wal.flushes == 0 {
		t.Error("no flush boundary crossed after 2000 records")
	}
	if m.wal.lsn != uint64(2001) {
		t.Errorf("lsn = %d, want 2001", m.wal.lsn)
	}
	if t1.lastLSN == 0 {
		t.Error("txn lastLSN not set")
	}
}

func TestLockModeString(t *testing.T) {
	if LockS.String() != "S" || LockX.String() != "X" {
		t.Error("LockMode.String wrong")
	}
}
