package storage

import (
	"fmt"
	"sort"

	"addict/internal/codemap"
)

// BTree is a B+tree index: internal nodes route by key, leaves hold
// (key, RID) entries and are chained for range scans. Nodes live in
// buffer-pool frames so every descent level performs an instrumented
// buffer-pool probe and node-block reads, exactly like the page-at-a-time
// descent of Figure 1's traverse routine.
type BTree struct {
	m      *Manager
	name   string
	id     uint32
	root   PageID
	fanout int // max keys per node; an insert overflowing this splits
	height int
	size   int

	splits, merges, rootSplits uint64
}

// bnode is an index node. Key slots are addressed at byte offset
// 64 + 16*i within the node's page for data-trace emission.
type bnode struct {
	pid  PageID
	leaf bool
	keys []uint64
	vals []RID    // leaves: parallel to keys
	kids []PageID // internal: len(keys)+1 children
	next PageID   // leaf chain; 0 terminates
}

const (
	// defaultFanout is the max keys per node: 8KB page / 16B entries,
	// leaving headroom for headers, rounded to a power of two.
	defaultFanout = 128
	// minFill is the underflow bound for deletes (merge below this).
	minFill = defaultFanout / 4
)

func keySlotAddr(pid PageID, i int) uint64 { return PageAddr(pid, 64+16*i) }

// descentStyle selects the code segment and block ranges emitted while
// walking the tree. Probes and scans use the traverse routine of Figure 1;
// inserts and deletes use the leaner insert-optimized descent.
type descentStyle struct {
	seg        codemap.Segment
	prologue   [2]int // per level
	searchBase int    // per binary-search step s with outcome b: searchBase+2s+b
	child      [2]int // per internal level
	leafFound  [2]int
	leafMiss   [2]int
}

func (m *Manager) traverseStyle() descentStyle {
	return descentStyle{
		seg:        m.seg.traverse,
		prologue:   [2]int{0, 60},
		searchBase: 60,
		child:      [2]int{90, 110},
		leafFound:  [2]int{110, 190},
		leafMiss:   [2]int{190, 200},
	}
}

func (m *Manager) descentStyleInsert() descentStyle {
	return descentStyle{
		seg:        m.seg.indexDescent,
		prologue:   [2]int{0, 30},
		searchBase: 30,
		child:      [2]int{50, 70},
		leafFound:  [2]int{70, 110},
		leafMiss:   [2]int{110, 150},
	}
}

// newNode allocates a node page and installs its frame.
func (t *BTree) newNode(leaf bool) *bnode {
	n := &bnode{pid: t.m.allocPage(), leaf: leaf}
	t.m.bp.install(t.m, &frame{pid: n.pid, node: n})
	return n
}

// newBTree is called by Manager.CreateIndex.
func newBTree(m *Manager, name string, id uint32) *BTree {
	t := &BTree{m: m, name: name, id: id, fanout: defaultFanout, height: 1}
	root := t.newNode(true)
	t.root = root.pid
	return t
}

// Name returns the index name.
func (t *BTree) Name() string { return t.name }

// ID returns the index's lock-space identifier.
func (t *BTree) ID() uint32 { return t.id }

// Size returns the number of entries.
func (t *BTree) Size() int { return t.size }

// Height returns the number of levels (1 = a lone leaf).
func (t *BTree) Height() int { return t.height }

// Splits returns (leaf+internal splits, root splits, merges) — the SMO
// counters behind Figure 2's rare insert paths.
func (t *BTree) Splits() (splits, rootSplits, merges uint64) {
	return t.splits, t.rootSplits, t.merges
}

// descriptorAddr is the index-descriptor metadata block, read at the start
// of every operation touching the index (a commonly shared data block).
func (t *BTree) descriptorAddr() uint64 { return MetaBase + 0x10_0000 + uint64(t.id)*64 }

// searchNode runs an instrumented binary search for key inside n, emitting
// one search block per comparison step (which blocks depends on the
// outcomes, so different keys exercise different subsets — the organic
// source of the paper's mid-frequency instruction blocks) plus a read of
// the probed key slot. It returns the first index i with keys[i] >= key,
// and whether keys[i] == key.
func (t *BTree) searchNode(n *bnode, key uint64, st descentStyle) (int, bool) {
	m := t.m
	lo, hi := 0, len(n.keys)
	step := 0
	for lo < hi {
		mid := (lo + hi) / 2
		m.dataRead(keySlotAddr(n.pid, mid))
		outcome := 0
		if n.keys[mid] < key {
			outcome = 1
			lo = mid + 1
		} else {
			hi = mid
		}
		b := st.searchBase + 2*step + outcome
		m.rec.Instr(st.seg.Addr(b % st.seg.NBlocks))
		if step < 7 { // cap the distinct search blocks at 16
			step++
		}
	}
	found := lo < len(n.keys) && n.keys[lo] == key
	return lo, found
}

// childIndex returns which child to descend into for key:
// kids[i] holds keys k with keys[i-1] <= k < keys[i].
func childIndex(keys []uint64, key uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > key })
}

// descend walks from the root to the leaf for key, pinning every node on
// the path. Callers must unpin via releasePath. The instrumented per-level
// work is: style prologue, buffer-pool find, binary search, child select.
func (t *BTree) descend(key uint64, st descentStyle) (path []*bnode, frames []*frame) {
	m := t.m
	pid := t.root
	for {
		st.seg.EmitRange(m.rec, st.prologue[0], st.prologue[1])
		f := m.bp.find(m, pid)
		n := f.node
		if n == nil {
			panic(fmt.Sprintf("storage: page %d is not an index node", pid))
		}
		path = append(path, n)
		frames = append(frames, f)
		if n.leaf {
			return path, frames
		}
		// Internal search: find the child. The binary-search emission uses
		// the same searchNode machinery.
		i, _ := t.searchNode(n, key, st)
		// Convert lower-bound position to child index: keys[i] == key means
		// key belongs to the right child of separator i.
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		st.seg.EmitRange(m.rec, st.child[0], st.child[1])
		pid = n.kids[i]
	}
}

func (t *BTree) releasePath(frames []*frame) {
	for _, f := range frames {
		t.m.bp.unpin(f)
	}
}

// probe finds key and returns its RID. Emission: leaf found/miss ranges.
func (t *BTree) probe(key uint64, st descentStyle) (RID, bool) {
	path, frames := t.descend(key, st)
	defer t.releasePath(frames)
	leaf := path[len(path)-1]
	i, found := t.searchNode(leaf, key, st)
	if found {
		st.seg.EmitRange(t.m.rec, st.leafFound[0], st.leafFound[1])
		t.m.dataRead(keySlotAddr(leaf.pid, i))
		return leaf.vals[i], true
	}
	st.seg.EmitRange(t.m.rec, st.leafMiss[0], st.leafMiss[1])
	return RID{}, false
}

// insertEntry adds (key, rid); duplicate keys are rejected (all indexes in
// the reproduction use composite-encoded unique keys). Splits — the
// structural modifications forming 65% of create-index-entry's footprint in
// Figure 1 — propagate up the pinned path and emit the btree_smo ranges.
func (t *BTree) insertEntry(key uint64, rid RID) bool {
	m := t.m
	st := m.descentStyleInsert()
	path, frames := t.descend(key, st)
	defer t.releasePath(frames)
	leaf := path[len(path)-1]
	i, found := t.searchNode(leaf, key, st)
	if found {
		st.seg.EmitRange(m.rec, st.leafMiss[0], st.leafMiss[1])
		return false
	}
	st.seg.EmitRange(m.rec, st.leafFound[0], st.leafFound[1])
	leaf.keys = insertU64(leaf.keys, i, key)
	leaf.vals = insertRID(leaf.vals, i, rid)
	m.dataWrite(keySlotAddr(leaf.pid, i))
	t.size++
	if len(leaf.keys) > t.fanout {
		t.splitPath(path)
	}
	return true
}

// splitPath performs the structural modification for an overflowing leaf,
// walking up the (pinned) path. btree_smo code ranges (700 blocks):
//
//	[0,250)   leaf split
//	[250,450) parent separator insert (per propagated level)
//	[450,700) root split / new root creation
func (t *BTree) splitPath(path []*bnode) {
	m := t.m
	smo := m.seg.btreeSMO
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.keys) <= t.fanout {
			break
		}
		var right *bnode
		var sep uint64
		mid := len(n.keys) / 2
		if n.leaf {
			smo.EmitRange(m.rec, 0, 250)
			right = t.newNode(true)
			sep = n.keys[mid]
			right.keys = append(right.keys, n.keys[mid:]...)
			right.vals = append(right.vals, n.vals[mid:]...)
			n.keys = truncU64(n.keys, mid)
			n.vals = truncRID(n.vals, mid)
			right.next = n.next
			n.next = right.pid
		} else {
			smo.EmitRange(m.rec, 250, 450)
			right = t.newNode(false)
			sep = n.keys[mid]
			right.keys = append(right.keys, n.keys[mid+1:]...)
			right.kids = append(right.kids, n.kids[mid+1:]...)
			n.keys = truncU64(n.keys, mid)
			n.kids = truncPID(n.kids, mid+1)
		}
		m.dataWrite(keySlotAddr(n.pid, 0))
		m.dataWrite(keySlotAddr(right.pid, 0))
		t.splits++

		if i == 0 {
			// Root split: the tree grows.
			smo.EmitRange(m.rec, 450, 700)
			newRoot := t.newNode(false)
			newRoot.keys = append(newRoot.keys, sep)
			newRoot.kids = append(newRoot.kids, n.pid, right.pid)
			t.root = newRoot.pid
			t.height++
			t.rootSplits++
			m.dataWrite(keySlotAddr(newRoot.pid, 0))
			return
		}
		parent := path[i-1]
		pos := childIndex(parent.keys, sep)
		parent.keys = insertU64(parent.keys, pos, sep)
		parent.kids = insertPID(parent.kids, pos+1, right.pid)
		m.dataWrite(keySlotAddr(parent.pid, pos))
	}
}

// deleteEntry removes key, rebalancing on underflow via borrow or merge
// (btree_merge code). Returns false if the key is absent.
func (t *BTree) deleteEntry(key uint64) bool {
	m := t.m
	st := m.descentStyleInsert()
	path, frames := t.descend(key, st)
	defer t.releasePath(frames)
	leaf := path[len(path)-1]
	i, found := t.searchNode(leaf, key, st)
	if !found {
		st.seg.EmitRange(m.rec, st.leafMiss[0], st.leafMiss[1])
		return false
	}
	st.seg.EmitRange(m.rec, st.leafFound[0], st.leafFound[1])
	leaf.keys = removeU64(leaf.keys, i)
	leaf.vals = removeRID(leaf.vals, i)
	m.dataWrite(keySlotAddr(leaf.pid, i))
	t.size--
	t.rebalancePath(path)
	return true
}

// rebalancePath fixes underflows from the leaf upward. btree_merge code
// ranges (300 blocks):
//
//	[0,120)   borrow from sibling
//	[120,240) merge with sibling
//	[240,300) root collapse
func (t *BTree) rebalancePath(path []*bnode) {
	m := t.m
	mg := m.seg.btreeMerge
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		if len(n.keys) >= minFill {
			return
		}
		parent := path[i-1]
		pos := -1
		for k, kid := range parent.kids {
			if kid == n.pid {
				pos = k
				break
			}
		}
		if pos < 0 {
			panic("storage: node not found in parent during rebalance")
		}
		var left, right *bnode
		if pos > 0 {
			left = t.node(parent.kids[pos-1])
		}
		if pos < len(parent.kids)-1 {
			right = t.node(parent.kids[pos+1])
		}
		switch {
		case left != nil && len(left.keys) > minFill:
			mg.EmitRange(m.rec, 0, 120)
			t.borrowFromLeft(parent, pos, left, n)
		case right != nil && len(right.keys) > minFill:
			mg.EmitRange(m.rec, 0, 120)
			t.borrowFromRight(parent, pos, n, right)
		case left != nil:
			mg.EmitRange(m.rec, 120, 240)
			t.mergeNodes(parent, pos-1, left, n)
		case right != nil:
			mg.EmitRange(m.rec, 120, 240)
			t.mergeNodes(parent, pos, n, right)
		default:
			return // root leaf; nothing to do
		}
		t.merges++
	}
	// Root collapse: an internal root left with a single child shrinks the
	// tree.
	root := path[0]
	if !root.leaf && len(root.keys) == 0 {
		mg.EmitRange(m.rec, 240, 300)
		t.root = root.kids[0]
		t.height--
	}
}

func (t *BTree) borrowFromLeft(parent *bnode, pos int, left, n *bnode) {
	last := len(left.keys) - 1
	if n.leaf {
		n.keys = insertU64(n.keys, 0, left.keys[last])
		n.vals = insertRID(n.vals, 0, left.vals[last])
		left.keys = truncU64(left.keys, last)
		left.vals = truncRID(left.vals, last)
		parent.keys[pos-1] = n.keys[0]
	} else {
		n.keys = insertU64(n.keys, 0, parent.keys[pos-1])
		n.kids = insertPID(n.kids, 0, left.kids[len(left.kids)-1])
		parent.keys[pos-1] = left.keys[last]
		left.keys = truncU64(left.keys, last)
		left.kids = truncPID(left.kids, len(left.kids)-1)
	}
	t.m.dataWrite(keySlotAddr(n.pid, 0))
	t.m.dataWrite(keySlotAddr(parent.pid, pos-1))
}

func (t *BTree) borrowFromRight(parent *bnode, pos int, n, right *bnode) {
	if n.leaf {
		n.keys = append(n.keys, right.keys[0])
		n.vals = append(n.vals, right.vals[0])
		right.keys = removeU64(right.keys, 0)
		right.vals = removeRID(right.vals, 0)
		parent.keys[pos] = right.keys[0]
	} else {
		n.keys = append(n.keys, parent.keys[pos])
		n.kids = append(n.kids, right.kids[0])
		parent.keys[pos] = right.keys[0]
		right.keys = removeU64(right.keys, 0)
		right.kids = removePID(right.kids, 0)
	}
	t.m.dataWrite(keySlotAddr(n.pid, len(n.keys)-1))
	t.m.dataWrite(keySlotAddr(parent.pid, pos))
}

// mergeNodes folds right into left; sepIdx is the parent separator between
// them.
func (t *BTree) mergeNodes(parent *bnode, sepIdx int, left, right *bnode) {
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, parent.keys[sepIdx])
		left.keys = append(left.keys, right.keys...)
		left.kids = append(left.kids, right.kids...)
	}
	parent.keys = removeU64(parent.keys, sepIdx)
	parent.kids = removePID(parent.kids, sepIdx+1)
	t.m.dataWrite(keySlotAddr(left.pid, 0))
	t.m.dataWrite(keySlotAddr(parent.pid, sepIdx))
	// The right node is dead; drop its frame from the pool maps.
	delete(t.m.bp.frames, right.pid)
	delete(t.m.bp.disk, right.pid)
}

// node fetches a node WITHOUT buffer-pool instrumentation — used only by
// rebalance sibling peeks (Shore-MT latches siblings it already has fixed;
// we fold that cost into the merge code ranges).
func (t *BTree) node(pid PageID) *bnode {
	if f, ok := t.m.bp.frames[pid]; ok {
		return f.node
	}
	if f, ok := t.m.bp.disk[pid]; ok {
		return f.node
	}
	panic(fmt.Sprintf("storage: missing index node %d", pid))
}

// scanRange walks leaves from the first key >= lo (or > lo when exclusive)
// and calls fn for each entry until key > hi (or >= hi when exclusive) or
// fn returns false. The per-tuple and per-leaf instrumentation is emitted
// by the caller (the index-scan operation); scanRange only emits descent
// and node reads.
func (t *BTree) scanRange(lo, hi uint64, inclLo, inclHi bool, st descentStyle,
	onLeaf func(pid PageID), fn func(key uint64, rid RID) bool) {
	path, frames := t.descend(lo, st)
	leaf := path[len(path)-1]
	i, _ := t.searchNode(leaf, lo, st)
	t.releasePath(frames)
	for {
		for ; i < len(leaf.keys); i++ {
			k := leaf.keys[i]
			if !inclLo && k == lo {
				continue
			}
			if k > hi || (!inclHi && k == hi) {
				return
			}
			t.m.dataRead(keySlotAddr(leaf.pid, i))
			if !fn(k, leaf.vals[i]) {
				return
			}
		}
		if leaf.next == 0 {
			return
		}
		f := t.m.bp.find(t.m, leaf.next)
		leaf = f.node
		t.m.bp.unpin(f)
		if onLeaf != nil {
			onLeaf(leaf.pid)
		}
		i = 0
	}
}

// checkInvariants verifies structural invariants (ordering, fill, uniform
// leaf depth, key-range containment, chain consistency); tests call it
// after mutation storms. Returns the first violation.
func (t *BTree) checkInvariants() error {
	type item struct {
		pid    PageID
		depth  int
		lo, hi uint64 // inclusive bounds; lo=0,hi=^0 at root
		hasLo  bool
	}
	leafDepth := -1
	var prevLeafLast uint64
	var seenLeaf bool
	var walk func(it item) error
	count := 0
	walk = func(it item) error {
		n := t.node(it.pid)
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("btree %s: node %d keys out of order", t.name, n.pid)
			}
		}
		for _, k := range n.keys {
			if it.hasLo && k < it.lo {
				return fmt.Errorf("btree %s: node %d key %d below bound %d", t.name, n.pid, k, it.lo)
			}
			if k > it.hi {
				return fmt.Errorf("btree %s: node %d key %d above bound %d", t.name, n.pid, k, it.hi)
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = it.depth
			} else if leafDepth != it.depth {
				return fmt.Errorf("btree %s: leaf %d at depth %d, expected %d", t.name, n.pid, it.depth, leafDepth)
			}
			if seenLeaf && len(n.keys) > 0 && prevLeafLast >= n.keys[0] {
				return fmt.Errorf("btree %s: leaf chain out of order at node %d", t.name, n.pid)
			}
			if len(n.keys) > 0 {
				prevLeafLast = n.keys[len(n.keys)-1]
				seenLeaf = true
			}
			count += len(n.keys)
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("btree %s: node %d has %d kids for %d keys", t.name, n.pid, len(n.kids), len(n.keys))
		}
		for i, kid := range n.kids {
			child := item{pid: kid, depth: it.depth + 1, lo: it.lo, hi: it.hi, hasLo: it.hasLo}
			if i > 0 {
				child.lo, child.hasLo = n.keys[i-1], true
			}
			if i < len(n.keys) {
				child.hi = n.keys[i] - 1
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(item{pid: t.root, depth: 1, hi: ^uint64(0)}); err != nil {
		return err
	}
	if leafDepth != t.height {
		return fmt.Errorf("btree %s: height %d but leaves at depth %d", t.name, t.height, leafDepth)
	}
	if count != t.size {
		return fmt.Errorf("btree %s: size %d but %d entries found", t.name, t.size, count)
	}
	return nil
}

// Slice-edit helpers that copy on write where aliasing would corrupt
// sibling nodes.

func insertU64(s []uint64, i int, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertRID(s []RID, i int, v RID) []RID {
	s = append(s, RID{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertPID(s []PageID, i int, v PageID) []PageID {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeU64(s []uint64, i int) []uint64 { return append(s[:i], s[i+1:]...) }
func removeRID(s []RID, i int) []RID       { return append(s[:i], s[i+1:]...) }
func removePID(s []PageID, i int) []PageID { return append(s[:i], s[i+1:]...) }

// trunc helpers copy the prefix into a fresh slice so a later append to the
// left node cannot scribble over the right node's entries (they shared a
// backing array at split time).
func truncU64(s []uint64, n int) []uint64 {
	out := make([]uint64, n, n+8)
	copy(out, s[:n])
	return out
}

func truncRID(s []RID, n int) []RID {
	out := make([]RID, n, n+8)
	copy(out, s[:n])
	return out
}

func truncPID(s []PageID, n int) []PageID {
	out := make([]PageID, n, n+8)
	copy(out, s[:n])
	return out
}
