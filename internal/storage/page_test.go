package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageInsertRead(t *testing.T) {
	p := newPage(7, 1)
	rec := []byte("hello, slotted world")
	slot, ok := p.Insert(rec)
	if !ok {
		t.Fatal("insert failed on empty page")
	}
	got, ok := p.Read(slot)
	if !ok || !bytes.Equal(got, rec) {
		t.Fatalf("Read = %q, %v; want %q", got, ok, rec)
	}
	if p.NumSlots() != 1 || p.LiveRecords() != 1 {
		t.Errorf("slots=%d live=%d, want 1/1", p.NumSlots(), p.LiveRecords())
	}
}

func TestPageFillsThenRejects(t *testing.T) {
	p := newPage(1, 1)
	rec := make([]byte, 100)
	n := 0
	for {
		if _, ok := p.Insert(rec); !ok {
			break
		}
		n++
	}
	// 8KB page, 24B header, 104B per record+slot: ~78 records.
	if n < 70 || n > 82 {
		t.Errorf("page held %d 100-byte records, want ~78", n)
	}
	if p.FreeSpace() >= 104 {
		t.Errorf("page claims %dB free after rejecting insert", p.FreeSpace())
	}
}

func TestPageRejectsOversizeAndEmpty(t *testing.T) {
	p := newPage(1, 1)
	if _, ok := p.Insert(nil); ok {
		t.Error("inserted empty record")
	}
	if _, ok := p.Insert(make([]byte, PageSize)); ok {
		t.Error("inserted page-sized record")
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	p := newPage(1, 1)
	slot, _ := p.Insert([]byte("aaaa"))
	if !p.Update(slot, []byte("bb")) {
		t.Fatal("shrinking update failed")
	}
	got, _ := p.Read(slot)
	if string(got) != "bb" {
		t.Errorf("after shrink: %q", got)
	}
	if !p.Update(slot, []byte("cccccccccc")) {
		t.Fatal("growing update failed")
	}
	got, _ = p.Read(slot)
	if string(got) != "cccccccccc" {
		t.Errorf("after grow: %q", got)
	}
}

func TestPageUpdateGrowExhaustsSpace(t *testing.T) {
	p := newPage(1, 1)
	slot, _ := p.Insert([]byte("x"))
	big := make([]byte, PageSize)
	if p.Update(slot, big) {
		t.Error("grow beyond page capacity succeeded")
	}
	// Original record must be intact.
	got, ok := p.Read(slot)
	if !ok || string(got) != "x" {
		t.Errorf("record damaged by failed grow: %q, %v", got, ok)
	}
}

func TestPageDelete(t *testing.T) {
	p := newPage(1, 1)
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if !p.Delete(s0) {
		t.Fatal("delete failed")
	}
	if _, ok := p.Read(s0); ok {
		t.Error("read of dead slot succeeded")
	}
	if p.Delete(s0) {
		t.Error("double delete succeeded")
	}
	got, ok := p.Read(s1)
	if !ok || string(got) != "two" {
		t.Errorf("neighbor slot damaged: %q, %v", got, ok)
	}
	if p.LiveRecords() != 1 {
		t.Errorf("LiveRecords = %d, want 1", p.LiveRecords())
	}
}

func TestPageBoundsChecked(t *testing.T) {
	p := newPage(1, 1)
	if _, ok := p.Read(-1); ok {
		t.Error("Read(-1) succeeded")
	}
	if _, ok := p.Read(0); ok {
		t.Error("Read of nonexistent slot succeeded")
	}
	if p.Update(3, []byte("x")) {
		t.Error("Update of nonexistent slot succeeded")
	}
	if p.Delete(3) {
		t.Error("Delete of nonexistent slot succeeded")
	}
}

// TestPagePropertyRoundtrip inserts random records and verifies every one
// reads back intact regardless of interleaved updates and deletes.
func TestPagePropertyRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newPage(1, 1)
		type entry struct {
			slot int
			data []byte
		}
		var live []entry
		for i := 0; i < 300; i++ {
			switch op := rng.Intn(10); {
			case op < 6: // insert
				rec := make([]byte, 1+rng.Intn(200))
				rng.Read(rec)
				if slot, ok := p.Insert(rec); ok {
					live = append(live, entry{slot, append([]byte(nil), rec...)})
				}
			case op < 8 && len(live) > 0: // update (same size, content change)
				i := rng.Intn(len(live))
				rec := make([]byte, len(live[i].data))
				rng.Read(rec)
				if p.Update(live[i].slot, rec) {
					live[i].data = append([]byte(nil), rec...)
				}
			case len(live) > 0: // delete
				i := rng.Intn(len(live))
				if !p.Delete(live[i].slot) {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		if p.LiveRecords() != len(live) {
			return false
		}
		for _, e := range live {
			got, ok := p.Read(e.slot)
			if !ok || !bytes.Equal(got, e.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
