package storage

import "fmt"

// Table is a heap of slotted data pages plus any number of B+tree indexes.
// Indexes are keyed by caller-encoded uint64 keys (composite TPC keys are
// bit-packed by the workload definitions).
type Table struct {
	m       *Manager
	name    string
	id      uint32
	pages   []PageID
	cur     PageID // current insertion target
	indexes []*BTree
	rows    uint64
}

// CreateTable registers a table with one initial data page.
func (m *Manager) CreateTable(name string) *Table {
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("storage: table %q already exists", name))
	}
	t := &Table{m: m, name: name, id: uint32(len(m.tables) + 1)}
	pid := m.allocPage()
	m.bp.install(m, &frame{pid: pid, page: newPage(pid, t.id)})
	t.pages = append(t.pages, pid)
	t.cur = pid
	m.tables = append(m.tables, t)
	m.byName[name] = t
	return t
}

// CreateIndex attaches a new (empty) B+tree to the table. Indexes must be
// created before rows are inserted; the reproduction has no index build.
func (t *Table) CreateIndex(name string) *BTree {
	if t.rows > 0 {
		panic(fmt.Sprintf("storage: cannot add index %q to non-empty table %q", name, t.name))
	}
	if _, dup := t.m.idxNames[name]; dup {
		panic(fmt.Sprintf("storage: index %q already exists", name))
	}
	idx := newBTree(t.m, name, uint32(len(t.m.indexes)+1))
	t.m.indexes = append(t.m.indexes, idx)
	t.m.idxNames[name] = idx
	t.indexes = append(t.indexes, idx)
	return idx
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// ID returns the table's lock-space identifier.
func (t *Table) ID() uint32 { return t.id }

// Rows returns the number of live rows.
func (t *Table) Rows() uint64 { return t.rows }

// Pages returns the number of data pages.
func (t *Table) Pages() int { return len(t.pages) }

// Indexes returns the table's indexes in creation order.
func (t *Table) Indexes() []*BTree { return t.indexes }

// Index returns the i-th index (0 = primary).
func (t *Table) Index(i int) *BTree { return t.indexes[i] }

// catalogAddr is the table's catalog metadata block — read by every insert
// (free-space lookup) and part of the small common data set.
func (t *Table) catalogAddr() uint64 { return MetaBase + uint64(t.id)*64 }

// page returns a pinned data-page frame via the instrumented buffer pool.
func (t *Table) page(pid PageID) *frame {
	f := t.m.bp.find(t.m, pid)
	if f.page == nil {
		panic(fmt.Sprintf("storage: page %d of table %q is not a data page", pid, t.name))
	}
	return f
}
