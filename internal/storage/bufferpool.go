package storage

import "fmt"

// bufferPool keeps page frames resident. The evaluated configuration keeps
// the whole database in memory (capacity 0 = unbounded, Section 4.1), but a
// bounded pool with clock eviction and reload from the simulated disk is
// implemented and tested for completeness.
//
// The pool is also where the paper's common-data effect comes from: the
// directory buckets (fixed addresses at BufDirBase) and the index root
// frames are touched by every transaction, while record-page frames are
// spread across the sparse data address space.
type bufferPool struct {
	frames   map[PageID]*frame
	disk     map[PageID]*frame // evicted frames ("disk" contents)
	capacity int               // 0 = unbounded
	clock    []PageID
	hand     int

	hits, misses, evictions uint64
}

// frame holds either a slotted data page or a B+tree node.
type frame struct {
	pid  PageID
	page *Page  // non-nil for data pages
	node *bnode // non-nil for index nodes
	pins int
	ref  bool
}

func newBufferPool(capacity int) *bufferPool {
	return &bufferPool{
		frames:   make(map[PageID]*frame),
		disk:     make(map[PageID]*frame),
		capacity: capacity,
	}
}

// dirBucketAddr returns the directory-bucket block read by every hash
// probe for pid.
func dirBucketAddr(pid PageID) uint64 {
	h := uint64(pid) * 0x9e3779b97f4a7c15
	return BufDirBase + (h%BufDirBuckets)*64
}

// find runs the instrumented buffer-pool hash probe: buf_find's hash walk
// and hit (or miss+reload) path, one directory-bucket read, and a latch on
// the frame. The returned frame is pinned; callers unpin when done.
//
// Code-range map for buf_find (50 blocks):
//
//	[0,30)  hash + bucket walk
//	[30,40) hit path (pin, ref bit)
//	[40,50) miss path (frame allocation / eviction / reload)
func (bp *bufferPool) find(m *Manager, pid PageID) *frame {
	m.seg.bufFind.EmitRange(m.rec, 0, 30)
	m.dataRead(dirBucketAddr(pid))
	f, ok := bp.frames[pid]
	if !ok {
		f, ok = bp.disk[pid]
		if !ok {
			panic(fmt.Sprintf("storage: page %d does not exist", pid))
		}
		delete(bp.disk, pid)
		bp.installFrame(m, f)
	} else {
		m.seg.bufFind.EmitRange(m.rec, 30, 40)
		bp.hits++
	}
	m.seg.latch.EmitAll(m.rec)
	m.dataRead(PageAddr(pid, 0)) // frame/page header block
	f.pins++
	f.ref = true
	return f
}

// unpin releases one pin.
func (bp *bufferPool) unpin(f *frame) {
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", f.pid))
	}
	f.pins--
}

// install registers a freshly allocated frame.
func (bp *bufferPool) install(m *Manager, f *frame) {
	if _, dup := bp.frames[f.pid]; dup {
		panic(fmt.Sprintf("storage: page %d installed twice", f.pid))
	}
	if _, dup := bp.disk[f.pid]; dup {
		panic(fmt.Sprintf("storage: page %d installed twice (on disk)", f.pid))
	}
	bp.installFrame(m, f)
}

// installFrame puts a frame into the resident set, evicting an unpinned
// frame first when the pool is bounded and full. Emits the miss path of
// buf_find (allocation happens under the same hash-bucket latch).
func (bp *bufferPool) installFrame(m *Manager, f *frame) {
	m.seg.bufFind.EmitRange(m.rec, 40, 50)
	m.dataRead(dirBucketAddr(f.pid))
	if bp.capacity > 0 && len(bp.frames) >= bp.capacity {
		if !bp.evictOne() {
			panic("storage: buffer pool full of pinned pages")
		}
	}
	bp.frames[f.pid] = f
	bp.clock = append(bp.clock, f.pid)
	bp.misses++
}

// evictOne runs the clock algorithm and evicts the first unpinned,
// unreferenced frame to disk. It returns false if every frame is pinned.
func (bp *bufferPool) evictOne() bool {
	for sweep := 0; sweep < 2*len(bp.clock) && len(bp.clock) > 0; sweep++ {
		bp.hand %= len(bp.clock)
		pid := bp.clock[bp.hand]
		f, ok := bp.frames[pid]
		if !ok { // stale clock entry
			bp.clock = append(bp.clock[:bp.hand], bp.clock[bp.hand+1:]...)
			continue
		}
		if f.pins == 0 && !f.ref {
			delete(bp.frames, pid)
			bp.disk[pid] = f
			bp.clock = append(bp.clock[:bp.hand], bp.clock[bp.hand+1:]...)
			bp.evictions++
			return true
		}
		f.ref = false
		bp.hand++
	}
	return false
}

// resident returns the number of frames in the pool.
func (bp *bufferPool) resident() int { return len(bp.frames) }
