package storage

import (
	"fmt"

	"addict/internal/codemap"
	"addict/internal/trace"
)

// PageID identifies a page (data page or index node) in the database.
type PageID uint64

// RID is a record identifier: data page plus slot.
type RID struct {
	Page PageID
	Slot uint16
}

// Address-space plan. Instruction blocks live at codemap.CodeBase
// (0x0040_0000); all data structures live far above so the two never mix.
// Spreading record pages across a sparse page-ID space reproduces the
// paper's "almost no overlap on the data that represent database records"
// (Section 2.2.2) without materializing 100GB, while the fixed metadata,
// lock-table, and log regions reproduce the small common hot set
// ("metadata information, lock manager, buffer pool structures, and index
// root pages are commonly accessed").
const (
	// PageSize is the size of data pages and index nodes.
	PageSize = 8192

	// MetaBase holds catalog entries and index descriptors: one 64-byte
	// block per table or index, read by every operation that touches it.
	MetaBase uint64 = 0x1000_0000

	// LockBase holds the lock-table buckets (one block each) plus a header
	// block that every acquisition reads.
	LockBase uint64 = 0x2000_0000
	// LockBuckets is the number of lock-table hash buckets.
	LockBuckets = 4096

	// LogBase is the start of the circular log buffer.
	LogBase uint64 = 0x3000_0000
	// LogBufBytes is the log buffer size; inserts wrap around it.
	LogBufBytes = 1 << 20

	// BufDirBase holds the buffer-pool directory buckets (one block each).
	BufDirBase uint64 = 0x4000_0000
	// BufDirBuckets is the number of buffer-pool hash buckets.
	BufDirBuckets = 8192

	// DataBase is the start of page storage; page p occupies
	// [DataBase + p*PageSize, DataBase + (p+1)*PageSize).
	DataBase uint64 = 0x1_0000_0000
)

// PageAddr returns the memory address of byte `off` within page pid.
func PageAddr(pid PageID, off int) uint64 {
	return DataBase + uint64(pid)*PageSize + uint64(off)
}

// Manager is the storage manager instance: it owns the buffer pool, lock
// manager, log, catalog, and the trace recorder that instrumented routines
// write to.
type Manager struct {
	rec  trace.Recorder
	lay  *codemap.Layout
	bp   *bufferPool
	lock *lockManager
	wal  *logManager

	tables   []*Table
	indexes  []*BTree
	byName   map[string]*Table
	idxNames map[string]*BTree

	nextPage PageID
	nextTxn  uint64

	// seg caches the codemap segments on the hot emission path.
	seg segments
}

type segments struct {
	txnBegin, txnCommit                       codemap.Segment
	lockAcquire, lockRelease, latch           codemap.Segment
	bufFind, logInsert                        codemap.Segment
	findKey, lookup, traverse                 codemap.Segment
	scanAPI, initCursor, fetchNext            codemap.Segment
	updateAPI, pinRecord, updatePage          codemap.Segment
	insertAPI, createRecord, allocatePage     codemap.Segment
	createIndexEntry, indexDescent, btreeSMO  codemap.Segment
	deleteAPI, removeRecord, removeIndexEntry codemap.Segment
	btreeMerge                                codemap.Segment
}

// Option configures a Manager.
type Option func(*Manager)

// WithBufferPoolFrames bounds the buffer pool to n frames (0 = unbounded,
// the paper's "buffer-pool is configured to keep the whole database in
// memory").
func WithBufferPoolFrames(n int) Option {
	return func(m *Manager) { m.bp.capacity = n }
}

// NewManager creates a storage manager recording into rec using the given
// code layout.
func NewManager(rec trace.Recorder, lay *codemap.Layout, opts ...Option) *Manager {
	m := &Manager{
		rec:      rec,
		lay:      lay,
		bp:       newBufferPool(0),
		lock:     newLockManager(),
		wal:      newLogManager(),
		byName:   make(map[string]*Table),
		idxNames: make(map[string]*BTree),
		nextPage: 1, // page 0 reserved
	}
	m.seg = segments{
		txnBegin:         lay.Routine(codemap.RTxnBegin),
		txnCommit:        lay.Routine(codemap.RTxnCommit),
		lockAcquire:      lay.Routine(codemap.RLockAcquire),
		lockRelease:      lay.Routine(codemap.RLockRelease),
		latch:            lay.Routine(codemap.RLatch),
		bufFind:          lay.Routine(codemap.RBufFind),
		logInsert:        lay.Routine(codemap.RLogInsert),
		findKey:          lay.Routine(codemap.RFindKey),
		lookup:           lay.Routine(codemap.RLookup),
		traverse:         lay.Routine(codemap.RTraverse),
		scanAPI:          lay.Routine(codemap.RScanAPI),
		initCursor:       lay.Routine(codemap.RInitCursor),
		fetchNext:        lay.Routine(codemap.RFetchNext),
		updateAPI:        lay.Routine(codemap.RUpdateAPI),
		pinRecord:        lay.Routine(codemap.RPinRecord),
		updatePage:       lay.Routine(codemap.RUpdatePage),
		insertAPI:        lay.Routine(codemap.RInsertAPI),
		createRecord:     lay.Routine(codemap.RCreateRecord),
		allocatePage:     lay.Routine(codemap.RAllocatePage),
		createIndexEntry: lay.Routine(codemap.RCreateIndexEntry),
		indexDescent:     lay.Routine(codemap.RIndexDescent),
		btreeSMO:         lay.Routine(codemap.RBtreeSMO),
		deleteAPI:        lay.Routine(codemap.RDeleteAPI),
		removeRecord:     lay.Routine(codemap.RRemoveRecord),
		removeIndexEntry: lay.Routine(codemap.RRemoveIndexEntry),
		btreeMerge:       lay.Routine(codemap.RBtreeMerge),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// SetRecorder swaps the trace recorder. Population runs with trace.Discard,
// then the workload driver installs a trace.Buffer ("after a warm-up
// period", Section 4.1).
func (m *Manager) SetRecorder(rec trace.Recorder) { m.rec = rec }

// Recorder returns the current trace recorder.
func (m *Manager) Recorder() trace.Recorder { return m.rec }

// Layout returns the code layout the manager emits from.
func (m *Manager) Layout() *codemap.Layout { return m.lay }

// allocPage reserves a fresh page ID.
func (m *Manager) allocPage() PageID {
	p := m.nextPage
	m.nextPage++
	return p
}

// PagesAllocated returns the number of pages ever allocated.
func (m *Manager) PagesAllocated() uint64 { return uint64(m.nextPage - 1) }

// dataRead and dataWrite are the single funnels for data-block trace
// emission.
func (m *Manager) dataRead(addr uint64)  { m.rec.Data(addr, false) }
func (m *Manager) dataWrite(addr uint64) { m.rec.Data(addr, true) }

// Tables returns the catalog in creation order.
func (m *Manager) Tables() []*Table { return m.tables }

// Table returns a table by name.
func (m *Manager) Table(name string) (*Table, bool) {
	t, ok := m.byName[name]
	return t, ok
}

// MustTable returns a table by name, panicking if missing (used by workload
// definitions, where absence is a programming error).
func (m *Manager) MustTable(name string) *Table {
	t, ok := m.byName[name]
	if !ok {
		panic(fmt.Sprintf("storage: unknown table %q", name))
	}
	return t
}

// Index returns an index by name.
func (m *Manager) Index(name string) (*BTree, bool) {
	i, ok := m.idxNames[name]
	return i, ok
}

// LogBytes returns the number of log bytes written so far.
func (m *Manager) LogBytes() uint64 { return m.wal.offset }

// LockStats exposes lock-manager activity counters for tests and reports.
func (m *Manager) LockStats() (acquires, releases, conflicts uint64) {
	return m.lock.acquires, m.lock.releases, m.lock.conflicts
}
