package storage

import (
	"fmt"

	"addict/internal/trace"
)

// This file implements the five database operations of Section 2.1 with the
// call flows of Figure 1. Each operation is bracketed by OpBegin/OpEnd trace
// markers — the "indicators ... of the entry and exit points" Algorithm 1
// consumes — and emits its routines' instruction blocks plus the data blocks
// it genuinely touches.

// recordLockSpace distinguishes record locks from index-page locks in the
// lock name space.
const pageLockBit = uint32(1) << 31

// IndexProbe looks up key in idx, locks the matching record in S mode, and
// returns a copy of the tuple (Figure 1: find key → lookup → traverse →
// lock). Missing keys return found=false, as the paper describes ("a flag
// indicating the key is not found").
// find_key code ranges (170 blocks):
//
//	[0,50)   API entry, key normalization, index selection
//	[50,170) tuple fetch, validation, and copy-out after the record lock
func (m *Manager) IndexProbe(txn *Txn, tbl *Table, idx *BTree, key uint64) (RID, []byte, bool) {
	m.rec.OpBegin(trace.OpIndexProbe)
	defer m.rec.OpEnd(trace.OpIndexProbe)

	m.seg.findKey.EmitRange(m.rec, 0, 50)
	m.dataRead(idx.descriptorAddr())
	m.seg.lookup.EmitAll(m.rec)

	rid, found := idx.probe(key, m.traverseStyle())
	if !found {
		return RID{}, nil, false
	}
	if !m.lock.acquire(m, txn, idx.id, key, LockS) {
		// Single-threaded generation cannot conflict; future concurrent use
		// surfaces it as a clean failure.
		return RID{}, nil, false
	}
	// Fetch and copy out the tuple — the post-lock tail of find_key.
	m.seg.findKey.EmitRange(m.rec, 50, 170)
	f := tbl.page(rid.Page)
	rec, ok := f.page.Read(int(rid.Slot))
	if !ok {
		m.bp.unpin(f)
		panic(fmt.Sprintf("storage: index %q rid %v points at dead slot", idx.name, rid))
	}
	for b := uint64(0); b < uint64(len(rec)); b += 64 {
		m.dataRead(f.page.addrOfSlot(int(rid.Slot)) + b)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	m.bp.unpin(f)
	return rid, out, true
}

// ScanResult is one tuple returned by IndexScan. Rec is a copy of the
// record bytes (the paper's index scan "returns the set of tuples mapping
// to the key values within the given boundaries").
type ScanResult struct {
	Key uint64
	RID RID
	Rec []byte
}

// IndexScan returns all tuples with keys within [lo, hi] (bounds optionally
// exclusive), up to limit (0 = unlimited). Figure 1: initialize cursor
// (descent + positioning, 75% of the footprint) then the short fetch-next
// loop, which pins each tuple's data page (reusing the pin while
// consecutive tuples share a page) and reads the record. Leaf pages are
// S-locked as the cursor crosses them.
//
// fetch_next code ranges (90 blocks):
//
//	[0,20)  per-tuple hot loop
//	[20,40) leaf-boundary / page-switch advance
//	[40,90) cursor finalize / boundary checks
func (m *Manager) IndexScan(txn *Txn, idx *BTree, lo, hi uint64, inclLo, inclHi bool, limit int) []ScanResult {
	m.rec.OpBegin(trace.OpIndexScan)
	defer m.rec.OpEnd(trace.OpIndexScan)

	m.seg.scanAPI.EmitAll(m.rec)
	m.dataRead(idx.descriptorAddr())
	m.seg.initCursor.EmitAll(m.rec)

	var out []ScanResult
	st := m.traverseStyle()
	lockLeaf := func(pid PageID) {
		m.lock.acquire(m, txn, idx.id|pageLockBit, uint64(pid), LockS)
	}
	var pinned *frame
	first := true
	idx.scanRange(lo, hi, inclLo, inclHi, st,
		lockLeaf,
		func(key uint64, rid RID) bool {
			if first {
				// The cursor's starting leaf is locked on first delivery.
				lockLeaf(rid.Page)
				first = false
			}
			m.seg.fetchNext.EmitRange(m.rec, 0, 20)
			if pinned == nil || pinned.pid != rid.Page {
				if pinned != nil {
					m.bp.unpin(pinned)
				}
				m.seg.fetchNext.EmitRange(m.rec, 20, 40)
				pinned = m.bp.find(m, rid.Page)
			}
			var rec []byte
			if pinned.page != nil {
				if raw, ok := pinned.page.Read(int(rid.Slot)); ok {
					m.dataRead(pinned.page.addrOfSlot(int(rid.Slot)))
					rec = append([]byte(nil), raw...)
				}
			}
			out = append(out, ScanResult{Key: key, RID: rid, Rec: rec})
			return limit == 0 || len(out) < limit
		})
	if pinned != nil {
		m.bp.unpin(pinned)
	}
	m.seg.fetchNext.EmitRange(m.rec, 40, 90)
	return out
}

// UpdateTuple rewrites the record at rid (Figure 1: pin record page →
// update page + log). The caller supplies the lock key (usually the primary
// key) so record locks match probe locks.
func (m *Manager) UpdateTuple(txn *Txn, tbl *Table, rid RID, lockKey uint64, newRec []byte) error {
	m.rec.OpBegin(trace.OpUpdateTuple)
	defer m.rec.OpEnd(trace.OpUpdateTuple)

	m.seg.updateAPI.EmitAll(m.rec)
	if !m.lock.acquire(m, txn, tbl.id, lockKey, LockX) {
		return fmt.Errorf("storage: lock conflict updating %q key %d", tbl.name, lockKey)
	}

	// pin record page.
	m.seg.pinRecord.EmitAll(m.rec)
	f := tbl.page(rid.Page)
	defer m.bp.unpin(f)
	m.dataRead(f.page.addrOfSlot(int(rid.Slot)))

	// update page.
	m.seg.updatePage.EmitAll(m.rec)
	if !f.page.Update(int(rid.Slot), newRec) {
		return fmt.Errorf("storage: update of %q rid %v does not fit", tbl.name, rid)
	}
	addr := f.page.addrOfSlot(int(rid.Slot))
	for b := uint64(0); b < uint64(len(newRec)); b += 64 {
		m.dataWrite(addr + b)
	}
	m.wal.insert(m, txn, logUpdate, len(newRec))
	return nil
}

// InsertTuple appends a record (Figure 1: create record → [allocate page] →
// create index entry → [structural modification]). keys[i] is the key for
// tbl.Index(i); len(keys) may be less than the number of indexes only for
// tables with zero indexes (TPC-B History, TPC-C History).
//
// A duplicate-key error aborts the statement mid-flight (no undo is
// modeled); the caller must treat the transaction as failed. The workloads
// guarantee key uniqueness, so this path never fires during trace
// generation.
func (m *Manager) InsertTuple(txn *Txn, tbl *Table, keys []uint64, rec []byte) (RID, error) {
	m.rec.OpBegin(trace.OpInsertTuple)
	defer m.rec.OpEnd(trace.OpInsertTuple)

	if len(keys) != len(tbl.indexes) {
		return RID{}, fmt.Errorf("storage: %d keys for %d indexes of %q", len(keys), len(tbl.indexes), tbl.name)
	}
	m.seg.insertAPI.EmitAll(m.rec)
	lockKey := uint64(tbl.rows) // tables without indexes lock the row ordinal
	if len(keys) > 0 {
		lockKey = keys[0]
	}
	if !m.lock.acquire(m, txn, tbl.id, lockKey, LockX) {
		return RID{}, fmt.Errorf("storage: lock conflict inserting into %q", tbl.name)
	}

	// create record: find a page with space (catalog read), falling back to
	// allocate page — the rarely taken path that produces TPC-B's 40%
	// uncommon insert code (Section 2.2.1).
	m.seg.createRecord.EmitAll(m.rec)
	m.dataRead(tbl.catalogAddr())
	f := tbl.page(tbl.cur)
	slot, ok := f.page.Insert(rec)
	if !ok {
		m.bp.unpin(f)
		m.seg.allocatePage.EmitAll(m.rec)
		pid := m.allocPage()
		pg := newPage(pid, tbl.id)
		m.bp.install(m, &frame{pid: pid, page: pg})
		tbl.pages = append(tbl.pages, pid)
		tbl.cur = pid
		m.dataWrite(PageAddr(pid, 0)) // page format/header init
		m.dataWrite(tbl.catalogAddr())
		f = tbl.page(pid)
		slot, ok = f.page.Insert(rec)
		if !ok {
			m.bp.unpin(f)
			return RID{}, fmt.Errorf("storage: record of %d bytes does not fit an empty page", len(rec))
		}
	}
	rid := RID{Page: f.page.ID(), Slot: uint16(slot)}
	addr := f.page.addrOfSlot(slot)
	for b := uint64(0); b < uint64(len(rec)); b += 64 {
		m.dataWrite(addr + b)
	}
	m.bp.unpin(f)
	m.wal.insert(m, txn, logInsert, len(rec))

	// create index entry, per index; splits emit the SMO ranges inside
	// insertEntry.
	for i, idx := range tbl.indexes {
		m.seg.createIndexEntry.EmitAll(m.rec)
		m.dataRead(idx.descriptorAddr())
		if !idx.insertEntry(keys[i], rid) {
			return RID{}, fmt.Errorf("storage: duplicate key %d in index %q", keys[i], idx.name)
		}
		m.wal.insert(m, txn, logInsert, 16)
	}
	tbl.rows++
	return rid, nil
}

// DeleteTuple removes the record at rid and its index entries (Section 2.1
// omits delete from Figure 1 "because of its similarity to insert tuple").
func (m *Manager) DeleteTuple(txn *Txn, tbl *Table, rid RID, keys []uint64) error {
	m.rec.OpBegin(trace.OpDeleteTuple)
	defer m.rec.OpEnd(trace.OpDeleteTuple)

	if len(keys) != len(tbl.indexes) {
		return fmt.Errorf("storage: %d keys for %d indexes of %q", len(keys), len(tbl.indexes), tbl.name)
	}
	m.seg.deleteAPI.EmitAll(m.rec)
	lockKey := uint64(rid.Page)<<16 | uint64(rid.Slot)
	if len(keys) > 0 {
		lockKey = keys[0]
	}
	if !m.lock.acquire(m, txn, tbl.id, lockKey, LockX) {
		return fmt.Errorf("storage: lock conflict deleting from %q", tbl.name)
	}

	// remove record.
	m.seg.removeRecord.EmitAll(m.rec)
	f := tbl.page(rid.Page)
	if !f.page.Delete(int(rid.Slot)) {
		m.bp.unpin(f)
		return fmt.Errorf("storage: delete of dead slot %v in %q", rid, tbl.name)
	}
	m.dataWrite(PageAddr(rid.Page, pageHeaderSize+int(rid.Slot)*slotEntrySize))
	m.bp.unpin(f)
	m.wal.insert(m, txn, logDelete, 16)

	// remove index entries; merges emit the btree_merge ranges inside
	// deleteEntry.
	for i, idx := range tbl.indexes {
		m.seg.removeIndexEntry.EmitAll(m.rec)
		m.dataRead(idx.descriptorAddr())
		if !idx.deleteEntry(keys[i]) {
			return fmt.Errorf("storage: key %d missing from index %q", keys[i], idx.name)
		}
		m.wal.insert(m, txn, logDelete, 16)
	}
	tbl.rows--
	return nil
}

// ProbeIndexOnly is IndexProbe without the tuple fetch — used where TPC
// transactions only need existence/RID (and by tests). It still locks the
// record, matching Shore-MT's index probe contract.
func (m *Manager) ProbeIndexOnly(txn *Txn, idx *BTree, key uint64) (RID, bool) {
	m.rec.OpBegin(trace.OpIndexProbe)
	defer m.rec.OpEnd(trace.OpIndexProbe)

	m.seg.findKey.EmitRange(m.rec, 0, 50)
	m.dataRead(idx.descriptorAddr())
	m.seg.lookup.EmitAll(m.rec)
	rid, found := idx.probe(key, m.traverseStyle())
	if !found {
		return RID{}, false
	}
	m.lock.acquire(m, txn, idx.id, key, LockS)
	m.seg.findKey.EmitRange(m.rec, 50, 110) // RID copy-out, no tuple fetch
	return rid, true
}
