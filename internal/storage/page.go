package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted-page layout (data pages):
//
//	[0:2)   slot count
//	[2:4)   free-space pointer (records grow downward from PageSize)
//	[4:8)   table ID
//	[8:pageHeaderSize) reserved
//	[pageHeaderSize : pageHeaderSize+4*nslots) slot array:
//	        u16 offset | u16 length  (offset 0 = dead slot)
//	records packed at the tail.
const (
	pageHeaderSize = 24
	slotEntrySize  = 4
	deadSlotOffset = 0
)

// Page is a slotted data page. Index nodes use the separate node
// representation in btree.go; only heap records live in slotted pages.
type Page struct {
	id    PageID
	table uint32
	buf   [PageSize]byte
}

func newPage(id PageID, table uint32) *Page {
	p := &Page{id: id, table: table}
	binary.LittleEndian.PutUint16(p.buf[2:4], PageSize)
	binary.LittleEndian.PutUint32(p.buf[4:8], table)
	return p
}

// ID returns the page identifier.
func (p *Page) ID() PageID { return p.id }

// NumSlots returns the slot-array length, including dead slots.
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[0:2]))
}

func (p *Page) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n))
}

func (p *Page) freePtr() int {
	return int(binary.LittleEndian.Uint16(p.buf[2:4]))
}

func (p *Page) setFreePtr(off int) {
	binary.LittleEndian.PutUint16(p.buf[2:4], uint16(off))
}

func (p *Page) slot(i int) (off, length int) {
	base := pageHeaderSize + i*slotEntrySize
	return int(binary.LittleEndian.Uint16(p.buf[base : base+2])),
		int(binary.LittleEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotEntrySize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// FreeSpace returns the bytes available for one more record (including its
// slot entry).
func (p *Page) FreeSpace() int {
	slotEnd := pageHeaderSize + p.NumSlots()*slotEntrySize
	free := p.freePtr() - slotEnd - slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores a record and returns its slot number; ok is false when the
// page lacks space (the caller then takes the allocate-page path).
func (p *Page) Insert(rec []byte) (slot int, ok bool) {
	if len(rec) == 0 || len(rec) > PageSize-pageHeaderSize-slotEntrySize {
		return 0, false
	}
	if p.FreeSpace() < len(rec) {
		return 0, false
	}
	n := p.NumSlots()
	off := p.freePtr() - len(rec)
	copy(p.buf[off:], rec)
	p.setFreePtr(off)
	p.setSlot(n, off, len(rec))
	p.setNumSlots(n + 1)
	return n, true
}

// Read returns the record stored in slot i; ok is false for dead or
// out-of-range slots. The returned slice aliases page memory; callers that
// retain it must copy.
func (p *Page) Read(i int) (rec []byte, ok bool) {
	if i < 0 || i >= p.NumSlots() {
		return nil, false
	}
	off, length := p.slot(i)
	if off == deadSlotOffset {
		return nil, false
	}
	return p.buf[off : off+length], true
}

// Update overwrites slot i. Same-size updates are done in place; smaller
// ones shrink the slot; larger ones relocate within the page when space
// allows. ok is false when the record no longer fits.
func (p *Page) Update(i int, rec []byte) bool {
	if i < 0 || i >= p.NumSlots() {
		return false
	}
	off, length := p.slot(i)
	if off == deadSlotOffset {
		return false
	}
	switch {
	case len(rec) <= length:
		copy(p.buf[off:], rec)
		p.setSlot(i, off, len(rec))
		return true
	default:
		// Relocate: append at the free pointer if it fits.
		slotEnd := pageHeaderSize + p.NumSlots()*slotEntrySize
		newOff := p.freePtr() - len(rec)
		if newOff < slotEnd {
			return false
		}
		copy(p.buf[newOff:], rec)
		p.setFreePtr(newOff)
		p.setSlot(i, newOff, len(rec))
		return true
	}
}

// Delete marks slot i dead. The space is not compacted (Shore-MT defers
// compaction too); ok is false for invalid slots.
func (p *Page) Delete(i int) bool {
	if i < 0 || i >= p.NumSlots() {
		return false
	}
	off, _ := p.slot(i)
	if off == deadSlotOffset {
		return false
	}
	p.setSlot(i, deadSlotOffset, 0)
	return true
}

// LiveRecords returns the number of non-dead slots.
func (p *Page) LiveRecords() int {
	n := 0
	for i := 0; i < p.NumSlots(); i++ {
		if off, _ := p.slot(i); off != deadSlotOffset {
			n++
		}
	}
	return n
}

// addrOfSlot returns the memory address of the record bytes in slot i, for
// trace emission.
func (p *Page) addrOfSlot(i int) uint64 {
	off, _ := p.slot(i)
	return PageAddr(p.id, off)
}

func (p *Page) String() string {
	return fmt.Sprintf("page %d: %d slots, %d live, %dB free", p.id, p.NumSlots(), p.LiveRecords(), p.FreeSpace())
}
