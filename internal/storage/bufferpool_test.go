package storage

import (
	"testing"

	"addict/internal/codemap"
	"addict/internal/trace"
)

func TestBufferPoolFindPinsAndHits(t *testing.T) {
	m := testManager()
	tbl := m.CreateTable("bp_t")
	f := tbl.page(tbl.cur)
	if f.pins != 1 {
		t.Errorf("pins = %d, want 1", f.pins)
	}
	m.bp.unpin(f)
	if f.pins != 0 {
		t.Errorf("pins = %d after unpin", f.pins)
	}
	if m.bp.hits == 0 {
		t.Error("no hit recorded")
	}
}

func TestBufferPoolUnpinUnderflowPanics(t *testing.T) {
	m := testManager()
	tbl := m.CreateTable("bp_t")
	f := tbl.page(tbl.cur)
	m.bp.unpin(f)
	defer func() {
		if recover() == nil {
			t.Error("unpin of unpinned frame did not panic")
		}
	}()
	m.bp.unpin(f)
}

func TestBufferPoolMissingPagePanics(t *testing.T) {
	m := testManager()
	defer func() {
		if recover() == nil {
			t.Error("find of nonexistent page did not panic")
		}
	}()
	m.bp.find(m, 424242)
}

func TestBoundedPoolEvictsAndReloads(t *testing.T) {
	m := NewManager(trace.Discard{}, codemap.NewLayout(), WithBufferPoolFrames(4))
	// Install 10 pages through a table + manual allocs.
	var pids []PageID
	for i := 0; i < 10; i++ {
		pid := m.allocPage()
		m.bp.install(m, &frame{pid: pid, page: newPage(pid, 1)})
		pids = append(pids, pid)
	}
	if m.bp.resident() > 4 {
		t.Fatalf("resident = %d, capacity 4", m.bp.resident())
	}
	if m.bp.evictions == 0 {
		t.Fatal("no evictions in bounded pool")
	}
	// Every page must still be reachable (reload from "disk").
	for _, pid := range pids {
		f := m.bp.find(m, pid)
		if f.page == nil || f.pid != pid {
			t.Fatalf("reload of %d failed", pid)
		}
		m.bp.unpin(f)
	}
	if m.bp.resident() > 4 {
		t.Errorf("resident = %d after reloads, capacity 4", m.bp.resident())
	}
}

func TestBoundedPoolRespectsPins(t *testing.T) {
	m := NewManager(trace.Discard{}, codemap.NewLayout(), WithBufferPoolFrames(2))
	a := m.allocPage()
	m.bp.install(m, &frame{pid: a, page: newPage(a, 1)})
	fa := m.bp.find(m, a) // pin a
	b := m.allocPage()
	m.bp.install(m, &frame{pid: b, page: newPage(b, 1)})
	c := m.allocPage()
	m.bp.install(m, &frame{pid: c, page: newPage(c, 1)}) // must evict b, not pinned a
	if _, resident := m.bp.frames[a]; !resident {
		t.Error("pinned page evicted")
	}
	m.bp.unpin(fa)
}

func TestInstallDuplicatePanics(t *testing.T) {
	m := testManager()
	pid := m.allocPage()
	m.bp.install(m, &frame{pid: pid, page: newPage(pid, 1)})
	defer func() {
		if recover() == nil {
			t.Error("duplicate install did not panic")
		}
	}()
	m.bp.install(m, &frame{pid: pid, page: newPage(pid, 1)})
}
