package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"addict/internal/codemap"
	"addict/internal/trace"
)

func testManager() *Manager {
	return NewManager(trace.Discard{}, codemap.NewLayout())
}

func newTestTree(m *Manager) *BTree {
	tbl := m.CreateTable("bt_test")
	return tbl.CreateIndex("bt_test_idx")
}

func TestBTreeInsertProbe(t *testing.T) {
	m := testManager()
	bt := newTestTree(m)
	for i := uint64(0); i < 1000; i++ {
		if !bt.insertEntry(i*7, RID{Page: PageID(i), Slot: uint16(i)}) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if bt.Size() != 1000 {
		t.Fatalf("Size = %d, want 1000", bt.Size())
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		rid, ok := bt.probe(i*7, m.traverseStyle())
		if !ok || rid.Page != PageID(i) {
			t.Fatalf("probe %d = %v, %v", i*7, rid, ok)
		}
	}
	if _, ok := bt.probe(3, m.traverseStyle()); ok {
		t.Error("probe of absent key succeeded")
	}
}

func TestBTreeRejectsDuplicates(t *testing.T) {
	m := testManager()
	bt := newTestTree(m)
	if !bt.insertEntry(42, RID{Page: 1}) {
		t.Fatal("first insert failed")
	}
	if bt.insertEntry(42, RID{Page: 2}) {
		t.Error("duplicate insert succeeded")
	}
	if bt.Size() != 1 {
		t.Errorf("Size = %d after duplicate, want 1", bt.Size())
	}
}

func TestBTreeGrowsHeight(t *testing.T) {
	m := testManager()
	bt := newTestTree(m)
	if bt.Height() != 1 {
		t.Fatalf("new tree height = %d", bt.Height())
	}
	for i := uint64(0); i < 40000; i++ {
		bt.insertEntry(i, RID{Page: PageID(i)})
	}
	if bt.Height() < 3 {
		t.Errorf("height = %d after 40k inserts with fanout %d, want >= 3", bt.Height(), bt.fanout)
	}
	splits, rootSplits, _ := bt.Splits()
	if splits == 0 || rootSplits == 0 {
		t.Errorf("splits=%d rootSplits=%d, want both > 0", splits, rootSplits)
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeDelete(t *testing.T) {
	m := testManager()
	bt := newTestTree(m)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		bt.insertEntry(i, RID{Page: PageID(i)})
	}
	// Delete every other key.
	for i := uint64(0); i < n; i += 2 {
		if !bt.deleteEntry(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if bt.Size() != n/2 {
		t.Fatalf("Size = %d, want %d", bt.Size(), n/2)
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		_, ok := bt.probe(i, m.traverseStyle())
		if want := i%2 == 1; ok != want {
			t.Fatalf("probe %d = %v, want %v", i, ok, want)
		}
	}
	if bt.deleteEntry(0) {
		t.Error("double delete succeeded")
	}
}

func TestBTreeDeleteAllCollapsesRoot(t *testing.T) {
	m := testManager()
	bt := newTestTree(m)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		bt.insertEntry(i, RID{})
	}
	grown := bt.Height()
	for i := uint64(0); i < n; i++ {
		if !bt.deleteEntry(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if bt.Size() != 0 {
		t.Errorf("Size = %d after deleting all", bt.Size())
	}
	if bt.Height() >= grown {
		t.Errorf("height %d did not shrink from %d", bt.Height(), grown)
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	_, _, merges := bt.Splits()
	if merges == 0 {
		t.Error("no merges recorded while draining the tree")
	}
}

func TestBTreeScanRange(t *testing.T) {
	m := testManager()
	bt := newTestTree(m)
	for i := uint64(0); i < 500; i++ {
		bt.insertEntry(i*10, RID{Page: PageID(i)})
	}
	collect := func(lo, hi uint64, inclLo, inclHi bool) []uint64 {
		var keys []uint64
		bt.scanRange(lo, hi, inclLo, inclHi, m.traverseStyle(), nil,
			func(k uint64, _ RID) bool {
				keys = append(keys, k)
				return true
			})
		return keys
	}
	got := collect(100, 150, true, true)
	want := []uint64{100, 110, 120, 130, 140, 150}
	if len(got) != len(want) {
		t.Fatalf("scan [100,150] = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan [100,150] = %v, want %v", got, want)
		}
	}
	if got := collect(100, 150, false, false); len(got) != 4 || got[0] != 110 || got[3] != 140 {
		t.Errorf("scan (100,150) = %v", got)
	}
	// Scan crossing many leaves.
	if got := collect(0, ^uint64(0), true, true); len(got) != 500 {
		t.Errorf("full scan returned %d keys, want 500", len(got))
	}
	// Early termination.
	n := 0
	bt.scanRange(0, ^uint64(0), true, true, m.traverseStyle(), nil,
		func(uint64, RID) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("early-terminated scan visited %d, want 7", n)
	}
}

// TestBTreeAgainstReferenceModel runs randomized insert/delete/probe storms
// against a map+sorted-slice reference.
func TestBTreeAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := testManager()
		bt := newTestTree(m)
		ref := make(map[uint64]RID)
		for step := 0; step < 4000; step++ {
			key := uint64(rng.Intn(800)) // small domain → plenty of collisions/deletes
			switch rng.Intn(3) {
			case 0, 1:
				rid := RID{Page: PageID(rng.Uint32()), Slot: uint16(rng.Intn(100))}
				_, exists := ref[key]
				if bt.insertEntry(key, rid) == exists {
					t.Logf("seed %d step %d: insert(%d) mismatch (exists=%v)", seed, step, key, exists)
					return false
				}
				if !exists {
					ref[key] = rid
				}
			case 2:
				_, exists := ref[key]
				if bt.deleteEntry(key) != exists {
					t.Logf("seed %d step %d: delete(%d) mismatch", seed, step, key)
					return false
				}
				delete(ref, key)
			}
		}
		if bt.Size() != len(ref) {
			t.Logf("seed %d: size %d != ref %d", seed, bt.Size(), len(ref))
			return false
		}
		if err := bt.checkInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for k, rid := range ref {
			got, ok := bt.probe(k, m.traverseStyle())
			if !ok || got != rid {
				t.Logf("seed %d: probe(%d) = %v,%v want %v", seed, k, got, ok, rid)
				return false
			}
		}
		// Full scan yields exactly the sorted reference keys.
		var keys []uint64
		bt.scanRange(0, ^uint64(0), true, true, m.traverseStyle(), nil,
			func(k uint64, _ RID) bool { keys = append(keys, k); return true })
		if len(keys) != len(ref) || !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Logf("seed %d: scan wrong (%d keys)", seed, len(keys))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestBTreeRandomOrderInsert exercises splits at every level with shuffled
// keys.
func TestBTreeRandomOrderInsert(t *testing.T) {
	m := testManager()
	bt := newTestTree(m)
	rng := rand.New(rand.NewSource(99))
	keys := rng.Perm(20000)
	for _, k := range keys {
		if !bt.insertEntry(uint64(k), RID{Page: PageID(k)}) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := bt.probe(uint64(k), m.traverseStyle()); !ok {
			t.Fatalf("probe %d failed", k)
		}
	}
}
