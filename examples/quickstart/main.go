// Quickstart: the ADDICT pipeline end to end on TPC-B through an Engine
// session — profile migration points, schedule with ADDICT, and compare
// against traditional scheduling. The session owns the artifacts: the
// profiling window is generated once, Algorithm 1 runs once, and both
// Schedule calls replay the same cached evaluation window. Everything is
// context-first, so a Ctrl-C here would unwind between work items.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"addict"
)

func main() {
	fmt.Println("ADDICT quickstart: TPC-B, 16 simulated cores (Table 1 machine)")

	// 1. Open a session (scale 0.25 and 300-trace windows keep this
	// snappy; the defaults match the quick evaluation sizes).
	eng := addict.NewEngine(
		addict.WithSeed(42),
		addict.WithScale(0.25),
		addict.WithTraceWindows(300, 300, 0),
	)
	ctx := context.Background()

	// 2. Profile migration points (Algorithm 1) over the session's
	// profiling window — generated on demand, cached for the session.
	prof, err := eng.Profile(ctx, "TPC-B")
	if err != nil {
		panic(err)
	}
	for _, tt := range prof.SortedTypes() {
		tp := prof.Txns[tt]
		fmt.Printf("  profiled %s: %d instances\n", tp.Name, tp.Instances)
		for _, op := range tp.OpOrder {
			o := tp.Ops[op]
			fmt.Printf("    %-7s %d migration point(s), support %.0f%%\n",
				op, len(o.Seq), o.Support()*100)
		}
	}

	// 3. Replay the (disjoint, cached) evaluation window under Baseline
	// and ADDICT. The session reuses the profile from step 2.
	base, err := eng.Schedule(ctx, addict.Baseline, "TPC-B")
	if err != nil {
		panic(err)
	}
	res, err := eng.Schedule(ctx, addict.ADDICT, "TPC-B")
	if err != nil {
		panic(err)
	}

	// 4. The headline numbers (paper: -85% L1-I misses, -45% cycles).
	bMPKI := base.Machine.MPKI(base.Machine.L1IMisses)
	aMPKI := res.Machine.MPKI(res.Machine.L1IMisses)
	fmt.Printf("\n  L1-I MPKI : %6.2f -> %6.2f  (%.0f%% reduction)\n",
		bMPKI, aMPKI, (1-aMPKI/bMPKI)*100)
	fmt.Printf("  cycles    : %8d -> %8d  (%.0f%% reduction)\n",
		base.Makespan, res.Makespan,
		(1-float64(res.Makespan)/float64(base.Makespan))*100)
	fmt.Printf("  migrations: %d (%.3f per k-instructions)\n",
		res.Migrations, res.SwitchesPerKInstr())
}
