// Quickstart: the ADDICT pipeline end to end on TPC-B — profile migration
// points, schedule with ADDICT, and compare against traditional scheduling.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"addict"
)

func main() {
	fmt.Println("ADDICT quickstart: TPC-B, 16 simulated cores (Table 1 machine)")

	// 1. Build and populate the benchmark (scale 0.25 keeps this snappy).
	w := addict.NewTPCB(42, 0.25)

	// 2. Collect profiling traces and find migration points (Algorithm 1).
	profSet := addict.GenerateTraces(w, 300)
	prof := addict.FindMigrationPoints(profSet)
	for _, tt := range prof.SortedTypes() {
		tp := prof.Txns[tt]
		fmt.Printf("  profiled %s: %d instances\n", tp.Name, tp.Instances)
		for _, op := range tp.OpOrder {
			o := tp.Ops[op]
			fmt.Printf("    %-7s %d migration point(s), support %.0f%%\n",
				op, len(o.Seq), o.Support()*100)
		}
	}

	// 3. Replay fresh traces under Baseline and ADDICT.
	evalSet := addict.GenerateTraces(w, 300)
	base, err := addict.Schedule(addict.Baseline, evalSet, addict.Options{})
	if err != nil {
		panic(err)
	}
	res, err := addict.Schedule(addict.ADDICT, evalSet, addict.Options{Profile: prof})
	if err != nil {
		panic(err)
	}

	// 4. The headline numbers (paper: -85% L1-I misses, -45% cycles).
	bMPKI := base.Machine.MPKI(base.Machine.L1IMisses)
	aMPKI := res.Machine.MPKI(res.Machine.L1IMisses)
	fmt.Printf("\n  L1-I MPKI : %6.2f -> %6.2f  (%.0f%% reduction)\n",
		bMPKI, aMPKI, (1-aMPKI/bMPKI)*100)
	fmt.Printf("  cycles    : %8d -> %8d  (%.0f%% reduction)\n",
		base.Makespan, res.Makespan,
		(1-float64(res.Makespan)/float64(base.Makespan))*100)
	fmt.Printf("  migrations: %d (%.3f per k-instructions)\n",
		res.Migrations, res.SwitchesPerKInstr())
}
