// capacity-planner: use ADDICT's simulator as a what-if tool — sweep batch
// size (server load, Figure 7) and compare shallow vs deep cache
// hierarchies (Figure 8a) to pick an operating point for a workload.
//
//	go run ./examples/capacity-planner
package main

import (
	"fmt"

	"addict"
)

func main() {
	fmt.Println("Capacity planning for TPC-E on the Table 1 machine")

	w := addict.NewTPCE(42, 0.5)
	profSet := addict.GenerateTraces(w, 300)
	prof := addict.FindMigrationPoints(profSet)
	evalSet := addict.GenerateTraces(w, 300)

	base, err := addict.Schedule(addict.Baseline, evalSet, addict.Options{})
	if err != nil {
		panic(err)
	}

	fmt.Println("\n  batch-size sweep (Figure 7): how much load does ADDICT need?")
	fmt.Printf("  %6s %12s %12s %14s\n", "batch", "cycles", "vs baseline", "avg latency")
	bestBatch, bestCycles := 0, ^uint64(0)
	for _, b := range []int{2, 4, 8, 16, 32} {
		res, err := addict.Schedule(addict.ADDICT, evalSet, addict.Options{Profile: prof, BatchSize: b})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %6d %12d %11.2fx %14.0f\n", b, res.Makespan,
			float64(res.Makespan)/float64(base.Makespan), res.AvgLatency())
		if res.Makespan < bestCycles {
			bestBatch, bestCycles = b, res.Makespan
		}
	}
	fmt.Printf("  -> best throughput at batch %d\n", bestBatch)

	fmt.Println("\n  hierarchy comparison (Figure 8a): is ADDICT still worth it with a private L2?")
	for _, hier := range []struct {
		name string
		m    addict.MachineConfig
	}{{"shallow (L1+L2)", addict.ShallowMachine()}, {"deep (L1+L2p+L3)", addict.DeepMachine()}} {
		m := hier.m
		b, err := addict.Schedule(addict.Baseline, evalSet, addict.Options{Machine: &m})
		if err != nil {
			panic(err)
		}
		a, err := addict.Schedule(addict.ADDICT, evalSet, addict.Options{Machine: &m, Profile: prof})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-17s ADDICT/Baseline cycles = %.2fx\n", hier.name,
			float64(a.Makespan)/float64(b.Makespan))
	}
	fmt.Println("\n  (the paper: gains shrink on deep hierarchies — the private L2")
	fmt.Println("   absorbs most L1-I misses when the code footprint fits it)")
}
