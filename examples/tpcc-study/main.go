// tpcc-study: the paper's full mechanism comparison on TPC-C — Baseline,
// STREX, SLICC, and ADDICT on the same traces, with the Figure 5/6/9
// metrics side by side, plus the memory-characterization headline
// (instruction vs data overlap) that motivates ADDICT.
//
//	go run ./examples/tpcc-study
package main

import (
	"fmt"

	"addict"
)

func main() {
	fmt.Println("TPC-C scheduling study (this takes a minute: four full replays)")

	w := addict.NewTPCC(42, 0.5)
	profSet := addict.GenerateTraces(w, 400)
	prof := addict.FindMigrationPoints(profSet)
	evalSet := addict.GenerateTraces(w, 400)

	// Section 2's motivation: same-type transactions share instructions,
	// not data.
	instr := make([]map[uint64]struct{}, 0, 64)
	data := make([]map[uint64]struct{}, 0, 64)
	for _, t := range profSet.Traces[:64] {
		i, d := t.Footprint()
		instr = append(instr, i)
		data = append(data, d)
	}
	iOv := addict.OverlapBuckets(instr)
	dOv := addict.OverlapBuckets(data)
	fmt.Printf("\n  mix footprint common to >=90%% of txns: instructions %.0f%%, data %.0f%%\n\n",
		iOv.CommonShare()*100, dOv.CommonShare()*100)

	var base addict.Result
	fmt.Printf("  %-9s %10s %10s %10s %12s %10s\n", "mechanism", "L1-I MPKI", "L1-D MPKI", "cycles", "avg latency", "moves/ki")
	for _, mech := range addict.Mechanisms {
		res, err := addict.Schedule(mech, evalSet, addict.Options{Profile: prof})
		if err != nil {
			panic(err)
		}
		if mech == addict.Baseline {
			base = res
		}
		norm := func(a, b float64) string {
			if b == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.2fx", a/b)
		}
		m := res.Machine
		bm := base.Machine
		fmt.Printf("  %-9s %10s %10s %10s %12s %10.3f\n", mech,
			norm(m.MPKI(m.L1IMisses), bm.MPKI(bm.L1IMisses)),
			norm(m.MPKI(m.L1DMisses), bm.MPKI(bm.L1DMisses)),
			norm(float64(res.Makespan), float64(base.Makespan)),
			norm(res.AvgLatency(), base.AvgLatency()),
			res.SwitchesPerKInstr())
	}
	fmt.Println("\n  (paper's Figure 5/6 shape: ADDICT lowest L1-I and cycles;")
	fmt.Println("   STREX highest latency; spreading raises L1-D slightly)")
}
