// custom-workload: ADDICT beyond TPC — the paper's conclusion suggests the
// mechanism "can benefit any application that suffers from instruction
// stalls and [has] concurrent requests executing a series of actions from a
// predefined set". This example builds a small message-queue application on
// the storage substrate (enqueue / dequeue / peek over an indexed queue
// table plus a subscriber table) and runs the full ADDICT pipeline on it.
//
//	go run ./examples/custom-workload
package main

import (
	"fmt"
	"math/rand"

	"addict"
)

func main() {
	fmt.Println("Custom workload: a persistent message queue on the storage substrate")

	m := addict.NewStorageManager()
	queue := m.CreateTable("queue")
	queue.CreateIndex("queue_pk") // key = sequence number
	subs := m.CreateTable("subscribers")
	subs.CreateIndex("subscribers_pk")
	deliveries := m.CreateTable("deliveries") // no index: append-only audit log

	// Populate: 200 subscribers, 5000 backlog messages.
	pop := m.Begin()
	for s := 0; s < 200; s++ {
		if _, err := m.InsertTuple(pop, subs, []uint64{uint64(s)}, make([]byte, 120)); err != nil {
			panic(err)
		}
	}
	head, tail := uint64(0), uint64(0)
	for ; tail < 5000; tail++ {
		if _, err := m.InsertTuple(pop, queue, []uint64{tail}, make([]byte, 200)); err != nil {
			panic(err)
		}
	}
	m.Commit(pop)

	rng := rand.New(rand.NewSource(7))
	specs := []addict.TxnSpec{
		{Name: "Enqueue", Weight: 0.40, Run: func(txn *addict.Txn) {
			if _, err := m.InsertTuple(txn, queue, []uint64{tail}, make([]byte, 200)); err != nil {
				panic(err)
			}
			tail++
		}},
		{Name: "Dequeue", Weight: 0.40, Run: func(txn *addict.Txn) {
			if head >= tail {
				return
			}
			rid, _, ok := m.IndexProbe(txn, queue, queue.Index(0), head)
			if !ok {
				head++
				return
			}
			if err := m.DeleteTuple(txn, queue, rid, []uint64{head}); err != nil {
				panic(err)
			}
			head++
			// Audit record, unindexed (like TPC-B's history).
			if _, err := m.InsertTuple(txn, deliveries, nil, make([]byte, 80)); err != nil {
				panic(err)
			}
			// Touch the subscriber row.
			s := uint64(rng.Intn(200))
			if srid, srec, ok := m.IndexProbe(txn, subs, subs.Index(0), s); ok {
				if err := m.UpdateTuple(txn, subs, srid, s, srec); err != nil {
					panic(err)
				}
			}
		}},
		{Name: "Peek", Weight: 0.20, Run: func(txn *addict.Txn) {
			m.IndexScan(txn, queue.Index(0), head, head+20, true, true, 10)
		}},
	}
	w, err := addict.NewCustomWorkload("MsgQueue", m, 7, specs)
	if err != nil {
		panic(err)
	}

	profSet := addict.GenerateTraces(w, 300)
	prof := addict.FindMigrationPoints(profSet)
	for _, tt := range prof.SortedTypes() {
		tp := prof.Txns[tt]
		fmt.Printf("  %s: %d instances profiled\n", tp.Name, tp.Instances)
	}
	evalSet := addict.GenerateTraces(w, 300)

	base, err := addict.Schedule(addict.Baseline, evalSet, addict.Options{})
	if err != nil {
		panic(err)
	}
	res, err := addict.Schedule(addict.ADDICT, evalSet, addict.Options{Profile: prof})
	if err != nil {
		panic(err)
	}
	bMPKI := base.Machine.MPKI(base.Machine.L1IMisses)
	aMPKI := res.Machine.MPKI(res.Machine.L1IMisses)
	fmt.Printf("\n  L1-I MPKI: %6.2f -> %6.2f  (%.0f%% reduction)\n",
		bMPKI, aMPKI, (1-aMPKI/bMPKI)*100)
	fmt.Printf("  cycles   : %.2fx of traditional scheduling\n",
		float64(res.Makespan)/float64(base.Makespan))
}
