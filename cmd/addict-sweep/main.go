// Command addict-sweep runs declarative parameter sweeps over the ADDICT
// reproduction: a grid of machine parameters (L1-I/LLC geometry, core
// count, miss latencies), workloads, scheduling mechanisms, thread counts,
// and admission limits, executed on a worker pool with byte-identical
// output for every -parallel value.
//
// Usage:
//
//	addict-sweep -grid 'l1i=16K,32K,64K; mech=Baseline,ADDICT; threads=4,8,16'
//	addict-sweep -grid 'cores=4,8,16; workload=TPC-C' -format csv
//	addict-sweep -grid 'synth=zipf-hot-rw; theta=0.6,0.9,0.99; write=0.1,0.5,0.9'
//	addict-sweep -spec sweep.json -format jsonl -parallel 8
//	addict-sweep -axes      # list grid axis names
//
// Distributed mode splits one grid across processes rendezvousing on a
// shared artifact store. The coordinator owns the grid and the merged
// output (byte-identical to a single-process run); workers join it by URL
// and compute leased units:
//
//	addict-sweep -grid '...' -serve-workers :8391 -store /shared/store -format jsonl
//	addict-sweep -join http://coordinator:8391 -store /shared/store   # on each worker machine
//
// The coordinator requeues units whose workers crash (lease timeout) and
// re-dispatches stragglers near the tail, so losing workers costs wall
// clock, never rows. -local-workers controls how many workers the
// coordinator process itself contributes (default 1; 0 waits entirely for
// remote joiners), and -dist-summary writes the per-worker counters
// (units leased/completed/requeued, store hits) as JSON after the run.
//
// The -grid flag is a compact spec: semicolon-separated axes, each
// "name=v1,v2,...". Sizes take K/M suffixes. The -spec flag loads a full
// sweep.Spec as JSON; -grid entries overlay it. Base parameters (seed,
// scale, trace counts) default to the quick evaluation sizes and are
// overridable by flags. Ctrl-C cancels the sweep between units: the rows
// already computed flush as a clean partial table and the command exits
// with a non-zero status.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"addict"
	"addict/cmd/internal/sigctx"
)

// axisHelp documents every -grid axis.
var axisHelp = []struct{ name, desc string }{
	{"workload", "benchmark names (TPC-B, TPC-C, TPC-E)"},
	{"mech", "scheduling mechanisms (Baseline, STREX, SLICC, ADDICT, HTMSPEC, CHAIN)"},
	{"l1i", "L1-I sizes in bytes (K/M suffixes: 16K, 32K)"},
	{"l1iways", "L1-I associativities"},
	{"llc", "shared-cache total sizes in bytes (8M, 16M)"},
	{"llcways", "shared-cache associativities"},
	{"cores", "core counts (power of two; LLC rescales per-core)"},
	{"hit", "shared-cache hit latencies in cycles"},
	{"mem", "memory latencies in cycles"},
	{"threads", "batch sizes / offered concurrency (0 = core count)"},
	{"admit", "admission caps (0 = mechanism default)"},
	{"synth", "synthetic-workload preset the synth axes vary (one value; see tracegen -synth-presets)"},
	{"theta", "zipfian skew exponents in (0, 1) (synth axis)"},
	{"write", "base write fractions in [0, 1] (synth axis)"},
	{"hot", "hot-set sizes in keys (synth axis)"},
}

func main() {
	var (
		grid     = flag.String("grid", "", "compact grid spec: 'axis=v1,v2;axis=v1' (see -axes)")
		specPath = flag.String("spec", "", "JSON sweep spec file (grid axes overlay it)")
		format   = flag.String("format", "table", "output format: table, csv, or jsonl")
		parallel = flag.Int("parallel", 0, "worker-pool size (<1 = all CPUs, 1 = serial; output is identical)")
		seed     = flag.Int64("seed", 0, "override workload seed")
		scale    = flag.Float64("scale", 0, "override database scale factor")
		traces   = flag.Int("traces", 0, "override profiling/evaluation trace counts")
		deep     = flag.Bool("deep", false, "use the Section 4.6 deep hierarchy as the base machine")
		axes     = flag.Bool("axes", false, "list grid axis names and exit")

		storeDir    = flag.String("store", "", "on-disk artifact store directory (empty = memory-only); repeated sweeps warm-start from it")
		storeBudget = flag.Int64("store-budget", 0, "on-disk store size budget in bytes (<=0 = unbounded)")

		serveWorkers = flag.String("serve-workers", "", "coordinate a distributed sweep: listen address for workers (e.g. :8391)")
		localWorkers = flag.Int("local-workers", 1, "with -serve-workers: in-process workers the coordinator contributes (0 = remote only)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "with -serve-workers: crash-detection lease timeout (0 = default 60s)")
		distSummary  = flag.String("dist-summary", "", "with -serve-workers: write per-worker counters as JSON to this file after the run")
		joinURL      = flag.String("join", "", "work for the coordinator at this URL (grid/spec come from it; -store and -parallel apply)")
	)
	flag.Parse()

	if *axes {
		for _, a := range axisHelp {
			fmt.Printf("%-9s %s\n", a.name, a.desc)
		}
		return
	}

	if *joinURL != "" {
		if *serveWorkers != "" {
			fatal(fmt.Errorf("-join and -serve-workers are mutually exclusive"))
		}
		runWorker(*joinURL, *storeDir, *storeBudget, *parallel)
		return
	}

	var spec addict.SweepSpec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			fatal(fmt.Errorf("%s: %w", *specPath, err))
		}
		if dec.More() {
			fatal(fmt.Errorf("%s: trailing data after the spec object", *specPath))
		}
	}
	if *grid != "" {
		if err := applyGrid(&spec, *grid); err != nil {
			fatal(err)
		}
	}
	// Nonzero overrides pass through unconditionally so spec validation
	// rejects bad values instead of silently running the defaults.
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *scale != 0 {
		spec.Scale = *scale
	}
	if *traces != 0 {
		spec.ProfileTraces = *traces
		spec.EvalTraces = *traces
	}
	if *deep {
		spec.Deep = true
	}

	// Ctrl-C cancels the sweep between units: the rows already emitted
	// flush as a clean partial table and the process exits non-zero,
	// promptly (a watchdog forces the exit if cooperative unwinding
	// overruns the grace period).
	ctx, stop := sigctx.Context(time.Second)
	defer stop()

	opts := []addict.EngineOption{addict.WithWorkers(*parallel)}
	if *storeDir != "" {
		opts = append(opts, addict.WithStore(*storeDir, *storeBudget))
	}
	eng := addict.NewEngine(opts...)
	if err := eng.StoreErr(); err != nil {
		// A requested store that cannot open is a setup error, not a silent
		// downgrade to a cold run.
		fatal(err)
	}
	out := bufio.NewWriter(os.Stdout)
	var err error
	if *serveWorkers != "" {
		var sum addict.DistSummary
		sum, err = eng.SweepDistributed(ctx, out, spec, *format, addict.DistConfig{
			Listen:       *serveWorkers,
			LocalWorkers: *localWorkers,
			LeaseTimeout: *leaseTimeout,
			OnListen: func(addr string) {
				fmt.Fprintf(os.Stderr, "addict-sweep: coordinating on http://%s (join with: addict-sweep -join http://%s -store DIR)\n", addr, addr)
			},
		})
		if *distSummary != "" {
			// The summary is diagnostic and valid even after a failed run;
			// a failed write must not mask the run's own error.
			if werr := writeSummary(*distSummary, sum); werr != nil && err == nil {
				err = werr
			}
		}
	} else {
		err = eng.Sweep(ctx, out, spec, *format)
	}
	// A failed flush (full disk, closed pipe) must not exit 0 with a
	// truncated sweep.
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		if ctx.Err() != nil {
			sigctx.Exit("addict-sweep")
		}
		fatal(err)
	}
}

// runWorker joins a coordinator and computes leased units until the grid
// is done. The grid comes from the coordinator; only execution-side flags
// (-store, -store-budget, -parallel) apply here.
func runWorker(url, storeDir string, storeBudget int64, parallel int) {
	ctx, stop := sigctx.Context(time.Second)
	defer stop()
	host, _ := os.Hostname()
	n, err := addict.JoinSweep(ctx, url, addict.DistWorkerOptions{
		Name:        host,
		StoreDir:    storeDir,
		StoreBudget: storeBudget,
		Workers:     parallel,
	})
	if err != nil {
		if ctx.Err() != nil {
			sigctx.Exit("addict-sweep")
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "addict-sweep: worker done, %d units completed\n", n)
}

// writeSummary writes the coordinator's per-worker counters as indented
// JSON (the CI dist-smoke artifact).
func writeSummary(path string, sum addict.DistSummary) error {
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "addict-sweep:", err)
	os.Exit(1)
}

// applyGrid parses a compact grid string into the spec. Axes are separated
// by ";", each "name=v1,v2,...".
func applyGrid(spec *addict.SweepSpec, grid string) error {
	for _, clause := range strings.Split(grid, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, vals, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("grid clause %q: want axis=v1,v2,...", clause)
		}
		name = strings.TrimSpace(strings.ToLower(name))
		var values []string
		for _, v := range strings.Split(vals, ",") {
			if v = strings.TrimSpace(v); v != "" {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			return fmt.Errorf("grid axis %q: no values", name)
		}
		if err := setAxis(spec, name, values); err != nil {
			return err
		}
	}
	return nil
}

// setAxis assigns one parsed axis to its spec field.
func setAxis(spec *addict.SweepSpec, name string, values []string) error {
	switch name {
	case "workload", "workloads", "w":
		spec.Workloads = values
	case "mech", "mechs", "mechanism", "mechanisms":
		spec.Mechanisms = values
	case "l1i":
		return parseInts(values, parseSize, &spec.L1ISizes)
	case "l1iways":
		return parseInts(values, strconv.Atoi, &spec.L1IWays)
	case "llc", "shared":
		return parseInts(values, parseSize, &spec.SharedSizes)
	case "llcways", "sharedways":
		return parseInts(values, strconv.Atoi, &spec.SharedWays)
	case "cores":
		return parseInts(values, strconv.Atoi, &spec.Cores)
	case "hit":
		return parseUints(values, &spec.SharedHitCycles)
	case "mem":
		return parseUints(values, &spec.MemCycles)
	case "threads":
		return parseInts(values, strconv.Atoi, &spec.Threads)
	case "admit":
		return parseInts(values, strconv.Atoi, &spec.AdmitLimits)
	case "synth":
		if len(values) != 1 {
			return fmt.Errorf("grid axis %q: exactly one preset, got %v", name, values)
		}
		spec.Synth = values[0]
	case "theta", "thetas":
		return parseFloats(values, &spec.SynthThetas)
	case "write", "writefrac":
		return parseFloats(values, &spec.SynthWriteFracs)
	case "hot", "hotkeys":
		return parseInts(values, strconv.Atoi, &spec.SynthHotKeys)
	default:
		return fmt.Errorf("unknown grid axis %q (see -axes)", name)
	}
	return nil
}

func parseInts(values []string, parse func(string) (int, error), dst *[]int) error {
	out := make([]int, 0, len(values))
	for _, v := range values {
		n, err := parse(v)
		if err != nil {
			return fmt.Errorf("value %q: %v", v, err)
		}
		out = append(out, n)
	}
	*dst = out
	return nil
}

func parseFloats(values []string, dst *[]float64) error {
	out := make([]float64, 0, len(values))
	for _, v := range values {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("value %q: %v", v, err)
		}
		out = append(out, f)
	}
	*dst = out
	return nil
}

func parseUints(values []string, dst *[]uint64) error {
	out := make([]uint64, 0, len(values))
	for _, v := range values {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("value %q: %v", v, err)
		}
		out = append(out, n)
	}
	*dst = out
	return nil
}

// parseSize parses a byte count with an optional K/M suffix.
func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}
