package main

import (
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"addict/cmd/internal/cmdtest"
)

// TestAxesListing checks the -axes flag parses and documents every grid
// axis.
func TestAxesListing(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-axes")
	for _, axis := range []string{"workload", "mech", "l1i", "cores", "threads", "admit", "synth", "theta", "write", "hot"} {
		if !strings.Contains(stdout, axis) {
			t.Errorf("-axes output missing %q", axis)
		}
	}
}

// TestSmoke runs a tiny two-unit grid end to end in CSV form.
func TestSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe,
		"-grid", "workload=TPC-B; mech=Baseline,ADDICT", "-traces", "8", "-scale", "0.05", "-format", "csv")
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 unit rows, got %d lines:\n%s", len(lines), stdout)
	}
	if !strings.Contains(lines[0], "mechanism") {
		t.Errorf("missing CSV header: %q", lines[0])
	}
	if !strings.Contains(stdout, "Baseline") || !strings.Contains(stdout, "ADDICT") {
		t.Errorf("unit rows missing mechanisms:\n%s", stdout)
	}
}

// TestSynthGridSmoke sweeps a synthetic preset over two write fractions
// and checks the encoded workload names reach the output with stable IDs.
func TestSynthGridSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe,
		"-grid", "synth=uniform-ro; write=0.1,0.9; mech=Baseline",
		"-traces", "8", "-scale", "0.01", "-format", "csv")
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 unit rows, got %d lines:\n%s", len(lines), stdout)
	}
	for _, want := range []string{"synth:uniform-ro+w0.1/Baseline/", "synth:uniform-ro+w0.9/Baseline/"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing unit %q:\n%s", want, stdout)
		}
	}
}

// TestSynthGridByteIdentity: the acceptance criterion's CLI half — a synth
// grid must emit identical bytes for every -parallel value.
func TestSynthGridByteIdentity(t *testing.T) {
	exe := cmdtest.Build(t)
	grid := []string{
		"-grid", "synth=zipf-hot-rw; theta=0.6,0.99; mech=Baseline,ADDICT",
		"-traces", "12", "-scale", "0.01", "-format", "csv",
	}
	ref, _ := cmdtest.Run(t, exe, append(grid, "-parallel", "1")...)
	if len(ref) == 0 {
		t.Fatal("serial synth sweep produced no output")
	}
	for _, par := range []string{"2", "8"} {
		got, _ := cmdtest.Run(t, exe, append(grid, "-parallel", par)...)
		if got != ref {
			t.Errorf("-parallel %s output diverges from serial", par)
		}
	}
}

// TestInterruptExitsPromptly is the cancellation acceptance criterion at
// the process level: SIGINT on a large in-flight grid must exit with a
// non-zero status within 2 seconds (the CI cancel-smoke step re-checks the
// same contract on the installed binaries).
func TestInterruptExitsPromptly(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGINT delivery on windows")
	}
	exe := cmdtest.Build(t)
	// A grid far too large to finish: cancellation, not completion, ends it.
	cmd := exec.Command(exe,
		"-grid", "l1i=8K,16K,32K,64K; cores=4,8,16; threads=2,4,8,16",
		"-traces", "400", "-scale", "1.0")
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it get into trace generation before interrupting.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := cmd.Wait()
	elapsed := time.Since(start)
	if err == nil {
		t.Error("interrupted sweep exited 0, want non-zero")
	}
	if elapsed > 2*time.Second {
		t.Errorf("interrupted sweep took %v to exit, want <= 2s", elapsed)
	}
}
