package main

import (
	"strings"
	"testing"

	"addict/cmd/internal/cmdtest"
)

// TestAxesListing checks the -axes flag parses and documents every grid
// axis.
func TestAxesListing(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-axes")
	for _, axis := range []string{"workload", "mech", "l1i", "cores", "threads", "admit"} {
		if !strings.Contains(stdout, axis) {
			t.Errorf("-axes output missing %q", axis)
		}
	}
}

// TestSmoke runs a tiny two-unit grid end to end in CSV form.
func TestSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe,
		"-grid", "workload=TPC-B; mech=Baseline,ADDICT", "-traces", "8", "-scale", "0.05", "-format", "csv")
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 unit rows, got %d lines:\n%s", len(lines), stdout)
	}
	if !strings.Contains(lines[0], "mechanism") {
		t.Errorf("missing CSV header: %q", lines[0])
	}
	if !strings.Contains(stdout, "Baseline") || !strings.Contains(stdout, "ADDICT") {
		t.Errorf("unit rows missing mechanisms:\n%s", stdout)
	}
}
