package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"addict/cmd/internal/cmdtest"
)

// TestAxesListing checks the -axes flag parses and documents every grid
// axis.
func TestAxesListing(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-axes")
	for _, axis := range []string{"workload", "mech", "l1i", "cores", "threads", "admit", "synth", "theta", "write", "hot"} {
		if !strings.Contains(stdout, axis) {
			t.Errorf("-axes output missing %q", axis)
		}
	}
}

// TestSmoke runs a tiny two-unit grid end to end in CSV form.
func TestSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe,
		"-grid", "workload=TPC-B; mech=Baseline,ADDICT", "-traces", "8", "-scale", "0.05", "-format", "csv")
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 unit rows, got %d lines:\n%s", len(lines), stdout)
	}
	if !strings.Contains(lines[0], "mechanism") {
		t.Errorf("missing CSV header: %q", lines[0])
	}
	if !strings.Contains(stdout, "Baseline") || !strings.Contains(stdout, "ADDICT") {
		t.Errorf("unit rows missing mechanisms:\n%s", stdout)
	}
}

// TestSynthGridSmoke sweeps a synthetic preset over two write fractions
// and checks the encoded workload names reach the output with stable IDs.
func TestSynthGridSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe,
		"-grid", "synth=uniform-ro; write=0.1,0.9; mech=Baseline",
		"-traces", "8", "-scale", "0.01", "-format", "csv")
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 unit rows, got %d lines:\n%s", len(lines), stdout)
	}
	for _, want := range []string{"synth:uniform-ro+w0.1/Baseline/", "synth:uniform-ro+w0.9/Baseline/"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing unit %q:\n%s", want, stdout)
		}
	}
}

// TestSynthGridByteIdentity: the acceptance criterion's CLI half — a synth
// grid must emit identical bytes for every -parallel value.
func TestSynthGridByteIdentity(t *testing.T) {
	exe := cmdtest.Build(t)
	grid := []string{
		"-grid", "synth=zipf-hot-rw; theta=0.6,0.99; mech=Baseline,ADDICT",
		"-traces", "12", "-scale", "0.01", "-format", "csv",
	}
	ref, _ := cmdtest.Run(t, exe, append(grid, "-parallel", "1")...)
	if len(ref) == 0 {
		t.Fatal("serial synth sweep produced no output")
	}
	for _, par := range []string{"2", "8"} {
		got, _ := cmdtest.Run(t, exe, append(grid, "-parallel", par)...)
		if got != ref {
			t.Errorf("-parallel %s output diverges from serial", par)
		}
	}
}

// TestInterruptExitsPromptly is the cancellation acceptance criterion at
// the process level: SIGINT on a large in-flight grid must exit with a
// non-zero status within 2 seconds (the CI cancel-smoke step re-checks the
// same contract on the installed binaries).
func TestInterruptExitsPromptly(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGINT delivery on windows")
	}
	exe := cmdtest.Build(t)
	// A grid far too large to finish: cancellation, not completion, ends it.
	cmd := exec.Command(exe,
		"-grid", "l1i=8K,16K,32K,64K; cores=4,8,16; threads=2,4,8,16",
		"-traces", "400", "-scale", "1.0")
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it get into trace generation before interrupting.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := cmd.Wait()
	elapsed := time.Since(start)
	if err == nil {
		t.Error("interrupted sweep exited 0, want non-zero")
	}
	if elapsed > 2*time.Second {
		t.Errorf("interrupted sweep took %v to exit, want <= 2s", elapsed)
	}
}

// TestDistributedProcessesMatchSerial is the command-level acceptance run:
// one coordinator process (-serve-workers, contributing no local workers)
// plus two separate worker processes (-join) rendezvousing on one store
// directory must produce stdout byte-identical to the same grid swept in
// a single process, and the -dist-summary file must account every unit.
func TestDistributedProcessesMatchSerial(t *testing.T) {
	exe := cmdtest.Build(t)
	gridArgs := []string{
		"-grid", "workload=synth:uniform-ro,synth:hotset-write; mech=Baseline,ADDICT",
		"-traces", "40", "-scale", "0.05", "-seed", "5", "-format", "jsonl",
	}
	serial, _ := cmdtest.Run(t, exe, gridArgs...)
	if serial == "" {
		t.Fatal("serial sweep produced no output")
	}

	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	summaryPath := filepath.Join(dir, "summary.json")
	coord := exec.Command(exe, append(gridArgs,
		"-serve-workers", "127.0.0.1:0", "-local-workers", "0",
		"-store", store, "-dist-summary", summaryPath)...)
	var coordOut bytes.Buffer
	coord.Stdout = &coordOut
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The coordinator announces its bound address on stderr before leasing
	// anything; scrape the join URL from that line.
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "http://"); i >= 0 {
				urlCh <- strings.Fields(line[i:])[0]
				break
			}
		}
		io.Copy(io.Discard, stderr)
	}()
	var joinURL string
	select {
	case joinURL = <-urlCh:
	case <-time.After(20 * time.Second):
		t.Fatal("coordinator never announced its address")
	}

	var wg sync.WaitGroup
	workerErr := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := exec.Command(exe, "-join", joinURL, "-store", store, "-parallel", "2")
			w.Stdout = io.Discard
			w.Stderr = io.Discard
			workerErr[i] = w.Run()
		}(i)
	}
	wg.Wait()
	for i, werr := range workerErr {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if got := coordOut.String(); got != serial {
		t.Errorf("distributed stdout differs from serial:\n got: %q\nwant: %q", got, serial)
	}

	data, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatalf("dist summary not written: %v", err)
	}
	var sum struct {
		Units     int  `json:"units"`
		Completed int  `json:"completed"`
		Done      bool `json:"done"`
		Workers   map[string]struct {
			Completed uint64 `json:"completed"`
		} `json:"workers"`
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("bad summary JSON: %v\n%s", err, data)
	}
	if !sum.Done || sum.Units != 4 || sum.Completed != 4 {
		t.Errorf("summary = %+v, want 4/4 done", sum)
	}
	var total uint64
	for _, w := range sum.Workers {
		total += w.Completed
	}
	if total != 4 {
		t.Errorf("worker completions sum to %d, want 4\n%s", total, data)
	}
}
