package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"addict"
	"addict/cmd/internal/sigctx"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8414", "listen address")
	seed := flag.Int64("seed", 42, "session seed driving all workload randomness")
	scale := flag.Float64("scale", 0.5, "database scale factor")
	traces := flag.Int("traces", 250, "profiling and evaluation trace-window size")
	workers := flag.Int("workers", 0, "generation/replay parallelism (<1 = all CPUs)")
	maxRuns := flag.Int("max-runs", 4, "max concurrently admitted computations (<=0 = unlimited); excess requests get 429 + Retry-After")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "Retry-After hint sent with 429 replies")
	cacheBudget := flag.Int64("cache-budget", 0, "session artifact cache budget in approximate bytes (<=0 = unbounded)")
	respCache := flag.Int64("response-cache", 64<<20, "response cache budget in bytes (<=0 = unbounded)")
	storeDir := flag.String("store", "", "on-disk artifact store directory (empty = memory-only); restarts warm-start from it")
	storeBudget := flag.Int64("store-budget", 0, "on-disk store size budget in bytes (<=0 = unbounded)")
	flag.Parse()

	opts := []addict.EngineOption{
		addict.WithSeed(*seed),
		addict.WithScale(*scale),
		addict.WithTraceWindows(*traces, *traces, 0),
		addict.WithWorkers(*workers),
		addict.WithCacheBudget(*cacheBudget),
	}
	if *storeDir != "" {
		opts = append(opts, addict.WithStore(*storeDir, *storeBudget))
	}
	eng := addict.NewEngine(opts...)
	if err := eng.StoreErr(); err != nil {
		// A requested store that cannot open is a deployment error, not a
		// silent downgrade to memory-only.
		fmt.Fprintln(os.Stderr, "addict-serve:", err)
		os.Exit(1)
	}
	s := newServer(eng, *maxRuns, *retryAfter, *respCache)
	// One process-global publication; per-server maps stay unpublished so
	// the test suite can build servers freely.
	expvar.Publish("addict_serve", s.vars)

	ctx, stop := sigctx.Context(1500 * time.Millisecond)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "addict-serve:", err)
		os.Exit(1)
	}
	fmt.Printf("addict-serve: listening on http://%s (seed %d, scale %g, %d traces)\n",
		ln.Addr(), *seed, *scale, *traces)

	srv := &http.Server{
		Handler: s.handler(),
		// Every request context descends from the signal context: SIGINT
		// cancels in-flight runs, which unwind between work items.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "addict-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Drain within the sigctx grace window; the watchdog hard-exits
		// if a handler wedges past it.
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
		sigctx.Exit("addict-serve")
	}
}
