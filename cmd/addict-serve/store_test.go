package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"addict"
	"addict/client"
)

// newStoredServer is newTestServer over a session with an on-disk artifact
// store attached.
func newStoredServer(t *testing.T, dir string) (*server, *client.Client) {
	t.Helper()
	eng := addict.NewEngine(
		addict.WithSeed(5), addict.WithScale(0.05),
		addict.WithTraceWindows(40, 40, 0), addict.WithWorkers(2),
		addict.WithStore(dir, 0))
	if err := eng.StoreErr(); err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, 0, time.Second, 0)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL)
}

// TestServeStoreWarmRestart proves the serving warm start: a second server
// process (fresh engine, same store directory) answers from disk — nonzero
// store hits, byte-identical metrics — instead of regenerating artifacts.
func TestServeStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	const wl = "synth:uniform-ro"

	_, c1 := newStoredServer(t, dir)
	cold, err := c1.Schedule(ctx, wl, "ADDICT")
	if err != nil {
		t.Fatalf("cold Schedule: %v", err)
	}
	m1, err := c1.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m1.ArtifactStore == nil {
		t.Fatal("/debug/vars has no artifact_store with a store attached")
	}
	if m1.ArtifactStore.Writes == 0 {
		t.Fatalf("cold run persisted nothing: %+v", m1.ArtifactStore)
	}
	if m1.EngineCache.Store == nil {
		t.Error("engine_cache carries no store counters with a store attached")
	}

	_, c2 := newStoredServer(t, dir)
	warm, err := c2.Schedule(ctx, wl, "ADDICT")
	if err != nil {
		t.Fatalf("warm Schedule: %v", err)
	}
	if warm.Metrics != cold.Metrics {
		t.Errorf("warm metrics %+v differ from cold %+v", warm.Metrics, cold.Metrics)
	}
	m2, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m2.ArtifactStore == nil || m2.ArtifactStore.Hits == 0 {
		t.Errorf("warm restart read nothing from the store: %+v", m2.ArtifactStore)
	}
}

// TestServeNoStoreOmitsCounters: a memory-only server reports no store
// counters rather than zeros that look like a real, idle store.
func TestServeNoStoreOmitsCounters(t *testing.T) {
	_, c := newTestServer(t, 0)
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.ArtifactStore != nil {
		t.Errorf("memory-only server advertises store counters: %+v", m.ArtifactStore)
	}
	if m.EngineCache.Store != nil {
		t.Errorf("memory-only engine_cache advertises store counters: %+v", m.EngineCache.Store)
	}
}
