package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"addict"
	"addict/client"
	"addict/cmd/internal/cmdtest"
)

// newTestServer builds a server on a tiny deterministic session — the test
// sizing convention (seed 5, scale 0.05, 40-trace windows, 2 workers) —
// behind an httptest listener, plus a typed client pointed at it.
func newTestServer(t *testing.T, maxRuns int) (*server, *client.Client) {
	t.Helper()
	eng := addict.NewEngine(
		addict.WithSeed(5), addict.WithScale(0.05),
		addict.WithTraceWindows(40, 40, 0), addict.WithWorkers(2))
	s := newServer(eng, maxRuns, time.Second, 0)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL)
}

func TestHealthAndWorkloads(t *testing.T) {
	_, c := newTestServer(t, 0)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}
	names, err := c.Workloads(ctx)
	if err != nil {
		t.Fatalf("Workloads: %v", err)
	}
	want := map[string]bool{"TPC-B": false, "TPC-C": false, "TPC-E": false, "synth:zipf-hot-rw": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("workload listing missing %q (got %v)", n, names)
		}
	}
}

// TestProfileRoundTrip: a profile request round-trips through the typed
// client, and the repeat is served from the response cache (one
// computation, one coalesced hit).
func TestProfileRoundTrip(t *testing.T) {
	s, c := newTestServer(t, 0)
	ctx := context.Background()
	sum, err := c.Profile(ctx, "TPC-B")
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if sum.Workload != "TPC-B" || sum.TxnTypes == 0 || sum.Ops == 0 || sum.MigrationPoints == 0 {
		t.Fatalf("implausible profile summary: %+v", sum)
	}
	again, err := c.Profile(ctx, "TPC-B")
	if err != nil {
		t.Fatalf("repeat Profile: %v", err)
	}
	if *again != *sum {
		t.Errorf("repeated profile differs: %+v vs %+v", again, sum)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Requests["profile"] != 2 || m.Computations["profile"] != 1 {
		t.Errorf("want 2 requests / 1 computation, got %d / %d",
			m.Requests["profile"], m.Computations["profile"])
	}
	if m.CoalescedHits != 1 {
		t.Errorf("want 1 coalesced hit, got %d", m.CoalescedHits)
	}
	if s.resp.Stats().Entries == 0 {
		t.Error("response cache empty after a cacheable request")
	}
}

// TestScheduleSynthMatchesEngine: a schedule reply for an encoded synth
// workload equals what the underlying session computes directly.
func TestScheduleSynthMatchesEngine(t *testing.T) {
	s, c := newTestServer(t, 0)
	ctx := context.Background()
	got, err := c.Schedule(ctx, "synth:zipf-hot-rw", "ADDICT")
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := s.eng.Schedule(ctx, addict.ADDICT, "synth:zipf-hot-rw")
	if err != nil {
		t.Fatalf("engine Schedule: %v", err)
	}
	if want := addict.MeasureSweepMetrics(res); got.Metrics != want {
		t.Errorf("served metrics %+v != engine metrics %+v", got.Metrics, want)
	}
}

// TestScheduleUnknownNames: resolution failures are 400s with the
// registry's error text — including the nearest-preset suggestion for
// synth typos.
func TestScheduleUnknownNames(t *testing.T) {
	_, c := newTestServer(t, 0)
	ctx := context.Background()
	_, err := c.Schedule(ctx, "TPC-X", "Baseline")
	var se *client.StatusError
	if !asStatus(err, &se) || se.Code != 400 {
		t.Fatalf("unknown workload: want 400 StatusError, got %v", err)
	}
	_, err = c.Profile(ctx, "synth:zipf-hot-rm")
	if !asStatus(err, &se) || se.Code != 400 || !strings.Contains(se.Message, `did you mean "zipf-hot-rw"`) {
		t.Fatalf("synth typo: want 400 with nearest-preset suggestion, got %v", err)
	}
	_, err = c.Schedule(ctx, "TPC-B", "FancyNewMech")
	if !asStatus(err, &se) || se.Code != 400 || !strings.Contains(se.Message, "unknown mechanism") {
		t.Fatalf("unknown mechanism: want 400, got %v", err)
	}
}

func asStatus(err error, out **client.StatusError) bool {
	se, ok := err.(*client.StatusError)
	if ok {
		*out = se
	}
	return ok
}

// TestSweepStream: a sweep streams one NDJSON row per expanded unit, in
// grid order, through the typed client.
func TestSweepStream(t *testing.T) {
	_, c := newTestServer(t, 0)
	spec := addict.SweepSpec{
		Workloads:  []string{"synth:uniform-ro"},
		Mechanisms: []string{"Baseline", "ADDICT"},
	}
	var rows []client.SweepRow
	n, err := c.Sweep(context.Background(), spec, func(r client.SweepRow) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if n != 2 || len(rows) != 2 {
		t.Fatalf("want 2 rows, got n=%d len=%d", n, len(rows))
	}
	if rows[0].Mechanism != "Baseline" || rows[1].Mechanism != "ADDICT" {
		t.Errorf("rows out of grid order: %q, %q", rows[0].Mechanism, rows[1].Mechanism)
	}
	for _, r := range rows {
		if r.Workload != "synth:uniform-ro" || r.ID == "" || r.Instructions == 0 {
			t.Errorf("implausible row: %+v", r)
		}
	}
}

// TestBenchSynthStream is the acceptance criterion's bench half: a bench
// request for synth:zipf-hot-rw streams progress lines and ends with a
// report whose cells cover the requested (workload × mechanism) grid.
func TestBenchSynthStream(t *testing.T) {
	_, c := newTestServer(t, 0)
	var progress []string
	rep, err := c.Bench(context.Background(), client.BenchRequest{
		Workloads:  []string{"synth:zipf-hot-rw"},
		Mechanisms: []string{"Baseline", "ADDICT"},
		MinRuns:    1, MinDurationMS: 1,
	}, func(line string) { progress = append(progress, line) })
	if err != nil {
		t.Fatalf("Bench: %v", err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("want 2 bench cells, got %d", len(rep.Cells))
	}
	for _, cell := range rep.Cells {
		if cell.Workload != "synth:zipf-hot-rw" || cell.EventsPerSec <= 0 {
			t.Errorf("implausible cell: %+v", cell)
		}
	}
	if len(progress) < 2 {
		t.Errorf("want >= 2 streamed progress lines, got %d: %v", len(progress), progress)
	}
	// A fresh identical request measures again (coalescing is in-flight
	// only — Forget drops the memoized report).
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	before := m.Computations["bench"]
	if _, err := c.Bench(context.Background(), client.BenchRequest{
		Workloads:  []string{"synth:zipf-hot-rw"},
		Mechanisms: []string{"Baseline", "ADDICT"},
		MinRuns:    1, MinDurationMS: 1,
	}, nil); err != nil {
		t.Fatalf("second Bench: %v", err)
	}
	m, err = c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Computations["bench"] != before+1 {
		t.Errorf("sequential bench requests must both measure: computations %d -> %d",
			before, m.Computations["bench"])
	}
}

// TestSweepCoalescing: N identical concurrent sweep requests produce
// exactly one underlying computation — the rest coalesce (in flight or
// from the response cache; either way the computation counter stays 1).
func TestSweepCoalescing(t *testing.T) {
	_, c := newTestServer(t, 0)
	spec := addict.SweepSpec{
		Workloads:  []string{"synth:hotset-write"},
		Mechanisms: []string{"Baseline", "SLICC"},
	}
	const n = 4
	var wg sync.WaitGroup
	counts := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts[i], errs[i] = c.Sweep(context.Background(), spec, nil)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if counts[i] != 2 {
			t.Errorf("request %d: want 2 rows, got %d", i, counts[i])
		}
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Computations["sweep"] != 1 {
		t.Errorf("want exactly 1 sweep computation for %d identical requests, got %d",
			n, m.Computations["sweep"])
	}
	if m.Requests["sweep"] != n {
		t.Errorf("want %d sweep requests, got %d", n, m.Requests["sweep"])
	}
	if m.CoalescedHits != n-1 {
		t.Errorf("want %d coalesced hits, got %d", n-1, m.CoalescedHits)
	}
}

// TestCancellationPropagates: a client that gives up mid-run cancels the
// server-side computation — observable as a runs_cancelled tick, promptly.
func TestCancellationPropagates(t *testing.T) {
	_, c := newTestServer(t, 0)
	// TPC-E population + four-mechanism replay cannot finish in 30ms, so
	// the deadline always lands mid-run.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Sweep(ctx, addict.SweepSpec{Workloads: []string{"TPC-E"}}, nil)
	if err == nil {
		t.Fatal("sweep with a 30ms deadline succeeded; cannot exercise cancellation")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, merr := c.Metrics(context.Background())
		if merr != nil {
			t.Fatal(merr)
		}
		if m.RunsCancelled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never observed the cancellation (runs_cancelled=%d)", m.RunsCancelled)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionLimiter: with every slot occupied, requests that need to
// compute are shed with 429 + Retry-After, while cache hits still serve;
// freeing the slot re-admits.
func TestAdmissionLimiter(t *testing.T) {
	s, c := newTestServer(t, 1)
	ctx := context.Background()
	if _, err := c.Profile(ctx, "synth:uniform-ro"); err != nil {
		t.Fatalf("warm-up Profile: %v", err)
	}
	if !s.acquire() {
		t.Fatal("could not occupy the only slot")
	}
	_, err := c.Profile(ctx, "synth:hotset-write")
	be, ok := err.(*client.BusyError)
	if !ok {
		t.Fatalf("want BusyError at capacity, got %v", err)
	}
	if be.RetryAfter < time.Second {
		t.Errorf("429 Retry-After = %v, want >= 1s", be.RetryAfter)
	}
	// A memoized answer must not need a slot.
	if _, err := c.Profile(ctx, "synth:uniform-ro"); err != nil {
		t.Errorf("cache hit rejected at capacity: %v", err)
	}
	m, merr := c.Metrics(ctx)
	if merr != nil {
		t.Fatal(merr)
	}
	if m.Rejected != 1 {
		t.Errorf("want 1 rejected request, got %d", m.Rejected)
	}
	s.release()
	if _, err := c.Profile(ctx, "synth:hotset-write"); err != nil {
		t.Errorf("Profile after slot release: %v", err)
	}
}

// TestInterruptExitsPromptly: SIGINT on the serving process drains and
// exits 130 within the 2-second cancellation bound — the same contract
// every addict command holds (CI re-checks it via cancel-smoke.sh).
func TestInterruptExitsPromptly(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGINT delivery on windows")
	}
	exe := cmdtest.Build(t)
	cmd := exec.Command(exe, "-addr", "127.0.0.1:0")
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := cmd.Wait()
	elapsed := time.Since(start)
	if err == nil {
		t.Error("interrupted server exited 0, want non-zero")
	}
	if elapsed > 2*time.Second {
		t.Errorf("server took %v to exit after SIGINT, want <= 2s", elapsed)
	}
}

// TestSweepDistributedMode: a sweep request carrying a dist block runs
// through the in-process coordinator + local workers and streams the same
// rows, in the same order, as the serial engine — and the coordinator's
// per-worker summary lands in /debug/vars under "dist".
func TestSweepDistributedMode(t *testing.T) {
	s, c := newTestServer(t, 0)
	ctx := context.Background()
	spec := addict.SweepSpec{
		Workloads:  []string{"synth:uniform-ro"},
		Mechanisms: []string{"Baseline", "ADDICT"},
	}
	var want bytes.Buffer
	if err := s.eng.Sweep(ctx, &want, spec, "jsonl"); err != nil {
		t.Fatal(err)
	}

	var rows []client.SweepRow
	n, err := c.SweepDistributed(ctx, spec, client.DistRequest{LocalWorkers: 2},
		func(r client.SweepRow) error { rows = append(rows, r); return nil })
	if err != nil {
		t.Fatalf("SweepDistributed: %v", err)
	}
	if n != 2 || rows[0].Mechanism != "Baseline" || rows[1].Mechanism != "ADDICT" {
		t.Fatalf("distributed stream wrong: n=%d rows=%+v", n, rows)
	}

	// The response cache now holds the distributed run's bytes under the
	// spec-only key; a plain serial request must hit that cell and return
	// bytes identical to the serial engine's own output.
	body, _ := json.Marshal(struct {
		Spec addict.SweepSpec `json:"spec"`
	}{spec})
	resp, err := http.Post(c.BaseURL()+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("distributed bytes differ from serial engine output:\n got: %q\nwant: %q", got, want.Bytes())
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist == nil || !m.Dist.Done || m.Dist.Units != 2 {
		t.Fatalf("dist summary not exposed in metrics: %+v", m.Dist)
	}
	if len(m.Dist.Workers) != 2 {
		t.Errorf("want 2 workers in dist summary, got %+v", m.Dist.Workers)
	}
	if m.Computations["sweep"] != 1 {
		t.Errorf("want 1 sweep computation (serial repeat cached), got %d", m.Computations["sweep"])
	}
}

// TestMetricsEndpoint: /metrics re-renders the expvar counters as
// Prometheus text exposition — deterministic, parseable lines covering
// the scalar counters, the per-endpoint maps, and the flattened cache
// stats.
func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, 0)
	ctx := context.Background()
	if _, err := c.Profile(ctx, "synth:uniform-ro"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"addict_serve_requests_total{key=\"profile\"} 1\n",
		"addict_serve_computations_total{key=\"profile\"} 1\n",
		"addict_serve_rejected 0\n",
		"addict_serve_active_runs 0\n",
		"addict_serve_engine_cache_hits ",
		"addict_serve_response_cache_entries 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n--- exposition ---\n%s", want, text)
		}
	}
	// Two scrapes of an idle server are byte-identical (sorted maps, no
	// timestamps) — the determinism the rest of the repo holds everywhere.
	resp2, err := http.Get(c.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, body2) {
		t.Error("two idle /metrics scrapes differ; exposition is not deterministic")
	}
}
