//go:build loadsmoke

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"addict"
	"addict/client"
)

// TestLoadSmoke drives a burst of mixed profile/sweep traffic — the synth
// presets as the traffic model — at a one-slot admission limiter, in two
// phases:
//
//  1. With the only slot occupied, every request that needs to compute
//     must be shed with 429 + Retry-After (no queueing, no hanging).
//  2. With the slot released, every request must complete when retried
//     honoring the server's Retry-After hint.
//
// The request/latency summary is written to $LOADSMOKE_SUMMARY (or the
// test temp dir) for the CI artifact.
func TestLoadSmoke(t *testing.T) {
	eng := addict.NewEngine(
		addict.WithSeed(5), addict.WithScale(0.05),
		addict.WithTraceWindows(40, 40, 0), addict.WithWorkers(2))
	s := newServer(eng, 1, time.Second, 0)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// The traffic model: one profile request per synth preset plus one
	// two-mechanism sweep per preset — ten distinct compute-needing
	// requests.
	type job struct {
		kind string
		run  func(context.Context) error
	}
	var jobs []job
	for _, preset := range addict.SynthPresets() {
		name := "synth:" + preset
		jobs = append(jobs, job{"profile", func(ctx context.Context) error {
			_, err := c.Profile(ctx, name)
			return err
		}})
		spec := addict.SweepSpec{Workloads: []string{name}, Mechanisms: []string{"Baseline", "ADDICT"}}
		jobs = append(jobs, job{"sweep", func(ctx context.Context) error {
			_, err := c.Sweep(ctx, spec, nil)
			return err
		}})
	}

	// Phase 1: slot occupied — the whole burst must shed, carrying the
	// Retry-After hint.
	if !s.acquire() {
		t.Fatal("could not occupy the only admission slot")
	}
	var wg sync.WaitGroup
	shed := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shed[i] = j.run(ctx)
		}()
	}
	wg.Wait()
	rejected := 0
	for i, err := range shed {
		var be *client.BusyError
		if !errors.As(err, &be) {
			t.Errorf("phase 1 job %d (%s): want BusyError at capacity, got %v", i, jobs[i].kind, err)
			continue
		}
		if be.RetryAfter <= 0 {
			t.Errorf("phase 1 job %d: 429 without a Retry-After hint", i)
		}
		rejected++
	}
	s.release()

	// Phase 2: retried traffic completes; honoring Retry-After bounds the
	// retry loop. Latency covers the full retry span (what a polite
	// client experiences).
	latencies := make([]time.Duration, len(jobs))
	retries := make([]int, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			for {
				err := j.run(ctx)
				if err == nil {
					latencies[i] = time.Since(start)
					return
				}
				var be *client.BusyError
				if !errors.As(err, &be) {
					t.Errorf("phase 2 job %d (%s): %v", i, jobs[i].kind, err)
					return
				}
				retries[i]++
				if retries[i] > 60 {
					t.Errorf("phase 2 job %d: still shed after %d retries", i, retries[i])
					return
				}
				// A fraction of the hint keeps the smoke fast while still
				// backing off.
				time.Sleep(be.RetryAfter / 10)
			}
		}()
	}
	wg.Wait()

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected < int64(rejected) {
		t.Errorf("rejected counter %d < observed 429s %d", m.Rejected, rejected)
	}
	if m.ActiveRuns != 0 {
		t.Errorf("active_runs = %d after quiescence, want 0", m.ActiveRuns)
	}

	// Summary artifact.
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	totalRetries := 0
	for _, r := range retries {
		totalRetries += r
	}
	summary := map[string]any{
		"jobs":           len(jobs),
		"phase1_shed":    rejected,
		"phase2_retries": totalRetries,
		"rejected_total": m.Rejected,
		"computations":   m.Computations,
		"coalesced_hits": m.CoalescedHits,
		"latency_ms": map[string]float64{
			"p50": float64(sorted[len(sorted)/2]) / float64(time.Millisecond),
			"p90": float64(sorted[len(sorted)*9/10]) / float64(time.Millisecond),
			"max": float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
		},
	}
	path := os.Getenv("LOADSMOKE_SUMMARY")
	if path == "" {
		path = filepath.Join(t.TempDir(), "loadsmoke-summary.json")
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("loadsmoke summary (%s):\n%s\n", path, data)
}
