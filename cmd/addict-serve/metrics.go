package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders the server's expvar counters in the Prometheus
// text exposition format (version 0.0.4), so the same numbers /debug/vars
// serves as JSON can be scraped without an adapter. The mapping is
// mechanical and deterministic:
//
//   - an *expvar.Int becomes addict_serve_<name>
//   - an *expvar.Map becomes addict_serve_<name>_total{key="<k>"} per entry
//   - an expvar.Func's JSON value is flattened depth-first: every numeric
//     leaf becomes addict_serve_<name>_<path> with underscore-joined path
//     segments (non-numeric leaves are skipped), nested maps sorted by key
//
// Everything is exported as an untyped metric: some of these are counters
// and some are gauges, and claiming one type for a flattened JSON tree
// would be wrong somewhere.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	type kv struct {
		key string
		v   expvar.Var
	}
	var vars []kv
	s.vars.Do(func(e expvar.KeyValue) { vars = append(vars, kv{e.Key, e.Value}) })
	sort.Slice(vars, func(i, j int) bool { return vars[i].key < vars[j].key })

	for _, e := range vars {
		name := "addict_serve_" + sanitizeMetric(e.key)
		switch v := e.v.(type) {
		case *expvar.Int:
			fmt.Fprintf(&b, "%s %d\n", name, v.Value())
		case *expvar.Map:
			var entries []expvar.KeyValue
			v.Do(func(e expvar.KeyValue) { entries = append(entries, e) })
			sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
			for _, ent := range entries {
				fmt.Fprintf(&b, "%s_total{key=%q} %s\n", name, ent.Key, ent.Value.String())
			}
		case expvar.Func:
			// Round-trip through JSON: the Func values here are stats
			// structs whose wire form is their contract.
			data, err := json.Marshal(v.Value())
			if err != nil {
				continue
			}
			var tree any
			if err := json.Unmarshal(data, &tree); err != nil {
				continue
			}
			flattenMetric(&b, name, tree)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// flattenMetric emits every numeric leaf of a decoded JSON tree as one
// metric line, joining object keys into the metric name and sorting each
// level so the exposition is byte-stable.
func flattenMetric(b *strings.Builder, name string, v any) {
	switch x := v.(type) {
	case float64:
		// %v prints integral float64s without an exponent or trailing
		// zeros, which is valid Prometheus for counters and gauges alike.
		fmt.Fprintf(b, "%s %v\n", name, x)
	case bool:
		n := 0
		if x {
			n = 1
		}
		fmt.Fprintf(b, "%s %d\n", name, n)
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flattenMetric(b, name+"_"+sanitizeMetric(k), x[k])
		}
	}
	// Strings, arrays, and nulls have no numeric reading — skipped.
}

// sanitizeMetric maps an arbitrary key into the Prometheus metric-name
// alphabet [a-zA-Z0-9_].
func sanitizeMetric(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && len(out) > 0:
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
