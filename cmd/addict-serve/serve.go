// Command addict-serve exposes one long-lived addict.Engine session over
// HTTP/JSON: profile, schedule, sweep, and bench requests resolve workload
// names through the one registry (TPC names and encoded "synth:" names),
// run on the session's shared artifact cache, and stream long results as
// NDJSON. The server hardens the session for multi-tenant use: identical
// concurrent requests coalesce into one computation, an admission limiter
// sheds load with 429 + Retry-After instead of queueing unboundedly, the
// artifact and response caches are weight-bounded LRUs, and every request
// context is wired straight into the pipeline so a disconnected client
// cancels its run. Counters are exposed at /debug/vars.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"addict"
	"addict/internal/pool"
)

// errBusy marks a request refused by the admission limiter; handlers map
// it to 429 + Retry-After.
var errBusy = errors.New("server at run capacity")

// statusErr carries an HTTP status through a compute path.
type statusErr struct {
	code int
	msg  string
}

func (e *statusErr) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &statusErr{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// server is the serving state around one Engine session. Responses of the
// deterministic endpoints (profile, schedule, sweep) are memoized in a
// weight-bounded LRU — coalescing identical concurrent requests AND
// serving repeats from memory, since a session's answer for a given
// request never changes. Bench requests are measurements, so they only
// coalesce in flight (Flight + Forget): concurrent identical requests
// share one run, but a later request measures afresh.
type server struct {
	eng        *addict.Engine
	slots      chan struct{} // admission tokens; nil = unlimited
	retryAfter time.Duration
	resp       *pool.LRU[[]byte]
	bench      pool.Flight[*addict.BenchReport]

	vars          *expvar.Map
	reqs          *expvar.Map // per-endpoint requests received
	comps         *expvar.Map // per-endpoint computations actually run
	coalesced     *expvar.Int // requests served by another request's work
	rejected      *expvar.Int // requests refused by the admission limiter
	activeRuns    *expvar.Int // computations currently holding a slot
	runsCancelled *expvar.Int // requests that ended with a cancelled context

	// lastDist holds the most recent distributed sweep's coordinator
	// summary (*addict.DistSummary): per-worker units leased / completed /
	// requeued and store counters, exposed under "dist" in /debug/vars and
	// flattened into /metrics.
	lastDist atomic.Value
}

// newServer assembles the serving state. maxRuns bounds concurrently
// admitted computations (<= 0 = unlimited); respBudget bounds the
// response cache's resident bytes (<= 0 = unbounded). The expvar map is
// NOT published to the global registry — main does that once — so tests
// can build many servers in one process.
func newServer(eng *addict.Engine, maxRuns int, retryAfter time.Duration, respBudget int64) *server {
	s := &server{
		eng:        eng,
		retryAfter: retryAfter,
		resp: pool.NewLRU[[]byte](respBudget, func(b []byte) int64 {
			return int64(len(b)) + 128
		}),
		vars:          new(expvar.Map).Init(),
		reqs:          new(expvar.Map).Init(),
		comps:         new(expvar.Map).Init(),
		coalesced:     new(expvar.Int),
		rejected:      new(expvar.Int),
		activeRuns:    new(expvar.Int),
		runsCancelled: new(expvar.Int),
	}
	if maxRuns > 0 {
		s.slots = make(chan struct{}, maxRuns)
	}
	s.vars.Set("requests", s.reqs)
	s.vars.Set("computations", s.comps)
	s.vars.Set("coalesced_hits", s.coalesced)
	s.vars.Set("rejected", s.rejected)
	s.vars.Set("active_runs", s.activeRuns)
	s.vars.Set("runs_cancelled", s.runsCancelled)
	s.vars.Set("engine_cache", expvar.Func(func() any { return eng.CacheStats() }))
	s.vars.Set("response_cache", expvar.Func(func() any { return s.resp.Stats() }))
	s.vars.Set("artifact_store", expvar.Func(func() any { return eng.CacheStats().Store }))
	s.vars.Set("dist", expvar.Func(func() any { return s.lastDist.Load() }))
	return s
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/profile", s.handleProfile)
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/bench", s.handleBench)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// acquire takes an admission slot (false = at capacity, shed the request).
// Slots are taken inside compute closures, after the caches: cache hits
// and coalesced followers never consume one.
func (s *server) acquire() bool {
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
		default:
			return false
		}
	}
	s.activeRuns.Add(1)
	return true
}

func (s *server) release() {
	if s.slots != nil {
		<-s.slots
	}
	s.activeRuns.Add(-1)
}

// fail maps a compute error to its HTTP reply. All compute paths defer
// body writes until success, so the status line here is always writable.
func (s *server) fail(w http.ResponseWriter, err error) {
	var se *statusErr
	switch {
	case errors.Is(err, errBusy):
		s.rejected.Add(1)
		secs := int(math.Ceil(s.retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is (usually) gone; the write is best-effort, the
		// counter is the observable part.
		s.runsCancelled.Add(1)
		writeError(w, http.StatusServiceUnavailable, "run cancelled")
	case errors.As(err, &se):
		writeError(w, se.code, se.msg)
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

func decodeJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// respond serves one deterministic endpoint through the response cache:
// the first request for a key computes (holding an admission slot), every
// concurrent identical request waits on that computation, and later
// repeats hit the memoized bytes until evicted. A cancelled leader's cell
// is evicted; surviving waiters retry and one becomes the new leader.
func (s *server) respond(w http.ResponseWriter, r *http.Request, endpoint, key, contentType string,
	compute func(ctx context.Context) ([]byte, error)) {
	s.reqs.Add(endpoint, 1)
	led := false
	body, err := s.resp.Do(r.Context(), key, func() ([]byte, error) {
		led = true
		if !s.acquire() {
			return nil, errBusy
		}
		defer s.release()
		s.comps.Add(endpoint, 1)
		return compute(r.Context())
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	if !led {
		s.coalesced.Add(1)
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(body)
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, s.vars.String())
}

func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	s.reqs.Add("workloads", 1)
	names := []string{"TPC-B", "TPC-C", "TPC-E"}
	for _, p := range addict.SynthPresets() {
		names = append(names, "synth:"+p)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Workloads []string `json:"workloads"`
	}{names})
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Workload string `json:"workload"`
	}
	if err := decodeJSON(r, &req); err != nil {
		s.reqs.Add("profile", 1)
		s.fail(w, err)
		return
	}
	if err := addict.ValidateWorkload(req.Workload); err != nil {
		s.reqs.Add("profile", 1)
		s.fail(w, badRequest("%v", err))
		return
	}
	s.respond(w, r, "profile", "profile\x00"+req.Workload, "application/json",
		func(ctx context.Context) ([]byte, error) {
			p, err := s.eng.Profile(ctx, req.Workload)
			if err != nil {
				return nil, err
			}
			ops, points := 0, 0
			for _, t := range p.Txns {
				ops += len(t.Ops)
				for _, op := range t.Ops {
					points += len(op.Seq)
				}
			}
			return json.Marshal(struct {
				Workload        string `json:"workload"`
				TxnTypes        int    `json:"txn_types"`
				Ops             int    `json:"ops"`
				MigrationPoints int    `json:"migration_points"`
			}{req.Workload, len(p.Txns), ops, points})
		})
}

// parseMechanism resolves a mechanism name against every shipped
// mechanism family (case-insensitive, with a nearest-name suggestion on a
// typo), mapped to a 400 for the client.
func parseMechanism(name string) (addict.Mechanism, error) {
	m, err := addict.ParseMechanism(name)
	if err != nil {
		return "", badRequest("%v", err)
	}
	return m, nil
}

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Workload  string `json:"workload"`
		Mechanism string `json:"mechanism"`
	}
	if err := decodeJSON(r, &req); err != nil {
		s.reqs.Add("schedule", 1)
		s.fail(w, err)
		return
	}
	if err := addict.ValidateWorkload(req.Workload); err != nil {
		s.reqs.Add("schedule", 1)
		s.fail(w, badRequest("%v", err))
		return
	}
	mech, err := parseMechanism(req.Mechanism)
	if err != nil {
		s.reqs.Add("schedule", 1)
		s.fail(w, err)
		return
	}
	key := "schedule\x00" + req.Workload + "\x00" + req.Mechanism
	s.respond(w, r, "schedule", key, "application/json",
		func(ctx context.Context) ([]byte, error) {
			res, err := s.eng.Schedule(ctx, mech, req.Workload)
			if err != nil {
				return nil, err
			}
			return json.Marshal(struct {
				Workload  string              `json:"workload"`
				Mechanism string              `json:"mechanism"`
				Metrics   addict.SweepMetrics `json:"metrics"`
			}{req.Workload, req.Mechanism, addict.MeasureSweepMetrics(res)})
		})
}

// distWire is the optional distributed-execution block of a sweep
// request: spin a coordinator inside the serving process, contribute
// LocalWorkers in-process workers, and let remote addict-sweep -join
// processes share the grid through the listen address.
type distWire struct {
	Listen       string `json:"listen,omitempty"`
	LocalWorkers int    `json:"local_workers,omitempty"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Spec addict.SweepSpec `json:"spec"`
		Dist *distWire        `json:"dist,omitempty"`
	}
	if err := decodeJSON(r, &req); err != nil {
		s.reqs.Add("sweep", 1)
		s.fail(w, err)
		return
	}
	if _, err := addict.ExpandSweep(req.Spec); err != nil {
		s.reqs.Add("sweep", 1)
		s.fail(w, badRequest("%v", err))
		return
	}
	// The decoded spec re-marshals with a fixed field order, so every
	// spelling of one grid lands on one cache key. The dist block is
	// deliberately NOT part of the key: a distributed run's merged output
	// is byte-identical to the single-process run of the same spec, so
	// serial and distributed requests for one grid share one cache cell
	// (and a cached grid is never re-coordinated).
	canon, err := json.Marshal(req.Spec)
	if err != nil {
		s.reqs.Add("sweep", 1)
		s.fail(w, err)
		return
	}
	s.respond(w, r, "sweep", "sweep\x00"+string(canon), "application/x-ndjson",
		func(ctx context.Context) ([]byte, error) {
			// Buffered, not streamed: the buffer is what makes identical
			// concurrent sweeps coalesce and repeats free. Cancellation
			// still propagates — the engine stops between units.
			var buf bytes.Buffer
			if req.Dist != nil {
				cfg := addict.DistConfig{
					Listen:       req.Dist.Listen,
					LocalWorkers: req.Dist.LocalWorkers,
				}
				if cfg.LocalWorkers <= 0 {
					// At least one in-process worker, so a request whose
					// remote workers never join cannot wedge the grid.
					cfg.LocalWorkers = 1
				}
				sum, err := s.eng.SweepDistributed(ctx, &buf, req.Spec, "jsonl", cfg)
				s.lastDist.Store(&sum)
				if err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			}
			if err := s.eng.Sweep(ctx, &buf, req.Spec, "jsonl"); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
}

// benchWire is the bench request's wire form; it deliberately exposes
// only measurement scope — seed, scale, and trace windows are session
// properties (they define what the artifact cache holds).
type benchWire struct {
	Workloads     []string `json:"workloads,omitempty"`
	Mechanisms    []string `json:"mechanisms,omitempty"`
	MinRuns       int      `json:"min_runs,omitempty"`
	MinDurationMS int      `json:"min_duration_ms,omitempty"`
}

// benchEvent is one NDJSON line of the bench stream.
type benchEvent struct {
	Type   string              `json:"type"`
	Line   string              `json:"line,omitempty"`
	Report *addict.BenchReport `json:"report,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// progressWriter turns the engine's per-cell progress lines into
// "progress" NDJSON events, flushing each so clients see them live.
type progressWriter struct {
	w     http.ResponseWriter
	buf   []byte
	wrote bool
}

func (p *progressWriter) Write(b []byte) (int, error) {
	p.buf = append(p.buf, b...)
	for {
		i := bytes.IndexByte(p.buf, '\n')
		if i < 0 {
			return len(b), nil
		}
		line := string(p.buf[:i])
		p.buf = p.buf[i+1:]
		if !p.wrote {
			p.w.Header().Set("Content-Type", "application/x-ndjson")
			p.wrote = true
		}
		if err := writeEvent(p.w, benchEvent{Type: "progress", Line: line}); err != nil {
			return len(b), err
		}
	}
}

func writeEvent(w http.ResponseWriter, ev benchEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return err
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

func (s *server) handleBench(w http.ResponseWriter, r *http.Request) {
	s.reqs.Add("bench", 1)
	var req benchWire
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	for _, name := range req.Workloads {
		if err := addict.ValidateWorkload(name); err != nil {
			s.fail(w, badRequest("%v", err))
			return
		}
	}
	cfg := addict.BenchConfig{
		Workloads:   req.Workloads,
		MinRuns:     req.MinRuns,
		MinDuration: time.Duration(req.MinDurationMS) * time.Millisecond,
	}
	for _, m := range req.Mechanisms {
		mech, err := parseMechanism(m)
		if err != nil {
			s.fail(w, err)
			return
		}
		cfg.Mechanisms = append(cfg.Mechanisms, mech)
	}
	canon, err := json.Marshal(req)
	if err != nil {
		s.fail(w, err)
		return
	}
	key := "bench\x00" + string(canon)

	// Coalesce in flight only: Forget after Do keeps bench a measurement
	// (fresh per burst) rather than a memoized answer. The leader streams
	// its progress lines; coalesced followers receive the report alone.
	pw := &progressWriter{w: w}
	led := false
	report, err := s.bench.Do(r.Context(), key, func() (*addict.BenchReport, error) {
		led = true
		if !s.acquire() {
			return nil, errBusy
		}
		defer s.release()
		s.comps.Add("bench", 1)
		return s.eng.BenchProgress(r.Context(), cfg, pw)
	})
	if led {
		s.bench.Forget(key)
	}
	if err != nil {
		if led && pw.wrote {
			// The stream already started; the error must travel in-band.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.runsCancelled.Add(1)
			}
			_ = writeEvent(w, benchEvent{Type: "error", Error: err.Error()})
			return
		}
		s.fail(w, err)
		return
	}
	if !led {
		s.coalesced.Add(1)
	}
	if !pw.wrote {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	_ = writeEvent(w, benchEvent{Type: "report", Report: report})
}
