package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"addict/cmd/internal/cmdtest"
)

// TestListExperiments checks -list prints the experiment ids.
func TestListExperiments(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-list")
	for _, id := range []string{"table1", "fig5", "ablations"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

// TestSingleExperiment runs the cheapest experiment end to end.
func TestSingleExperiment(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-exp", "table1")
	if !strings.Contains(stdout, "Table 1") {
		t.Errorf("table1 output missing its header:\n%s", stdout)
	}
}

// TestBenchJSON runs the benchmark harness at tiny sizes and validates the
// emitted BENCH file, including the baseline/speedup wiring.
func TestBenchJSON(t *testing.T) {
	exe := cmdtest.Build(t)
	dir := t.TempDir()
	first := filepath.Join(dir, "first.json")
	cmdtest.Run(t, exe, "-json", first, "-traces", "8", "-scale", "0.05")

	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Baseline *json.RawMessage `json:"baseline"`
		Current  *struct {
			Schema string `json:"schema"`
			Replay struct {
				Events       uint64  `json:"events"`
				EventsPerSec float64 `json:"events_per_sec"`
			} `json:"replay"`
			Cells []struct {
				Workload  string `json:"workload"`
				Mechanism string `json:"mechanism"`
			} `json:"cells"`
		} `json:"current"`
		Speedup float64 `json:"speedup_events_per_sec"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("parsing %s: %v", first, err)
	}
	if file.Current == nil || file.Current.Schema != "addict-bench/v1" {
		t.Fatalf("bad schema in %s", data)
	}
	if file.Current.Replay.EventsPerSec <= 0 || file.Current.Replay.Events == 0 {
		t.Fatalf("degenerate replay summary: %s", data)
	}
	if got, want := len(file.Current.Cells), 3*4; got != want {
		t.Fatalf("%d cells, want %d (3 workloads × 4 mechanisms)", got, want)
	}
	if file.Speedup != 0 {
		t.Fatalf("speedup recorded without a baseline: %v", file.Speedup)
	}

	// Second run against the first as baseline must record a speedup.
	second := filepath.Join(dir, "second.json")
	cmdtest.Run(t, exe, "-json", second, "-baseline", first, "-traces", "8", "-scale", "0.05")
	data, err = os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	var withBase struct {
		Baseline *json.RawMessage `json:"baseline"`
		Speedup  float64          `json:"speedup_events_per_sec"`
	}
	if err := json.Unmarshal(data, &withBase); err != nil {
		t.Fatal(err)
	}
	if withBase.Baseline == nil || withBase.Speedup <= 0 {
		t.Fatalf("baseline run missing baseline or speedup")
	}
}
