package main

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"addict/cmd/internal/cmdtest"
)

// TestListExperiments checks -list prints the experiment ids.
func TestListExperiments(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-list")
	for _, id := range []string{"table1", "fig5", "ablations"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

// TestSingleExperiment runs the cheapest experiment end to end.
func TestSingleExperiment(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-exp", "table1")
	if !strings.Contains(stdout, "Table 1") {
		t.Errorf("table1 output missing its header:\n%s", stdout)
	}
}

// TestBenchJSON runs the benchmark harness at tiny sizes and validates the
// emitted BENCH file, including the baseline/speedup wiring.
func TestBenchJSON(t *testing.T) {
	exe := cmdtest.Build(t)
	dir := t.TempDir()
	first := filepath.Join(dir, "first.json")
	cmdtest.Run(t, exe, "-json", first, "-traces", "8", "-scale", "0.05")

	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Baseline *json.RawMessage `json:"baseline"`
		Current  *struct {
			Schema string `json:"schema"`
			Replay struct {
				Events       uint64  `json:"events"`
				EventsPerSec float64 `json:"events_per_sec"`
			} `json:"replay"`
			Cells []struct {
				Workload  string `json:"workload"`
				Mechanism string `json:"mechanism"`
			} `json:"cells"`
		} `json:"current"`
		Speedup float64 `json:"speedup_events_per_sec"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("parsing %s: %v", first, err)
	}
	if file.Current == nil || file.Current.Schema != "addict-bench/v2" {
		t.Fatalf("bad schema in %s", data)
	}
	if file.Current.Replay.EventsPerSec <= 0 || file.Current.Replay.Events == 0 {
		t.Fatalf("degenerate replay summary: %s", data)
	}
	if got, want := len(file.Current.Cells), 5*4+2; got != want {
		t.Fatalf("%d cells, want %d (3 TPC + 2 synth workloads × 4 mechanisms, plus the two speculative extra cells)", got, want)
	}
	if file.Speedup != 0 {
		t.Fatalf("speedup recorded without a baseline: %v", file.Speedup)
	}

	// Second run against the first as baseline must record a speedup.
	second := filepath.Join(dir, "second.json")
	cmdtest.Run(t, exe, "-json", second, "-baseline", first, "-traces", "8", "-scale", "0.05")
	data, err = os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	var withBase struct {
		Baseline *json.RawMessage `json:"baseline"`
		Speedup  float64          `json:"speedup_events_per_sec"`
	}
	if err := json.Unmarshal(data, &withBase); err != nil {
		t.Fatal(err)
	}
	if withBase.Baseline == nil || withBase.Speedup <= 0 {
		t.Fatalf("baseline run missing baseline or speedup")
	}
}

// TestMaxRegressGate exercises the CI bench-regression gate both ways: a
// run against its own recent report passes a generous floor, and a
// baseline with artificially inflated throughput (the injected slowdown,
// seen from the other side) fails it.
func TestMaxRegressGate(t *testing.T) {
	exe := cmdtest.Build(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cmdtest.Run(t, exe, "-json", base, "-traces", "8", "-scale", "0.05")

	// Same machine, same sizes: well within a 60% floor.
	out := filepath.Join(dir, "gated.json")
	_, stderr := cmdtest.Run(t, exe, "-json", out, "-baseline", base,
		"-traces", "8", "-scale", "0.05", "-max-regress", "0.6")
	if !strings.Contains(stderr, "gate PASS") {
		t.Errorf("gate pass not reported:\n%s", stderr)
	}

	// Inflate the baseline's events/sec 4x: the fresh run now looks like a
	// >15% regression and the gate must fail.
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	cur := f["current"].(map[string]any)
	replay := cur["replay"].(map[string]any)
	replay["events_per_sec"] = replay["events_per_sec"].(float64) * 4
	inflated, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	slow := filepath.Join(dir, "inflated.json")
	if err := os.WriteFile(slow, inflated, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-json", filepath.Join(dir, "fail.json"), "-baseline", slow,
		"-traces", "8", "-scale", "0.05", "-max-regress", "0.15")
	outb, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("gate passed against a 4x-inflated baseline:\n%s", outb)
	}
	if !strings.Contains(string(outb), "performance regression") {
		t.Errorf("failure output missing diagnosis:\n%s", outb)
	}

	// A baseline measured at different sizes is not comparable; the gate
	// must refuse rather than judge the ratio.
	cmd = exec.Command(exe, "-json", filepath.Join(dir, "mismatch.json"), "-baseline", base,
		"-traces", "6", "-scale", "0.05", "-max-regress", "0.15")
	outb, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("gate accepted a mismatched-config baseline:\n%s", outb)
	}
	if !strings.Contains(string(outb), "not comparable") {
		t.Errorf("mismatch output missing diagnosis:\n%s", outb)
	}

	// -max-regress without the harness flags is a usage error.
	if err := exec.Command(exe, "-max-regress", "0.15").Run(); err == nil {
		t.Error("-max-regress without -json accepted")
	}
	if err := exec.Command(exe, "-json", filepath.Join(dir, "x.json"), "-max-regress", "0.15").Run(); err == nil {
		t.Error("-max-regress without -baseline accepted")
	}
	if err := exec.Command(exe, "-max-cell-regress", "0.15").Run(); err == nil {
		t.Error("-max-cell-regress without -json accepted")
	}
}

// TestMaxCellRegressGate exercises the per-cell normalized gate at the
// command level: a run against its own recent report passes and writes
// the verdict into the JSON report and the -verdict file; a baseline with
// one non-reference cell inflated — a single-cell regression the
// aggregate barely notices — fails on exactly that cell.
func TestMaxCellRegressGate(t *testing.T) {
	exe := cmdtest.Build(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cmdtest.Run(t, exe, "-json", base, "-traces", "8", "-scale", "0.05")

	// Pass case: generous per-cell floor, verdict table lands everywhere.
	out := filepath.Join(dir, "gated.json")
	verdictTxt := filepath.Join(dir, "verdict.txt")
	_, stderr := cmdtest.Run(t, exe, "-json", out, "-baseline", base,
		"-traces", "8", "-scale", "0.05", "-max-cell-regress", "0.9", "-verdict", verdictTxt)
	if !strings.Contains(stderr, "gate PASS") {
		t.Errorf("per-cell gate pass not reported:\n%s", stderr)
	}
	if !strings.Contains(stderr, "per-cell gate") {
		t.Errorf("verdict table missing from stderr:\n%s", stderr)
	}
	vt, err := os.ReadFile(verdictTxt)
	if err != nil || !strings.Contains(string(vt), "per-cell gate") {
		t.Errorf("-verdict file missing or empty: %v\n%s", err, vt)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var gated struct {
		Gate *struct {
			Pass  bool `json:"pass"`
			Cells []struct {
				Workload  string  `json:"workload"`
				Mechanism string  `json:"mechanism"`
				NormRatio float64 `json:"norm_ratio"`
			} `json:"cells"`
		} `json:"gate"`
		SpeedupCells []struct {
			Speedup float64 `json:"speedup_events_per_sec"`
		} `json:"speedup_cells"`
	}
	if err := json.Unmarshal(data, &gated); err != nil {
		t.Fatal(err)
	}
	if gated.Gate == nil || !gated.Gate.Pass || len(gated.Gate.Cells) != 5*4+2 {
		t.Fatalf("JSON report missing the gate verdict: %s", data)
	}
	if len(gated.SpeedupCells) != 5*4+2 {
		t.Fatalf("%d per-cell speedups in JSON report, want %d", len(gated.SpeedupCells), 5*4+2)
	}

	// Fail case: inflate one non-reference cell of the baseline 4x. The
	// aggregate moves a little; the normalized ratio for that one cell
	// drops to ~0.25 and the per-cell gate must fail on it.
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	cells := f["current"].(map[string]any)["cells"].([]any)
	bumped := ""
	for _, c := range cells {
		cell := c.(map[string]any)
		if cell["mechanism"].(string) == "STREX" {
			cell["events_per_sec"] = cell["events_per_sec"].(float64) * 4
			bumped = cell["workload"].(string) + "/STREX"
			break
		}
	}
	if bumped == "" {
		t.Fatal("no STREX cell found to inflate")
	}
	inflated, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	slow := filepath.Join(dir, "cell-inflated.json")
	if err := os.WriteFile(slow, inflated, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-json", filepath.Join(dir, "fail.json"), "-baseline", slow,
		"-traces", "8", "-scale", "0.05", "-max-cell-regress", "0.5")
	outb, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("per-cell gate passed a 4x single-cell baseline inflation:\n%s", outb)
	}
	if !strings.Contains(string(outb), "performance regression") || !strings.Contains(string(outb), bumped) {
		t.Errorf("failure output missing diagnosis of worst cell %s:\n%s", bumped, outb)
	}
}

// TestZeroSeedFlag: an explicit -seed 0 must reach the harness as seed 0
// instead of being swallowed by the zero-means-default sentinel.
func TestZeroSeedFlag(t *testing.T) {
	exe := cmdtest.Build(t)
	out := filepath.Join(t.TempDir(), "seed0.json")
	cmdtest.Run(t, exe, "-json", out, "-seed", "0", "-traces", "6", "-scale", "0.05")
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Current *struct {
			Seed    int64 `json:"seed"`
			MinRuns int   `json:"min_runs"`
		} `json:"current"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.Current == nil || file.Current.Seed != 0 {
		t.Fatalf("explicit -seed 0 recorded as seed %+v, want 0", file.Current)
	}
	if file.Current.MinRuns == 0 {
		t.Errorf("report does not record its measurement bounds")
	}
}

// TestInterruptExitsPromptly: SIGINT on the full default-size report must
// exit non-zero within the 2-second acceptance bound, flushing whatever
// sections had already streamed.
func TestInterruptExitsPromptly(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no SIGINT delivery on windows")
	}
	exe := cmdtest.Build(t)
	cmd := exec.Command(exe, "-parallel", "2")
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := cmd.Wait()
	elapsed := time.Since(start)
	if err == nil {
		t.Error("interrupted report exited 0, want non-zero")
	}
	if elapsed > 2*time.Second {
		t.Errorf("interrupted report took %v to exit, want <= 2s", elapsed)
	}
}
