// Command addict-bench regenerates the paper's evaluation: every table and
// figure (Table 1, Figures 1-9) plus the ablations, or any single
// experiment by id.
//
// Usage:
//
//	addict-bench                 # full report, paper-faithful sizes
//	addict-bench -quick          # reduced sizes (~1/4 traces)
//	addict-bench -parallel 8     # full report on an 8-worker pool
//	addict-bench -exp fig5       # a single experiment
//	addict-bench -traces 500     # override trace counts
//	addict-bench -list           # list experiment ids
//
// The full report runs on a worker pool (-parallel, default: all available
// CPUs) and is byte-identical to the serial run (-parallel 1) — see the
// determinism notes in package addict.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"addict"
)

func main() {
	var (
		expID    = flag.String("exp", "", "single experiment id (default: run everything)")
		quick    = flag.Bool("quick", false, "reduced trace counts and database scale")
		traces   = flag.Int("traces", 0, "override profiling/evaluation trace counts")
		scale    = flag.Float64("scale", 0, "override database scale factor")
		seed     = flag.Int64("seed", 0, "override workload seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for the full report (1 = serial; output is identical)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		ids := addict.ExperimentIDs()
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	p := addict.DefaultExperimentParams()
	if *quick {
		p = addict.QuickExperimentParams()
	}
	if *traces > 0 {
		p.ProfileTraces = *traces
		p.EvalTraces = *traces
		p.StabilityTraces = 10 * *traces
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	start := time.Now()
	if *expID != "" {
		if err := addict.RunExperimentParallel(*expID, out, p, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		addict.RunAllExperimentsParallel(out, p, *parallel)
	}
	fmt.Fprintf(out, "\n(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}
