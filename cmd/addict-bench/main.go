// Command addict-bench regenerates the paper's evaluation: every table and
// figure (Table 1, Figures 1-9) plus the ablations, or any single
// experiment by id. With -json it instead runs the replay-core benchmark
// harness (internal/bench) and emits a machine-readable performance report
// — the BENCH_*.json trajectory every PR is measured against.
//
// Usage:
//
//	addict-bench                 # full report, paper-faithful sizes
//	addict-bench -quick          # reduced sizes (~1/4 traces)
//	addict-bench -parallel 8     # full report on an 8-worker pool
//	addict-bench -exp fig5       # a single experiment
//	addict-bench -traces 500     # override trace counts
//	addict-bench -list           # list experiment ids
//	addict-bench -json BENCH.json                     # benchmark harness
//	addict-bench -json BENCH_4.json -baseline BENCH_3.json
//	addict-bench -json BENCH_ci.json -baseline BENCH_3.json -max-regress 0.15
//
// The full report runs on a worker pool (-parallel, default: all available
// CPUs) and is byte-identical to the serial run (-parallel 1) — see the
// determinism notes in package addict. The benchmark harness is strictly
// serial so its cells are comparable across runs; -baseline embeds a
// previous report (a BENCH_*.json or its "current" section) and records
// the events/sec speedup against it. -max-regress turns the harness into
// the CI regression gate: the run fails when events/sec drops more than
// the given fraction below the baseline.
//
// Ctrl-C cancels either mode between work items: the full report flushes
// the sections already rendered as a clean partial report, the harness
// aborts without writing a (non-comparable) partial JSON, and the process
// exits with a non-zero status.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"addict"
	"addict/cmd/internal/sigctx"
)

func main() {
	var (
		expID      = flag.String("exp", "", "single experiment id (default: run everything)")
		quick      = flag.Bool("quick", false, "reduced trace counts and database scale")
		traces     = flag.Int("traces", 0, "override profiling/evaluation trace counts")
		scale      = flag.Float64("scale", 0, "override database scale factor")
		seed       = flag.Int64("seed", 0, "override workload seed")
		parallel   = flag.Int("parallel", 0, "worker-pool size for the full report (<1 = all CPUs, 1 = serial; output is identical)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut    = flag.String("json", "", "run the replay benchmark harness and write the JSON report to this file (- = stdout)")
		baseline   = flag.String("baseline", "", "previous BENCH_*.json (or bare report) to embed and compute the speedup against (with -json)")
		maxRegress = flag.Float64("max-regress", 0, "fail when events/sec drops more than this fraction below the baseline (e.g. 0.15; requires -json and -baseline; 0 disables) — the CI bench-regression gate")
	)
	flag.Parse()

	// Ctrl-C cancels the run between work items (generation shards, bench
	// cells, experiment sections): the sections already rendered flush as
	// a clean partial report and the process exits non-zero, promptly —
	// the watchdog bound stays inside the 2-second acceptance budget even
	// when an indivisible item (a full-scale replay) is in flight.
	ctx, stop := sigctx.Context(1500 * time.Millisecond)
	defer stop()

	if *jsonOut != "" {
		if err := runBenchHarness(ctx, *jsonOut, *baseline, *maxRegress, *traces, *scale, *seed); err != nil {
			if ctx.Err() != nil {
				sigctx.Exit("addict-bench")
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *maxRegress != 0 {
		fmt.Fprintln(os.Stderr, "addict-bench: -max-regress requires -json and -baseline")
		os.Exit(2)
	}

	if *list {
		for _, id := range addict.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	p := addict.DefaultExperimentParams()
	if *quick {
		p = addict.QuickExperimentParams()
	}
	if *traces > 0 {
		p.ProfileTraces = *traces
		p.EvalTraces = *traces
		p.StabilityTraces = 10 * *traces
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	eng := addict.NewEngineFromParams(p, *parallel)

	out := bufio.NewWriter(os.Stdout)
	start := time.Now()
	var ids []string
	if *expID != "" {
		ids = []string{*expID}
	}
	err := eng.Experiments(ctx, out, ids...)
	if err == nil {
		fmt.Fprintf(out, "\n(completed in %v)\n", time.Since(start).Round(time.Millisecond))
	}
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		if ctx.Err() != nil {
			sigctx.Exit("addict-bench")
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runBenchHarness runs the internal/bench replay harness and writes the
// BENCH_*.json file. Overrides of 0 keep the standard (comparable) sizes.
// A non-zero maxRegress turns the run into a regression gate: it fails
// when the current events/sec falls more than that fraction below the
// baseline's.
func runBenchHarness(ctx context.Context, jsonOut, baselinePath string, maxRegress float64, traces int, scale float64, seed int64) error {
	if maxRegress < 0 || maxRegress >= 1 {
		return fmt.Errorf("-max-regress %v outside [0, 1)", maxRegress)
	}
	if maxRegress > 0 && baselinePath == "" {
		return fmt.Errorf("-max-regress requires -baseline")
	}
	cfg := addict.DefaultBenchConfig()
	if traces > 0 {
		cfg.ProfileTraces = traces
		cfg.EvalTraces = traces
	}
	if scale > 0 {
		cfg.Scale = scale
	}
	if seed != 0 {
		cfg.Seed = seed
	}

	var base *addict.BenchReport
	if baselinePath != "" {
		bf, err := os.Open(baselinePath)
		if err != nil {
			return err
		}
		parsed, err := addict.ReadBenchFile(bf)
		bf.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", baselinePath, err)
		}
		base = parsed.Current
	}

	start := time.Now()
	eng := addict.NewEngine(
		addict.WithSeed(cfg.Seed), addict.WithScale(cfg.Scale),
		addict.WithTraceWindows(cfg.ProfileTraces, cfg.EvalTraces, 0),
		addict.WithProgress(os.Stderr))
	rep, err := eng.Bench(ctx, cfg)
	if err != nil {
		return err
	}
	file := addict.CompareBench(base, rep)

	w := os.Stdout
	if jsonOut != "-" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := file.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "replay: %.2fM events/sec (%.1f ns/event)",
		rep.Replay.EventsPerSec/1e6, rep.Replay.NsPerEvent)
	if file.SpeedupEventsPerSec > 0 {
		fmt.Fprintf(os.Stderr, ", %.2fx vs baseline", file.SpeedupEventsPerSec)
	}
	fmt.Fprintf(os.Stderr, " (%v)\n", time.Since(start).Round(time.Millisecond))
	if maxRegress > 0 {
		// An events/sec ratio only means something when both reports
		// measured the same thing: gate refuses mismatched configurations
		// instead of judging an apples-to-oranges ratio.
		if base.Seed != rep.Seed || base.Scale != rep.Scale ||
			base.ProfileTraces != rep.ProfileTraces || base.EvalTraces != rep.EvalTraces {
			return fmt.Errorf("-max-regress: baseline %s measured (seed=%d scale=%v traces=%d/%d), this run (seed=%d scale=%v traces=%d/%d) — not comparable",
				baselinePath, base.Seed, base.Scale, base.ProfileTraces, base.EvalTraces,
				rep.Seed, rep.Scale, rep.ProfileTraces, rep.EvalTraces)
		}
		floor := 1 - maxRegress
		if file.SpeedupEventsPerSec == 0 {
			return fmt.Errorf("-max-regress: baseline %s carries no events/sec to gate against", baselinePath)
		}
		if file.SpeedupEventsPerSec < floor {
			return fmt.Errorf("performance regression: %.2fx of baseline events/sec is below the %.2fx floor (max regression %.0f%%)",
				file.SpeedupEventsPerSec, floor, maxRegress*100)
		}
		fmt.Fprintf(os.Stderr, "regression gate passed: %.2fx >= %.2fx floor\n",
			file.SpeedupEventsPerSec, floor)
	}
	return nil
}
