// Command addict-bench regenerates the paper's evaluation: every table and
// figure (Table 1, Figures 1-9) plus the ablations, or any single
// experiment by id. With -json it instead runs the replay-core benchmark
// harness (internal/bench) and emits a machine-readable performance report
// — the BENCH_*.json trajectory every PR is measured against.
//
// Usage:
//
//	addict-bench                 # full report, paper-faithful sizes
//	addict-bench -quick          # reduced sizes (~1/4 traces)
//	addict-bench -parallel 8     # full report on an 8-worker pool
//	addict-bench -exp fig5       # a single experiment
//	addict-bench -traces 500     # override trace counts
//	addict-bench -list           # list experiment ids
//	addict-bench -json BENCH.json                     # benchmark harness
//	addict-bench -json BENCH_10.json -baseline BENCH_9.json
//	addict-bench -json BENCH_ci.json -baseline BENCH_9.json \
//	    -max-cell-regress 0.25 -max-regress 0.5 -verdict verdict.txt
//
// The full report runs on a worker pool (-parallel, default: all available
// CPUs) and is byte-identical to the serial run (-parallel 1) — see the
// determinism notes in package addict. The benchmark harness is strictly
// serial so its cells are comparable across runs; -baseline embeds a
// previous report (a BENCH_*.json or its "current" section) and records
// the aggregate and per-cell events/sec speedups against it — refusing
// baselines that did not measure the same thing (different sizes,
// measurement bounds, or cell sets). The gate flags turn the harness into
// the CI regression gate: -max-cell-regress bounds every (workload ×
// mechanism) cell's *normalized* ratio — each cell's events/sec divided by
// the same run's Baseline-mechanism cell on the same workload, so the
// runner's absolute speed cancels out — and fails on the worst cell;
// -max-regress bounds the events-weighted aggregate speedup (machine-
// dependent; kept as a secondary signal); -max-alloc-regress bounds every
// cell's allocs/event and bytes/event growth over the baseline (allocation
// counts are machine-independent without any normalization). The per-cell
// verdict table goes to stderr, into the JSON report, and to the -verdict
// file when given.
//
// Ctrl-C cancels either mode between work items: the full report flushes
// the sections already rendered as a clean partial report, the harness
// aborts without writing a (non-comparable) partial JSON, and the process
// exits with a non-zero status.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"addict"
	"addict/cmd/internal/sigctx"
)

func main() {
	var (
		expID           = flag.String("exp", "", "single experiment id (default: run everything)")
		quick           = flag.Bool("quick", false, "reduced trace counts and database scale")
		traces          = flag.Int("traces", 0, "override profiling/evaluation trace counts")
		scale           = flag.Float64("scale", 0, "override database scale factor")
		seed            = flag.Int64("seed", 0, "override workload seed")
		parallel        = flag.Int("parallel", 0, "worker-pool size for the full report (<1 = all CPUs, 1 = serial; output is identical)")
		list            = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut         = flag.String("json", "", "run the replay benchmark harness and write the JSON report to this file (- = stdout)")
		baseline        = flag.String("baseline", "", "previous BENCH_*.json (or bare report) to embed and compute the speedups against (with -json)")
		maxRegress      = flag.Float64("max-regress", 0, "fail when aggregate events/sec drops more than this fraction below the baseline (machine-dependent secondary check; requires -json and -baseline; 0 disables)")
		maxCellRegress  = flag.Float64("max-cell-regress", 0, "fail when any (workload x mechanism) cell's Baseline-normalized ratio drops more than this fraction below the baseline's (machine-independent; fails on the worst cell; requires -json and -baseline; 0 disables) — the CI bench-regression gate")
		maxAllocRegress = flag.Float64("max-alloc-regress", 0, "fail when any cell's allocs/event or bytes/event grow more than this fraction above the baseline (plus a small additive slack; machine-independent; requires -json and -baseline; 0 disables)")
		verdictOut      = flag.String("verdict", "", "also write the per-cell gate verdict table to this file (with a gate flag)")
		storeDir        = flag.String("store", "", "on-disk artifact store directory (empty = memory-only); repeated runs warm-start generation and profiling from it (measured replay cells are never persisted results)")
		storeBudget     = flag.Int64("store-budget", 0, "on-disk store size budget in bytes (<=0 = unbounded)")
	)
	flag.Parse()
	// The flag default 0 doubles as "not provided" for -seed and -scale,
	// which would make an explicit zero unexpressible — distinguish by
	// whether the flag was actually set.
	seedSet, scaleSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			seedSet = true
		case "scale":
			scaleSet = true
		}
	})

	// Ctrl-C cancels the run between work items (generation shards, bench
	// cells, experiment sections): the sections already rendered flush as
	// a clean partial report and the process exits non-zero, promptly —
	// the watchdog bound stays inside the 2-second acceptance budget even
	// when an indivisible item (a full-scale replay) is in flight.
	ctx, stop := sigctx.Context(1500 * time.Millisecond)
	defer stop()

	if *jsonOut != "" {
		h := harnessFlags{
			jsonOut:         *jsonOut,
			baselinePath:    *baseline,
			maxRegress:      *maxRegress,
			maxCellRegress:  *maxCellRegress,
			maxAllocRegress: *maxAllocRegress,
			verdictOut:      *verdictOut,
			traces:          *traces,
			scale:           *scale,
			scaleSet:        scaleSet,
			seed:            *seed,
			seedSet:         seedSet,
			storeDir:        *storeDir,
			storeBudget:     *storeBudget,
		}
		if err := runBenchHarness(ctx, h); err != nil {
			if ctx.Err() != nil {
				sigctx.Exit("addict-bench")
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *maxRegress != 0 || *maxCellRegress != 0 || *maxAllocRegress != 0 {
		fmt.Fprintln(os.Stderr, "addict-bench: -max-regress/-max-cell-regress/-max-alloc-regress require -json and -baseline")
		os.Exit(2)
	}

	if *list {
		for _, id := range addict.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	p := addict.DefaultExperimentParams()
	if *quick {
		p = addict.QuickExperimentParams()
	}
	if *traces > 0 {
		p.ProfileTraces = *traces
		p.EvalTraces = *traces
		p.StabilityTraces = 10 * *traces
	}
	if scaleSet {
		if *scale <= 0 {
			fmt.Fprintln(os.Stderr, "addict-bench: -scale must be > 0")
			os.Exit(2)
		}
		p.Scale = *scale
	}
	if seedSet {
		p.Seed = *seed
	}

	var engOpts []addict.EngineOption
	if *storeDir != "" {
		engOpts = append(engOpts, addict.WithStore(*storeDir, *storeBudget))
	}
	eng := addict.NewEngineFromParams(p, *parallel, engOpts...)
	if err := eng.StoreErr(); err != nil {
		fmt.Fprintln(os.Stderr, "addict-bench:", err)
		os.Exit(1)
	}

	out := bufio.NewWriter(os.Stdout)
	start := time.Now()
	var ids []string
	if *expID != "" {
		ids = []string{*expID}
	}
	err := eng.Experiments(ctx, out, ids...)
	if err == nil {
		fmt.Fprintf(out, "\n(completed in %v)\n", time.Since(start).Round(time.Millisecond))
	}
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		if ctx.Err() != nil {
			sigctx.Exit("addict-bench")
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// harnessFlags carries the resolved -json mode flags.
type harnessFlags struct {
	jsonOut         string
	baselinePath    string
	maxRegress      float64
	maxCellRegress  float64
	maxAllocRegress float64
	verdictOut      string
	traces          int
	scale           float64
	scaleSet        bool
	seed            int64
	seedSet         bool
	storeDir        string
	storeBudget     int64
}

// runBenchHarness runs the internal/bench replay harness and writes the
// BENCH_*.json file. Unset overrides keep the standard (comparable) sizes.
// A non-zero maxCellRegress/maxRegress turns the run into the regression
// gate: maxCellRegress bounds every cell's machine-independent normalized
// ratio (failing on the worst cell), maxRegress bounds the aggregate
// events/sec speedup. An incomparable baseline — different configuration,
// measurement bounds, or cell set — is refused rather than judged.
func runBenchHarness(ctx context.Context, h harnessFlags) error {
	gating := h.maxRegress != 0 || h.maxCellRegress != 0 || h.maxAllocRegress != 0
	if h.maxRegress < 0 || h.maxRegress >= 1 {
		return fmt.Errorf("-max-regress %v outside [0, 1)", h.maxRegress)
	}
	if h.maxCellRegress < 0 || h.maxCellRegress >= 1 {
		return fmt.Errorf("-max-cell-regress %v outside [0, 1)", h.maxCellRegress)
	}
	if h.maxAllocRegress < 0 {
		return fmt.Errorf("-max-alloc-regress %v negative", h.maxAllocRegress)
	}
	if gating && h.baselinePath == "" {
		return fmt.Errorf("-max-regress/-max-cell-regress/-max-alloc-regress require -baseline")
	}
	if h.verdictOut != "" && !gating {
		return fmt.Errorf("-verdict requires a gate flag (-max-cell-regress or -max-regress)")
	}
	cfg := addict.DefaultBenchConfig()
	if h.traces > 0 {
		cfg.ProfileTraces = h.traces
		cfg.EvalTraces = h.traces
	}
	if h.scaleSet {
		if h.scale <= 0 {
			return fmt.Errorf("-scale must be > 0")
		}
		cfg.Scale = h.scale
	}
	if h.seedSet {
		cfg.Seed = h.seed
		cfg.SeedSet = true
	}

	var base *addict.BenchReport
	if h.baselinePath != "" {
		bf, err := os.Open(h.baselinePath)
		if err != nil {
			return err
		}
		parsed, err := addict.ReadBenchFile(bf)
		bf.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", h.baselinePath, err)
		}
		base = parsed.Current
	}

	start := time.Now()
	engOpts := []addict.EngineOption{
		addict.WithSeed(cfg.Seed), addict.WithScale(cfg.Scale),
		addict.WithTraceWindows(cfg.ProfileTraces, cfg.EvalTraces, 0),
		addict.WithProgress(os.Stderr)}
	if h.storeDir != "" {
		engOpts = append(engOpts, addict.WithStore(h.storeDir, h.storeBudget))
	}
	eng := addict.NewEngine(engOpts...)
	if err := eng.StoreErr(); err != nil {
		return err
	}

	var (
		file    *addict.BenchFile
		verdict *addict.BenchVerdict
		err     error
	)
	if gating {
		file, verdict, err = eng.GateBench(ctx, cfg, base, addict.BenchGateConfig{
			MaxCellRegress:  h.maxCellRegress,
			MaxRegress:      h.maxRegress,
			MaxAllocRegress: h.maxAllocRegress,
		})
		if err != nil {
			return fmt.Errorf("gate vs %s: %w", h.baselinePath, err)
		}
	} else {
		var rep *addict.BenchReport
		rep, err = eng.Bench(ctx, cfg)
		if err != nil {
			return err
		}
		file, err = addict.CompareBench(base, rep)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", h.baselinePath, err)
		}
	}

	w := os.Stdout
	if h.jsonOut != "-" {
		f, err := os.Create(h.jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := file.WriteJSON(w); err != nil {
		return err
	}
	rep := file.Current
	fmt.Fprintf(os.Stderr, "replay: %.2fM events/sec (%.1f ns/event)",
		rep.Replay.EventsPerSec/1e6, rep.Replay.NsPerEvent)
	if file.SpeedupEventsPerSec > 0 {
		fmt.Fprintf(os.Stderr, ", %.2fx vs baseline", file.SpeedupEventsPerSec)
	}
	fmt.Fprintf(os.Stderr, " (%v)\n", time.Since(start).Round(time.Millisecond))
	if verdict != nil {
		if err := verdict.WriteTable(os.Stderr); err != nil {
			return err
		}
		if h.verdictOut != "" {
			vf, err := os.Create(h.verdictOut)
			if err != nil {
				return err
			}
			werr := verdict.WriteTable(vf)
			if cerr := vf.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
		}
		if !verdict.Pass {
			return fmt.Errorf("performance regression: %s", verdict.Summary())
		}
	}
	return nil
}
