// Command tracegen generates transaction traces from a TPC workload or a
// declarative synthetic workload and writes them in the binary trace
// format — the reproduction's counterpart of the paper's Pin-based trace
// collection (Section 4.1).
//
// Usage:
//
//	tracegen -workload TPC-C -n 1000 -o tpcc.traces
//	tracegen -workload TPC-B -n 11000 -seed 7 -o tpcb.traces
//	tracegen -synth zipf-hot-rw -n 1000 -o zipf.traces
//	tracegen -synth synth:uniform-ro+w0.3 -parallel 8 -o mix.traces
//	tracegen -synth scenario.json -n 2000 -o scenario.traces
//	tracegen -synth-presets
//
// -synth accepts a shipped preset name ("zipf-hot-rw"), an encoded
// workload name with overrides ("synth:<preset>[+z<theta>][+w<frac>]
// [+h<keys>]"), or a path to a spec JSON file (see SynthSpec). -workload
// resolves through the one workload-name registry, so encoded synth:...
// names work there too. All generation is sharded: the output is
// byte-identical for every -parallel value, and Ctrl-C cancels between
// shards with a non-zero exit instead of writing a truncated file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"addict"
	"addict/cmd/internal/sigctx"
)

func main() {
	var (
		name     = flag.String("workload", "TPC-C", "workload name: TPC-B, TPC-C, TPC-E, or an encoded synth:... name")
		synth    = flag.String("synth", "", "synthetic workload: preset name, synth:... name, or spec JSON file (overrides -workload)")
		n        = flag.Int("n", 1000, "number of transaction traces")
		seed     = flag.Int64("seed", 42, "workload seed")
		scale    = flag.Float64("scale", 1.0, "database scale factor")
		parallel = flag.Int("parallel", 0, "worker-pool size for sharded generation (<1 = all CPUs, 1 = serial; output is identical)")
		out      = flag.String("o", "", "output file (default: stdout)")
		presets  = flag.Bool("synth-presets", false, "list synthetic presets and exit")
	)
	flag.Parse()

	if *presets {
		for _, p := range addict.SynthPresets() {
			fmt.Println(p)
		}
		return
	}

	// Ctrl-C cancels generation between shards and exits non-zero without
	// writing a truncated trace file.
	ctx, stop := sigctx.Context(time.Second)
	defer stop()
	eng := addict.NewEngine(addict.WithSeed(*seed), addict.WithScale(*scale),
		addict.WithWorkers(*parallel))

	var (
		set *addict.TraceSet
		err error
	)
	start := time.Now()
	if *synth != "" {
		var spec addict.SynthSpec
		spec, err = loadSynthSpec(*synth)
		if err == nil {
			set, err = eng.SynthTraces(ctx, spec, *n)
		}
	} else {
		// The workload registry resolves both name spaces, so -workload
		// accepts encoded synthetic names too.
		set, err = eng.GenerateTraces(ctx, *name, *n)
	}
	if err != nil {
		if ctx.Err() != nil {
			sigctx.Exit("tracegen")
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if err := addict.WriteTraces(f, set); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var events, instr uint64
	for _, t := range set.Traces {
		events += uint64(len(t.Events))
		instr += t.Instructions()
	}
	fmt.Fprintf(os.Stderr, "%s: %d traces, %d events, %d instructions (%v)\n",
		set.Workload, len(set.Traces), events, instr, time.Since(start).Round(time.Millisecond))
}

// loadSynthSpec resolves the -synth argument: a readable file is parsed as
// a spec JSON (unknown fields rejected); anything else is a preset or
// encoded workload name.
func loadSynthSpec(arg string) (addict.SynthSpec, error) {
	data, ferr := os.ReadFile(arg)
	if ferr != nil {
		if strings.HasSuffix(arg, ".json") {
			// An explicit spec file that cannot be read is an error, not a
			// preset-name fallback.
			return addict.SynthSpec{}, ferr
		}
		return addict.ParseSynthWorkload(arg)
	}
	var spec addict.SynthSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return addict.SynthSpec{}, fmt.Errorf("%s: %w", arg, err)
	}
	if dec.More() {
		return addict.SynthSpec{}, fmt.Errorf("%s: trailing data after the spec object", arg)
	}
	return spec, nil
}
