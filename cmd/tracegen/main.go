// Command tracegen generates transaction traces from a TPC workload and
// writes them in the binary trace format — the reproduction's counterpart
// of the paper's Pin-based trace collection (Section 4.1).
//
// Usage:
//
//	tracegen -workload TPC-C -n 1000 -o tpcc.traces
//	tracegen -workload TPC-B -n 11000 -seed 7 -o tpcb.traces
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"addict"
)

func main() {
	var (
		name  = flag.String("workload", "TPC-C", "benchmark: TPC-B, TPC-C, or TPC-E")
		n     = flag.Int("n", 1000, "number of transaction traces")
		seed  = flag.Int64("seed", 42, "workload seed")
		scale = flag.Float64("scale", 1.0, "database scale factor")
		out   = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()

	w, err := addict.NewWorkload(*name, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	set := addict.GenerateTraces(w, *n)

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if err := addict.WriteTraces(f, set); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var events, instr uint64
	for _, t := range set.Traces {
		events += uint64(len(t.Events))
		instr += t.Instructions()
	}
	fmt.Fprintf(os.Stderr, "%s: %d traces, %d events, %d instructions (%v)\n",
		set.Workload, len(set.Traces), events, instr, time.Since(start).Round(time.Millisecond))
}
