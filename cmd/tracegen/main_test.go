package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"addict"
	"addict/cmd/internal/cmdtest"
)

// TestSmoke generates a tiny trace file end to end and decodes it back.
func TestSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	out := filepath.Join(t.TempDir(), "tiny.traces")
	_, stderr := cmdtest.Run(t, exe,
		"-workload", "TPC-B", "-n", "3", "-scale", "0.05", "-seed", "7", "-o", out)
	if !strings.Contains(stderr, "3 traces") {
		t.Fatalf("summary line missing trace count:\n%s", stderr)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set, err := addict.ReadTraces(f)
	if err != nil {
		t.Fatalf("decoding generated file: %v", err)
	}
	if set.Workload != "TPC-B" || len(set.Traces) != 3 {
		t.Fatalf("got %q with %d traces, want TPC-B with 3", set.Workload, len(set.Traces))
	}
	for i, tr := range set.Traces {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d invalid: %v", i, err)
		}
	}
}

// TestSynthSmoke generates a synthetic trace file from a preset name and
// from an equivalent spec JSON file.
func TestSynthSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	dir := t.TempDir()

	out := filepath.Join(dir, "synth.traces")
	_, stderr := cmdtest.Run(t, exe,
		"-synth", "zipf-hot-rw", "-n", "4", "-scale", "0.01", "-seed", "7", "-o", out)
	if !strings.Contains(stderr, "4 traces") {
		t.Fatalf("summary line missing trace count:\n%s", stderr)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set, err := addict.ReadTraces(f)
	if err != nil {
		t.Fatalf("decoding generated file: %v", err)
	}
	if set.Workload != "synth:zipf-hot-rw" || len(set.Traces) != 4 {
		t.Fatalf("got %q with %d traces", set.Workload, len(set.Traces))
	}

	// The same workload via a spec file.
	specPath := filepath.Join(dir, "spec.json")
	spec := `{"name":"synth:filed","tables":2,"rows":200,"txn_types":2,
		"skew":{"dist":"hotset","hot_keys":8,"hot_prob":0.8},"write_frac":0.3}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "filed.traces")
	cmdtest.Run(t, exe, "-synth", specPath, "-n", "3", "-o", out2)
	g, err := os.Open(out2)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	set2, err := addict.ReadTraces(g)
	if err != nil {
		t.Fatal(err)
	}
	if set2.Workload != "synth:filed" || len(set2.Traces) != 3 {
		t.Fatalf("spec file run: got %q with %d traces", set2.Workload, len(set2.Traces))
	}
}

// TestSynthParallelByteIdentity is the CLI half of the acceptance
// criterion: -synth output must be byte-identical for every -parallel
// value, including trace counts spanning several shards.
func TestSynthParallelByteIdentity(t *testing.T) {
	exe := cmdtest.Build(t)
	dir := t.TempDir()
	files := map[int]string{}
	for _, par := range []int{1, 2, 4} {
		out := filepath.Join(dir, fmt.Sprintf("p%d.traces", par))
		cmdtest.Run(t, exe,
			"-synth", "synth:uniform-ro+w0.2", "-n", "40", "-scale", "0.01",
			"-seed", "9", "-parallel", fmt.Sprint(par), "-o", out)
		files[par] = out
	}
	want, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial run produced an empty file")
	}
	for _, par := range []int{2, 4} {
		got, err := os.ReadFile(files[par])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("-parallel %d output diverges from serial", par)
		}
	}
}

// TestSynthPresetsFlag lists the shipped presets.
func TestSynthPresetsFlag(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-synth-presets")
	for _, p := range addict.SynthPresets() {
		if !strings.Contains(stdout, p) {
			t.Errorf("preset %q missing from -synth-presets output:\n%s", p, stdout)
		}
	}
}

// TestSynthBadInputsFail covers the error paths: unknown preset, missing
// spec file, malformed JSON.
func TestSynthBadInputsFail(t *testing.T) {
	exe := cmdtest.Build(t)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tables": "many"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-synth", "no-such-preset", "-n", "1"},
		{"-synth", filepath.Join(dir, "missing.json"), "-n", "1"},
		{"-synth", bad, "-n", "1"},
	} {
		cmd := exec.Command(exe, args...)
		if err := cmd.Run(); err == nil {
			t.Errorf("tracegen %v succeeded, want failure", args)
		}
	}
}
