package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"addict"
	"addict/cmd/internal/cmdtest"
)

// TestSmoke generates a tiny trace file end to end and decodes it back.
func TestSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	out := filepath.Join(t.TempDir(), "tiny.traces")
	_, stderr := cmdtest.Run(t, exe,
		"-workload", "TPC-B", "-n", "3", "-scale", "0.05", "-seed", "7", "-o", out)
	if !strings.Contains(stderr, "3 traces") {
		t.Fatalf("summary line missing trace count:\n%s", stderr)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set, err := addict.ReadTraces(f)
	if err != nil {
		t.Fatalf("decoding generated file: %v", err)
	}
	if set.Workload != "TPC-B" || len(set.Traces) != 3 {
		t.Fatalf("got %q with %d traces, want TPC-B with 3", set.Workload, len(set.Traces))
	}
	for i, tr := range set.Traces {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d invalid: %v", i, err)
		}
	}
}
