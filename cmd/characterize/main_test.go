package main

import (
	"strings"
	"testing"

	"addict/cmd/internal/cmdtest"
)

// TestSmoke runs the Section 2 characterization end to end at tiny sizes
// and checks that all three figures render.
func TestSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-traces", "8", "-scale", "0.05", "-seed", "7")
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestSynthSmoke runs the synthetic-workload ranking characterization at
// tiny sizes.
func TestSynthSmoke(t *testing.T) {
	exe := cmdtest.Build(t)
	stdout, _ := cmdtest.Run(t, exe, "-synth", "-traces", "8", "-scale", "0.02", "-seed", "7")
	for _, want := range []string{"mechanism ranking", "TPC-B", "synth:zipf-hot-rw", "<"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "Figure 1") {
		t.Error("-synth must replace the Figure 1-3 run")
	}
}
