// Command characterize runs the paper's Section 2 memory characterization
// (Figures 1-3) — operation footprints, instruction/data overlap, and
// within-instance reuse — on generated traces or a saved trace file, and
// the synthetic-workload characterization (rankings of all six mechanism
// families across the shipped scenario presets).
//
// Usage:
//
//	characterize                       # all three figures on fresh traces
//	characterize -workload TPC-E       # overlap analysis of one workload
//	characterize -traces 500 -scale 0.5
//	characterize -synth                # mechanism rankings across presets
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"addict"
	"addict/cmd/internal/sigctx"
)

func main() {
	var (
		name   = flag.String("workload", "", "restrict Figure 2 to one benchmark (default: all)")
		traces = flag.Int("traces", 1000, "traces per workload")
		scale  = flag.Float64("scale", 1.0, "database scale factor")
		seed   = flag.Int64("seed", 42, "workload seed")
		synth  = flag.Bool("synth", false, "run the synthetic-workload characterization (mechanism rankings across presets) instead of Figures 1-3")
	)
	flag.Parse()

	p := addict.DefaultExperimentParams()
	p.ProfileTraces = *traces
	p.Scale = *scale
	p.Seed = *seed

	// Ctrl-C cancels the characterization between artifact computations:
	// the figures already rendered flush and the process exits non-zero.
	ctx, stop := sigctx.Context(time.Second)
	defer stop()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	ids := []string{"fig1", "fig2", "fig3"}
	if *synth {
		// The ranking experiment replays evaluation windows too; keep both
		// trace counts in step with -traces.
		p.EvalTraces = *traces
		ids = []string{"synthchar"}
	}
	if *name != "" {
		// Single-workload overlap only (fig2 covers all three otherwise).
		if _, err := addict.NewWorkload(*name, *seed, 0.01); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	eng := addict.NewEngineFromParams(p, 1)
	if err := eng.Experiments(ctx, out, ids...); err != nil {
		if ctx.Err() != nil {
			out.Flush()
			sigctx.Exit("characterize")
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
