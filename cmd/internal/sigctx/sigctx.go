// Package sigctx wires signal.NotifyContext for this module's commands:
// one context every long-running pipeline threads end to end, cancelled on
// SIGINT/SIGTERM so Ctrl-C unwinds cooperatively — flushing a clean
// partial report — and exits with a non-zero status.
package sigctx

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ExitCode is the status a signal-cancelled command exits with (the shell
// convention for SIGINT, 128+2).
const ExitCode = 130

// Context returns a context cancelled by SIGINT or SIGTERM, plus its stop
// function (call it on the normal completion path to release the signal
// registration).
//
// After the first signal the process gets `grace` of wall clock to unwind
// cooperatively; if it is still alive then — a pipeline stuck inside an
// indivisible work item — or a second signal arrives, a watchdog
// goroutine hard-exits with ExitCode. The watchdog arms only on a real
// signal, so normal completion never races it.
func Context(grace time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs // blocks forever unless a signal actually arrives
		select {
		case <-time.After(grace):
			fmt.Fprintln(os.Stderr, "interrupted: grace period elapsed, forcing exit")
		case <-sigs:
			fmt.Fprintln(os.Stderr, "interrupted twice, forcing exit")
		}
		os.Exit(ExitCode)
	}()
	return ctx, func() {
		// Release the watchdog's registration too, restoring the default
		// signal disposition: a Ctrl-C after the pipeline completes kills
		// the process immediately instead of arming the grace timer.
		signal.Stop(sigs)
		stop()
	}
}

// Exit reports a cancelled pipeline and exits with ExitCode. Call it when
// a pipeline returns ctx's error after a signal.
func Exit(name string) {
	fmt.Fprintln(os.Stderr, name+": interrupted")
	os.Exit(ExitCode)
}
