// Package cmdtest builds this module's command binaries for smoke tests:
// each cmd package compiles its own binary into a test temp dir and runs
// it end to end with tiny inputs, so flag wiring and output plumbing stay
// covered without slowing the suite down.
package cmdtest

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// Build compiles the command package in the current directory into a
// temporary binary and returns its path.
func Build(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "cmd-under-test")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building command: %v\n%s", err, out)
	}
	return exe
}

// Run executes the binary with args and returns stdout; it fails the test
// on a non-zero exit.
func Run(t *testing.T, exe string, args ...string) (stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	cmd := exec.Command(exe, args...)
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", exe, args, err, out.String(), errb.String())
	}
	return out.String(), errb.String()
}
