package addict_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesBuild compiles every example program — examples are
// documentation, and documentation that does not compile is wrong.
func TestExamplesBuild(t *testing.T) {
	cmd := exec.Command("go", "build", "-o", t.TempDir()+string(filepath.Separator), "./examples/...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building examples: %v\n%s", err, out)
	}
}

// TestQuickstartRuns executes the quickstart example end to end and spot
// checks the pipeline stages it narrates (profiling, scheduling, the
// Baseline/ADDICT comparison).
func TestQuickstartRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("quickstart replays four mechanisms; skipped in -short runs")
	}
	exe := filepath.Join(t.TempDir(), "quickstart")
	build := exec.Command("go", "build", "-o", exe, "./examples/quickstart")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building quickstart: %v\n%s", err, out)
	}
	var out bytes.Buffer
	run := exec.Command(exe)
	run.Stdout = &out
	run.Stderr = &out
	if err := run.Run(); err != nil {
		t.Fatalf("running quickstart: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"quickstart", "profiled", "L1-I MPKI", "migrations"} {
		if !strings.Contains(text, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, text)
		}
	}
}
